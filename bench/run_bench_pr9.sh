#!/bin/sh
# Runs the PR9 aggregation bench and composes its JSON into BENCH_PR9.json:
# the executed message-count/byte comparison of one DMR step at 8 ranks
# with comm.aggregate off vs on, and the ScalingSimulator α-β decomposition
# sweep (Params::aggregateComm) with the modeled step speedup at 256..4096
# nodes. The bench binary itself enforces the PR9 gates (>= 10x fewer
# messages, byte conservation, > 1.0 modeled speedup at 2048 and 4096
# nodes) and exits nonzero on a miss.
#
# Usage: bench/run_bench_pr9.sh [build-dir] [output.json]
set -e

BUILD=${1:-build}
OUT=${2:-BENCH_PR9.json}

if [ ! -x "$BUILD/bench/aggregation" ]; then
    echo "error: $BUILD/bench/aggregation not built (cmake --build $BUILD --target aggregation)" >&2
    exit 1
fi

AGG=$("$BUILD/bench/aggregation")

{
    echo '{'
    echo '  "bench": "PR9: rank-pair aggregated communication (one packed message per communicating rank pair; comm.aggregate)",'
    echo "  \"aggregation\": $AGG"
    echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
