// PR10 bench: SDC detection economics — what the FabGuard costs, what it
// catches, and what riding unguarded would waste (docs/resilience.md §6).
//
// Three sections:
//
//   1. Measured: wall-clock overhead of each detection mechanism on a
//      small DMR run (CRC+digest verify at interval 1 and 10, sampled
//      dual execution) relative to the guard-off baseline, plus the
//      executed stamp/verify/dual-check counts.
//   2. Executed injection sweep: seeded cold-flip campaigns at several
//      per-fab Bernoulli rates and verify cadences, counting injected vs
//      detected vs undetected flips. Flips landing in a window with no
//      verify are re-stamped with the evolved state and become permanently
//      silent — the detection-latency trade resilience.sdc_interval tunes.
//      Ghost flips are the harmless-undetected control (refilled before
//      use). A fault-free guarded run is the false-positive control.
//   3. Modeled: FailureModel/ScalingSimulator at the paper's 4096-node
//      weak-scaled configuration — detection overhead and guarded vs
//      unguarded waste across cadences, and the waste of repairing one
//      upset at each rung of the recovery ladder (why the ladder tries
//      fab restore before rollback before buddy before disk).
//
// Self-checked gates (exit 1 on a miss, so `ctest -L perf` enforces them):
//   - zero undetected flips in guarded state at interval 1, at every rate,
//   - zero false positives on the fault-free guarded run,
//   - modeled detection overhead < 5% at the default cadence (interval 10),
//   - modeled per-upset waste grows monotonically with ladder depth.
//
// JSON on stdout (composed into BENCH_PR10.json by run_bench_pr10.sh);
// the readable table goes to stderr.
#include "core/CroccoAmr.hpp"
#include "machine/FailureModel.hpp"
#include "machine/ScalingSimulator.hpp"
#include "problems/Dmr.hpp"
#include "resilience/FabGuard.hpp"
#include "resilience/FaultRng.hpp"
#include "resilience/SdcInjector.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <vector>

using namespace crocco;

namespace {

constexpr int kSteps = 10;
constexpr std::uint64_t kSeed = 2026; // the soak campaign's default seed

problems::Dmr smallDmr() {
    problems::Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = 1;
    return problems::Dmr(o);
}

core::CroccoAmr::Config benchConfig(bool guard, int interval, int sample) {
    auto cfg = smallDmr().solverConfig(core::CodeVersion::V20);
    cfg.nranks = 1;
    cfg.regridFreq = 3;
    cfg.amrInfo.maxGridSize = 8;
    cfg.sdc.guard = guard;
    cfg.sdc.interval = interval;
    cfg.sdc.sample = sample;
    return cfg;
}

std::unique_ptr<core::CroccoAmr> makeSolver(const core::CroccoAmr::Config& cfg) {
    auto dmr = smallDmr();
    auto solver = std::make_unique<core::CroccoAmr>(dmr.geometry(), cfg,
                                                    dmr.mapping(), nullptr);
    solver->init(dmr.initialCondition(), dmr.boundaryConditions());
    return solver;
}

double timedEvolve(core::CroccoAmr& solver, int nsteps) {
    const auto t0 = std::chrono::steady_clock::now();
    solver.evolve(nsteps);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct Campaign {
    double rate = 0.0;
    int interval = 1;
    std::int64_t injected = 0;   ///< cold flips into guarded valid state
    std::int64_t ghost = 0;      ///< flips into unguarded ghost cells
    std::int64_t detected = 0;   ///< corrupted fabs localized by a verify
    std::int64_t repaired = 0;   ///< fab-granular in-place restores
    std::int64_t undetected = 0; ///< flips laundered into the next stamp
    bool completed = false;
};

Campaign runCampaign(double rate, int interval) {
    Campaign c;
    c.rate = rate;
    c.interval = interval;
    resilience::SdcInjector inj{resilience::FaultRng(kSeed)};
    inj.setEnabled(true);
    inj.setColdRate(rate);
    auto solver = makeSolver(benchConfig(true, interval, 0));
    solver->setSdcInjector(&inj);
    try {
        solver->evolve(kSteps);
        c.completed = true;
    } catch (const std::exception&) {
        // An absorbed exponent-bit flip can blow past the health guard's
        // retry budget with no buddy/disk rung attached. The campaign
        // still counts: those flips were never seen by the SDC guard.
        c.completed = false;
    }
    c.injected = inj.stats().coldFlips;
    c.ghost = inj.stats().ghostFlips;
    c.detected = solver->sdcGuard().stats().crcMismatches;
    c.repaired = solver->sdcGuard().stats().fabRestores;
    c.undetected = c.injected - c.detected;
    if (c.undetected < 0) c.undetected = 0;
    return c;
}

} // namespace

int main() {
    int failures = 0;

    // ---- Section 1: measured per-mechanism overhead -----------------------
    // Warm-up run so lazy singletons (scratch pool, thread pool) don't bill
    // their setup to the baseline.
    {
        auto warm = makeSolver(benchConfig(false, 1, 0));
        warm->evolve(2);
    }
    auto baseline = makeSolver(benchConfig(false, 1, 0));
    const double tOff = timedEvolve(*baseline, kSteps);

    auto guard1 = makeSolver(benchConfig(true, 1, 0));
    const double tCrc1 = timedEvolve(*guard1, kSteps);
    auto guard10 = makeSolver(benchConfig(true, 10, 0));
    const double tCrc10 = timedEvolve(*guard10, kSteps);
    auto dual = makeSolver(benchConfig(true, 10, 1));
    const double tDual = timedEvolve(*dual, kSteps);

    const double ovCrc1 = (tCrc1 - tOff) / tOff;
    const double ovCrc10 = (tCrc10 - tOff) / tOff;
    const double ovDual = (tDual - tCrc10) / tOff; // dual's increment

    std::fprintf(stderr,
                 "PR10 SDC bench: measured guard overhead, %d-step DMR "
                 "(32x8x8, 2 levels)\n",
                 kSteps);
    std::fprintf(stderr, "%-34s %10s %10s\n", "mechanism", "time s", "ovhd");
    std::fprintf(stderr, "%-34s %10.4f %10s\n", "guard off (baseline)", tOff,
                 "-");
    std::fprintf(stderr, "%-34s %10.4f %9.2f%%\n",
                 "stamp + CRC/digest verify @1", tCrc1, 100.0 * ovCrc1);
    std::fprintf(stderr, "%-34s %10.4f %9.2f%%\n",
                 "stamp + CRC/digest verify @10", tCrc10, 100.0 * ovCrc10);
    std::fprintf(stderr, "%-34s %10.4f %9.2f%%\n",
                 "+ dual execution @1 (increment)", tDual, 100.0 * ovDual);

    // ---- Section 2: executed injection sweep ------------------------------
    const double rates[] = {0.01, 0.05, 0.2};
    const int intervals[] = {1, 5};
    std::vector<Campaign> campaigns;
    for (int interval : intervals)
        for (double rate : rates) campaigns.push_back(runCampaign(rate, interval));

    // False-positive control: guard on, verify every step, no injector.
    auto clean = makeSolver(benchConfig(true, 1, 1));
    clean->evolve(kSteps);
    const std::int64_t falsePositives =
        clean->sdcGuard().stats().crcMismatches +
        clean->sdcGuard().stats().digestMismatches +
        clean->sdcGuard().stats().dualMismatches;

    std::fprintf(stderr,
                 "\ninjection sweep: per-fab Bernoulli cold flips, seed %llu\n",
                 static_cast<unsigned long long>(kSeed));
    std::fprintf(stderr, "%8s %9s %9s %9s %9s %11s %10s\n", "rate",
                 "interval", "injected", "detected", "repaired", "undetected",
                 "completed");
    for (const Campaign& c : campaigns) {
        std::fprintf(stderr, "%8.3f %9d %9lld %9lld %9lld %11lld %10s\n",
                     c.rate, c.interval, static_cast<long long>(c.injected),
                     static_cast<long long>(c.detected),
                     static_cast<long long>(c.repaired),
                     static_cast<long long>(c.undetected),
                     c.completed ? "yes" : "aborted");
        if (c.interval == 1 && c.undetected != 0) {
            std::fprintf(stderr,
                         "FAIL: %lld undetected flips in guarded state at "
                         "interval 1 (rate %.3f)\n",
                         static_cast<long long>(c.undetected), c.rate);
            ++failures;
        }
        if (c.interval == 1 && !c.completed) {
            std::fprintf(stderr,
                         "FAIL: interval-1 campaign aborted (rate %.3f) — "
                         "every flip should be repaired before the solve\n",
                         c.rate);
            ++failures;
        }
    }
    std::fprintf(stderr, "false positives on fault-free guarded run: %lld\n",
                 static_cast<long long>(falsePositives));
    if (falsePositives != 0) {
        std::fprintf(stderr, "FAIL: guard flagged clean state\n");
        ++failures;
    }

    // ---- Section 3: modeled economics at 4096 nodes -----------------------
    machine::ScalingSimulator sim;
    const machine::FailureModel& fm = sim.params().failure;
    machine::ScalingCase big;
    big.version = core::CodeVersion::V20;
    big.nodes = 4096;
    big.equivalentPoints = 4096LL * 40'000'000;

    const int cadences[] = {1, 2, 5, 10, 20, 50};
    std::fprintf(stderr,
                 "\nmodeled at 4096 nodes (weak scaling, 4e7 pts/node, "
                 "%.1e upsets/GB-hour):\n",
                 fm.sdcRatePerGBHour);
    std::fprintf(stderr, "%9s %12s %14s %16s\n", "interval", "detect ovhd",
                 "guarded waste", "unguarded waste");
    std::vector<machine::SdcComparison> swept;
    for (int interval : cadences) {
        const machine::SdcComparison sc = sim.sdcComparison(big, interval);
        swept.push_back(sc);
        std::fprintf(stderr, "%9d %11.5f%% %13.5f%% %15.5f%%\n", interval,
                     100.0 * sc.detectionOverheadFraction,
                     100.0 * sc.guardedWasteFraction,
                     100.0 * sc.unguardedWasteFraction);
    }
    const machine::SdcComparison atDefault = sim.sdcComparison(big, 10);
    if (!(atDefault.detectionOverheadFraction < 0.05)) {
        std::fprintf(stderr,
                     "FAIL: modeled detection overhead %.4f >= 5%% at the "
                     "default cadence (interval 10)\n",
                     atDefault.detectionOverheadFraction);
        ++failures;
    }
    if (!(atDefault.guardedWasteFraction < atDefault.unguardedWasteFraction)) {
        std::fprintf(stderr,
                     "FAIL: guard does not beat running unguarded at 4096 "
                     "nodes (%.6f vs %.6f)\n",
                     atDefault.guardedWasteFraction,
                     atDefault.unguardedWasteFraction);
        ++failures;
    }

    // Waste vs ladder depth: price one upset repaired at each rung. The
    // detection latency is the guard's (half a verify window at the default
    // cadence); only the restore cost varies by rung. Fab restore moves one
    // box's bytes in memory; step rollback replays one iteration; buddy
    // restore streams a node's state from its ring partner; disk restart
    // relaunches and re-reads the filesystem checkpoint.
    const machine::RegionTimes it = sim.iterationTime(big);
    const machine::RecoveryComparison rc = sim.recoveryComparison(big);
    const machine::HierarchyMeta hm = sim.buildHierarchy(big);
    std::int64_t boxes = 0;
    for (const auto& lev : hm.levels) boxes += lev.ba.size();
    const machine::SdcComparison sc10 = sim.sdcComparison(big, 10);
    const double stepTime = it.totalOverlapped();
    const double detectLatency = 0.5 * 10 * stepTime + sc10.scanTime;
    const double fabBytes =
        static_cast<double>(sc10.residentBytes) / static_cast<double>(boxes);
    struct RungCost {
        const char* name;
        double restore;
    };
    const RungCost rungs[] = {
        {"fab_restore", fabBytes / fm.sdcScanBandwidth},
        {"step_rollback", stepTime},
        {"buddy_restore", rc.detectionLatency + rc.buddyRestoreTime},
        {"disk_restart", rc.detectionLatency + rc.diskRestoreTime},
    };
    std::fprintf(stderr, "\nmodeled waste per upset vs ladder rung:\n");
    std::fprintf(stderr, "%-16s %14s %14s\n", "rung", "restore s", "waste");
    double ladderWaste[4];
    for (int i = 0; i < 4; ++i) {
        ladderWaste[i] = fm.sdcWasteFraction(sc10.residentBytes, detectLatency,
                                             rungs[i].restore);
        std::fprintf(stderr, "%-16s %14.6f %13.6f%%\n", rungs[i].name,
                     rungs[i].restore, 100.0 * ladderWaste[i]);
        if (i > 0 && !(ladderWaste[i] >= ladderWaste[i - 1])) {
            std::fprintf(stderr,
                         "FAIL: waste at rung %s below rung %s — ladder "
                         "ordering would be wrong\n",
                         rungs[i].name, rungs[i - 1].name);
            ++failures;
        }
    }

    // ---- JSON -------------------------------------------------------------
    std::printf("{\n");
    std::printf("  \"steps\": %d,\n", kSteps);
    std::printf("  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
    std::printf("  \"measured_overhead\": {\n");
    std::printf("    \"baseline_s\": %.6f,\n", tOff);
    std::printf("    \"crc_digest_interval1_s\": %.6f,\n", tCrc1);
    std::printf("    \"crc_digest_interval1_fraction\": %.6f,\n", ovCrc1);
    std::printf("    \"crc_digest_interval10_s\": %.6f,\n", tCrc10);
    std::printf("    \"crc_digest_interval10_fraction\": %.6f,\n", ovCrc10);
    std::printf("    \"dual_execution_s\": %.6f,\n", tDual);
    std::printf("    \"dual_execution_increment_fraction\": %.6f,\n", ovDual);
    std::printf("    \"stamps\": %lld,\n",
                static_cast<long long>(guard10->sdcGuard().stats().stamps));
    std::printf("    \"verifies\": %lld,\n",
                static_cast<long long>(guard10->sdcGuard().stats().verifies));
    std::printf("    \"dual_checks\": %lld\n",
                static_cast<long long>(dual->sdcGuard().stats().dualChecks));
    std::printf("  },\n");
    std::printf("  \"injection_sweep\": [\n");
    for (std::size_t i = 0; i < campaigns.size(); ++i) {
        const Campaign& c = campaigns[i];
        std::printf("    {\"rate\": %.4f, \"interval\": %d, \"injected\": %lld, "
                    "\"detected\": %lld, \"repaired\": %lld, "
                    "\"undetected\": %lld, \"completed\": %s}%s\n",
                    c.rate, c.interval, static_cast<long long>(c.injected),
                    static_cast<long long>(c.detected),
                    static_cast<long long>(c.repaired),
                    static_cast<long long>(c.undetected),
                    c.completed ? "true" : "false",
                    i + 1 < campaigns.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"false_positives\": %lld,\n",
                static_cast<long long>(falsePositives));
    std::printf("  \"modeled_4096_nodes\": {\n");
    std::printf("    \"resident_bytes\": %lld,\n",
                static_cast<long long>(atDefault.residentBytes));
    std::printf("    \"upset_mtbf_s\": %.4f,\n", atDefault.upsetMtbf);
    std::printf("    \"scan_time_s\": %.6f,\n", atDefault.scanTime);
    std::printf("    \"cadence_sweep\": [\n");
    for (std::size_t i = 0; i < swept.size(); ++i) {
        std::printf("      {\"interval\": %d, "
                    "\"detection_overhead_fraction\": %.8f, "
                    "\"guarded_waste_fraction\": %.8f, "
                    "\"unguarded_waste_fraction\": %.8f}%s\n",
                    cadences[i], swept[i].detectionOverheadFraction,
                    swept[i].guardedWasteFraction,
                    swept[i].unguardedWasteFraction,
                    i + 1 < swept.size() ? "," : "");
    }
    std::printf("    ],\n");
    std::printf("    \"waste_vs_ladder_rung\": [\n");
    for (int i = 0; i < 4; ++i)
        std::printf("      {\"rung\": \"%s\", \"restore_s\": %.8f, "
                    "\"waste_fraction\": %.8f}%s\n",
                    rungs[i].name, rungs[i].restore, ladderWaste[i],
                    i < 3 ? "," : "");
    std::printf("    ]\n");
    std::printf("  }\n");
    std::printf("}\n");

    if (failures) {
        std::fprintf(stderr, "\n%d gate(s) FAILED\n", failures);
        return 1;
    }
    return 0;
}
