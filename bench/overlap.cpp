// PR4 bench: comm/compute overlap on the DMR step.
//
// Methodology (the repo's execute-the-structure, model-the-time standard):
// one overlapped RK3 step is run at 1 thread with ThreadPool schedule
// tracing on. ScopedLaunchTag splits the traced launches into
//
//   "interior"  — the WENO/viscous passes over ghost-independent shrunk
//                 boxes (runnable while the exchange is in flight),
//   "halo+end"  — the fused launch whose task 0 drains the exchange
//                 (fillPatchEnd: ghost copies, coarse gather, ghost
//                 interpolation, BC fill) and whose remaining tasks sweep
//                 the halo strips,
//   untagged    — everything else pooled (setVal, RK update, reductions).
//
// For each fused launch l: E_l = taskNs[0] (the exchange-completion work a
// real implementation runs on the copy engine / comm stream), H_l(T) = the
// halo tasks' critical path at T threads, I_l(T) = the critical path of the
// interior launches between the previous fused launch and l. The network
// transit netNs of the step's point-to-point traffic (SimComm log at 8
// ranks against the Summit NetworkModel) is spread across the fused
// launches. Then per thread count T:
//
//   serial(T)  = rest + K(T) + sum_l [ E_l + net_l + I_l(T) + H_l(T) ]
//   overlap(T) = rest + K(T) + sum_l [ max(E_l + net_l, I_l(T)) + H_l(T) ]
//
// where K(T) is the untagged launches' critical path and rest is the
// unpooled serial remainder (wall(1) minus all traced task time). The two
// schedules execute identical work (pinned bitwise by tests/core/
// overlap_test); only the modeled placement differs.
//
// JSON on stdout (composed into BENCH_PR4.json by run_bench_pr4.sh); the
// readable table goes to stderr. Also emits the ScalingSimulator overlap
// sweep (totalSerial vs totalOverlapped + per-case overlap efficiency) at
// 1..4096 nodes, and the wenoFlux scratch-pool hit rate.
#include "core/CroccoAmr.hpp"
#include "gpu/Arena.hpp"
#include "gpu/ThreadPool.hpp"
#include "machine/ScalingSimulator.hpp"
#include "parallel/SimComm.hpp"
#include "problems/Dmr.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace crocco;
using Clock = std::chrono::steady_clock;

namespace {

double toNs(Clock::duration d) {
    return std::chrono::duration<double, std::nano>(d).count();
}

double criticalPathNs(const std::vector<double>& taskNs, int nthreads) {
    double worst = 0.0;
    for (int t = 0; t < nthreads; ++t) {
        double stripe = 0.0;
        for (std::size_t f = static_cast<std::size_t>(t); f < taskNs.size();
             f += static_cast<std::size_t>(nthreads))
            stripe += taskNs[f];
        worst = std::max(worst, stripe);
    }
    return worst;
}

/// One fused halo launch and the interior work that overlaps its exchange.
struct OverlapGroup {
    double endNs = 0;                         ///< E_l: task 0 of the fused launch
    std::vector<double> haloTaskNs;           ///< tasks 1..N of the fused launch
    std::vector<std::vector<double>> interior; ///< preceding interior launches
};

} // namespace

int main() {
    problems::Dmr::Options opts;
    opts.nx = 64;
    opts.ny = 48;
    opts.nz = 32;
    opts.maxLevel = 2;
    problems::Dmr dmr(opts);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    // Layout tuned for a meaningful overlap window: a loose clustering
    // efficiency merges the shock band's 8-wide slivers into fat boxes (a
    // 3-cell interior shrink leaves nothing of an 8-wide box), max_grid_size
    // keeps enough fabs per level to stripe over 8 workers, and the WENO
    // interpolator (the high-order choice matching the solver) gives the
    // exchange-completion phase its realistic interpolation weight.
    cfg.amrInfo.maxGridSize = 40;
    cfg.amrInfo.gridEff = 0.25;
    cfg.interp = core::InterpChoice::Weno;
    cfg.regridFreq = 1000; // freeze the hierarchy for stable timing
    cfg.overlap = true;
    cfg.nranks = 8;
    parallel::SimComm comm(static_cast<int>(cfg.nranks));
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping(), &comm);
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    gpu::setNumThreads(1);
    solver.evolve(2); // warm comm-pattern cache and the scratch pool

    // Scratch-pool hit rate over one steady-state step.
    auto& pool = gpu::ScratchPool::instance();
    pool.resetStats();

    // Trace one step, with the SimComm log isolating that step's traffic.
    comm.log().clear();
    auto& tp = gpu::ThreadPool::instance();
    tp.beginScheduleTrace();
    const auto t0 = Clock::now();
    solver.step();
    const double wall1 = toNs(Clock::now() - t0);
    const auto launches = tp.endScheduleTrace();

    const std::uint64_t poolHits = pool.hits();
    const std::uint64_t poolMisses = pool.misses();

    // Segment the trace into overlap groups + untagged launches.
    std::vector<OverlapGroup> groups;
    std::vector<std::vector<double>> untagged;
    std::vector<std::vector<double>> pendingInterior;
    double tracedNs = 0.0;
    for (const auto& l : launches) {
        for (double t : l.taskNs) tracedNs += t;
        if (l.tag == "interior") {
            pendingInterior.push_back(l.taskNs);
        } else if (l.tag == "halo+end") {
            OverlapGroup g;
            g.endNs = l.taskNs.empty() ? 0.0 : l.taskNs[0];
            g.haloTaskNs.assign(l.taskNs.begin() + (l.taskNs.empty() ? 0 : 1),
                                l.taskNs.end());
            g.interior = std::move(pendingInterior);
            pendingInterior.clear();
            groups.push_back(std::move(g));
        } else {
            untagged.push_back(l.taskNs);
        }
    }
    const double rest = std::max(0.0, wall1 - tracedNs);

    // Network transit of the step's p2p traffic under the Summit model,
    // 8 GPU ranks on 8 nodes, spread across the fused launches.
    machine::NetworkModel net;
    const auto perRank = comm.log().bytesPerRank(static_cast<int>(cfg.nranks));
    std::int64_t maxRankBytes = 0;
    for (auto b : perRank) maxRankBytes = std::max(maxRankBytes, b);
    const int nmsgs = static_cast<int>(
        comm.log().count(parallel::MessageKind::PointToPoint) / cfg.nranks + 1);
    const double netNs =
        1e9 * net.p2pPhaseTime(nmsgs, maxRankBytes, static_cast<int>(cfg.nranks),
                               /*gpuRun=*/true, /*ranksPerNode=*/1);
    const double netPerGroup = groups.empty() ? 0.0 : netNs / groups.size();

    auto modelStep = [&](int T, bool overlapped) {
        double total = rest;
        for (const auto& l : untagged) total += criticalPathNs(l, T);
        for (const auto& g : groups) {
            double interiorT = 0.0;
            for (const auto& l : g.interior) interiorT += criticalPathNs(l, T);
            const double comm = g.endNs + netPerGroup;
            total += overlapped ? std::max(comm, interiorT) + criticalPathNs(g.haloTaskNs, T)
                                : comm + interiorT + criticalPathNs(g.haloTaskNs, T);
        }
        return total;
    };

    std::size_t interiorLaunches = 0;
    for (const auto& g : groups) interiorLaunches += g.interior.size();
    std::fprintf(stderr,
                 "traced %zu launches: %zu fused halo+end, %zu interior, %zu "
                 "untagged; net %.0f us over %zu groups; scratch pool %llu "
                 "hits / %llu misses\n",
                 launches.size(), groups.size(), interiorLaunches,
                 untagged.size(), netNs / 1e3, groups.size(),
                 static_cast<unsigned long long>(poolHits),
                 static_cast<unsigned long long>(poolMisses));
    double endTotal = 0.0;
    for (const auto& g : groups) endTotal += g.endNs;
    for (const int T : {1, 2, 4, 8}) {
        double iT = 0.0, hT = 0.0, kT = 0.0;
        for (const auto& g : groups) {
            for (const auto& l : g.interior) iT += criticalPathNs(l, T);
            hT += criticalPathNs(g.haloTaskNs, T);
        }
        for (const auto& l : untagged) kT += criticalPathNs(l, T);
        std::fprintf(stderr,
                     "  T=%d breakdown (ms): E=%.1f net=%.1f I=%.1f H=%.1f "
                     "K=%.1f rest=%.1f\n",
                     T, endTotal / 1e6, netNs / 1e6, iT / 1e6, hT / 1e6,
                     kT / 1e6, rest / 1e6);
    }
    std::fprintf(stderr, "%8s %18s %18s %12s\n", "threads", "serial ns/step",
                 "overlap ns/step", "improvement");

    std::printf("{\n");
    std::printf("  \"layout\": \"DMR %dx%dx%d, %d levels, max_grid_size %d, "
                "grid_eff %.2f, weno interp, 8 ranks\",\n",
                opts.nx, opts.ny, opts.nz, solver.finestLevel() + 1,
                cfg.amrInfo.maxGridSize, cfg.amrInfo.gridEff);
    std::printf("  \"model\": \"per RK stage+level: exchange completion (fused-launch "
                "task 0) + modeled network transit hide behind the interior pass; "
                "halo strips and unpooled work stay serial; identical work to the "
                "serial schedule (bitwise-pinned by overlap_test)\",\n");
    std::printf("  \"net_ns_per_step\": %.0f,\n", netNs);
    std::printf("  \"scratch_pool\": {\"hits\": %llu, \"misses\": %llu, "
                "\"hit_rate\": %.3f},\n",
                static_cast<unsigned long long>(poolHits),
                static_cast<unsigned long long>(poolMisses),
                poolHits + poolMisses
                    ? static_cast<double>(poolHits) / (poolHits + poolMisses)
                    : 0.0);
    std::printf("  \"steps\": [\n");
    const int threadCounts[] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
        const int T = threadCounts[i];
        const double s = modelStep(T, false);
        const double o = modelStep(T, true);
        std::fprintf(stderr, "%8d %18.0f %18.0f %11.2fx\n", T, s, o, s / o);
        std::printf("    {\"threads\": %d, \"serial_modeled_ns\": %.0f, "
                    "\"overlap_modeled_ns\": %.0f, \"improvement\": %.3f}%s\n",
                    T, s, o, s / o, i < 3 ? "," : "");
    }
    std::printf("  ],\n");

    // ScalingSimulator weak-scaling sweep with the overlap-aware model:
    // ~41M equivalent points per node (the paper's per-node load).
    machine::ScalingSimulator sim;
    std::printf("  \"scaling\": [\n");
    const int nodeCounts[] = {1, 4, 16, 64, 256, 1024, 4096};
    std::fprintf(stderr, "%8s %14s %14s %12s %12s\n", "nodes", "serial s/it",
                 "overlap s/it", "speedup", "efficiency");
    for (int i = 0; i < 7; ++i) {
        const int nodes = nodeCounts[i];
        const machine::ScalingCase c{core::CodeVersion::V20, nodes,
                                     41000000ll * nodes};
        const auto rt = sim.iterationTime(c);
        std::fprintf(stderr, "%8d %14.4f %14.4f %11.2fx %11.0f%%\n", nodes,
                     rt.totalSerial(), rt.totalOverlapped(),
                     rt.totalSerial() / rt.totalOverlapped(),
                     100.0 * rt.overlapEfficiency());
        std::printf("    {\"nodes\": %d, \"total_serial_s\": %.6f, "
                    "\"total_overlapped_s\": %.6f, \"overlap_efficiency\": "
                    "%.3f}%s\n",
                    nodes, rt.totalSerial(), rt.totalOverlapped(),
                    rt.overlapEfficiency(), i < 6 ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
