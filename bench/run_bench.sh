#!/bin/sh
# Runs the PR2 perf benches and composes their JSON into BENCH_PR2.json:
# before/after ns-per-call for the cached communication patterns
# (bench/comm_cache.cpp) and ns-per-step for the DMR RK3 step at 1/2/4/8
# worker threads (bench/thread_scaling.cpp).
#
# Usage: bench/run_bench.sh [build-dir] [output.json]
set -e

BUILD=${1:-build}
OUT=${2:-BENCH_PR2.json}

for exe in comm_cache thread_scaling; do
    if [ ! -x "$BUILD/bench/$exe" ]; then
        echo "error: $BUILD/bench/$exe not built (cmake --build $BUILD --target $exe)" >&2
        exit 1
    fi
done

COMM=$("$BUILD/bench/comm_cache")
THREADS=$("$BUILD/bench/thread_scaling")

{
    echo '{'
    echo '  "bench": "PR2: cached communication patterns + tiled multithreaded kernels",'
    echo "  \"comm_cache\": $COMM,"
    echo "  \"thread_scaling\": $THREADS"
    echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
