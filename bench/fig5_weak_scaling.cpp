// Regenerates Fig. 5 (right) + Table I: weak scaling of CRoCCo 1.1 / 1.2 /
// 2.0 / 2.1 over the paper's node/problem-size ladder, with weak-scaling
// efficiencies relative to the 4-node case.
#include "bench_util.hpp"

using namespace crocco;
using namespace crocco::bench;
using core::CodeVersion;

int main() {
    printHeader("Figure 5 (right): weak scaling per Table I (DMR)");
    machine::ScalingSimulator sim;

    const CodeVersion versions[] = {CodeVersion::V11, CodeVersion::V12,
                                    CodeVersion::V20, CodeVersion::V21};
    std::printf("%8s %12s | %38s | %31s\n", "nodes", "equiv pts",
                "time per iteration (s)", "efficiency vs 4 nodes");
    std::printf("%8s %12s | %9s %9s %9s %9s | %7s %7s %7s %7s\n", "", "", "v1.1",
                "v1.2", "v2.0", "v2.1", "v1.1", "v1.2", "v2.0", "v2.1");

    double base[4] = {0, 0, 0, 0};
    const auto rows = tableOneCases(CodeVersion::V11);
    for (std::size_t idx = 0; idx < rows.size(); ++idx) {
        double t[4];
        for (int v = 0; v < 4; ++v) {
            auto c = rows[idx];
            c.version = versions[v];
            t[v] = sim.iterationTime(c).totalSerial();
            if (idx == 0) base[v] = t[v];
        }
        std::printf("%8d %12.2e | %9.4f %9.4f %9.4f %9.4f | %6.0f%% %6.0f%% %6.0f%% %6.0f%%\n",
                    rows[idx].nodes, static_cast<double>(rows[idx].equivalentPoints),
                    t[0], t[1], t[2], t[3], 100 * base[0] / t[0],
                    100 * base[1] / t[1], 100 * base[2] / t[2],
                    100 * base[3] / t[3]);
    }
    std::printf("\nPaper reference points (Sec. VI-B):\n");
    std::printf("  v2.0 weak efficiency ~54%% at 400 nodes, ~40%% at 1024 nodes\n");
    std::printf("  v2.1 (trilinear interp, no global coordinate copy) ~70%% at 400 nodes\n");
    std::printf("  CPU versions stay near-flat; all versions improve slightly 4 -> 16\n");
    return 0;
}
