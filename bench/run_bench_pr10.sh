#!/bin/sh
# Runs the PR10 SDC bench and composes its JSON into BENCH_PR10.json: the
# measured per-mechanism detection overhead (CRC/digest verify at two
# cadences, sampled dual execution) on an executed DMR run, the seeded
# cold-flip injection sweep with detected/undetected/false-positive counts
# across flip rates and verify intervals, and the FailureModel economics at
# the paper's 4096-node configuration (detection overhead vs silent-error
# recompute waste across cadences, modeled waste per upset at each rung of
# the recovery ladder). The bench binary itself enforces the PR10 gates
# (zero undetected flips in guarded state at interval 1, zero false
# positives, < 5% modeled overhead at the default cadence, monotone ladder
# waste) and exits nonzero on a miss.
#
# Usage: bench/run_bench_pr10.sh [build-dir] [output.json]
set -e

BUILD=${1:-build}
OUT=${2:-BENCH_PR10.json}

if [ ! -x "$BUILD/bench/sdc" ]; then
    echo "error: $BUILD/bench/sdc not built (cmake --build $BUILD --target sdc)" >&2
    exit 1
fi

SDC=$("$BUILD/bench/sdc")

{
    echo '{'
    echo '  "bench": "PR10: silent-data-corruption resilience (FabGuard CRC/digest/dual-execution detection, SdcInjector campaigns, recovery-ladder economics; resilience.sdc_*)",'
    echo "  \"sdc\": $SDC"
    echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
