// Regenerates Fig. 7: decomposition of FillPatch runtime (CRoCCo 2.1,
// trilinear interpolator) into its communication phases across the weak
// scaling cases: ParallelCopy (the coarse-data gather) vs FillBoundary
// (neighbor ghost exchange). The in-process SimComm tags map onto the
// paper's *_finish/_nowait pairs, which we report as a synchronous whole.
#include "bench_util.hpp"

using namespace crocco;
using namespace crocco::bench;
using core::CodeVersion;

int main() {
    printHeader("Figure 7: FillPatch decomposition (CRoCCo 2.1), weak scaling");
    machine::ScalingSimulator sim;
    std::printf("%8s | %14s %14s %14s | %12s\n", "nodes", "ParallelCopy",
                "FillBoundary", "interp+local", "FillPatch");
    for (const auto& c : tableOneCases(CodeVersion::V21)) {
        const auto rt = sim.iterationTime(c);
        std::printf("%8d | %14.4f %14.4f %14.4f | %12.4f\n", c.nodes,
                    rt.parallelCopy + rt.parallelCopyInterp, rt.fillBoundary,
                    rt.interpCompute, rt.fillPatch());
    }
    std::printf("\nPaper reference (Sec. VI-C): ParallelCopy(_finish) grows with\n");
    std::printf("node count and dominates FillPatch at scale; FillBoundary's\n");
    std::printf("point-to-point phase grows much more slowly.\n");
    return 0;
}
