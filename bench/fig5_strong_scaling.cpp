// Regenerates Fig. 5 (left): strong scaling of CRoCCo 1.1 / 1.2 / 2.0 on
// 16-1024 Summit nodes at 1.27e9 grid points — time per iteration, plus the
// paper's headline speedup ratios (AMR over non-AMR, GPU over CPU+AMR,
// combined).
#include "bench_util.hpp"

using namespace crocco;
using namespace crocco::bench;
using core::CodeVersion;

int main() {
    printHeader("Figure 5 (left): strong scaling, 1.27e9 grid points (DMR)");
    machine::ScalingSimulator sim;

    const CodeVersion versions[] = {CodeVersion::V11, CodeVersion::V12,
                                    CodeVersion::V20};
    std::printf("%8s %16s %16s %16s %10s %10s %10s\n", "nodes", "v1.1 s/iter",
                "v1.2 s/iter", "v2.0 s/iter", "AMR x", "GPU x", "both x");
    for (int idx = 0; idx < 7; ++idx) {
        double t[3];
        int nodes = 0;
        for (int v = 0; v < 3; ++v) {
            const auto c = strongCases(versions[v])[idx];
            nodes = c.nodes;
            t[v] = sim.iterationTime(c).totalSerial();
        }
        std::printf("%8d %16.4f %16.4f %16.4f %10.2f %10.2f %10.2f\n", nodes,
                    t[0], t[1], t[2], t[0] / t[1], t[1] / t[2], t[0] / t[2]);
    }
    std::printf("\nPaper reference points (Sec. VI-B):\n");
    std::printf("  16 nodes:  AMR 4.6x, GPU 44x, combined 201x\n");
    std::printf("  1024 nodes: AMR 0.9x (1.1x slowdown), GPU 6x, combined 5.5x\n");
    std::printf("  GPU version stops improving around 128 nodes; CPU scales to 1024.\n");
    return 0;
}
