// Regenerates Fig. 6: decomposition of CRoCCo 2.1 runtime (default AMReX
// trilinear interpolator) into TinyProfiler regions across the weak-scaling
// node counts — and, for comparison with the text's discussion of 2.0, the
// same decomposition including the curvilinear interpolator's extra global
// ParallelCopy.
#include "bench_util.hpp"

using namespace crocco;
using namespace crocco::bench;
using core::CodeVersion;

namespace {

void profileTable(machine::ScalingSimulator& sim, CodeVersion v) {
    std::printf("\n-- %s --\n", versionName(v));
    std::printf("%8s | %10s %10s %10s %10s %10s %10s %10s | %10s\n", "nodes",
                "Advance", "FillBdry", "PllCopy", "PCInterp", "InterpCmp",
                "ComputeDt", "Regrid", "total");
    for (const auto& c : tableOneCases(v)) {
        const auto rt = sim.iterationTime(c);
        std::printf(
            "%8d | %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f | %10.4f\n",
            c.nodes, rt.advance() + rt.update, rt.fillBoundary, rt.parallelCopy,
            rt.parallelCopyInterp, rt.interpCompute,
            rt.computeDt, rt.regrid + rt.averageDown, rt.totalSerial());
    }
}

} // namespace

int main() {
    printHeader("Figure 6: runtime decomposition, weak scaling cases");
    machine::ScalingSimulator sim;
    profileTable(sim, CodeVersion::V21);
    profileTable(sim, CodeVersion::V20);
    std::printf("\nPaper reference (Sec. VI-C, v2.1):\n");
    std::printf("  FillPatch time grows ~40%% from 4 to 100 nodes and ~65%% more\n");
    std::printf("  from 100 to 1024; Advance stays steady; ComputeDt is negligible;\n");
    std::printf("  Regrid also grows with node count.\n");
    return 0;
}
