// PR2 bench: tiled multithreaded kernel execution on the DMR step.
//
// Reports the full RK3 step cost at 1/2/4/8 worker threads two ways:
//
//  * wall_ns_per_step — measured wall clock on THIS host. On a single-core
//    container (CI has hardware_concurrency == 1) extra workers cannot make
//    wall clock faster; the number is recorded for honesty, not as the
//    headline.
//  * modeled_ns_per_step — the critical-path time of the deterministic
//    stripe schedule gpu::ThreadPool executes (task t -> thread t % T).
//    One step is run with ThreadPool schedule tracing on, which records the
//    serial duration of every task of every pooled launch (WENO/viscous
//    drivers, MultiFab setVal/mult/saxpy/reductions); the model then
//    replaces each launch's serial total with its slowest stripe at T
//    threads. Everything not pooled (FillBoundary replay copies, FillPatch
//    interpolation, regrid, health checks) stays serial in the model. This
//    is the repo's standard methodology: execute the real structure, model
//    the time (gpu::DeviceModel, parallel::SimComm).
//
// modeled(T) = wall(1) - sum_L serial(L) + sum_L criticalPath(L, T) over
// all pooled launches L of one step.
//
// JSON on stdout (composed into BENCH_PR2.json); table on stderr.
#include "core/CroccoAmr.hpp"
#include "gpu/ThreadPool.hpp"
#include "problems/Dmr.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace crocco;
using Clock = std::chrono::steady_clock;

namespace {

double toNs(Clock::duration d) {
    return std::chrono::duration<double, std::nano>(d).count();
}

/// Slowest stripe of the pool's deterministic schedule: thread t owns tasks
/// t, t+T, t+2T, ...; the launch completes when the busiest thread does.
double criticalPathNs(const std::vector<double>& taskNs, int nthreads) {
    double worst = 0.0;
    for (int t = 0; t < nthreads; ++t) {
        double stripe = 0.0;
        for (std::size_t f = static_cast<std::size_t>(t); f < taskNs.size();
             f += static_cast<std::size_t>(nthreads))
            stripe += taskNs[f];
        worst = std::max(worst, stripe);
    }
    return worst;
}

} // namespace

int main() {
    problems::Dmr::Options opts;
    opts.nx = 96;
    opts.ny = 24;
    opts.nz = 8;
    opts.maxLevel = 1;
    problems::Dmr dmr(opts);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    // The paper's decomposition knob: chop to 16^3 boxes so every level has
    // enough fabs to stripe across 8 workers (96x24x8 at max_grid_size 32 is
    // a mere 3 boxes on level 0 — nothing to balance).
    cfg.amrInfo.maxGridSize = 16;
    cfg.regridFreq = 1000; // freeze the hierarchy after init for stable timing
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    gpu::setNumThreads(1);
    solver.evolve(2); // warm caches (comm patterns, page faults)

    // Trace every pooled launch of one representative step.
    auto& pool = gpu::ThreadPool::instance();
    pool.beginScheduleTrace();
    solver.step();
    const auto launches = pool.endScheduleTrace();

    auto kernelNs = [&](int nthreads) {
        double total = 0.0;
        for (const auto& l : launches) total += criticalPathNs(l.taskNs, nthreads);
        return total;
    };

    const int threadCounts[] = {1, 2, 4, 8};
    double wallNs[4] = {};
    for (int i = 0; i < 4; ++i) {
        gpu::setNumThreads(threadCounts[i]);
        const int reps = 3;
        const auto t0 = Clock::now();
        solver.evolve(reps);
        wallNs[i] = toNs(Clock::now() - t0) / reps;
    }
    gpu::setNumThreads(1);

    const double serialNs = wallNs[0] - kernelNs(1);
    const unsigned hw = std::thread::hardware_concurrency();
    std::size_t ntasks = 0;
    for (const auto& l : launches) ntasks += l.taskNs.size();

    std::fprintf(stderr,
                 "traced %zu pooled launches, %zu tasks; pooled fraction of "
                 "the step: %.0f%%\n",
                 launches.size(), ntasks, 100.0 * kernelNs(1) / wallNs[0]);
    std::fprintf(stderr, "%8s %16s %16s %8s\n", "threads", "wall ns/step",
                 "modeled ns/step", "speedup");
    std::printf("{\n");
    std::printf("  \"layout\": \"DMR %dx%dx%d, %d levels, max_grid_size %d\",\n",
                opts.nx, opts.ny, opts.nz, solver.finestLevel() + 1,
                cfg.amrInfo.maxGridSize);
    std::printf("  \"host_cores\": %u,\n", hw);
    std::printf("  \"pooled_launches\": %zu,\n", launches.size());
    std::printf("  \"pooled_fraction\": %.3f,\n", kernelNs(1) / wallNs[0]);
    std::printf("  \"model\": \"critical path of the deterministic stripe "
                "schedule (t %% T) over per-task serial times traced from "
                "every pooled launch of one step; wall_ns is the host wall "
                "clock, which cannot improve on a %u-core host\",\n",
                hw);
    std::printf("  \"steps\": [\n");
    for (int i = 0; i < 4; ++i) {
        const int T = threadCounts[i];
        const double modeled = serialNs + kernelNs(T);
        const double speedup = wallNs[0] / modeled;
        std::fprintf(stderr, "%8d %16.0f %16.0f %7.2fx\n", T, wallNs[i], modeled,
                     speedup);
        std::printf("    {\"threads\": %d, \"wall_ns_per_step\": %.0f, "
                    "\"modeled_ns_per_step\": %.0f, \"modeled_speedup\": %.3f}%s\n",
                    T, wallNs[i], modeled, speedup, i < 3 ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
