#!/bin/sh
# Runs the PR7 fused-RHS bench and composes its JSON into BENCH_PR7.json:
# per-RK3-stage counted launches and modeled DRAM bytes/point for the
# unfused vs fused pipeline, the modeled V100 step time and speedup, the
# executed host critical path at 1/4/8 threads, and the ScalingSimulator
# weak-scaling sweep (Params::fusedPipeline off vs on) at 1..4096 nodes.
# The bench binary itself enforces the PR7 gates (>= 2x fewer launches per
# stage, >= 1.3x modeled step speedup) and exits nonzero on a miss.
#
# Usage: bench/run_bench_pr7.sh [build-dir] [output.json]
set -e

BUILD=${1:-build}
OUT=${2:-BENCH_PR7.json}

if [ ! -x "$BUILD/bench/fused_rhs" ]; then
    echo "error: $BUILD/bench/fused_rhs not built (cmake --build $BUILD --target fused_rhs)" >&2
    exit 1
fi

FUSED=$("$BUILD/bench/fused_rhs")

{
    echo '{'
    echo '  "bench": "PR7: fused RHS pipeline (shared primitive cache + single-pass WENO flux/divergence + fused RK3 update + launch batching)",'
    echo "  \"fused_rhs\": $FUSED"
    echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
