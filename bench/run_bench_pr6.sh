#!/bin/sh
# Runs the PR6 recovery bench and composes its JSON into BENCH_PR6.json:
# the Daly recovery-waste fraction for disk restart vs in-memory buddy
# recovery at 1..4096 nodes (weak scaling), plus the verified-exchange
# retransmit overhead at the soak campaign's fault rate.
#
# Usage: bench/run_bench_pr6.sh [build-dir] [output.json]
set -e

BUILD=${1:-build}
OUT=${2:-BENCH_PR6.json}

if [ ! -x "$BUILD/bench/recovery" ]; then
    echo "error: $BUILD/bench/recovery not built (cmake --build $BUILD --target recovery)" >&2
    exit 1
fi

RECOVERY=$("$BUILD/bench/recovery")

{
    echo '{'
    echo '  "bench": "PR6: fault-tolerant communication (disk vs buddy recovery waste, retransmit overhead)",'
    echo "  \"recovery\": $RECOVERY"
    echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
