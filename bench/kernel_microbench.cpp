// Google-benchmark microbenchmarks of the numerics kernels and the core AMR
// primitives on this host: the measured side of Fig. 3 and the ablation
// substrate. Run with --benchmark_min_time=... for tighter statistics.
#include <benchmark/benchmark.h>

#include "amr/FillPatch.hpp"
#include "core/ComputeDt.hpp"
#include "core/Viscous.hpp"
#include "core/Weno.hpp"
#include "mesh/CoordStore.hpp"
#include "mesh/GridMetrics.hpp"

namespace {

using namespace crocco;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

struct KernelState {
    amr::Geometry geom;
    FArrayBox coords, metrics, S, dU;
    core::GasModel gas;

    explicit KernelState(int n) {
        gas.muRef = 0.01;
        geom = amr::Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0},
                             {1, 1, 1}, amr::Periodicity::all());
        auto mapping = std::make_shared<mesh::InteriorWavyMapping>(
            std::array<double, 3>{0, 0, 0}, std::array<double, 3>{1, 1, 1}, 0.02);
        mesh::CoordStore store(mapping, geom, IntVect(2), 0, core::NGHOST + 3);
        const Box grown = geom.domain().grow(core::NGHOST);
        coords = FArrayBox(geom.domain().grow(core::NGHOST + 3), 3);
        store.getCoords(coords, 0);
        metrics = FArrayBox(grown, mesh::MetricComps);
        mesh::computeMetricsFab(coords.const_array(), metrics.array(), grown,
                                geom.cellSizeArray());
        S = FArrayBox(grown, core::NCONS);
        auto s = S.array();
        amr::forEachCell(grown, [&](int i, int j, int k) {
            const double rho = 1.0 + 0.1 * std::sin(0.4 * i + 0.2 * j);
            s(i, j, k, core::URHO) = rho;
            s(i, j, k, core::UMX) = 0.3 * rho;
            s(i, j, k, core::UMY) = 0.1;
            s(i, j, k, core::UMZ) = 0.0;
            s(i, j, k, core::UEDEN) = gas.totalEnergy(rho, 0.3, 0.1 / rho, 0, 1.0);
        });
        dU = FArrayBox(geom.domain(), core::NCONS, 0.0);
    }
};

void BM_WenoX(benchmark::State& state, core::KernelVariant variant) {
    KernelState ks(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        core::wenoFlux(0, ks.S.const_array(), ks.metrics.const_array(),
                       ks.geom.domain(), ks.dU.array(), ks.geom.cellSize(0),
                       ks.gas, core::WenoScheme::Symbo, variant);
        benchmark::DoNotOptimize(ks.dU);
    }
    state.SetItemsProcessed(state.iterations() * ks.geom.domain().numPts());
}

void BM_Viscous(benchmark::State& state) {
    KernelState ks(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        core::viscousFlux(ks.S.const_array(), ks.metrics.const_array(),
                          ks.geom.domain(), ks.dU.array(), ks.geom.cellSizeArray(),
                          ks.gas, core::KernelVariant::Portable);
        benchmark::DoNotOptimize(ks.dU);
    }
    state.SetItemsProcessed(state.iterations() * ks.geom.domain().numPts());
}

void BM_ComputeDt(benchmark::State& state) {
    KernelState ks(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::computeDtFab(
            ks.S.const_array(), ks.metrics.const_array(), ks.geom.domain(),
            ks.geom.cellSizeArray(), ks.gas, 0.5));
    }
    state.SetItemsProcessed(state.iterations() * ks.geom.domain().numPts());
}

void BM_Metrics(benchmark::State& state) {
    KernelState ks(static_cast<int>(state.range(0)));
    const Box grown = ks.geom.domain().grow(core::NGHOST);
    for (auto _ : state) {
        mesh::computeMetricsFab(ks.coords.const_array(), ks.metrics.array(),
                                grown, ks.geom.cellSizeArray());
        benchmark::DoNotOptimize(ks.metrics);
    }
    state.SetItemsProcessed(state.iterations() * grown.numPts());
}

void BM_Interp(benchmark::State& state, const amr::Interpolater& interp) {
    const Box fineRegion(IntVect(8), IntVect(8 + static_cast<int>(state.range(0)) - 1));
    const Box crseBox = fineRegion.coarsen(2).grow(interp.nGrowCoarse());
    FArrayBox crse(crseBox, core::NCONS, 1.0), fine(fineRegion, core::NCONS);
    FArrayBox crseCoords(crseBox.grow(1), 3), fineCoords(fineRegion, 3);
    auto cc = crseCoords.array();
    amr::forEachCell(crseCoords.box(), [&](int i, int j, int k) {
        cc(i, j, k, 0) = i + 0.5;
        cc(i, j, k, 1) = j + 0.5;
        cc(i, j, k, 2) = k + 0.5;
    });
    auto fc = fineCoords.array();
    amr::forEachCell(fineRegion, [&](int i, int j, int k) {
        fc(i, j, k, 0) = (i + 0.5) * 0.5;
        fc(i, j, k, 1) = (j + 0.5) * 0.5;
        fc(i, j, k, 2) = (k + 0.5) * 0.5;
    });
    amr::InterpContext ctx{&crseCoords, &fineCoords};
    for (auto _ : state) {
        interp.interp(crse, fine, fineRegion, 0, 0, core::NCONS, IntVect(2), ctx);
        benchmark::DoNotOptimize(fine);
    }
    state.SetItemsProcessed(state.iterations() * fineRegion.numPts());
}

const amr::TrilinearInterp kTrilinear;
const amr::CurvilinearInterp kCurvilinear;
const amr::WenoInterp kWenoInterp;

} // namespace

BENCHMARK_CAPTURE(BM_WenoX, line_scratch, core::KernelVariant::FortranStyle)
    ->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_WenoX, staged_gpu_structure, core::KernelVariant::Portable)
    ->Arg(16)->Arg(32);
BENCHMARK(BM_Viscous)->Arg(16)->Arg(32);
BENCHMARK(BM_ComputeDt)->Arg(32);
BENCHMARK(BM_Metrics)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Interp, trilinear, kTrilinear)->Arg(16);
BENCHMARK_CAPTURE(BM_Interp, curvilinear, kCurvilinear)->Arg(16);
BENCHMARK_CAPTURE(BM_Interp, weno, kWenoInterp)->Arg(16);

BENCHMARK_MAIN();
