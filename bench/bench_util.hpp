#pragma once

#include "machine/ScalingSimulator.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace crocco::bench {

/// Shared helpers for the figure/table benches: consistent row printing so
/// bench outputs read like the paper's tables.

inline const char* versionName(core::CodeVersion v) {
    switch (v) {
        case core::CodeVersion::V10: return "CRoCCo 1.0 (Fortran CPU)";
        case core::CodeVersion::V11: return "CRoCCo 1.1 (C++ CPU)";
        case core::CodeVersion::V12: return "CRoCCo 1.2 (C++ CPU + AMR)";
        case core::CodeVersion::V20: return "CRoCCo 2.0 (GPU + AMR)";
        case core::CodeVersion::V21: return "CRoCCo 2.1 (GPU + AMR, trilinear)";
    }
    return "?";
}

inline void printHeader(const std::string& title) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

/// The paper's Table I weak-scaling rows: {nodes, equivalent grid points}.
inline std::vector<machine::ScalingCase> tableOneCases(core::CodeVersion v) {
    const std::pair<int, double> rows[] = {
        {4, 1.64e8},   {16, 6.55e8},  {36, 1.47e9},  {64, 2.62e9},
        {100, 4.10e9}, {256, 1.05e10}, {400, 1.64e10}, {1024, 4.19e10},
    };
    std::vector<machine::ScalingCase> cases;
    for (const auto& [nodes, pts] : rows)
        cases.push_back({v, nodes, static_cast<std::int64_t>(pts)});
    return cases;
}

/// Strong scaling node counts (Fig. 5 left): 16..1024 at 1.27e9 points.
inline std::vector<machine::ScalingCase> strongCases(core::CodeVersion v) {
    std::vector<machine::ScalingCase> cases;
    for (int nodes : {16, 32, 64, 128, 256, 512, 1024})
        cases.push_back({v, nodes, 1270000000ll});
    return cases;
}

} // namespace crocco::bench
