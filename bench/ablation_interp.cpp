// Ablation (§III-C "Interpolation"): the fine/coarse interpolator choice.
//
//  * trilinear      — AMReX's built-in (CRoCCo 2.1): index-space weights,
//                     no coordinate data, no global communication;
//  * curvilinear    — CRoCCo's custom scheme (2.0): physical-space weights,
//                     needs the coordinate gather (the global ParallelCopy
//                     the paper profiles), exact for affine fields on any
//                     grid, not conservative;
//  * conservative   — cell-conservative linear comparator;
//  * WENO           — the paper's in-development high-order conservative
//                     replacement ("future work", implemented here).
//
// For each: measured interpolation error on a smooth field over a stretched
// grid, conservation defect, coarse ghost need, and whether it triggers the
// coordinate ParallelCopy.
#include "bench_util.hpp"

#include "amr/Interpolater.hpp"

#include <cmath>
#include <memory>

using namespace crocco;
using namespace crocco::bench;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

namespace {

double stretch(double x) { return x + 0.12 * x * x; }

using Field = double (*)(double, double, double);
double smoothField(double x, double y, double z) {
    return std::sin(0.35 * x) * std::cos(0.3 * y) + 0.2 * std::sin(0.25 * z);
}
// Affine in *physical* space: the discriminating case — exact for the
// curvilinear scheme on any grid, inexact for index-space trilinear on a
// stretched one.
double affineField(double x, double y, double z) {
    return 2.0 * x - 0.5 * y + 0.25 * z + 1.0;
}

struct Result {
    double maxErr, consDefect;
};

Result evaluate(const amr::Interpolater& interp, Field field) {
    const Box fineRegion(IntVect(4), IntVect(19));
    const IntVect ratio(2);
    const Box crseBox = fineRegion.coarsen(ratio).grow(interp.nGrowCoarse());

    FArrayBox crse(crseBox, 1), crseCoords(crseBox, 3);
    auto c = crse.array();
    auto cc = crseCoords.array();
    amr::forEachCell(crseBox, [&](int i, int j, int k) {
        const double x = stretch(i + 0.5), y = j + 0.5, z = k + 0.5;
        cc(i, j, k, 0) = x;
        cc(i, j, k, 1) = y;
        cc(i, j, k, 2) = z;
        c(i, j, k, 0) = field(x, y, z);
    });
    FArrayBox fine(fineRegion, 1), fineCoords(fineRegion, 3);
    auto fc = fineCoords.array();
    amr::forEachCell(fineRegion, [&](int i, int j, int k) {
        fc(i, j, k, 0) = stretch((i + 0.5) * 0.5);
        fc(i, j, k, 1) = (j + 0.5) * 0.5;
        fc(i, j, k, 2) = (k + 0.5) * 0.5;
    });
    amr::InterpContext ctx{&crseCoords, &fineCoords};
    interp.interp(crse, fine, fineRegion, 0, 0, 1, ratio, ctx);

    Result r{0.0, 0.0};
    auto f = fine.const_array();
    amr::forEachCell(fineRegion, [&](int i, int j, int k) {
        const double exact =
            field(stretch((i + 0.5) * 0.5), (j + 0.5) * 0.5, (k + 0.5) * 0.5);
        r.maxErr = std::max(r.maxErr, std::abs(f(i, j, k, 0) - exact));
    });
    // Conservation defect: worst |child mean - parent value| per coarse cell.
    auto cca = crse.const_array();
    amr::forEachCell(fineRegion.coarsen(ratio), [&](int i, int j, int k) {
        double mean = 0.0;
        for (int dk = 0; dk < 2; ++dk)
            for (int dj = 0; dj < 2; ++dj)
                for (int di = 0; di < 2; ++di)
                    mean += f(2 * i + di, 2 * j + dj, 2 * k + dk, 0);
        r.consDefect =
            std::max(r.consDefect, std::abs(mean / 8.0 - cca(i, j, k, 0)));
    });
    return r;
}

} // namespace

int main() {
    printHeader("Ablation: fine/coarse interpolator choice (2.0 vs 2.1 vs future)");
    struct Row {
        const char* name;
        std::unique_ptr<amr::Interpolater> interp;
        const char* comm;
    } rows[4];
    rows[0] = {"trilinear (v2.1)", std::make_unique<amr::TrilinearInterp>(),
               "none"};
    rows[1] = {"curvilinear (v2.0)", std::make_unique<amr::CurvilinearInterp>(),
               "global coord copy"};
    rows[2] = {"conservative", std::make_unique<amr::CellConservativeLinear>(),
               "none"};
    rows[3] = {"WENO (future work)", std::make_unique<amr::WenoInterp>(), "none"};

    std::printf("%20s | %12s %12s %14s %6s | %s\n", "interpolator",
                "err (smooth)", "err (affine)", "cons. defect", "ghost",
                "extra communication");
    for (auto& r : rows) {
        const Result smooth = evaluate(*r.interp, smoothField);
        const Result affine = evaluate(*r.interp, affineField);
        std::printf("%20s | %12.3e %12.3e %14.3e %6d | %s\n", r.name,
                    smooth.maxErr, affine.maxErr, smooth.consDefect,
                    r.interp->nGrowCoarse(), r.comm);
    }
    std::printf("\nThe curvilinear scheme's physical-space weights pay off as grid\n");
    std::printf("stretching grows (it is exact for affine fields where trilinear\n");
    std::printf("is not — see interp_test), at the price of the coordinate\n");
    std::printf("ParallelCopy. The WENO interpolator is more accurate still and\n");
    std::printf("communication-free — why the paper develops it (Sec. III-C);\n");
    std::printf("only the conservative-linear comparator preserves coarse means\n");
    std::printf("exactly, the property the WENO scheme is being extended toward.\n");
    return 0;
}
