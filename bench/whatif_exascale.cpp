// What-if projection (extension): the paper's closing insight is that GPU
// speedups turn AMR codes communication-bound, and the effect sharpens on
// "modern exascale systems". This bench reruns the weak-scaling study with
// an exascale-class accelerator model (MI250X/H100-era: ~4x the V100's HBM
// bandwidth and ~3x its usable DP peak, similar network) to quantify how
// much worse the FillPatch share gets when kernels speed up again.
#include "bench_util.hpp"

using namespace crocco;
using namespace crocco::bench;
using core::CodeVersion;

int main() {
    printHeader("What-if: the paper's weak scaling on an exascale-class GPU");

    machine::ScalingSimulator summit;

    machine::ScalingSimulator::Params p;
    p.machine.v100.peakFlops = 24e12;  // usable DP of an exascale-class part
    p.machine.v100.bwDram = 3.2e12;    // HBM2e/HBM3-class
    p.machine.v100.bwL2 = 8e12;
    p.machine.v100.bwL1 = 40e12;
    p.machine.v100.pointsToSaturate = 8e5; // bigger device, later saturation
    machine::ScalingSimulator exa(p);

    std::printf("%8s | %12s %12s | %14s %14s\n", "nodes", "V100 s/iter",
                "exa s/iter", "V100 comm frac", "exa comm frac");
    double baseV = 0, baseE = 0;
    for (const auto& c : tableOneCases(CodeVersion::V20)) {
        const auto rv = summit.iterationTime(c);
        const auto re = exa.iterationTime(c);
        if (c.nodes == 4) {
            baseV = rv.totalSerial();
            baseE = re.totalSerial();
        }
        std::printf("%8d | %12.4f %12.4f | %13.0f%% %13.0f%%\n", c.nodes,
                    rv.totalSerial(), re.totalSerial(), 100 * rv.fillPatch() / rv.totalSerial(),
                    100 * re.fillPatch() / re.totalSerial());
    }
    const auto rv = summit.iterationTime(
        {CodeVersion::V20, 1024, 41900000000ll});
    const auto re = exa.iterationTime({CodeVersion::V20, 1024, 41900000000ll});
    std::printf("\nweak efficiency at 1024 nodes: V100 %.0f%%, exascale %.0f%%\n",
                100 * baseV / rv.totalSerial(), 100 * baseE / re.totalSerial());
    std::printf("\nFaster kernels shrink Advance but not FillPatch: the\n");
    std::printf("communication share grows further, confirming the paper's\n");
    std::printf("insight #2 — GPU AMR codes at exascale need the interpolator\n");
    std::printf("and ParallelCopy optimizations (v2.1 / WENO interp) even more.\n");
    return 0;
}
