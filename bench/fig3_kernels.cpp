// Regenerates Fig. 3: time per iteration in the WENOx and Viscous kernels
// vs problem size, for the Fortran-structured CPU kernels, the portable C++
// CPU kernels, and the GPU port.
//
// Two tables are printed:
//  1. *Measured* host times of our two kernel structures (the paper's
//     Fortran vs C++ comparison maps onto FortranStyle vs Portable — same
//     arithmetic, different memory structure);
//  2. *Modeled* times on the paper's hardware (one 22-core P9 socket vs one
//     V100) from the calibrated execution models, reproducing the paper's
//     1.2x C++ slowdown and 2.5x-15.8x GPU speedup band.
#include "bench_util.hpp"

#include "core/KernelProfiles.hpp"
#include "core/Viscous.hpp"
#include "core/Weno.hpp"
#include "mesh/CoordStore.hpp"
#include "mesh/GridMetrics.hpp"

#include <chrono>

using namespace crocco;
using namespace crocco::bench;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

namespace {

struct KernelSetup {
    amr::Geometry geom;
    FArrayBox coords, metrics, S, dU;
    core::GasModel gas;

    explicit KernelSetup(int n) {
        gas.muRef = 0.01;
        geom = amr::Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0},
                             {1, 1, 1}, amr::Periodicity::all());
        auto mapping = std::make_shared<mesh::InteriorWavyMapping>(
            std::array<double, 3>{0, 0, 0}, std::array<double, 3>{1, 1, 1}, 0.02);
        mesh::CoordStore store(mapping, geom, IntVect(2), 0, core::NGHOST + 3);
        const Box grown = geom.domain().grow(core::NGHOST);
        coords = FArrayBox(geom.domain().grow(core::NGHOST + 3), 3);
        store.getCoords(coords, 0);
        metrics = FArrayBox(grown, mesh::MetricComps);
        mesh::computeMetricsFab(coords.const_array(), metrics.array(), grown,
                                geom.cellSizeArray());
        S = FArrayBox(grown, core::NCONS);
        auto s = S.array();
        auto x = coords.const_array();
        amr::forEachCell(grown, [&](int i, int j, int k) {
            const double rho = 1.0 + 0.2 * std::sin(6.0 * x(i, j, k, 0));
            const double u = 0.5 * std::cos(4.0 * x(i, j, k, 1));
            s(i, j, k, core::URHO) = rho;
            s(i, j, k, core::UMX) = rho * u;
            s(i, j, k, core::UMY) = 0.1;
            s(i, j, k, core::UMZ) = -0.05;
            s(i, j, k, core::UEDEN) = gas.totalEnergy(rho, u, 0.1, -0.05, 1.0);
        });
        dU = FArrayBox(geom.domain(), core::NCONS, 0.0);
    }
};

double timeIt(const std::function<void()>& f, int reps = 3) {
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        f();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

} // namespace

int main() {
    printHeader("Figure 3: WENOx and Viscous kernel time vs problem size");

    std::printf("\n[measured on this host] kernel structure comparison\n");
    std::printf("%10s | %12s %12s %8s | %12s\n", "points", "line-scratch",
                "staged(GPU)", "ratio", "Viscous");
    for (int n : {16, 24, 32, 48}) {
        KernelSetup ks(n);
        const auto runWeno = [&](core::KernelVariant v) {
            return timeIt([&] {
                core::wenoFlux(0, ks.S.const_array(), ks.metrics.const_array(),
                               ks.geom.domain(), ks.dU.array(), ks.geom.cellSize(0),
                               ks.gas, core::WenoScheme::Symbo, v);
            });
        };
        const double tLine = runWeno(core::KernelVariant::FortranStyle);
        const double tStaged = runWeno(core::KernelVariant::Portable);
        const double tVisc = timeIt([&] {
            core::viscousFlux(ks.S.const_array(), ks.metrics.const_array(),
                              ks.geom.domain(), ks.dU.array(),
                              ks.geom.cellSizeArray(), ks.gas,
                              core::KernelVariant::Portable);
        });
        std::printf("%10lld | %10.2f ms %10.2f ms %8.2f | %10.2f ms\n",
                    static_cast<long long>(ks.geom.domain().numPts()),
                    tLine * 1e3, tStaged * 1e3, tStaged / tLine, tVisc * 1e3);
    }

    std::printf("\n[modeled: 22-core P9 socket vs one V100] per-sweep kernel time\n");
    std::printf("%10s | %12s %12s %12s | %10s %10s\n", "points", "Fortran CPU",
                "C++ CPU", "GPU", "GPU x (W)", "GPU x (V)");
    gpu::V100Model v100;
    gpu::P9SocketModel p9;
    const auto& weno = core::wenoKernelProfile();
    const auto& visc = core::viscousKernelProfile();
    for (double pts : {8e3, 5e4, 2e5, 1e6, 4e6, 2e7}) {
        const auto n = static_cast<std::int64_t>(pts);
        const double tF = p9.kernelTime(weno, n, false);
        const double tC = p9.kernelTime(weno, n, true);
        const double tG = v100.kernelTime(weno, n);
        const double tGv = v100.kernelTime(visc, n);
        const double tFv = p9.kernelTime(visc, n, false);
        std::printf("%10.1e | %9.2f ms %9.2f ms %9.2f ms | %10.1f %10.1f\n", pts,
                    tF * 1e3, tC * 1e3, tG * 1e3, tF / tG, tFv / tGv);
    }
    std::printf("\nPaper reference: C++ ~1.2x slower than Fortran on the P9;\n");
    std::printf("GPU speedup from 2.5x (small, Viscous) to 15.8x (large, WENOx).\n");
    return 0;
}
