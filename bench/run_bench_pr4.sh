#!/bin/sh
# Runs the PR4 overlap bench and composes its JSON into BENCH_PR4.json:
# serial vs overlapped modeled step time at 1/2/4/8 worker threads, the
# wenoFlux scratch-pool hit rate, and the ScalingSimulator overlap sweep
# (totalSerial vs totalOverlapped + overlap efficiency) at 1..4096 nodes.
#
# Usage: bench/run_bench_pr4.sh [build-dir] [output.json]
set -e

BUILD=${1:-build}
OUT=${2:-BENCH_PR4.json}

if [ ! -x "$BUILD/bench/overlap" ]; then
    echo "error: $BUILD/bench/overlap not built (cmake --build $BUILD --target overlap)" >&2
    exit 1
fi

OVERLAP=$("$BUILD/bench/overlap")

{
    echo '{'
    echo '  "bench": "PR4: comm/compute overlap (async ghost exchange + interior/halo split)",'
    echo "  \"overlap\": $OVERLAP"
    echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
