// Ablation (§III-B): AMReX's default Z-Morton space-filling-curve load
// balancing (which the paper adopts) versus knapsack and round-robin —
// measured on the synthesized DMR hierarchy metadata: per-rank point
// imbalance and the ghost-exchange communication load of the busiest rank.
#include "bench_util.hpp"

using namespace crocco;
using namespace crocco::bench;
using amr::BoxArray;
using amr::DistributionMapping;

int main() {
    printHeader("Ablation: load balancing strategy (SFC vs knapsack vs round-robin)");
    machine::ScalingSimulator sim;
    // CPU configuration: several boxes per rank, so strategies differ.
    const machine::ScalingCase c{core::CodeVersion::V12, 16, 2620000000ll};
    const auto h = sim.buildHierarchy(c);
    const int ranks = sim.ranksFor(c);
    machine::NetworkModel net;

    std::printf("%12s | %10s | %12s %14s\n", "strategy", "imbalance",
                "p2p msgs", "p2p MB (max)");
    for (auto strategy : {DistributionMapping::Strategy::SFC,
                          DistributionMapping::Strategy::Knapsack,
                          DistributionMapping::Strategy::RoundRobin}) {
        const char* name = strategy == DistributionMapping::Strategy::SFC
                               ? "SFC (paper)"
                               : strategy == DistributionMapping::Strategy::Knapsack
                                     ? "knapsack"
                                     : "round-robin";
        double worstImbalance = 0.0;
        int maxMsgs = 0;
        std::int64_t maxBytes = 0;
        for (const auto& L : h.levels) {
            DistributionMapping dm(L.ba, ranks, strategy);
            worstImbalance = std::max(worstImbalance, dm.imbalance(L.ba));
            machine::PhaseLoad load(ranks);
            for (int i = 0; i < L.ba.size(); ++i) {
                for (const auto& [j, isect] :
                     L.ba.intersections(L.ba[i].grow(core::NGHOST))) {
                    if (i == j) continue;
                    load.addMessage(dm[j], dm[i],
                                    isect.numPts() * core::NCONS * 8);
                }
            }
            maxMsgs = std::max(maxMsgs, load.maxMessages());
            maxBytes = std::max(maxBytes, load.maxBytes());
        }
        std::printf("%12s | %10.3f | %12d %14.2f\n", name, worstImbalance,
                    maxMsgs, static_cast<double>(maxBytes) / (1 << 20));
    }
    std::printf("\nSFC keeps neighboring boxes on the same rank (fewer, smaller\n");
    std::printf("ghost messages) at comparable imbalance — why AMReX (and the\n");
    std::printf("paper) use it as the default.\n");
    return 0;
}
