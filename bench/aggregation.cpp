// PR9 bench: rank-pair aggregated communication (comm.aggregate).
//
// Methodology (execute the structure, model the time): a multi-level DMR
// hierarchy is advanced one steady-state step at 8 simulated ranks with the
// exchange aggregation off and then on, and the SimComm message log is
// compared directly — same payload bytes on the wire (aggregation packs, it
// never duplicates or drops), but one message per communicating rank pair
// instead of one per intersecting box pair. The message-count ratio is the
// executed observable; the gate requires >= 10x.
//
// The multi-node effect is then modeled with ScalingSimulator's α-β
// decomposition (Params::aggregateComm): α (latency per message) shrinks
// with the message count while β (bandwidth) keeps the byte volume, at the
// price of a higher posting cost for the pack/unpack staging passes. The
// gate requires a > 1.0 modeled step speedup at 2048 and 4096 nodes.
//
// JSON on stdout (composed into BENCH_PR9.json by run_bench_pr9.sh); the
// readable table goes to stderr. Exits nonzero when a gate misses, so the
// aggregation_bench ctest under `ctest -L perf` enforces both gates.
#include "amr/CommCache.hpp"
#include "core/CroccoAmr.hpp"
#include "machine/ScalingSimulator.hpp"
#include "parallel/SimComm.hpp"
#include "problems/Dmr.hpp"

#include <cstdint>
#include <cstdio>

using namespace crocco;

namespace {

struct StepTraffic {
    std::int64_t messages = 0; ///< p2p + ParallelCopy (reductions excluded)
    std::int64_t bytes = 0;
};

/// One steady-state DMR step's exchange traffic with aggregation on or off.
StepTraffic measureStep(bool aggregate) {
    auto& cache = amr::CommCache::instance();
    cache.clear();
    cache.resetStats();

    problems::Dmr::Options opts;
    opts.nx = 64;
    opts.ny = 48;
    opts.nz = 32;
    opts.maxLevel = 2;
    problems::Dmr dmr(opts);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    // Small boxes spread over 8 ranks: every rank owns dozens, so the
    // unaggregated exchange posts hundreds of box-pair messages while at
    // most 8*7 rank pairs can ever communicate.
    cfg.amrInfo.maxGridSize = 16;
    cfg.regridFreq = 1000; // freeze the hierarchy for a steady-state step
    cfg.nranks = 8;
    cfg.commAggregate = aggregate;
    parallel::SimComm comm(static_cast<int>(cfg.nranks));
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping(), &comm);
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.evolve(2); // warm the comm-pattern (and plan) cache

    comm.log().clear();
    solver.step();

    StepTraffic t;
    for (const auto& m : comm.log().messages()) {
        if (m.kind == parallel::MessageKind::Reduction) continue;
        ++t.messages;
        t.bytes += m.bytes;
    }
    cache.clear();
    cache.setAggregate(false);
    return t;
}

} // namespace

int main() {
    const StepTraffic off = measureStep(false);
    const StepTraffic on = measureStep(true);
    const double ratio =
        on.messages > 0 ? static_cast<double>(off.messages) / on.messages : 0.0;

    std::fprintf(stderr,
                 "executed DMR step at 8 ranks: %lld msgs / %lld bytes "
                 "unaggregated, %lld msgs / %lld bytes aggregated (%.1fx "
                 "fewer messages)\n",
                 static_cast<long long>(off.messages),
                 static_cast<long long>(off.bytes),
                 static_cast<long long>(on.messages),
                 static_cast<long long>(on.bytes), ratio);

    std::printf("{\n");
    std::printf("  \"layout\": \"DMR 64x48x32, 3 levels, max_grid_size 16, "
                "8 ranks, one steady-state step\",\n");
    std::printf("  \"executed\": {\"messages_unaggregated\": %lld, "
                "\"messages_aggregated\": %lld, \"bytes_unaggregated\": %lld, "
                "\"bytes_aggregated\": %lld, \"message_reduction\": %.2f},\n",
                static_cast<long long>(off.messages),
                static_cast<long long>(on.messages),
                static_cast<long long>(off.bytes),
                static_cast<long long>(on.bytes), ratio);

    // Modeled multi-node sweep: the α-β decomposition of the ghost exchange
    // and the modeled overlapped step time, aggregation off vs on.
    machine::ScalingSimulator plain;
    auto aggParams = plain.params();
    aggParams.aggregateComm = true;
    machine::ScalingSimulator agg(aggParams);

    std::fprintf(stderr, "%8s %12s %12s %12s %12s %12s %10s\n", "nodes",
                 "msgs off", "msgs on", "alpha off s", "alpha on s",
                 "beta s", "speedup");
    std::printf("  \"modeled\": [\n");
    const int nodeCounts[] = {256, 1024, 2048, 4096};
    double speedup2048 = 0.0, speedup4096 = 0.0;
    for (int i = 0; i < 4; ++i) {
        const int nodes = nodeCounts[i];
        const machine::ScalingCase c{core::CodeVersion::V20, nodes,
                                     41000000ll * nodes};
        const auto rOff = plain.iterationTime(c);
        const auto rOn = agg.iterationTime(c);
        const double speedup = rOff.totalOverlapped() / rOn.totalOverlapped();
        if (nodes == 2048) speedup2048 = speedup;
        if (nodes == 4096) speedup4096 = speedup;
        std::fprintf(stderr, "%8d %12lld %12lld %12.5f %12.5f %12.5f %9.3fx\n",
                     nodes, static_cast<long long>(rOff.fbDecomp.messages),
                     static_cast<long long>(rOn.fbDecomp.messages),
                     rOff.fbDecomp.alpha, rOn.fbDecomp.alpha,
                     rOn.fbDecomp.beta, speedup);
        std::printf(
            "    {\"nodes\": %d, \"fb_messages_off\": %lld, "
            "\"fb_messages_on\": %lld, \"fb_alpha_off_s\": %.6f, "
            "\"fb_alpha_on_s\": %.6f, \"fb_beta_off_s\": %.6f, "
            "\"fb_beta_on_s\": %.6f, \"step_off_s\": %.6f, "
            "\"step_on_s\": %.6f, \"modeled_speedup\": %.3f}%s\n",
            nodes, static_cast<long long>(rOff.fbDecomp.messages),
            static_cast<long long>(rOn.fbDecomp.messages), rOff.fbDecomp.alpha,
            rOn.fbDecomp.alpha, rOff.fbDecomp.beta, rOn.fbDecomp.beta,
            rOff.totalOverlapped(), rOn.totalOverlapped(), speedup,
            i < 3 ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"gates\": {\"message_reduction_min\": 10.0, "
                "\"message_reduction\": %.2f, \"speedup_2048\": %.3f, "
                "\"speedup_4096\": %.3f}\n}\n",
                ratio, speedup2048, speedup4096);

    int rc = 0;
    if (ratio < 10.0) {
        std::fprintf(stderr,
                     "GATE MISS: message reduction %.2fx < 10x required\n",
                     ratio);
        rc = 1;
    }
    if (off.bytes != on.bytes) {
        std::fprintf(stderr,
                     "GATE MISS: aggregation changed wire bytes (%lld != "
                     "%lld) — packing must conserve the payload\n",
                     static_cast<long long>(off.bytes),
                     static_cast<long long>(on.bytes));
        rc = 1;
    }
    if (speedup2048 <= 1.0 || speedup4096 <= 1.0) {
        std::fprintf(stderr,
                     "GATE MISS: modeled speedup %.3fx @2048 / %.3fx @4096 "
                     "nodes must both exceed 1.0\n",
                     speedup2048, speedup4096);
        rc = 1;
    }
    return rc;
}
