// Regenerates Table I: the weak-scaling configurations (nodes, GPUs,
// equivalent grid points) together with what our hierarchy synthesis
// produces for them: actual active points, the paper's 89-94% AMR point
// reduction, and the per-V100 memory footprint against the 16 GB budget.
#include "bench_util.hpp"

#include "gpu/Arena.hpp"

using namespace crocco;
using namespace crocco::bench;
using core::CodeVersion;

int main() {
    printHeader("Table I: weak scaling configurations (code versions 1.1/1.2/2.0)");
    machine::ScalingSimulator sim;
    const auto v100 = gpu::Arena::v100();
    std::printf("%8s %8s %14s %14s %10s %14s %6s\n", "nodes", "GPUs",
                "equiv points", "active (AMR)", "reduction", "GB per V100",
                "fits?");
    for (const auto& c : tableOneCases(CodeVersion::V20)) {
        const auto h = sim.buildHierarchy(c);
        const auto active = h.activePoints();
        const double reduction =
            100.0 * (1.0 - static_cast<double>(active) /
                               static_cast<double>(c.equivalentPoints));
        const auto bytes = sim.gpuBytesPerRank(c);
        std::printf("%8d %8d %14.2e %14.2e %9.1f%% %14.2f %6s\n", c.nodes,
                    c.nodes * 6, static_cast<double>(c.equivalentPoints),
                    static_cast<double>(active), reduction,
                    static_cast<double>(bytes) / (1 << 30),
                    bytes < v100.capacity() ? "yes" : "NO");
    }
    std::printf("\nPaper reference: 8 rows from 4 nodes/24 GPUs/1.64e8 points to\n");
    std::printf("1024 nodes/6144 GPUs/4.19e10 points; AMR reduces active points\n");
    std::printf("89-94%%; sizes chosen to fill but not exceed 16 GB per V100.\n");
    return 0;
}
