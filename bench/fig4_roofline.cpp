// Regenerates Fig. 4: hierarchical roofline placement of the WENOx kernel
// on a Summit V100 — arithmetic intensity against each memory level's
// bandwidth ceiling, achieved DP flop rate, occupancy, and percent of peak.
#include "bench_util.hpp"

#include "core/KernelProfiles.hpp"

using namespace crocco;
using namespace crocco::bench;

int main() {
    printHeader("Figure 4: hierarchical roofline, WENOx kernel on V100");
    gpu::V100Model v100;
    const auto& k = core::wenoKernelProfile();
    const std::int64_t n = 2'000'000; // saturated problem size

    const double achieved = v100.achievedFlops(k, n);
    std::printf("Peak DP:                 %8.2f TF/s\n", v100.peakFlops / 1e12);
    std::printf("Achieved DP:             %8.1f GF/s  (%.1f%% of peak)\n",
                achieved / 1e9, 100.0 * achieved / v100.peakFlops);
    std::printf("Theoretical occupancy:   %8.1f %%  (register-limited, %.0f regs/thread)\n",
                100.0 * v100.occupancy(k), k.registersPerThread);

    std::printf("\n%8s | %14s %16s %16s | %s\n", "level", "AI (flop/B)",
                "BW ceiling GB/s", "BW-bound GF/s", "binding?");
    struct Row {
        const char* name;
        double ai, bw;
    } rows[] = {
        {"L1", k.aiL1(), v100.bwL1},
        {"L2", k.aiL2(), v100.bwL2},
        {"DRAM", k.aiDram(), v100.bwDram},
    };
    const double occPeak = v100.peakFlops * v100.occupancy(k);
    for (const auto& r : rows) {
        const double ceiling = r.ai * r.bw;
        std::printf("%8s | %14.3f %16.0f %16.1f | %s\n", r.name, r.ai, r.bw / 1e9,
                    ceiling / 1e9,
                    ceiling < occPeak ? "bandwidth-bound" : "compute-bound");
    }
    std::printf("\nPaper reference: ~300 GF/s DP achieved (~4%% of 7.8 TF/s peak),\n");
    std::printf("12.5%% theoretical occupancy from register pressure, bandwidth-bound\n");
    std::printf("at L1, L2 and DRAM. WENOy/WENOz/Viscous rooflines are similar.\n");
    return 0;
}
