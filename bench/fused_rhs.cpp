// PR7 bench: the fused RHS pipeline (core.fused) on the PR4 DMR layout.
//
// Methodology (execute-the-structure, model-the-time): the same DMR
// hierarchy is advanced twice — unfused (the seed's per-sweep kernels) and
// fused (shared primitive cache, single-pass WENO flux+divergence, fused
// RK3 update, batched per-phase launches). For one steady-state step each,
// the bench records
//
//   * counted kernel launches (gpu::LaunchStats — each ParallelFor /
//     reduction / per-fab MultiFab sweep is one launch; a batched phase
//     charges its flat kernel count), reported per RK3 stage;
//   * modeled DRAM traffic (TinyProfiler's per-region modeled-bytes column,
//     charged from core/KernelProfiles), reported as bytes per point per
//     stage;
//   * the modeled V100 step time: traffic / bwDram + launches x
//     launchOverhead — the quantity the fusion actually moves on a real
//     GPU, where per-fab launch overhead dominates deep-AMR levels;
//   * the executed host critical path of the traced launches at 1/4/8
//     worker threads (the proxy-execution structural win).
//
// Both pipelines compute bitwise-identical states (pinned by tests/core/
// fused_rhs_test), so the comparison is pure structure. The bench SELF-
// CHECKS the PR7 acceptance gates — >= 2x fewer launches per RK3 stage and
// >= 1.3x modeled step speedup — and exits nonzero on a miss, so
// `ctest -L perf` enforces them. JSON on stdout (composed into
// BENCH_PR7.json by run_bench_pr7.sh); readable table on stderr. Also
// emits the ScalingSimulator weak-scaling sweep at 1..4096 nodes with
// Params::fusedPipeline off vs on.
#include "core/CroccoAmr.hpp"
#include "gpu/LaunchStats.hpp"
#include "gpu/ThreadPool.hpp"
#include "machine/ScalingSimulator.hpp"
#include "parallel/SimComm.hpp"
#include "problems/Dmr.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace crocco;
using Clock = std::chrono::steady_clock;

namespace {

double toNs(Clock::duration d) {
    return std::chrono::duration<double, std::nano>(d).count();
}

double criticalPathNs(const std::vector<double>& taskNs, int nthreads) {
    double worst = 0.0;
    for (int t = 0; t < nthreads; ++t) {
        double stripe = 0.0;
        for (std::size_t f = static_cast<std::size_t>(t); f < taskNs.size();
             f += static_cast<std::size_t>(nthreads))
            stripe += taskNs[f];
        worst = std::max(worst, stripe);
    }
    return worst;
}

const char* kRegions[] = {"PrimCache", "WENOx",       "WENOy", "WENOz",
                          "Viscous",   "AdvanceHalo", "Update"};

struct StepMeasure {
    std::uint64_t launches = 0; ///< counted launches of the step
    double modeledBytes = 0.0;  ///< per-region modeled DRAM bytes summed
    double wallNs = 0.0;
    std::vector<std::vector<double>> trace; ///< per-launch task durations
    double points = 0.0;                    ///< valid points over all levels
};

StepMeasure measureOneStep(bool fusedPipe) {
    problems::Dmr::Options opts;
    opts.nx = 64;
    opts.ny = 48;
    opts.nz = 32;
    opts.maxLevel = 2;
    problems::Dmr dmr(opts);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    // BENCH_PR4.json's configuration: fat boxes from loose clustering, many
    // fabs per level, the high-order WENO interpolator, frozen hierarchy.
    cfg.amrInfo.maxGridSize = 40;
    cfg.amrInfo.gridEff = 0.25;
    cfg.interp = core::InterpChoice::Weno;
    cfg.regridFreq = 1000;
    cfg.fused = fusedPipe;
    cfg.nranks = 8;
    parallel::SimComm comm(static_cast<int>(cfg.nranks));
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping(), &comm);
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    gpu::setNumThreads(1);
    solver.evolve(2); // warm the comm-pattern cache and the scratch pool

    StepMeasure sm;
    for (int lev = 0; lev <= solver.finestLevel(); ++lev) {
        const auto& mf = solver.state(lev);
        for (int f = 0; f < mf.numFabs(); ++f)
            sm.points += static_cast<double>(mf.validBox(f).numPts());
    }

    double bytes0 = 0.0;
    for (const char* r : kRegions) bytes0 += solver.profiler().modeledBytes(r);
    const std::uint64_t launches0 = gpu::LaunchStats::count();
    auto& tp = gpu::ThreadPool::instance();
    tp.beginScheduleTrace();
    const auto t0 = Clock::now();
    solver.step();
    sm.wallNs = toNs(Clock::now() - t0);
    for (const auto& l : tp.endScheduleTrace()) sm.trace.push_back(l.taskNs);
    sm.launches = gpu::LaunchStats::count() - launches0;
    for (const char* r : kRegions) sm.modeledBytes += solver.profiler().modeledBytes(r);
    sm.modeledBytes -= bytes0;
    return sm;
}

} // namespace

int main() {
    const StepMeasure unfused = measureOneStep(false);
    const StepMeasure fused = measureOneStep(true);

    constexpr double kStages = 3.0;
    const machine::ScalingSimulator simOff;
    const gpu::V100Model& v100 = simOff.params().machine.v100;

    auto modelNs = [&](const StepMeasure& sm) {
        return 1e9 * (sm.modeledBytes / v100.bwDram +
                      static_cast<double>(sm.launches) * v100.launchOverhead);
    };
    auto executedNs = [](const StepMeasure& sm, int T) {
        double traced = 0.0, crit = 0.0;
        for (const auto& l : sm.trace) {
            for (double t : l) traced += t;
            crit += criticalPathNs(l, T);
        }
        return std::max(0.0, sm.wallNs - traced) + crit;
    };

    const double launchesPerStageUnfused =
        static_cast<double>(unfused.launches) / kStages;
    const double launchesPerStageFused =
        static_cast<double>(fused.launches) / kStages;
    const double launchRatio = launchesPerStageUnfused / launchesPerStageFused;
    const double bppUnfused = unfused.modeledBytes / (kStages * unfused.points);
    const double bppFused = fused.modeledBytes / (kStages * fused.points);
    const double modeledSpeedup = modelNs(unfused) / modelNs(fused);

    std::fprintf(stderr,
                 "per RK3 stage: %.0f launches unfused vs %.0f fused "
                 "(%.1fx); modeled DRAM %.0f B/pt vs %.0f B/pt; modeled step "
                 "%.2f ms vs %.2f ms (%.2fx)\n",
                 launchesPerStageUnfused, launchesPerStageFused, launchRatio,
                 bppUnfused, bppFused, modelNs(unfused) / 1e6,
                 modelNs(fused) / 1e6, modeledSpeedup);

    std::printf("{\n");
    std::printf("  \"layout\": \"DMR 64x48x32, %s levels, max_grid_size 40, "
                "grid_eff 0.25, weno interp, 8 ranks (BENCH_PR4 "
                "configuration)\",\n",
                "3");
    std::printf(
        "  \"model\": \"modeled step = per-region KernelProfiles DRAM bytes / "
        "V100 bwDram + counted launches x launchOverhead; launches counted by "
        "gpu::LaunchStats (batched phases charge their flat kernel count); "
        "identical numerics both ways (bitwise-pinned by fused_rhs_test)\",\n");
    std::printf("  \"per_stage\": {\n");
    std::printf("    \"launches_unfused\": %.1f,\n", launchesPerStageUnfused);
    std::printf("    \"launches_fused\": %.1f,\n", launchesPerStageFused);
    std::printf("    \"launch_ratio\": %.2f,\n", launchRatio);
    std::printf("    \"dram_bytes_per_point_unfused\": %.1f,\n", bppUnfused);
    std::printf("    \"dram_bytes_per_point_fused\": %.1f\n", bppFused);
    std::printf("  },\n");
    std::printf("  \"modeled_step\": {\"unfused_ns\": %.0f, \"fused_ns\": "
                "%.0f, \"speedup\": %.3f},\n",
                modelNs(unfused), modelNs(fused), modeledSpeedup);
    std::printf("  \"steps\": [\n");
    const int threadCounts[] = {1, 4, 8};
    std::fprintf(stderr, "%8s %18s %18s %12s\n", "threads",
                 "unfused exec ns", "fused exec ns", "exec speedup");
    for (int i = 0; i < 3; ++i) {
        const int T = threadCounts[i];
        const double u = executedNs(unfused, T);
        const double f = executedNs(fused, T);
        std::fprintf(stderr, "%8d %18.0f %18.0f %11.2fx\n", T, u, f, u / f);
        std::printf("    {\"threads\": %d, \"unfused_executed_ns\": %.0f, "
                    "\"fused_executed_ns\": %.0f, \"executed_speedup\": %.3f, "
                    "\"modeled_speedup\": %.3f}%s\n",
                    T, u, f, u / f, modeledSpeedup, i < 2 ? "," : "");
    }
    std::printf("  ],\n");

    // Weak-scaling sweep: the fused pipeline in the Summit model (flat
    // per-phase launch charge + fused kernel profiles) vs the seed model.
    machine::ScalingSimulator::Params fp;
    fp.fusedPipeline = true;
    const machine::ScalingSimulator simOn(fp);
    std::printf("  \"scaling\": [\n");
    const int nodeCounts[] = {1, 4, 16, 64, 256, 1024, 4096};
    std::fprintf(stderr, "%8s %14s %14s %12s\n", "nodes", "unfused s/it",
                 "fused s/it", "speedup");
    for (int i = 0; i < 7; ++i) {
        const int nodes = nodeCounts[i];
        const machine::ScalingCase c{core::CodeVersion::V20, nodes,
                                     41000000ll * nodes};
        const double off = simOff.iterationTime(c).totalSerial();
        const double on = simOn.iterationTime(c).totalSerial();
        std::fprintf(stderr, "%8d %14.4f %14.4f %11.2fx\n", nodes, off, on,
                     off / on);
        std::printf("    {\"nodes\": %d, \"unfused_s\": %.6f, \"fused_s\": "
                    "%.6f, \"speedup\": %.3f}%s\n",
                    nodes, off, on, off / on, i < 6 ? "," : "");
    }
    std::printf("  ]\n}\n");

    // PR7 acceptance gates, enforced by `ctest -L perf`.
    bool ok = true;
    if (launchRatio < 2.0) {
        std::fprintf(stderr,
                     "FAIL: launch ratio %.2f < 2.0 (need >= 2x fewer kernel "
                     "launches per RK3 stage)\n",
                     launchRatio);
        ok = false;
    }
    if (modeledSpeedup < 1.3) {
        std::fprintf(stderr,
                     "FAIL: modeled step speedup %.2f < 1.3x\n",
                     modeledSpeedup);
        ok = false;
    }
    return ok ? 0 : 1;
}
