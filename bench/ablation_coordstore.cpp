// Ablation (§III-C "Regridding"): coordinate source for newly created AMR
// patches. The paper's first implementation serially read each new patch's
// coordinates from a binary file at every regrid ("noticeable overhead on
// CPU; worse on GPU"); the current implementation keeps the whole grid in
// memory and serves getCoords() from it, trading footprint for speed.
#include "bench_util.hpp"

#include "mesh/CoordStore.hpp"

#include <chrono>

using namespace crocco;
using namespace crocco::bench;
using amr::Box;
using amr::IntVect;

int main() {
    printHeader("Ablation: coordinate store — in-memory vs per-regrid file I/O");
    auto mapping = std::make_shared<mesh::InteriorWavyMapping>(
        std::array<double, 3>{0, 0, 0}, std::array<double, 3>{4, 1, 1}, 0.02);
    const amr::Geometry geom(Box(IntVect::zero(), IntVect{127, 63, 31}),
                             {0, 0, 0}, {1, 1, 1});

    std::printf("%10s | %14s %14s %8s | %14s\n", "patch", "memory", "file",
                "slowdown", "stored bytes");
    for (int size : {16, 32, 64}) {
        mesh::CoordStore mem(mapping, geom, IntVect(2), 1, 7,
                             mesh::CoordStore::Mode::Memory);
        mesh::CoordStore file(mapping, geom, IntVect(2), 1, 7,
                              mesh::CoordStore::Mode::File, "/tmp");
        const Box patch(IntVect(8), IntVect(8 + size - 1));
        amr::FArrayBox fab(patch.grow(7), 3);
        auto timeIt = [&](const mesh::CoordStore& store) {
            // A regrid fetches coordinates for many new patches; time 20.
            const auto t0 = std::chrono::steady_clock::now();
            for (int r = 0; r < 20; ++r) store.getCoords(fab, 1);
            const auto t1 = std::chrono::steady_clock::now();
            return std::chrono::duration<double>(t1 - t0).count() / 20;
        };
        const double tMem = timeIt(mem);
        const double tFile = timeIt(file);
        std::printf("%7d^3 | %11.3f ms %11.3f ms %8.1fx | %11.1f MB\n", size,
                    tMem * 1e3, tFile * 1e3, tFile / tMem,
                    static_cast<double>(mem.bytesStored()) / (1 << 20));
        std::remove("/tmp/coords_lev0.bin");
        std::remove("/tmp/coords_lev1.bin");
    }
    std::printf("\nPaper: the in-memory getCoords() replaced serial std::iostream\n");
    std::printf("reads per new patch; on GPU the file path would additionally\n");
    std::printf("stage through host memory. The memory cost is the stored grid.\n");
    return 0;
}
