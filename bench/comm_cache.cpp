// PR2 microbench: communication-pattern caching (AMReX CommMetaData-style).
//
// Measures ns-per-call with the CommCache disabled (the seed behavior: the
// BoxArray hash-intersection search re-runs every call) versus enabled
// (descriptor replay after the first call) for:
//
//  * fillBoundary        — ghost exchange on the DMR domain chopped at the
//                          paper's blocking factor (8^3 boxes): the
//                          fine-grained layout where pattern extraction,
//                          not data movement, is the per-call cost.
//  * fillBoundary_state  — the DMR solver's own 5-component, 4-ghost state
//                          exchange (copy-dominated; the cache can only
//                          remove the search).
//  * parallelCopy        — the interpolator's cross-layout gather.
//  * fillPatch_two_level — the full coarse/fine FillPatch path.
//
// Emits a JSON object on stdout (composed into BENCH_PR2.json by
// bench/run_bench.sh); human-readable rows go to stderr.
#include "amr/CommCache.hpp"
#include "gpu/ThreadPool.hpp"
#include "problems/Dmr.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <vector>

using namespace crocco;

namespace {

/// Min-of-batches ns/call: the minimum is the standard noise-robust
/// microbench statistic on a shared host (anything above it is interference).
double nsPerCall(const std::function<void()>& f, int reps = 60, int batches = 5) {
    double best = std::numeric_limits<double>::infinity();
    f(); // warm (first call builds the pattern in the cached configuration)
    for (int b = 0; b < batches; ++b) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < reps; ++i) f();
        const std::chrono::duration<double, std::nano> dt =
            std::chrono::steady_clock::now() - t0;
        best = std::min(best, dt.count() / reps);
    }
    return best;
}

std::vector<amr::Box> tiledBoxes(const amr::Box& domain, int tile) {
    std::vector<amr::Box> out;
    for (int k = domain.smallEnd(2); k <= domain.bigEnd(2); k += tile)
        for (int j = domain.smallEnd(1); j <= domain.bigEnd(1); j += tile)
            for (int i = domain.smallEnd(0); i <= domain.bigEnd(0); i += tile)
                out.emplace_back(amr::IntVect{i, j, k},
                                 amr::IntVect{i + tile - 1, j + tile - 1,
                                              k + tile - 1});
    return out;
}

struct Row {
    const char* name;
    double ns[2] = {0, 0}; // [0] = uncached, [1] = cached
};

} // namespace

int main() {
    // Serial copies: this bench isolates the pattern-build cost, not the
    // thread pool (bench/thread_scaling.cpp covers that).
    gpu::setNumThreads(1);

    problems::Dmr::Options opts;
    opts.nx = 96;
    opts.ny = 24;
    opts.nz = 8;
    opts.maxLevel = 1;
    problems::Dmr dmr(opts);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.regridFreq = 4;
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.evolve(4); // settle the shock-tracking hierarchy

    auto& cache = amr::CommCache::instance();
    const int lev = solver.finestLevel();
    amr::MultiFab& U = solver.state(lev);
    const amr::Geometry& fineGeom = solver.geom(lev);
    const amr::Geometry& geom0 = solver.geom(0);

    // Blocking-factor-granularity layout of the level-0 domain: one scalar
    // component, 2 ghost layers — the paper's 8^3 building blocks, where a
    // 10^5-box production layout spends its FillBoundary time in pattern
    // extraction.
    amr::BoxArray bfTiles(tiledBoxes(geom0.domain(), 8));
    amr::MultiFab bfField(bfTiles, amr::DistributionMapping(bfTiles, 4), 1, 2);
    bfField.setVal(1.0);

    amr::MultiFab gather(solver.boxArray(0), solver.dmap(0), core::NCONS,
                         core::NGHOST);
    gather.setVal(0.0);
    amr::MultiFab scratch(solver.boxArray(lev), solver.dmap(lev), core::NCONS,
                          core::NGHOST);

    Row rows[4] = {{"fillBoundary"},
                   {"fillBoundary_state"},
                   {"parallelCopy"},
                   {"fillPatch_two_level"}};
    for (const bool cached : {false, true}) {
        cache.setEnabled(cached);
        cache.clear();
        const int c = cached ? 1 : 0;
        rows[0].ns[c] = nsPerCall([&] { bfField.fillBoundary(geom0); });
        rows[1].ns[c] = nsPerCall([&] { U.fillBoundary(fineGeom); });
        rows[2].ns[c] = nsPerCall([&] {
            gather.parallelCopy(U, 0, 0, core::NCONS, core::NGHOST, 0, "Bench",
                                &fineGeom);
        });
        rows[3].ns[c] = nsPerCall([&] { solver.fillPatch(lev, scratch); });
    }
    cache.setEnabled(true);

    std::fprintf(stderr, "%-22s %14s %14s %8s\n", "path", "uncached ns",
                 "cached ns", "speedup");
    for (const Row& r : rows)
        std::fprintf(stderr, "%-22s %14.0f %14.0f %7.2fx\n", r.name, r.ns[0],
                     r.ns[1], r.ns[0] / r.ns[1]);

    std::printf("{\n");
    std::printf("  \"layout\": \"DMR %dx%dx%d, %d levels, %d blocking-factor "
                "tiles\",\n",
                opts.nx, opts.ny, opts.nz, solver.finestLevel() + 1,
                bfTiles.size());
    for (int i = 0; i < 4; ++i)
        std::printf("  \"%s\": {\"uncached_ns_per_call\": %.0f, "
                    "\"cached_ns_per_call\": %.0f, \"speedup\": %.3f}%s\n",
                    rows[i].name, rows[i].ns[0], rows[i].ns[1],
                    rows[i].ns[0] / rows[i].ns[1], i < 3 ? "," : "");
    std::printf("}\n");
    return 0;
}
