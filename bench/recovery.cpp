// PR6 bench: recovery-waste sweep — disk restart vs in-memory buddy
// recovery, plus the verified-exchange retransmit surcharge.
//
// Methodology: the ScalingSimulator prices both recovery schemes with the
// same Daly (2006) machinery at each node count under weak scaling
// (constant 4e7 equivalent points per node, the paper's Fig. 5 regime):
//
//   disk   delta = checkpointWriteTime (per-node NIC cap, aggregate GPFS
//                  ceiling past ~200 nodes); restore = job relaunch
//                  penalty + filesystem re-read,
//   buddy  delta = one node's state mirrored to its ring partner over the
//                  interconnect; restore = waitall detection latency + the
//                  partner streaming the replica back.
//
// Both follow Daly's optimal interval for their own delta, so the sweep is
// a fair fight: each scheme checkpoints as rarely as its cost allows. The
// retransmit column models the CRC/NACK verified-exchange tax: with a
// fault probability p per message, the comm regions (wait + posting) are
// re-paid at rate p.
//
// JSON on stdout (composed into BENCH_PR6.json by run_bench_pr6.sh); the
// readable table goes to stderr.
#include "machine/FailureModel.hpp"
#include "machine/ScalingSimulator.hpp"

#include <cstdio>

using namespace crocco::machine;

int main() {
    // The soak campaign's drop+delay budget (~1% of messages time out and
    // retransmit) sets the modeled fault rate.
    ScalingSimulator::Params p;
    p.modelCommFaults = true;
    p.commFaultRate = 0.01;
    ScalingSimulator sim(p);
    const FailureModel& fm = sim.params().failure;

    const int nodeCounts[] = {1, 4, 16, 64, 256, 1024, 4096};
    constexpr std::int64_t kPointsPerNode = 40'000'000;

    std::fprintf(stderr,
                 "PR6 recovery sweep: Daly waste fraction, disk restart vs "
                 "buddy mirror (weak scaling, %lld pts/node, fault rate "
                 "%.2f%%)\n",
                 static_cast<long long>(kPointsPerNode),
                 100.0 * p.commFaultRate);
    std::fprintf(stderr, "%6s %12s %12s %12s %12s %12s %10s\n", "nodes",
                 "disk waste", "buddy waste", "disk rst s", "buddy rst s",
                 "buddy tau s", "rtx ovhd");

    std::printf("{\n");
    std::printf("  \"model\": \"Daly-optimal checkpointing priced twice: "
                "filesystem dumps + relaunch restore vs interconnect buddy "
                "mirroring + in-memory shrink recovery "
                "(CroccoAmr::recoverFromRankDeath)\",\n");
    std::printf("  \"weak_scaling_points_per_node\": %lld,\n",
                static_cast<long long>(kPointsPerNode));
    std::printf("  \"comm_fault_rate\": %.4f,\n", p.commFaultRate);
    std::printf("  \"detection_latency_s\": %.3f,\n", fm.detectionLatency);
    std::printf("  \"interconnect_bandwidth_Bps\": %.3e,\n",
                fm.interconnectBandwidth);
    std::printf("  \"cases\": [\n");
    bool first = true;
    for (int nodes : nodeCounts) {
        ScalingCase c;
        c.version = crocco::core::CodeVersion::V20;
        c.nodes = nodes;
        c.equivalentPoints = static_cast<std::int64_t>(nodes) * kPointsPerNode;
        const RecoveryComparison rc = sim.recoveryComparison(c);
        std::fprintf(stderr, "%6d %11.5f%% %11.5f%% %12.2f %12.4f %12.0f %9.3f%%\n",
                     nodes, 100.0 * rc.disk.overheadFraction,
                     100.0 * rc.buddy.overheadFraction, rc.diskRestoreTime,
                     rc.buddyRestoreTime, rc.buddy.optimalInterval,
                     100.0 * rc.retransmitOverheadFraction);
        std::printf("%s    {\"nodes\": %d, \"checkpoint_bytes\": %lld,\n"
                    "     \"disk\": {\"waste_fraction\": %.8f, "
                    "\"delta_s\": %.4f, \"restore_s\": %.4f, "
                    "\"daly_interval_s\": %.2f},\n"
                    "     \"buddy\": {\"waste_fraction\": %.8f, "
                    "\"delta_s\": %.6f, \"restore_s\": %.6f, "
                    "\"daly_interval_s\": %.2f},\n"
                    "     \"retransmit_overhead_fraction\": %.8f}",
                    first ? "" : ",\n", nodes,
                    static_cast<long long>(rc.disk.checkpointBytes),
                    rc.disk.overheadFraction, rc.disk.writeTime,
                    rc.diskRestoreTime, rc.disk.optimalInterval,
                    rc.buddy.overheadFraction, rc.buddy.writeTime,
                    rc.buddyRestoreTime, rc.buddy.optimalInterval,
                    rc.retransmitOverheadFraction);
        first = false;
    }
    std::printf("\n  ]\n}\n");

    // The acceptance gate: buddy must beat disk at the paper's largest
    // configuration. Fail loudly so `ctest -L perf` catches a regression.
    ScalingCase big;
    big.version = crocco::core::CodeVersion::V20;
    big.nodes = 4096;
    big.equivalentPoints = 4096LL * kPointsPerNode;
    const RecoveryComparison rc = sim.recoveryComparison(big);
    if (!(rc.buddy.overheadFraction < rc.disk.overheadFraction)) {
        std::fprintf(stderr,
                     "FAIL: buddy waste %.6f >= disk waste %.6f at 4096 "
                     "nodes\n",
                     rc.buddy.overheadFraction, rc.disk.overheadFraction);
        return 1;
    }
    return 0;
}
