// Regenerates Fig. 1: an example block-structured AMR grid with three
// levels — the coarsest level active across the whole domain, finer patch
// levels overset as contiguous block structures (no parent-child tree).
// Rendered as an ASCII occupancy map of a z-slice plus the box inventory.
#include "bench_util.hpp"

#include "problems/Dmr.hpp"

using namespace crocco;
using namespace crocco::bench;

int main() {
    printHeader("Figure 1: three-level block-structured AMR grid (DMR example)");
    problems::Dmr::Options opts;
    opts.nx = 64;
    opts.ny = 16;
    opts.nz = 8;
    opts.maxLevel = 2;
    problems::Dmr dmr(opts);
    core::CroccoAmr solver(dmr.geometry(), dmr.solverConfig(core::CodeVersion::V20),
                           dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.evolve(2); // let the hierarchy settle onto the moving shock

    // Occupancy map of the z = 0 slice at level-0 resolution: '.' covered
    // by level 0 only, '+' by level 1, '#' by level 2.
    const auto& g0 = solver.geom(0).domain();
    for (int j = g0.bigEnd(1); j >= 0; --j) {
        for (int i = 0; i <= g0.bigEnd(0); ++i) {
            char c = '.';
            if (solver.finestLevel() >= 1 &&
                solver.boxArray(1).contains(amr::IntVect{2 * i, 2 * j, 0}))
                c = '+';
            if (solver.finestLevel() >= 2 &&
                solver.boxArray(2).contains(amr::IntVect{4 * i, 4 * j, 0}))
                c = '#';
            std::putchar(c);
        }
        std::putchar('\n');
    }

    std::printf("\nlevel  boxes  points      coverage of domain\n");
    for (int lev = 0; lev <= solver.finestLevel(); ++lev) {
        const auto& ba = solver.boxArray(lev);
        const double cover = static_cast<double>(ba.numPts()) /
                             static_cast<double>(solver.geom(lev).domain().numPts());
        std::printf("%5d %6d  %-10lld %5.1f%%\n", lev, ba.size(),
                    static_cast<long long>(ba.numPts()), 100.0 * cover);
    }
    std::printf("\nactive points %lld of %lld equivalent (%.1f%% reduction)\n",
                static_cast<long long>(solver.totalPoints()),
                static_cast<long long>(solver.equivalentPoints()),
                100.0 * (1.0 - static_cast<double>(solver.totalPoints()) /
                                   static_cast<double>(solver.equivalentPoints())));
    return 0;
}
