#include "core/SpeciesTransport.hpp"

#include "amr/FArrayBox.hpp"
#include "amr/Geometry.hpp"
#include "mesh/CoordStore.hpp"
#include "mesh/GridMetrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::core {
namespace {

using amr::Box;
using amr::FArrayBox;
using amr::Geometry;
using amr::IntVect;

struct SpeciesFixture {
    static constexpr int NS = 2;
    Geometry geom;
    FArrayBox coords, metrics, S, rhoY, dRhoY;
    GasModel gas;

    SpeciesFixture(int n, Real u0,
                   const std::function<Real(Real, Real, Real)>& blob) {
        gas.muRef = 0.02;
        geom = Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0},
                        {1, 1, 1}, amr::Periodicity::all());
        auto mapping = std::make_shared<mesh::UniformMapping>(
            std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{1, 1, 1});
        mesh::CoordStore store(mapping, geom, IntVect(2), 0, NGHOST + 3);
        const Box grown = geom.domain().grow(NGHOST);
        coords = FArrayBox(geom.domain().grow(NGHOST + 3), 3);
        store.getCoords(coords, 0);
        metrics = FArrayBox(grown, mesh::MetricComps);
        mesh::computeMetricsFab(coords.const_array(), metrics.array(), grown,
                                geom.cellSizeArray());
        S = FArrayBox(grown, NCONS);
        rhoY = FArrayBox(grown, NS);
        auto s = S.array();
        auto ry = rhoY.array();
        amr::forEachCell(grown, [&](int i, int j, int k) {
            const Real x = (((i % n) + n) % n + 0.5) / n;
            const Real yy = (((j % n) + n) % n + 0.5) / n;
            const Real z = (((k % n) + n) % n + 0.5) / n;
            s(i, j, k, URHO) = 1.0;
            s(i, j, k, UMX) = u0;
            s(i, j, k, UMY) = 0.0;
            s(i, j, k, UMZ) = 0.0;
            s(i, j, k, UEDEN) = gas.totalEnergy(1.0, u0, 0, 0, 1.0);
            const Real y0 = blob(x, yy, z);
            ry(i, j, k, 0) = y0;        // tracer species
            ry(i, j, k, 1) = 1.0 - y0;  // complement (sums to rho)
        });
        dRhoY = FArrayBox(geom.domain(), NS, 0.0);
    }
};

TEST(SpeciesAdvect, UniformCompositionIsSteady) {
    SpeciesFixture fx(12, 0.8, [](Real, Real, Real) { return 0.3; });
    for (int dir = 0; dir < 3; ++dir)
        speciesAdvectFlux(dir, fx.S.const_array(), fx.rhoY.const_array(),
                          fx.metrics.const_array(), fx.geom.domain(),
                          fx.dRhoY.array(), fx.geom.cellSize(dir), fx.gas,
                          WenoScheme::Symbo);
    for (int s = 0; s < 2; ++s) {
        EXPECT_NEAR(fx.dRhoY.max(fx.geom.domain(), s), 0.0, 1e-11);
        EXPECT_NEAR(fx.dRhoY.min(fx.geom.domain(), s), 0.0, 1e-11);
    }
}

TEST(SpeciesAdvect, MatchesAnalyticAdvectionRhs) {
    // rho = 1, u = const: d(rho Y)/dt = -u dY/dx.
    const Real u0 = 0.6;
    SpeciesFixture fx(32, u0, [](Real x, Real, Real) {
        return 0.5 + 0.2 * std::sin(2 * M_PI * x);
    });
    speciesAdvectFlux(0, fx.S.const_array(), fx.rhoY.const_array(),
                      fx.metrics.const_array(), fx.geom.domain(),
                      fx.dRhoY.array(), fx.geom.cellSize(0), fx.gas,
                      WenoScheme::JS5);
    auto a = fx.dRhoY.const_array();
    double worst = 0.0;
    amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
        const Real x = (i + 0.5) / 32.0;
        const Real exact = -u0 * 0.2 * 2 * M_PI * std::cos(2 * M_PI * x);
        worst = std::max(worst, std::abs(a(i, j, k, 0) - exact));
    });
    EXPECT_LT(worst, 2e-2);
}

TEST(SpeciesAdvect, ConservesEachSpeciesOnPeriodicDomain) {
    SpeciesFixture fx(16, 0.7, [](Real x, Real y, Real) {
        return 0.5 + 0.3 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    });
    for (int dir = 0; dir < 3; ++dir)
        speciesAdvectFlux(dir, fx.S.const_array(), fx.rhoY.const_array(),
                          fx.metrics.const_array(), fx.geom.domain(),
                          fx.dRhoY.array(), fx.geom.cellSize(dir), fx.gas,
                          WenoScheme::Symbo);
    for (int s = 0; s < 2; ++s)
        EXPECT_NEAR(fx.dRhoY.sum(fx.geom.domain(), s), 0.0, 1e-10);
}

TEST(SpeciesAdvect, FrontStaysNonOscillatory) {
    // A sharp species front must not produce new extrema (rho Y must stay
    // within the data range after an Euler step).
    SpeciesFixture fx(32, 1.0, [](Real x, Real, Real) {
        return (x > 0.25 && x < 0.6) ? 1.0 : 0.0;
    });
    speciesAdvectFlux(0, fx.S.const_array(), fx.rhoY.const_array(),
                      fx.metrics.const_array(), fx.geom.domain(),
                      fx.dRhoY.array(), fx.geom.cellSize(0), fx.gas,
                      WenoScheme::Symbo);
    const Real dt = 0.3 / 32.0; // CFL ~ 0.3
    auto ry = fx.rhoY.array();
    auto d = fx.dRhoY.const_array();
    Real lo = 1e30, hi = -1e30;
    amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
        const Real v = ry(i, j, k, 0) + dt * d(i, j, k, 0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    });
    EXPECT_GT(lo, -0.02);
    EXPECT_LT(hi, 1.02);
}

TEST(SpeciesDiffuse, SmoothsGradientsAndConservesMass) {
    SpeciesFixture fx(24, 0.0, [](Real x, Real, Real) {
        return 0.5 + 0.4 * std::sin(2 * M_PI * x);
    });
    speciesDiffuseFlux(fx.S.const_array(), fx.rhoY.const_array(),
                       fx.metrics.const_array(), fx.geom.domain(),
                       fx.dRhoY.array(), fx.geom.cellSizeArray(), fx.gas, 0.7);
    // Diffusion pulls peaks down and troughs up: dRhoY ~ -Y'' has opposite
    // sign to the deviation from the mean.
    auto ry = fx.rhoY.const_array();
    auto d = fx.dRhoY.const_array();
    double corr = 0.0;
    amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
        corr += (ry(i, j, k, 0) - 0.5) * d(i, j, k, 0);
    });
    EXPECT_LT(corr, 0.0);
    for (int s = 0; s < 2; ++s)
        EXPECT_NEAR(fx.dRhoY.sum(fx.geom.domain(), s), 0.0, 1e-10);
    // Analytic check: for Y = 0.5 + A sin(2 pi x), rho = 1:
    // dRhoY = (mu/Sc) * (-(2 pi)^2) * A sin(2 pi x).
    const Real mu = fx.gas.viscosity(fx.gas.temperature(1.0, 1.0));
    double worst = 0.0;
    amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
        const Real x = (i + 0.5) / 24.0;
        const Real exact =
            -(mu / 0.7) * 4 * M_PI * M_PI * 0.4 * std::sin(2 * M_PI * x);
        worst = std::max(worst, std::abs(d(i, j, k, 0) - exact));
    });
    EXPECT_LT(worst, 0.05 * (mu / 0.7) * 4 * M_PI * M_PI * 0.4);
}

} // namespace
} // namespace crocco::core
