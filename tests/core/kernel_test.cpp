#include "core/Weno.hpp"

#include "amr/FArrayBox.hpp"
#include "amr/Geometry.hpp"
#include "mesh/CoordStore.hpp"
#include "mesh/GridMetrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::core {
namespace {

using amr::Box;
using amr::FArrayBox;
using amr::Geometry;
using amr::IntVect;

/// One periodic single-fab level on a chosen mapping, with coords/metrics
/// and a conserved-state fab filled from a primitive-field functor.
struct KernelFixture {
    Geometry geom;
    FArrayBox coords, metrics, S, dU;
    GasModel gas;

    KernelFixture(std::shared_ptr<const mesh::Mapping> mapping, int n,
                  const std::function<std::array<Real, 5>(Real, Real, Real)>& prim) {
        geom = Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0},
                        {1, 1, 1}, amr::Periodicity::all());
        mesh::CoordStore store(std::move(mapping), geom, IntVect(2), 0,
                               NGHOST + 3);
        const Box grown = geom.domain().grow(NGHOST);
        coords = FArrayBox(geom.domain().grow(NGHOST + 3), 3);
        store.getCoords(coords, 0);
        metrics = FArrayBox(grown, mesh::MetricComps);
        mesh::computeMetricsFab(coords.const_array(), metrics.array(), grown,
                                geom.cellSizeArray());
        S = FArrayBox(grown, NCONS);
        auto s = S.array();
        auto x = coords.const_array();
        amr::forEachCell(grown, [&](int i, int j, int k) {
            // Periodic state: evaluate the field at the wrapped coordinate.
            IntVect p{i, j, k};
            IntVect w = p;
            for (int d = 0; d < 3; ++d)
                w[d] = ((w[d] % n) + n) % n;
            const auto q = prim(x(w[0], w[1], w[2], 0), x(w[0], w[1], w[2], 1),
                                x(w[0], w[1], w[2], 2));
            const Real rho = q[0], u = q[1], v = q[2], ww = q[3], pp = q[4];
            s(i, j, k, URHO) = rho;
            s(i, j, k, UMX) = rho * u;
            s(i, j, k, UMY) = rho * v;
            s(i, j, k, UMZ) = rho * ww;
            s(i, j, k, UEDEN) = gas.totalEnergy(rho, u, v, ww, pp);
        });
        dU = FArrayBox(geom.domain(), NCONS, 0.0);
    }

    void runWeno(KernelVariant variant, WenoScheme scheme = WenoScheme::Symbo) {
        for (int dir = 0; dir < 3; ++dir) {
            wenoFlux(dir, S.const_array(), metrics.const_array(), geom.domain(),
                     dU.array(), geom.cellSize(dir), gas, scheme, variant);
        }
    }
};

std::shared_ptr<const mesh::Mapping> uniformMap() {
    return std::make_shared<mesh::UniformMapping>(std::array<Real, 3>{0, 0, 0},
                                                  std::array<Real, 3>{1, 1, 1});
}
std::shared_ptr<const mesh::Mapping> wavyMap(double amp) {
    return std::make_shared<mesh::WavyMapping>(std::array<Real, 3>{0, 0, 0},
                                               std::array<Real, 3>{1, 1, 1}, amp);
}

TEST(WenoKernel, FreeStreamPreservedOnUniformGrid) {
    // Constant state on a uniform grid: RHS must vanish to round-off.
    KernelFixture fx(uniformMap(), 12, [](Real, Real, Real) {
        return std::array<Real, 5>{1.2, 0.7, -0.3, 0.4, 2.0};
    });
    fx.runWeno(KernelVariant::Portable);
    for (int nc = 0; nc < NCONS; ++nc) {
        EXPECT_NEAR(fx.dU.max(fx.geom.domain(), nc), 0.0, 1e-10) << nc;
        EXPECT_NEAR(fx.dU.min(fx.geom.domain(), nc), 0.0, 1e-10) << nc;
    }
}

TEST(WenoKernel, FreeStreamErrorSmallAndConvergingOnCurvedGrid) {
    // On a curvilinear grid the discrete GCL is violated at truncation
    // order: constant flow produces a small residual that shrinks under
    // refinement.
    auto constPrim = [](Real, Real, Real) {
        return std::array<Real, 5>{1.0, 1.0, 0.5, 0.25, 1.0};
    };
    double errs[2];
    for (int r = 0; r < 2; ++r) {
        KernelFixture fx(wavyMap(0.02), r == 0 ? 8 : 16, constPrim);
        fx.runWeno(KernelVariant::Portable);
        double worst = 0.0;
        auto a = fx.dU.const_array();
        amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
            for (int nc = 0; nc < NCONS; ++nc)
                worst = std::max(worst, std::abs(a(i, j, k, nc)));
        });
        errs[r] = worst;
    }
    EXPECT_LT(errs[1], errs[0]);
    EXPECT_LT(errs[1], 0.5);
}

class VariantEquivalence : public ::testing::TestWithParam<WenoScheme> {};

TEST_P(VariantEquivalence, FortranStyleMatchesPortableWithinPaperTolerance) {
    // §IV-A: the L2 norm of the per-variable difference between the two
    // kernel structures plateaued at ~1e-7 for the paper's (different-
    // language) versions; our two C++ structures share arithmetic order per
    // point, so they must agree far tighter than that bound.
    auto prim = [](Real x, Real y, Real z) {
        return std::array<Real, 5>{1.0 + 0.2 * std::sin(2 * M_PI * x),
                                   0.5 * std::cos(2 * M_PI * y),
                                   0.1 * std::sin(2 * M_PI * z), 0.05,
                                   1.0 + 0.1 * std::cos(2 * M_PI * x)};
    };
    KernelFixture a(wavyMap(0.02), 12, prim);
    KernelFixture b(wavyMap(0.02), 12, prim);
    a.runWeno(KernelVariant::Portable, GetParam());
    b.runWeno(KernelVariant::FortranStyle, GetParam());
    for (int nc = 0; nc < NCONS; ++nc) {
        const Real l2 = FArrayBox::l2Diff(a.dU, b.dU, a.geom.domain(), nc);
        EXPECT_LT(l2, 1e-7) << "component " << nc; // the paper's criterion
        EXPECT_LT(l2, 1e-11) << "component " << nc; // and our stricter one
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, VariantEquivalence,
                         ::testing::Values(WenoScheme::JS5, WenoScheme::Symbo));

TEST(WenoKernel, ConservesOnPeriodicUniformGrid) {
    // Sum of J * dU over a periodic domain telescopes to zero.
    auto prim = [](Real x, Real y, Real) {
        return std::array<Real, 5>{1.0 + 0.3 * std::sin(2 * M_PI * x),
                                   0.4 * std::sin(2 * M_PI * y), 0.1, -0.2,
                                   1.0 + 0.2 * std::cos(2 * M_PI * x)};
    };
    KernelFixture fx(uniformMap(), 16, prim);
    fx.runWeno(KernelVariant::Portable);
    auto a = fx.dU.const_array();
    auto m = fx.metrics.const_array();
    for (int nc = 0; nc < NCONS; ++nc) {
        Real total = 0.0;
        amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
            total += a(i, j, k, nc) * mesh::jacobian(m, i, j, k);
        });
        EXPECT_NEAR(total, 0.0, 1e-9) << "component " << nc;
    }
}

TEST(WenoKernel, AdvectsDensityWaveInRightDirection) {
    // rho-wave moving with u > 0: d(rho)/dt = -u d(rho)/dx; check the sign
    // and approximate magnitude against the analytic RHS.
    const Real u0 = 0.5;
    auto prim = [u0](Real x, Real, Real) {
        return std::array<Real, 5>{1.0 + 0.01 * std::sin(2 * M_PI * x), u0, 0.0,
                                   0.0, 1.0};
    };
    KernelFixture fx(uniformMap(), 32, prim);
    fx.runWeno(KernelVariant::Portable, WenoScheme::JS5);
    auto a = fx.dU.const_array();
    auto x = fx.coords.const_array();
    double worst = 0.0;
    amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
        const Real exact = -u0 * 0.01 * 2 * M_PI * std::cos(2 * M_PI * x(i, j, k, 0));
        worst = std::max(worst, std::abs(a(i, j, k, URHO) - exact));
    });
    EXPECT_LT(worst, 2e-3);
}

} // namespace
} // namespace crocco::core
