#include "core/Weno.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace crocco::core {
namespace {

/// Property sweeps over both WENO schemes and random stencil data: the
/// invariants every WENO reconstruction must satisfy regardless of weights.
class WenoProperties
    : public ::testing::TestWithParam<std::tuple<WenoScheme, int>> {
protected:
    WenoScheme scheme() const { return std::get<0>(GetParam()); }
    std::mt19937 rng{static_cast<unsigned>(std::get<1>(GetParam()))};

    void randomWindow(Real f[6], double scale = 1.0) {
        std::uniform_real_distribution<double> d(-scale, scale);
        for (int i = 0; i < 6; ++i) f[i] = d(rng);
    }
};

TEST_P(WenoProperties, TranslationEquivariance) {
    // R(f + c) = R(f) + c: adding a constant shifts every candidate
    // reconstruction by c and leaves smoothness indicators unchanged.
    Real f[6], g[6];
    for (int trial = 0; trial < 40; ++trial) {
        randomWindow(f);
        const Real c = 3.7;
        for (int i = 0; i < 6; ++i) g[i] = f[i] + c;
        EXPECT_NEAR(wenoReconstruct(g, scheme()), wenoReconstruct(f, scheme()) + c,
                    1e-10);
    }
}

TEST_P(WenoProperties, ApproximateScaleEquivariance) {
    // R(c f) = c R(f) up to the epsilon regularization in the weights.
    Real f[6], g[6];
    for (int trial = 0; trial < 40; ++trial) {
        randomWindow(f, 2.0);
        const Real c = 5.0;
        for (int i = 0; i < 6; ++i) g[i] = c * f[i];
        const Real rf = wenoReconstruct(f, scheme());
        const Real rg = wenoReconstruct(g, scheme());
        EXPECT_NEAR(rg, c * rf, 5e-2 * std::abs(c) + 1e-12)
            << "trial " << trial;
    }
}

TEST_P(WenoProperties, BoundedByCandidateHull) {
    // The reconstruction is a convex combination of the candidate
    // reconstructions, so it lies in their hull.
    Real f[6];
    for (int trial = 0; trial < 60; ++trial) {
        randomWindow(f, 4.0);
        const Real q0 = (2 * f[0] - 7 * f[1] + 11 * f[2]) / 6;
        const Real q1 = (-f[1] + 5 * f[2] + 2 * f[3]) / 6;
        const Real q2 = (2 * f[2] + 5 * f[3] - f[4]) / 6;
        const Real q3 = (11 * f[3] - 7 * f[4] + 2 * f[5]) / 6;
        Real lo = std::min({q0, q1, q2}), hi = std::max({q0, q1, q2});
        if (scheme() == WenoScheme::Symbo) {
            lo = std::min(lo, q3);
            hi = std::max(hi, q3);
        }
        const Real r = wenoReconstruct(f, scheme());
        EXPECT_GE(r, lo - 1e-10);
        EXPECT_LE(r, hi + 1e-10);
    }
}

TEST_P(WenoProperties, MonotoneDataStaysWithinRange) {
    // On monotone data, the candidate hull can exceed the data range, but
    // the weighted reconstruction must stay within a modest margin of it
    // (the practical ENO property).
    std::uniform_real_distribution<double> d(0.0, 1.0);
    for (int trial = 0; trial < 40; ++trial) {
        Real f[6];
        f[0] = d(rng);
        for (int i = 1; i < 6; ++i) f[i] = f[i - 1] + d(rng);
        const Real r = wenoReconstruct(f, scheme());
        const Real range = f[5] - f[0];
        EXPECT_GE(r, f[0] - 0.25 * range);
        EXPECT_LE(r, f[5] + 0.25 * range);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, WenoProperties,
    ::testing::Combine(::testing::Values(WenoScheme::JS5, WenoScheme::Symbo),
                       ::testing::Range(0, 5)));

} // namespace
} // namespace crocco::core
