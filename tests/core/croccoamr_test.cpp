#include "core/CroccoAmr.hpp"

#include "problems/Canonical.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::core {
namespace {

using amr::IntVect;
using problems::Dmr;

Dmr::Options smallDmr() {
    Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    return o;
}

TEST(CroccoAmr, DmrInitBuildsRefinementAlongShock) {
    Dmr dmr(smallDmr());
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());

    ASSERT_EQ(solver.finestLevel(), 1);
    // The fine level hugs the initial shock (x ~ 1/6 at the wall): far
    // fewer active points than the equivalent uniform fine grid.
    EXPECT_LT(solver.totalPoints(), solver.equivalentPoints() / 2);
    // Fine boxes sit in the left part of the domain where the shock starts.
    const auto& ba1 = solver.boxArray(1);
    ASSERT_GT(ba1.size(), 0);
    EXPECT_LT(ba1.minimalBox().bigEnd(0), 2 * 64); // left half (fine idx)
}

TEST(CroccoAmr, DmrStepsStablyAndTracksShock) {
    Dmr dmr(smallDmr());
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.regridFreq = 2;
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    const int frontBefore = solver.boxArray(1).minimalBox().bigEnd(0);
    solver.evolve(6);
    EXPECT_GT(solver.time(), 0.0);
    EXPECT_GT(solver.lastDt(), 0.0);
    // Physical density bounds for Mach-10 DMR (max ~ 4x post-shock density).
    for (int lev = 0; lev <= solver.finestLevel(); ++lev) {
        EXPECT_GT(solver.state(lev).min(URHO), 0.5) << "level " << lev;
        EXPECT_LT(solver.state(lev).max(URHO), 40.0) << "level " << lev;
        EXPECT_GT(solver.state(lev).min(UEDEN), 0.0);
    }
    // The refined region's leading edge moved downstream with the shock.
    const int frontAfter = solver.boxArray(1).minimalBox().bigEnd(0);
    EXPECT_GE(frontAfter, frontBefore);
    // Profiler recorded the Algorithm-2 regions.
    for (const char* region : {"FillPatch", "WENOx", "WENOy", "WENOz",
                               "Update", "ComputeDt", "Regrid", "AverageDown"}) {
        EXPECT_TRUE(solver.profiler().has(region)) << region;
    }
}

TEST(CroccoAmr, FortranAndCppKernelPathsAgreeWithinPaperTolerance) {
    // §IV-A/§IV-C: L2 norm of per-variable differences between kernel
    // structures stays at round-off across a full driver step.
    Dmr dmr(smallDmr());
    auto mkSolver = [&](KernelVariant v) {
        auto cfg = dmr.solverConfig(CodeVersion::V12);
        cfg.amrInfo.maxLevel = 1;
        cfg.variant = v;
        auto s = std::make_unique<CroccoAmr>(dmr.geometry(), cfg, dmr.mapping());
        s->init(dmr.initialCondition(), dmr.boundaryConditions());
        s->evolve(2);
        return s;
    };
    auto a = mkSolver(KernelVariant::Portable);
    auto b = mkSolver(KernelVariant::FortranStyle);
    ASSERT_EQ(a->finestLevel(), b->finestLevel());
    for (int lev = 0; lev <= a->finestLevel(); ++lev) {
        ASSERT_EQ(a->boxArray(lev), b->boxArray(lev));
        for (int n = 0; n < NCONS; ++n) {
            const Real l2 =
                amr::MultiFab::l2Diff(a->state(lev), b->state(lev), n);
            EXPECT_LT(l2, 1e-7) << "lev " << lev << " comp " << n;
        }
    }
}

TEST(CroccoAmr, MassConservedOnPeriodicProblem) {
    problems::IsentropicVortex vortex(16);
    auto cfg = vortex.solverConfig();
    CroccoAmr solver(vortex.geometry(), cfg, vortex.mapping());
    solver.init(vortex.initialCondition(), nullptr);
    const auto before = solver.conservedTotals();
    solver.evolve(5);
    const auto after = solver.conservedTotals();
    // Fully periodic: fluxes telescope, conserved totals are exact.
    EXPECT_NEAR(after[URHO], before[URHO], 1e-10 * std::abs(before[URHO]));
    EXPECT_NEAR(after[UEDEN], before[UEDEN], 1e-10 * std::abs(before[UEDEN]));
    EXPECT_NEAR(after[UMX], before[UMX], 1e-8 * std::abs(before[UMX]) + 1e-10);
}

TEST(CroccoAmr, CoordStoreFileModeMatchesMemoryMode) {
    // The regrid coordinate source (§III-C) must not change the physics —
    // only the performance (bench/ablation_coordstore measures that).
    Dmr dmr(smallDmr());
    auto run = [&](mesh::CoordStore::Mode mode) {
        auto cfg = dmr.solverConfig(CodeVersion::V20);
        cfg.coordMode = mode;
        cfg.coordFileDir = "/tmp";
        cfg.regridFreq = 2;
        auto s = std::make_unique<CroccoAmr>(dmr.geometry(), cfg, dmr.mapping());
        s->init(dmr.initialCondition(), dmr.boundaryConditions());
        s->evolve(3);
        return s;
    };
    auto mem = run(mesh::CoordStore::Mode::Memory);
    auto file = run(mesh::CoordStore::Mode::File);
    for (int lev = 0; lev <= mem->finestLevel(); ++lev) {
        for (int n = 0; n < NCONS; ++n)
            EXPECT_EQ(amr::MultiFab::l2Diff(mem->state(lev), file->state(lev), n),
                      0.0);
    }
}

TEST(CroccoAmr, EstimateRegridFreqScalesWithPatchSize) {
    Dmr dmr(smallDmr());
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    const int freq = solver.estimateRegridFreq();
    EXPECT_GE(freq, 1);
    // Half the smallest fine-patch width at CFL 0.5 -> at least a few steps.
    EXPECT_LE(freq, 200);
}

TEST(CroccoAmr, CurvilinearAndCartesianDmrAgreeApproximately) {
    // §V-B: curvilinear coordinates are "unnecessary for this problem" —
    // running the same DMR on the wavy grid must give nearly the same
    // solution as the uniform grid when restricted to level 0 statistics.
    auto run = [&](bool curvilinear) {
        Dmr::Options o = smallDmr();
        o.maxLevel = 0;
        o.curvilinear = curvilinear;
        o.waveAmplitude = 0.01;
        Dmr dmr(o);
        auto cfg = dmr.solverConfig(CodeVersion::V11);
        auto s = std::make_unique<CroccoAmr>(dmr.geometry(), cfg, dmr.mapping());
        s->init(dmr.initialCondition(), dmr.boundaryConditions());
        s->evolve(4);
        return s->conservedTotals();
    };
    const auto curv = run(true);
    const auto cart = run(false);
    EXPECT_NEAR(curv[URHO], cart[URHO], 0.05 * std::abs(cart[URHO]));
    EXPECT_NEAR(curv[UEDEN], cart[UEDEN], 0.05 * std::abs(cart[UEDEN]));
}

TEST(CroccoAmr, CommLogCapturesPaperCommunicationStructure) {
    Dmr dmr(smallDmr());
    parallel::SimComm comm(4);
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.nranks = 4;
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping(), &comm);
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    comm.log().clear();
    solver.step();
    // One iteration produces: point-to-point FillBoundary traffic, the
    // FillPatch coarse gather, the curvilinear interpolator's coordinate
    // gather (the paper's bottleneck), and the ComputeDt reduction.
    EXPECT_GT(comm.log().count(parallel::MessageKind::PointToPoint), 0u);
    EXPECT_GT(comm.log().count(parallel::MessageKind::Reduction), 0u);
    bool sawState = false, sawCoords = false;
    for (const auto& m : comm.log().messages()) {
        sawState = sawState || m.tag == "ParallelCopy";
        sawCoords = sawCoords || m.tag == "ParallelCopy_interp";
    }
    EXPECT_TRUE(sawState);
    EXPECT_TRUE(sawCoords);

    // CRoCCo 2.1 (trilinear interpolator) must NOT produce the coordinate
    // gather.
    parallel::SimComm comm21(4);
    auto cfg21 = dmr.solverConfig(CodeVersion::V21);
    cfg21.nranks = 4;
    CroccoAmr solver21(dmr.geometry(), cfg21, dmr.mapping(), &comm21);
    solver21.init(dmr.initialCondition(), dmr.boundaryConditions());
    comm21.log().clear();
    solver21.step();
    for (const auto& m : comm21.log().messages())
        EXPECT_NE(m.tag, "ParallelCopy_interp");
}

} // namespace
} // namespace crocco::core
