// The overlapped advance (Config::overlap) must be BITWISE identical to the
// serial path on a full DMR run — same interior/halo decomposition argument
// docs/performance.md §4 lays out: every valid cell receives its complete
// dir0 -> dir1 -> dir2 (-> viscous) update sequence within one pass, with
// operands that are pure functions of Sborder/metrics at fixed indices, and
// the Begin/End exchange replays the exact copies of the blocking path.
//
// Thread counts are swept in-test (1 = serial launches, 8 = striped pool
// with the fused End+halo launch and its event ordering), so the _mt ctest
// variant re-checks the same property under GPU_NUM_THREADS=4 as well.
#include "core/CroccoAmr.hpp"

#include "gpu/ThreadPool.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace crocco::core {
namespace {

using problems::Dmr;

Dmr::Options smallDmr() {
    Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    return o;
}

std::unique_ptr<CroccoAmr> runDmr(bool overlap, int nsteps) {
    Dmr dmr(smallDmr());
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.regridFreq = 2; // include regrids in the compared trajectory
    cfg.overlap = overlap;
    auto s = std::make_unique<CroccoAmr>(dmr.geometry(), cfg, dmr.mapping());
    s->init(dmr.initialCondition(), dmr.boundaryConditions());
    s->evolve(nsteps);
    return s;
}

void expectBitwiseEqual(const CroccoAmr& a, const CroccoAmr& b) {
    ASSERT_EQ(a.finestLevel(), b.finestLevel());
    EXPECT_EQ(a.time(), b.time());
    EXPECT_EQ(a.lastDt(), b.lastDt());
    for (int lev = 0; lev <= a.finestLevel(); ++lev) {
        const amr::MultiFab& ua = a.state(lev);
        const amr::MultiFab& ub = b.state(lev);
        ASSERT_EQ(ua.boxArray(), ub.boxArray()) << "level " << lev;
        for (int f = 0; f < ua.numFabs(); ++f) {
            auto x = ua.const_array(f);
            auto y = ub.const_array(f);
            for (int n = 0; n < NCONS; ++n)
                amr::forEachCell(ua.validBox(f), [&](int i, int j, int k) {
                    EXPECT_EQ(x(i, j, k, n), y(i, j, k, n))
                        << "level " << lev << " fab " << f << " comp " << n
                        << " (" << i << "," << j << "," << k << ")";
                });
        }
    }
}

TEST(Overlap, DmrStepBitwiseIdenticalToSerialPath) {
    for (int nthreads : {1, 8}) {
        gpu::setNumThreads(nthreads);
        auto serial = runDmr(false, 4);
        auto overlapped = runDmr(true, 4);
        SCOPED_TRACE("nthreads=" + std::to_string(nthreads));
        expectBitwiseEqual(*serial, *overlapped);
        // The overlapped run exercised the split regions.
        EXPECT_TRUE(overlapped->profiler().has("FillPatchBegin"));
        EXPECT_TRUE(overlapped->profiler().has("AdvanceHalo"));
        EXPECT_FALSE(serial->profiler().has("FillPatchBegin"));
    }
    gpu::setNumThreads(1);
}

TEST(Overlap, ThreadCountDoesNotChangeOverlappedResults) {
    // Determinism within the overlapped path itself: the striped pool with
    // the event-ordered fused launch must reproduce the serial-launch run.
    gpu::setNumThreads(1);
    auto t1 = runDmr(true, 3);
    gpu::setNumThreads(8);
    auto t8 = runDmr(true, 3);
    gpu::setNumThreads(1);
    expectBitwiseEqual(*t1, *t8);
}

} // namespace
} // namespace crocco::core
