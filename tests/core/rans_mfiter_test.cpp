#include "amr/MFIter.hpp"
#include "core/Rans.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::IntVect;
using amr::MFIter;
using amr::MultiFab;

// ------------------------------------------------------------------ RANS

TEST(RansModel, InactiveWithoutLengthCap) {
    core::RansModel rans;
    EXPECT_FALSE(rans.active());
    const double g[3][3] = {{0, 5, 0}, {0, 0, 0}, {0, 0, 0}};
    EXPECT_EQ(rans.eddyViscosity(g, 1.0, 0.1), 0.0);
}

TEST(RansModel, ZeroForUniformFlowAndAtTheWall) {
    core::RansModel rans{0.41, 0.1, 0.9};
    const double none[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    EXPECT_EQ(rans.eddyViscosity(none, 1.0, 0.05), 0.0);
    const double shear[3][3] = {{0, 5, 0}, {0, 0, 0}, {0, 0, 0}};
    EXPECT_EQ(rans.eddyViscosity(shear, 1.0, 0.0), 0.0); // l_mix -> 0 at wall
}

TEST(RansModel, MixingLengthGrowsThenCaps) {
    core::RansModel rans{0.41, 0.05, 0.9};
    const double shear[3][3] = {{0, 2, 0}, {0, 0, 0}, {0, 0, 0}};
    const double nearWall = rans.eddyViscosity(shear, 1.0, 0.01);
    // The cap engages at d = lMax / kappa = 0.122: beyond it mu_t saturates.
    const double capped = rans.eddyViscosity(shear, 1.0, 0.2);
    const double farField = rans.eddyViscosity(shear, 1.0, 10.0);
    EXPECT_LT(nearWall, capped);
    EXPECT_DOUBLE_EQ(capped, farField);
    EXPECT_NEAR(farField, 1.0 * 0.05 * 0.05 * 2.0, 1e-12);
}

TEST(RansModel, LogLayerGivesLinearEddyViscosity) {
    // In a log layer u(y) = (u_tau/kappa) ln(y/y0): du/dy = u_tau/(kappa y),
    // so mu_t = rho (kappa y)^2 |du/dy| = rho kappa u_tau y — linear in y.
    core::RansModel rans{0.41, 1e9, 0.9}; // cap far away
    const double uTau = 0.3, rho = 1.2;
    auto muT = [&](double y) {
        const double dudy = uTau / (rans.kappa * y);
        const double g[3][3] = {{0, dudy, 0}, {0, 0, 0}, {0, 0, 0}};
        return rans.eddyViscosity(g, rho, y);
    };
    for (double y : {0.01, 0.05, 0.2}) {
        EXPECT_NEAR(muT(y), rho * rans.kappa * uTau * y, 1e-10);
    }
    EXPECT_NEAR(muT(0.2) / muT(0.1), 2.0, 1e-9);
}

// ---------------------------------------------------------------- MFIter

struct MFIterFixture : ::testing::Test {
    BoxArray ba;
    MultiFab mf;
    MFIterFixture() {
        std::vector<Box> boxes;
        for (int i = 0; i < 4; ++i)
            boxes.emplace_back(IntVect{8 * i, 0, 0}, IntVect{8 * i + 7, 7, 7});
        ba = BoxArray(boxes);
        mf.define(ba, DistributionMapping({0, 1, 0, 1}, 2), 1, 2);
        for (int f = 0; f < mf.numFabs(); ++f)
            mf.fab(f).setVal(static_cast<double>(f), mf.fab(f).box(), 0, 1);
    }
};

TEST_F(MFIterFixture, VisitsEveryFabInOrder) {
    int count = 0;
    for (MFIter mfi(mf); mfi.isValid(); ++mfi) {
        EXPECT_EQ(mfi.index(), count);
        EXPECT_EQ(mfi.validBox(), ba[count]);
        EXPECT_EQ(mfi.grownBox(), ba[count].grow(2));
        ++count;
    }
    EXPECT_EQ(count, 4);
}

TEST_F(MFIterFixture, RankRestrictedViewMatchesOwnership) {
    std::vector<int> seen;
    for (MFIter mfi(mf, 1); mfi.isValid(); ++mfi) {
        EXPECT_EQ(mfi.owner(), 1);
        seen.push_back(mfi.index());
    }
    EXPECT_EQ(seen, (std::vector<int>{1, 3}));
    // A rank with no fabs iterates zero times.
    int none = 0;
    for (MFIter mfi(mf, 7); mfi.isValid(); ++mfi) ++none;
    EXPECT_EQ(none, 0);
}

TEST_F(MFIterFixture, DrivesKernelLoopsLikeAmrex) {
    // The canonical usage pattern: accumulate a reduction over valid cells.
    double total = 0.0;
    for (MFIter mfi(mf); mfi.isValid(); ++mfi) {
        auto a = mf.const_array(mfi.index());
        amr::forEachCell(mfi.validBox(), [&](int i, int j, int k) {
            total += a(i, j, k, 0);
        });
    }
    EXPECT_DOUBLE_EQ(total, (0 + 1 + 2 + 3) * 512.0);
}

} // namespace
} // namespace crocco
