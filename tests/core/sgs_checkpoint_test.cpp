#include "core/CroccoAmr.hpp"
#include "core/Sgs.hpp"

#include "problems/Canonical.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

namespace crocco::core {
namespace {

// -------------------------------------------------------------------- SGS

TEST(SgsModel, InactiveByDefault) {
    SgsModel sgs;
    EXPECT_FALSE(sgs.active());
    const Real g[3][3] = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    EXPECT_EQ(sgs.eddyViscosity(g, 1.0, 0.1), 0.0);
}

TEST(SgsModel, ZeroForUniformFlowAndRotation) {
    SgsModel sgs{0.17, 0.9};
    const Real none[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    EXPECT_EQ(sgs.eddyViscosity(none, 1.0, 0.1), 0.0);
    // Solid-body rotation has antisymmetric gradient: S_ij = 0, nu_t = 0.
    const Real rot[3][3] = {{0, -1, 0}, {1, 0, 0}, {0, 0, 0}};
    EXPECT_NEAR(sgs.eddyViscosity(rot, 1.0, 0.1), 0.0, 1e-14);
}

TEST(SgsModel, MatchesAnalyticShearValue) {
    // Pure shear du/dy = s: |S| = s (2 * (s/2)^2 * 2 = s^2),
    // mu_t = rho (Cs D)^2 s.
    SgsModel sgs{0.17, 0.9};
    const Real s = 3.0;
    const Real g[3][3] = {{0, s, 0}, {0, 0, 0}, {0, 0, 0}};
    const Real rho = 1.2, delta = 0.05;
    EXPECT_NEAR(sgs.eddyViscosity(g, rho, delta),
                rho * 0.17 * 0.17 * delta * delta * s, 1e-12);
    EXPECT_NEAR(SgsModel::filterWidth(8.0), 2.0, 1e-12);
}

TEST(SgsModel, LesDampsCoarseTaylorGreenFasterThanDns) {
    // On an under-resolved Taylor-Green vortex the Smagorinsky model drains
    // resolved kinetic energy faster than molecular viscosity alone — the
    // LES mode's purpose (§II-A: 90% grid reduction relative to DNS).
    auto runKe = [&](Real cs) {
        problems::TaylorGreen tg(16, 400.0);
        auto cfg = tg.solverConfig();
        cfg.sgs.cs = cs;
        CroccoAmr solver(tg.geometry(), cfg, tg.mapping());
        solver.init(tg.initialCondition(), nullptr);
        solver.evolve(8);
        return problems::TaylorGreen::kineticEnergy(solver);
    };
    const Real keDns = runKe(0.0);
    const Real keLes = runKe(0.2);
    EXPECT_LT(keLes, keDns);
    EXPECT_GT(keLes, 0.2 * keDns); // but not absurdly dissipative
}

// ------------------------------------------------------------- Checkpoint

TEST(Checkpoint, RoundTripRestoresStateExactly) {
    problems::Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    problems::Dmr dmr(o);
    const auto cfg = dmr.solverConfig(CodeVersion::V20);

    CroccoAmr a(dmr.geometry(), cfg, dmr.mapping());
    a.init(dmr.initialCondition(), dmr.boundaryConditions());
    a.evolve(3);
    const std::string dir = "/tmp/crocco_ckpt_test";
    a.writeCheckpoint(dir);

    CroccoAmr b(dmr.geometry(), cfg, dmr.mapping());
    b.readCheckpoint(dir, dmr.initialCondition(), dmr.boundaryConditions());
    EXPECT_EQ(b.stepCount(), a.stepCount());
    EXPECT_DOUBLE_EQ(b.time(), a.time());
    ASSERT_EQ(b.finestLevel(), a.finestLevel());
    for (int lev = 0; lev <= a.finestLevel(); ++lev) {
        ASSERT_EQ(b.boxArray(lev), a.boxArray(lev));
        for (int n = 0; n < NCONS; ++n)
            EXPECT_EQ(amr::MultiFab::l2Diff(a.state(lev), b.state(lev), n), 0.0);
    }
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, RestartContinuesIdentically) {
    problems::Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    problems::Dmr dmr(o);
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.regridFreq = 100; // avoid a regrid landing differently across the split

    // Uninterrupted run: 4 steps.
    CroccoAmr full(dmr.geometry(), cfg, dmr.mapping());
    full.init(dmr.initialCondition(), dmr.boundaryConditions());
    full.evolve(4);

    // Interrupted run: 2 steps, checkpoint, restore, 2 more.
    CroccoAmr first(dmr.geometry(), cfg, dmr.mapping());
    first.init(dmr.initialCondition(), dmr.boundaryConditions());
    first.evolve(2);
    const std::string dir = "/tmp/crocco_ckpt_restart";
    first.writeCheckpoint(dir);
    CroccoAmr second(dmr.geometry(), cfg, dmr.mapping());
    second.readCheckpoint(dir, dmr.initialCondition(), dmr.boundaryConditions());
    second.evolve(2);

    EXPECT_DOUBLE_EQ(second.time(), full.time());
    for (int lev = 0; lev <= full.finestLevel(); ++lev) {
        for (int n = 0; n < NCONS; ++n) {
            // Exact restart: the checkpointed path must be bit-identical.
            EXPECT_EQ(amr::MultiFab::l2Diff(full.state(lev), second.state(lev), n),
                      0.0)
                << "lev " << lev << " comp " << n;
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, RejectsCorruptHeader) {
    std::filesystem::create_directories("/tmp/crocco_ckpt_bad");
    std::ofstream("/tmp/crocco_ckpt_bad/header.txt") << "not-a-checkpoint 9\n";
    problems::Dmr dmr(problems::Dmr::Options{});
    CroccoAmr solver(dmr.geometry(), dmr.solverConfig(CodeVersion::V20),
                     dmr.mapping());
    EXPECT_THROW(solver.readCheckpoint("/tmp/crocco_ckpt_bad",
                                       dmr.initialCondition(),
                                       dmr.boundaryConditions()),
                 std::runtime_error);
    EXPECT_THROW(solver.readCheckpoint("/tmp/does_not_exist",
                                       dmr.initialCondition(),
                                       dmr.boundaryConditions()),
                 std::runtime_error);
    std::filesystem::remove_all("/tmp/crocco_ckpt_bad");
}

} // namespace
} // namespace crocco::core
