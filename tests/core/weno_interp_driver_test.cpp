#include "core/CroccoAmr.hpp"

#include "problems/Canonical.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

namespace crocco::core {
namespace {

// The paper's "future work" feature end-to-end: FillPatch driven by the
// high-order WENO interpolator (InterpChoice::Weno) instead of the
// curvilinear/trilinear schemes — a hypothetical "CRoCCo 2.2".

problems::Dmr smallDmr() {
    problems::Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    return problems::Dmr(o);
}

TEST(WenoInterpDriver, DmrRunsStablyWithWenoFillPatch) {
    auto dmr = smallDmr();
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.interp = InterpChoice::Weno;
    cfg.regridFreq = 3;
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.evolve(6);
    EXPECT_GT(solver.state(0).min(URHO), 0.5);
    EXPECT_LT(solver.state(0).max(URHO), 40.0);
    EXPECT_GT(solver.state(1).min(URHO), 0.5);
}

TEST(WenoInterpDriver, NoGlobalCoordinateCopy) {
    // Like the trilinear interpolator, the WENO scheme works in index space
    // — swapping it in removes the coordinate ParallelCopy (the v2.0
    // bottleneck) while, unlike trilinear, raising interpolation order.
    auto dmr = smallDmr();
    parallel::SimComm comm(4);
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.interp = InterpChoice::Weno;
    cfg.nranks = 4;
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping(), &comm);
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    comm.log().clear();
    solver.step();
    for (const auto& m : comm.log().messages())
        EXPECT_NE(m.tag, "ParallelCopy_interp");
}

TEST(WenoInterpDriver, CloseToCurvilinearSolutionOnSod) {
    // On a uniform grid all sane interpolators should land near the same
    // answer; verifies Weno FillPatch does not distort the physics.
    auto run = [&](InterpChoice interp) {
        problems::SodTube sod(32);
        auto cfg = sod.solverConfig(true);
        cfg.interp = interp;
        auto s = std::make_unique<CroccoAmr>(sod.geometry(), cfg, sod.mapping());
        s->init(sod.initialCondition(), sod.boundaryConditions());
        while (s->time() < 0.08) s->step();
        return s;
    };
    auto tri = run(InterpChoice::Trilinear);
    auto weno = run(InterpChoice::Weno);
    ASSERT_EQ(tri->finestLevel(), weno->finestLevel());
    const Real norm = tri->state(0).norm2(URHO);
    EXPECT_LT(amr::MultiFab::l2Diff(tri->state(0), weno->state(0), URHO) / norm,
              0.01);
}

} // namespace
} // namespace crocco::core
