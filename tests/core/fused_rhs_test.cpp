// The fused RHS pipeline (Config::fused) must be BITWISE identical to the
// unfused path on a full DMR run with regrids — the contract docs/
// performance.md §5 lays out: every cached primitive/metric value equals
// the unfused inline computation bit-for-bit, the fused flux+divergence
// pencil pass evaluates the exact interfaceFlux arithmetic once per face,
// the dir-0 assignment reproduces setVal(0) + `-=`, and the fused RK3
// update performs the mult/saxpy/saxpy chain per cell in order.
//
// Thread counts are swept in-test (1 = serial launches, 8 = striped pool
// with batched phases), so the _mt ctest variant re-checks the same
// property under GPU_NUM_THREADS=4 as well. The fused pipeline must also
// compose with the overlapped advance (all four {overlap, fused} combos
// agree), and the launch-count/modeled-bytes profiler columns must show the
// fusion: strictly fewer counted launches and modeled DRAM bytes per WENO
// region.
#include "core/CroccoAmr.hpp"

#include "core/FusedRhs.hpp"
#include "gpu/Arena.hpp"
#include "gpu/ThreadPool.hpp"
#include "problems/Dmr.hpp"

#ifdef CROCCO_CHECK
#include "check/Check.hpp"
#endif

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace crocco::core {
namespace {

using problems::Dmr;

Dmr::Options smallDmr() {
    Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    return o;
}

std::unique_ptr<CroccoAmr> runDmr(bool fusedPipe, bool overlap, int nsteps) {
    Dmr dmr(smallDmr());
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.regridFreq = 2; // include regrids in the compared trajectory
    cfg.fused = fusedPipe;
    cfg.overlap = overlap;
    auto s = std::make_unique<CroccoAmr>(dmr.geometry(), cfg, dmr.mapping());
    s->init(dmr.initialCondition(), dmr.boundaryConditions());
    s->evolve(nsteps);
    return s;
}

void expectBitwiseEqual(const CroccoAmr& a, const CroccoAmr& b) {
    ASSERT_EQ(a.finestLevel(), b.finestLevel());
    EXPECT_EQ(a.time(), b.time());
    EXPECT_EQ(a.lastDt(), b.lastDt());
    for (int lev = 0; lev <= a.finestLevel(); ++lev) {
        const amr::MultiFab& ua = a.state(lev);
        const amr::MultiFab& ub = b.state(lev);
        ASSERT_EQ(ua.boxArray(), ub.boxArray()) << "level " << lev;
        for (int f = 0; f < ua.numFabs(); ++f) {
            auto x = ua.const_array(f);
            auto y = ub.const_array(f);
            for (int n = 0; n < NCONS; ++n)
                amr::forEachCell(ua.validBox(f), [&](int i, int j, int k) {
                    EXPECT_EQ(x(i, j, k, n), y(i, j, k, n))
                        << "level " << lev << " fab " << f << " comp " << n
                        << " (" << i << "," << j << "," << k << ")";
                });
        }
    }
}

TEST(FusedRhs, DmrBitwiseIdenticalToUnfusedPath) {
    for (int nthreads : {1, 8}) {
        gpu::setNumThreads(nthreads);
        auto unfused = runDmr(false, false, 4);
        auto fusedRun = runDmr(true, false, 4);
        SCOPED_TRACE("nthreads=" + std::to_string(nthreads));
        expectBitwiseEqual(*unfused, *fusedRun);
        // The fused run exercised the cache phase; the unfused run did not.
        EXPECT_TRUE(fusedRun->profiler().has("PrimCache"));
        EXPECT_FALSE(unfused->profiler().has("PrimCache"));
        // Launch fusion is visible in the per-region counted launches: the
        // unfused WENO sweep is 3 kernels per fab, the fused one 2 flat.
        EXPECT_LT(fusedRun->profiler().launches("WENOx"),
                  unfused->profiler().launches("WENOx"));
        EXPECT_GT(unfused->profiler().launches("WENOx"), 0);
        // And in the modeled-DRAM column (face-flux round trip removed).
        EXPECT_GT(fusedRun->profiler().modeledBytes("WENOx"), 0.0);
        EXPECT_LT(fusedRun->profiler().modeledBytes("WENOx"),
                  unfused->profiler().modeledBytes("WENOx"));
        EXPECT_LT(fusedRun->profiler().modeledBytes("Update"),
                  unfused->profiler().modeledBytes("Update"));
    }
    gpu::setNumThreads(1);
}

TEST(FusedRhs, ComposesWithOverlap) {
    // All four {overlap, fused} combinations advance the same trajectory
    // bit-for-bit: fusion changes the kernel structure inside each region,
    // overlap changes the region decomposition, and neither may change a
    // single per-cell operand or operation order.
    for (int nthreads : {1, 8}) {
        gpu::setNumThreads(nthreads);
        SCOPED_TRACE("nthreads=" + std::to_string(nthreads));
        auto base = runDmr(false, false, 3);
        auto fusedOnly = runDmr(true, false, 3);
        auto overlapOnly = runDmr(false, true, 3);
        auto both = runDmr(true, true, 3);
        expectBitwiseEqual(*base, *fusedOnly);
        expectBitwiseEqual(*base, *overlapOnly);
        expectBitwiseEqual(*base, *both);
        // The combined run exercised the split-region fused pipeline.
        EXPECT_TRUE(both->profiler().has("AdvanceHalo"));
        EXPECT_TRUE(both->profiler().has("PrimCache"));
    }
    gpu::setNumThreads(1);
}

TEST(FusedRhs, ThreadCountDoesNotChangeFusedResults) {
    // Determinism within the fused path itself: batched phases tile fabs
    // onto workers, but every dU cell is owned by exactly one pencil/fab,
    // so the striped pool reproduces the serial-launch run bit-for-bit.
    gpu::setNumThreads(1);
    auto t1 = runDmr(true, false, 3);
    gpu::setNumThreads(8);
    auto t8 = runDmr(true, false, 3);
    gpu::setNumThreads(1);
    expectBitwiseEqual(*t1, *t8);
}

#ifdef CROCCO_CHECK
TEST(FusedRhs, ScratchPoolRepoisonsPrimCacheBetweenStages) {
    // The shared primitive cache is leased from the ScratchPool and
    // recycled across RK3 stages. A consumer reading a cache cell the
    // current stage has not yet written must abort in check builds — i.e.
    // the pool re-poisons recycled storage on every acquire, so a stale
    // previous-stage value can never be read silently.
    const amr::Box box(amr::IntVect(0, 0, 0), amr::IntVect(7, 7, 7));
    {
        auto lease = gpu::ScratchPool::instance().acquire(box, fused::NCACHE);
        auto a = lease.fab().array();
        a(3, 3, 3, fused::QC_P) = 1.0; // stage N writes...
        EXPECT_EQ(lease.fab().const_array()(3, 3, 3, fused::QC_P), 1.0);
    } // ...lease returns to the free list
    auto lease = gpu::ScratchPool::instance().acquire(box, fused::NCACHE);
    check::ScopedFailureCapture cap;
    (void)lease.fab().const_array()(3, 3, 3, fused::QC_P);
    EXPECT_EQ(cap.count(check::Kind::Uninit), 1u)
        << "recycled cache storage must be re-poisoned on acquire";
}
#endif

} // namespace
} // namespace crocco::core
