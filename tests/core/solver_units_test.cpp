#include "core/BCFill.hpp"
#include "core/ComputeDt.hpp"
#include "core/Rk3.hpp"
#include "core/Tagging.hpp"

#include "mesh/CoordStore.hpp"
#include "mesh/GridMetrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

namespace crocco::core {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::Geometry;
using amr::IntVect;
using amr::MultiFab;

// ------------------------------------------------------------------- RK3

TEST(Rk3, CoefficientsAreWilliamsons) {
    EXPECT_DOUBLE_EQ(Rk3::A[0], 0.0);
    EXPECT_DOUBLE_EQ(Rk3::A[1], -5.0 / 9.0);
    EXPECT_DOUBLE_EQ(Rk3::A[2], -153.0 / 128.0);
    EXPECT_DOUBLE_EQ(Rk3::B[0], 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(Rk3::B[1], 15.0 / 16.0);
    EXPECT_DOUBLE_EQ(Rk3::B[2], 8.0 / 15.0);
}

double integrateOde(double dt, int nsteps) {
    // dy/dt = -y via the low-storage scheme; exact = exp(-t).
    double y = 1.0, g = 0.0;
    for (int s = 0; s < nsteps; ++s) {
        for (int stage = 0; stage < Rk3::nStages; ++stage) {
            g = Rk3::A[stage] * g + dt * (-y);
            y += Rk3::B[stage] * g;
        }
    }
    return y;
}

TEST(Rk3, ThirdOrderConvergenceOnLinearOde) {
    const double T = 1.0;
    const double e1 = std::abs(integrateOde(T / 20, 20) - std::exp(-T));
    const double e2 = std::abs(integrateOde(T / 40, 40) - std::exp(-T));
    const double order = std::log2(e1 / e2);
    EXPECT_GT(order, 2.8);
    EXPECT_LT(order, 3.4);
}

TEST(Rk3, StableAtCflOne) {
    // Advection-like imaginary eigenvalue at the scheme's stability edge:
    // y' = i*w*y with |w*dt| slightly under the RK3 bound (~1.73) must not
    // grow over many steps.
    std::complex<double> y{1.0, 0.0}, g{0.0, 0.0};
    const std::complex<double> lambda{0.0, 1.7};
    for (int s = 0; s < 200; ++s) {
        for (int stage = 0; stage < Rk3::nStages; ++stage) {
            g = Rk3::A[stage] * g + lambda * y;
            y += Rk3::B[stage] * g;
        }
    }
    EXPECT_LE(std::abs(y), 1.0 + 1e-6);
}

// -------------------------------------------------------------- ComputeDt

struct DtFixture {
    Geometry geom;
    MultiFab U, metrics;
    GasModel gas;

    DtFixture(int n, Real u, Real p, Real rho) {
        geom = Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0},
                        {1, 1, 1}, amr::Periodicity::all());
        auto mapping = std::make_shared<mesh::UniformMapping>(
            std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{1, 1, 1});
        mesh::CoordStore store(mapping, geom, IntVect(2), 0, NGHOST + 3);
        BoxArray ba(geom.domain());
        DistributionMapping dm(ba, 1);
        MultiFab coords(ba, dm, 3, NGHOST + 3);
        store.getCoords(coords, 0);
        metrics.define(ba, dm, mesh::MetricComps, NGHOST);
        mesh::computeMetrics(coords, metrics, geom);
        U.define(ba, dm, NCONS, NGHOST);
        U.setVal(0.0);
        U.setVal(rho, URHO, 1);
        U.setVal(rho * u, UMX, 1);
        U.setVal(gas.totalEnergy(rho, u, 0, 0, p), UEDEN, 1);
    }
};

TEST(ComputeDt, MatchesAnalyticCflOnUniformFlow) {
    // Physical grid == computational grid (unit cube, n^3): dxi/dx = n/n=1,
    // physical dx = 1/n. dt = cfl / sum_d (|u_d| + a)/dx_d.
    const int n = 8;
    const Real u = 0.5, p = 1.0, rho = 1.4;
    DtFixture fx(n, u, p, rho);
    const Real a = fx.gas.soundSpeed(rho, p);
    const Real dx = 1.0 / n;
    const Real expected = 0.5 / ((std::abs(u) + a + 2 * a) / dx);
    const Real dt = computeDt(fx.U, fx.metrics, fx.geom, fx.gas, 0.5);
    EXPECT_NEAR(dt, expected, 1e-10);
}

TEST(ComputeDt, FasterFlowMeansSmallerDt) {
    DtFixture slow(8, 0.1, 1.0, 1.4), fast(8, 3.0, 1.0, 1.4);
    EXPECT_GT(computeDt(slow.U, slow.metrics, slow.geom, slow.gas, 0.5),
              computeDt(fast.U, fast.metrics, fast.geom, fast.gas, 0.5));
}

TEST(ComputeDt, LogsGlobalReduction) {
    DtFixture fx(8, 0.5, 1.0, 1.4);
    parallel::SimComm comm(4);
    BoxArray ba(fx.geom.domain());
    // Re-define U attached to a comm so the reduction is logged.
    MultiFab U2(ba, DistributionMapping(ba, 4), NCONS, NGHOST, &comm);
    MultiFab::copy(U2, fx.U, 0, 0, NCONS, 0);
    computeDt(U2, fx.metrics, fx.geom, fx.gas, 0.5);
    EXPECT_EQ(comm.log().count(parallel::MessageKind::Reduction), 3u);
}

// ----------------------------------------------------------------- BCFill

struct BcFixture {
    Geometry geom{Box(IntVect::zero(), IntVect(7)), {0, 0, 0}, {1, 1, 1},
                  amr::Periodicity{{false, false, true}}};
    MultiFab mf;
    BcFixture() {
        BoxArray ba(geom.domain());
        mf.define(ba, DistributionMapping(ba, 1), NCONS, 2);
        mf.setVal(0.0);
        auto a = mf.array(0);
        amr::forEachCell(geom.domain(), [&](int i, int j, int k) {
            a(i, j, k, URHO) = 1.0 + i + 10 * j;
            a(i, j, k, UMX) = 0.5 * i;
            a(i, j, k, UMY) = 0.25 * j;
            a(i, j, k, UMZ) = 0.1 * k;
            a(i, j, k, UEDEN) = 5.0;
        });
    }
};

TEST(BCFill, OutflowExtrapolatesZeroOrder) {
    BcFixture fx;
    BCSpec spec;
    spec.face[0][0] = {BCType::Outflow, {}};
    applyBCs(fx.mf, fx.geom, spec);
    auto a = fx.mf.const_array(0);
    EXPECT_DOUBLE_EQ(a(-1, 3, 3, URHO), a(0, 3, 3, URHO));
    EXPECT_DOUBLE_EQ(a(-2, 3, 3, UMX), a(0, 3, 3, UMX));
}

TEST(BCFill, DirichletSetsExternalState) {
    BcFixture fx;
    BCSpec spec;
    spec.face[0][1] = {BCType::Dirichlet, {9.0, 1.0, 2.0, 3.0, 99.0}};
    applyBCs(fx.mf, fx.geom, spec);
    auto a = fx.mf.const_array(0);
    EXPECT_DOUBLE_EQ(a(8, 3, 3, URHO), 9.0);
    EXPECT_DOUBLE_EQ(a(9, 3, 3, UEDEN), 99.0);
}

TEST(BCFill, SlipWallMirrorsAndFlipsNormalMomentum) {
    BcFixture fx;
    BCSpec spec;
    spec.face[1][0] = {BCType::SlipWall, {}};
    applyBCs(fx.mf, fx.geom, spec);
    auto a = fx.mf.const_array(0);
    // Ghost j=-1 mirrors j=0; j=-2 mirrors j=1.
    EXPECT_DOUBLE_EQ(a(3, -1, 3, URHO), a(3, 0, 3, URHO));
    EXPECT_DOUBLE_EQ(a(3, -2, 3, URHO), a(3, 1, 3, URHO));
    EXPECT_DOUBLE_EQ(a(3, -1, 3, UMY), -a(3, 0, 3, UMY));
    EXPECT_DOUBLE_EQ(a(3, -1, 3, UMX), a(3, 0, 3, UMX)); // tangential kept
}

TEST(BCFill, NoSlipWallFlipsAllMomentum) {
    BcFixture fx;
    BCSpec spec;
    spec.face[1][1] = {BCType::NoSlipWall, {}};
    applyBCs(fx.mf, fx.geom, spec);
    auto a = fx.mf.const_array(0);
    EXPECT_DOUBLE_EQ(a(3, 8, 3, UMX), -a(3, 7, 3, UMX));
    EXPECT_DOUBLE_EQ(a(3, 8, 3, UMY), -a(3, 7, 3, UMY));
    EXPECT_DOUBLE_EQ(a(3, 8, 3, UMZ), -a(3, 7, 3, UMZ));
    EXPECT_DOUBLE_EQ(a(3, 8, 3, URHO), a(3, 7, 3, URHO));
}

TEST(BCFill, PeriodicFacesAreLeftToFillBoundary) {
    BcFixture fx;
    BCSpec spec; // z faces periodic in geometry
    spec.face[2][0] = {BCType::Dirichlet, {7, 7, 7, 7, 7}};
    applyBCs(fx.mf, fx.geom, spec);
    auto a = fx.mf.const_array(0);
    EXPECT_DOUBLE_EQ(a(3, 3, -1, URHO), 0.0); // untouched
}

// ---------------------------------------------------------------- Tagging

TEST(Tagging, DensityGradientFlagsJumpOnly) {
    BcFixture fx;
    // Overwrite: uniform except a density jump at i = 4.
    auto a = fx.mf.array(0);
    amr::forEachCell(fx.mf.grownBox(0), [&](int i, int j, int k) {
        a(i, j, k, URHO) = i < 4 ? 1.0 : 5.0;
        a(i, j, k, UMX) = a(i, j, k, UMY) = a(i, j, k, UMZ) = 0.0;
        a(i, j, k, UEDEN) = 2.5;
    });
    std::vector<IntVect> tags;
    tagCells(fx.mf, {TagCriterion::DensityGradient, 0.5}, tags);
    EXPECT_FALSE(tags.empty());
    for (const IntVect& t : tags) {
        EXPECT_TRUE(t[0] == 3 || t[0] == 4) << t;
    }
}

TEST(Tagging, MomentumGradientAndVorticity) {
    BcFixture fx;
    auto a = fx.mf.array(0);
    amr::forEachCell(fx.mf.grownBox(0), [&](int i, int j, int k) {
        a(i, j, k, URHO) = 1.0;
        a(i, j, k, UMX) = j >= 4 ? 2.0 : 0.0; // shear layer at j = 4
        a(i, j, k, UMY) = a(i, j, k, UMZ) = 0.0;
        a(i, j, k, UEDEN) = 2.5;
    });
    std::vector<IntVect> momTags, vortTags;
    tagCells(fx.mf, {TagCriterion::MomentumGradient, 0.5}, momTags);
    tagCells(fx.mf, {TagCriterion::Vorticity, 0.5}, vortTags);
    EXPECT_FALSE(momTags.empty());
    EXPECT_FALSE(vortTags.empty());
    for (const IntVect& t : vortTags) EXPECT_TRUE(t[1] == 3 || t[1] == 4);
}

TEST(Tagging, NoTagsBelowThreshold) {
    BcFixture fx;
    fx.mf.setVal(1.0);
    std::vector<IntVect> tags;
    tagCells(fx.mf, {TagCriterion::DensityGradient, 0.1}, tags);
    EXPECT_TRUE(tags.empty());
}

} // namespace
} // namespace crocco::core
