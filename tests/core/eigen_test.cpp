#include "core/Eigen.hpp"

#include "problems/Canonical.hpp"
#include "problems/Dmr.hpp"
#include "problems/Riemann.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace crocco::core {
namespace {

class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, RightTimesLeftIsIdentity) {
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    GasModel gas;
    for (int t = 0; t < 50; ++t) {
        const Real rho = 0.2 + 2.0 * std::abs(d(rng));
        const Real p = 0.1 + 5.0 * std::abs(d(rng));
        const Prim q{rho, 3 * d(rng), 3 * d(rng), 3 * d(rng), p,
                     gas.soundSpeed(rho, p)};
        Real kdir[3] = {d(rng), d(rng), d(rng)};
        if (std::abs(kdir[0]) + std::abs(kdir[1]) + std::abs(kdir[2]) < 0.1)
            kdir[0] = 1.0;
        const EigenSystem es = eulerEigenvectors(q, kdir, gas);
        for (int r = 0; r < NCONS; ++r) {
            for (int c = 0; c < NCONS; ++c) {
                Real sum = 0.0;
                for (int m = 0; m < NCONS; ++m) sum += es.R[r][m] * es.L[m][c];
                EXPECT_NEAR(sum, r == c ? 1.0 : 0.0, 1e-10)
                    << "R*L[" << r << "][" << c << "] seed " << GetParam();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenProperty, ::testing::Range(0, 8));

TEST(EigenSystem, AxisAlignedDirectionsWork) {
    // Degenerate orientations (pure x, y, z and diagonals) must all produce
    // valid triads — the classic failure mode of naive tangent choices.
    GasModel gas;
    const Prim q{1.0, 0.3, -0.2, 0.1, 1.0, gas.soundSpeed(1.0, 1.0)};
    const Real dirs[][3] = {{1, 0, 0}, {0, 1, 0},  {0, 0, 1},
                            {1, 1, 1}, {0, 1, -1}, {-1, 0, 0}};
    for (const auto& kdir : dirs) {
        const EigenSystem es = eulerEigenvectors(q, kdir, gas);
        Real offDiag = 0.0;
        for (int r = 0; r < NCONS; ++r)
            for (int c = 0; c < NCONS; ++c) {
                Real sum = 0.0;
                for (int m = 0; m < NCONS; ++m) sum += es.R[r][m] * es.L[m][c];
                offDiag = std::max(offDiag, std::abs(sum - (r == c ? 1.0 : 0.0)));
            }
        EXPECT_LT(offDiag, 1e-10);
    }
}

TEST(CharacteristicWeno, MatchesComponentWiseOnSmoothFlow) {
    // Both reconstructions converge to the same PDE: on a smooth flow the
    // RHS difference is truncation-small.
    problems::IsentropicVortex v(24);
    auto run = [&](Reconstruction recon) {
        auto cfg = v.solverConfig();
        cfg.recon = recon;
        auto s = std::make_unique<CroccoAmr>(v.geometry(), cfg, v.mapping());
        s->init(v.initialCondition(), nullptr);
        s->evolve(4);
        return s;
    };
    auto comp = run(Reconstruction::ComponentWise);
    auto chr = run(Reconstruction::CharacteristicWise);
    const Real norm = comp->state(0).norm2(URHO);
    const Real diff =
        amr::MultiFab::l2Diff(comp->state(0), chr->state(0), URHO);
    EXPECT_LT(diff / norm, 2e-3);
}

TEST(CharacteristicWeno, SodStaysNonOscillatoryAndAccurate) {
    // Both reconstructions must be essentially oscillation-free on Sod (the
    // SYMBO limiter already suppresses component-wise ringing at this shock
    // strength; the characteristic projection's payoff shows at Mach-10
    // strength, covered by DmrRunsStably below). Check bounds and accuracy.
    auto run = [&](Reconstruction recon) {
        problems::SodTube sod(64);
        auto cfg = sod.solverConfig(false);
        cfg.recon = recon;
        auto solver = std::make_unique<CroccoAmr>(sod.geometry(), cfg,
                                                  sod.mapping());
        solver->init(sod.initialCondition(), sod.boundaryConditions());
        while (solver->time() < 0.12) solver->step();
        return solver;
    };
    auto chr = run(Reconstruction::CharacteristicWise);
    const Real over = std::max(0.0, chr->state(0).max(URHO) - 1.0);
    const Real under = std::max(0.0, 0.125 - chr->state(0).min(URHO));
    EXPECT_LT(over + under, 1e-3); // essentially oscillation-free
    // And the two reconstructions land on (nearly) the same solution.
    auto comp = run(Reconstruction::ComponentWise);
    const Real diff =
        amr::MultiFab::l2Diff(comp->state(0), chr->state(0), URHO);
    EXPECT_LT(diff / comp->state(0).norm2(URHO), 0.01);
}

TEST(CharacteristicWeno, DmrRunsStably) {
    problems::Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    problems::Dmr dmr(o);
    auto cfg = dmr.solverConfig(CodeVersion::V20);
    cfg.recon = Reconstruction::CharacteristicWise;
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.evolve(5);
    EXPECT_GT(solver.state(0).min(URHO), 0.5);
    EXPECT_LT(solver.state(0).max(URHO), 40.0);
}

} // namespace
} // namespace crocco::core
