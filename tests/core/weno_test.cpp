#include "core/Weno.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::core {
namespace {

class WenoScheme_P : public ::testing::TestWithParam<WenoScheme> {};

TEST_P(WenoScheme_P, ReproducesConstants) {
    const Real f[6] = {3.5, 3.5, 3.5, 3.5, 3.5, 3.5};
    EXPECT_NEAR(wenoReconstruct(f, GetParam()), 3.5, 1e-13);
}

TEST_P(WenoScheme_P, ReproducesLinearData) {
    // Linear data has identical candidate reconstructions, so the nonlinear
    // weights are irrelevant and the result is the exact midpoint value.
    Real f[6];
    for (int i = 0; i < 6; ++i) f[i] = 2.0 * (i - 2) + 1.0; // cell i is f[2]
    EXPECT_NEAR(wenoReconstruct(f, GetParam()), 2.0 * 0.5 + 1.0, 1e-12);
}

TEST_P(WenoScheme_P, FluxDifferenceIsHighOrderOnSmoothData) {
    // Finite-difference WENO reconstructs the numerical flux h(x_{i+1/2}),
    // not f(x_{i+1/2}) itself: the high-order property is that the flux
    // *difference* approximates the derivative, (R_{i+1/2} - R_{i-1/2})/h =
    // f'(x_i) + O(h^5) for the linear scheme. Measure that order.
    auto runAt = [&](double h) {
        Real lo[6], hi[6];
        for (int i = 0; i < 6; ++i) {
            lo[i] = std::sin(1.0 + (i - 3) * h); // window for i-1/2
            hi[i] = std::sin(1.0 + (i - 2) * h); // window for i+1/2
        }
        const double deriv =
            (wenoReconstruct(hi, GetParam()) - wenoReconstruct(lo, GetParam())) / h;
        return std::abs(deriv - std::cos(1.0));
    };
    const double e1 = runAt(0.2), e2 = runAt(0.1);
    EXPECT_GT(std::log2(e1 / e2), 3.5) << e1 << " " << e2;
}

TEST_P(WenoScheme_P, NonOscillatoryAtJump) {
    // A step must not produce values outside [min, max] of the data (ENO
    // property, small epsilon-tolerance allowed).
    const Real f[6] = {1.0, 1.0, 1.0, 10.0, 10.0, 10.0};
    const Real v = wenoReconstruct(f, GetParam());
    EXPECT_GE(v, 1.0 - 0.02);
    EXPECT_LE(v, 10.0 + 0.02);
    const Real g[6] = {10.0, 10.0, 10.0, 1.0, 1.0, 1.0};
    const Real w = wenoReconstruct(g, GetParam());
    EXPECT_GE(w, 1.0 - 0.02);
    EXPECT_LE(w, 10.0 + 0.02);
}

TEST_P(WenoScheme_P, UpwindBiasAtDownstreamShock) {
    // With a discontinuity in the downwind half of the window, the
    // left-biased reconstruction must come from the smooth upwind data.
    const Real f[6] = {2.0, 2.0, 2.0, 2.0, 50.0, 50.0};
    const Real v = wenoReconstruct(f, GetParam());
    EXPECT_NEAR(v, 2.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Schemes, WenoScheme_P,
                         ::testing::Values(WenoScheme::JS5, WenoScheme::Symbo));

TEST(WenoSymbo, UsesDownwindInformationOnSmoothData) {
    // SYMBO's raison d'etre: on smooth data the downwind stencil
    // participates, giving a different (bandwidth-optimized) value than the
    // purely upwind JS5.
    Real f[6];
    for (int i = 0; i < 6; ++i) f[i] = std::sin(0.8 * (i - 2));
    const Real js = wenoReconstruct(f, WenoScheme::JS5);
    const Real sy = wenoReconstruct(f, WenoScheme::Symbo);
    EXPECT_GT(std::abs(js - sy), 1e-8);
    // And SYMBO is *closer* to symmetric than JS5 (its candidate set is
    // symmetric even though its optimized weights retain an upwind bias):
    // the mirror-image window reconstructs closer to the original value.
    Real g[6];
    for (int i = 0; i < 6; ++i) g[i] = f[5 - i];
    const Real asymSy = std::abs(wenoReconstruct(g, WenoScheme::Symbo) - sy);
    const Real asymJs = std::abs(wenoReconstruct(g, WenoScheme::JS5) - js);
    EXPECT_LT(asymSy, asymJs);
}

TEST(WenoSymbo, SharperThanJs5OnSmoothData) {
    // The added downwind stencil raises the design order on smooth data:
    // SYMBO's reconstruction error should beat JS5's.
    double ejs = 0, esy = 0;
    for (int t = 0; t < 10; ++t) {
        const double x0 = 0.3 * t;
        const double h = 0.2;
        Real f[6];
        for (int i = 0; i < 6; ++i) f[i] = std::sin(x0 + (i - 2) * h);
        const double exact = std::sin(x0 + 0.5 * h);
        ejs += std::abs(wenoReconstruct(f, WenoScheme::JS5) - exact);
        esy += std::abs(wenoReconstruct(f, WenoScheme::Symbo) - exact);
    }
    EXPECT_LT(esy, ejs);
}

} // namespace
} // namespace crocco::core
