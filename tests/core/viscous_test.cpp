#include "core/Viscous.hpp"

#include "amr/FArrayBox.hpp"
#include "amr/Geometry.hpp"
#include "mesh/CoordStore.hpp"
#include "mesh/GridMetrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::core {
namespace {

using amr::Box;
using amr::FArrayBox;
using amr::Geometry;
using amr::IntVect;

struct ViscousFixture {
    Geometry geom;
    FArrayBox coords, metrics, S, dU;
    GasModel gas;

    ViscousFixture(int n, Real mu,
                   const std::function<std::array<Real, 5>(Real, Real, Real)>& prim) {
        gas.muRef = mu;
        gas.Tsuth = 0.0; // power-law off: mu(T) = muRef * (T/Tref)^1.5
        geom = Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0},
                        {1, 1, 1}, amr::Periodicity::all());
        auto mapping = std::make_shared<mesh::UniformMapping>(
            std::array<Real, 3>{0, 0, 0},
            std::array<Real, 3>{2 * M_PI, 2 * M_PI, 2 * M_PI});
        mesh::CoordStore store(mapping, geom, IntVect(2), 0, NGHOST + 3);
        const Box grown = geom.domain().grow(NGHOST);
        coords = FArrayBox(geom.domain().grow(NGHOST + 3), 3);
        store.getCoords(coords, 0);
        metrics = FArrayBox(grown, mesh::MetricComps);
        mesh::computeMetricsFab(coords.const_array(), metrics.array(), grown,
                                geom.cellSizeArray());
        S = FArrayBox(grown, NCONS);
        auto s = S.array();
        auto x = coords.const_array();
        amr::forEachCell(grown, [&](int i, int j, int k) {
            IntVect w{((i % n) + n) % n, ((j % n) + n) % n, ((k % n) + n) % n};
            const auto q = prim(x(w[0], w[1], w[2], 0), x(w[0], w[1], w[2], 1),
                                x(w[0], w[1], w[2], 2));
            s(i, j, k, URHO) = q[0];
            s(i, j, k, UMX) = q[0] * q[1];
            s(i, j, k, UMY) = q[0] * q[2];
            s(i, j, k, UMZ) = q[0] * q[3];
            s(i, j, k, UEDEN) = gas.totalEnergy(q[0], q[1], q[2], q[3], q[4]);
        });
        dU = FArrayBox(geom.domain(), NCONS, 0.0);
    }

    void run() {
        viscousFlux(S.const_array(), metrics.const_array(), geom.domain(),
                    dU.array(), geom.cellSizeArray(), gas,
                    KernelVariant::Portable);
    }
};

TEST(ViscousKernel, ZeroForUniformFlow) {
    ViscousFixture fx(8, 0.01, [](Real, Real, Real) {
        return std::array<Real, 5>{1.0, 0.5, 0.25, -0.3, 1.0};
    });
    fx.run();
    for (int nc = 0; nc < NCONS; ++nc) {
        EXPECT_NEAR(fx.dU.max(fx.geom.domain(), nc), 0.0, 1e-11);
        EXPECT_NEAR(fx.dU.min(fx.geom.domain(), nc), 0.0, 1e-11);
    }
}

TEST(ViscousKernel, ShearLayerDiffusionMatchesAnalyticRhs) {
    // u = sin(y), constant rho, T: d(rho u)/dt = mu d2u/dy2 = -mu sin(y)
    // (mu constant because T is uniform).
    const Real mu = 0.02;
    auto prim = [](Real, Real y, Real) {
        return std::array<Real, 5>{1.0, std::sin(y), 0.0, 0.0, 1.0 / 1.4};
    };
    // At this rho/p, T = p/(rho R) = 1/1.4; set Tref so mu(T) = muRef.
    double errs[2];
    for (int r = 0; r < 2; ++r) {
        const int n = r == 0 ? 16 : 32;
        ViscousFixture fx(n, mu, prim);
        fx.gas.Tref = 1.0 / 1.4;
        fx.run();
        auto a = fx.dU.const_array();
        auto x = fx.coords.const_array();
        double worst = 0.0;
        amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
            const Real exact = -mu * std::sin(x(i, j, k, 1));
            worst = std::max(worst, std::abs(a(i, j, k, UMX) - exact));
        });
        errs[r] = worst;
    }
    EXPECT_LT(errs[0], 0.1 * mu);
    // 4th-order convergence: error drops by ~16x per refinement.
    EXPECT_GT(std::log2(errs[0] / errs[1]), 3.2) << errs[0] << " " << errs[1];
}

TEST(ViscousKernel, HeatConductionActsOnTemperatureGradient) {
    // Constant velocity zero, T varies: only the energy equation responds,
    // with d(E)/dt = d/dx(k dT/dx) = -k_cond T'' ... for T = T0 + a sin(x):
    // RHS_E = -lambda * a * sin(x) (lambda locally ~const for small a).
    auto prim = [](Real x, Real, Real) {
        const Real T = 1.0 + 0.01 * std::sin(x);
        const Real rho = 1.0;
        return std::array<Real, 5>{rho, 0.0, 0.0, 0.0, rho * 1.0 * T};
    };
    ViscousFixture fx(32, 0.05, prim);
    fx.gas.Tref = 1.0;
    fx.run();
    // Momentum untouched (no velocity), energy responds with the right
    // sign: where T peaks, heat flows away -> dE/dt < 0.
    auto a = fx.dU.const_array();
    auto x = fx.coords.const_array();
    const Real lambda = fx.gas.conductivity(1.0);
    double worst = 0.0;
    amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
        EXPECT_NEAR(a(i, j, k, UMX), 0.0, 1e-10);
        EXPECT_NEAR(a(i, j, k, UMY), 0.0, 1e-10);
        const Real exact = -lambda * 0.01 * std::sin(x(i, j, k, 0));
        worst = std::max(worst, std::abs(a(i, j, k, UEDEN) - exact));
    });
    EXPECT_LT(worst, 0.05 * lambda * 0.01);
}

TEST(ViscousKernel, DissipatesKineticEnergyGlobally) {
    // For any periodic velocity field the volume-integrated viscous work on
    // momentum against velocity is negative (dissipation).
    auto prim = [](Real x, Real y, Real z) {
        return std::array<Real, 5>{1.0, std::sin(x) * std::cos(y),
                                   -std::cos(x) * std::sin(y),
                                   0.3 * std::sin(z), 1.0 / 1.4};
    };
    ViscousFixture fx(16, 0.05, prim);
    fx.gas.Tref = 1.0 / 1.4;
    fx.run();
    auto a = fx.dU.const_array();
    auto s = fx.S.const_array();
    Real work = 0.0;
    amr::forEachCell(fx.geom.domain(), [&](int i, int j, int k) {
        const Real rho = s(i, j, k, URHO);
        work += (s(i, j, k, UMX) / rho) * a(i, j, k, UMX) +
                (s(i, j, k, UMY) / rho) * a(i, j, k, UMY) +
                (s(i, j, k, UMZ) / rho) * a(i, j, k, UMZ);
    });
    EXPECT_LT(work, 0.0);
}

TEST(GasModel, SutherlandViscosityAndEos) {
    GasModel g;
    g.muRef = 1.7e-5;
    g.Tref = 273.0;
    g.Tsuth = 110.4 / 273.0;
    EXPECT_NEAR(g.viscosity(273.0), g.muRef, 1e-12);
    EXPECT_GT(g.viscosity(600.0), g.muRef); // increases with T
    EXPECT_DOUBLE_EQ(g.pressure(1.0, 0, 0, 0, 2.5), 1.0);
    EXPECT_DOUBLE_EQ(g.totalEnergy(1.0, 0, 0, 0, 1.0), 2.5);
    EXPECT_NEAR(g.soundSpeed(1.4, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(g.temperature(2.0, 4.0), 2.0, 1e-12);
    EXPECT_NEAR(g.cv() * (g.gamma - 1.0), g.Rgas, 1e-12);
    EXPECT_NEAR(g.cp() - g.cv(), g.Rgas, 1e-12);
}

} // namespace
} // namespace crocco::core
