#include "machine/ScalingSimulator.hpp"

#include <gtest/gtest.h>

namespace crocco::machine {
namespace {

using core::CodeVersion;

/// Property sweep across every Table I row x code version: structural
/// invariants of the synthesized paper-scale hierarchies.
struct Row {
    int nodes;
    double pts;
};
constexpr Row kTableOne[] = {{4, 1.64e8},   {16, 6.55e8},   {36, 1.47e9},
                             {64, 2.62e9},  {100, 4.10e9},  {256, 1.05e10},
                             {400, 1.64e10}, {1024, 4.19e10}};

class HierarchyProperty
    : public ::testing::TestWithParam<std::tuple<int, CodeVersion>> {
protected:
    ScalingCase scaled() const {
        const Row& r = kTableOne[std::get<0>(GetParam())];
        return {std::get<1>(GetParam()), r.nodes,
                static_cast<std::int64_t>(r.pts)};
    }
};

TEST_P(HierarchyProperty, StructureIsValid) {
    ScalingSimulator sim;
    const auto c = scaled();
    const auto h = sim.buildHierarchy(c);
    const int ranks = sim.ranksFor(c);

    // Level count matches the version.
    const int expectedLevels = ScalingSimulator::isAmrVersion(c.version) ? 3 : 1;
    ASSERT_EQ(static_cast<int>(h.levels.size()), expectedLevels);

    for (const auto& L : h.levels) {
        ASSERT_GT(L.ba.size(), 0);
        // Ownership is a valid rank for every box.
        for (int i = 0; i < L.ba.size(); ++i) {
            EXPECT_GE(L.dm[i], 0);
            EXPECT_LT(L.dm[i], ranks);
        }
        // Boxes are disjoint (spot-check via point counts vs minimal cover).
        EXPECT_LE(L.ba.numPts(), L.geom.domain().numPts());
        // Boxes lie inside the level domain.
        for (int i = 0; i < L.ba.size(); ++i)
            EXPECT_TRUE(L.geom.domain().contains(L.ba[i]));
    }

    if (expectedLevels == 3) {
        // The refinement bands are nested: every level-2 box, coarsened,
        // lands inside the level-1 coverage.
        for (const amr::Box& b : h.levels[2].ba.boxes()) {
            EXPECT_TRUE(h.levels[1].ba.intersects(b.coarsen(2)))
                << "level-2 box outside level-1 band";
        }
        // AMR active fraction in the paper's 89-94% reduction band
        // (with synthesis slack).
        const double frac = static_cast<double>(h.activePoints()) /
                            static_cast<double>(c.equivalentPoints);
        EXPECT_GT(frac, 0.04);
        EXPECT_LT(frac, 0.14);
    }

    // Iteration time is finite, positive, and dominated by real regions.
    const auto rt = sim.iterationTime(c);
    EXPECT_GT(rt.totalSerial(), 0.0);
    EXPECT_LT(rt.totalSerial(), 120.0);
    EXPECT_GT(rt.advance(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, HierarchyProperty,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(CodeVersion::V11, CodeVersion::V12,
                                         CodeVersion::V20, CodeVersion::V21)));

TEST(ScalingShapes, GpuStrongScalingHasInteriorOptimumCpuKeepsDropping) {
    // The headline qualitative result of Fig. 5 (left): GPU time per
    // iteration stops improving at moderate node counts (communication takes
    // over) while CPU time keeps dropping through 1024 nodes.
    ScalingSimulator sim;
    const std::int64_t pts = 1270000000;
    double bestGpu = 1e30, gpuAtMax = 0, cpuPrev = 1e30;
    int bestNode = 0;
    for (int nodes : {16, 32, 64, 128, 256, 512, 1024}) {
        const double tGpu = sim.iterationTime({CodeVersion::V20, nodes, pts}).totalSerial();
        if (tGpu < bestGpu) {
            bestGpu = tGpu;
            bestNode = nodes;
        }
        gpuAtMax = tGpu;
        const double tCpu = sim.iterationTime({CodeVersion::V11, nodes, pts}).totalSerial();
        EXPECT_LT(tCpu, cpuPrev) << "CPU must keep scaling at " << nodes;
        cpuPrev = tCpu;
    }
    // Optimum is interior (paper: ~128 nodes) and the 1024-node time is
    // measurably worse than the best.
    EXPECT_GE(bestNode, 32);
    EXPECT_LE(bestNode, 512);
    EXPECT_GT(gpuAtMax, 1.2 * bestGpu);
}

TEST(HierarchyMeta, GpuMemoryScalesWithPointsPerRank) {
    ScalingSimulator sim;
    // Weak scaling: points per GPU roughly constant, so memory per GPU
    // should stay in a narrow band across Table I.
    std::int64_t lo = INT64_MAX, hi = 0;
    for (const Row& r : kTableOne) {
        const auto b = sim.gpuBytesPerRank(
            {CodeVersion::V20, r.nodes, static_cast<std::int64_t>(r.pts)});
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    EXPECT_LT(static_cast<double>(hi) / lo, 3.0);
}

} // namespace
} // namespace crocco::machine
