#include "machine/NetworkModel.hpp"
#include "machine/ScalingSimulator.hpp"
#include "machine/SummitMachine.hpp"

#include "core/KernelProfiles.hpp"
#include "gpu/Arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace crocco::machine {
namespace {

using core::CodeVersion;

TEST(NetworkModel, ContentionGrowsWithNodes) {
    NetworkModel net;
    EXPECT_DOUBLE_EQ(net.contention(1), 1.0);
    EXPECT_GT(net.contention(64), net.contention(4));
    EXPECT_GT(net.contention(1024), net.contention(64));
    EXPECT_LT(net.contention(1024), 2.0); // mild, fat-tree-like
}

TEST(NetworkModel, PhaseTimeScalesWithMessagesAndBytes) {
    NetworkModel net;
    EXPECT_GT(net.p2pPhaseTime(100, 1 << 20, 16, false, 42),
              net.p2pPhaseTime(10, 1 << 20, 16, false, 42));
    EXPECT_GT(net.p2pPhaseTime(10, 1 << 24, 16, false, 42),
              net.p2pPhaseTime(10, 1 << 20, 16, false, 42));
    // GPU staging makes each message costlier at equal bandwidth share...
    EXPECT_GT(net.p2pPhaseTime(100, 1 << 10, 16, true, 6),
              net.p2pPhaseTime(100, 1 << 10, 16, false, 6));
    // ...but a GPU rank gets a larger slice of the NIC than one of 42
    // CPU ranks, so bulk transfers are faster per rank.
    EXPECT_LT(net.p2pPhaseTime(1, 1 << 24, 16, true, 6),
              net.p2pPhaseTime(1, 1 << 24, 16, false, 42));
}

TEST(NetworkModel, ReductionIsLogarithmic) {
    NetworkModel net;
    const double t64 = net.reductionTime(64, 16);
    const double t4096 = net.reductionTime(4096, 16);
    EXPECT_NEAR(t4096 / t64, 2.0, 0.01); // log2: 12 rounds vs 6
    EXPECT_EQ(net.reductionTime(1, 1), 0.0);
}

TEST(PhaseLoad, TracksBusiestRank) {
    PhaseLoad load(4);
    load.addMessage(0, 1, 100);
    load.addMessage(0, 2, 200);
    load.addMessage(3, 3, 999); // on-rank: ignored
    EXPECT_EQ(load.maxMessages(), 2);
    EXPECT_EQ(load.maxBytes(), 300); // rank 0 sends 300
    EXPECT_EQ(load.totalBytes(), 300);
}

TEST(SummitMachine, RankLayoutsMatchPaper) {
    SummitMachine m;
    EXPECT_EQ(m.ranksPerNode(true), 6);   // one rank per V100
    EXPECT_EQ(m.ranksPerNode(false), 42); // rank per usable P9 core
}

// ------------------------------------------------------- ScalingSimulator

ScalingSimulator makeSim() { return ScalingSimulator(); }

TEST(ScalingSimulator, HierarchyReproducesPaperActiveFraction) {
    // §V-C: "AMR demonstrates a 89-94% reduction in actual grid points
    // relative to the AMR-disabled solution."
    auto sim = makeSim();
    const ScalingCase c{CodeVersion::V20, 16, 655000000}; // Table I row 2
    const auto h = sim.buildHierarchy(c);
    ASSERT_EQ(h.finestLevel(), 2);
    const double frac = static_cast<double>(h.activePoints()) /
                        static_cast<double>(c.equivalentPoints);
    EXPECT_GT(frac, 0.05);
    EXPECT_LT(frac, 0.12); // 89-94% reduction band (with rounding slack)
}

TEST(ScalingSimulator, NonAmrVersionsHaveOneFullLevel) {
    auto sim = makeSim();
    const ScalingCase c{CodeVersion::V11, 16, 1270000000};
    const auto h = sim.buildHierarchy(c);
    ASSERT_EQ(h.finestLevel(), 0);
    // Domain rounding keeps the point count near the target.
    EXPECT_NEAR(static_cast<double>(h.activePoints()),
                static_cast<double>(c.equivalentPoints),
                0.3 * static_cast<double>(c.equivalentPoints));
}

TEST(ScalingSimulator, CpuDecompositionScalesBoxCountWithRanks) {
    auto sim = makeSim();
    const ScalingCase small{CodeVersion::V11, 16, 1270000000};
    const ScalingCase large{CodeVersion::V11, 256, 1270000000};
    const auto hs = sim.buildHierarchy(small);
    const auto hl = sim.buildHierarchy(large);
    // CPU runs need at least ~1 box per rank.
    EXPECT_GE(hl.levels[0].ba.size(), sim.ranksFor(large));
    EXPECT_GT(hl.levels[0].ba.size(), hs.levels[0].ba.size());
}

TEST(ScalingSimulator, GpuKernelsFasterThanCpuPerIteration) {
    // The heart of Fig. 5: at fixed problem and node count, v2.0's Advance
    // is far faster than v1.2's, while its communication share is larger.
    auto sim = makeSim();
    const std::int64_t pts = 1270000000;
    const auto cpu = sim.iterationTime({CodeVersion::V12, 64, pts});
    const auto gpu = sim.iterationTime({CodeVersion::V20, 64, pts});
    EXPECT_GT(cpu.advance() / gpu.advance(), 3.0);
    EXPECT_GT(gpu.fillPatch() / gpu.totalSerial(), cpu.fillPatch() / cpu.totalSerial());
}

TEST(ScalingSimulator, StrongScalingEndpointSpeedupsInPaperBand) {
    // §VI-B: GPU over CPU+AMR is ~44x at 16 nodes and ~6x at 1024; the
    // model must land in a generous band around those.
    auto sim = makeSim();
    const std::int64_t pts = 1270000000;
    const auto lo12 = sim.iterationTime({CodeVersion::V12, 16, pts});
    const auto lo20 = sim.iterationTime({CodeVersion::V20, 16, pts});
    const double sLow = lo12.totalSerial() / lo20.totalSerial();
    EXPECT_GT(sLow, 15.0);
    EXPECT_LT(sLow, 100.0);
    const auto hi12 = sim.iterationTime({CodeVersion::V12, 1024, pts});
    const auto hi20 = sim.iterationTime({CodeVersion::V20, 1024, pts});
    const double sHigh = hi12.totalSerial() / hi20.totalSerial();
    EXPECT_GT(sHigh, 2.0);
    EXPECT_LT(sHigh, sLow); // speedup shrinks with node count
}

TEST(ScalingSimulator, WeakScalingEfficiencyDegradesForGpu) {
    // §VI-B: v2.0 weak efficiency ~54% at 400 nodes; v2.1 (trilinear)
    // recovers to ~70%. CPU versions stay much flatter.
    auto sim = makeSim();
    auto eff = [&](CodeVersion v, int nodes, std::int64_t pts) {
        const auto base = sim.iterationTime({v, 4, 164000000});
        const auto at = sim.iterationTime({v, nodes, pts});
        return base.totalSerial() / at.totalSerial();
    };
    const double e20 = eff(CodeVersion::V20, 400, 16400000000ll);
    const double e21 = eff(CodeVersion::V21, 400, 16400000000ll);
    EXPECT_LT(e20, 0.8);
    EXPECT_GT(e20, 0.3);
    EXPECT_GT(e21, e20); // removing the coordinate gather helps
}

TEST(ScalingSimulator, FillPatchShareGrowsWithNodes) {
    // Fig. 6: FillPatch's share of v2.1 runtime grows with node count while
    // Advance stays flat per iteration (weak scaling).
    auto sim = makeSim();
    const auto small = sim.iterationTime({CodeVersion::V21, 4, 164000000});
    const auto large = sim.iterationTime({CodeVersion::V21, 400, 16400000000ll});
    EXPECT_GT(large.fillPatch() / large.totalSerial(),
              small.fillPatch() / small.totalSerial());
    // Advance stays roughly steady (box-count quantization adds some noise,
    // as the paper's own low-node-count imbalance does).
    EXPECT_NEAR(large.advance(), small.advance(), 0.8 * small.advance());
}

TEST(ScalingSimulator, GpuMemoryFitsTableOneCases) {
    // §V-C: weak scaling sizes were chosen to maximize GPU utilization
    // without exceeding the 16 GB V100 memory.
    auto sim = makeSim();
    const gpu::Arena v100 = gpu::Arena::v100();
    const ScalingCase c{CodeVersion::V20, 4, 164000000};
    EXPECT_LT(sim.gpuBytesPerRank(c), v100.capacity());
    // And the strong-scaling problem without AMR does NOT fit at low node
    // counts — the paper's reason for omitting GPU runs with AMR disabled
    // (Sec. V-C: "the non-AMR cases will not fit into the GPU memory ...
    // if the number of nodes is not adjusted").
    const std::int64_t strongPts = 1270000000;
    const std::int64_t fullBytesPerGpu =
        strongPts / 24 * 61 * static_cast<std::int64_t>(sizeof(double));
    EXPECT_GT(fullBytesPerGpu, v100.capacity());
}

TEST(ScalingSimulator, RegionTimesArePositiveAndComplete) {
    auto sim = makeSim();
    const auto rt = sim.iterationTime({CodeVersion::V20, 16, 655000000});
    EXPECT_GT(rt.advance(), 0.0);
    EXPECT_GT(rt.fillBoundary, 0.0);
    EXPECT_GT(rt.parallelCopy, 0.0);
    EXPECT_GT(rt.parallelCopyInterp, 0.0); // curvilinear interpolator
    EXPECT_GT(rt.computeDt, 0.0);
    EXPECT_GT(rt.averageDown, 0.0);
    EXPECT_GT(rt.regrid, 0.0);
    EXPECT_GT(rt.commPosted, 0.0); // GPU runs pay the async-posting cost
    EXPECT_NEAR(rt.totalSerial(),
                rt.commPosted + rt.fillPatch() + rt.advance() + rt.update +
                    rt.computeDt + rt.averageDown + rt.regrid,
                1e-12);
    // v2.1 must lack the coordinate gather.
    const auto rt21 = sim.iterationTime({CodeVersion::V21, 16, 655000000});
    EXPECT_EQ(rt21.parallelCopyInterp, 0.0);
}

TEST(ScalingSimulator, OverlappedScheduleNeverSlowerAndBounded) {
    // The overlapped schedule hides min(commWait, advanceInterior) behind
    // the interior pass and nothing else: totalOverlapped is bounded below
    // by the serial total minus the hidden time (exactly equal, in fact)
    // and above by the serial total.
    auto sim = makeSim();
    for (int nodes : {4, 16, 64, 400, 1024, 4096}) {
        const auto rt = sim.iterationTime(
            {CodeVersion::V20, nodes, 41000000ll * nodes});
        const double hidden = std::min(rt.commWait(), rt.advanceInterior);
        EXPECT_LE(rt.totalOverlapped(), rt.totalSerial());
        EXPECT_NEAR(rt.totalOverlapped(), rt.totalSerial() - hidden,
                    1e-12 * rt.totalSerial());
        EXPECT_GE(rt.overlapEfficiency(), 0.0);
        EXPECT_LE(rt.overlapEfficiency(), 1.0);
        EXPECT_NEAR(rt.overlapEfficiency() * rt.commWait(), hidden,
                    1e-12 * rt.totalSerial());
    }
}

TEST(ScalingSimulator, OverlapEfficiencyDegradesWhenCommDominates) {
    // Weak scaling pushes commWait past the interior compute, so the
    // fraction of communication the overlap can hide must fall with node
    // count (the overlap model's analog of Fig. 5's efficiency droop).
    auto sim = makeSim();
    const auto small = sim.iterationTime({CodeVersion::V20, 4, 164000000});
    const auto large =
        sim.iterationTime({CodeVersion::V20, 1024, 41984000000ll});
    EXPECT_LT(large.overlapEfficiency(), small.overlapEfficiency());
}

} // namespace
} // namespace crocco::machine
