#include "machine/FailureModel.hpp"
#include "machine/ScalingSimulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::machine {
namespace {

TEST(FailureModel, SystemMtbfScalesInverselyWithNodes) {
    FailureModel fm;
    const double one = fm.systemMtbf(1);
    EXPECT_DOUBLE_EQ(one, fm.nodeMtbfHours * 3600.0);
    EXPECT_DOUBLE_EQ(fm.systemMtbf(1024), one / 1024.0);
    EXPECT_GT(fm.systemMtbf(4), fm.systemMtbf(256));
    // At the paper's 1024-node scale a multi-year node MTBF compounds into
    // a system interrupt within a couple of days.
    EXPECT_LT(fm.systemMtbf(1024), 3.0 * 24 * 3600);
}

TEST(FailureModel, CheckpointWriteTimeRespectsBothBandwidthCaps) {
    FailureModel fm;
    const std::int64_t bytes = 1'000'000'000'000; // 1 TB dump
    // Small runs are injection-limited: doubling nodes halves the time.
    const double t4 = fm.checkpointWriteTime(bytes, 4);
    const double t8 = fm.checkpointWriteTime(bytes, 8);
    EXPECT_NEAR(t4 / t8, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(t4, static_cast<double>(bytes) / (4 * fm.fsPerNodeBandwidth));
    // Big runs hit the aggregate GPFS ceiling and stop improving.
    const double tBig = fm.checkpointWriteTime(bytes, 4096);
    EXPECT_DOUBLE_EQ(tBig, static_cast<double>(bytes) / fm.fsAggregateBandwidth);
    EXPECT_DOUBLE_EQ(fm.checkpointWriteTime(bytes, 8192), tBig);
}

TEST(FailureModel, DalyIntervalMatchesLeadingOrderForSmallDelta) {
    // For delta << M Daly's optimum reduces to sqrt(2 delta M).
    const double M = 1.0e6, delta = 1.0;
    EXPECT_NEAR(FailureModel::dalyInterval(delta, M), std::sqrt(2 * delta * M),
                0.02 * std::sqrt(2 * delta * M));
    // Degenerate regime delta >= 2M: checkpoint once per MTBF.
    EXPECT_DOUBLE_EQ(FailureModel::dalyInterval(300.0, 100.0), 100.0);
    // Interval shrinks as the machine gets less reliable.
    EXPECT_GT(FailureModel::dalyInterval(10.0, 1e6),
              FailureModel::dalyInterval(10.0, 1e4));
}

TEST(FailureModel, WasteFractionGrowsWithScaleAndIsClamped) {
    FailureModel fm;
    const double delta = 30.0;
    const double small = fm.wasteFraction(delta, fm.systemMtbf(4));
    const double large = fm.wasteFraction(delta, fm.systemMtbf(1024));
    EXPECT_GT(small, 0.0);
    EXPECT_GT(large, small);
    EXPECT_LT(large, 0.10); // modest at Summit-like reliability
    // A pathological machine (MTBF shorter than the dump) clamps at 0.99.
    EXPECT_DOUBLE_EQ(fm.wasteFraction(1000.0, 10.0), 0.99);
}

TEST(ScalingSimulator, ResilienceStatsAreConsistent) {
    ScalingSimulator sim;
    ScalingCase c;
    c.version = core::CodeVersion::V20;
    c.nodes = 1024;
    c.equivalentPoints = 1'000'000'000;
    const ResilienceStats rs = sim.resilienceStats(c);
    EXPECT_GT(rs.checkpointBytes, 0);
    // Dump size is the hierarchy's active conserved state.
    EXPECT_EQ(rs.checkpointBytes,
              sim.buildHierarchy(c).activePoints() *
                  static_cast<std::int64_t>(core::NCONS * sizeof(double)));
    const FailureModel& fm = sim.params().failure;
    EXPECT_DOUBLE_EQ(rs.writeTime,
                     fm.checkpointWriteTime(rs.checkpointBytes, c.nodes));
    EXPECT_DOUBLE_EQ(rs.systemMtbf, fm.systemMtbf(c.nodes));
    EXPECT_DOUBLE_EQ(rs.optimalInterval,
                     FailureModel::dalyInterval(rs.writeTime, rs.systemMtbf));
    EXPECT_GT(rs.overheadFraction, 0.0);
    EXPECT_LT(rs.overheadFraction, 0.10);
}

TEST(ScalingSimulator, IterationTimeChargesResilienceOnlyWhenEnabled) {
    ScalingCase c;
    c.version = core::CodeVersion::V20;
    c.nodes = 256;
    c.equivalentPoints = 500'000'000;

    ScalingSimulator off;
    const RegionTimes base = off.iterationTime(c);
    EXPECT_EQ(base.resilience, 0.0);

    ScalingSimulator::Params p;
    p.modelFailures = true;
    ScalingSimulator on(p);
    const RegionTimes rt = on.iterationTime(c);
    EXPECT_GT(rt.resilience, 0.0);
    // The charge is calibrated so resilience/total() is the waste fraction.
    const double frac = on.resilienceStats(c).overheadFraction;
    EXPECT_NEAR(rt.resilience / rt.totalSerial(), frac, 1e-12);
    // All other regions are untouched by the failure model.
    EXPECT_NEAR(rt.totalSerial() - rt.resilience, base.totalSerial(),
                1e-12 * base.totalSerial());
}

TEST(ScalingSimulator, ResilienceOverheadGrowsWithNodeCount) {
    ScalingSimulator::Params p;
    p.modelFailures = true;
    ScalingSimulator sim(p);
    double prev = 0.0;
    for (int nodes : {16, 128, 1024}) {
        ScalingCase c;
        c.version = core::CodeVersion::V20;
        c.nodes = nodes;
        // Weak scaling: constant work per node, as in the paper's Fig. 5.
        c.equivalentPoints = static_cast<std::int64_t>(nodes) * 40'000'000;
        const double frac = sim.resilienceStats(c).overheadFraction;
        EXPECT_GT(frac, prev);
        prev = frac;
    }
}

} // namespace
} // namespace crocco::machine
