#include "machine/FailureModel.hpp"
#include "machine/ScalingSimulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::machine {
namespace {

TEST(FailureModel, SystemMtbfScalesInverselyWithNodes) {
    FailureModel fm;
    const double one = fm.systemMtbf(1);
    EXPECT_DOUBLE_EQ(one, fm.nodeMtbfHours * 3600.0);
    EXPECT_DOUBLE_EQ(fm.systemMtbf(1024), one / 1024.0);
    EXPECT_GT(fm.systemMtbf(4), fm.systemMtbf(256));
    // At the paper's 1024-node scale a multi-year node MTBF compounds into
    // a system interrupt within a couple of days.
    EXPECT_LT(fm.systemMtbf(1024), 3.0 * 24 * 3600);
}

TEST(FailureModel, CheckpointWriteTimeRespectsBothBandwidthCaps) {
    FailureModel fm;
    const std::int64_t bytes = 1'000'000'000'000; // 1 TB dump
    // Small runs are injection-limited: doubling nodes halves the time.
    const double t4 = fm.checkpointWriteTime(bytes, 4);
    const double t8 = fm.checkpointWriteTime(bytes, 8);
    EXPECT_NEAR(t4 / t8, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(t4, static_cast<double>(bytes) / (4 * fm.fsPerNodeBandwidth));
    // Big runs hit the aggregate GPFS ceiling and stop improving.
    const double tBig = fm.checkpointWriteTime(bytes, 4096);
    EXPECT_DOUBLE_EQ(tBig, static_cast<double>(bytes) / fm.fsAggregateBandwidth);
    EXPECT_DOUBLE_EQ(fm.checkpointWriteTime(bytes, 8192), tBig);
}

TEST(FailureModel, DalyIntervalMatchesLeadingOrderForSmallDelta) {
    // For delta << M Daly's optimum reduces to sqrt(2 delta M).
    const double M = 1.0e6, delta = 1.0;
    EXPECT_NEAR(FailureModel::dalyInterval(delta, M), std::sqrt(2 * delta * M),
                0.02 * std::sqrt(2 * delta * M));
    // Degenerate regime delta >= 2M: checkpoint once per MTBF.
    EXPECT_DOUBLE_EQ(FailureModel::dalyInterval(300.0, 100.0), 100.0);
    // Interval shrinks as the machine gets less reliable.
    EXPECT_GT(FailureModel::dalyInterval(10.0, 1e6),
              FailureModel::dalyInterval(10.0, 1e4));
}

TEST(FailureModel, WasteFractionGrowsWithScaleAndIsClamped) {
    FailureModel fm;
    const double delta = 30.0;
    const double small = fm.wasteFraction(delta, fm.systemMtbf(4));
    const double large = fm.wasteFraction(delta, fm.systemMtbf(1024));
    EXPECT_GT(small, 0.0);
    EXPECT_GT(large, small);
    EXPECT_LT(large, 0.10); // modest at Summit-like reliability
    // A pathological machine (MTBF shorter than the dump) clamps at 0.99.
    EXPECT_DOUBLE_EQ(fm.wasteFraction(1000.0, 10.0), 0.99);
}

TEST(ScalingSimulator, ResilienceStatsAreConsistent) {
    ScalingSimulator sim;
    ScalingCase c;
    c.version = core::CodeVersion::V20;
    c.nodes = 1024;
    c.equivalentPoints = 1'000'000'000;
    const ResilienceStats rs = sim.resilienceStats(c);
    EXPECT_GT(rs.checkpointBytes, 0);
    // Dump size is the hierarchy's active conserved state.
    EXPECT_EQ(rs.checkpointBytes,
              sim.buildHierarchy(c).activePoints() *
                  static_cast<std::int64_t>(core::NCONS * sizeof(double)));
    const FailureModel& fm = sim.params().failure;
    EXPECT_DOUBLE_EQ(rs.writeTime,
                     fm.checkpointWriteTime(rs.checkpointBytes, c.nodes));
    EXPECT_DOUBLE_EQ(rs.systemMtbf, fm.systemMtbf(c.nodes));
    EXPECT_DOUBLE_EQ(rs.optimalInterval,
                     FailureModel::dalyInterval(rs.writeTime, rs.systemMtbf));
    EXPECT_GT(rs.overheadFraction, 0.0);
    EXPECT_LT(rs.overheadFraction, 0.10);
}

TEST(ScalingSimulator, IterationTimeChargesResilienceOnlyWhenEnabled) {
    ScalingCase c;
    c.version = core::CodeVersion::V20;
    c.nodes = 256;
    c.equivalentPoints = 500'000'000;

    ScalingSimulator off;
    const RegionTimes base = off.iterationTime(c);
    EXPECT_EQ(base.resilience, 0.0);

    ScalingSimulator::Params p;
    p.modelFailures = true;
    ScalingSimulator on(p);
    const RegionTimes rt = on.iterationTime(c);
    EXPECT_GT(rt.resilience, 0.0);
    // The charge is calibrated so resilience/total() is the waste fraction.
    const double frac = on.resilienceStats(c).overheadFraction;
    EXPECT_NEAR(rt.resilience / rt.totalSerial(), frac, 1e-12);
    // All other regions are untouched by the failure model.
    EXPECT_NEAR(rt.totalSerial() - rt.resilience, base.totalSerial(),
                1e-12 * base.totalSerial());
}

TEST(FailureModel, BuddyTimesScaleWithTheInterconnectNotTheFilesystem) {
    FailureModel fm;
    const std::int64_t bytes = 1'000'000'000'000; // 1 TB of state
    // Buddy mirroring is per-node concurrent: doubling nodes halves the
    // time at every scale — there is no aggregate ceiling to hit.
    EXPECT_NEAR(fm.buddyCheckpointTime(bytes, 2048) /
                    fm.buddyCheckpointTime(bytes, 4096),
                2.0, 1e-9);
    EXPECT_DOUBLE_EQ(fm.buddyCheckpointTime(bytes, 64),
                     (static_cast<double>(bytes) / 64) / fm.interconnectBandwidth);
    // Restore: disk pays the relaunch penalty + a filesystem read; buddy
    // pays detection + one node's share over the interconnect.
    EXPECT_DOUBLE_EQ(fm.diskRestoreTime(bytes, 4096),
                     fm.restartPenalty +
                         fm.checkpointWriteTime(bytes, 4096));
    EXPECT_DOUBLE_EQ(fm.buddyRestoreTime(bytes, 4096),
                     fm.detectionLatency +
                         (static_cast<double>(bytes) / 4096) /
                             fm.interconnectBandwidth);
    EXPECT_LT(fm.buddyRestoreTime(bytes, 4096), fm.diskRestoreTime(bytes, 4096));
    // The 2-arg waste fraction is the 3-arg one priced at the disk restart
    // penalty.
    EXPECT_DOUBLE_EQ(fm.wasteFraction(30.0, 1e5),
                     fm.wasteFraction(30.0, 1e5, fm.restartPenalty));
    // A cheaper restore means less waste, all else equal.
    EXPECT_LT(fm.wasteFraction(30.0, 1e5, 10.0),
              fm.wasteFraction(30.0, 1e5, 500.0));
}

TEST(ScalingSimulator, BuddyRecoveryBeatsDiskAtScale) {
    // The acceptance gate of the recovery-sweep: at the paper's largest
    // configuration (4096 nodes, weak scaling) in-memory buddy recovery
    // must waste a smaller wall-clock fraction than disk restart.
    ScalingSimulator sim;
    double prevGap = 0.0;
    for (int nodes : {64, 1024, 4096}) {
        ScalingCase c;
        c.version = core::CodeVersion::V20;
        c.nodes = nodes;
        c.equivalentPoints = static_cast<std::int64_t>(nodes) * 40'000'000;
        const RecoveryComparison rc = sim.recoveryComparison(c);
        EXPECT_EQ(rc.disk.checkpointBytes, rc.buddy.checkpointBytes);
        EXPECT_DOUBLE_EQ(rc.disk.systemMtbf, rc.buddy.systemMtbf);
        EXPECT_GT(rc.buddy.overheadFraction, 0.0);
        EXPECT_LT(rc.buddy.overheadFraction, rc.disk.overheadFraction)
            << nodes << " nodes";
        EXPECT_LT(rc.buddyRestoreTime, rc.diskRestoreTime) << nodes << " nodes";
        // The buddy advantage widens as the filesystem ceiling bites.
        const double gap = rc.disk.overheadFraction - rc.buddy.overheadFraction;
        EXPECT_GT(gap, prevGap) << nodes << " nodes";
        prevGap = gap;
    }
}

TEST(ScalingSimulator, CommFaultRateChargesRetransmitSurcharge) {
    ScalingCase c;
    c.version = core::CodeVersion::V20;
    c.nodes = 256;
    c.equivalentPoints = 500'000'000;

    ScalingSimulator off;
    const RegionTimes base = off.iterationTime(c);
    EXPECT_EQ(base.retransmit, 0.0);
    EXPECT_DOUBLE_EQ(off.recoveryComparison(c).retransmitOverheadFraction, 0.0);

    ScalingSimulator::Params p;
    p.modelCommFaults = true;
    p.commFaultRate = 0.01;
    ScalingSimulator on(p);
    const RegionTimes rt = on.iterationTime(c);
    // 1% of messages re-sent: the comm regions (wait + posting) pay 1%.
    EXPECT_NEAR(rt.retransmit, 0.01 * (rt.commWait() + rt.commPosted), 1e-15);
    EXPECT_NEAR(rt.totalSerial() - rt.retransmit, base.totalSerial(),
                1e-12 * base.totalSerial());
    const RecoveryComparison rc = on.recoveryComparison(c);
    EXPECT_GT(rc.retransmitOverheadFraction, 0.0);
    EXPECT_LT(rc.retransmitOverheadFraction, 0.011); // bounded by the rate
}

TEST(ScalingSimulator, ResilienceOverheadGrowsWithNodeCount) {
    ScalingSimulator::Params p;
    p.modelFailures = true;
    ScalingSimulator sim(p);
    double prev = 0.0;
    for (int nodes : {16, 128, 1024}) {
        ScalingCase c;
        c.version = core::CodeVersion::V20;
        c.nodes = nodes;
        // Weak scaling: constant work per node, as in the paper's Fig. 5.
        c.equivalentPoints = static_cast<std::int64_t>(nodes) * 40'000'000;
        const double frac = sim.resilienceStats(c).overheadFraction;
        EXPECT_GT(frac, prev);
        prev = frac;
    }
}

TEST(FailureModel, SdcMeanTimeBetweenScalesWithResidentBytes) {
    FailureModel fm;
    const std::int64_t gb = 1'000'000'000;
    // One GB at the default 1e-5 upsets/GB-hour: 1e5 hours between upsets.
    EXPECT_NEAR(fm.sdcMeanTimeBetween(gb), 1.0e5 * 3600.0, 1.0);
    // Twice the resident state, half the time between silent upsets.
    EXPECT_NEAR(fm.sdcMeanTimeBetween(2 * gb) * 2.0, fm.sdcMeanTimeBetween(gb),
                1.0);
    // No resident state (or a zero rate) means upsets never happen.
    EXPECT_TRUE(std::isinf(fm.sdcMeanTimeBetween(0)));
    FailureModel immune;
    immune.sdcRatePerGBHour = 0.0;
    EXPECT_TRUE(std::isinf(immune.sdcMeanTimeBetween(gb)));
    EXPECT_DOUBLE_EQ(immune.sdcWasteFraction(gb, 100.0, 10.0), 0.0);
}

TEST(FailureModel, SdcScanAndDetectionOverheadFollowTheCadence) {
    FailureModel fm;
    const std::int64_t bytes = 4'000'000'000'000; // 4 TB across the machine
    // The CRC sweep is per-node concurrent, like buddy mirroring.
    EXPECT_NEAR(fm.sdcScanTime(bytes, 2048) / fm.sdcScanTime(bytes, 4096), 2.0,
                1e-9);
    EXPECT_DOUBLE_EQ(fm.sdcScanTime(bytes, 64),
                     (static_cast<double>(bytes) / 64) / fm.sdcScanBandwidth);
    // Doubling the verify interval roughly halves the scan overhead, and
    // the fraction is always in (0, 1).
    const double stepTime = 1.0;
    const double o1 = fm.sdcDetectionOverhead(bytes, 4096, stepTime, 1);
    const double o10 = fm.sdcDetectionOverhead(bytes, 4096, stepTime, 10);
    EXPECT_GT(o1, 0.0);
    EXPECT_LT(o1, 1.0);
    EXPECT_GT(o1, o10);
    EXPECT_NEAR(o1 / o10, 10.0, 1.0); // scan << window: near-linear
    // Longer detection latency (a sparser verify cadence) wastes more work
    // per silent upset.
    EXPECT_LT(fm.sdcWasteFraction(bytes, 10.0, 5.0),
              fm.sdcWasteFraction(bytes, 1000.0, 5.0));
}

TEST(ScalingSimulator, SdcGuardCrossesOverToWinningAtScale) {
    // The tentpole economics: the guard's scan overhead is roughly flat in
    // node count (per-node concurrent sweep of per-node state), while the
    // unguarded waste grows with total resident bytes — a silent upset
    // rides to the next checkpoint validation and pays a disk restore plus
    // half a Daly cycle of recompute. At desktop scale the upset rate is
    // so low that running unguarded is cheaper; at the paper's 4096-node
    // weak-scaled configuration the guard must win. The acceptance gate:
    // modeled detection overhead stays under 5% at the default cadence
    // (resilience.sdc_interval = 10) at every tested node count.
    ScalingSimulator sim;
    double prevUnguarded = 0.0;
    for (int nodes : {64, 1024, 4096}) {
        ScalingCase c;
        c.version = core::CodeVersion::V20;
        c.nodes = nodes;
        c.equivalentPoints = static_cast<std::int64_t>(nodes) * 40'000'000;
        const SdcComparison sc = sim.sdcComparison(c, 10);
        EXPECT_GT(sc.residentBytes, 0) << nodes << " nodes";
        EXPECT_GT(sc.upsetMtbf, 0.0);
        EXPECT_GT(sc.scanTime, 0.0);
        EXPECT_GT(sc.detectionOverheadFraction, 0.0);
        EXPECT_LT(sc.detectionOverheadFraction, 0.05) << nodes << " nodes";
        // Unguarded waste compounds with scale (more resident GB, shorter
        // upset MTBF, pricier disk restores)...
        EXPECT_GT(sc.unguardedWasteFraction, prevUnguarded) << nodes << " nodes";
        prevUnguarded = sc.unguardedWasteFraction;
        // ...until at the paper's largest configuration the guard wins.
        if (nodes == 4096)
            EXPECT_LT(sc.guardedWasteFraction, sc.unguardedWasteFraction);
    }
    // A denser cadence detects sooner but scans more often.
    ScalingCase c;
    c.version = core::CodeVersion::V20;
    c.nodes = 4096;
    c.equivalentPoints = 4096ll * 40'000'000;
    EXPECT_GT(sim.sdcComparison(c, 1).detectionOverheadFraction,
              sim.sdcComparison(c, 10).detectionOverheadFraction);
}

} // namespace
} // namespace crocco::machine
