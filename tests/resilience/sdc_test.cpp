// Unit coverage of the SDC subsystem (docs/resilience.md §6): the unified
// fault RNG, the seeded bit-flip injector, the FabGuard stamp/verify/repair
// cycle, the allocation canaries, and the recovery-ladder policy table.
#include "resilience/FabGuard.hpp"

#include "gpu/Arena.hpp"
#include "parallel/CommFaults.hpp"
#include "resilience/FaultInjector.hpp"
#include "resilience/FaultRng.hpp"
#include "resilience/RecoveryLadder.hpp"
#include "resilience/SdcInjector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace crocco::resilience {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::IntVect;
using amr::MultiFab;

std::vector<MultiFab> smallHierarchy(int ncomp = 2, int nghost = 1) {
    BoxArray ba({Box(IntVect::zero(), IntVect{7, 7, 7}),
                 Box(IntVect{8, 0, 0}, IntVect{15, 7, 7})});
    DistributionMapping dm(std::vector<int>{0, 0}, 1);
    std::vector<MultiFab> U;
    U.emplace_back(ba, dm, ncomp, nghost, nullptr);
    U[0].setVal(1.5);
    return U;
}

// ------------------------------------------------------------- FaultRng

TEST(FaultRng, SubstreamSeedsAreDeterministicAndDistinct) {
    const FaultRng rng(2026);
    EXPECT_EQ(rng.seedFor(FaultRng::kSdcStream),
              rng.seedFor(FaultRng::kSdcStream));
    // The three injector streams must never collide: enabling one injector
    // must not shift another's decision sequence.
    std::set<std::uint64_t> seeds{rng.seedFor(FaultRng::kCellStream),
                                  rng.seedFor(FaultRng::kCommStream),
                                  rng.seedFor(FaultRng::kSdcStream)};
    EXPECT_EQ(seeds.size(), 3u);
}

TEST(FaultRng, DifferentMastersGiveDifferentSubstreams) {
    EXPECT_NE(FaultRng(1).seedFor(FaultRng::kSdcStream),
              FaultRng(2).seedFor(FaultRng::kSdcStream));
    // Stable across processes/platforms: the derivation is pure arithmetic
    // over (master, name), so a recorded campaign replays exactly.
    EXPECT_EQ(FaultRng::substreamSeed(2026, FaultRng::kCommStream),
              FaultRng(2026).seedFor(FaultRng::kCommStream));
}

TEST(FaultRng, InjectorsAcceptTheUnifiedRng) {
    // The substream constructors mirror the legacy seeded constructors, so
    // the PR 6 soak (legacy seeds) and a unified campaign coexist.
    const FaultRng rng(7);
    FaultInjector cell(rng);
    parallel::CommFaults comm(rng);
    SdcInjector sdc(rng);
    EXPECT_EQ(cell.faultsFired(), 0);
    EXPECT_EQ(comm.stats().fired(), 0);
    EXPECT_EQ(sdc.stats().fired(), 0);
}

// ---------------------------------------------------------- SdcInjector

TEST(SdcInjector, DisabledConsumesNoRandomnessAndNeverFires) {
    auto U = smallHierarchy();
    SdcInjector inj(2026);
    inj.setColdRate(1.0); // would fire every fab if enabled
    inj.armColdFlip(0, 0, 0);
    for (int s = 0; s < 4; ++s) EXPECT_FALSE(inj.corruptCold(s, U, 0));
    EXPECT_EQ(inj.stats().decisions, 0);
    EXPECT_EQ(inj.stats().fired(), 0);
    EXPECT_DOUBLE_EQ(U[0].const_array(0)(0, 0, 0, 0), 1.5);
}

TEST(SdcInjector, ArmedColdFlipFiresOnceInTheValidRegion) {
    auto U = smallHierarchy();
    SdcInjector inj(2026);
    inj.setEnabled(true);
    inj.armColdFlip(3, 0, 1);
    EXPECT_FALSE(inj.corruptCold(2, U, 0));
    EXPECT_TRUE(inj.corruptCold(3, U, 0));
    EXPECT_FALSE(inj.corruptCold(3, U, 0)); // one-shot: spent
    EXPECT_EQ(inj.stats().coldFlips, 1);

    // Exactly one valid-region value changed, and a mantissa flip keeps it
    // finite (invisible to the NaN/Inf health checks — that is the point).
    int changed = 0;
    for (int f = 0; f < U[0].numFabs(); ++f) {
        auto a = U[0].const_array(f);
        amr::forEachCell(U[0].validBox(f), [&](int i, int j, int k) {
            for (int n = 0; n < 2; ++n)
                if (a(i, j, k, n) != 1.5) {
                    ++changed;
                    EXPECT_TRUE(std::isfinite(a(i, j, k, n)));
                }
        });
    }
    EXPECT_EQ(changed, 1);
}

TEST(SdcInjector, GhostFlipLeavesTheValidRegionUntouched) {
    auto U = smallHierarchy();
    SdcInjector inj(2026);
    inj.setEnabled(true);
    inj.armGhostFlip(1, 0, 0);
    EXPECT_TRUE(inj.corruptCold(1, U, 0));
    EXPECT_EQ(inj.stats().ghostFlips, 1);
    for (int f = 0; f < U[0].numFabs(); ++f) {
        auto a = U[0].const_array(f);
        amr::forEachCell(U[0].validBox(f), [&](int i, int j, int k) {
            for (int n = 0; n < 2; ++n) EXPECT_EQ(a(i, j, k, n), 1.5);
        });
    }
}

TEST(SdcInjector, ArmedStageFlipTargetsTheStageAndFab) {
    auto U = smallHierarchy();
    SdcInjector inj(2026);
    inj.setEnabled(true);
    inj.armStageFlip(5, 1, 0, 0);
    EXPECT_FALSE(inj.corruptStage(5, 0, 0, U[0])); // wrong stage
    EXPECT_FALSE(inj.corruptStage(4, 1, 0, U[0])); // wrong step
    EXPECT_TRUE(inj.corruptStage(5, 1, 0, U[0]));
    EXPECT_FALSE(inj.corruptStage(5, 1, 0, U[0])); // spent
    EXPECT_EQ(inj.stats().stageFlips, 1);
}

TEST(SdcInjector, ColdRateIsSeededAndDeterministic) {
    auto U1 = smallHierarchy();
    auto U2 = smallHierarchy();
    SdcInjector a(42), b(42);
    a.setEnabled(true);
    b.setEnabled(true);
    a.setColdRate(0.5);
    b.setColdRate(0.5);
    for (int s = 0; s < 16; ++s) EXPECT_EQ(a.corruptCold(s, U1, 0), b.corruptCold(s, U2, 0));
    EXPECT_EQ(a.stats().decisions, b.stats().decisions);
    EXPECT_GT(a.stats().decisions, 0);
    EXPECT_EQ(a.stats().coldFlips, b.stats().coldFlips);
}

// ------------------------------------------------------------- FabGuard

TEST(FabGuard, StampThenVerifyIsCleanUntilAFlipLands) {
    auto U = smallHierarchy();
    FabGuard guard;
    EXPECT_FALSE(guard.stamped());
    guard.stamp(U, 0);
    EXPECT_TRUE(guard.stamped());
    EXPECT_TRUE(guard.layoutMatches(U, 0));
    EXPECT_TRUE(guard.digestClean(U, 0));
    EXPECT_TRUE(guard.verify(U, 0).empty());
    EXPECT_GT(guard.guardedBytes(), 0);

    SdcInjector inj(2026);
    inj.setEnabled(true);
    inj.armColdFlip(0, 0, 1);
    inj.corruptCold(0, U, 0);

    const auto findings = guard.verify(U, 0);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].level, 0);
    EXPECT_EQ(findings[0].fab, 1);
    EXPECT_EQ(guard.stats().crcMismatches, 1);
}

TEST(FabGuard, RestoreFabRepairsBitwiseFromTheRetainedCopy) {
    auto U = smallHierarchy();
    FabGuard guard;
    guard.stamp(U, 0);

    SdcInjector inj(2026);
    inj.setEnabled(true);
    inj.armColdFlip(0, 0, 0);
    inj.corruptCold(0, U, 0);
    ASSERT_FALSE(guard.verify(U, 0).empty());

    EXPECT_TRUE(guard.restoreFab(U, 0, 0));
    EXPECT_TRUE(guard.verify(U, 0).empty());
    EXPECT_EQ(guard.stats().fabRestores, 1);
    auto a = U[0].const_array(0);
    amr::forEachCell(U[0].validBox(0), [&](int i, int j, int k) {
        for (int n = 0; n < 2; ++n) EXPECT_EQ(a(i, j, k, n), 1.5);
    });
}

TEST(FabGuard, CorruptRetainedCopyRefusesToRestore) {
    // The restore source is CRC-checked before any byte of it overwrites
    // live state: a double fault escalates the ladder instead of silently
    // writing corruption back.
    auto U = smallHierarchy();
    FabGuard guard;
    guard.stamp(U, 0);
    guard.corruptRetained(0, 1);
    U[0].fab(1)(U[0].validBox(1).smallEnd(), 0) = -7.0; // live state corrupt too
    EXPECT_FALSE(guard.restoreFab(U, 0, 1));
    EXPECT_EQ(guard.stats().fabRestores, 0);
}

TEST(FabGuard, DigestScreenCatchesAdditiveCorruption) {
    auto U = smallHierarchy();
    FabGuard guard;
    guard.stamp(U, 0);
    // A large additive hit definitely moves the conserved sum; the digest
    // screen (cheap) flags the level before the CRC scan localizes it.
    U[0].fab(0)(U[0].validBox(0).smallEnd(), 0) += 1024.0;
    EXPECT_FALSE(guard.digestClean(U, 0));
    EXPECT_GE(guard.stats().digestMismatches, 1);
}

TEST(FabGuard, LayoutChangeInvalidatesStamps) {
    auto U = smallHierarchy();
    FabGuard guard;
    guard.stamp(U, 0);
    auto V = smallHierarchy(2, 2); // different ghost width => different fabs
    EXPECT_TRUE(guard.layoutMatches(U, 0));
    V.emplace_back(U[0].boxArray(), U[0].distributionMap(), 2, 1, nullptr);
    EXPECT_FALSE(guard.layoutMatches(V, 1)); // extra level
    guard.invalidate();
    EXPECT_FALSE(guard.stamped());
    EXPECT_TRUE(guard.verify(U, 0).empty()); // unstamped verify is a no-op
}

TEST(FabGuard, SampledFabRotatesOverEveryFab) {
    const int nf = 5;
    std::set<int> seen;
    for (int step = 0; step < 10; ++step)
        for (int stage = 0; stage < 3; ++stage) {
            const int f = FabGuard::sampledFab(step, stage, 0, nf);
            EXPECT_GE(f, 0);
            EXPECT_LT(f, nf);
            seen.insert(f);
        }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(nf));
    // Degenerate inputs must stay in range, not divide by zero.
    EXPECT_EQ(FabGuard::sampledFab(3, 1, 2, 1), 0);
}

TEST(FabGuard, BitwiseEqualSeesASingleBitFlip) {
    const Box b(IntVect::zero(), IntVect{3, 3, 3});
    amr::FArrayBox x(b, 2, 0.25), y(b, 2, 0.25);
    EXPECT_TRUE(FabGuard::bitwiseEqual(x, y, b, 2));
    y(IntVect{1, 2, 3}, 1) = std::nextafter(0.25, 1.0);
    EXPECT_FALSE(FabGuard::bitwiseEqual(x, y, b, 2));
}

// ----------------------------------------------------- allocation canary

TEST(ArenaCanary, FreshFabHasAnIntactCanary) {
    const Box b(IntVect::zero(), IntVect{3, 3, 3});
    amr::FArrayBox fab(b, 2, 1.0);
    EXPECT_TRUE(fab.canaryIntact());
    fab.setVal(-3.5); // payload writes never touch the guard slot
    EXPECT_TRUE(fab.canaryIntact());
}

TEST(ArenaCanary, OutOfBoxOverrunTripsTheCanary) {
    const Box b(IntVect::zero(), IntVect{3, 3, 3});
    amr::FArrayBox fab(b, 2, 1.0);
    // One element past the payload is exactly the guard slot (Fortran
    // order: the overrun every off-by-one kernel loop produces).
    auto a = fab.array();
    a(b.bigEnd()[0] + 1, b.bigEnd()[1], b.bigEnd()[2], 1) = 0.0;
    EXPECT_FALSE(fab.canaryIntact());
}

TEST(ArenaCanary, ScratchPoolDiscardsTrippedBuffersAndCountsThem) {
    auto& pool = gpu::ScratchPool::instance();
    pool.clear();
    pool.resetStats();
    const Box b(IntVect::zero(), IntVect{7, 0, 0});
    {
        auto lease = pool.acquire(b, 1);
        auto a = lease.fab().array();
        a(b.bigEnd()[0] + 1, 0, 0, 0) = 0.0; // overrun
    }
    EXPECT_EQ(pool.canaryTrips(), 1u);
    {
        // The corrupted buffer was discarded, not recycled: the next
        // acquire of the same shape is a miss, with a fresh canary.
        auto lease = pool.acquire(b, 1);
        EXPECT_TRUE(lease.fab().canaryIntact());
    }
    EXPECT_EQ(pool.misses(), 2u);
    EXPECT_EQ(pool.hits(), 0u);
    pool.clear();
    pool.resetStats();
}

// ------------------------------------------------------- RecoveryLadder

TEST(RecoveryLadder, EntryRungMatchesTheFaultClass) {
    EXPECT_EQ(RecoveryLadder::entryRung(FaultClass::ColdSdc), Rung::FabRestore);
    EXPECT_EQ(RecoveryLadder::entryRung(FaultClass::KernelSdc),
              Rung::StepRollback);
    EXPECT_EQ(RecoveryLadder::entryRung(FaultClass::HealthFault),
              Rung::StepRollback);
    EXPECT_EQ(RecoveryLadder::entryRung(FaultClass::RankDeath),
              Rung::BuddyRestore);
    EXPECT_EQ(RecoveryLadder::entryRung(FaultClass::CheckpointCorrupt),
              Rung::DiskRestart);
}

TEST(RecoveryLadder, EscalationClimbsAndColdSdcSkipsRollback) {
    // Rolling the step back replays a corruption that predates the in-step
    // snapshot, so cold SDC escalates straight to the buddy mirror.
    EXPECT_EQ(RecoveryLadder::escalate(Rung::FabRestore, FaultClass::ColdSdc),
              Rung::BuddyRestore);
    EXPECT_EQ(
        RecoveryLadder::escalate(Rung::StepRollback, FaultClass::KernelSdc),
        Rung::BuddyRestore);
    EXPECT_EQ(
        RecoveryLadder::escalate(Rung::BuddyRestore, FaultClass::RankDeath),
        Rung::DiskRestart);
    EXPECT_EQ(
        RecoveryLadder::escalate(Rung::DiskRestart, FaultClass::RankDeath),
        Rung::Abort);
    EXPECT_EQ(RecoveryLadder::escalate(Rung::Abort, FaultClass::RankDeath),
              Rung::Abort);
}

TEST(RecoveryLadder, DtBackoffIsAHealthFaultProperty) {
    // An SDC retry replays the identical step — changing dt would diverge
    // the repaired run bitwise from the fault-free one.
    EXPECT_TRUE(RecoveryLadder::dtBackoffApplies(FaultClass::HealthFault));
    EXPECT_FALSE(RecoveryLadder::dtBackoffApplies(FaultClass::ColdSdc));
    EXPECT_FALSE(RecoveryLadder::dtBackoffApplies(FaultClass::KernelSdc));
    EXPECT_FALSE(RecoveryLadder::dtBackoffApplies(FaultClass::RankDeath));
}

TEST(RecoveryLog, RecordsAndCountsEscalationDecisions) {
    RecoveryLog log;
    log.record(3, FaultClass::ColdSdc, Rung::FabRestore, true, "level 0 fab 2");
    log.record(5, FaultClass::ColdSdc, Rung::FabRestore, false, "copy corrupt");
    log.record(5, FaultClass::ColdSdc, Rung::BuddyRestore, true);
    EXPECT_EQ(log.events().size(), 3u);
    EXPECT_EQ(log.successes(Rung::FabRestore), 1);
    EXPECT_EQ(log.failures(Rung::FabRestore), 1);
    EXPECT_EQ(log.successes(Rung::BuddyRestore), 1);
    EXPECT_EQ(log.failures(Rung::DiskRestart), 0);
    const std::string dump = log.describeAll();
    EXPECT_NE(dump.find("fab restore"), std::string::npos);
    EXPECT_NE(dump.find("copy corrupt"), std::string::npos);
    log.clear();
    EXPECT_TRUE(log.events().empty());
}

} // namespace
} // namespace crocco::resilience
