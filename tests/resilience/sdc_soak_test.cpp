// SDC recovery soaks (docs/resilience.md §6): seeded bit-flip campaigns
// over a DMR run with regrids, one per ladder rung — fab-granular repair,
// step rollback via dual execution, buddy-mirror escalation, and the
// corrupted-mirror fall-through to disk — plus the combined chaos soak
// (SDC + message faults + rank death). Every repaired run must end
// bitwise-identical to the fault-free run; with the guard off, the guard
// machinery must be bitwise-transparent. CROCCO_SDC_SEED varies the
// campaign seed (tools/ci.sh sweeps a small matrix; default 2026).
#include "resilience/SdcInjector.hpp"

#include "core/CroccoAmr.hpp"
#include "parallel/CommFaults.hpp"
#include "problems/Dmr.hpp"
#include "resilience/BuddyCheckpoint.hpp"
#include "resilience/FabGuard.hpp"
#include "resilience/RecoveryLadder.hpp"
#include "resilience/RestartManager.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

namespace crocco::resilience {
namespace {

using amr::MultiFab;

std::uint64_t campaignSeed() {
    if (const char* env = std::getenv("CROCCO_SDC_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 2026;
}

struct TmpRoot {
    std::string path;
    explicit TmpRoot(const std::string& name) : path("/tmp/" + name) {
        std::filesystem::remove_all(path);
    }
    ~TmpRoot() { std::filesystem::remove_all(path); }
};

problems::Dmr smallDmr() {
    problems::Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = 1;
    return problems::Dmr(o);
}

core::CroccoAmr::Config soakConfig(int nranks, bool guard) {
    auto cfg = smallDmr().solverConfig(core::CodeVersion::V20);
    cfg.nranks = nranks;
    cfg.regridFreq = 3; // several regrids inside a 10-step soak
    cfg.amrInfo.maxGridSize = 8;
    cfg.sdc.guard = guard;
    cfg.sdc.interval = 1; // verify every step: full cold-flip coverage
    cfg.sdc.sample = 0;
    return cfg;
}

std::unique_ptr<core::CroccoAmr> makeSolver(const core::CroccoAmr::Config& cfg,
                                            parallel::SimComm* comm) {
    auto dmr = smallDmr();
    auto solver = std::make_unique<core::CroccoAmr>(dmr.geometry(), cfg,
                                                    dmr.mapping(), comm);
    solver->init(dmr.initialCondition(), dmr.boundaryConditions());
    return solver;
}

void expectBitwiseIdentical(const core::CroccoAmr& a,
                            const core::CroccoAmr& b) {
    ASSERT_EQ(a.stepCount(), b.stepCount());
    ASSERT_EQ(a.time(), b.time());
    ASSERT_EQ(a.finestLevel(), b.finestLevel());
    for (int lev = 0; lev <= a.finestLevel(); ++lev) {
        const MultiFab& ua = a.state(lev);
        const MultiFab& ub = b.state(lev);
        ASSERT_EQ(ua.boxArray().size(), ub.boxArray().size()) << "level " << lev;
        for (int f = 0; f < ua.numFabs(); ++f) {
            ASSERT_EQ(ua.validBox(f), ub.validBox(f));
            auto x = ua.const_array(f);
            auto y = ub.const_array(f);
            for (int n = 0; n < core::NCONS; ++n)
                amr::forEachCell(ua.validBox(f), [&](int i, int j, int k) {
                    ASSERT_EQ(x(i, j, k, n), y(i, j, k, n))
                        << "level " << lev << " fab " << f << " comp " << n
                        << " (" << i << "," << j << "," << k << ")";
                });
        }
    }
}

// With every resilience.sdc_* knob off, the solver must not take stamps,
// run verifies, or dual-execute — and with the guard on but no faults, the
// detection machinery must be bitwise-transparent.
TEST(SdcTransparency, GuardOnWithoutFaultsIsBitwiseIdenticalToGuardOff) {
    const int nsteps = 8;
    auto off = makeSolver(soakConfig(1, false), nullptr);
    off->evolve(nsteps);
    EXPECT_EQ(off->sdcGuard().stats().stamps, 0);
    EXPECT_EQ(off->sdcGuard().stats().verifies, 0);
    EXPECT_EQ(off->sdcGuard().stats().dualChecks, 0);

    auto cfg = soakConfig(1, true);
    cfg.sdc.sample = 2; // dual-execute too: it must also be transparent
    auto on = makeSolver(cfg, nullptr);
    on->evolve(nsteps);
    EXPECT_GT(on->sdcGuard().stats().stamps, 0);
    EXPECT_GT(on->sdcGuard().stats().verifies, 0);
    EXPECT_GT(on->sdcGuard().stats().dualChecks, 0);
    EXPECT_EQ(on->sdcGuard().stats().crcMismatches, 0);
    EXPECT_EQ(on->sdcGuard().stats().dualMismatches, 0);
    expectBitwiseIdentical(*on, *off);
}

// Rung 1 — FabRestore: a cold flip lands between steps, the step-start
// verify localizes it to one fab, and the retained copy repairs it in
// place. No rollback, no dt change, bitwise-identical trajectory.
TEST(SdcSoak, ColdFlipIsRepairedInPlace) {
    const int nsteps = 10;
    auto reference = makeSolver(soakConfig(1, false), nullptr);
    reference->evolve(nsteps);

    SdcInjector inj{FaultRng(campaignSeed())};
    inj.setEnabled(true);
    inj.armColdFlip(4, 0, 0);
    auto solver = makeSolver(soakConfig(1, true), nullptr);
    solver->setSdcInjector(&inj);
    solver->evolve(nsteps);

    EXPECT_EQ(inj.stats().coldFlips, 1);
    EXPECT_EQ(solver->fabRestoreCount(), 1);
    EXPECT_EQ(solver->rollbackCount(), 0);
    EXPECT_EQ(solver->sdcGuard().stats().crcMismatches, 1);
    EXPECT_EQ(solver->recoveryLog().successes(Rung::FabRestore), 1);
    expectBitwiseIdentical(*solver, *reference);
}

// Rung 2 — StepRollback: a flip in a stage RHS is caught by the sampled
// dual execution before the update consumes it; the step rolls back and
// replays clean at the same dt.
TEST(SdcSoak, StageFlipIsCaughtByDualExecutionAndRolledBack) {
    const int nsteps = 8;
    auto reference = makeSolver(soakConfig(1, false), nullptr);
    reference->evolve(nsteps);

    auto cfg = soakConfig(1, true);
    cfg.sdc.sample = 1; // dual-execute every step
    auto solver = makeSolver(cfg, nullptr);

    // Aim the flip at exactly the fab the dual execution will re-run.
    const int step = 4, stage = 1, level = 0;
    const int nf = reference->state(level).numFabs();
    const int target = FabGuard::sampledFab(step, stage, level, nf);
    SdcInjector inj{FaultRng(campaignSeed())};
    inj.setEnabled(true);
    inj.armStageFlip(step, stage, level, target);
    solver->setSdcInjector(&inj);
    solver->evolve(nsteps);

    EXPECT_EQ(inj.stats().stageFlips, 1);
    EXPECT_EQ(solver->rollbackCount(), 1);
    EXPECT_EQ(solver->sdcGuard().stats().dualMismatches, 1);
    EXPECT_GE(solver->recoveryLog().successes(Rung::StepRollback), 1);
    expectBitwiseIdentical(*solver, *reference);
}

// Rung 3 — BuddyRestore: the cold flip's restore source is itself corrupt
// (double fault), so FabRestore fails and the ladder escalates past
// StepRollback (replaying the step would replay the corruption) to the
// buddy mirror.
TEST(SdcSoak, CorruptRetainedCopyEscalatesToBuddyMirror) {
    const int nsteps = 10, faultStep = 4;
    parallel::SimComm cleanComm(2);
    auto reference = makeSolver(soakConfig(2, false), &cleanComm);
    reference->evolve(nsteps);

    parallel::SimComm comm(2);
    auto solver = makeSolver(soakConfig(2, true), &comm);
    BuddyCheckpoint buddy;
    core::CroccoAmr::EvolveOptions opts;
    opts.buddy = &buddy;
    opts.buddyEvery = 1;

    solver->evolve(faultStep, opts);
    SdcInjector inj{FaultRng(campaignSeed())};
    inj.setEnabled(true);
    inj.armColdFlip(faultStep, 0, 0);
    solver->setSdcInjector(&inj);
    solver->sdcGuard().corruptRetained(0, 0);
    solver->evolve(nsteps - faultStep, opts);

    EXPECT_EQ(solver->fabRestoreCount(), 0);
    EXPECT_EQ(solver->buddyRecoveryCount(), 1);
    EXPECT_EQ(solver->recoveryLog().failures(Rung::FabRestore), 1);
    EXPECT_EQ(solver->recoveryLog().successes(Rung::BuddyRestore), 1);
    EXPECT_EQ(solver->recoveryLog().successes(Rung::StepRollback), 0);
    expectBitwiseIdentical(*solver, *reference);
}

// Rung 4 — DiskRestart: a rank dies and the buddy mirror fails its CRC
// verification (SDC hit partner memory), so recovery must refuse the
// mirror and fall through to the disk checkpoint. The negative test for
// BuddyCheckpoint::verifyMirror: the corrupt copy must never overwrite
// live state.
TEST(SdcSoak, CorruptBuddyMirrorFallsThroughToDiskRestart) {
    TmpRoot root("crocco_sdc_corrupt_mirror");
    const int nsteps = 10;
    parallel::SimComm cleanComm(4);
    auto reference = makeSolver(soakConfig(4, false), &cleanComm);
    reference->evolve(nsteps);

    parallel::SimComm comm(4);
    parallel::CommFaults faults;
    faults.armRankDeath(5, 2);
    comm.attachFaults(&faults);
    auto solver = makeSolver(soakConfig(4, true), &comm);

    RestartManager restart(root.path);
    BuddyCheckpoint buddy;
    core::CroccoAmr::EvolveOptions opts;
    opts.restart = &restart;
    opts.checkpointEvery = 2;
    opts.buddy = &buddy;
    opts.buddyEvery = 2;

    solver->evolve(4, opts);
    ASSERT_TRUE(buddy.valid());
    ASSERT_TRUE(buddy.verifyMirror());
    buddy.corruptMirror(0, 0);
    ASSERT_FALSE(buddy.verifyMirror());
    solver->evolve(nsteps - 4, opts);

    EXPECT_EQ(solver->buddyRecoveryCount(), 0);
    EXPECT_EQ(solver->rankRecoveryCount(), 1);
    EXPECT_EQ(comm.size(), 3);
    // The refusal is recorded as a corrupt-restore-source event before the
    // disk rung runs.
    int corruptMirrorEvents = 0;
    for (const auto& e : solver->recoveryLog().events())
        if (e.fault == FaultClass::CheckpointCorrupt &&
            e.rung == Rung::BuddyRestore && !e.success)
            ++corruptMirrorEvents;
    EXPECT_EQ(corruptMirrorEvents, 1);
    expectBitwiseIdentical(*solver, *reference);
}

// The combined chaos soak: cold SDC + kernel SDC + message drop/corrupt +
// one rank death, over a DMR run with regrids. Three ladder rungs fire in
// one campaign (FabRestore, StepRollback, BuddyRestore) and the run still
// ends bitwise-identical to the fault-free one. Run again with
// GPU_NUM_THREADS=8 as sdc_soak_test_mt.
TEST(SdcSoak, CombinedChaosCampaignEndsBitwiseIdentical) {
    const int nsteps = 10;
    parallel::SimComm cleanComm(4);
    auto reference = makeSolver(soakConfig(4, false), &cleanComm);
    reference->evolve(nsteps);

    const FaultRng rng(campaignSeed());
    parallel::SimComm comm(4);
    parallel::CommFaults faults(rng);
    parallel::CommFaults::Rates rates;
    rates.drop = 0.02;
    rates.corrupt = 0.02;
    faults.setRates(rates);
    faults.armRankDeath(7, 1);
    comm.attachFaults(&faults);

    auto cfg = soakConfig(4, true);
    cfg.sdc.sample = 1;
    auto solver = makeSolver(cfg, &comm);

    SdcInjector inj(rng);
    inj.setEnabled(true);
    inj.armColdFlip(4, 0, 0);
    const int nf = reference->state(0).numFabs();
    inj.armStageFlip(5, 2, 0, FabGuard::sampledFab(5, 2, 0, nf));
    solver->setSdcInjector(&inj);

    BuddyCheckpoint buddy;
    core::CroccoAmr::EvolveOptions opts;
    opts.buddy = &buddy;
    opts.buddyEvery = 2;
    solver->evolve(nsteps, opts);

    // Every injected fault fired and every rung it needed succeeded.
    EXPECT_EQ(inj.stats().coldFlips, 1);
    EXPECT_EQ(inj.stats().stageFlips, 1);
    EXPECT_EQ(faults.stats().rankDeaths, 1);
    EXPECT_GT(faults.stats().fired(), 1);
    EXPECT_EQ(solver->fabRestoreCount(), 1);
    EXPECT_EQ(solver->rollbackCount(), 1);
    EXPECT_EQ(solver->buddyRecoveryCount(), 1);
    const RecoveryLog& log = solver->recoveryLog();
    EXPECT_EQ(log.successes(Rung::FabRestore), 1);
    EXPECT_GE(log.successes(Rung::StepRollback), 1);
    EXPECT_EQ(log.successes(Rung::BuddyRestore), 1);
    // Message faults were absorbed by the verified-exchange path.
    EXPECT_EQ(comm.faultStats().crcFailures, comm.faultStats().nacks);
    EXPECT_EQ(comm.size(), 3);
    expectBitwiseIdentical(*solver, *reference);
}

} // namespace
} // namespace crocco::resilience
