// Rank-death recovery (docs/resilience.md §5): in-memory buddy
// checkpointing, ULFM-style communicator shrink + box redistribution, the
// disk-restart fallback, and the acceptance soak — a seeded fault campaign
// (drop + corrupt + rank death) over a full DMR run with regrids whose
// final solution is bitwise-identical to the fault-free run.
#include "resilience/BuddyCheckpoint.hpp"

#include "core/CroccoAmr.hpp"
#include "parallel/CommFaults.hpp"
#include "problems/Dmr.hpp"
#include "resilience/RestartManager.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace crocco::resilience {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::IntVect;
using amr::MultiFab;

struct TmpRoot {
    std::string path;
    explicit TmpRoot(const std::string& name) : path("/tmp/" + name) {
        std::filesystem::remove_all(path);
    }
    ~TmpRoot() { std::filesystem::remove_all(path); }
};

// ---------------------------------------------------------- BuddyCheckpoint

std::vector<MultiFab> twoRankHierarchy(parallel::SimComm* comm) {
    const Box domain(IntVect::zero(), IntVect{15, 7, 7});
    BoxArray ba({Box(IntVect::zero(), IntVect{7, 7, 7}),
                 Box(IntVect{8, 0, 0}, IntVect{15, 7, 7})});
    DistributionMapping dm(std::vector<int>{0, 1}, 2);
    std::vector<MultiFab> U;
    U.emplace_back(ba, dm, 2, 1, comm);
    U[0].setVal(3.25);
    return U;
}

TEST(BuddyCheckpoint, PartnerRingCoversEverySingleFailure) {
    // rank r's replica lives on (r + 1) % n, so for every possible dead
    // rank a distinct partner holds the copy.
    for (int n = 2; n <= 5; ++n)
        for (int r = 0; r < n; ++r) {
            const int p = BuddyCheckpoint::partnerOf(r, n);
            EXPECT_NE(p, r);
            EXPECT_GE(p, 0);
            EXPECT_LT(p, n);
        }
    // n == 1 degenerates: the only rank is its own partner, so no single
    // failure is coverable.
    EXPECT_EQ(BuddyCheckpoint::partnerOf(0, 1), 0);
}

TEST(BuddyCheckpoint, StoreSnapshotsStateAndRecordsMirrorTraffic) {
    parallel::SimComm comm(2);
    auto U = twoRankHierarchy(&comm);
    BuddyCheckpoint buddy;
    EXPECT_FALSE(buddy.valid());
    EXPECT_FALSE(buddy.canRecover(0));

    buddy.store(U, 0, 7, 0.125, &comm);
    EXPECT_TRUE(buddy.valid());
    EXPECT_EQ(buddy.step(), 7);
    EXPECT_DOUBLE_EQ(buddy.time(), 0.125);
    EXPECT_EQ(buddy.finestLevel(), 0);
    EXPECT_EQ(buddy.nranks(), 2);
    EXPECT_TRUE(buddy.canRecover(0));
    EXPECT_TRUE(buddy.canRecover(1));
    EXPECT_FALSE(buddy.canRecover(2)); // out of range
    // Each fab's valid-region bytes crossed to the partner.
    const std::int64_t perFab = 8 * 8 * 8 * 2 * sizeof(amr::Real);
    EXPECT_EQ(buddy.mirroredBytes(), 2 * perFab);
    EXPECT_EQ(comm.log().count(), 2u);
    for (const auto& m : comm.log().messages()) {
        EXPECT_EQ(m.tag, "BuddyCheckpoint");
        EXPECT_EQ(m.bytes, perFab);
    }

    // The snapshot is a deep copy: mutating the live state afterwards must
    // not leak into it.
    U[0].setVal(-1.0);
    EXPECT_DOUBLE_EQ(buddy.level(0).const_array(0)(0, 0, 0, 0), 3.25);

    buddy.invalidate();
    EXPECT_FALSE(buddy.valid());
    EXPECT_FALSE(buddy.canRecover(0));
}

TEST(BuddyCheckpoint, DoubleFaultDefeatsTheReplicaUntilTheNextStore) {
    parallel::SimComm comm(2);
    auto U = twoRankHierarchy(&comm);
    BuddyCheckpoint buddy;
    buddy.store(U, 0, 1, 0.0, &comm);
    buddy.dropReplicaOf(0);
    EXPECT_FALSE(buddy.canRecover(0)); // replica lost with the partner
    EXPECT_TRUE(buddy.canRecover(1));  // the other direction is intact
    buddy.store(U, 0, 2, 0.0, &comm);  // fresh snapshot clears the mark
    EXPECT_TRUE(buddy.canRecover(0));
}

// --------------------------------------------------------- DMR soak fixture

problems::Dmr smallDmr() {
    problems::Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = 1;
    return problems::Dmr(o);
}

core::CroccoAmr::Config soakConfig(int nranks) {
    auto cfg = smallDmr().solverConfig(core::CodeVersion::V20);
    cfg.nranks = nranks;
    cfg.regridFreq = 3; // several regrids inside a 10-step soak
    // Small boxes so every rank owns several and ghost exchanges cross
    // ranks — with the default max_grid_size 32 this hierarchy collapses
    // to a couple of boxes, all on rank 0, and nothing for the fault
    // injector (or the dead rank) to bite on.
    cfg.amrInfo.maxGridSize = 8;
    return cfg;
}

std::unique_ptr<core::CroccoAmr> makeSolver(const core::CroccoAmr::Config& cfg,
                                            parallel::SimComm* comm) {
    auto dmr = smallDmr();
    auto solver = std::make_unique<core::CroccoAmr>(dmr.geometry(), cfg,
                                                    dmr.mapping(), comm);
    solver->init(dmr.initialCondition(), dmr.boundaryConditions());
    return solver;
}

void expectBitwiseIdentical(const core::CroccoAmr& a, const core::CroccoAmr& b) {
    ASSERT_EQ(a.stepCount(), b.stepCount());
    ASSERT_EQ(a.time(), b.time());
    ASSERT_EQ(a.finestLevel(), b.finestLevel());
    for (int lev = 0; lev <= a.finestLevel(); ++lev) {
        const MultiFab& ua = a.state(lev);
        const MultiFab& ub = b.state(lev);
        ASSERT_EQ(ua.boxArray().size(), ub.boxArray().size()) << "level " << lev;
        for (int f = 0; f < ua.numFabs(); ++f) {
            ASSERT_EQ(ua.validBox(f), ub.validBox(f));
            auto x = ua.const_array(f);
            auto y = ub.const_array(f);
            for (int n = 0; n < core::NCONS; ++n)
                amr::forEachCell(ua.validBox(f), [&](int i, int j, int k) {
                    ASSERT_EQ(x(i, j, k, n), y(i, j, k, n))
                        << "level " << lev << " fab " << f << " comp " << n
                        << " (" << i << "," << j << "," << k << ")";
                });
        }
    }
}

// ------------------------------------------------------- rank-death recovery

TEST(RankRecovery, BuddyRestoreAfterMidRunRankDeathIsBitwiseIdentical) {
    const int nsteps = 10;
    parallel::SimComm cleanComm(4);
    auto reference = makeSolver(soakConfig(4), &cleanComm);
    reference->evolve(nsteps);

    parallel::SimComm comm(4);
    parallel::CommFaults faults;
    faults.armRankDeath(5, 2);
    comm.attachFaults(&faults);
    auto solver = makeSolver(soakConfig(4), &comm);

    BuddyCheckpoint buddy;
    core::CroccoAmr::EvolveOptions opts;
    opts.buddy = &buddy;
    opts.buddyEvery = 2;
    solver->evolve(nsteps, opts);

    EXPECT_EQ(solver->buddyRecoveryCount(), 1);
    EXPECT_EQ(solver->diskRecoveryCount(), 0);
    EXPECT_EQ(comm.size(), 3); // shrunk over the survivors
    EXPECT_EQ(faults.stats().rankDeaths, 1);
    // The dead rank's boxes were adopted from the partner copy.
    std::size_t recoveryMsgs = 0, mirrorMsgs = 0;
    for (const auto& m : comm.log().messages()) {
        if (m.tag == "RankRecovery") ++recoveryMsgs;
        if (m.tag == "BuddyCheckpoint") ++mirrorMsgs;
    }
    EXPECT_GT(recoveryMsgs, 0u);
    EXPECT_GT(mirrorMsgs, 0u);
    // Replay from the buddy snapshot converges on the exact fault-free
    // trajectory: the numerics are ownership-independent.
    expectBitwiseIdentical(*solver, *reference);
}

TEST(RankRecovery, WithoutABuddyCopyRecoveryFallsBackToDisk) {
    TmpRoot root("crocco_comm_recovery_disk");
    const int nsteps = 8;
    parallel::SimComm cleanComm(4);
    auto reference = makeSolver(soakConfig(4), &cleanComm);
    reference->evolve(nsteps);

    parallel::SimComm comm(4);
    parallel::CommFaults faults;
    faults.armRankDeath(4, 1);
    comm.attachFaults(&faults);
    auto solver = makeSolver(soakConfig(4), &comm);

    RestartManager restart(root.path);
    core::CroccoAmr::EvolveOptions opts;
    opts.restart = &restart;
    opts.checkpointEvery = 2;
    solver->evolve(nsteps, opts);

    EXPECT_EQ(solver->buddyRecoveryCount(), 0);
    EXPECT_EQ(solver->diskRecoveryCount(), 1);
    EXPECT_EQ(solver->rankRecoveryCount(), 1);
    EXPECT_EQ(comm.size(), 3);
    // The disk checkpoint stores exact binary state, so the replay is
    // bitwise-identical too (the restored mappings exclude the dead rank).
    expectBitwiseIdentical(*solver, *reference);
}

TEST(RankRecovery, DeathWithNoRecoveryPathPropagatesRankFailure) {
    parallel::SimComm comm(2);
    parallel::CommFaults faults;
    faults.armRankDeath(1, 0);
    comm.attachFaults(&faults);
    auto solver = makeSolver(soakConfig(2), &comm);
    core::CroccoAmr::EvolveOptions opts; // no buddy, no restart
    opts.maxRecoveries = 0;
    EXPECT_THROW(solver->evolve(4, opts), parallel::RankFailure);
}

// ------------------------------------------------------------ the full soak

TEST(CommFaultSoak, SeededCampaignWithRegridsEndsBitwiseIdentical) {
    // Acceptance gate: drop + corrupt + duplicate + delay rates on every
    // ghost/ParallelCopy payload, plus a rank death mid-run, over a DMR run
    // long enough to regrid several times. Every message fault must be
    // transparently recovered and the rank death repaired from the buddy
    // copy — the final solution must match the fault-free run bit for bit.
    const int nsteps = 10;
    parallel::SimComm cleanComm(4);
    auto reference = makeSolver(soakConfig(4), &cleanComm);
    reference->evolve(nsteps);

    parallel::SimComm comm(4);
    parallel::CommFaults faults(2026);
    parallel::CommFaults::Rates rates;
    rates.drop = 0.02;
    rates.duplicate = 0.01;
    rates.delay = 0.01;
    rates.corrupt = 0.02;
    faults.setRates(rates);
    faults.armRankDeath(5, 1);
    comm.attachFaults(&faults);
    auto solver = makeSolver(soakConfig(4), &comm);

    TmpRoot root("crocco_comm_recovery_soak");
    RestartManager restart(root.path);
    BuddyCheckpoint buddy;
    core::CroccoAmr::EvolveOptions opts;
    opts.restart = &restart;
    opts.checkpointEvery = 4;
    opts.buddy = &buddy;
    opts.buddyEvery = 2;
    solver->evolve(nsteps, opts);

    // The campaign actually fired, message faults and the death included.
    EXPECT_GT(faults.stats().fired(), faults.stats().rankDeaths);
    EXPECT_EQ(faults.stats().rankDeaths, 1);
    EXPECT_EQ(solver->buddyRecoveryCount(), 1);
    const auto& fs = comm.faultStats();
    EXPECT_GT(fs.verified, 0);
    EXPECT_EQ(fs.crcFailures, fs.nacks);
    EXPECT_GE(fs.retransmits, fs.dropped);
    expectBitwiseIdentical(*solver, *reference);
}

} // namespace
} // namespace crocco::resilience
