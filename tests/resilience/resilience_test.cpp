#include "resilience/Crc32.hpp"
#include "resilience/FaultInjector.hpp"
#include "resilience/StateValidator.hpp"

#include "core/CroccoAmr.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace crocco::resilience {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::IntVect;
using amr::MultiFab;
using core::GasModel;

// ------------------------------------------------------------------ CRC32

TEST(Crc32, KnownAnswerAndChaining) {
    // The canonical CRC-32 check value.
    const char* s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
    EXPECT_EQ(crc32(s, 0), 0u);
    // Chaining across a split must equal one pass.
    const std::uint32_t first = crc32(s, 4);
    EXPECT_EQ(crc32(s + 4, 5, first), crc32(s, 9));
    // One flipped bit changes the checksum.
    char buf[9];
    std::copy(s, s + 9, buf);
    buf[3] ^= 0x10;
    EXPECT_NE(crc32(buf, 9), crc32(s, 9));
}

// --------------------------------------------------------- StateValidator

MultiFab makeState(double rho, double e) {
    const Box b(IntVect::zero(), IntVect{7, 7, 7});
    BoxArray ba({b});
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, core::NCONS, 0);
    mf.setVal(0.0);
    mf.setVal(rho, core::URHO, 1);
    mf.setVal(e, core::UEDEN, 1);
    return mf;
}

TEST(StateValidator, HealthyStatePasses) {
    MultiFab mf = makeState(1.0, 2.5);
    const auto rep = validateState(mf, GasModel{}, 0);
    EXPECT_TRUE(rep.healthy());
    EXPECT_EQ(rep.faultCount, 0);
    EXPECT_EQ(rep.cellsScanned, 512);
    EXPECT_NE(rep.describe().find("healthy"), std::string::npos);
}

TEST(StateValidator, DetectsNaNWithExactAddress) {
    MultiFab mf = makeState(1.0, 2.5);
    mf.array(0)(3, 4, 5, core::UMY) = std::numeric_limits<double>::quiet_NaN();
    const auto rep = validateState(mf, GasModel{}, 2);
    ASSERT_FALSE(rep.healthy());
    ASSERT_EQ(rep.faults.size(), 1u);
    const CellFault& f = rep.faults[0];
    EXPECT_EQ(f.kind, FaultKind::NotANumber);
    EXPECT_EQ(f.level, 2);
    EXPECT_EQ(f.fabIndex, 0);
    EXPECT_EQ(f.cell, (IntVect{3, 4, 5}));
    EXPECT_EQ(f.comp, core::UMY);
}

TEST(StateValidator, DetectsInfNegativeDensityAndNegativePressure) {
    MultiFab mf = makeState(1.0, 2.5);
    auto a = mf.array(0);
    a(0, 0, 0, core::UEDEN) = std::numeric_limits<double>::infinity();
    a(1, 0, 0, core::URHO) = -0.25;
    // Finite but unphysical: kinetic energy exceeds total energy.
    a(2, 0, 0, core::UMX) = 10.0;
    const auto rep = validateState(mf, GasModel{}, 0);
    ASSERT_EQ(rep.faultCount, 3);
    EXPECT_EQ(rep.faults[0].kind, FaultKind::Infinite);
    EXPECT_EQ(rep.faults[1].kind, FaultKind::NegativeDensity);
    EXPECT_EQ(rep.faults[2].kind, FaultKind::NegativePressure);
    // The report names each kind.
    const std::string d = rep.describe();
    EXPECT_NE(d.find("Inf"), std::string::npos);
    EXPECT_NE(d.find("negative-density"), std::string::npos);
    EXPECT_NE(d.find("negative-pressure"), std::string::npos);
}

TEST(StateValidator, FaultReportIsCappedButCountIsNot) {
    MultiFab mf = makeState(-1.0, 2.5); // every cell has negative density
    const auto rep = validateState(mf, GasModel{}, 0, /*maxReported=*/4);
    EXPECT_EQ(rep.faultCount, 512);
    EXPECT_EQ(rep.faults.size(), 4u);
    EXPECT_NE(rep.describe().find("more not shown"), std::string::npos);
}

TEST(StateValidator, HierarchyMergesLevels) {
    std::vector<MultiFab> U;
    U.push_back(makeState(1.0, 2.5));
    U.push_back(makeState(1.0, 2.5));
    U[1].array(0)(1, 2, 3, core::URHO) = -1.0;
    const auto rep = validateHierarchy(U, 1, GasModel{});
    EXPECT_EQ(rep.cellsScanned, 1024);
    ASSERT_EQ(rep.faultCount, 1);
    EXPECT_EQ(rep.faults[0].level, 1);
}

// ----------------------------------------------------------- FaultInjector

TEST(FaultInjector, SeededAndDeterministic) {
    auto run = [](std::uint64_t seed) {
        std::vector<MultiFab> U;
        U.push_back(makeState(1.0, 2.5));
        FaultInjector inj(seed);
        inj.armCellCorruption(5, FaultInjector::Corruption::QuietNaN);
        inj.corruptState(5, U, 0);
        // Locate the corrupted cell.
        const auto rep = validateState(U[0], GasModel{}, 0);
        return rep.faults.at(0);
    };
    const CellFault a = run(42), b = run(42), c = run(43);
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_EQ(a.comp, b.comp);
    // A different seed picks a different target (true for these seeds).
    EXPECT_TRUE(c.cell != a.cell || c.comp != a.comp);
}

TEST(FaultInjector, OneShotConsumesPersistentRefires) {
    std::vector<MultiFab> U;
    U.push_back(makeState(1.0, 2.5));
    FaultInjector inj(7);
    inj.armCellCorruption(3);
    EXPECT_FALSE(inj.corruptState(2, U, 0)); // wrong step: nothing fires
    EXPECT_TRUE(inj.corruptState(3, U, 0));
    EXPECT_FALSE(inj.corruptState(3, U, 0)); // spent
    EXPECT_EQ(inj.faultsFired(), 1);

    FaultInjector pers(7);
    pers.armPersistentCorruption(3);
    EXPECT_TRUE(pers.corruptState(3, U, 0));
    EXPECT_TRUE(pers.corruptState(3, U, 0));
    EXPECT_EQ(pers.faultsFired(), 2);
}

TEST(FaultInjector, DtInflationIsOneShot) {
    FaultInjector inj(1);
    inj.armDtInflation(4, 8.0);
    EXPECT_DOUBLE_EQ(inj.perturbDt(3, 0.5), 0.5);
    EXPECT_DOUBLE_EQ(inj.perturbDt(4, 0.5), 4.0);
    EXPECT_DOUBLE_EQ(inj.perturbDt(4, 0.5), 0.5);
}

// ----------------------------------------------- solver rollback and retry

problems::Dmr smallDmr(int maxLevel = 0) {
    problems::Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = maxLevel;
    return problems::Dmr(o);
}

TEST(Rollback, TransientCorruptionIsRetriedAndRunCompletes) {
    // Acceptance: corrupt a cell mid-run; the solver must detect it at the
    // step's health check, roll back, retry clean, and finish with finite
    // conserved totals.
    auto dmr = smallDmr();
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    ASSERT_TRUE(cfg.guard.enabled); // guard is on by default
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());

    FaultInjector inj(123);
    inj.armCellCorruption(2, FaultInjector::Corruption::QuietNaN);
    solver.setFaultInjector(&inj);
    solver.evolve(4);

    EXPECT_EQ(solver.stepCount(), 4);
    EXPECT_EQ(inj.faultsFired(), 1);
    EXPECT_GE(solver.rollbackCount(), 1);
    EXPECT_TRUE(solver.lastHealth().healthy());
    for (const double t : solver.conservedTotals()) EXPECT_TRUE(std::isfinite(t));
}

TEST(Rollback, DtInflationIsWalkedBackByBackoff) {
    // Blow the CFL limit 64x at step 1: the advance must go unstable, and
    // the guard must halve dt until the step survives.
    auto dmr = smallDmr();
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.guard.maxRetries = 12;
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());

    core::CroccoAmr clean(dmr.geometry(), cfg, dmr.mapping());
    clean.init(dmr.initialCondition(), dmr.boundaryConditions());
    clean.step();
    const double stableDt = clean.lastDt();

    FaultInjector inj(9);
    inj.armDtInflation(1, 64.0);
    solver.setFaultInjector(&inj);
    solver.evolve(3);

    EXPECT_EQ(solver.stepCount(), 3);
    EXPECT_GE(solver.rollbackCount(), 1);
    // The accepted dt of the poisoned step is 64 * 0.5^k of the stable dt;
    // by completion dt must be back at a stable magnitude.
    EXPECT_LT(solver.lastDt(), 4.0 * stableDt);
    for (const double t : solver.conservedTotals()) EXPECT_TRUE(std::isfinite(t));
}

TEST(Rollback, PersistentCorruptionThrowsSolverDivergence) {
    auto dmr = smallDmr();
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.guard.maxRetries = 2;
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());

    FaultInjector inj(5);
    inj.armPersistentCorruption(1, FaultInjector::Corruption::NegativeDensity);
    solver.setFaultInjector(&inj);
    solver.step(); // step 0 is clean

    const auto before = solver.conservedTotals();
    try {
        solver.step();
        FAIL() << "expected SolverDivergence";
    } catch (const SolverDivergence& e) {
        EXPECT_EQ(e.step(), 1);
        EXPECT_FALSE(e.report().healthy());
        EXPECT_EQ(e.report().faults.at(0).kind, FaultKind::NegativeDensity);
        EXPECT_NE(std::string(e.what()).find("negative-density"),
                  std::string::npos);
    }
    // The failed step was rolled back: counters unchanged, state restored.
    EXPECT_EQ(solver.stepCount(), 1);
    const auto after = solver.conservedTotals();
    for (int n = 0; n < core::NCONS; ++n) EXPECT_EQ(after[n], before[n]);
    // It fired on the first attempt plus each of the 2 retries.
    EXPECT_EQ(inj.faultsFired(), 3);
}

TEST(Rollback, GuardDisabledLetsCorruptionThrough) {
    auto dmr = smallDmr();
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.guard.enabled = false;
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    FaultInjector inj(11);
    inj.armCellCorruption(0, FaultInjector::Corruption::QuietNaN);
    solver.setFaultInjector(&inj);
    solver.evolve(2);
    EXPECT_EQ(solver.rollbackCount(), 0);
    bool anyNaN = false;
    for (const double t : solver.conservedTotals())
        anyNaN = anyNaN || std::isnan(t);
    EXPECT_TRUE(anyNaN);
}

} // namespace
} // namespace crocco::resilience
