#include "resilience/FaultInjector.hpp"
#include "resilience/Health.hpp"
#include "resilience/RestartManager.hpp"

#include "core/CroccoAmr.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace crocco::resilience {
namespace {

namespace fs = std::filesystem;
using core::CroccoAmr;

struct TmpRoot {
    explicit TmpRoot(const std::string& name) : path("/tmp/" + name) {
        fs::remove_all(path);
    }
    ~TmpRoot() { fs::remove_all(path); }
    std::string path;
};

// --------------------------------------------------- manager housekeeping

TEST(RestartManager, RejectsNonPositiveKeepLast) {
    EXPECT_THROW(RestartManager("/tmp/crocco_rm_bad", 0), std::invalid_argument);
}

TEST(RestartManager, DirNamingAndStepParsing) {
    TmpRoot root("crocco_rm_names");
    RestartManager rm(root.path);
    EXPECT_EQ(rm.dirFor(42), root.path + "/chk000042");
    EXPECT_EQ(RestartManager::stepOf(rm.dirFor(42)), 42);
    EXPECT_EQ(RestartManager::stepOf(root.path + "/notachk"), -1);
}

TEST(RestartManager, WritePrunesToKeepLastNewestFirst) {
    TmpRoot root("crocco_rm_prune");
    RestartManager rm(root.path, 2);
    auto dummyWriter = [](const std::string& dir) {
        fs::create_directories(dir);
        std::ofstream(dir + "/header.txt") << "crocco-checkpoint 1\n";
    };
    for (int s : {1, 5, 9}) rm.write(s, dummyWriter);
    const auto avail = rm.available();
    ASSERT_EQ(avail.size(), 2u);
    EXPECT_EQ(RestartManager::stepOf(avail[0]), 9);
    EXPECT_EQ(RestartManager::stepOf(avail[1]), 5);
    EXPECT_FALSE(fs::exists(rm.dirFor(1)));
}

// ------------------------------------------------ solver-backed fixtures

problems::Dmr testDmr(int maxLevel = 1) {
    problems::Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = maxLevel;
    return problems::Dmr(o);
}

void expectBitwiseEqual(const CroccoAmr& a, const CroccoAmr& b) {
    ASSERT_EQ(a.finestLevel(), b.finestLevel());
    EXPECT_EQ(a.stepCount(), b.stepCount());
    EXPECT_EQ(a.time(), b.time());
    for (int lev = 0; lev <= a.finestLevel(); ++lev) {
        ASSERT_EQ(a.boxArray(lev), b.boxArray(lev));
        for (int n = 0; n < core::NCONS; ++n)
            EXPECT_EQ(amr::MultiFab::l2Diff(a.state(lev), b.state(lev), n), 0.0)
                << "lev " << lev << " comp " << n;
    }
}

TEST(RestartManager, AtomicWriteLeavesNoStagingDirBehind) {
    TmpRoot root("crocco_rm_atomic");
    auto dmr = testDmr(0);
    CroccoAmr solver(dmr.geometry(), dmr.solverConfig(core::CodeVersion::V20),
                     dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    RestartManager rm(root.path);
    const std::string dir =
        rm.write(0, [&](const std::string& d) { solver.writeCheckpoint(d); });
    EXPECT_TRUE(fs::exists(dir + "/header.txt"));
    EXPECT_FALSE(fs::exists(dir + ".writing"));
    EXPECT_TRUE(RestartManager::verify(dir));
}

TEST(RestartManager, VerifyNamesFlippedByteAndTruncation) {
    TmpRoot root("crocco_rm_verify");
    auto dmr = testDmr(0);
    CroccoAmr solver(dmr.geometry(), dmr.solverConfig(core::CodeVersion::V20),
                     dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.writeCheckpoint(root.path + "/chk");
    ASSERT_TRUE(RestartManager::verify(root.path + "/chk"));

    // Flip one byte in the level payload: CRC must catch it.
    const std::string bin = root.path + "/chk/level0.bin";
    {
        std::fstream f(bin, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(100);
        char c = 0;
        f.seekg(100).read(&c, 1);
        c = static_cast<char>(c ^ 0x01);
        f.seekp(100).write(&c, 1);
    }
    std::string why;
    EXPECT_FALSE(RestartManager::verify(root.path + "/chk", &why));
    EXPECT_NE(why.find("CRC32"), std::string::npos);
    EXPECT_NE(why.find("level0.bin"), std::string::npos);

    // A truncated level file fails on length before checksum.
    fs::resize_file(bin, fs::file_size(bin) - 8);
    EXPECT_FALSE(RestartManager::verify(root.path + "/chk", &why));
    EXPECT_NE(why.find("level0.bin"), std::string::npos);
}

TEST(Checkpoint, TruncatedLevelFileThrowsNamingLevelAndFile) {
    // Satellite regression: a short read / EOF mid-record must raise
    // CheckpointCorruption naming the truncated file, not garbage state.
    TmpRoot root("crocco_ckpt_trunc");
    auto dmr = testDmr(1);
    const auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    CroccoAmr a(dmr.geometry(), cfg, dmr.mapping());
    a.init(dmr.initialCondition(), dmr.boundaryConditions());
    a.evolve(2);
    const std::string dir = root.path + "/chk";
    a.writeCheckpoint(dir);
    ASSERT_GE(a.finestLevel(), 1);
    const std::string bin = dir + "/level1.bin";
    fs::resize_file(bin, fs::file_size(bin) / 2);

    CroccoAmr b(dmr.geometry(), cfg, dmr.mapping());
    try {
        b.readCheckpoint(dir, dmr.initialCondition(), dmr.boundaryConditions());
        FAIL() << "expected CheckpointCorruption";
    } catch (const CheckpointCorruption& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("level1.bin"), std::string::npos) << msg;
        EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    }
    // Phase-1 verification failed, so no solver state was touched.
    EXPECT_EQ(b.stepCount(), 0);
}

TEST(Checkpoint, ReadsLegacyV1Format) {
    // Strip the v2 CRC/length columns out of a fresh checkpoint's header and
    // mark it version 1: readCheckpoint must still restore it bit-exactly.
    TmpRoot root("crocco_ckpt_v1");
    auto dmr = testDmr(1);
    const auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    CroccoAmr a(dmr.geometry(), cfg, dmr.mapping());
    a.init(dmr.initialCondition(), dmr.boundaryConditions());
    a.evolve(2);
    const std::string dir = root.path + "/chk";
    a.writeCheckpoint(dir);

    std::ifstream in(dir + "/header.txt");
    std::ostringstream v1;
    std::string line;
    std::getline(in, line); // magic + version
    v1 << "crocco-checkpoint 1\n";
    std::getline(in, line); // time step finest
    v1 << line << '\n';
    int finest = 0;
    {
        std::istringstream ls(line);
        double t;
        int s;
        ls >> t >> s >> finest;
    }
    for (int lev = 0; lev <= finest; ++lev) {
        std::getline(in, line); // nboxes crc nbytes  ->  nboxes
        std::istringstream ls(line);
        int nboxes = 0;
        ls >> nboxes;
        v1 << nboxes << '\n';
        for (int i = 0; i < nboxes; ++i) {
            std::getline(in, line);
            v1 << line << '\n';
        }
    }
    in.close();
    std::ofstream(dir + "/header.txt") << v1.str();

    ASSERT_TRUE(RestartManager::verify(dir)); // v1 passes vacuously
    CroccoAmr b(dmr.geometry(), cfg, dmr.mapping());
    b.readCheckpoint(dir, dmr.initialCondition(), dmr.boundaryConditions());
    expectBitwiseEqual(a, b);
}

TEST(RestartManager, FallsBackToPreviousGoodCheckpointOnByteFlip) {
    // Acceptance: flip one byte in the newest checkpoint's level data. The
    // manager must detect the CRC mismatch, skip it, and restore the previous
    // good checkpoint bitwise-equal to the state at its write time.
    TmpRoot root("crocco_rm_fallback");
    auto dmr = testDmr(1);
    const auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    RestartManager rm(root.path, 2);

    solver.evolve(2);
    rm.write(solver.stepCount(),
             [&](const std::string& d) { solver.writeCheckpoint(d); });
    // Reference copy of the good checkpoint's state, loaded back right now.
    CroccoAmr ref(dmr.geometry(), cfg, dmr.mapping());
    ref.readCheckpoint(rm.dirFor(2), dmr.initialCondition(),
                       dmr.boundaryConditions());

    solver.evolve(2);
    rm.write(solver.stepCount(),
             [&](const std::string& d) { solver.writeCheckpoint(d); });

    // Corrupt the newest checkpoint with a single flipped bit.
    const std::string bin = rm.dirFor(4) + "/level0.bin";
    std::fstream f(bin, std::ios::in | std::ios::out | std::ios::binary);
    char c = 0;
    f.seekg(64).read(&c, 1);
    c = static_cast<char>(c ^ 0x80);
    f.seekp(64).write(&c, 1);
    f.close();
    ASSERT_FALSE(RestartManager::verify(rm.dirFor(4)));

    CroccoAmr restored(dmr.geometry(), cfg, dmr.mapping());
    const std::string used = rm.restoreLatest([&](const std::string& d) {
        restored.readCheckpoint(d, dmr.initialCondition(),
                                dmr.boundaryConditions());
    });
    EXPECT_EQ(used, rm.dirFor(2));
    expectBitwiseEqual(ref, restored);
}

TEST(RestartManager, RestoreLatestThrowsListingAllCorruptCheckpoints) {
    TmpRoot root("crocco_rm_allbad");
    RestartManager rm(root.path, 2);
    auto badWriter = [](const std::string& dir) {
        fs::create_directories(dir);
        std::ofstream(dir + "/header.txt") << "crocco-checkpoint 2\n0 0 0\n";
    };
    rm.write(1, badWriter);
    rm.write(2, badWriter);
    try {
        rm.restoreLatest([](const std::string&) {});
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("chk000001"), std::string::npos) << msg;
        EXPECT_NE(msg.find("chk000002"), std::string::npos) << msg;
    }
}

TEST(Checkpoint, RoundTripAcrossRegridBoundaryMatchesUninterruptedRun) {
    // Satellite: checkpoint lands right before a regrid fires (regridFreq 3,
    // checkpoint at step 3, so the restored run's first step regrids).
    // The restored run must be bitwise identical to the uninterrupted one.
    auto dmr = testDmr(1);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.regridFreq = 3;

    CroccoAmr full(dmr.geometry(), cfg, dmr.mapping());
    full.init(dmr.initialCondition(), dmr.boundaryConditions());
    full.evolve(5);
    const auto fullTotals = full.conservedTotals();

    TmpRoot root("crocco_ckpt_regrid");
    CroccoAmr first(dmr.geometry(), cfg, dmr.mapping());
    first.init(dmr.initialCondition(), dmr.boundaryConditions());
    first.evolve(3);
    first.writeCheckpoint(root.path + "/chk");

    CroccoAmr second(dmr.geometry(), cfg, dmr.mapping());
    second.readCheckpoint(root.path + "/chk", dmr.initialCondition(),
                          dmr.boundaryConditions());
    second.evolve(2); // regrids immediately: step 3 % 3 == 0

    expectBitwiseEqual(full, second);
    const auto totals = second.conservedTotals();
    for (int n = 0; n < core::NCONS; ++n)
        EXPECT_EQ(totals[static_cast<std::size_t>(n)],
                  fullTotals[static_cast<std::size_t>(n)]);
}

TEST(Evolve, AutoRecoversFromDivergenceViaCheckpoint) {
    // With no retry budget, a one-shot corruption turns straight into
    // SolverDivergence; evolve() must restore the newest checkpoint and
    // replay (the transient fault is spent, so the replay runs clean).
    TmpRoot root("crocco_rm_recover");
    auto dmr = testDmr(0);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.guard.maxRetries = 0;
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());

    FaultInjector inj(77);
    inj.armCellCorruption(3, FaultInjector::Corruption::Infinity);
    solver.setFaultInjector(&inj);

    RestartManager rm(root.path, 2);
    CroccoAmr::EvolveOptions opts;
    opts.restart = &rm;
    opts.checkpointEvery = 2;
    solver.evolve(4, opts);

    EXPECT_EQ(solver.stepCount(), 4);
    EXPECT_EQ(solver.recoveryCount(), 1);
    EXPECT_EQ(solver.rollbackCount(), 0); // guard had no retry budget
    EXPECT_EQ(inj.faultsFired(), 1);
    // Matches a run that never failed at all.
    CroccoAmr clean(dmr.geometry(), cfg, dmr.mapping());
    clean.init(dmr.initialCondition(), dmr.boundaryConditions());
    clean.evolve(4);
    expectBitwiseEqual(clean, solver);
}

TEST(Evolve, RethrowsWhenRecoveryBudgetExhausted) {
    TmpRoot root("crocco_rm_budget");
    auto dmr = testDmr(0);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.guard.maxRetries = 0;
    CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());

    FaultInjector inj(78);
    inj.armPersistentCorruption(2); // re-fires after every restore
    solver.setFaultInjector(&inj);

    RestartManager rm(root.path, 2);
    CroccoAmr::EvolveOptions opts;
    opts.restart = &rm;
    opts.checkpointEvery = 1;
    opts.maxRecoveries = 2;
    EXPECT_THROW(solver.evolve(4, opts), SolverDivergence);
    EXPECT_EQ(solver.recoveryCount(), 2);
    EXPECT_EQ(solver.stepCount(), 2); // rolled back to the pre-step snapshot
}

} // namespace
} // namespace crocco::resilience
