#include "io/ParmParse.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace crocco::io {
namespace {

TEST(ParmParse, ParsesTypedValuesAndComments) {
    ParmParse pp;
    pp.parseText(R"(
# CRoCCo input deck
amr.max_level = 2          # three levels total
crocco.cfl = 0.45
run.name = dmr_summit
run.enabled = true
geom.prob_hi = 4.0 1.0 2.0
)");
    EXPECT_EQ(pp.getInt("amr.max_level"), 2);
    EXPECT_DOUBLE_EQ(pp.getDouble("crocco.cfl"), 0.45);
    EXPECT_EQ(pp.getString("run.name"), "dmr_summit");
    bool b = false;
    EXPECT_TRUE(pp.query("run.enabled", b));
    EXPECT_TRUE(b);
    std::vector<double> hi;
    EXPECT_TRUE(pp.queryArr("geom.prob_hi", hi));
    ASSERT_EQ(hi.size(), 3u);
    EXPECT_DOUBLE_EQ(hi[1], 1.0);
}

TEST(ParmParse, QueryLeavesDefaultWhenAbsentGetThrows) {
    ParmParse pp;
    pp.parseText("a.b = 1\n");
    int v = 42;
    EXPECT_FALSE(pp.query("missing", v));
    EXPECT_EQ(v, 42);
    EXPECT_THROW(pp.getInt("missing"), std::runtime_error);
    EXPECT_TRUE(pp.contains("a.b"));
    EXPECT_FALSE(pp.contains("missing"));
}

TEST(ParmParse, LaterDefinitionsOverride) {
    ParmParse pp;
    pp.parseText("x = 1\n");
    const char* argv[] = {"x=2"};
    pp.parseArgs(1, argv);
    EXPECT_EQ(pp.getInt("x"), 2);
}

TEST(ParmParse, RejectsMalformedLines) {
    ParmParse pp;
    EXPECT_THROW(pp.parseText("no equals sign here\n"), std::runtime_error);
    EXPECT_THROW(pp.parseText("= 3\n"), std::runtime_error);
    EXPECT_THROW(pp.parseText("key =\n"), std::runtime_error);
}

TEST(ParmParse, TracksUnusedKeys) {
    ParmParse pp;
    pp.parseText("used.key = 1\ntypo.key = 2\n");
    int v;
    pp.query("used.key", v);
    const auto unused = pp.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo.key");
}

TEST(ParmParse, FileRoundTrip) {
    const char* path = "/tmp/crocco_deck_test.inputs";
    std::ofstream(path) << "amr.blocking_factor = 8\n";
    ParmParse pp;
    pp.parseFile(path);
    EXPECT_EQ(pp.getInt("amr.blocking_factor"), 8);
    EXPECT_THROW(ParmParse().parseFile("/tmp/nope.inputs"), std::runtime_error);
    std::remove(path);
}

TEST(ParmParse, MakeConfigAppliesPaperDeckKeys) {
    // The paper's configuration (§III-B/V-C): blocking factor 8, max grid
    // 128, 3 levels, curvilinear interpolation, WENO-SYMBO.
    ParmParse pp;
    pp.parseText(R"(
amr.max_level = 2
amr.blocking_factor = 8
amr.max_grid_size = 128
amr.ref_ratio = 2
amr.regrid_int = 10
crocco.cfl = 0.5
crocco.weno_scheme = symbo
crocco.reconstruction = characteristic
crocco.interp = curvilinear
crocco.tagging = density
crocco.tag_threshold = 0.3
crocco.les_cs = 0.17
gas.gamma = 1.4
)");
    const auto cfg = pp.makeConfig();
    EXPECT_EQ(cfg.amrInfo.maxLevel, 2);
    EXPECT_EQ(cfg.amrInfo.blockingFactor, 8);
    EXPECT_EQ(cfg.amrInfo.maxGridSize, 128);
    EXPECT_EQ(cfg.amrInfo.refRatio, amr::IntVect(2));
    EXPECT_EQ(cfg.regridFreq, 10);
    EXPECT_DOUBLE_EQ(cfg.cfl, 0.5);
    EXPECT_EQ(cfg.scheme, core::WenoScheme::Symbo);
    EXPECT_EQ(cfg.recon, core::Reconstruction::CharacteristicWise);
    EXPECT_EQ(cfg.interp, core::InterpChoice::Curvilinear);
    EXPECT_EQ(cfg.tagging.criterion, core::TagCriterion::DensityGradient);
    EXPECT_DOUBLE_EQ(cfg.tagging.threshold, 0.3);
    EXPECT_DOUBLE_EQ(cfg.sgs.cs, 0.17);
    EXPECT_TRUE(pp.unusedKeys().empty());
}

TEST(ParmParse, MakeConfigRejectsUnknownEnumValues) {
    ParmParse pp;
    pp.parseText("crocco.weno_scheme = weno9\n");
    EXPECT_THROW(pp.makeConfig(), std::runtime_error);
}

TEST(ParmParse, MakeConfigKeepsDefaultsForUnsetKeys) {
    ParmParse pp;
    pp.parseText("crocco.cfl = 0.3\n");
    core::CroccoAmr::Config defaults;
    defaults.amrInfo.maxLevel = 1;
    const auto cfg = pp.makeConfig(defaults);
    EXPECT_EQ(cfg.amrInfo.maxLevel, 1);
    EXPECT_DOUBLE_EQ(cfg.cfl, 0.3);
}

TEST(ParmParse, MakeConfigAppliesAndValidatesCommKeys) {
    ParmParse pp;
    pp.parseText(R"(
comm.timeout = 12.5
comm.verify = true
comm.max_retransmits = 6
)");
    const auto cfg = pp.makeConfig();
    EXPECT_DOUBLE_EQ(cfg.commTimeout, 12.5);
    EXPECT_TRUE(cfg.commVerify);
    EXPECT_EQ(cfg.commMaxRetransmits, 6);

    // Defaults: 0 / off, meaning "keep SimComm's built-in policy".
    ParmParse empty;
    const auto dflt = empty.makeConfig();
    EXPECT_DOUBLE_EQ(dflt.commTimeout, 0.0);
    EXPECT_FALSE(dflt.commVerify);
    EXPECT_EQ(dflt.commMaxRetransmits, 0);

    ParmParse badTimeout;
    badTimeout.parseText("comm.timeout = -1.0\n");
    EXPECT_THROW(badTimeout.makeConfig(), std::runtime_error);
    ParmParse badRtx;
    badRtx.parseText("comm.max_retransmits = -2\n");
    EXPECT_THROW(badRtx.makeConfig(), std::runtime_error);
}

} // namespace
} // namespace crocco::io
