#include "io/Plotfile.hpp"

#include "problems/Canonical.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace crocco::io {
namespace {

struct PlotFixture : ::testing::Test {
    std::unique_ptr<core::CroccoAmr> solver;

    void SetUp() override {
        problems::SodTube sod(32);
        auto cfg = sod.solverConfig(true);
        solver = std::make_unique<core::CroccoAmr>(sod.geometry(), cfg,
                                                   sod.mapping());
        solver->init(sod.initialCondition(), sod.boundaryConditions());
        solver->evolve(2);
    }
    void TearDown() override {
        for (const auto& f : {"/tmp/pf_lev0.vtk", "/tmp/pf_lev1.vtk",
                              "/tmp/pf.csv"})
            std::filesystem::remove(f);
    }
};

TEST_F(PlotFixture, VtkFilesAreWellFormedPerLevel) {
    writeVtk(*solver, "/tmp/pf");
    for (int lev = 0; lev <= solver->finestLevel(); ++lev) {
        const std::string path = "/tmp/pf_lev" + std::to_string(lev) + ".vtk";
        std::ifstream is(path);
        ASSERT_TRUE(is.good()) << path;
        std::string line;
        std::getline(is, line);
        EXPECT_EQ(line, "# vtk DataFile Version 3.0");
        // The file must declare exactly 8 points and 1 hexahedron per cell.
        std::stringstream buf;
        buf << is.rdbuf();
        const std::string body = buf.str();
        const auto ncells = solver->state(lev).numPts();
        EXPECT_NE(body.find("POINTS " + std::to_string(8 * ncells)),
                  std::string::npos);
        EXPECT_NE(body.find("CELL_DATA " + std::to_string(ncells)),
                  std::string::npos);
        for (const auto& name : fieldNames())
            EXPECT_NE(body.find("SCALARS " + name), std::string::npos);
    }
}

TEST_F(PlotFixture, CsvCoversDomainOnceAtFinestData) {
    writeCsv(*solver, "/tmp/pf.csv");
    std::ifstream is("/tmp/pf.csv");
    std::string header;
    std::getline(is, header);
    EXPECT_EQ(header, "x,y,z,level,rho,u,v,w,p");
    // Row count = finest-covering decomposition: fine cells + uncovered
    // coarse cells.
    std::int64_t rows = 0;
    std::string line;
    while (std::getline(is, line)) ++rows;
    std::int64_t expected = solver->state(0).numPts();
    if (solver->finestLevel() >= 1) {
        const auto finePts = solver->state(1).numPts();
        expected += finePts - finePts / 8; // fine replaces covered coarse
    }
    EXPECT_EQ(rows, expected);
    // Spot-check physical plausibility of a data row.
    std::ifstream is2("/tmp/pf.csv");
    std::getline(is2, header);
    double x, y, z, rho, u, v, w, p;
    int lev;
    char c;
    is2 >> x >> c >> y >> c >> z >> c >> lev >> c >> rho >> c >> u >> c >> v >>
        c >> w >> c >> p;
    EXPECT_GT(rho, 0.0);
    EXPECT_GT(p, 0.0);
}

} // namespace
} // namespace crocco::io
