#include "io/Plotfile.hpp"

#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace crocco::io {
namespace {

TEST(PlotfileCurvilinear, VtkVerticesFollowTheWavyGrid) {
    // On the curvilinear DMR grid the exported cell vertices must be the
    // *physical* (curved) positions, not lattice positions.
    problems::Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = 0;
    o.curvilinear = true;
    o.waveAmplitude = 0.05;
    problems::Dmr dmr(o);
    core::CroccoAmr solver(dmr.geometry(), dmr.solverConfig(core::CodeVersion::V11),
                           dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    writeVtk(solver, "/tmp/pfc");

    std::ifstream is("/tmp/pfc_lev0.vtk");
    ASSERT_TRUE(is.good());
    std::string line;
    while (std::getline(is, line) && line.rfind("POINTS", 0) != 0) {
    }
    // Read the vertex cloud; x must span ~[0,4] and some interior vertex
    // must be displaced off the uniform lattice by the wave.
    double x, y, z, xmin = 1e30, xmax = -1e30;
    bool sawCurved = false;
    long count = 0;
    while (is >> x >> y >> z) {
        xmin = std::min(xmin, x);
        xmax = std::max(xmax, x);
        // Uniform lattice x-positions are multiples of 4/32 = 0.125 (cell
        // corners); a curvilinear vertex away from the boundary lands off
        // that lattice.
        const double r = std::fmod(x, 0.125);
        if (std::min(r, 0.125 - r) > 0.01 && y > 0.2 && y < 0.8)
            sawCurved = true;
        if (++count >= 8 * 32 * 8 * 8) break;
    }
    EXPECT_LT(xmin, 0.15);
    EXPECT_GT(xmax, 3.8);
    EXPECT_TRUE(sawCurved);
    std::filesystem::remove("/tmp/pfc_lev0.vtk");
}

TEST(PlotfileCurvilinear, CsvCoordinatesArePhysical) {
    problems::Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = 0;
    problems::Dmr dmr(o);
    core::CroccoAmr solver(dmr.geometry(), dmr.solverConfig(core::CodeVersion::V11),
                           dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    writeCsv(solver, "/tmp/pfc.csv");

    std::ifstream is("/tmp/pfc.csv");
    std::string header;
    std::getline(is, header);
    double xmax = 0, rhoMin = 1e30, rhoMax = -1e30;
    std::string line;
    while (std::getline(is, line)) {
        std::replace(line.begin(), line.end(), ',', ' ');
        std::istringstream ls(line);
        double x, y, z, rho, u, v, w, p;
        int lev;
        ls >> x >> y >> z >> lev >> rho >> u >> v >> w >> p;
        xmax = std::max(xmax, x);
        rhoMin = std::min(rhoMin, rho);
        rhoMax = std::max(rhoMax, rho);
        EXPECT_GT(p, 0.0);
    }
    EXPECT_GT(xmax, 3.5); // physical domain is 4 long, not 32
    EXPECT_NEAR(rhoMin, 1.4, 1e-9);  // pre-shock
    EXPECT_NEAR(rhoMax, 8.0, 1e-9);  // post-shock (initial condition)
    std::filesystem::remove("/tmp/pfc.csv");
}

} // namespace
} // namespace crocco::io
