// crocco-analyze test suite: runs the analyzer library over the fixture
// tree in tests/tools/fixtures (a miniature repo with one positive and one
// negative case per rule) and pins the exact findings. The fixture files
// are lexed, never compiled.

#include "Checks.hpp"
#include "Report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace crocco::analyze;
namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read fixture " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Load a project the same way the crocco-analyze CLI does: every C++ file
/// under <root>/src plus docs/*.md, paths kept root-relative.
Project loadProject(const fs::path& root) {
    Project project;
    project.root = root.generic_string();
    std::vector<fs::path> sources;
    for (const auto& e : fs::recursive_directory_iterator(root / "src")) {
        const std::string ext = e.path().extension().string();
        if (e.is_regular_file() && (ext == ".cpp" || ext == ".hpp"))
            sources.push_back(e.path());
    }
    std::sort(sources.begin(), sources.end());
    for (const fs::path& p : sources) {
        SourceFile sf;
        sf.lexed = lex(fs::relative(p, root).generic_string(), slurp(p));
        sf.outline = buildOutline(sf.lexed);
        sf.suppressions = parseSuppressions(sf.lexed);
        project.files.push_back(std::move(sf));
    }
    if (fs::is_directory(root / "docs"))
        for (const auto& e : fs::directory_iterator(root / "docs"))
            if (e.path().extension() == ".md")
                project.docFiles[fs::relative(e.path(), root).generic_string()] =
                    slurp(e.path());
    return project;
}

const Project& fixtureProject() {
    static const Project project = loadProject(ANALYZE_FIXTURES);
    return project;
}

const std::vector<Finding>& fixtureFindings() {
    static const std::vector<Finding> findings =
        runChecks(fixtureProject(), {});
    return findings;
}

std::vector<Finding> findingsFor(const std::string& rule,
                                 bool suppressed = false) {
    std::vector<Finding> out;
    for (const Finding& f : fixtureFindings())
        if (f.rule == rule && f.suppressed == suppressed) out.push_back(f);
    return out;
}

int countIn(const std::vector<Finding>& fs, const std::string& file) {
    int n = 0;
    for (const Finding& f : fs)
        if (f.file == file) ++n;
    return n;
}

} // namespace

// ------------------------------------------------------------------
// Lexer: the comment/string blindness the grep lint never had.
// ------------------------------------------------------------------

TEST(Lexer, StripsCommentsStringsAndRawStrings) {
    const LexedFile lf = lex("t.cpp",
                             "int a; // trailing .data()\n"
                             "/* block isend( */ int b;\n"
                             "const char* s = \"v.data()\";\n"
                             "const char* r = R\"(x.data())\";\n");
    for (const Token& t : lf.tokens) {
        EXPECT_NE(t.text, "data");
        EXPECT_NE(t.text, "isend");
        if (t.kind == TokKind::String) {
            // literal text is preserved in the token, but as TokKind::String
            EXPECT_TRUE(t.text.find("data") != std::string::npos);
        }
    }
    ASSERT_EQ(lf.comments.size(), 2u);
    EXPECT_TRUE(lf.comments[0].text.find(".data()") != std::string::npos);
    EXPECT_TRUE(lf.comments[1].block);
}

TEST(Lexer, DirectivesAreCapturedNotTokenized) {
    const LexedFile lf = lex("t.cpp",
                             "#include <thread>\n"
                             "// #include <omp.h>\n"
                             "#pragma omp parallel\n"
                             "int x;\n");
    ASSERT_EQ(lf.directives.size(), 2u); // the commented one must not count
    EXPECT_EQ(lf.directives[0].text, "include <thread>");
    EXPECT_EQ(lf.directives[1].text, "pragma omp parallel");
    for (const Token& t : lf.tokens) EXPECT_NE(t.text, "thread");
}

TEST(Outline, FindsFunctionsAndCalls) {
    const LexedFile lf = lex("t.cpp",
                             "void outer(int n) {\n"
                             "    inner(n + 1, g(n));\n"
                             "}\n");
    const Outline o = buildOutline(lf);
    ASSERT_EQ(o.functions.size(), 1u);
    EXPECT_EQ(o.functions[0].name, "outer");
    ASSERT_EQ(o.calls.size(), 2u); // inner(...) and g(...)
    EXPECT_EQ(o.calls[0].name, "inner");
    ASSERT_EQ(o.calls[0].argSpans.size(), 2u);
    EXPECT_EQ(o.calls[1].name, "g");
}

// ------------------------------------------------------------------
// R1–R7 on the fixture tree: exact counts, positive and negative files.
// ------------------------------------------------------------------

TEST(Rules, R1RawPointerEscapes) {
    const auto r1 = findingsFor("R1");
    ASSERT_EQ(r1.size(), 1u);
    EXPECT_EQ(r1[0].file, "src/core/R1Pos.cpp");
    EXPECT_EQ(countIn(r1, "src/core/R1Neg.cpp"), 0);
}

TEST(Rules, R2ThreadingPrimitives) {
    const auto r2 = findingsFor("R2");
    EXPECT_EQ(r2.size(), 3u); // include + pragma + std::thread
    EXPECT_EQ(countIn(r2, "src/core/R2Pos.cpp"), 3);
    EXPECT_EQ(countIn(r2, "src/core/R2Neg.cpp"), 0);
    EXPECT_EQ(countIn(r2, "src/gpu/ThreadPool.cpp"), 0); // owner
}

TEST(Rules, R3DefaultedGhostCounts) {
    const auto r3 = findingsFor("R3");
    EXPECT_EQ(r3.size(), 2u);
    EXPECT_EQ(countIn(r3, "src/core/R3Pos.hpp"), 2);
    EXPECT_EQ(countIn(r3, "src/core/R3Neg.cpp"), 0); // .cpp out of scope
}

TEST(Rules, R4SerialLoopInKernelFile) {
    const auto r4 = findingsFor("R4");
    ASSERT_EQ(r4.size(), 1u);
    EXPECT_EQ(r4[0].file, "src/core/Weno.cpp");
    EXPECT_EQ(countIn(r4, "src/core/R4Neg.cpp"), 0);
}

TEST(Rules, R5PerFileParity) {
    const auto r5 = findingsFor("R5");
    ASSERT_EQ(r5.size(), 1u);
    EXPECT_EQ(r5[0].file, "src/core/R5Pos.cpp");
    // The documented blind spot: orphaned Begin + orphaned End in different
    // functions of one file balances the per-file count. R5 stays silent —
    // that is exactly what A2 exists to catch (see ExchangeProtocol below).
    EXPECT_EQ(countIn(r5, "src/core/R5Blind.cpp"), 0);
}

TEST(Rules, R6RawNonblockingPosts) {
    const auto r6 = findingsFor("R6");
    EXPECT_EQ(r6.size(), 2u); // isend + irecv
    EXPECT_EQ(countIn(r6, "src/core/R6Pos.cpp"), 2);
    EXPECT_EQ(countIn(r6, "src/core/R6Neg.cpp"), 0);
}

TEST(Rules, R7OpenCodedRk3Triple) {
    const auto r7 = findingsFor("R7");
    EXPECT_EQ(r7.size(), 2u); // mult(Rk3::...) + saxpy(..., Rk3::...)
    EXPECT_EQ(countIn(r7, "src/core/R7Pos.cpp"), 2);
    EXPECT_EQ(countIn(r7, "src/core/Rk3.cpp"), 0); // owner
}

// ------------------------------------------------------------------
// A1 — kernel dataflow
// ------------------------------------------------------------------

TEST(Flow, A1ShiftedWriteReadHazard) {
    const auto a1 = findingsFor("A1");
    EXPECT_EQ(a1.size(), 4u);
    EXPECT_EQ(countIn(a1, "src/core/A1Shift.cpp"), 1);
    EXPECT_EQ(countIn(a1, "src/core/A1Neg.cpp"), 0);
}

TEST(Flow, A1CapturedStateMutation) {
    const auto a1 = findingsFor("A1");
    // One direct member mutation, one impure-local-lambda call.
    EXPECT_EQ(countIn(a1, "src/core/A1Mutate.cpp"), 2);
}

TEST(Flow, A1TaskKernelSharedWrite) {
    const auto a1 = findingsFor("A1");
    // acc(0,0,0) flagged; the task-derived and task-conditioned writes not.
    EXPECT_EQ(countIn(a1, "src/core/A1Task.cpp"), 1);
    for (const Finding& f : a1) {
        if (f.file == "src/core/A1Task.cpp") {
            EXPECT_TRUE(f.message.find("'acc'") != std::string::npos)
                << f.message;
        }
    }
}

// ------------------------------------------------------------------
// A2 — exchange protocol (the R5 blind-spot closer)
// ------------------------------------------------------------------

TEST(Flow, A2ExchangeProtocol) {
    const auto a2 = findingsFor("A2");
    EXPECT_EQ(a2.size(), 3u);
    EXPECT_EQ(countIn(a2, "src/core/R5Pos.cpp"), 1);
    // The regression case R5 cannot see: both halves flagged per-function.
    EXPECT_EQ(countIn(a2, "src/core/R5Blind.cpp"), 2);
    // *Begin/*End forwarders intentionally own one half each.
    EXPECT_EQ(countIn(a2, "src/core/A2Forwarder.cpp"), 0);
}

// ------------------------------------------------------------------
// A3 — deck-key registry
// ------------------------------------------------------------------

TEST(Flow, A3DeckKeys) {
    const auto keys = collectDeckKeys(fixtureProject());
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0].key, "solver.alpha");
    EXPECT_EQ(keys[1].key, "solver.beta");

    const auto a3 = findingsFor("A3");
    ASSERT_EQ(a3.size(), 2u);
    // solver.beta: queried, documented nowhere -> reported at the query.
    EXPECT_EQ(countIn(a3, "src/core/DeckKeys.cpp"), 1);
    // solver.dead_knob: documented, never queried -> reported in the doc.
    // (solver.md on the same page is a filename, not a key.)
    EXPECT_EQ(countIn(a3, "docs/keys.md"), 1);
    for (const Finding& f : a3) {
        if (f.file == "docs/keys.md") {
            EXPECT_TRUE(f.message.find("solver.dead_knob") != std::string::npos)
                << f.message;
        }
    }
}

// ------------------------------------------------------------------
// A4 — module layering
// ------------------------------------------------------------------

TEST(Flow, A4Layering) {
    const auto a4 = findingsFor("A4");
    EXPECT_EQ(a4.size(), 2u);
    EXPECT_EQ(countIn(a4, "src/gpu/A4Pos.cpp"), 1);   // gpu -> core
    EXPECT_EQ(countIn(a4, "src/core/A4Guard.cpp"), 1); // unguarded check/
    EXPECT_EQ(countIn(a4, "src/core/A4Neg.cpp"), 0);
    EXPECT_EQ(countIn(a4, "src/mesh/A4Ok.cpp"), 0);
}

// ------------------------------------------------------------------
// A5 — per-pair exchange loops (the aggregation-planner contract)
// ------------------------------------------------------------------

TEST(Flow, A5PerPairPostLoops) {
    const auto a5 = findingsFor("A5");
    EXPECT_EQ(a5.size(), 2u); // isend in a for body + irecv in a while body
    EXPECT_EQ(countIn(a5, "src/core/A5Pos.cpp"), 2);
    // Posts outside any loop are R6's business, not A5's.
    EXPECT_EQ(countIn(a5, "src/core/R6Pos.cpp"), 0);
    // The allow-file(R6) header in A5Pos waives R6 there but not A5.
    EXPECT_EQ(countIn(findingsFor("R6", /*suppressed=*/true),
                      "src/core/A5Pos.cpp"),
              2);
}

// ------------------------------------------------------------------
// A6 — guarded recovery sources (the SDC threat-model contract)
// ------------------------------------------------------------------

TEST(Flow, A6GuardedRecoverySources) {
    const auto a6 = findingsFor("A6");
    EXPECT_EQ(a6.size(), 2u); // unguarded writeCheckpoint + buddy store
    EXPECT_EQ(countIn(a6, "src/core/A6Pos.cpp"), 2);
    // Same-function stamp/verify/verifyMirror satisfies the rule, and a
    // store() off a non-buddy chain is not a recovery source at all.
    EXPECT_EQ(countIn(a6, "src/core/A6Ok.cpp"), 0);
    // The reviewed escape hatch: allow(A6) + reason suppresses the
    // bootstrap readCheckpoint in A6Pos.
    EXPECT_EQ(countIn(findingsFor("A6", /*suppressed=*/true),
                      "src/core/A6Pos.cpp"),
              1);
}

// ------------------------------------------------------------------
// Suppressions
// ------------------------------------------------------------------

TEST(Suppressions, InlineAllowCoversSameAndPreviousLine) {
    const auto suppressed = findingsFor("R1", /*suppressed=*/true);
    EXPECT_EQ(suppressed.size(), 2u);
    EXPECT_EQ(countIn(suppressed, "src/core/Suppressed.cpp"), 2);
    // And nothing unsuppressed leaks out of that file.
    EXPECT_EQ(countIn(findingsFor("R1"), "src/core/Suppressed.cpp"), 0);
}

TEST(Suppressions, AllowFileWithoutReasonIsMalformed) {
    for (const SourceFile& sf : fixtureProject().files) {
        if (sf.lexed.path == "src/core/BadSuppress.cpp") {
            ASSERT_EQ(sf.suppressions.malformed.size(), 1u);
            EXPECT_TRUE(sf.suppressions.fileRules.empty()); // not honoured
            return;
        }
    }
    FAIL() << "fixture src/core/BadSuppress.cpp not loaded";
}

// ------------------------------------------------------------------
// Totals + report formats
// ------------------------------------------------------------------

TEST(Report, ExactTotals) {
    int unsuppressed = 0, suppressed = 0;
    for (const Finding& f : fixtureFindings())
        (f.suppressed ? suppressed : unsuppressed)++;
    // Sum of the per-rule expectations above: R1=1 R2=3 R3=2 R4=1 R5=1
    // R6=2 R7=2 A1=4 A2=3 A3=2 A4=2 A5=2 A6=2; suppressed = 2 R1
    // (Suppressed.cpp) + 2 R6 (A5Pos.cpp allow-file) + 1 A6 (A6Pos.cpp
    // inline allow).
    EXPECT_EQ(unsuppressed, 27);
    EXPECT_EQ(suppressed, 5);
}

TEST(Report, SarifIsWellFormed) {
    std::ostringstream ss;
    writeSarif(ss, fixtureFindings());
    const std::string sarif = ss.str();
    EXPECT_TRUE(sarif.find("\"version\": \"2.1.0\"") != std::string::npos);
    EXPECT_TRUE(sarif.find("\"name\": \"crocco-analyze\"") != std::string::npos);
    EXPECT_TRUE(sarif.find("\"ruleId\": \"A2\"") != std::string::npos);
    EXPECT_TRUE(sarif.find("\"suppressions\"") != std::string::npos);
    // Structural sanity: braces/brackets balance outside string literals,
    // and every rule in the catalogue is advertised.
    int brace = 0, bracket = 0;
    bool inString = false;
    for (std::size_t i = 0; i < sarif.size(); ++i) {
        const char c = sarif[i];
        if (inString) {
            if (c == '\\') ++i;
            else if (c == '"') inString = false;
            continue;
        }
        if (c == '"') inString = true;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        else if (c == '[') ++bracket;
        else if (c == ']') --bracket;
        EXPECT_GE(brace, 0);
        EXPECT_GE(bracket, 0);
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
    EXPECT_FALSE(inString);
    for (const RuleInfo& r : ruleCatalog())
        EXPECT_TRUE(sarif.find("\"id\": \"" + r.id + "\"") != std::string::npos)
            << r.id;
}

TEST(Report, JsonListsEveryFinding) {
    std::ostringstream ss;
    writeJson(ss, fixtureFindings());
    const std::string json = ss.str();
    EXPECT_TRUE(json.find("\"counts\"") != std::string::npos);
    EXPECT_TRUE(json.find("\"suppressed\": true") != std::string::npos);
    EXPECT_TRUE(json.find("R5Blind.cpp") != std::string::npos);
}

TEST(Report, RuleSelectionRunsOnlyRequestedRules) {
    CheckOptions opt;
    opt.rules = {"A2"};
    const auto findings = runChecks(fixtureProject(), opt);
    ASSERT_FALSE(findings.empty());
    for (const Finding& f : findings) EXPECT_EQ(f.rule, "A2");
}
