// Fixture: R1 positive — a real raw-pointer escape.
#include <vector>

double firstValue(const std::vector<double>& v) {
    const double* p = v.data();
    return p[0];
}
