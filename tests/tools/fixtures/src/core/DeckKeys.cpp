// Fixture: A3 — solver.alpha is documented (docs/keys.md), solver.beta is
// queried but documented nowhere.
struct ParmParse {
    bool query(const char*, double&) const;
};

void readDeck(const ParmParse& pp, double& a, double& b) {
    pp.query("solver.alpha", a);
    pp.query("solver.beta", b);
}
