// Fixture: A6 negative — recovery sources that do consult the guard in
// the same function, plus a plain cache store that is not a recovery
// source at all (no buddy handle in the access chain).
struct Solver;
struct Buddy;
struct Guard;
struct Cache;
struct Opts {
    Buddy* buddy;
};

void guardedDump(Solver* s, Guard& g, double* state) {
    g.verify(state);
    s->writeCheckpoint("chk1");
}

void guardedMirror(Opts& opts, double* state) {
    if (!opts.buddy->verifyMirror()) return;
    opts.buddy->store(state, 1, 0, 0.0, nullptr);
}

void restampedRestore(Solver* s, Guard& g, double* state) {
    s->readCheckpoint("chk1");
    g.stamp(state, 1);
}

void plainCachePut(Cache* cache) {
    cache->store(42);
}
