// Fixture: A4 negative — guarded check internals, the always-on check
// interface, and a declared module edge (core -> amr).
#include "amr/MultiFab.hpp"
#include "check/Check.hpp"
#ifdef CROCCO_CHECK
#include "check/RaceDetector.hpp"
#endif

void layeredOk() {}
