// Fixture: a file-wide waiver with no reason is malformed, not honoured.
// crocco-analyze:allow-file(R2)
void nothingHere() {}
