// Fixture: A1 positive — in-place stencil: the kernel writes u at its own
// cell and reads u at neighbour cells in the same launch.
struct Box {};
struct View {
    double& operator()(int, int, int);
};
namespace gpu {
template <class F> void ParallelFor(const Box&, F&&) {}
}

void smooth(const Box& b, View u, View other) {
    gpu::ParallelFor(b, [&](int i, int j, int k) {
        u(i, j, k) = 0.5 * (u(i + 1, j, k) + u(i - 1, j, k));
        other(i, j, k) = 1.0; // negative: write-only view
    });
}
