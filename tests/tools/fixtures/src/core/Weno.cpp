// Fixture: R4 positive — serial iteration inside a kernel file.
// (forEachCell is declared elsewhere; fixtures are lexed, never compiled.)
struct Box {};

void fluxSweep(const Box& b) {
    forEachCell(b, [](int, int, int) {});
}
