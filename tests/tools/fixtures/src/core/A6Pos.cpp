// Fixture: A6 positive — checkpoint/mirror traffic with no FabGuard
// consultation in the same function. The third site shows the reviewed
// escape hatch: an allow(A6) with a reason suppresses the finding.
struct Solver;
struct Buddy;
struct Opts {
    Buddy* buddy;
};

void unguardedDump(Solver* s) {
    s->writeCheckpoint("chk0");
}

void unguardedMirror(Opts& opts, double* state) {
    opts.buddy->store(state, 1, 0, 0.0, nullptr);
}

void bootstrapRestore(Solver* s) {
    // crocco-analyze:allow(A6): fixture, cold start — no live state to guard
    s->readCheckpoint("chk0");
}
