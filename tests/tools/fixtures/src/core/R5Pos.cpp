// Fixture: R5 + A2 positive — a Begin with no End, same function.
struct Fab {};
void fillBoundaryBegin(Fab&);

void advance(Fab& U) {
    fillBoundaryBegin(U);
}
