// Fixture: R1 negative — .data() appears only in comments and strings.
// The old grep lint flagged all of these; the token-aware rule must not.
// A trailing mention: call buf.data() here?
/* block comment: p = v.data() */
const char* kMsg = "v.data() is forbidden";
const char* kRaw = R"(x.data() inside a raw string)";
