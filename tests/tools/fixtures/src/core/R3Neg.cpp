// Fixture: R3 negative — defaults in a .cpp (not an interface) and a
// non-zero default are both out of scope.
static void helper(int srcGrow = 0) { (void)srcGrow; }
void entry(int nGrow = 1) { helper(nGrow); }
