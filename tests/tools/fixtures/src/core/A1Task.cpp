// Fixture: A1 task-kernel rules. One shared-view write (positive), one
// task-derived write and one task-conditioned write (both negative).
struct View {
    double& operator()(int, int, int);
};
struct Fabs {
    View array(int);
};
namespace gpu {
template <class F> void ParallelForIndex(int, F&&) {}
}

void taskKernels(Fabs& S, View acc, View flag) {
    gpu::ParallelForIndex(4, [&](int task) {
        acc(0, 0, 0) += 1.0; // positive: every task hits the same cell
        auto u = S.array(task);
        u(1, 1, 1) = 0.0; // negative: view derived from the task id
        if (task == 0) {
            flag(0, 0, 0) = 1.0; // negative: task-conditioned drain
        }
    });
}
