// Fixture: the R5 false-negative regression (the reason A2 exists).
// Per-file counts balance (one Begin, one End), so the old per-file grep
// parity — and rule R5 — pass. But the Begin and End live in *different*
// functions with no protocol tying them together: A2 must flag both.
struct Fab {};
void fillBoundaryBegin(Fab&);
void fillBoundaryEnd(Fab&);

void postHalo(Fab& U) {
    fillBoundaryBegin(U);
}

void drainHalo(Fab& U) {
    fillBoundaryEnd(U);
}
