// Fixture: A1 positive — kernels mutating captured (shared) state.
struct Box {};
struct View {
    double& operator()(int, int, int);
};
struct Stats {
    int count = 0;
};
namespace gpu {
template <class F> void ParallelFor(const Box&, F&&) {}
}

void directMutation(const Box& b, View u, Stats& stats) {
    gpu::ParallelFor(b, [&](int i, int j, int k) {
        if (u(i, j, k) < 0.0) stats.count++;
    });
}

void lambdaMutation(const Box& b, View u, Stats& stats) {
    auto note = [&](int i) {
        ++stats.count;
        (void)i;
    };
    gpu::ParallelFor(b, [&](int i, int j, int k) {
        if (u(i, j, k) < 0.0) note(i);
        (void)j;
        (void)k;
    });
}
