// Fixture: R2 positive — threading primitives outside the ThreadPool.
#include <thread>

void runWorkers() {
#pragma omp parallel for
    for (int i = 0; i < 4; ++i) {
    }
    std::thread worker;
}
