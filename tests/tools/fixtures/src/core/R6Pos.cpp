// Fixture: R6 positive — raw nonblocking posts outside SimComm.
// (Comm is declared elsewhere; fixtures are lexed, never compiled.)
struct Comm;

void exchange(Comm* comm, double* buf) {
    comm->isend(buf, 8, 1);
    comm->irecv(buf, 8, 1);
}
