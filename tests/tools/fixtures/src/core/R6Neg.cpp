// Fixture: R6 negative — isend/irecv in comments and strings only.
// comm->isend(buf, n, dst) would be wrong here
/* comm->irecv(buf, n, src) */
const char* kDoc = "wrap isend( and irecv( in sendVerified";
