// Fixture: R4 negative — forEachCell outside the kernel files is fine.
struct Box {};

void diagnosticSweep(const Box& b) {
    forEachCell(b, [](int, int, int) {});
}
