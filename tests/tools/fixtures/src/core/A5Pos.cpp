// Fixture: A5 positive — per-pair nonblocking post loops. The allow-file
// below waives only R6 (the reviewed-raw-post rule); A5 must still flag
// the loops, because a waived post site can still be the one-message-per-
// box pattern the aggregation planner exists to remove.
// crocco-analyze:allow-file(R6): fixture models a reviewed raw-post site
struct Comm;

void exchangeAll(Comm* comm, double* buf, int npairs) {
    for (int p = 0; p < npairs; ++p) {
        comm->isend(buf, 8, p);
    }
    int q = 0;
    while (q < npairs) {
        comm->irecv(buf, 8, q);
        ++q;
    }
}
