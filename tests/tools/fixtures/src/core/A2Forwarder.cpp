// Fixture: A2 negative — *Begin/*End-named forwarders own one half of a
// split exchange on purpose.
struct Fab {};
void fillBoundaryBegin(Fab&);
void fillBoundaryEnd(Fab&);

void haloBegin(Fab& U) { fillBoundaryBegin(U); }
void haloEnd(Fab& U) { fillBoundaryEnd(U); }
