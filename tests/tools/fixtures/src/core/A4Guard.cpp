// Fixture: A4 positive — check/ internals included without the guard.
#include "check/RaceDetector.hpp"

void useDetector() {}
