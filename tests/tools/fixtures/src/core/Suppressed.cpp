// Fixture: inline suppressions — both placements must cover the finding.
#include <vector>

double sameLine(const std::vector<double>& v) {
    return v.data()[0]; // crocco-analyze:allow(R1): fixture, reviewed
}

double lineAbove(const std::vector<double>& v) {
    // crocco-analyze:allow(R1): fixture, reviewed
    return v.data()[1];
}
