// Fixture: R2 negative — threading mentioned only in comments/strings.
// #include <thread>  (commented out: must not count as a directive)
/* std::thread worker; */
const char* kHint = "std::thread is banned; use gpu::ParallelFor";
