#pragma once
// Fixture: R3 positive — defaulted ghost-count parameters in a header.
void copyGhost(int dstGrow = 0, int srcGrow = 0);
