// Fixture: R7 positive — the RK3 stage triple open-coded outside Rk3.cpp.
struct Fab {
    void mult(double, int, int);
};
struct Rk3 {
    static const double alpha[3];
    static const double beta[3];
};
void saxpy(Fab&, double, const Fab&);

void stage(Fab& U, const Fab& R, int s) {
    U.mult(Rk3::alpha[s], 0, 5);
    saxpy(U, Rk3::beta[s], R);
    U.mult(2.0, 0, 5); // negative: not an Rk3 coefficient
}
