// Fixture: A1 negative — the canonical clean shapes: gather stencil into a
// distinct output fab, same-cell read-modify-write, task-indexed fabs.
struct Box {};
struct View {
    double& operator()(int, int, int);
};
struct Fabs {
    View array(int);
};
namespace gpu {
template <class F> void ParallelFor(const Box&, F&&) {}
template <class F> void ParallelForIndex(int, F&&) {}
}

void cleanKernels(const Box& b, Fabs& S, View out, View in, View u, View d) {
    gpu::ParallelFor(b, [&](int i, int j, int k) {
        out(i, j, k) = 0.25 * (in(i + 1, j, k) + in(i - 1, j, k));
        u(i, j, k) += d(i, j, k);
    });
    gpu::ParallelForIndex(4, [&](int f) {
        auto w = S.array(f);
        w(1, 1, 1) = 0.0;
    });
}
