// Fixture: R7 negative — core/Rk3.cpp is the owner of the stage triple.
struct Fab {
    void mult(double, int, int);
};
struct Rk3 {
    static const double alpha[3];
    static const double beta[3];
};
void saxpy(Fab&, double, const Fab&);

void rk3StageUpdate(Fab& U, const Fab& R, int s) {
    U.mult(Rk3::alpha[s], 0, 5);
    saxpy(U, Rk3::beta[s], R);
}
