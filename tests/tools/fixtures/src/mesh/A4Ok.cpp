// Fixture: A4 negative — mesh -> amr is a declared dependency.
#include "amr/Geometry.hpp"

void meshOk() {}
