// Fixture: A4 positive — gpu reaching up into core breaks the layering.
#include "core/State.hpp"

void useState() {}
