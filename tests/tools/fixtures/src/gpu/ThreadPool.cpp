// Fixture: R2 negative — the ThreadPool implementation owns <thread>.
#include <thread>

void poolImpl() { std::thread t; }
