#include "problems/Riemann.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::problems {
namespace {

constexpr Real kGamma = 1.4;

TEST(ExactRiemann, SodStarRegionValues) {
    // Canonical Sod values (Toro, Table 4.2): p* = 0.30313, u* = 0.92745.
    const RiemannState L{1.0, 0.0, 1.0}, R{0.125, 0.0, 0.1};
    const auto contact = exactRiemann(L, R, kGamma, 0.5); // inside star region
    EXPECT_NEAR(contact.p, 0.30313, 1e-4);
    EXPECT_NEAR(contact.u, 0.92745, 1e-4);
}

TEST(ExactRiemann, SodWaveStructure) {
    const RiemannState L{1.0, 0.0, 1.0}, R{0.125, 0.0, 0.1};
    // Far left: undisturbed left state; far right: undisturbed right state.
    EXPECT_NEAR(exactRiemann(L, R, kGamma, -2.0).rho, 1.0, 1e-12);
    EXPECT_NEAR(exactRiemann(L, R, kGamma, 3.0).rho, 0.125, 1e-12);
    // Left star density (behind rarefaction) ~ 0.42632; right star (behind
    // shock) ~ 0.26557.
    EXPECT_NEAR(exactRiemann(L, R, kGamma, 0.5).rho, 0.42632, 1e-4);
    EXPECT_NEAR(exactRiemann(L, R, kGamma, 1.2).rho, 0.26557, 1e-4);
}

TEST(ExactRiemann, SymmetricCollisionHasZeroContactVelocity) {
    const RiemannState L{1.0, 1.0, 1.0}, R{1.0, -1.0, 1.0};
    const auto mid = exactRiemann(L, R, kGamma, 0.0);
    EXPECT_NEAR(mid.u, 0.0, 1e-10);
    EXPECT_GT(mid.p, 1.0); // compression raises pressure
    EXPECT_GT(mid.rho, 1.0);
}

TEST(ExactRiemann, SymmetricExpansionLowersPressure) {
    const RiemannState L{1.0, -0.5, 1.0}, R{1.0, 0.5, 1.0};
    const auto mid = exactRiemann(L, R, kGamma, 0.0);
    EXPECT_NEAR(mid.u, 0.0, 1e-10);
    EXPECT_LT(mid.p, 1.0);
    EXPECT_GT(mid.p, 0.0);
}

TEST(ExactRiemann, PureShockJumpSatisfiesRankineHugoniot) {
    // Mach 10 normal shock into quiescent gas (the DMR incident shock):
    // downstream/upstream density ratio = (gamma+1)M^2 / ((gamma-1)M^2 + 2).
    const Real M = 10.0;
    const Real rho1 = 1.4, p1 = 1.0, a1 = 1.0;
    const Real rhoRatio = (kGamma + 1) * M * M / ((kGamma - 1) * M * M + 2);
    const Real pRatio = 1 + 2 * kGamma / (kGamma + 1) * (M * M - 1);
    // Post-shock speed (lab frame, shock moving right at M*a1 into gas at
    // rest): u2 = 2 a1 (M^2 - 1) / ((gamma+1) M).
    const Real u2 = 2 * a1 * (M * M - 1) / ((kGamma + 1) * M);
    // Set up the Riemann problem whose right-moving shock is exactly that:
    // left = post-shock, right = quiescent.
    const RiemannState L{rho1 * rhoRatio, u2, p1 * pRatio};
    const RiemannState R{rho1, 0.0, p1};
    // Sample behind the shock.
    const auto behind = exactRiemann(L, R, kGamma, u2 * 0.5);
    EXPECT_NEAR(behind.rho, L.rho, 1e-6 * L.rho);
    EXPECT_NEAR(behind.p, L.p, 1e-6 * L.p);
    // The DMR post-shock state (rho = 8, p = 116.5) is this jump.
    EXPECT_NEAR(rho1 * rhoRatio, 8.0, 0.05);
    EXPECT_NEAR(p1 * pRatio, 116.5, 0.1);
    EXPECT_NEAR(u2, 8.25, 0.01);
}

} // namespace
} // namespace crocco::problems
