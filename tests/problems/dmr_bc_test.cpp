#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::problems {
namespace {

using amr::Box;
using amr::IntVect;
using amr::MultiFab;
using core::NCONS;
using core::UMY;
using core::URHO;

/// Direct tests of the DMR BC_Fill functor (§V-B): mixed Dirichlet/wall
/// bottom, moving-shock top, inflow left, outflow right.
struct DmrBcFixture : ::testing::Test {
    Dmr dmr{[] {
        Dmr::Options o;
        o.nx = 64;
        o.ny = 16;
        o.nz = 8;
        o.curvilinear = false; // uniform grid: physical x == 4 * xi
        return o;
    }()};
    MultiFab mf;
    amr::PhysBCFunct bc = dmr.boundaryConditions();

    void fill(Real time) {
        amr::BoxArray ba(dmr.geometry().domain());
        mf.define(ba, amr::DistributionMapping(ba, 1), NCONS, 4);
        // Interior: a recognizable linear field.
        auto a = mf.array(0);
        amr::forEachCell(mf.grownBox(0), [&](int i, int j, int k) {
            a(i, j, k, URHO) = 2.0 + 0.01 * i;
            a(i, j, k, core::UMX) = 1.0;
            a(i, j, k, UMY) = 0.5;
            a(i, j, k, core::UMZ) = 0.0;
            a(i, j, k, core::UEDEN) = 10.0;
        });
        bc(mf, dmr.geometry(), time);
    }
};

TEST_F(DmrBcFixture, ShockStatesAreExactRankineHugoniot) {
    const auto pre = Dmr::preShockState();
    const auto post = Dmr::postShockState();
    EXPECT_DOUBLE_EQ(pre[URHO], 1.4);
    EXPECT_DOUBLE_EQ(post[URHO], 8.0);
    // Post-shock speed 8.25 at 30 degrees below the x-axis.
    const Real u = post[core::UMX] / post[URHO];
    const Real v = post[UMY] / post[URHO];
    EXPECT_NEAR(std::hypot(u, v), 8.25, 1e-12);
    EXPECT_NEAR(v / u, -std::tan(M_PI / 6.0), 1e-12);
}

TEST_F(DmrBcFixture, LeftGhostIsPostShockInflow) {
    fill(0.0);
    auto a = mf.const_array(0);
    const auto post = Dmr::postShockState();
    for (int g = 1; g <= 4; ++g)
        EXPECT_DOUBLE_EQ(a(-g, 8, 4, URHO), post[URHO]);
}

TEST_F(DmrBcFixture, RightGhostExtrapolates) {
    fill(0.0);
    auto a = mf.const_array(0);
    EXPECT_DOUBLE_EQ(a(64, 8, 4, URHO), a(63, 8, 4, URHO));
    EXPECT_DOUBLE_EQ(a(67, 8, 4, URHO), a(63, 8, 4, URHO));
}

TEST_F(DmrBcFixture, BottomSplitsAtRampFoot) {
    fill(0.0);
    auto a = mf.const_array(0);
    const auto post = Dmr::postShockState();
    // x < 1/6 (physical): cells i with (i+0.5)/64*4 < 1/6 -> i <= 2.
    EXPECT_DOUBLE_EQ(a(1, -1, 4, URHO), post[URHO]); // inflow region
    // Past the foot: reflecting wall mirrors the interior and flips v.
    EXPECT_DOUBLE_EQ(a(20, -1, 4, URHO), a(20, 0, 4, URHO));
    EXPECT_DOUBLE_EQ(a(20, -1, 4, UMY), -a(20, 0, 4, UMY));
    EXPECT_DOUBLE_EQ(a(20, -2, 4, URHO), a(20, 1, 4, URHO));
}

TEST_F(DmrBcFixture, TopTracksTheMovingShock) {
    const Real t = 0.05;
    fill(t);
    auto a = mf.const_array(0);
    const Real xs = Dmr::shockXAtTop(t, 1.0);
    EXPECT_NEAR(xs, 1.0 / 6.0 + (1.0 + 20 * t) / std::sqrt(3.0), 1e-12);
    const auto post = Dmr::postShockState();
    const auto pre = Dmr::preShockState();
    // Cell centers at physical x = (i + 0.5) / 16: left of xs post, right pre.
    const int iPost = static_cast<int>((xs - 0.2) * 16.0);
    const int iPre = static_cast<int>((xs + 0.2) * 16.0);
    EXPECT_DOUBLE_EQ(a(iPost, 16, 4, URHO), post[URHO]);
    EXPECT_DOUBLE_EQ(a(iPre, 16, 4, URHO), pre[URHO]);
    // And the shock trace moves right over time.
    EXPECT_GT(Dmr::shockXAtTop(0.2, 1.0), xs);
}

TEST_F(DmrBcFixture, SpanwiseGhostsUntouched) {
    fill(0.0);
    auto a = mf.const_array(0);
    // z is periodic: BC_Fill must leave those ghosts for FillBoundary.
    EXPECT_DOUBLE_EQ(a(30, 8, -1, URHO), 2.0 + 0.01 * 30);
}

TEST(DmrProblem, InitialConditionShockGeometry) {
    Dmr dmr{Dmr::Options{}};
    auto ic = dmr.initialCondition();
    const auto post = Dmr::postShockState();
    const auto pre = Dmr::preShockState();
    // The shock passes through (1/6, 0) at 60 degrees: points below-left are
    // post-shock, above-right pre-shock.
    EXPECT_DOUBLE_EQ(ic(0.0, 0.0, 0.0)[URHO], post[URHO]);
    EXPECT_DOUBLE_EQ(ic(3.0, 0.5, 0.0)[URHO], pre[URHO]);
    // Just either side of the front at y = 0.5: x* = 1/6 + 0.5/sqrt(3).
    const double xs = 1.0 / 6.0 + 0.5 / std::sqrt(3.0);
    EXPECT_DOUBLE_EQ(ic(xs - 0.01, 0.5, 0.0)[URHO], post[URHO]);
    EXPECT_DOUBLE_EQ(ic(xs + 0.01, 0.5, 0.0)[URHO], pre[URHO]);
}

} // namespace
} // namespace crocco::problems
