#include "problems/Canonical.hpp"
#include "problems/Riemann.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::problems {
namespace {

using core::CroccoAmr;
using core::NCONS;
using core::UEDEN;
using core::UMX;
using core::URHO;

/// Value of component `n` at a cell, searching the owning fab.
Real probe(const amr::MultiFab& mf, const amr::IntVect& p, int n) {
    for (int f = 0; f < mf.numFabs(); ++f) {
        if (mf.validBox(f).contains(p)) {
            return mf.const_array(f)(p[0], p[1], p[2], n);
        }
    }
    ADD_FAILURE() << "cell " << p << " not covered";
    return 0.0;
}

TEST(SodTube, MatchesExactRiemannSolution) {
    SodTube sod(64);
    CroccoAmr solver(sod.geometry(), sod.solverConfig(false), sod.mapping());
    solver.init(sod.initialCondition(), sod.boundaryConditions());
    const Real tEnd = 0.15;
    while (solver.time() < tEnd) solver.step();

    // Compare the density profile along x against the exact solution at the
    // actual final time.
    const auto& U = solver.state(0);
    const RiemannState L{1.0, 0.0, 1.0}, R{0.125, 0.0, 0.1};
    Real l1 = 0.0;
    const int n = 64;
    for (int i = 0; i < n; ++i) {
        const Real x = (i + 0.5) / n;
        const auto exact =
            exactRiemann(L, R, 1.4, (x - 0.5) / solver.time());
        l1 += std::abs(probe(U, {i, 4, 4}, URHO) - exact.rho) / n;
    }
    EXPECT_LT(l1, 0.015) << "L1 density error vs exact Riemann solution";

    // Shock-capturing is non-oscillatory: density within exact-state bounds.
    EXPECT_GT(U.min(URHO), 0.12);
    EXPECT_LT(U.max(URHO), 1.01);
}

TEST(SodTube, AmrMatchesUniformFineSolution) {
    // AMR run with base 32 + 1 level refining the waves should land close
    // to the uniform 64 solution (the paper's AMR-equivalence methodology,
    // §V-C / Conclusion insight #1).
    // Refinement is isotropic, so the uniform comparator is refined in all
    // three directions.
    SodTube fineProblem(64, 16, 16);
    CroccoAmr fine(fineProblem.geometry(), fineProblem.solverConfig(false),
                   fineProblem.mapping());
    fine.init(fineProblem.initialCondition(), fineProblem.boundaryConditions());

    SodTube coarseProblem(32);
    auto amrCfg = coarseProblem.solverConfig(true);
    amrCfg.regridFreq = 3;
    CroccoAmr amrRun(coarseProblem.geometry(), amrCfg, coarseProblem.mapping());
    amrRun.init(coarseProblem.initialCondition(),
                coarseProblem.boundaryConditions());

    const Real tEnd = 0.1;
    while (fine.time() < tEnd) fine.step();
    while (amrRun.time() < tEnd) amrRun.step();

    ASSERT_EQ(amrRun.finestLevel(), 1);
    // AMR resolved fewer points than the uniform fine grid.
    EXPECT_LT(amrRun.totalPoints(), fine.state(0).numPts());

    // Compare density along the centerline on the fine level where it
    // exists (it must cover the shock).
    Real worst = 0.0;
    int compared = 0;
    for (int f = 0; f < amrRun.state(1).numFabs(); ++f) {
        auto aa = amrRun.state(1).const_array(f);
        amr::forEachCell(amrRun.state(1).validBox(f), [&](int i, int j, int k) {
            if (j != 4 || k != 4) return;
            worst = std::max(worst, std::abs(aa(i, j, k, URHO) -
                                             probe(fine.state(0), {i, 4, 4}, URHO)));
            ++compared;
        });
    }
    EXPECT_GT(compared, 10);
    EXPECT_LT(worst, 0.12);
}

TEST(IsentropicVortex, ConvergesBetweenResolutions) {
    auto errorAt = [&](int n, core::WenoScheme scheme) {
        IsentropicVortex v(n);
        auto cfg = v.solverConfig();
        cfg.scheme = scheme;
        CroccoAmr solver(v.geometry(), cfg, v.mapping());
        solver.init(v.initialCondition(), nullptr);
        const Real tEnd = 0.25;
        while (solver.time() < tEnd) solver.step();
        // L2 density error against the exact advected vortex.
        const auto& U = solver.state(0);
        const auto& X = solver.coords(0);
        Real err2 = 0.0;
        std::int64_t cells = 0;
        for (int f = 0; f < U.numFabs(); ++f) {
            auto a = U.const_array(f);
            auto x = X.const_array(f);
            amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
                const auto ex = v.exact(x(i, j, k, 0), x(i, j, k, 1),
                                        x(i, j, k, 2), solver.time());
                const Real d = a(i, j, k, URHO) - ex[URHO];
                err2 += d * d;
                ++cells;
            });
        }
        return std::sqrt(err2 / cells);
    };
    // JS5 converges cleanly at these resolutions; SYMBO's relative-
    // smoothness limiter (tuned for Mach-10 shock robustness) costs some
    // observable order on marginally resolved smooth flows but must still
    // converge and stay more accurate in absolute terms at 16^2.
    const Real j16 = errorAt(16, core::WenoScheme::JS5);
    const Real j32 = errorAt(32, core::WenoScheme::JS5);
    EXPECT_GT(std::log2(j16 / j32), 2.3) << j16 << " " << j32;
    const Real s16 = errorAt(16, core::WenoScheme::Symbo);
    const Real s32 = errorAt(32, core::WenoScheme::Symbo);
    EXPECT_GT(std::log2(s16 / s32), 1.5) << s16 << " " << s32;
    EXPECT_LT(s16, 1.5 * j16); // comparable accuracy on smooth data
}

TEST(TaylorGreen, KineticEnergyDecaysViscously) {
    TaylorGreen tg(16, 100.0);
    CroccoAmr solver(tg.geometry(), tg.solverConfig(), tg.mapping());
    solver.init(tg.initialCondition(), nullptr);
    const Real ke0 = TaylorGreen::kineticEnergy(solver);
    ASSERT_GT(ke0, 0.0);
    solver.evolve(10);
    const Real ke1 = TaylorGreen::kineticEnergy(solver);
    EXPECT_LT(ke1, ke0);
    // Total mass and energy are conserved on the periodic domain.
    // (Viscous terms redistribute energy; they do not create it.)
    EXPECT_GT(ke1, 0.5 * ke0); // and decay is not catastrophic

    // Inviscid comparator decays far less over the same interval.
    TaylorGreen tgInv(16, 1e9);
    CroccoAmr inv(tgInv.geometry(), tgInv.solverConfig(), tgInv.mapping());
    inv.init(tgInv.initialCondition(), nullptr);
    inv.evolve(10);
    const Real keInv = TaylorGreen::kineticEnergy(inv);
    EXPECT_GT(keInv, ke1);
}

} // namespace
} // namespace crocco::problems
