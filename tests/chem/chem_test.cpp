#include "chem/Reaction.hpp"
#include "chem/Thermo.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::chem {
namespace {

TEST(ThermoTable, SingleGasMatchesGammaLaw) {
    // The single-species table must reproduce the perfect-gas EOS used by
    // the flow solver (gamma = 1.4, R = 287).
    const ThermoTable air = ThermoTable::singleGas(1.4, 287.0);
    const Real rho = 1.2;
    const Real T = 300.0;
    EXPECT_NEAR(air.pressure(&rho, T), rho * 287.0 * T, 1e-8);
    EXPECT_NEAR(air.soundSpeed(&rho, T), std::sqrt(1.4 * 287.0 * T), 1e-8);
    EXPECT_NEAR(air.mixtureCv(&rho), 287.0 / 0.4, 1e-8);
    // Temperature round-trips through the internal energy.
    const Real e = air.internalEnergy(&rho, T);
    EXPECT_NEAR(air.temperature(&rho, e), T, 1e-9);
}

TEST(ThermoTable, MixtureRulesAreMassWeighted) {
    const ThermoTable t = ThermoTable::hydrogenAir();
    const int ns = t.nSpecies();
    std::vector<Real> rhoS(static_cast<std::size_t>(ns), 0.0);
    rhoS[static_cast<std::size_t>(t.indexOf("N2"))] = 0.7;
    rhoS[static_cast<std::size_t>(t.indexOf("O2"))] = 0.3;
    EXPECT_NEAR(t.mixtureDensity(rhoS.data()), 1.0, 1e-12);
    const Real cvExpected = 0.7 * t.species(t.indexOf("N2")).cv +
                            0.3 * t.species(t.indexOf("O2")).cv;
    EXPECT_NEAR(t.mixtureCv(rhoS.data()), cvExpected, 1e-9);
    // Light species raise the mixture gas constant dramatically.
    std::vector<Real> withH2 = rhoS;
    withH2[static_cast<std::size_t>(t.indexOf("H2"))] = 0.1;
    EXPECT_GT(t.mixtureR(withH2.data()), t.mixtureR(rhoS.data()));
}

TEST(ThermoTable, TemperatureInversionWithFormationEnthalpy) {
    const ThermoTable t = ThermoTable::hydrogenAir();
    std::vector<Real> rhoS(static_cast<std::size_t>(t.nSpecies()), 0.0);
    rhoS[static_cast<std::size_t>(t.indexOf("H2O"))] = 0.4; // negative h_f
    rhoS[static_cast<std::size_t>(t.indexOf("N2"))] = 0.6;
    for (Real T : {300.0, 1200.0, 2800.0}) {
        const Real e = t.internalEnergy(rhoS.data(), T);
        EXPECT_NEAR(t.temperature(rhoS.data(), e), T, 1e-8 * T);
    }
}

TEST(ThermoTable, UnknownSpeciesThrows) {
    const ThermoTable t = ThermoTable::hydrogenAir();
    EXPECT_THROW(t.indexOf("Xe"), std::out_of_range);
}

struct ReactorFixture {
    ReactionMechanism mech = ReactionMechanism::hydrogenOxygen();
    std::vector<Real> rhoS;
    Real T = 1400.0;

    ReactorFixture() {
        const auto& t = mech.thermo();
        rhoS.assign(static_cast<std::size_t>(t.nSpecies()), 0.0);
        // Stoichiometric H2/O2 diluted in N2 at ~1 atm equivalent.
        rhoS[static_cast<std::size_t>(t.indexOf("H2"))] = 0.02;
        rhoS[static_cast<std::size_t>(t.indexOf("O2"))] = 0.16;
        rhoS[static_cast<std::size_t>(t.indexOf("N2"))] = 0.60;
    }
    Real total() const {
        Real s = 0.0;
        for (Real r : rhoS) s += r;
        return s;
    }
};

TEST(ReactionMechanism, ProductionRatesSumToZero) {
    ReactorFixture f;
    std::vector<Real> wdot(f.rhoS.size());
    f.mech.productionRates(f.rhoS.data(), f.T, wdot.data());
    Real sum = 0.0, mag = 0.0;
    for (Real w : wdot) {
        sum += w;
        mag += std::abs(w);
    }
    ASSERT_GT(mag, 0.0) << "mixture should react at 1400 K";
    EXPECT_LT(std::abs(sum), 1e-12 * mag); // exact elemental mass balance
    // Reactants consumed, product formed.
    const auto& t = f.mech.thermo();
    EXPECT_LT(wdot[static_cast<std::size_t>(t.indexOf("H2"))], 0.0);
    EXPECT_LT(wdot[static_cast<std::size_t>(t.indexOf("O2"))], 0.0);
    EXPECT_GT(wdot[static_cast<std::size_t>(t.indexOf("H2O"))], 0.0);
    EXPECT_EQ(wdot[static_cast<std::size_t>(t.indexOf("N2"))], 0.0); // inert
}

TEST(ReactionMechanism, ArrheniusRateGrowsWithTemperature) {
    ReactorFixture f;
    std::vector<Real> cold(f.rhoS.size()), hot(f.rhoS.size());
    f.mech.productionRates(f.rhoS.data(), 900.0, cold.data());
    f.mech.productionRates(f.rhoS.data(), 1800.0, hot.data());
    const auto h2o = static_cast<std::size_t>(f.mech.thermo().indexOf("H2O"));
    EXPECT_GT(hot[h2o], 10.0 * cold[h2o]);
}

TEST(ReactionMechanism, ConstantVolumeReactorConservesMassAndReleasesHeat) {
    ReactorFixture f;
    const Real mass0 = f.total();
    const Real T0 = f.T;
    const auto& t = f.mech.thermo();
    const Real e0 = t.internalEnergy(f.rhoS.data(), f.T);
    f.mech.advance(f.rhoS.data(), f.T, 5e-3);
    EXPECT_NEAR(f.total(), mass0, 1e-10 * mass0);
    // Exothermic: temperature rises; internal energy is invariant.
    EXPECT_GT(f.T, T0 + 50.0);
    EXPECT_NEAR(t.internalEnergy(f.rhoS.data(), f.T), e0, 1e-6 * std::abs(e0));
    for (Real r : f.rhoS) EXPECT_GE(r, 0.0);
}

TEST(ReactionMechanism, BurnsToCompletionOfDeficientReactant) {
    ReactorFixture f;
    f.T = 2000.0; // fast kinetics
    f.mech.advance(f.rhoS.data(), f.T, 1.0);
    const auto& t = f.mech.thermo();
    // H2 is the deficient reactant here (0.02 kg vs 0.16 kg O2 at 1:8 mass
    // stoichiometry): it must be (nearly) exhausted. The bimolecular rate
    // decays algebraically near completion, so "nearly" means < 5%.
    EXPECT_LT(f.rhoS[static_cast<std::size_t>(t.indexOf("H2"))], 1e-3);
    EXPECT_GT(f.rhoS[static_cast<std::size_t>(t.indexOf("H2O"))], 0.015);
}

TEST(ReactionMechanism, ColdMixtureIsFrozen) {
    ReactorFixture f;
    f.T = 300.0;
    const auto before = f.rhoS;
    f.mech.advance(f.rhoS.data(), f.T, 1e-3);
    for (std::size_t s = 0; s < before.size(); ++s)
        EXPECT_NEAR(f.rhoS[s], before[s], 1e-9);
}

} // namespace
} // namespace crocco::chem
