#include "mesh/GridMetrics.hpp"

#include "mesh/CoordStore.hpp"
#include "mesh/Mapping.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::mesh {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::FArrayBox;
using amr::Geometry;
using amr::IntVect;
using amr::MultiFab;

struct MetricsSetup {
    Geometry geom;
    MultiFab coords, metrics;

    MetricsSetup(std::shared_ptr<const Mapping> mapping, int n, int ngMetrics = 1) {
        geom = Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0}, {1, 1, 1},
                        amr::Periodicity::all());
        CoordStore store(std::move(mapping), geom, IntVect(2), 0, ngMetrics + 3);
        BoxArray ba(geom.domain());
        DistributionMapping dm(ba, 1);
        coords.define(ba, dm, 3, ngMetrics + 3);
        metrics.define(ba, dm, MetricComps, ngMetrics);
        store.getCoords(coords, 0);
        computeMetrics(coords, metrics, geom);
    }
};

TEST(GridMetrics, ComponentIndexing) {
    // 9 first derivatives then 18 symmetric second derivatives = 27.
    EXPECT_EQ(metric1(0, 0), 0);
    EXPECT_EQ(metric1(2, 2), 8);
    EXPECT_EQ(metric2(0, 0, 0), 9);
    EXPECT_EQ(metric2(0, 1, 2), metric2(0, 2, 1)); // symmetry
    EXPECT_EQ(metric2(2, 2, 2), 9 + 12 + 2);
    int maxComp = 0;
    for (int d = 0; d < 3; ++d)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k) maxComp = std::max(maxComp, metric2(d, j, k));
    EXPECT_EQ(maxComp, MetricComps - 1);
}

TEST(GridMetrics, UniformGridIsExact) {
    // x = 4 xi, y = eta, z = 2 zeta on an 8^3 grid: dxi_0/dx = 1/4 etc.,
    // J = 8, all second metrics zero.
    auto mapping = std::make_shared<UniformMapping>(
        std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{4, 1, 2});
    MetricsSetup s(mapping, 8);
    auto m = s.metrics.const_array(0);
    amr::forEachCell(s.geom.domain(), [&](int i, int j, int k) {
        EXPECT_NEAR(m(i, j, k, metric1(0, 0)), 0.25, 1e-12);
        EXPECT_NEAR(m(i, j, k, metric1(1, 1)), 1.0, 1e-12);
        EXPECT_NEAR(m(i, j, k, metric1(2, 2)), 0.5, 1e-12);
        EXPECT_NEAR(m(i, j, k, metric1(0, 1)), 0.0, 1e-12);
        EXPECT_NEAR(m(i, j, k, metric1(1, 2)), 0.0, 1e-12);
        EXPECT_NEAR(jacobian(m, i, j, k), 8.0, 1e-10);
        for (int n = 9; n < MetricComps; ++n)
            EXPECT_NEAR(m(i, j, k, n), 0.0, 1e-10);
    });
}

TEST(GridMetrics, WavyGridMetricsConvergeAt4thOrder) {
    // Compare the computed dxi/dx against the analytic inverse Jacobian of
    // the wavy mapping at two resolutions; 4th-order differencing should
    // drop the error by ~16x.
    auto mapping = std::make_shared<WavyMapping>(std::array<Real, 3>{0, 0, 0},
                                                 std::array<Real, 3>{1, 1, 1},
                                                 0.02);
    double errs[2];
    for (int r = 0; r < 2; ++r) {
        const int n = (r == 0) ? 8 : 16;
        MetricsSetup s(mapping, n);
        auto m = s.metrics.const_array(0);
        double worst = 0.0;
        // Analytic forward Jacobian by tight finite differences of the
        // mapping itself (h far below the grid spacing).
        const double h = 1e-6;
        amr::forEachCell(s.geom.domain(), [&](int i, int j, int k) {
            const double xi = (i + 0.5) / n, eta = (j + 0.5) / n,
                         zeta = (k + 0.5) / n;
            double T[3][3];
            for (int d = 0; d < 3; ++d) {
                double sp[3]{xi, eta, zeta}, sm[3]{xi, eta, zeta};
                sp[d] += h;
                sm[d] -= h;
                const auto pp = mapping->toPhysical(sp[0], sp[1], sp[2]);
                const auto pm = mapping->toPhysical(sm[0], sm[1], sm[2]);
                for (int c = 0; c < 3; ++c) T[c][d] = (pp[c] - pm[c]) / (2 * h);
            }
            // Invert T to get the analytic dxi/dx.
            const double det =
                T[0][0] * (T[1][1] * T[2][2] - T[1][2] * T[2][1]) -
                T[0][1] * (T[1][0] * T[2][2] - T[1][2] * T[2][0]) +
                T[0][2] * (T[1][0] * T[2][1] - T[1][1] * T[2][0]);
            const double M00 = (T[1][1] * T[2][2] - T[1][2] * T[2][1]) / det;
            worst = std::max(worst,
                             std::abs(m(i, j, k, metric1(0, 0)) - M00));
        });
        errs[r] = worst;
    }
    const double order = std::log2(errs[0] / errs[1]);
    EXPECT_GT(order, 3.4) << errs[0] << " " << errs[1];
}

TEST(GridMetrics, GclResidualSmallAndConverging) {
    auto mapping = std::make_shared<WavyMapping>(std::array<Real, 3>{0, 0, 0},
                                                 std::array<Real, 3>{1, 1, 1},
                                                 0.02);
    double res[2];
    for (int r = 0; r < 2; ++r) {
        const int n = (r == 0) ? 8 : 16;
        MetricsSetup s(mapping, n);
        res[r] = gclResidual(s.metrics.const_array(0), s.geom.domain(),
                             s.geom.cellSizeArray());
    }
    EXPECT_LT(res[1], res[0]); // refining the grid shrinks the GCL error
    EXPECT_LT(res[1], 0.5);    // and it is small in absolute terms
}

TEST(GridMetrics, SecondMetricsVanishOnAffineMapsOnly) {
    auto affine = std::make_shared<UniformMapping>(std::array<Real, 3>{1, 2, 3},
                                                   std::array<Real, 3>{5, 4, 9});
    MetricsSetup sa(affine, 8);
    auto ma = sa.metrics.const_array(0);
    double worstAffine = 0.0;
    amr::forEachCell(sa.geom.domain(), [&](int i, int j, int k) {
        for (int n = 9; n < MetricComps; ++n)
            worstAffine = std::max(worstAffine, std::abs(ma(i, j, k, n)));
    });
    EXPECT_LT(worstAffine, 1e-10);

    auto curved = std::make_shared<WavyMapping>(std::array<Real, 3>{0, 0, 0},
                                                std::array<Real, 3>{1, 1, 1},
                                                0.05);
    MetricsSetup sc(curved, 8);
    auto mc = sc.metrics.const_array(0);
    double worstCurved = 0.0;
    amr::forEachCell(sc.geom.domain(), [&](int i, int j, int k) {
        for (int n = 9; n < MetricComps; ++n)
            worstCurved = std::max(worstCurved, std::abs(mc(i, j, k, n)));
    });
    EXPECT_GT(worstCurved, 1.0); // second derivatives are genuinely nonzero
}

} // namespace
} // namespace crocco::mesh
