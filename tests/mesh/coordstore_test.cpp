#include "mesh/CoordStore.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace crocco::mesh {
namespace {

using amr::Box;
using amr::Geometry;
using amr::IntVect;

Geometry makeGeom(int n, bool periodicZ) {
    amr::Periodicity per;
    per.periodic[2] = periodicZ;
    return Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0}, {1, 1, 1},
                    per);
}

TEST(CoordStore, CellCoordMatchesMapping) {
    auto mapping = std::make_shared<UniformMapping>(
        std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{4, 1, 2});
    CoordStore store(mapping, makeGeom(8, false), IntVect(2), 1, 2);
    const auto p = store.cellCoord(0, IntVect{0, 0, 0});
    EXPECT_DOUBLE_EQ(p[0], 4.0 * 0.5 / 8);
    EXPECT_DOUBLE_EQ(p[1], 1.0 * 0.5 / 8);
    // Level 1 has twice the resolution.
    const auto q = store.cellCoord(1, IntVect{0, 0, 0});
    EXPECT_DOUBLE_EQ(q[0], 4.0 * 0.5 / 16);
}

TEST(CoordStore, GhostsAreContinuousExtension) {
    // Ghost coordinates are always the smooth continuation of the mapping,
    // even across periodic faces — metric differencing and curvilinear
    // interpolation need globally consistent values, not periodic images.
    auto mapping = std::make_shared<UniformMapping>(
        std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{1, 1, 1});
    CoordStore store(mapping, makeGeom(8, true), IntVect(2), 0, 2);
    const auto g = store.cellCoord(0, IntVect{0, 0, -1});
    EXPECT_DOUBLE_EQ(g[2], -0.5 / 8.0);
    const auto gx = store.cellCoord(0, IntVect{-1, 0, 0});
    EXPECT_DOUBLE_EQ(gx[0], -0.5 / 8.0);
}

TEST(CoordStore, MemoryAndFileModesAgree) {
    auto mapping = std::make_shared<InteriorWavyMapping>(
        std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{4, 1, 1}, 0.04);
    const Geometry g = makeGeom(8, true);
    CoordStore mem(mapping, g, IntVect(2), 1, 3, CoordStore::Mode::Memory);
    CoordStore file(mapping, g, IntVect(2), 1, 3, CoordStore::Mode::File,
                    "/tmp");
    for (int lev = 0; lev <= 1; ++lev) {
        const Box target = g.domain().refine(lev == 0 ? 1 : 2).grow(2);
        amr::FArrayBox a(target, 3), b(target, 3);
        mem.getCoords(a, lev);
        file.getCoords(b, lev);
        for (int m = 0; m < 3; ++m)
            EXPECT_EQ(amr::FArrayBox::l2Diff(a, b, target, m), 0.0)
                << "lev " << lev << " comp " << m;
    }
    std::remove("/tmp/coords_lev0.bin");
    std::remove("/tmp/coords_lev1.bin");
}

TEST(CoordStore, FillsMultiFabValidAndGhost) {
    auto mapping = std::make_shared<UniformMapping>(
        std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{1, 1, 1});
    const Geometry g = makeGeom(16, false);
    CoordStore store(mapping, g, IntVect(2), 0, 4);
    amr::BoxArray ba(Box(IntVect(4), IntVect(11)));
    amr::DistributionMapping dm(ba, 1);
    amr::MultiFab coords(ba, dm, 3, 4);
    store.getCoords(coords, 0);
    auto a = coords.const_array(0);
    amr::forEachCell(coords.grownBox(0), [&](int i, int j, int k) {
        EXPECT_DOUBLE_EQ(a(i, j, k, 0), (i + 0.5) / 16.0);
        EXPECT_DOUBLE_EQ(a(i, j, k, 1), (j + 0.5) / 16.0);
        EXPECT_DOUBLE_EQ(a(i, j, k, 2), (k + 0.5) / 16.0);
    });
}

TEST(CoordStore, BytesStoredReflectsModeAndFootprint) {
    auto mapping = std::make_shared<UniformMapping>(
        std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{1, 1, 1});
    const Geometry g = makeGeom(8, false);
    CoordStore mem(mapping, g, IntVect(2), 1, 2, CoordStore::Mode::Memory);
    CoordStore file(mapping, g, IntVect(2), 1, 2, CoordStore::Mode::File, "/tmp");
    // Memory mode stores both levels' grown grids: 12^3 + 20^3 cells x 3.
    EXPECT_EQ(mem.bytesStored(),
              static_cast<std::int64_t>((12 * 12 * 12 + 20 * 20 * 20) * 3 * 8));
    EXPECT_EQ(file.bytesStored(), 0);
    std::remove("/tmp/coords_lev0.bin");
    std::remove("/tmp/coords_lev1.bin");
}

} // namespace
} // namespace crocco::mesh
