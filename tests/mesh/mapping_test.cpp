#include "mesh/Mapping.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::mesh {
namespace {

constexpr std::array<Real, 3> kLo{0.0, 0.0, 0.0};
constexpr std::array<Real, 3> kHi{4.0, 1.0, 2.0};

TEST(UniformMapping, IsAffine) {
    UniformMapping m(kLo, kHi);
    const auto p = m.toPhysical(0.5, 0.25, 1.0);
    EXPECT_DOUBLE_EQ(p[0], 2.0);
    EXPECT_DOUBLE_EQ(p[1], 0.25);
    EXPECT_DOUBLE_EQ(p[2], 2.0);
    // Extends linearly beyond [0,1] (ghost coordinates).
    EXPECT_DOUBLE_EQ(m.toPhysical(-0.25, 0, 0)[0], -1.0);
}

TEST(StretchedMapping, ClustersTowardWall) {
    StretchedMapping m(kLo, kHi, 1, 2.5);
    // Monotone, endpoint-preserving, and denser near eta = 0.
    EXPECT_NEAR(m.toPhysical(0, 0, 0)[1], 0.0, 1e-14);
    EXPECT_NEAR(m.toPhysical(0, 1, 0)[1], 1.0, 1e-14);
    const Real dyNear = m.toPhysical(0, 0.1, 0)[1] - m.toPhysical(0, 0.0, 0)[1];
    const Real dyFar = m.toPhysical(0, 1.0, 0)[1] - m.toPhysical(0, 0.9, 0)[1];
    EXPECT_LT(dyNear, dyFar);
    Real prev = -1.0;
    for (int i = 0; i <= 20; ++i) {
        const Real y = m.toPhysical(0, i / 20.0, 0)[1];
        EXPECT_GT(y, prev);
        prev = y;
    }
}

TEST(RampMapping, WallRisesAfterCorner) {
    RampMapping m(kLo, kHi, 30.0, 0.25);
    // Before the corner the wall is flat.
    EXPECT_NEAR(m.toPhysical(0.1, 0, 0)[1], 0.0, 1e-12);
    // Well past the corner the wall follows the 30-degree ramp.
    const auto a = m.toPhysical(0.6, 0, 0);
    const auto b = m.toPhysical(0.9, 0, 0);
    const Real slope = (b[1] - a[1]) / (b[0] - a[0]);
    EXPECT_NEAR(slope, std::tan(30.0 * M_PI / 180.0), 1e-9);
    // Upper boundary stays straight.
    EXPECT_NEAR(m.toPhysical(0.9, 1, 0)[1], 1.0, 1e-12);
}

TEST(InteriorWavyMapping, FacesStayPlanar) {
    InteriorWavyMapping m(kLo, kHi, 0.05);
    for (double a = 0.0; a <= 1.0; a += 0.25) {
        for (double b = 0.0; b <= 1.0; b += 0.25) {
            EXPECT_NEAR(m.toPhysical(0.0, a, b)[0], 0.0, 1e-12);
            EXPECT_NEAR(m.toPhysical(1.0, a, b)[0], 4.0, 1e-12);
            EXPECT_NEAR(m.toPhysical(a, 0.0, b)[1], 0.0, 1e-12);
            EXPECT_NEAR(m.toPhysical(a, 1.0, b)[1], 1.0, 1e-12);
            EXPECT_NEAR(m.toPhysical(a, b, 0.0)[2], 0.0, 1e-12);
            EXPECT_NEAR(m.toPhysical(a, b, 1.0)[2], 2.0, 1e-12);
        }
    }
}

TEST(InteriorWavyMapping, InteriorIsActuallyCurved) {
    InteriorWavyMapping m(kLo, kHi, 0.05);
    const auto p = m.toPhysical(0.5, 0.5, 0.5);
    EXPECT_GT(std::abs(p[0] - 2.0), 0.01);
    // Grid lines are non-orthogonal: x varies along eta.
    EXPECT_GT(std::abs(m.toPhysical(0.5, 0.25, 0.5)[0] -
                       m.toPhysical(0.5, 0.5, 0.5)[0]),
              0.01);
}

TEST(InteriorWavyMapping, MirrorSymmetricAboutWall) {
    // Required by the index-mirror wall BC: ghost eta = -t maps to the
    // mirror image of eta = +t in x, and to -y in wall distance.
    InteriorWavyMapping m(kLo, kHi, 0.05);
    const auto in = m.toPhysical(0.3, 0.1, 0.7);
    const auto out = m.toPhysical(0.3, -0.1, 0.7);
    EXPECT_NEAR(in[0], out[0], 1e-12);
    EXPECT_NEAR(in[1], -out[1], 1e-12);
}

TEST(WavyMapping, PeriodicCompatibleInZ) {
    WavyMapping m(kLo, kHi, 0.03);
    const auto a = m.toPhysical(0.3, 0.4, 0.2);
    const auto b = m.toPhysical(0.3, 0.4, 1.2);
    EXPECT_NEAR(b[0], a[0], 1e-12);
    EXPECT_NEAR(b[1], a[1], 1e-12);
    EXPECT_NEAR(b[2], a[2] + 2.0, 1e-12);
}

} // namespace
} // namespace crocco::mesh
