#include "gpu/DeviceModel.hpp"

#include "core/KernelProfiles.hpp"

#include <gtest/gtest.h>

namespace crocco::gpu {
namespace {

const KernelProfile* profileFor(int idx) {
    switch (idx) {
        case 0: return &core::wenoKernelProfile();
        case 1: return &core::viscousKernelProfile();
        case 2: return &core::computeDtProfile();
        case 3: return &core::updateKernelProfile();
        default: return &core::interpKernelProfile();
    }
}

class DeviceModelProperty : public ::testing::TestWithParam<int> {
protected:
    const KernelProfile& k = *profileFor(GetParam());
};

TEST_P(DeviceModelProperty, TimeIsMonotoneInProblemSize) {
    V100Model v100;
    double prev = 0.0;
    for (std::int64_t n : {1000, 10'000, 100'000, 1'000'000, 10'000'000}) {
        const double t = v100.kernelTime(k, n);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST_P(DeviceModelProperty, AchievedRateRespectsCeilings) {
    V100Model v100;
    const std::int64_t n = 5'000'000; // saturated
    const double achieved = v100.achievedFlops(k, n);
    // Never above the occupancy-limited compute peak...
    EXPECT_LE(achieved, v100.peakFlops * v100.occupancy(k) * 1.0001);
    // ...nor above any bandwidth ceiling.
    EXPECT_LE(achieved, k.aiDram() * v100.bwDram * 1.0001);
    EXPECT_LE(achieved, k.aiL2() * v100.bwL2 * 1.0001);
    EXPECT_LE(achieved, k.aiL1() * v100.bwL1 * 1.0001);
    EXPECT_GT(achieved, 0.0);
}

TEST_P(DeviceModelProperty, TinyKernelsPayFixedLatency) {
    // A 1-point kernel costs at least the launch overhead and at most a
    // fixed latency floor (~100s of microseconds: launch + unsaturated
    // pipeline), never scaling with the per-point work.
    V100Model v100;
    const double t1 = v100.kernelTime(k, 1);
    EXPECT_GE(t1, v100.launchOverhead);
    EXPECT_LT(t1, 5e-4);
}

TEST_P(DeviceModelProperty, OccupancyInPhysicalRange) {
    V100Model v100;
    const double occ = v100.occupancy(k);
    EXPECT_GE(occ, 1.0 / 64.0);
    EXPECT_LE(occ, 1.0);
    // Register pressure reduces occupancy relative to a light kernel.
    KernelProfile light = k;
    light.registersPerThread = 32;
    EXPECT_GE(v100.occupancy(light), occ);
}

TEST_P(DeviceModelProperty, CpuModelScalesLinearly) {
    P9SocketModel p9;
    const double t1 = p9.kernelTime(k, 1'000'000, false);
    const double t4 = p9.kernelTime(k, 4'000'000, false);
    EXPECT_NEAR(t4 / t1, 4.0, 1e-9);
    EXPECT_NEAR(p9.kernelTime(k, 1'000'000, true) / t1, p9.cppSlowdown, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllKernelProfiles, DeviceModelProperty,
                         ::testing::Range(0, 5));

} // namespace
} // namespace crocco::gpu
