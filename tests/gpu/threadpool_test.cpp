#include "gpu/Gpu.hpp"
#include "gpu/ThreadPool.hpp"

#include "amr/MultiFab.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace crocco::gpu {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::IntVect;
using amr::MultiFab;

std::vector<Box> tiledBoxes(const Box& domain, int tile) {
    std::vector<Box> out;
    for (int k = domain.smallEnd(2); k <= domain.bigEnd(2); k += tile)
        for (int j = domain.smallEnd(1); j <= domain.bigEnd(1); j += tile)
            for (int i = domain.smallEnd(0); i <= domain.bigEnd(0); i += tile)
                out.emplace_back(IntVect{i, j, k},
                                 IntVect{i + tile - 1, j + tile - 1, k + tile - 1});
    return out;
}

/// Restore the process-wide pool size on scope exit so test order and the
/// GPU_NUM_THREADS ctest instances don't interfere.
struct ThreadGuard {
    int saved = numThreads();
    ~ThreadGuard() { setNumThreads(saved); }
};

// The determinism contract (docs/performance.md): reductions combine
// fixed-decomposition partials in a fixed order, so results are bitwise
// identical — EXPECT_EQ on doubles, not EXPECT_NEAR — for every thread
// count.
TEST(ThreadPool, MultiFabReductionsBitwiseIdenticalAcrossThreadCounts) {
    ThreadGuard guard;
    const Box domain(IntVect::zero(), IntVect(31));
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 2);
    MultiFab mf(ba, dm, 2, 1);
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.array(f);
        for (int n = 0; n < 2; ++n)
            amr::forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, n) = std::sin(0.7 * i + 1.3 * j + 2.1 * k + n) * 1e3;
            });
    }

    setNumThreads(1);
    const double norm1 = mf.norm2(0);
    const double sum1 = mf.sum(1);
    const double min1 = mf.min(0);
    const double max1 = mf.max(1);

    for (int nt : {2, 3, 4, 8}) {
        setNumThreads(nt);
        EXPECT_EQ(mf.norm2(0), norm1) << "threads=" << nt;
        EXPECT_EQ(mf.sum(1), sum1) << "threads=" << nt;
        EXPECT_EQ(mf.min(0), min1) << "threads=" << nt;
        EXPECT_EQ(mf.max(1), max1) << "threads=" << nt;
    }
}

TEST(ThreadPool, ReduceMinBitwiseIdenticalAcrossThreadCounts) {
    ThreadGuard guard;
    const Box b(IntVect{-3, 0, 2}, IntVect{12, 9, 17});
    auto f = [](int i, int j, int k) {
        return std::cos(0.31 * i) * std::sin(0.17 * j) + 0.05 * k;
    };
    setNumThreads(1);
    const double mn1 = ReduceMin(b, f);
    const double mx1 = ReduceMax(b, f);
    for (int nt : {2, 5, 8}) {
        setNumThreads(nt);
        EXPECT_EQ(ReduceMin(b, f), mn1) << "threads=" << nt;
        EXPECT_EQ(ReduceMax(b, f), mx1) << "threads=" << nt;
    }
}

TEST(ThreadPool, TaskToThreadAssignmentIsDeterministic) {
    ThreadGuard guard;
    setNumThreads(2);
    const int ntasks = 8;
    std::vector<std::thread::id> owner(ntasks);
    ThreadPool::instance().run(ntasks, [&](int t) {
        owner[static_cast<std::size_t>(t)] = std::this_thread::get_id();
    });
    // No work stealing: task t runs on thread t % numThreads, so tasks with
    // equal parity share a thread and opposite parity never mix.
    for (int t = 2; t < ntasks; ++t)
        EXPECT_EQ(owner[static_cast<std::size_t>(t)],
                  owner[static_cast<std::size_t>(t - 2)]);
    EXPECT_NE(owner[0], owner[1]);
}

TEST(ThreadPool, NestedLaunchesSerializeInsteadOfDeadlocking) {
    ThreadGuard guard;
    setNumThreads(4);
    const Box inner(IntVect::zero(), IntVect(3));
    std::vector<std::int64_t> counts(8, 0);
    ParallelForIndex(8, [&](int t) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        // The nested launch must run serially on this worker (no pool
        // re-entry), so a plain counter is race-free here.
        std::int64_t c = 0;
        ParallelFor(inner, [&](int, int, int) { ++c; });
        counts[static_cast<std::size_t>(t)] = c;
    });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    for (std::int64_t c : counts) EXPECT_EQ(c, inner.numPts());
}

TEST(ThreadPool, ExceptionInTaskPropagatesToCaller) {
    ThreadGuard guard;
    setNumThreads(3);
    EXPECT_THROW(ThreadPool::instance().run(
                     6,
                     [&](int t) {
                         if (t == 4) throw std::runtime_error("task 4 failed");
                     }),
                 std::runtime_error);
    // The pool survives a throwing job and runs the next one.
    std::vector<int> seen(5, 0);
    ThreadPool::instance().run(5, [&](int t) { seen[static_cast<std::size_t>(t)] = 1; });
    for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(ThreadPool, SingleThreadRunsTasksInOrderOnCaller) {
    ThreadGuard guard;
    setNumThreads(1);
    const auto caller = std::this_thread::get_id();
    std::vector<int> order;
    ThreadPool::instance().run(5, [&](int t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(t);
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DefaultHonorsEnvironmentOverride) {
    // defaultNumThreads reads GPU_NUM_THREADS each call — the hook the
    // GPU_NUM_THREADS=4 ctest instances and ParmParse rely on.
    const char* old = std::getenv("GPU_NUM_THREADS");
    const std::string saved = old ? old : "";
    ::setenv("GPU_NUM_THREADS", "7", 1);
    EXPECT_EQ(ThreadPool::defaultNumThreads(), 7);
    if (old) ::setenv("GPU_NUM_THREADS", saved.c_str(), 1);
    else ::unsetenv("GPU_NUM_THREADS");
    EXPECT_GE(ThreadPool::defaultNumThreads(), 1);
}

} // namespace
} // namespace crocco::gpu
