#include "gpu/Arena.hpp"
#include "gpu/DeviceModel.hpp"
#include "gpu/Gpu.hpp"

#include "core/KernelProfiles.hpp"

#include <gtest/gtest.h>

namespace crocco::gpu {
namespace {

using amr::Box;
using amr::IntVect;

// Visit counts are kept per cell (each cell is written by exactly one
// logical thread), so these tests are race-free at any gpu.num_threads.
TEST(ParallelFor, VisitsEveryCellOnce) {
    const Box b(IntVect{1, 2, 3}, IntVect{4, 5, 6});
    std::vector<int> visits(static_cast<std::size_t>(b.numPts()), 0);
    ParallelFor(b, [&](int i, int j, int k) {
        ++visits[static_cast<std::size_t>(b.index({i, j, k}))];
    });
    for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, ComponentVariant) {
    const Box b(IntVect::zero(), IntVect(2));
    const int ncomp = 4;
    std::vector<int> visits(static_cast<std::size_t>(b.numPts() * ncomp), 0);
    ParallelFor(b, ncomp, [&](int i, int j, int k, int n) {
        ++visits[static_cast<std::size_t>(n * b.numPts() + b.index({i, j, k}))];
    });
    EXPECT_EQ(visits.size(), 27u * 4u);
    for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Reduce, MinAndMax) {
    const Box b(IntVect::zero(), IntVect(4));
    const double mn =
        ReduceMin(b, [](int i, int j, int k) { return double(i + j + k); });
    const double mx =
        ReduceMax(b, [](int i, int j, int k) { return double(i * j * k); });
    EXPECT_EQ(mn, 0.0);
    EXPECT_EQ(mx, 64.0);
}

TEST(Arena, TracksUsageAndHighWater) {
    Arena arena(1000);
    arena.allocate(400);
    arena.allocate(500);
    EXPECT_EQ(arena.inUse(), 900);
    arena.release(500);
    EXPECT_EQ(arena.inUse(), 400);
    EXPECT_EQ(arena.highWater(), 900);
    EXPECT_TRUE(arena.wouldFit(600));
    EXPECT_FALSE(arena.wouldFit(601));
}

TEST(Arena, ThrowsOnOverflow) {
    Arena arena(100);
    arena.allocate(90);
    EXPECT_THROW(arena.allocate(20), OutOfDeviceMemory);
    EXPECT_EQ(arena.inUse(), 90); // failed allocation does not count
}

TEST(Arena, RaiiAllocation) {
    Arena arena(100);
    {
        DeviceAllocation a(arena, 60);
        EXPECT_EQ(arena.inUse(), 60);
    }
    EXPECT_EQ(arena.inUse(), 0);
    EXPECT_EQ(arena.highWater(), 60);
}

TEST(Arena, OverReleaseThrowsDescriptiveLogicError) {
    // A plain assert would compile out under NDEBUG and let the accounting
    // go silently negative; over-release must be loud in release builds.
    Arena arena(100);
    arena.allocate(40);
    try {
        arena.release(50);
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("50"), std::string::npos) << msg;
        EXPECT_NE(msg.find("40"), std::string::npos) << msg;
        EXPECT_NE(msg.find("double release"), std::string::npos) << msg;
    }
    EXPECT_THROW(arena.release(-1), std::logic_error);
    // The failed release left the books intact.
    EXPECT_EQ(arena.inUse(), 40);
    arena.release(40);
    EXPECT_EQ(arena.inUse(), 0);
}

TEST(Arena, V100CapacityIs16GB) {
    EXPECT_EQ(Arena::v100().capacity(), 16ll * 1024 * 1024 * 1024);
}

TEST(V100Model, OccupancyMatchesPaperForWenoProfile) {
    // The paper reports 12.5% theoretical occupancy from register pressure
    // (§VI-A); the model must land there for the WENO profile.
    V100Model v100;
    EXPECT_NEAR(v100.occupancy(core::wenoKernelProfile()), 0.125, 0.04);
}

TEST(V100Model, KernelTimeScalesWithSizeAndSaturates) {
    V100Model v100;
    const auto& k = core::wenoKernelProfile();
    const double t1 = v100.kernelTime(k, 1'000);
    const double t2 = v100.kernelTime(k, 100'000);
    const double t3 = v100.kernelTime(k, 10'000'000);
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);
    // Throughput (pts/s) grows then saturates: large sizes within 2x of
    // each other per point.
    const double r2 = 100'000 / t2, r3 = 10'000'000 / t3;
    EXPECT_GT(r3, r2 * 0.9);
    EXPECT_LT(r3, r2 * 10.0);
}

TEST(V100Model, AchievedFlopsNearPaperValue) {
    // Paper: ~300 GF/s DP achieved, ~4% of the 7.8 TF/s peak (Fig. 4).
    V100Model v100;
    const double gf = v100.achievedFlops(core::wenoKernelProfile(), 10'000'000) / 1e9;
    EXPECT_GT(gf, 150.0);
    EXPECT_LT(gf, 600.0);
}

TEST(V100Model, BandwidthBoundAtEveryLevel) {
    // AI at each level sits left of the compute roofline ridge.
    const auto& k = core::wenoKernelProfile();
    V100Model v100;
    const double occPeak = v100.peakFlops * v100.occupancy(k);
    EXPECT_LT(k.aiDram() * v100.bwDram, occPeak * 10); // dram-bound regime
    EXPECT_LT(k.aiDram(), 1.0); // strongly bandwidth-bound kernel
}

TEST(P9SocketModel, CppSlowdownMatchesPaper) {
    P9SocketModel p9;
    const auto& k = core::wenoKernelProfile();
    const double tF = p9.kernelTime(k, 1'000'000, false);
    const double tC = p9.kernelTime(k, 1'000'000, true);
    EXPECT_NEAR(tC / tF, 1.2, 1e-9);
}

TEST(Models, GpuSpeedupBandMatchesFig3) {
    // Fig. 3: 2.5x (small problems) to 15.8x (large) GPU speedup over the
    // Fortran CPU kernels on one socket + one V100.
    V100Model v100;
    P9SocketModel p9;
    const auto& k = core::wenoKernelProfile();
    const double small = p9.kernelTime(k, 50'000, false) / v100.kernelTime(k, 50'000);
    const double large =
        p9.kernelTime(k, 20'000'000, false) / v100.kernelTime(k, 20'000'000);
    EXPECT_GT(small, 1.0);
    EXPECT_LT(small, large);
    EXPECT_GT(large, 8.0);
    EXPECT_LT(large, 40.0);
}

} // namespace
} // namespace crocco::gpu
