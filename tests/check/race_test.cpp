#include "check/Check.hpp"
#include "check/RaceDetector.hpp"
#include "gpu/Gpu.hpp"
#include "gpu/Stream.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

// ThreadPool race detector: deliberately conflicting launches must be
// flagged, the codebase's legitimate decompositions (disjoint slabs,
// disjoint components, nested serialized launches) must stay clean, and a
// stock RK3 advance at 8 threads must produce zero reports.
//
// The "racy" launches below touch *disjoint memory* whose per-task bounding
// boxes overlap: the detector is conservative over bboxes, so it flags
// them, while the test itself stays free of real data races (and clean
// under thread sanitizers).

#ifndef CROCCO_CHECK

namespace {
TEST(RaceDetector, RequiresCheckBuild) {
    GTEST_SKIP() << "race detector suites require -DCROCCO_CHECK=ON";
}
} // namespace

#else

namespace crocco::gpu {
namespace {

using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

struct ThreadGuard {
    int saved = numThreads();
    ~ThreadGuard() { setNumThreads(saved); }
};

TEST(RaceDetector, OverlappingWritesBetweenTasksFlagged) {
    ThreadGuard guard;
    setNumThreads(4);
    FArrayBox fab(Box(IntVect(0), IntVect(7)), 1);
    auto a = fab.array();
    check::ScopedFailureCapture cap;
    ParallelForIndex(2, [&](int t) {
        // Opposite corners per task: disjoint cells, identical bboxes.
        a(t == 0 ? 0 : 7, 0, 0) = 1.0;
        a(t == 0 ? 7 : 0, 7, 7) = 2.0;
    });
    ASSERT_GE(cap.count(check::Kind::Race), 1u);
    const auto v = cap.violations(); // by value: violations() returns a copy
    EXPECT_NE(v[0].message.find("write-write"), std::string::npos) << v[0].message;
    EXPECT_NE(v[0].message.find("fab#"), std::string::npos) << v[0].message;
}

TEST(RaceDetector, ReadWriteOverlapBetweenTasksFlagged) {
    ThreadGuard guard;
    setNumThreads(4);
    FArrayBox fab(Box(IntVect(0), IntVect(3)), 1); // bare fab: fully Valid
    auto w = fab.array();
    auto r = fab.const_array();
    check::ScopedFailureCapture cap;
    ParallelForIndex(2, [&](int t) {
        if (t == 0) {
            w(0, 0, 0) = 1.0;
            w(3, 3, 3) = 2.0;
        } else {
            (void)r(3, 0, 0);
            (void)r(0, 3, 3);
        }
    });
    ASSERT_GE(cap.count(check::Kind::Race), 1u);
    EXPECT_NE(cap.violations()[0].message.find("read-write"),
              std::string::npos)
        << cap.violations()[0].message;
}

TEST(RaceDetector, DisjointSlabsAndComponentsClean) {
    ThreadGuard guard;
    setNumThreads(4);
    const Box box(IntVect(0), IntVect(7));
    FArrayBox fab(box, 2);
    auto a = fab.array();
    auto& det = check::RaceDetector::instance();
    const auto before = det.launches();
    check::ScopedFailureCapture cap;
    // Standard per-cell kernel: tasks own disjoint k-slabs.
    ParallelFor(box, [&](int i, int j, int k) { a(i, j, k, 0) = i + j + k; });
    // Same cells, disjoint components per task: compMask keeps it clean.
    ParallelFor(box, 2, [&](int i, int j, int k, int n) { a(i, j, k, n) = n; });
    EXPECT_EQ(cap.count(), 0u);
    EXPECT_GE(det.launches(), before + 2) << "launches were pool-parallel";
}

TEST(RaceDetector, NestedLaunchesChargeTheEnclosingTask) {
    ThreadGuard guard;
    setNumThreads(4);
    FArrayBox fab(Box(IntVect(0), IntVect(7)), 1);
    auto a = fab.array();
    {
        // Disjoint halves via nested per-cell launches: clean.
        check::ScopedFailureCapture cap;
        ParallelForIndex(2, [&](int t) {
            const Box half(IntVect{0, 0, t * 4}, IntVect{7, 7, t * 4 + 3});
            ParallelFor(half, [&](int i, int j, int k) { a(i, j, k) = t; });
        });
        EXPECT_EQ(cap.count(), 0u);
    }
    {
        // Single-cell nested launches at opposite corners: each outer task's
        // accumulated bbox spans the fab, so the pair is flagged even though
        // every access went through a (serialized) nested launch.
        check::ScopedFailureCapture cap;
        ParallelForIndex(2, [&](int t) {
            const IntVect c0 = t == 0 ? IntVect{0, 0, 0} : IntVect{7, 7, 7};
            const IntVect c1 = t == 0 ? IntVect{7, 7, 6} : IntVect{0, 0, 1};
            ParallelFor(Box(c0, c0), [&](int i, int j, int k) { a(i, j, k) = t; });
            ParallelFor(Box(c1, c1), [&](int i, int j, int k) { a(i, j, k) = t; });
        });
        EXPECT_GE(cap.count(check::Kind::Race), 1u);
    }
}

TEST(RaceDetector, SerialExecutionIsUnrecorded) {
    ThreadGuard guard;
    setNumThreads(1);
    FArrayBox fab(Box(IntVect(0), IntVect(3)), 1);
    auto a = fab.array();
    auto& det = check::RaceDetector::instance();
    const auto before = det.launches();
    check::ScopedFailureCapture cap;
    // Serially executed tasks may legitimately revisit cells.
    ParallelForIndex(2, [&](int t) { a(0, 0, 0) = t; });
    EXPECT_EQ(cap.count(), 0u);
    EXPECT_EQ(det.launches(), before);
}

TEST(RaceDetector, EventOrderingSuppressesOrderedPairsOnly) {
    ThreadGuard guard;
    setNumThreads(4);
    FArrayBox fab(Box(IntVect(0), IntVect(7)), 1);
    auto a = fab.array();
    auto r = fab.const_array();
    {
        // Producer/consumer sequenced through an Event (the fused End+halo
        // launch shape): task 0 writes then signals as its LAST action, the
        // readers wait FIRST — a real happens-before edge, so the detector
        // must stay quiet despite the overlapping bboxes.
        check::ScopedFailureCapture cap;
        Event ready;
        ParallelForIndex(3, [&](int t) {
            if (t == 0) {
                Event::SignalGuard sg(ready);
                ParallelFor(fab.box(),
                            [&](int i, int j, int k) { a(i, j, k) = 1.0; });
                return;
            }
            ready.wait();
            (void)r(t, t, t);
        });
        EXPECT_EQ(cap.count(), 0u)
            << (cap.count() ? cap.violations()[0].message : std::string());
    }
    {
        // The same shape WITHOUT the event ordering is still a race: only
        // pairs connected by a signal->wait edge are suppressed.
        check::ScopedFailureCapture cap;
        ParallelForIndex(3, [&](int t) {
            if (t == 0) {
                ParallelFor(fab.box(),
                            [&](int i, int j, int k) { a(i, j, k) = 2.0; });
                return;
            }
            (void)r(t, t, t);
        });
        EXPECT_GE(cap.count(check::Kind::Race), 1u);
    }
}

TEST(RaceDetector, OverlappedRk3AdvanceCleanAtEightThreads) {
    // The split Begin/interior/End+halo advance must be race-free under the
    // detector: ghost writes (task 0 of the fused launch) against halo
    // reads are ordered by the End event, everything else is disjoint.
    ThreadGuard guard;
    problems::Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    problems::Dmr dmr(o);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.gpuNumThreads = 8;
    cfg.regridFreq = 2;
    cfg.overlap = true;
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    auto& det = check::RaceDetector::instance();
    const auto before = det.launches();
    check::ScopedFailureCapture cap;
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.evolve(2);
    EXPECT_EQ(cap.count(), 0u) << (cap.count() ? cap.violations()[0].message
                                               : std::string());
    EXPECT_GT(det.launches(), before) << "the detector actually engaged";
}

TEST(RaceDetector, StockRk3AdvanceCleanAtEightThreads) {
    ThreadGuard guard;
    problems::Dmr::Options o;
    o.nx = 64;
    o.ny = 16;
    o.nz = 8;
    o.maxLevel = 1;
    problems::Dmr dmr(o);
    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.gpuNumThreads = 8; // the solver ctor installs this in the pool
    cfg.regridFreq = 2;    // include a regrid in the watched window
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    auto& det = check::RaceDetector::instance();
    const auto before = det.launches();
    check::ScopedFailureCapture cap;
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());
    solver.evolve(2);
    EXPECT_EQ(cap.count(), 0u) << (cap.count() ? cap.violations()[0].message
                                               : std::string());
    EXPECT_GT(det.launches(), before) << "the detector actually engaged";
}

} // namespace
} // namespace crocco::gpu

#endif // CROCCO_CHECK
