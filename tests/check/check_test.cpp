#include "check/Check.hpp"

#include "amr/MultiFab.hpp"
#include "gpu/Arena.hpp"

#include <gtest/gtest.h>

#include <cmath>

// Core CroccoCheck behavior: failure plumbing, NaN poisoning, and the
// Array4 bounds + ghost-validity checkers. Everything here needs the
// instrumented accessors, so the suite self-skips in unchecked builds.

namespace crocco {
namespace {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::FArrayBox;
using amr::Geometry;
using amr::IntVect;
using amr::MultiFab;
using amr::Real;

TEST(CheckCore, PoisonValueIsSignalingNaNPattern) {
    const double p = check::poisonValue();
    EXPECT_TRUE(std::isnan(p));
    // Arithmetic must stay NaN so an escaped uninitialized value propagates
    // to any result computed from it.
    EXPECT_TRUE(std::isnan(p * 2.0 + 1.0));
}

TEST(CheckCore, ArenaPoisonFreshMatchesBuildMode) {
    double buf[4] = {1.0, 2.0, 3.0, 4.0};
    gpu::Arena::poisonFresh(buf, 4);
    for (double v : buf) {
        if (check::enabled) {
            EXPECT_TRUE(std::isnan(v));
        } else {
            EXPECT_FALSE(std::isnan(v));
        }
    }
}

#ifdef CROCCO_CHECK

TEST(CheckCore, CaptureCollectsAndNests) {
    check::ScopedFailureCapture outer;
    check::fail(check::Kind::Bounds, "outer-1");
    {
        check::ScopedFailureCapture inner;
        check::fail(check::Kind::Race, "inner-1");
        EXPECT_EQ(inner.count(), 1u);
        EXPECT_EQ(inner.count(check::Kind::Race), 1u);
    }
    // Violations raised inside the inner scope never leak to the outer one.
    EXPECT_EQ(outer.count(), 1u);
    EXPECT_EQ(outer.violations()[0].message, "outer-1");
    EXPECT_EQ(check::mode(), check::Mode::Capture);
    outer.clear();
    EXPECT_EQ(outer.count(), 0u);
}

TEST(CheckBounds, OutOfBoxReadFires) {
    FArrayBox fab(Box(IntVect(0), IntVect(3)), 2);
    check::ScopedFailureCapture cap;
    auto a = fab.const_array();
    (void)a(4, 0, 0, 0); // i past hi
    (void)a(0, 0, 0, 2); // comp past ncomp
    ASSERT_EQ(cap.count(check::Kind::Bounds), 2u);
    const auto v = cap.violations();
    EXPECT_NE(v[0].message.find("(4,0,0)"), std::string::npos) << v[0].message;
    EXPECT_NE(v[0].message.find("check_test.cpp"), std::string::npos)
        << "callsite missing: " << v[0].message;
}

TEST(CheckBounds, OutOfBoxWriteGoesToDummyCell) {
    FArrayBox fab(Box(IntVect(0), IntVect(3)), 1, 7.0);
    check::ScopedFailureCapture cap;
    auto a = fab.array();
    a(-1, 0, 0) = 123.0; // lands in the sentinel, not the fab
    EXPECT_EQ(cap.count(check::Kind::Bounds), 1u);
    EXPECT_EQ(fab(IntVect{0, 0, 0}), 7.0);
}

TEST(CheckBoundsDeathTest, AbortsOutsideCapture) {
    FArrayBox fab(Box(IntVect(0), IntVect(3)), 1);
    auto a = fab.const_array();
    EXPECT_DEATH((void)a(9, 9, 9, 0), "CROCCO_CHECK \\[bounds\\]");
}

TEST(CheckValidity, BareFabIsFullyValid) {
    // Bare fabs (kernel scratch) are value-initialized: reading any cell,
    // ghosts included, is legitimate.
    FArrayBox fab(Box(IntVect(0), IntVect(3)).grow(2), 1);
    check::ScopedFailureCapture cap;
    auto a = fab.const_array();
    (void)a(-2, -2, -2, 0);
    EXPECT_EQ(cap.count(), 0u);
}

TEST(CheckValidity, NeverFilledMultiFabCellFiresOnRead) {
    BoxArray ba(Box(IntVect(0), IntVect(7)));
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, 2, 2);
    check::ScopedFailureCapture cap;
    (void)mf.const_array(0)(0, 0, 0, 0); // valid region, never written
    ASSERT_EQ(cap.count(check::Kind::Uninit), 1u);
    EXPECT_NE(cap.violations()[0].message.find("never-filled"),
              std::string::npos);
    // The backing storage really is poisoned, not just shadow-flagged.
    EXPECT_TRUE(std::isnan(mf.fab(0).shadowMap().defined()
                               ? mf.const_array(0)(0, 0, 0, 0)
                               : 0.0));
}

TEST(CheckValidity, WriteMarksCellValidForLaterReads) {
    BoxArray ba(Box(IntVect(0), IntVect(7)));
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, 1, 2);
    check::ScopedFailureCapture cap;
    mf.array(0)(3, 3, 3, 0) = 1.5;
    EXPECT_EQ(mf.const_array(0)(3, 3, 3, 0), 1.5);
    EXPECT_EQ(cap.count(), 0u);
    // Only that (cell, comp) became valid.
    (void)mf.const_array(0)(3, 3, 4, 0);
    EXPECT_EQ(cap.count(check::Kind::Uninit), 1u);
}

TEST(CheckValidity, SetValMarksEverythingValid) {
    BoxArray ba(Box(IntVect(0), IntVect(7)));
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, 2, 3);
    mf.setVal(0.25);
    check::ScopedFailureCapture cap;
    (void)mf.const_array(0)(-3, -3, -3, 1); // deepest ghost corner
    EXPECT_EQ(cap.count(), 0u);
}

TEST(CheckValidity, FillBoundaryValidatesExchangedGhosts) {
    // Two abutting fabs, fully periodic domain: every ghost cell is covered
    // by a sibling/periodic image, so after fillBoundary all ghosts of the
    // written MultiFab must be readable.
    const Box domain(IntVect(0), IntVect{15, 7, 7});
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, amr::Periodicity::all());
    BoxArray ba(std::vector<Box>{Box(IntVect(0), IntVect{7, 7, 7}),
                                 Box(IntVect{8, 0, 0}, IntVect{15, 7, 7})});
    DistributionMapping dm(ba, 1);
    // Fill only the valid regions so the ghost transition is observable.
    MultiFab mf2(ba, dm, 1, 2);
    for (int f = 0; f < mf2.numFabs(); ++f) {
        auto a = mf2.array(f);
        amr::forEachCell(mf2.validBox(f),
                         [&](int i, int j, int k) { a(i, j, k, 0) = i + j + k; });
    }
    {
        check::ScopedFailureCapture cap;
        (void)mf2.const_array(0)(-1, 0, 0, 0);
        ASSERT_EQ(cap.count(check::Kind::Uninit), 1u) << "ghost before exchange";
    }
    mf2.fillBoundary(geom);
    check::ScopedFailureCapture cap;
    for (int f = 0; f < mf2.numFabs(); ++f) {
        auto a = mf2.const_array(f);
        amr::forEachCell(mf2.grownBox(f),
                         [&](int i, int j, int k) { (void)a(i, j, k, 0); });
    }
    EXPECT_EQ(cap.count(), 0u);
}

TEST(CheckValidity, InvalidateGhostsTurnsValidGhostsStale) {
    const Box domain(IntVect(0), IntVect(7));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, amr::Periodicity::all());
    BoxArray ba(domain);
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, 1, 2);
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.array(f);
        amr::forEachCell(mf.validBox(f),
                         [&](int i, int j, int k) { a(i, j, k, 0) = 1.0; });
    }
    mf.fillBoundary(geom);
    using State = check::FabShadow::State;
    ASSERT_EQ(mf.fab(0).shadowMap().state(-1, 0, 0, 0), State::Valid);
    mf.invalidateGhosts();
    EXPECT_EQ(mf.fab(0).shadowMap().state(-1, 0, 0, 0), State::Stale);
    EXPECT_EQ(mf.fab(0).shadowMap().state(0, 0, 0, 0), State::Valid)
        << "valid region must not be touched";
    check::ScopedFailureCapture cap;
    (void)mf.const_array(0)(-1, 0, 0, 0);
    ASSERT_EQ(cap.count(check::Kind::StaleGhost), 1u);
    EXPECT_NE(cap.violations()[0].message.find("stale"), std::string::npos);
    // A fresh exchange re-validates.
    mf.fillBoundary(geom);
    cap.clear();
    (void)mf.const_array(0)(-1, 0, 0, 0);
    EXPECT_EQ(cap.count(), 0u);
}

#else // !CROCCO_CHECK

TEST(CheckCore, DisabledBuildSkipsInstrumentedSuites) {
    GTEST_SKIP() << "CroccoCheck suites require -DCROCCO_CHECK=ON";
}

#endif

} // namespace
} // namespace crocco
