#include "amr/FillPatch.hpp"
#include "check/Check.hpp"
#include "core/BCFill.hpp"
#include "problems/Dmr.hpp"

#include <gtest/gtest.h>

// Ghost-validity shadow map across a full AMR cycle — FillPatchTwoLevels,
// AverageDown, level remake — plus the BC corner-sweep regression: the
// pre-fix boundary fill read never-filled corner sources, which the checker
// must flag, while the clamped-sweep fill must run clean.

#ifndef CROCCO_CHECK

namespace {
TEST(ValidityCycle, RequiresCheckBuild) {
    GTEST_SKIP() << "validity cycle suites require -DCROCCO_CHECK=ON";
}
} // namespace

#else

namespace crocco::amr {
namespace {

std::vector<Box> tiledBoxes(const Box& domain, int size) {
    std::vector<Box> out;
    forEachCell(domain.coarsen(size), [&](int i, int j, int k) {
        const IntVect lo = IntVect{i, j, k} * size;
        out.emplace_back(lo, lo + IntVect(size - 1));
    });
    return out;
}

double affine(int lev, const IntVect& p) {
    const double h = (lev == 0) ? 1.0 : 0.5;
    return 2.0 * (p[0] + 0.5) * h - 1.0 * (p[1] + 0.5) * h +
           0.5 * (p[2] + 0.5) * h + 3.0;
}

// Mirrors the two-level hierarchy of the FillPatch tests: coarse level over
// a 16^3 domain, fine level over its middle, z periodic, 4 ghost layers.
struct TwoLevelSetup {
    Box domain0{IntVect::zero(), IntVect(15)};
    Geometry geom0, geom1;
    BoxArray ba0, ba1;
    DistributionMapping dm0, dm1;
    MultiFab crse, fine;

    TwoLevelSetup() {
        Periodicity per;
        per.periodic[2] = true;
        geom0 = Geometry(domain0, {0, 0, 0}, {1, 1, 1}, per);
        geom1 = geom0.refine(IntVect(2));
        ba0 = BoxArray(tiledBoxes(domain0, 8));
        dm0 = DistributionMapping(ba0, 2);
        ba1 = BoxArray(tiledBoxes(Box(IntVect(8), IntVect(23)), 8));
        dm1 = DistributionMapping(ba1, 2);
        crse.define(ba0, dm0, 1, 4);
        fine.define(ba1, dm1, 1, 4);
        fillLevel(crse, 0);
        fillLevel(fine, 1);
    }
    static void fillLevel(MultiFab& mf, int lev) {
        for (int f = 0; f < mf.numFabs(); ++f) {
            auto a = mf.array(f);
            forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, 0) = affine(lev, {i, j, k});
            });
        }
    }
};

PhysBCFunct extrapolationBC() {
    return [](MultiFab& mf, const Geometry& g, Real) {
        for (int f = 0; f < mf.numFabs(); ++f) {
            const Box interior = mf.grownBox(f) & g.domain();
            linearExtrapolateGhost(mf.fab(f), interior, 0, mf.nComp());
        }
    };
}

// Reads every allocated cell of every fab through the checked const view;
// returns the number of violations that raised.
std::size_t readEverything(const MultiFab& mf) {
    check::ScopedFailureCapture cap;
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.const_array(f);
        for (int n = 0; n < mf.nComp(); ++n)
            forEachCell(mf.grownBox(f),
                        [&](int i, int j, int k) { (void)a(i, j, k, n); });
    }
    return cap.count();
}

TEST(ValidityCycle, FillPatchTwoLevelsMakesEveryCellReadable) {
    TwoLevelSetup s;
    MultiFab dst(s.ba1, s.dm1, 1, 4);
    {
        check::ScopedFailureCapture cap;
        (void)dst.const_array(0)(8, 8, 8, 0); // fresh scratch: poisoned
        ASSERT_EQ(cap.count(check::Kind::Uninit), 1u);
    }
    TrilinearInterp interp;
    check::ScopedFailureCapture cap;
    FillPatchTwoLevels(dst, s.fine, s.crse, s.geom1, s.geom0, IntVect(2),
                       interp, extrapolationBC(), extrapolationBC(), 0.0);
    EXPECT_EQ(cap.count(), 0u) << "FillPatch itself must not read stale data";
    EXPECT_EQ(readEverything(dst), 0u);
    using State = check::FabShadow::State;
    EXPECT_EQ(dst.fab(0).shadowMap().state(7, 8, 8, 0), State::Valid);
}

TEST(ValidityCycle, AverageDownStalesCoarseGhosts) {
    TwoLevelSetup s;
    s.crse.fillBoundary(s.geom0);
    using State = check::FabShadow::State;
    // Fab 0 is (0..7)^3; its ghost at (8,0,0) sits in a sibling's valid
    // region and is Valid after the exchange.
    ASSERT_EQ(s.crse.fab(0).shadowMap().state(8, 0, 0, 0), State::Valid);
    AverageDown(s.fine, s.crse, IntVect(2), 0, 0, 1);
    EXPECT_EQ(s.crse.fab(0).shadowMap().state(8, 0, 0, 0), State::Stale);
    EXPECT_EQ(s.crse.fab(0).shadowMap().state(0, 0, 0, 0), State::Valid);
    check::ScopedFailureCapture cap;
    (void)s.crse.const_array(0)(8, 0, 0, 0);
    ASSERT_EQ(cap.count(check::Kind::StaleGhost), 1u);
    // The next exchange restores readability.
    s.crse.fillBoundary(s.geom0);
    cap.clear();
    (void)s.crse.const_array(0)(8, 0, 0, 0);
    EXPECT_EQ(cap.count(), 0u);
}

TEST(ValidityCycle, RemadeLevelIsPoisonedUntilInterpFills) {
    // Regrid remakes a level as a fresh MultiFab and fills it from coarse —
    // exactly this sequence. The new layout is deliberately offset from any
    // existing fine patch.
    TwoLevelSetup s;
    BoxArray nba(Box(IntVect(4), IntVect(19)));
    DistributionMapping ndm(nba, 2);
    MultiFab remade(nba, ndm, 1, 4);
    {
        check::ScopedFailureCapture cap;
        (void)remade.const_array(0)(4, 4, 4, 0);
        ASSERT_EQ(cap.count(check::Kind::Uninit), 1u)
            << "remade level must start poisoned";
    }
    TrilinearInterp interp;
    check::ScopedFailureCapture cap;
    InterpFromCoarseLevel(remade, s.crse, s.geom1, s.geom0, IntVect(2), interp,
                          extrapolationBC(), extrapolationBC(), 0.0);
    EXPECT_EQ(cap.count(), 0u);
    EXPECT_EQ(readEverything(remade), 0u);
}

// --- BC corner-sweep regression (the violation CroccoCheck caught) -------

struct BCFixture {
    Box domain{IntVect::zero(), IntVect{15, 7, 7}};
    Geometry geom;
    MultiFab mf;

    BCFixture() {
        Periodicity per;
        per.periodic[2] = true;
        geom = Geometry(domain, {0, 0, 0}, {1, 1, 1}, per);
        BoxArray ba(domain);
        DistributionMapping dm(ba, 1);
        mf.define(ba, dm, core::NCONS, 2);
        auto a = mf.array(0);
        forEachCell(mf.validBox(0), [&](int i, int j, int k) {
            for (int n = 0; n < core::NCONS; ++n)
                a(i, j, k, n) = 1.0 + i + 2 * j + 3 * k + n;
        });
        mf.fillBoundary(geom); // periodic z ghosts become Valid
    }
};

TEST(BCRegression, UnclampedOutflowSweepReadsNeverFilledCorners) {
    BCFixture fx;
    const Box grown = fx.mf.grownBox(0);
    const Box unclamped =
        core::ghostRegionOutside(grown, fx.domain, 0, 1);
    const Box clamped = core::bcSweepRegion(grown, fx.domain, 0, 1, fx.geom);
    // The clamp removes the y corner rows (z stays: periodic).
    ASSERT_LT(clamped.numPts(), unclamped.numPts());
    ASSERT_EQ(clamped.smallEnd(2), unclamped.smallEnd(2));
    // Pre-fix sweep shape: zero-gradient fill over the *unclamped* region
    // reads the domain-edge source row at every (j, k), including y ghost
    // rows no BC sweep has filled yet.
    check::ScopedFailureCapture cap;
    const auto src = fx.mf.const_array(0);
    forEachCell(unclamped, [&](int /*i*/, int j, int k) {
        (void)src(fx.domain.bigEnd(0), j, k, 0);
    });
    EXPECT_GT(cap.count(check::Kind::Uninit), 0u)
        << "unclamped sweep must read never-filled corner sources";
}

TEST(BCRegression, ClampedApplyBCsRunsCleanAndFillsEverything) {
    BCFixture fx;
    core::BCSpec spec;
    spec.face[0][0].type = core::BCType::Dirichlet;
    spec.face[0][0].state = {1.4, 0.0, 0.0, 0.0, 2.5};
    spec.face[0][1].type = core::BCType::Outflow;
    spec.face[1][0].type = core::BCType::SlipWall;
    spec.face[1][1].type = core::BCType::NoSlipWall;
    spec.face[2][0].type = core::BCType::Periodic;
    spec.face[2][1].type = core::BCType::Periodic;
    {
        check::ScopedFailureCapture cap;
        core::applyBCs(fx.mf, fx.geom, spec);
        EXPECT_EQ(cap.count(), 0u) << "fixed sweeps read only filled cells";
    }
    EXPECT_EQ(readEverything(fx.mf), 0u)
        << "every allocated cell is filled after fillBoundary + applyBCs";
}

TEST(BCRegression, DmrBoundaryFunctorRunsClean) {
    // The production DMR functor (mixed inflow/outflow/wall/tracked-shock)
    // on its own geometry: no stale or never-filled reads.
    problems::Dmr dmr;
    const Geometry& geom = dmr.geometry();
    BoxArray ba(geom.domain());
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, core::NCONS, core::NGHOST);
    auto a = mf.array(0);
    const auto post = problems::Dmr::postShockState();
    forEachCell(mf.validBox(0), [&](int i, int j, int k) {
        for (int n = 0; n < core::NCONS; ++n)
            a(i, j, k, n) = post[static_cast<std::size_t>(n)];
    });
    mf.fillBoundary(geom);
    check::ScopedFailureCapture cap;
    dmr.boundaryConditions()(mf, geom, 0.1);
    EXPECT_EQ(cap.count(), 0u);
    EXPECT_EQ(readEverything(mf), 0u);
}

} // namespace
} // namespace crocco::amr

#endif // CROCCO_CHECK
