#include "amr/CommCache.hpp"
#include "amr/MultiFab.hpp"
#include "check/Check.hpp"

#include <gtest/gtest.h>

// CommCache replay guard: a sampled cache hit re-derives the pattern and
// asserts it byte-identical to the cached descriptors. A deliberately
// corrupted cache entry must be reported; healthy hits must verify clean.

#ifndef CROCCO_CHECK

namespace {
TEST(CommGuard, RequiresCheckBuild) {
    GTEST_SKIP() << "comm guard suites require -DCROCCO_CHECK=ON";
}
} // namespace

#else

namespace crocco::amr {
namespace {

struct SampleRateGuard {
    int saved = check::commGuardSampleRate();
    ~SampleRateGuard() { check::setCommGuardSampleRate(saved); }
};

struct CommSetup {
    Box domain{IntVect::zero(), IntVect{15, 7, 7}};
    Geometry geom;
    BoxArray ba;
    DistributionMapping dm;
    MultiFab mf;

    CommSetup() {
        Periodicity per;
        per.periodic[2] = true;
        geom = Geometry(domain, {0, 0, 0}, {1, 1, 1}, per);
        ba = BoxArray(std::vector<Box>{Box(IntVect::zero(), IntVect{7, 7, 7}),
                                       Box(IntVect{8, 0, 0}, IntVect{15, 7, 7})});
        dm = DistributionMapping(ba, 1);
        mf.define(ba, dm, 1, 2);
        mf.setVal(0.0);
    }
};

TEST(CommGuard, CorruptedFillBoundaryPatternIsReported) {
    SampleRateGuard rate;
    CommSetup s;
    s.mf.fillBoundary(s.geom); // miss: builds and caches the pattern

    // Corrupt the cached entry in place (npts feeds message sizing only, so
    // the corrupted replay is still memory-safe).
    CommCache& cache = CommCache::instance();
    const CommCache::Key key{s.ba.id(), s.ba.id(), 2, 0,
                             hashShifts(s.geom.periodicShifts()),
                             CommCache::FillBoundary};
    const CommPattern* pat = cache.lookup(key, s.ba.size(), s.ba.size());
    ASSERT_NE(pat, nullptr);
    ASSERT_FALSE(pat->copies.empty());
    CommPattern corrupted = *pat;
    corrupted.copies.back().npts += 1;
    cache.insert(key, std::move(corrupted));

    check::setCommGuardSampleRate(1); // verify every hit
    {
        check::ScopedFailureCapture cap;
        s.mf.fillBoundary(s.geom);
        ASSERT_EQ(cap.count(check::Kind::CommCache), 1u);
        EXPECT_NE(cap.violations()[0].message.find("FillBoundary"),
                  std::string::npos)
            << cap.violations()[0].message;
    }
    // Sample rate 0 disables verification: the corrupted entry replays
    // unchecked (the opt-out the bench lane uses).
    check::setCommGuardSampleRate(0);
    {
        check::ScopedFailureCapture cap;
        s.mf.fillBoundary(s.geom);
        EXPECT_EQ(cap.count(), 0u);
    }
    cache.invalidate(s.ba.id()); // drop the poisoned entry
}

TEST(CommGuard, HealthyHitsVerifyClean) {
    SampleRateGuard rate;
    check::setCommGuardSampleRate(1);
    CommSetup s;
    check::ScopedFailureCapture cap;
    s.mf.fillBoundary(s.geom); // miss
    s.mf.fillBoundary(s.geom); // hit, verified
    // ParallelCopy path: gather into a differently-grown destination.
    MultiFab dst(s.ba, s.dm, 1, 1);
    dst.parallelCopy(s.mf, 0, 0, 1, 1, 0, "ParallelCopy", &s.geom); // miss
    dst.parallelCopy(s.mf, 0, 0, 1, 1, 0, "ParallelCopy", &s.geom); // hit
    EXPECT_EQ(cap.count(), 0u);
}

} // namespace
} // namespace crocco::amr

#endif // CROCCO_CHECK
