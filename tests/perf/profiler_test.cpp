#include "perf/TinyProfiler.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace crocco::perf {
namespace {

TEST(TinyProfiler, AccumulatesScopesAndCalls) {
    TinyProfiler prof;
    for (int i = 0; i < 3; ++i) {
        TinyProfiler::Scope s(prof, "region");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(prof.calls("region"), 3);
    EXPECT_GE(prof.seconds("region"), 0.005);
    EXPECT_TRUE(prof.has("region"));
    EXPECT_FALSE(prof.has("other"));
}

TEST(TinyProfiler, AddTimeForModeledRegions) {
    TinyProfiler prof;
    prof.addTime("FillPatch", 1.5, 10);
    prof.addTime("FillPatch", 0.5, 5);
    prof.addTime("Advance", 3.0);
    EXPECT_DOUBLE_EQ(prof.seconds("FillPatch"), 2.0);
    EXPECT_EQ(prof.calls("FillPatch"), 15);
    const auto rep = prof.report();
    ASSERT_EQ(rep.size(), 2u);
    EXPECT_EQ(rep[0].name, "Advance"); // sorted by descending time
}

TEST(TinyProfiler, TableRendersAllRegions) {
    TinyProfiler prof;
    prof.addTime("WENOx", 0.25);
    prof.addTime("Viscous", 0.125);
    const std::string t = prof.table();
    EXPECT_NE(t.find("WENOx"), std::string::npos);
    EXPECT_NE(t.find("Viscous"), std::string::npos);
    EXPECT_NE(t.find("0.25"), std::string::npos);
}

TEST(TinyProfiler, ResetClears) {
    TinyProfiler prof;
    prof.addTime("x", 1.0);
    prof.reset();
    EXPECT_FALSE(prof.has("x"));
    EXPECT_TRUE(prof.report().empty());
}

} // namespace
} // namespace crocco::perf
