#include "amr/Cluster.hpp"
#include "amr/BoxList.hpp"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

namespace crocco::amr {
namespace {

void expectCoversAllTags(const std::vector<IntVect>& tags,
                         const std::vector<Box>& boxes) {
    for (const IntVect& t : tags) {
        bool covered = false;
        for (const Box& b : boxes) covered = covered || b.contains(t);
        EXPECT_TRUE(covered) << "tag " << t << " uncovered";
    }
}

TEST(BergerRigoutsos, EmptyTagsGiveNoBoxes) {
    EXPECT_TRUE(bergerRigoutsos({}).empty());
}

TEST(BergerRigoutsos, SingleTag) {
    const auto boxes = bergerRigoutsos({IntVect{3, 4, 5}});
    ASSERT_EQ(boxes.size(), 1u);
    EXPECT_EQ(boxes[0], Box(IntVect{3, 4, 5}, IntVect{3, 4, 5}));
}

TEST(BergerRigoutsos, DenseBlockIsOneBox) {
    std::vector<IntVect> tags;
    forEachCell(Box(IntVect(2), IntVect(6)), [&](int i, int j, int k) {
        tags.push_back({i, j, k});
    });
    const auto boxes = bergerRigoutsos(tags);
    ASSERT_EQ(boxes.size(), 1u);
    EXPECT_EQ(boxes[0], Box(IntVect(2), IntVect(6)));
}

TEST(BergerRigoutsos, SplitsAtHole) {
    // Two well-separated clusters must become (at least) two boxes, split
    // at the empty signature plane between them.
    std::vector<IntVect> tags;
    forEachCell(Box(IntVect{0, 0, 0}, IntVect{3, 3, 3}),
                [&](int i, int j, int k) { tags.push_back({i, j, k}); });
    forEachCell(Box(IntVect{20, 0, 0}, IntVect{23, 3, 3}),
                [&](int i, int j, int k) { tags.push_back({i, j, k}); });
    const auto boxes = bergerRigoutsos(tags);
    EXPECT_GE(boxes.size(), 2u);
    expectCoversAllTags(tags, boxes);
    // Efficiency: no box should span the hole.
    for (const Box& b : boxes) EXPECT_LT(b.length(0), 20);
}

class ClusterProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusterProperty, CoversTagsEfficientlyWithDisjointBoxes) {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> d(0, 31);
    std::unordered_set<IntVect> set;
    // Random blob: a few clusters of random walks.
    for (int c = 0; c < 3; ++c) {
        IntVect p{d(rng), d(rng), d(rng)};
        for (int s = 0; s < 60; ++s) {
            set.insert(p);
            const int dim = d(rng) % 3;
            p[dim] = std::clamp(p[dim] + (d(rng) % 2 ? 1 : -1), 0, 31);
        }
    }
    std::vector<IntVect> tags(set.begin(), set.end());
    ClusterParams params;
    const auto boxes = bergerRigoutsos(tags, params);
    expectCoversAllTags(tags, boxes);
    // Overall efficiency: tagged cells per covered cell is not terrible.
    std::int64_t covered = 0;
    for (const Box& b : boxes) covered += b.numPts();
    EXPECT_GE(static_cast<double>(tags.size()) / covered, 0.25);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ClusterProperty, ::testing::Range(0, 12));

TEST(BufferTags, GrowsAndClips) {
    const Box domain(IntVect::zero(), IntVect(9));
    const auto buffered = bufferTags({IntVect{0, 5, 5}}, 2, domain);
    // 3 (clipped x: -2..2 -> 0..2) x 5 x 5
    EXPECT_EQ(buffered.size(), 75u);
    for (const IntVect& t : buffered) EXPECT_TRUE(domain.contains(t));
}

TEST(BufferTags, DeduplicatesOverlap) {
    const Box domain(IntVect::zero(), IntVect(9));
    const auto buffered =
        bufferTags({IntVect{4, 4, 4}, IntVect{5, 4, 4}}, 1, domain);
    EXPECT_EQ(buffered.size(), 3u * 3 * 3 + 9); // 27 + extra slab of 9
}

} // namespace
} // namespace crocco::amr
