#include "amr/Interpolater.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace crocco::amr {
namespace {

using Field = std::function<double(double, double, double)>;

/// Fill a fab with a field evaluated at uniform cell centers (spacing 1 on
/// the coarse lattice; the fine lattice at ratio r has spacing 1/r).
void fillUniform(FArrayBox& fab, double spacing, const Field& f, int comp = 0) {
    auto a = fab.array();
    forEachCell(fab.box(), [&](int i, int j, int k) {
        a(i, j, k, comp) = f((i + 0.5) * spacing, (j + 0.5) * spacing,
                             (k + 0.5) * spacing);
    });
}

struct InterpFixture {
    Box fineRegion{IntVect(4), IntVect(11)};
    IntVect ratio{2, 2, 2};
    Box crseBox;
    InterpFixture(int nGrowCoarse) {
        crseBox = fineRegion.coarsen(ratio).grow(nGrowCoarse);
    }
};

double maxErr(const FArrayBox& fine, const Box& region, double spacing,
              const Field& exact) {
    double worst = 0.0;
    auto a = fine.const_array();
    forEachCell(region, [&](int i, int j, int k) {
        const double e = exact((i + 0.5) * spacing, (j + 0.5) * spacing,
                               (k + 0.5) * spacing);
        worst = std::max(worst, std::abs(a(i, j, k, 0) - e));
    });
    return worst;
}

TEST(PCInterp, ReproducesConstantsAndParentValues) {
    PCInterp interp;
    InterpFixture fx(interp.nGrowCoarse());
    FArrayBox crse(fx.crseBox, 1);
    auto c = crse.array();
    forEachCell(fx.crseBox, [&](int i, int j, int k) { c(i, j, k, 0) = i + 100 * j; });
    FArrayBox fine(fx.fineRegion, 1);
    interp.interp(crse, fine, fx.fineRegion, 0, 0, 1, fx.ratio);
    auto f = fine.const_array();
    forEachCell(fx.fineRegion, [&](int i, int j, int k) {
        EXPECT_EQ(f(i, j, k, 0), i / 2 + 100 * (j / 2));
    });
}

class LinearExactness : public ::testing::TestWithParam<int> {};

TEST_P(LinearExactness, TrilinearAndConservativeReproduceAffineFields) {
    // Affine fields are reproduced exactly by linear interpolation.
    const int seed = GetParam();
    const double ax = 1.0 + seed, ay = 2.0 - seed, az = 0.5 * seed, b = 3.0;
    Field f = [=](double x, double y, double z) {
        return ax * x + ay * y + az * z + b;
    };
    for (int which = 0; which < 2; ++which) {
        std::unique_ptr<Interpolater> interp;
        if (which == 0)
            interp = std::make_unique<TrilinearInterp>();
        else
            interp = std::make_unique<CellConservativeLinear>();
        InterpFixture fx(interp->nGrowCoarse());
        FArrayBox crse(fx.crseBox, 1);
        fillUniform(crse, 1.0, f);
        FArrayBox fine(fx.fineRegion, 1);
        interp->interp(crse, fine, fx.fineRegion, 0, 0, 1, fx.ratio);
        EXPECT_LT(maxErr(fine, fx.fineRegion, 0.5, f), 1e-12)
            << (which == 0 ? "trilinear" : "conservative");
    }
}

INSTANTIATE_TEST_SUITE_P(Fields, LinearExactness, ::testing::Range(0, 4));

TEST(CellConservativeLinear, PreservesCoarseCellMeans) {
    CellConservativeLinear interp;
    InterpFixture fx(interp.nGrowCoarse());
    FArrayBox crse(fx.crseBox, 1);
    fillUniform(crse, 1.0, [](double x, double y, double z) {
        return std::sin(x) + std::cos(y * 0.7) + 0.1 * z * z;
    });
    FArrayBox fine(fx.fineRegion, 1);
    interp.interp(crse, fine, fx.fineRegion, 0, 0, 1, fx.ratio);
    auto c = crse.const_array();
    auto f = fine.const_array();
    forEachCell(fx.fineRegion.coarsen(fx.ratio), [&](int i, int j, int k) {
        double mean = 0.0;
        for (int dk = 0; dk < 2; ++dk)
            for (int dj = 0; dj < 2; ++dj)
                for (int di = 0; di < 2; ++di)
                    mean += f(2 * i + di, 2 * j + dj, 2 * k + dk, 0);
        mean /= 8.0;
        EXPECT_NEAR(mean, c(i, j, k, 0), 1e-13);
    });
}

TEST(CurvilinearInterp, MatchesTrilinearOnUniformGrid) {
    CurvilinearInterp curv;
    TrilinearInterp tri;
    InterpFixture fx(1);
    FArrayBox crse(fx.crseBox, 1);
    fillUniform(crse, 1.0, [](double x, double y, double z) {
        return std::sin(0.4 * x) * std::cos(0.3 * y) + 0.2 * z;
    });
    // Coordinate fabs: uniform mapping, coarse spacing 1, fine spacing 1/2.
    FArrayBox crseCoords(fx.crseBox, 3);
    auto cc = crseCoords.array();
    forEachCell(fx.crseBox, [&](int i, int j, int k) {
        cc(i, j, k, 0) = i + 0.5;
        cc(i, j, k, 1) = j + 0.5;
        cc(i, j, k, 2) = k + 0.5;
    });
    FArrayBox fineCoords(fx.fineRegion, 3);
    auto fc = fineCoords.array();
    forEachCell(fx.fineRegion, [&](int i, int j, int k) {
        fc(i, j, k, 0) = (i + 0.5) * 0.5;
        fc(i, j, k, 1) = (j + 0.5) * 0.5;
        fc(i, j, k, 2) = (k + 0.5) * 0.5;
    });
    InterpContext ctx{&crseCoords, &fineCoords};

    FArrayBox a(fx.fineRegion, 1), b(fx.fineRegion, 1);
    curv.interp(crse, a, fx.fineRegion, 0, 0, 1, fx.ratio, ctx);
    tri.interp(crse, b, fx.fineRegion, 0, 0, 1, fx.ratio);
    EXPECT_NEAR(FArrayBox::l2Diff(a, b, fx.fineRegion, 0), 0.0, 1e-12);
}

TEST(CurvilinearInterp, ExactForAffineFieldOnStretchedGrid) {
    // On a non-uniformly spaced grid, physical-space weights make the
    // interpolation exact for fields affine in physical coordinates —
    // where index-space trilinear weights would err.
    CurvilinearInterp curv;
    InterpFixture fx(1);
    auto stretchX = [](double xi) { return xi + 0.05 * xi * xi; };
    Field f = [](double x, double y, double z) { return 3 * x - y + 2 * z; };

    FArrayBox crse(fx.crseBox, 1), crseCoords(fx.crseBox, 3);
    auto c = crse.array();
    auto cc = crseCoords.array();
    forEachCell(fx.crseBox, [&](int i, int j, int k) {
        const double x = stretchX(i + 0.5), y = j + 0.5, z = k + 0.5;
        cc(i, j, k, 0) = x;
        cc(i, j, k, 1) = y;
        cc(i, j, k, 2) = z;
        c(i, j, k, 0) = f(x, y, z);
    });
    FArrayBox fine(fx.fineRegion, 1), fineCoords(fx.fineRegion, 3);
    auto fc = fineCoords.array();
    forEachCell(fx.fineRegion, [&](int i, int j, int k) {
        fc(i, j, k, 0) = stretchX((i + 0.5) * 0.5);
        fc(i, j, k, 1) = (j + 0.5) * 0.5;
        fc(i, j, k, 2) = (k + 0.5) * 0.5;
    });
    InterpContext ctx{&crseCoords, &fineCoords};
    curv.interp(crse, fine, fx.fineRegion, 0, 0, 1, fx.ratio, ctx);

    double worst = 0.0;
    auto a = fine.const_array();
    forEachCell(fx.fineRegion, [&](int i, int j, int k) {
        const double exact = f(stretchX((i + 0.5) * 0.5), (j + 0.5) * 0.5,
                               (k + 0.5) * 0.5);
        worst = std::max(worst, std::abs(a(i, j, k, 0) - exact));
    });
    EXPECT_LT(worst, 1e-10);
    // And trilinear is NOT exact here (sanity that the test discriminates).
    TrilinearInterp tri;
    FArrayBox fineTri(fx.fineRegion, 1);
    tri.interp(crse, fineTri, fx.fineRegion, 0, 0, 1, fx.ratio);
    double worstTri = 0.0;
    auto at = fineTri.const_array();
    forEachCell(fx.fineRegion, [&](int i, int j, int k) {
        const double exact = f(stretchX((i + 0.5) * 0.5), (j + 0.5) * 0.5,
                               (k + 0.5) * 0.5);
        worstTri = std::max(worstTri, std::abs(at(i, j, k, 0) - exact));
    });
    EXPECT_GT(worstTri, 1e-6);
}

TEST(WenoInterp, HighOrderOnSmoothData) {
    // Error should drop by ~2^4 when the coarse grid is refined 2x.
    WenoInterp interp;
    Field f = [](double x, double y, double z) {
        return std::sin(0.25 * x) * std::cos(0.2 * y) + std::sin(0.15 * z);
    };
    double errs[2];
    for (int r = 0; r < 2; ++r) {
        const double h = (r == 0) ? 1.0 : 0.5; // coarse spacing
        InterpFixture fx(interp.nGrowCoarse());
        FArrayBox crse(fx.crseBox, 1);
        // Scale coordinates so the same physical field is sampled at finer
        // resolution in the second pass.
        fillUniform(crse, h, f);
        FArrayBox fine(fx.fineRegion, 1);
        interp.interp(crse, fine, fx.fineRegion, 0, 0, 1, fx.ratio);
        errs[r] = maxErr(fine, fx.fineRegion, h / 2, f);
    }
    const double order = std::log2(errs[0] / errs[1]);
    EXPECT_GT(order, 3.0) << "errs: " << errs[0] << " " << errs[1];
}

TEST(WenoInterp, NoOvershootAtDiscontinuity) {
    WenoInterp interp;
    InterpFixture fx(interp.nGrowCoarse());
    FArrayBox crse(fx.crseBox, 1);
    auto c = crse.array();
    forEachCell(fx.crseBox, [&](int i, int j, int k) {
        c(i, j, k, 0) = (i < 8) ? 1.0 : 10.0;
    });
    FArrayBox fine(fx.fineRegion, 1);
    interp.interp(crse, fine, fx.fineRegion, 0, 0, 1, fx.ratio);
    // Essentially non-oscillatory: tiny tolerance beyond the data range.
    EXPECT_GE(fine.min(fx.fineRegion, 0), 1.0 - 0.05);
    EXPECT_LE(fine.max(fx.fineRegion, 0), 10.0 + 0.05);
}

TEST(AllInterps, ConstantFieldsAreExact) {
    Field f = [](double, double, double) { return 7.25; };
    std::vector<std::unique_ptr<Interpolater>> interps;
    interps.push_back(std::make_unique<PCInterp>());
    interps.push_back(std::make_unique<TrilinearInterp>());
    interps.push_back(std::make_unique<CellConservativeLinear>());
    interps.push_back(std::make_unique<WenoInterp>());
    for (auto& interp : interps) {
        InterpFixture fx(interp->nGrowCoarse());
        FArrayBox crse(fx.crseBox, 1, 7.25);
        FArrayBox fine(fx.fineRegion, 1);
        interp->interp(crse, fine, fx.fineRegion, 0, 0, 1, fx.ratio);
        EXPECT_NEAR(fine.min(fx.fineRegion, 0), 7.25, 1e-13);
        EXPECT_NEAR(fine.max(fx.fineRegion, 0), 7.25, 1e-13);
    }
}

} // namespace
} // namespace crocco::amr
