#include "amr/FArrayBox.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::amr {
namespace {

TEST(Array4, IndexingMatchesFortranLayout) {
    const Box b(IntVect{1, 2, 3}, IntVect{4, 5, 6});
    FArrayBox fab(b, 2);
    auto a = fab.array();
    a(1, 2, 3, 0) = 10.0;
    a(2, 2, 3, 0) = 11.0;
    a(1, 3, 3, 1) = 12.0;
    EXPECT_EQ(fab(IntVect{1, 2, 3}, 0), 10.0);
    EXPECT_EQ(fab(IntVect{2, 2, 3}, 0), 11.0);
    EXPECT_EQ(fab(IntVect{1, 3, 3}, 1), 12.0);
    // const view shares storage
    auto c = fab.const_array();
    EXPECT_EQ(c(2, 2, 3, 0), 11.0);
}

TEST(FArrayBox, SetValAndRegionSetVal) {
    const Box b(IntVect::zero(), IntVect(3));
    FArrayBox fab(b, 2, 1.0);
    EXPECT_EQ(fab.sum(b, 0), 64.0);
    fab.setVal(2.0);
    EXPECT_EQ(fab.sum(b, 1), 128.0);
    fab.setVal(5.0, Box(IntVect::zero(), IntVect(1)), 0, 1);
    EXPECT_EQ(fab.sum(b, 0), 2.0 * (64 - 8) + 5.0 * 8);
    EXPECT_EQ(fab.max(b, 0), 5.0);
    EXPECT_EQ(fab.min(b, 0), 2.0);
}

TEST(FArrayBox, CopyFromWithShift) {
    const Box src(IntVect::zero(), IntVect(3));
    FArrayBox a(src, 1);
    auto aa = a.array();
    forEachCell(src, [&](int i, int j, int k) { aa(i, j, k, 0) = i + 10 * j + 100 * k; });
    const Box dstBox(IntVect{10, 10, 10}, IntVect{13, 13, 13});
    FArrayBox b(dstBox, 1);
    // b(p) = a(p + shift), shift maps dst indices onto src.
    b.copyFrom(a, dstBox, 0, 0, 1, IntVect{-10, -10, -10});
    EXPECT_EQ(b(IntVect{10, 10, 10}), 0.0);
    EXPECT_EQ(b(IntVect{13, 12, 11}), 3 + 20 + 100);
}

TEST(FArrayBox, Saxpy) {
    const Box b(IntVect::zero(), IntVect(2));
    FArrayBox x(b, 1, 2.0), y(b, 1, 3.0);
    y.saxpy(0.5, x, b, 0, 0, 1);
    EXPECT_DOUBLE_EQ(y(IntVect::zero()), 4.0);
}

TEST(FArrayBox, L2Diff) {
    const Box b(IntVect::zero(), IntVect(3));
    FArrayBox x(b, 1, 1.0), y(b, 1, 1.0);
    EXPECT_EQ(FArrayBox::l2Diff(x, y, b, 0), 0.0);
    y(IntVect{1, 1, 1}) = 4.0;
    EXPECT_DOUBLE_EQ(FArrayBox::l2Diff(x, y, b, 0), 3.0);
}

} // namespace
} // namespace crocco::amr
