#include "amr/Geometry.hpp"
#include "amr/MultiFab.hpp"

#include <gtest/gtest.h>

namespace crocco::amr {
namespace {

TEST(Geometry, CellSizesAndCenters) {
    Geometry g(Box(IntVect::zero(), IntVect{15, 7, 3}), {0, 0, 0}, {4, 1, 2});
    EXPECT_DOUBLE_EQ(g.cellSize(0), 0.25);
    EXPECT_DOUBLE_EQ(g.cellSize(1), 0.125);
    EXPECT_DOUBLE_EQ(g.cellSize(2), 0.5);
    EXPECT_DOUBLE_EQ(g.cellCenter(0, 0), 0.125);
    EXPECT_DOUBLE_EQ(g.cellCenter(15, 0), 4.0 - 0.125);
    // Ghost cells extend linearly.
    EXPECT_DOUBLE_EQ(g.cellCenter(-1, 0), -0.125);
}

TEST(Geometry, RefineHalvesSpacingCoarsenRestores) {
    Geometry g(Box(IntVect::zero(), IntVect(7)), {0, 0, 0}, {1, 1, 1});
    const Geometry f = g.refine(IntVect(2));
    EXPECT_EQ(f.domain().numPts(), 8 * g.domain().numPts());
    EXPECT_DOUBLE_EQ(f.cellSize(0), g.cellSize(0) / 2);
    const Geometry back = f.coarsen(IntVect(2));
    EXPECT_EQ(back.domain(), g.domain());
    EXPECT_DOUBLE_EQ(back.cellSize(1), g.cellSize(1));
}

TEST(Geometry, PeriodicShiftCounts) {
    const Box d(IntVect::zero(), IntVect(7));
    EXPECT_EQ(Geometry(d, {0, 0, 0}, {1, 1, 1}, Periodicity::none())
                  .periodicShifts()
                  .size(),
              1u);
    EXPECT_EQ(Geometry(d, {0, 0, 0}, {1, 1, 1}, Periodicity::all())
                  .periodicShifts()
                  .size(),
              27u);
    Periodicity onlyZ;
    onlyZ.periodic[2] = true;
    const auto shifts =
        Geometry(d, {0, 0, 0}, {1, 1, 1}, onlyZ).periodicShifts();
    EXPECT_EQ(shifts.size(), 3u);
    for (const IntVect& s : shifts) {
        EXPECT_EQ(s[0], 0);
        EXPECT_EQ(s[1], 0);
        EXPECT_TRUE(s[2] == -8 || s[2] == 0 || s[2] == 8);
    }
}

TEST(MultiFab, ParallelCopyReadsSourceGhostsWhenAsked) {
    // The coordinate-gather path: source ghost cells carry valid data that
    // srcNGrow > 0 may read — dst regions beyond src valid cells get filled.
    const Box domain(IntVect(4), IntVect(11));
    BoxArray srcBa(domain);
    DistributionMapping dm(srcBa, 1);
    MultiFab src(srcBa, dm, 1, 3);
    // Fill valid + ghosts with a globally consistent linear field.
    auto s = src.array(0);
    forEachCell(src.grownBox(0),
                [&](int i, int j, int k) { s(i, j, k, 0) = i + 10 * j + 100 * k; });

    BoxArray dstBa(Box(IntVect(2), IntVect(13))); // extends past src valid
    MultiFab dst(dstBa, DistributionMapping(dstBa, 1), 1, 0);
    dst.setVal(-1.0);
    dst.parallelCopy(src, 0, 0, 1, 0, 0, "noghost");
    auto a = dst.const_array(0);
    EXPECT_EQ(a(2, 2, 2, 0), -1.0); // outside src valid: untouched

    dst.parallelCopy(src, 0, 0, 1, 0, 3, "withghost");
    EXPECT_DOUBLE_EQ(a(2, 2, 2, 0), 2 + 20 + 200); // filled from src ghost
    EXPECT_DOUBLE_EQ(a(13, 13, 13, 0), 13 + 130 + 1300);
}

TEST(MultiFab, DefineResetsContents) {
    BoxArray ba(Box(IntVect::zero(), IntVect(3)));
    DistributionMapping dm(ba, 1);
    MultiFab mf(ba, dm, 2, 1);
    mf.setVal(5.0);
    mf.define(ba, dm, 3, 2);
    EXPECT_EQ(mf.nComp(), 3);
    EXPECT_EQ(mf.nGrow(), 2);
    EXPECT_EQ(mf.numFabs(), 1);
}

} // namespace
} // namespace crocco::amr
