#include "amr/AmrCore.hpp"
#include "amr/CommCache.hpp"
#include "amr/MultiFab.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::amr {
namespace {

std::vector<Box> tiledBoxes(const Box& domain, int tile) {
    std::vector<Box> out;
    for (int k = domain.smallEnd(2); k <= domain.bigEnd(2); k += tile)
        for (int j = domain.smallEnd(1); j <= domain.bigEnd(1); j += tile)
            for (int i = domain.smallEnd(0); i <= domain.bigEnd(0); i += tile)
                out.emplace_back(IntVect{i, j, k},
                                 IntVect{i + tile - 1, j + tile - 1, k + tile - 1});
    return out;
}

Real cellValue(int i, int j, int k, int n) {
    return std::sin(0.7 * i + 1.3 * j + 2.1 * k) + n;
}

void fillValid(MultiFab& mf) {
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.array(f);
        for (int n = 0; n < mf.nComp(); ++n)
            forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, n) = cellValue(i, j, k, n);
            });
    }
}

/// Fresh cache per test: the CommCache is a process-wide singleton, so
/// leftovers from other tests (or the solver tests in this binary) would
/// perturb the stats assertions.
struct CacheReset {
    static void apply() {
        auto& c = CommCache::instance();
        c.clear();
        c.resetStats();
        c.setEnabled(true);
        c.setCapacity(64);
    }
    CacheReset() { apply(); }
    ~CacheReset() { apply(); }
};

TEST(CommCache, FillBoundaryMissesOnceThenHits) {
    CacheReset reset;
    const Box domain(IntVect::zero(), IntVect(15));
    const Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 2);
    MultiFab mf(ba, dm, 2, 2);
    fillValid(mf);

    auto& cache = CommCache::instance();
    mf.fillBoundary(geom);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, 0);

    mf.fillBoundary(geom);
    mf.fillBoundary(geom);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, 2);

    // The replayed exchange produced correct ghost values (fully periodic
    // domain: every ghost cell maps to a valid cell of the periodic image).
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.const_array(f);
        forEachCell(mf.grownBox(f), [&](int i, int j, int k) {
            const int pi = (i + 16) % 16, pj = (j + 16) % 16, pk = (k + 16) % 16;
            EXPECT_DOUBLE_EQ(a(i, j, k, 1), cellValue(pi, pj, pk, 1))
                << "at " << i << ' ' << j << ' ' << k;
        });
    }
}

TEST(CommCache, ReplayedSimCommTrafficIsByteIdenticalToUncached) {
    CacheReset reset;
    const Box domain(IntVect::zero(), IntVect(15));
    const Geometry geom(domain, {0, 0, 0}, {1, 1, 1},
                        Periodicity{{true, false, false}});
    BoxArray ba(tiledBoxes(domain, 4));
    DistributionMapping dm(ba, 4);

    auto runExchange = [&](bool cached, parallel::SimComm& comm) {
        CommCache::instance().setEnabled(cached);
        MultiFab mf(ba, dm, 3, 2, &comm);
        fillValid(mf);
        mf.fillBoundary(geom); // build (or uncached pass 1)
        comm.log().clear();
        mf.fillBoundary(geom); // replay (or uncached pass 2)
        MultiFab dst(BoxArray(tiledBoxes(domain, 8)),
                     DistributionMapping(BoxArray(tiledBoxes(domain, 8)), 4), 3,
                     1, &comm);
        dst.setVal(0.0);
        dst.parallelCopy(mf, 0, 0, 3, 1, 0, "Interp", &geom);
        dst.parallelCopy(mf, 0, 0, 3, 1, 0, "Interp", &geom);
        return comm.log().messages();
    };

    parallel::SimComm commCached(4), commPlain(4);
    const auto cached = runExchange(true, commCached);
    const auto plain = runExchange(false, commPlain);

    ASSERT_EQ(cached.size(), plain.size());
    ASSERT_GT(cached.size(), 0u);
    for (std::size_t m = 0; m < cached.size(); ++m) {
        EXPECT_EQ(cached[m].src, plain[m].src);
        EXPECT_EQ(cached[m].dst, plain[m].dst);
        EXPECT_EQ(cached[m].bytes, plain[m].bytes);
        EXPECT_EQ(cached[m].tag, plain[m].tag);
        EXPECT_EQ(static_cast<int>(cached[m].kind), static_cast<int>(plain[m].kind));
    }
    EXPECT_GT(CommCache::instance().stats().hits, 0);
}

TEST(CommCache, ChangedBoxArrayMissesAndNeverReplaysStalePattern) {
    CacheReset reset;
    const Box domain(IntVect::zero(), IntVect(15));
    const Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());

    BoxArray coarseTiles(tiledBoxes(domain, 8));
    BoxArray fineTiles(tiledBoxes(domain, 4));
    EXPECT_NE(coarseTiles.id(), fineTiles.id());

    MultiFab a(coarseTiles, DistributionMapping(coarseTiles, 2), 1, 1);
    fillValid(a);
    a.fillBoundary(geom);
    EXPECT_EQ(CommCache::instance().stats().misses, 1);

    // A different layout with the same ngrow/periodicity must build its own
    // pattern, not reuse the other layout's.
    MultiFab b(fineTiles, DistributionMapping(fineTiles, 2), 1, 1);
    fillValid(b);
    b.fillBoundary(geom);
    EXPECT_EQ(CommCache::instance().stats().misses, 2);
    for (int f = 0; f < b.numFabs(); ++f) {
        auto arr = b.const_array(f);
        forEachCell(b.grownBox(f), [&](int i, int j, int k) {
            const int pi = (i + 16) % 16, pj = (j + 16) % 16, pk = (k + 16) % 16;
            ASSERT_DOUBLE_EQ(arr(i, j, k, 0), cellValue(pi, pj, pk, 0));
        });
    }
}

TEST(CommCache, RegridInvalidatesReplacedLevelsPatterns) {
    CacheReset reset;
    const Box domain(IntVect::zero(), IntVect(15));
    const Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());

    // Minimal concrete hierarchy: only setLevel (the invalidation point)
    // matters here.
    struct Harness : AmrCore {
        using AmrCore::AmrCore;
        using AmrCore::setLevel;
        void errorEst(int, std::vector<IntVect>&, Real) override {}
        void makeNewLevelFromScratch(int, Real, const BoxArray&,
                                     const DistributionMapping&) override {}
        void makeNewLevelFromCoarse(int, Real, const BoxArray&,
                                    const DistributionMapping&) override {}
        void remakeLevel(int, Real, const BoxArray&,
                         const DistributionMapping&) override {}
        void clearLevel(int) override {}
    };
    AmrInfo info;
    info.maxLevel = 0;
    Harness amr(geom, info);

    BoxArray oldBa(tiledBoxes(domain, 8));
    DistributionMapping oldDm(oldBa, 2);
    amr.setLevel(0, oldBa, oldDm);
    MultiFab mf(oldBa, oldDm, 1, 1);
    fillValid(mf);
    mf.fillBoundary(geom);
    EXPECT_EQ(CommCache::instance().size(), 1u);

    // Regrid replaces the layout: the old level's pattern must be dropped.
    BoxArray newBa(tiledBoxes(domain, 4));
    amr.setLevel(0, newBa, DistributionMapping(newBa, 2));
    EXPECT_EQ(CommCache::instance().size(), 0u);
    EXPECT_EQ(CommCache::instance().stats().invalidations, 1);

    // Re-setting the *same* layout (id unchanged) must not invalidate.
    MultiFab mf2(newBa, DistributionMapping(newBa, 2), 1, 1);
    fillValid(mf2);
    mf2.fillBoundary(geom);
    const auto before = CommCache::instance().stats().invalidations;
    amr.setLevel(0, newBa, DistributionMapping(newBa, 2));
    EXPECT_EQ(CommCache::instance().stats().invalidations, before);
    EXPECT_EQ(CommCache::instance().size(), 1u);
}

TEST(CommCache, CommunicatorShrinkInvalidatesEveryCachedPattern) {
    // Rank-death regression: a cached pattern's CopyDescriptors embed srcRank/
    // dstRank in the pre-shrink numbering, so replaying one after the
    // communicator shrank would log traffic for ranks that no longer exist.
    CacheReset reset;
    const Box domain(IntVect::zero(), IntVect(15));
    const Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 4));
    DistributionMapping dm(ba, 4);

    parallel::SimComm comm(4);
    MultiFab mf(ba, dm, 1, 1, &comm);
    fillValid(mf);
    mf.fillBoundary(geom);
    auto& cache = CommCache::instance();
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.notedCommSize(), 4);

    // The rank death + shrink path reports the new size; every pattern
    // built under the old numbering must be dropped and counted.
    comm.killRank(2);
    comm.shrink();
    cache.noteCommSize(comm.size());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().invalidations, 1);
    EXPECT_EQ(cache.notedCommSize(), 3);

    // Same size again: no churn.
    cache.noteCommSize(comm.size());
    EXPECT_EQ(cache.stats().invalidations, 1);

    // The next exchange (post-shrink mapping) rebuilds cleanly and replays;
    // the log is cleared so only post-shrink traffic is inspected.
    comm.log().clear();
    DistributionMapping dm3(ba, 3);
    MultiFab mf3(ba, dm3, 1, 1, &comm);
    fillValid(mf3);
    mf3.fillBoundary(geom);
    mf3.fillBoundary(geom);
    EXPECT_GT(cache.stats().hits, 0);
    for (const auto& m : comm.log().messages()) {
        EXPECT_LT(m.src, 3);
        EXPECT_LT(m.dst, 3);
    }
}

TEST(CommCache, DerivedIdsAreDeterministicSoFillPatchScratchHits) {
    CacheReset reset;
    const Box domain(IntVect::zero(), IntVect(15));
    BoxArray ba(tiledBoxes(domain, 8));
    // FillPatchTwoLevels coarsens the fine BoxArray afresh on every call;
    // the derived id must be a pure function of (parent id, op, ratio) so
    // those scratch layouts share one cache entry.
    EXPECT_EQ(ba.coarsen(IntVect(2)).id(), ba.coarsen(IntVect(2)).id());
    EXPECT_NE(ba.coarsen(IntVect(2)).id(), ba.id());
    EXPECT_NE(ba.coarsen(IntVect(2)).id(), ba.coarsen(IntVect(4)).id());
    EXPECT_NE(ba.coarsen(IntVect(2)).id(), ba.refine(IntVect(2)).id());
    // Copies preserve identity (same boxes, same pattern).
    BoxArray copy = ba;
    EXPECT_EQ(copy.id(), ba.id());
}

TEST(CommCache, LruEvictsOldestAndCapacityZeroDisablesRetention) {
    CacheReset reset;
    auto& cache = CommCache::instance();
    cache.setCapacity(1);
    const Box domain(IntVect::zero(), IntVect(7));
    const Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba1(tiledBoxes(domain, 4)), ba2(tiledBoxes(domain, 8));
    MultiFab m1(ba1, DistributionMapping(ba1, 1), 1, 1);
    MultiFab m2(ba2, DistributionMapping(ba2, 1), 1, 1);
    m1.setVal(1.0);
    m2.setVal(2.0);
    m1.fillBoundary(geom);
    m2.fillBoundary(geom); // evicts m1's pattern
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1);
    m1.fillBoundary(geom); // rebuilt, not replayed
    EXPECT_EQ(cache.stats().misses, 3);

    cache.setCapacity(0);
    m1.fillBoundary(geom);
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
} // namespace crocco::amr
