// Full-solver acceptance for the rank-pair aggregated exchange
// (comm.aggregate, docs/performance.md §6): a complete DMR run with regrids
// must be BITWISE identical with aggregation on and off — across thread
// counts, composed with the comm/compute overlap and fused-RHS paths, under
// a seeded drop+corrupt fault campaign at aggregate granularity, and
// composed with PR6 rank-death recovery (the satellite regression: the
// communicator shrink renumbers ranks, so CommCache::noteCommSize must drop
// every cached aggregation plan). Also asserts the comm.log_summary digest.
#include "core/CroccoAmr.hpp"

#include "amr/CommCache.hpp"
#include "gpu/ThreadPool.hpp"
#include "parallel/CommFaults.hpp"
#include "problems/Dmr.hpp"
#include "resilience/BuddyCheckpoint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace crocco::core {
namespace {

using amr::CommCache;
using amr::MultiFab;
using problems::Dmr;

Dmr smallDmr() {
    Dmr::Options o;
    o.nx = 32;
    o.ny = 8;
    o.nz = 8;
    o.maxLevel = 1;
    return Dmr(o);
}

CroccoAmr::Config soakConfig(int nranks) {
    auto cfg = smallDmr().solverConfig(CodeVersion::V20);
    cfg.nranks = nranks;
    cfg.regridFreq = 3; // several regrids inside a 10-step run
    // Small boxes so every rank owns several and the exchanges actually
    // cross ranks — otherwise there is nothing to aggregate.
    cfg.amrInfo.maxGridSize = 8;
    return cfg;
}

std::unique_ptr<CroccoAmr> makeSolver(const CroccoAmr::Config& cfg,
                                      parallel::SimComm* comm) {
    auto dmr = smallDmr();
    auto solver = std::make_unique<CroccoAmr>(dmr.geometry(), cfg,
                                              dmr.mapping(), comm);
    solver->init(dmr.initialCondition(), dmr.boundaryConditions());
    return solver;
}

void expectBitwiseIdentical(const CroccoAmr& a, const CroccoAmr& b) {
    ASSERT_EQ(a.stepCount(), b.stepCount());
    ASSERT_EQ(a.time(), b.time());
    ASSERT_EQ(a.finestLevel(), b.finestLevel());
    for (int lev = 0; lev <= a.finestLevel(); ++lev) {
        const MultiFab& ua = a.state(lev);
        const MultiFab& ub = b.state(lev);
        ASSERT_EQ(ua.boxArray().size(), ub.boxArray().size()) << "level " << lev;
        for (int f = 0; f < ua.numFabs(); ++f) {
            ASSERT_EQ(ua.validBox(f), ub.validBox(f));
            auto x = ua.const_array(f);
            auto y = ub.const_array(f);
            for (int n = 0; n < NCONS; ++n)
                amr::forEachCell(ua.validBox(f), [&](int i, int j, int k) {
                    ASSERT_EQ(x(i, j, k, n), y(i, j, k, n))
                        << "level " << lev << " fab " << f << " comp " << n
                        << " (" << i << "," << j << "," << k << ")";
                });
        }
    }
}

/// The solver ctor latches cfg.commAggregate into the CommCache singleton;
/// make every test start and finish from the unaggregated default.
struct CacheReset {
    CacheReset() { wipe(); }
    ~CacheReset() { wipe(); }
    static void wipe() {
        auto& cache = CommCache::instance();
        cache.setAggregate(false);
        cache.clear();
        cache.resetStats();
    }
};

std::size_t fillBoundaryMessages(const parallel::SimComm& comm) {
    std::size_t n = 0;
    for (const auto& m : comm.log().messages())
        if (m.kind == parallel::MessageKind::PointToPoint &&
            m.tag.find("Fill") != std::string::npos)
            ++n;
    return n;
}

TEST(AggregateFill, DmrWithRegridsBitwiseIdenticalAcrossThreadCounts) {
    CacheReset reset;
    const int nsteps = 10;
    for (int nthreads : {1, 8}) {
        gpu::setNumThreads(nthreads);
        SCOPED_TRACE("nthreads=" + std::to_string(nthreads));

        CacheReset::wipe();
        parallel::SimComm plainComm(4);
        auto plain = makeSolver(soakConfig(4), &plainComm);
        plain->evolve(nsteps);

        CacheReset::wipe();
        parallel::SimComm aggComm(4);
        auto cfg = soakConfig(4);
        cfg.commAggregate = true;
        auto agg = makeSolver(cfg, &aggComm);
        agg->evolve(nsteps);

        expectBitwiseIdentical(*plain, *agg);
        // The whole point: far fewer wire messages for the same bytes.
        EXPECT_LT(fillBoundaryMessages(aggComm), fillBoundaryMessages(plainComm));
        EXPECT_GT(CommCache::instance().stats().planHits, 0);
    }
    gpu::setNumThreads(1);
}

TEST(AggregateFill, ComposesWithOverlapAndFusedPipelines) {
    // 4-combo cross: aggregation must be invisible under every pairing of
    // the async overlap path (PR4) and the fused RHS pipeline (PR7).
    CacheReset reset;
    const int nsteps = 6;
    for (bool overlap : {false, true})
        for (bool fused : {false, true}) {
            SCOPED_TRACE("overlap=" + std::to_string(overlap) +
                         " fused=" + std::to_string(fused));
            CacheReset::wipe();
            parallel::SimComm plainComm(4);
            auto cfg = soakConfig(4);
            cfg.overlap = overlap;
            cfg.fused = fused;
            auto plain = makeSolver(cfg, &plainComm);
            plain->evolve(nsteps);

            CacheReset::wipe();
            parallel::SimComm aggComm(4);
            cfg.commAggregate = true;
            auto agg = makeSolver(cfg, &aggComm);
            agg->evolve(nsteps);

            expectBitwiseIdentical(*plain, *agg);
            EXPECT_LT(fillBoundaryMessages(aggComm),
                      fillBoundaryMessages(plainComm));
        }
}

TEST(AggregateFill, SeededDropAndCorruptSoakAtAggregateGranularity) {
    // Verified exchange at pair granularity: one CRC stamp per packed
    // message, one NACK + one whole-buffer retransmit per corrupted or
    // dropped pair — and the run still lands on the fault-free trajectory.
    CacheReset reset;
    const int nsteps = 10;
    parallel::SimComm cleanComm(4);
    auto reference = makeSolver(soakConfig(4), &cleanComm);
    reference->evolve(nsteps);

    CacheReset::wipe();
    parallel::SimComm comm(4);
    parallel::CommFaults faults(2026);
    parallel::CommFaults::Rates rates;
    rates.drop = 0.02;
    rates.corrupt = 0.02;
    faults.setRates(rates);
    comm.attachFaults(&faults);
    auto cfg = soakConfig(4);
    cfg.commAggregate = true;
    auto solver = makeSolver(cfg, &comm);
    solver->evolve(nsteps);

    const auto& fs = comm.faultStats();
    EXPECT_GT(fs.verified, 0);
    EXPECT_GT(fs.retransmits, 0) << "campaign never fired — soak is vacuous";
    EXPECT_EQ(fs.crcFailures, fs.nacks);
    expectBitwiseIdentical(*solver, *reference);
}

TEST(AggregateFill, ComposesWithRankDeathRecovery) {
    // Satellite regression: mid-run rank death shrinks the communicator and
    // renumbers ranks; cached aggregation plans hold the OLD rank ids, so
    // noteCommSize must drop them before the next exchange replays. The
    // recovered aggregated run must still match the clean unaggregated one.
    CacheReset reset;
    const int nsteps = 10;
    parallel::SimComm cleanComm(4);
    auto reference = makeSolver(soakConfig(4), &cleanComm);
    reference->evolve(nsteps);

    CacheReset::wipe();
    parallel::SimComm comm(4);
    parallel::CommFaults faults;
    faults.armRankDeath(5, 2);
    comm.attachFaults(&faults);
    auto cfg = soakConfig(4);
    cfg.commAggregate = true;
    auto solver = makeSolver(cfg, &comm);

    resilience::BuddyCheckpoint buddy;
    CroccoAmr::EvolveOptions opts;
    opts.buddy = &buddy;
    opts.buddyEvery = 2;
    solver->evolve(nsteps, opts);

    EXPECT_EQ(solver->buddyRecoveryCount(), 1);
    EXPECT_EQ(comm.size(), 3);
    // Every surviving plan was rebuilt against the shrunk communicator.
    EXPECT_EQ(CommCache::instance().notedCommSize(), 3);
    expectBitwiseIdentical(*solver, *reference);
}

TEST(AggregateFill, LogSummaryDigestsEachStep) {
    CacheReset reset;
    parallel::SimComm comm(4);
    auto cfg = soakConfig(4);
    cfg.commAggregate = true;
    cfg.commLogSummary = true;
    auto solver = makeSolver(cfg, &comm);
    EXPECT_TRUE(solver->lastCommSummary().empty());
    solver->evolve(3);

    // emitCommSummary ran on the last step (0-based index 2) and digested
    // only that step's traffic.
    const std::string& line = solver->lastCommSummary();
    ASSERT_FALSE(line.empty());
    EXPECT_NE(line.find("step 2 "), std::string::npos) << line;
    EXPECT_NE(line.find("comm: msgs="), std::string::npos) << line;
    EXPECT_NE(line.find("rtx=0"), std::string::npos) << line;
    // The digest is a per-step slice, not the cumulative log: three steps of
    // traffic add up to strictly more than the last step's digest alone.
    const auto total = comm.log().summarize();
    EXPECT_EQ(line.find("msgs=" + std::to_string(total.messages) + " "),
              std::string::npos)
        << "step digest matched the cumulative count; line: " << line;
}

} // namespace
} // namespace crocco::core
