#include "amr/AmrCore.hpp"
#include "amr/BoxList.hpp"

#include <gtest/gtest.h>

namespace crocco::amr {
namespace {

/// Minimal AmrCore subclass: tags a fixed sphere of cells at level 0 and a
/// smaller one at level 1, records which hooks fired.
class TestAmr : public AmrCore {
public:
    TestAmr(const Geometry& g, const AmrInfo& info) : AmrCore(g, info, 4) {}

    void exposedErrorEst(int lev, std::vector<IntVect>& tags) {
        errorEst(lev, tags, 0.0);
    }

    std::vector<std::string> events;
    IntVect tagCenter{16, 16, 16};
    int tagRadius = 5; // level-0 cells; finer levels tag the same physical ball

    void errorEst(int lev, std::vector<IntVect>& tags, Real) override {
        const int scale = (lev == 0) ? 1 : 2;
        const IntVect c = tagCenter * scale;
        const int r = tagRadius * scale;
        forEachCell(Box(c - IntVect(r), c + IntVect(r)),
                    [&](int i, int j, int k) { tags.push_back({i, j, k}); });
    }
    void makeNewLevelFromScratch(int lev, Real, const BoxArray&,
                                 const DistributionMapping&) override {
        events.push_back("scratch" + std::to_string(lev));
    }
    void makeNewLevelFromCoarse(int lev, Real, const BoxArray&,
                                const DistributionMapping&) override {
        events.push_back("coarse" + std::to_string(lev));
    }
    void remakeLevel(int lev, Real, const BoxArray&,
                     const DistributionMapping&) override {
        events.push_back("remake" + std::to_string(lev));
    }
    void clearLevel(int lev) override {
        events.push_back("clear" + std::to_string(lev));
    }
};

AmrInfo smallInfo() {
    AmrInfo info;
    info.maxLevel = 2;
    info.blockingFactor = 8;
    info.maxGridSize = 16;
    info.nErrorBuf = 1;
    return info;
}

Geometry unitGeom(int n) {
    return Geometry(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0}, {1, 1, 1});
}

TEST(MakeLevel0Grids, RespectsMaxSizeAndCoversDomain) {
    AmrInfo info = smallInfo();
    const Box domain(IntVect::zero(), IntVect(31));
    const BoxArray ba = makeLevel0Grids(domain, info);
    EXPECT_EQ(ba.numPts(), domain.numPts());
    EXPECT_TRUE(ba.contains(domain));
    for (const Box& b : ba.boxes()) {
        EXPECT_LE(b.size().max(), info.maxGridSize);
        EXPECT_TRUE(b.coarsenable(info.blockingFactor));
    }
}

TEST(AmrCore, InitBuildsNestedHierarchy) {
    TestAmr amr(unitGeom(32), smallInfo());
    amr.initGrids(0.0);
    EXPECT_EQ(amr.finestLevel(), 2);
    // Initialization builds every level from scratch.
    EXPECT_EQ(amr.events[0], "scratch0");
    EXPECT_EQ(amr.events[1], "scratch1");
    EXPECT_EQ(amr.events[2], "scratch2");

    // Tagged cells are covered by the next level (refined).
    for (int lev = 1; lev <= 2; ++lev) {
        std::vector<IntVect> tags;
        amr.exposedErrorEst(lev - 1, tags);
        for (const IntVect& t : tags) {
            EXPECT_TRUE(amr.boxArray(lev).contains(
                Box(t, t).refine(amr.refRatio())))
                << "level " << lev << " tag " << t;
        }
    }

    // Proper nesting: each fine box, coarsened and grown by the buffer,
    // stays inside the parent level within the domain.
    for (int lev = 2; lev >= 1; --lev) {
        for (const Box& b : amr.boxArray(lev).boxes()) {
            const Box need = b.coarsen(amr.refRatio())
                                 .grow(amr.info().properNestingBuffer) &
                             amr.geom(lev - 1).domain();
            EXPECT_TRUE(amr.boxArray(lev - 1).contains(need));
        }
    }

    // Boxes at each level are pairwise disjoint.
    for (int lev = 0; lev <= 2; ++lev) {
        const auto& boxes = amr.boxArray(lev).boxes();
        for (std::size_t i = 0; i < boxes.size(); ++i)
            for (std::size_t j = i + 1; j < boxes.size(); ++j)
                EXPECT_FALSE(boxes[i].intersects(boxes[j]));
    }
}

TEST(AmrCore, PointCounts) {
    TestAmr amr(unitGeom(32), smallInfo());
    amr.initGrids(0.0);
    EXPECT_EQ(amr.equivalentPoints(), 32ll * 32 * 32 * 64);
    EXPECT_GT(amr.totalPoints(), amr.geom(0).domain().numPts());
    EXPECT_LT(amr.totalPoints(), amr.equivalentPoints());
}

TEST(AmrCore, RegridTracksMovingTags) {
    TestAmr amr(unitGeom(32), smallInfo());
    amr.initGrids(0.0);
    const BoxArray before1 = amr.boxArray(1);
    amr.tagCenter = IntVect{8, 8, 8};
    amr.events.clear();
    amr.regrid(0, 0.0);
    EXPECT_NE(amr.boxArray(1), before1);
    // Levels 1 and 2 were rebuilt via remake (they already existed).
    bool sawRemake1 = false;
    for (const auto& e : amr.events) sawRemake1 = sawRemake1 || e == "remake1";
    EXPECT_TRUE(sawRemake1);
    // New grids cover the new tag location.
    EXPECT_TRUE(amr.boxArray(1).contains(
        Box(amr.tagCenter, amr.tagCenter).refine(amr.refRatio())));
}

TEST(AmrCore, RegridRemovesLevelsWhenTagsVanish) {
    TestAmr amr(unitGeom(32), smallInfo());
    amr.initGrids(0.0);
    ASSERT_EQ(amr.finestLevel(), 2);
    amr.tagRadius = 0;
    amr.tagCenter = IntVect{-100, -100, -100}; // tags land outside: none kept
    // errorEst still emits cells, but outside the domain; simulate "no
    // tags" by radius trick: use a derived behaviour instead.
    amr.events.clear();
    amr.regrid(0, 0.0);
    // With tags far outside, clustering still returns their bbox, but the
    // domain clip empties it -> levels deleted.
    EXPECT_EQ(amr.finestLevel(), 0);
    bool sawClear = false;
    for (const auto& e : amr.events) sawClear = sawClear || e == "clear1";
    EXPECT_TRUE(sawClear);
}

TEST(AmrCore, RegridIsIdempotentWhenTagsUnchanged) {
    TestAmr amr(unitGeom(32), smallInfo());
    amr.initGrids(0.0);
    const BoxArray b1 = amr.boxArray(1), b2 = amr.boxArray(2);
    amr.events.clear();
    amr.regrid(0, 0.0);
    EXPECT_EQ(amr.boxArray(1), b1);
    EXPECT_EQ(amr.boxArray(2), b2);
    // No remakes should have fired (identical grids short-circuit).
    for (const auto& e : amr.events) EXPECT_EQ(e.find("remake"), std::string::npos);
}

} // namespace
} // namespace crocco::amr
