#include "amr/BoxArray.hpp"
#include "amr/Morton.hpp"

#include <gtest/gtest.h>

#include <random>

namespace crocco::amr {
namespace {

TEST(Morton, RoundTrip) {
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> d(0, (1 << 20) - 1);
    for (int t = 0; t < 200; ++t) {
        const IntVect p{d(rng), d(rng), d(rng)};
        EXPECT_EQ(mortonDecode(mortonIndex(p)), p);
    }
}

TEST(Morton, OrderingIsSpatiallyLocal) {
    // Points within the same octant of a power-of-two cube share high bits,
    // so their codes are closer than codes across octants.
    EXPECT_LT(mortonIndex({0, 0, 0}), mortonIndex({0, 0, 1}));
    EXPECT_LT(mortonIndex({1, 1, 1}), mortonIndex({2, 0, 0}));
    EXPECT_LT(mortonIndex({3, 3, 3}), mortonIndex({4, 4, 4}));
}

std::vector<Box> tiledBoxes(int n, int size) {
    std::vector<Box> boxes;
    for (int k = 0; k < n; ++k)
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < n; ++i) {
                const IntVect lo{i * size, j * size, k * size};
                boxes.emplace_back(lo, lo + IntVect(size - 1));
            }
    return boxes;
}

TEST(BoxArray, SizeAndPts) {
    BoxArray ba(tiledBoxes(3, 8));
    EXPECT_EQ(ba.size(), 27);
    EXPECT_EQ(ba.numPts(), 27 * 512);
    EXPECT_EQ(ba.minimalBox(), Box(IntVect::zero(), IntVect(23)));
}

class BoxArrayIntersectProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoxArrayIntersectProperty, MatchesBruteForce) {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> d(0, 30);
    std::uniform_int_distribution<int> len(0, 9);
    std::vector<Box> boxes;
    // Disjoint-ish random tiles via a shuffled lattice subset.
    for (int t = 0; t < 20; ++t) {
        const IntVect lo{d(rng), d(rng), d(rng)};
        boxes.emplace_back(lo, lo + IntVect{len(rng), len(rng), len(rng)});
    }
    BoxArray ba(boxes);
    for (int t = 0; t < 20; ++t) {
        const IntVect lo{d(rng) - 5, d(rng) - 5, d(rng) - 5};
        const Box query(lo, lo + IntVect{len(rng), len(rng), len(rng)});
        auto fast = ba.intersections(query);
        std::sort(fast.begin(), fast.end(),
                  [](auto& a, auto& b) { return a.first < b.first; });
        std::vector<std::pair<int, Box>> slow;
        for (int i = 0; i < ba.size(); ++i) {
            const Box isect = ba[i] & query;
            if (isect.ok()) slow.emplace_back(i, isect);
        }
        ASSERT_EQ(fast.size(), slow.size());
        for (std::size_t i = 0; i < fast.size(); ++i) {
            EXPECT_EQ(fast[i].first, slow[i].first);
            EXPECT_EQ(fast[i].second, slow[i].second);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BoxArrayIntersectProperty,
                         ::testing::Range(0, 10));

TEST(BoxArray, ContainsAndComplement) {
    BoxArray ba(tiledBoxes(2, 8)); // covers [0,16)^3
    EXPECT_TRUE(ba.contains(Box(IntVect(2), IntVect(13))));
    EXPECT_TRUE(ba.contains(IntVect{15, 15, 15}));
    EXPECT_FALSE(ba.contains(IntVect{16, 0, 0}));
    EXPECT_FALSE(ba.contains(Box(IntVect(2), IntVect(16))));
    const auto holes = ba.complementIn(Box(IntVect(0), IntVect(17)));
    EXPECT_EQ(totalPts(holes), 18 * 18 * 18 - 16 * 16 * 16);
}

TEST(BoxArray, CoarsenRefine) {
    BoxArray ba(tiledBoxes(2, 8));
    EXPECT_TRUE(ba.coarsenable(IntVect(2)));
    EXPECT_EQ(ba.coarsen(2).numPts(), ba.numPts() / 8);
    EXPECT_EQ(ba.refine(2).numPts(), ba.numPts() * 8);
    EXPECT_EQ(ba.coarsen(2).refine(2), ba);
}

TEST(BoxArray, EmptyQueries) {
    BoxArray empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_TRUE(empty.intersections(Box(IntVect(0), IntVect(5))).empty());
    EXPECT_FALSE(empty.contains(IntVect::zero()));
}

} // namespace
} // namespace crocco::amr
