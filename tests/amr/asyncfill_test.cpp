// Begin/End ghost exchange: the async path must be indistinguishable from
// the blocking fillBoundary — same ghost bytes, same logged message stream
// — and its misuse modes must fail loudly with located errors.
#include "amr/MultiFab.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

namespace crocco::amr {
namespace {

double field(const IntVect& p, int comp) {
    return comp + std::sin(0.3 * p[0]) + 2.0 * std::cos(0.5 * p[1]) +
           0.1 * p[2] * p[2];
}

std::vector<Box> tiledBoxes(const Box& domain, int size) {
    std::vector<Box> out;
    forEachCell(domain.coarsen(size), [&](int i, int j, int k) {
        const IntVect lo = IntVect{i, j, k} * size;
        out.emplace_back(lo, lo + IntVect(size - 1));
    });
    return out;
}

void fillField(MultiFab& mf) {
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.array(f);
        for (int n = 0; n < mf.nComp(); ++n)
            forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, n) = field({i, j, k}, n);
            });
    }
}

TEST(AsyncFill, BitwiseIdenticalToBlockingFillBoundary) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);

    parallel::SimComm commSync(3), commAsync(3);
    MultiFab sync(ba, dm, 2, 3, &commSync);
    MultiFab async(ba, dm, 2, 3, &commAsync);
    fillField(sync);
    fillField(async);

    sync.fillBoundary(geom);
    async.fillBoundaryBegin(geom);
    EXPECT_TRUE(async.fillBoundaryInFlight());
    // Valid cells are readable while the exchange is in flight (that is
    // the interior pass's contract); ghost data is not yet.
    async.fillBoundaryEnd();
    EXPECT_FALSE(async.fillBoundaryInFlight());

    // Ghost data bitwise-identical over every allocated cell.
    for (int f = 0; f < sync.numFabs(); ++f) {
        auto a = sync.const_array(f);
        auto b = async.const_array(f);
        for (int n = 0; n < 2; ++n)
            forEachCell(sync.grownBox(f), [&](int i, int j, int k) {
                // Untouched out-of-domain ghosts hold indeterminate data in
                // both; compare only where the exchange wrote (domain is
                // fully periodic, so that is everywhere).
                EXPECT_EQ(a(i, j, k, n), b(i, j, k, n))
                    << "fab " << f << " (" << i << "," << j << "," << k << ")";
            });
    }

    // Message stream byte-identical: count, order, and every field.
    const auto& ms = commSync.log().messages();
    const auto& ma = commAsync.log().messages();
    ASSERT_EQ(ms.size(), ma.size());
    ASSERT_GT(ms.size(), 0u);
    for (std::size_t i = 0; i < ms.size(); ++i) {
        EXPECT_EQ(ms[i].src, ma[i].src);
        EXPECT_EQ(ms[i].dst, ma[i].dst);
        EXPECT_EQ(ms[i].bytes, ma[i].bytes);
        EXPECT_EQ(ms[i].kind, ma[i].kind);
        EXPECT_EQ(ms[i].tag, ma[i].tag);
    }
}

TEST(AsyncFill, EndWithoutBeginThrowsWithCallerLocation) {
    const Box domain(IntVect::zero(), IntVect(7));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::none());
    BoxArray ba(tiledBoxes(domain, 4));
    MultiFab mf(ba, DistributionMapping(ba, 1), 1, 2);
    try {
        mf.fillBoundaryEnd();
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("fillBoundaryEnd"), std::string::npos) << msg;
        // source_location of THIS file, so the report points at the caller.
        EXPECT_NE(msg.find("asyncfill_test.cpp"), std::string::npos) << msg;
    }
}

TEST(AsyncFill, BeginTwiceAndCopyInFlightThrow) {
    const Box domain(IntVect::zero(), IntVect(7));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 4));
    MultiFab mf(ba, DistributionMapping(ba, 1), 1, 2);
    mf.setVal(1.0);
    mf.fillBoundaryBegin(geom);
    EXPECT_THROW(mf.fillBoundaryBegin(geom), std::logic_error);
    // Snapshot copies must never silently capture a half-done exchange.
    EXPECT_THROW(MultiFab copy(mf), std::logic_error);
    MultiFab other;
    EXPECT_THROW(other = mf, std::logic_error);
    mf.fillBoundaryEnd();
    EXPECT_NO_THROW(MultiFab copy2(mf)); // fine once drained
}

} // namespace
} // namespace crocco::amr
