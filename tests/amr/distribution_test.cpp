#include "amr/DistributionMapping.hpp"

#include <gtest/gtest.h>

namespace crocco::amr {
namespace {

std::vector<Box> tiledBoxes(int n, int size) {
    std::vector<Box> boxes;
    for (int k = 0; k < n; ++k)
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < n; ++i) {
                const IntVect lo{i * size, j * size, k * size};
                boxes.emplace_back(lo, lo + IntVect(size - 1));
            }
    return boxes;
}

class DistributionBalance
    : public ::testing::TestWithParam<std::tuple<int, DistributionMapping::Strategy>> {
};

TEST_P(DistributionBalance, EveryRankUsedAndBalanced) {
    const auto [nranks, strategy] = GetParam();
    BoxArray ba(tiledBoxes(4, 8)); // 64 equal boxes
    DistributionMapping dm(ba, nranks, strategy);
    ASSERT_EQ(dm.size(), ba.size());
    const auto pts = dm.pointsPerRank(ba);
    for (int r = 0; r < nranks; ++r) EXPECT_GT(pts[r], 0) << "rank " << r;
    // Equal boxes must balance to within one box.
    EXPECT_LE(dm.imbalance(ba), 1.0 + static_cast<double>(nranks) / ba.size() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DistributionBalance,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 64),
                       ::testing::Values(DistributionMapping::Strategy::SFC,
                                         DistributionMapping::Strategy::Knapsack,
                                         DistributionMapping::Strategy::RoundRobin)));

TEST(DistributionMapping, KnapsackHandlesUnequalBoxes) {
    std::vector<Box> boxes;
    // One giant box and many small ones.
    boxes.emplace_back(IntVect::zero(), IntVect{31, 31, 31});
    for (int i = 0; i < 16; ++i)
        boxes.emplace_back(IntVect{32 + 4 * i, 0, 0}, IntVect{35 + 4 * i, 3, 3});
    BoxArray ba(boxes);
    DistributionMapping dm(ba, 4, DistributionMapping::Strategy::Knapsack);
    // The giant box dominates; its rank should get nothing else big.
    const auto pts = dm.pointsPerRank(ba);
    const auto maxPts = *std::max_element(pts.begin(), pts.end());
    EXPECT_EQ(maxPts, 32768); // giant box alone
}

TEST(DistributionMapping, SfcKeepsNeighborsTogether) {
    // SFC assignment of a contiguous tile grid gives each rank a
    // mostly-connected chunk: it must cut far fewer neighbor pairs than a
    // locality-oblivious round-robin assignment. (For a 4x4x4 tile grid over
    // 8 ranks the SFC chunks are exactly the 8 octants.)
    BoxArray ba(tiledBoxes(4, 8));
    auto cutEdges = [&](const DistributionMapping& dm) {
        int cut = 0;
        for (int i = 0; i < ba.size(); ++i) {
            for (const auto& [j, isect] : ba.intersections(ba[i].grow(1))) {
                if (j > i && dm[i] != dm[j]) ++cut;
            }
        }
        return cut;
    };
    const int sfcCut =
        cutEdges(DistributionMapping(ba, 8, DistributionMapping::Strategy::SFC));
    const int rrCut = cutEdges(
        DistributionMapping(ba, 8, DistributionMapping::Strategy::RoundRobin));
    EXPECT_LT(sfcCut, rrCut * 2 / 3);
}

TEST(DistributionMapping, ExplicitOwners) {
    BoxArray ba(tiledBoxes(2, 8));
    std::vector<int> owners(8, 3);
    DistributionMapping dm(owners, 5);
    EXPECT_EQ(dm[0], 3);
    EXPECT_EQ(dm.numRanks(), 5);
    const auto pts = dm.pointsPerRank(ba);
    EXPECT_EQ(pts[3], ba.numPts());
    EXPECT_EQ(pts[0], 0);
}

TEST(DistributionMapping, Deterministic) {
    BoxArray ba(tiledBoxes(3, 8));
    DistributionMapping a(ba, 6), b(ba, 6);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace crocco::amr
