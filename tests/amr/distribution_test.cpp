#include "amr/DistributionMapping.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace crocco::amr {
namespace {

std::vector<Box> tiledBoxes(int n, int size) {
    std::vector<Box> boxes;
    for (int k = 0; k < n; ++k)
        for (int j = 0; j < n; ++j)
            for (int i = 0; i < n; ++i) {
                const IntVect lo{i * size, j * size, k * size};
                boxes.emplace_back(lo, lo + IntVect(size - 1));
            }
    return boxes;
}

class DistributionBalance
    : public ::testing::TestWithParam<std::tuple<int, DistributionMapping::Strategy>> {
};

TEST_P(DistributionBalance, EveryRankUsedAndBalanced) {
    const auto [nranks, strategy] = GetParam();
    BoxArray ba(tiledBoxes(4, 8)); // 64 equal boxes
    DistributionMapping dm(ba, nranks, strategy);
    ASSERT_EQ(dm.size(), ba.size());
    const auto pts = dm.pointsPerRank(ba);
    for (int r = 0; r < nranks; ++r) EXPECT_GT(pts[r], 0) << "rank " << r;
    // Equal boxes must balance to within one box.
    EXPECT_LE(dm.imbalance(ba), 1.0 + static_cast<double>(nranks) / ba.size() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DistributionBalance,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 64),
                       ::testing::Values(DistributionMapping::Strategy::SFC,
                                         DistributionMapping::Strategy::Knapsack,
                                         DistributionMapping::Strategy::RoundRobin)));

TEST(DistributionMapping, KnapsackHandlesUnequalBoxes) {
    std::vector<Box> boxes;
    // One giant box and many small ones.
    boxes.emplace_back(IntVect::zero(), IntVect{31, 31, 31});
    for (int i = 0; i < 16; ++i)
        boxes.emplace_back(IntVect{32 + 4 * i, 0, 0}, IntVect{35 + 4 * i, 3, 3});
    BoxArray ba(boxes);
    DistributionMapping dm(ba, 4, DistributionMapping::Strategy::Knapsack);
    // The giant box dominates; its rank should get nothing else big.
    const auto pts = dm.pointsPerRank(ba);
    const auto maxPts = *std::max_element(pts.begin(), pts.end());
    EXPECT_EQ(maxPts, 32768); // giant box alone
}

TEST(DistributionMapping, SfcKeepsNeighborsTogether) {
    // SFC assignment of a contiguous tile grid gives each rank a
    // mostly-connected chunk: it must cut far fewer neighbor pairs than a
    // locality-oblivious round-robin assignment. (For a 4x4x4 tile grid over
    // 8 ranks the SFC chunks are exactly the 8 octants.)
    BoxArray ba(tiledBoxes(4, 8));
    auto cutEdges = [&](const DistributionMapping& dm) {
        int cut = 0;
        for (int i = 0; i < ba.size(); ++i) {
            for (const auto& [j, isect] : ba.intersections(ba[i].grow(1))) {
                if (j > i && dm[i] != dm[j]) ++cut;
            }
        }
        return cut;
    };
    const int sfcCut =
        cutEdges(DistributionMapping(ba, 8, DistributionMapping::Strategy::SFC));
    const int rrCut = cutEdges(
        DistributionMapping(ba, 8, DistributionMapping::Strategy::RoundRobin));
    EXPECT_LT(sfcCut, rrCut * 2 / 3);
}

TEST(DistributionMapping, ExplicitOwners) {
    BoxArray ba(tiledBoxes(2, 8));
    std::vector<int> owners(8, 3);
    DistributionMapping dm(owners, 5);
    EXPECT_EQ(dm[0], 3);
    EXPECT_EQ(dm.numRanks(), 5);
    const auto pts = dm.pointsPerRank(ba);
    EXPECT_EQ(pts[3], ba.numPts());
    EXPECT_EQ(pts[0], 0);
}

TEST(DistributionMapping, Deterministic) {
    BoxArray ba(tiledBoxes(3, 8));
    DistributionMapping a(ba, 6), b(ba, 6);
    EXPECT_EQ(a, b);
}

TEST(DistributionMapping, ExcludeRankRenumbersSurvivorsAndAdoptsOrphans) {
    // Rank-death rebuild: survivors keep their boxes under the dense
    // post-shrink numbering; the dead rank's boxes go to the least-loaded
    // survivors.
    BoxArray ba(tiledBoxes(2, 8)); // 8 equal boxes
    DistributionMapping dm(std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}, 4);
    const DistributionMapping shrunk = dm.excludeRank(1, ba);
    EXPECT_EQ(shrunk.numRanks(), 3);
    EXPECT_EQ(shrunk.size(), ba.size());
    for (int i = 0; i < shrunk.size(); ++i) {
        EXPECT_GE(shrunk[i], 0);
        EXPECT_LT(shrunk[i], 3);
    }
    // Survivors renumbered: old 0 -> 0, old 2 -> 1, old 3 -> 2.
    EXPECT_EQ(shrunk[0], 0);
    EXPECT_EQ(shrunk[2], 1);
    EXPECT_EQ(shrunk[3], 2);
    EXPECT_EQ(shrunk[4], 0);
    // Equal boxes stay balanced: the two orphans land on different ranks,
    // so no rank holds more than 3 of the 8 boxes.
    const auto pts = shrunk.pointsPerRank(ba);
    for (int r = 0; r < 3; ++r) {
        EXPECT_GT(pts[r], 0);
        EXPECT_LE(pts[r], 3 * 8 * 8 * 8);
    }
    EXPECT_EQ(pts[0] + pts[1] + pts[2], ba.numPts());
}

TEST(DistributionMapping, ExcludeRankValidatesItsArguments) {
    BoxArray ba(tiledBoxes(2, 8));
    DistributionMapping dm(ba, 4);
    EXPECT_THROW(dm.excludeRank(-1, ba), std::invalid_argument);
    EXPECT_THROW(dm.excludeRank(4, ba), std::invalid_argument);
    DistributionMapping solo(ba, 1);
    EXPECT_THROW(solo.excludeRank(0, ba), std::logic_error);
}

TEST(DistributionMapping, ExcludeRankOrphanPlacementIsDeterministic) {
    BoxArray ba(tiledBoxes(3, 8));
    DistributionMapping dm(ba, 5);
    EXPECT_EQ(dm.excludeRank(2, ba), dm.excludeRank(2, ba));
}

} // namespace
} // namespace crocco::amr
