#include "amr/FillPatch.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::amr {
namespace {

std::vector<Box> tiledBoxes(const Box& domain, int size) {
    std::vector<Box> out;
    forEachCell(domain.coarsen(size), [&](int i, int j, int k) {
        const IntVect lo = IntVect{i, j, k} * size;
        out.emplace_back(lo, lo + IntVect(size - 1));
    });
    return out;
}

/// Affine global field in *physical* coordinates at a given level spacing,
/// reproduced exactly by the linear interpolators.
double affine(int lev, const IntVect& p) {
    const double h = (lev == 0) ? 1.0 : 0.5;
    return 2.0 * (p[0] + 0.5) * h - 1.0 * (p[1] + 0.5) * h + 0.5 * (p[2] + 0.5) * h + 3.0;
}

TEST(Uncovered, FindsHolesWithPeriodicImages) {
    const Box domain(IntVect::zero(), IntVect(7));
    Periodicity per;
    per.periodic[0] = true;
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, per);
    BoxArray ba(Box(IntVect{0, 0, 0}, IntVect{7, 3, 7})); // lower half in y
    // Query reaching past x=7 wraps around; past y=3 does not.
    const Box query(IntVect{6, 0, 0}, IntVect{9, 5, 7});
    const auto holes = uncoveredBy(query, ba, geom);
    // x in 6..9 wraps onto 6,7,0,1 which are covered for y<=3; y in 4..5
    // uncovered entirely.
    EXPECT_EQ(totalPts(holes), 4ll * 2 * 8);
}

TEST(LinearExtrapolateGhost, ExactForAffineData) {
    const Box interior(IntVect(2), IntVect(5));
    FArrayBox fab(interior.grow(2), 2, -999.0);
    auto a = fab.array();
    forEachCell(interior, [&](int i, int j, int k) {
        a(i, j, k, 0) = 3.0 * i - 2.0 * j + k + 1.0;
        a(i, j, k, 1) = -i + 4.0 * j + 2.0 * k;
    });
    linearExtrapolateGhost(fab, interior, 0, 2);
    forEachCell(fab.box(), [&](int i, int j, int k) {
        EXPECT_NEAR(a(i, j, k, 0), 3.0 * i - 2.0 * j + k + 1.0, 1e-12);
        EXPECT_NEAR(a(i, j, k, 1), -i + 4.0 * j + 2.0 * k, 1e-12);
    });
}

TEST(FillPatchSingleLevel, CopiesExchangesAndAppliesBC) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1});
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 2);
    MultiFab src(ba, dm, 1, 0);
    for (int f = 0; f < src.numFabs(); ++f) {
        auto a = src.array(f);
        forEachCell(src.validBox(f),
                    [&](int i, int j, int k) { a(i, j, k, 0) = affine(0, {i, j, k}); });
    }
    MultiFab dst(ba, dm, 1, 2);
    dst.setVal(-1.0);
    int bcCalls = 0;
    PhysBCFunct bc = [&](MultiFab& mf, const Geometry& g, Real) {
        ++bcCalls;
        // Fill all out-of-domain ghosts with a sentinel we can check.
        for (int f = 0; f < mf.numFabs(); ++f) {
            auto a = mf.array(f);
            forEachCell(mf.grownBox(f), [&](int i, int j, int k) {
                if (!g.domain().contains(IntVect{i, j, k})) a(i, j, k, 0) = 42.0;
            });
        }
    };
    FillPatchSingleLevel(dst, src, geom, bc, 0.0);
    EXPECT_EQ(bcCalls, 1);
    for (int f = 0; f < dst.numFabs(); ++f) {
        auto a = dst.const_array(f);
        forEachCell(dst.grownBox(f), [&](int i, int j, int k) {
            if (domain.contains(IntVect{i, j, k}))
                EXPECT_DOUBLE_EQ(a(i, j, k, 0), affine(0, {i, j, k}));
            else
                EXPECT_DOUBLE_EQ(a(i, j, k, 0), 42.0);
        });
    }
}

struct TwoLevelSetup {
    Box domain0{IntVect::zero(), IntVect(15)};
    Geometry geom0, geom1;
    BoxArray ba0, ba1;
    DistributionMapping dm0, dm1;
    MultiFab crse, fine;

    TwoLevelSetup() {
        Periodicity per;
        per.periodic[2] = true;
        geom0 = Geometry(domain0, {0, 0, 0}, {1, 1, 1}, per);
        geom1 = geom0.refine(IntVect(2));
        ba0 = BoxArray(tiledBoxes(domain0, 8));
        dm0 = DistributionMapping(ba0, 2);
        // Fine level covers the middle of the domain (fine index space).
        ba1 = BoxArray(tiledBoxes(Box(IntVect(8), IntVect(23)), 8));
        dm1 = DistributionMapping(ba1, 2);
        crse.define(ba0, dm0, 1, 4);
        fine.define(ba1, dm1, 1, 4);
        fillLevel(crse, 0);
        fillLevel(fine, 1);
    }
    static void fillLevel(MultiFab& mf, int lev) {
        for (int f = 0; f < mf.numFabs(); ++f) {
            auto a = mf.array(f);
            forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, 0) = affine(lev, {i, j, k});
            });
        }
    }
};

PhysBCFunct extrapolationBC() {
    return [](MultiFab& mf, const Geometry& g, Real) {
        for (int f = 0; f < mf.numFabs(); ++f) {
            const Box interior = mf.grownBox(f) & g.domain();
            linearExtrapolateGhost(mf.fab(f), interior, 0, mf.nComp());
        }
    };
}

TEST(FillPatchTwoLevels, GhostsMatchAffineFieldEverywhere) {
    TwoLevelSetup s;
    MultiFab dst(s.ba1, s.dm1, 1, 4);
    dst.setVal(-99.0);
    TrilinearInterp interp;
    FillPatchTwoLevels(dst, s.fine, s.crse, s.geom1, s.geom0, IntVect(2), interp,
                       extrapolationBC(), extrapolationBC(), 0.0);
    // The affine field is reproduced exactly: fine-covered ghosts by copy,
    // coarse-covered by linear interpolation, outside-domain by linear
    // extrapolation BC.
    for (int f = 0; f < dst.numFabs(); ++f) {
        auto a = dst.const_array(f);
        forEachCell(dst.grownBox(f), [&](int i, int j, int k) {
            EXPECT_NEAR(a(i, j, k, 0), affine(1, {i, j, k}), 1e-11)
                << "fab " << f << " at " << IntVect{i, j, k};
        });
    }
}

TEST(FillPatchTwoLevels, CurvilinearInterpolatorLogsGlobalCopy) {
    TwoLevelSetup s;
    parallel::SimComm comm(2);
    MultiFab dst(s.ba1, s.dm1, 1, 4, &comm);
    // Coordinates: uniform physical mapping with spacing h per level.
    MultiFab crseCoords(s.ba0, s.dm0, 3, 7), fineCoords(s.ba1, s.dm1, 3, 7);
    auto fillCoords = [&](MultiFab& mf, double h) {
        for (int f = 0; f < mf.numFabs(); ++f) {
            auto a = mf.array(f);
            forEachCell(mf.grownBox(f), [&](int i, int j, int k) {
                a(i, j, k, 0) = (i + 0.5) * h;
                a(i, j, k, 1) = (j + 0.5) * h;
                a(i, j, k, 2) = (k + 0.5) * h;
            });
        }
    };
    fillCoords(crseCoords, 1.0);
    fillCoords(fineCoords, 0.5);
    CurvilinearInterp interp;
    FillPatchTwoLevels(dst, s.fine, s.crse, s.geom1, s.geom0, IntVect(2), interp,
                       extrapolationBC(), extrapolationBC(), 0.0, &fineCoords,
                       &crseCoords);
    for (int f = 0; f < dst.numFabs(); ++f) {
        auto a = dst.const_array(f);
        forEachCell(dst.grownBox(f), [&](int i, int j, int k) {
            EXPECT_NEAR(a(i, j, k, 0), affine(1, {i, j, k}), 1e-11);
        });
    }
    // The coordinate gather — the paper's scaling bottleneck — was logged
    // under its own tag.
    bool sawInterpCopy = false;
    for (const auto& m : comm.log().messages())
        sawInterpCopy = sawInterpCopy || m.tag == "ParallelCopy_interp";
    EXPECT_TRUE(sawInterpCopy);
}

TEST(InterpFromCoarseLevel, FillsEntireLevel) {
    TwoLevelSetup s;
    MultiFab dst(s.ba1, s.dm1, 1, 4);
    dst.setVal(-99.0);
    TrilinearInterp interp;
    InterpFromCoarseLevel(dst, s.crse, s.geom1, s.geom0, IntVect(2), interp,
                          extrapolationBC(), extrapolationBC(), 0.0);
    for (int f = 0; f < dst.numFabs(); ++f) {
        auto a = dst.const_array(f);
        forEachCell(dst.grownBox(f), [&](int i, int j, int k) {
            EXPECT_NEAR(a(i, j, k, 0), affine(1, {i, j, k}), 1e-11);
        });
    }
}

TEST(AverageDown, RestrictsExactlyAndConserves) {
    TwoLevelSetup s;
    // Perturb the fine level so restriction actually changes the coarse.
    for (int f = 0; f < s.fine.numFabs(); ++f) {
        auto a = s.fine.array(f);
        forEachCell(s.fine.validBox(f), [&](int i, int j, int k) {
            a(i, j, k, 0) += 0.25 * ((i + j + k) % 2 == 0 ? 1.0 : -1.0);
        });
    }
    const Real fineSumBefore = s.fine.sum(0);
    AverageDown(s.fine, s.crse, IntVect(2), 0, 0, 1);
    // Each covered coarse cell equals the mean of its 8 children.
    Real coveredCoarseSum = 0.0;
    for (int f = 0; f < s.crse.numFabs(); ++f) {
        auto c = s.crse.const_array(f);
        for (const auto& [j, overlap] :
             s.ba1.coarsen(IntVect(2)).intersections(s.crse.validBox(f))) {
            forEachCell(overlap, [&](int ii, int jj, int kk) {
                coveredCoarseSum += c(ii, jj, kk, 0);
            });
        }
    }
    // Conservation: coarse covered sum * 8 == fine sum (equal volumes).
    EXPECT_NEAR(coveredCoarseSum * 8.0, fineSumBefore, 1e-9);
}

} // namespace
} // namespace crocco::amr
