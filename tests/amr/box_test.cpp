#include "amr/Box.hpp"
#include "amr/BoxList.hpp"

#include <gtest/gtest.h>

#include <random>

namespace crocco::amr {
namespace {

TEST(IntVect, Arithmetic) {
    const IntVect a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, (IntVect{5, 7, 9}));
    EXPECT_EQ(b - a, (IntVect{3, 3, 3}));
    EXPECT_EQ(a * 2, (IntVect{2, 4, 6}));
    EXPECT_EQ(a * b, (IntVect{4, 10, 18}));
    EXPECT_EQ(-a, (IntVect{-1, -2, -3}));
    EXPECT_EQ(IntVect::basis(1), (IntVect{0, 1, 0}));
}

TEST(IntVect, CoarsenRoundsTowardNegativeInfinity) {
    EXPECT_EQ((IntVect{0, 1, 3}.coarsen(2)), (IntVect{0, 0, 1}));
    EXPECT_EQ((IntVect{-1, -2, -3}.coarsen(2)), (IntVect{-1, -1, -2}));
    EXPECT_EQ((IntVect{-4, 4, 7}.coarsen(4)), (IntVect{-1, 1, 1}));
}

TEST(IntVect, Comparisons) {
    EXPECT_TRUE((IntVect{1, 2, 3}.allLE(IntVect{1, 2, 3})));
    EXPECT_TRUE((IntVect{0, 2, 3}.allLE(IntVect{1, 2, 3})));
    EXPECT_FALSE((IntVect{2, 2, 3}.allLE(IntVect{1, 9, 9})));
    EXPECT_TRUE((IntVect{0, 0, 0}.allLT(IntVect{1, 1, 1})));
    EXPECT_EQ((IntVect{3, 1, 2}.min()), 1);
    EXPECT_EQ((IntVect{3, 1, 2}.max()), 3);
    EXPECT_EQ((IntVect{3, 4, 5}.product()), 60);
}

TEST(Box, BasicQueries) {
    const Box b(IntVect{0, 0, 0}, IntVect{7, 3, 1});
    EXPECT_TRUE(b.ok());
    EXPECT_EQ(b.length(0), 8);
    EXPECT_EQ(b.length(1), 4);
    EXPECT_EQ(b.length(2), 2);
    EXPECT_EQ(b.numPts(), 64);
    EXPECT_TRUE(b.contains(IntVect{7, 3, 1}));
    EXPECT_FALSE(b.contains(IntVect{8, 0, 0}));
    EXPECT_FALSE(Box().ok());
    EXPECT_EQ(Box().numPts(), 0);
}

TEST(Box, Intersection) {
    const Box a(IntVect{0, 0, 0}, IntVect{7, 7, 7});
    const Box b(IntVect{4, 4, 4}, IntVect{11, 11, 11});
    const Box i = a & b;
    EXPECT_EQ(i, Box(IntVect{4, 4, 4}, IntVect{7, 7, 7}));
    EXPECT_TRUE(a.intersects(b));
    const Box c(IntVect{8, 0, 0}, IntVect{9, 7, 7});
    EXPECT_FALSE(a.intersects(c));
    EXPECT_FALSE((a & c).ok());
}

TEST(Box, GrowShiftChop) {
    const Box b(IntVect{2, 2, 2}, IntVect{5, 5, 5});
    EXPECT_EQ(b.grow(1), Box(IntVect{1, 1, 1}, IntVect{6, 6, 6}));
    EXPECT_EQ(b.grow(0, 2).length(0), 8);
    EXPECT_EQ(b.grow(0, 2).length(1), 4);
    EXPECT_EQ(b.shift(2, 3), Box(IntVect{2, 2, 5}, IntVect{5, 5, 8}));
    auto [l, r] = Box(IntVect{0, 0, 0}, IntVect{9, 3, 3}).chop();
    EXPECT_EQ(l.bigEnd(0) + 1, r.smallEnd(0));
    EXPECT_EQ(l.numPts() + r.numPts(), 160);
}

TEST(Box, CoarsenRefineRoundTrip) {
    const Box b(IntVect{0, 8, 16}, IntVect{7, 15, 31});
    EXPECT_TRUE(b.coarsenable(2));
    EXPECT_TRUE(b.coarsenable(8));
    EXPECT_EQ(b.coarsen(2).refine(2), b);
    const Box odd(IntVect{1, 0, 0}, IntVect{8, 7, 7});
    EXPECT_FALSE(odd.coarsenable(2));
    // Coarsening always covers the original region.
    EXPECT_TRUE(odd.coarsen(2).refine(2).contains(odd));
}

TEST(Box, IndexIsFortranOrder) {
    const Box b(IntVect{1, 2, 3}, IntVect{4, 6, 8});
    EXPECT_EQ(b.index(IntVect{1, 2, 3}), 0);
    EXPECT_EQ(b.index(IntVect{2, 2, 3}), 1);
    EXPECT_EQ(b.index(IntVect{1, 3, 3}), 4);           // +1 in j: stride nx
    EXPECT_EQ(b.index(IntVect{1, 2, 4}), 4 * 5);       // +1 in k: stride nx*ny
    EXPECT_EQ(b.index(b.bigEnd()), b.numPts() - 1);
}

TEST(Box, BboxUnion) {
    const Box a(IntVect{0, 0, 0}, IntVect{1, 1, 1});
    const Box b(IntVect{5, 5, 5}, IntVect{6, 6, 6});
    EXPECT_EQ(Box::bboxUnion(a, b), Box(IntVect{0, 0, 0}, IntVect{6, 6, 6}));
    EXPECT_EQ(Box::bboxUnion(Box(), a), a);
}

// ----------------------------------------------------------- boxDiff props

class BoxDiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoxDiffProperty, PiecesAreDisjointAndCoverExactly) {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> d(-6, 6);
    auto randBox = [&] {
        IntVect lo{d(rng), d(rng), d(rng)};
        IntVect hi = lo + IntVect{std::abs(d(rng)), std::abs(d(rng)), std::abs(d(rng))};
        return Box(lo, hi);
    };
    const Box a = randBox(), b = randBox();
    const auto pieces = boxDiff(a, b);
    // Pieces are pairwise disjoint.
    for (std::size_t i = 0; i < pieces.size(); ++i)
        for (std::size_t j = i + 1; j < pieces.size(); ++j)
            EXPECT_FALSE(pieces[i].intersects(pieces[j]));
    // Point counts match: |a| = |a & b| + |pieces|.
    EXPECT_EQ(totalPts(pieces) + (a & b).numPts(), a.numPts());
    // Each cell of a is in b xor in exactly one piece.
    forEachCell(a, [&](int i, int j, int k) {
        const IntVect p{i, j, k};
        int cover = b.contains(p) ? 1 : 0;
        for (const Box& piece : pieces) cover += piece.contains(p) ? 1 : 0;
        EXPECT_EQ(cover, 1);
    });
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BoxDiffProperty, ::testing::Range(0, 25));

TEST(BoxDiff, AgainstList) {
    const Box a(IntVect{0, 0, 0}, IntVect{9, 9, 0});
    std::vector<Box> covers{Box(IntVect{0, 0, 0}, IntVect{4, 9, 0}),
                            Box(IntVect{5, 0, 0}, IntVect{9, 4, 0})};
    const auto rest = boxDiff(a, covers);
    EXPECT_EQ(totalPts(rest), 25);
    EXPECT_FALSE(fullyCovered(a, covers));
    covers.push_back(Box(IntVect{5, 5, 0}, IntVect{9, 9, 0}));
    EXPECT_TRUE(fullyCovered(a, covers));
}

TEST(BoxList, ChopToMaxSize) {
    const Box big(IntVect{0, 0, 0}, IntVect{99, 49, 9});
    const auto pieces = chopToMaxSize({big}, IntVect{32, 32, 32});
    EXPECT_EQ(totalPts(pieces), big.numPts());
    for (const Box& p : pieces) {
        EXPECT_LE(p.length(0), 32);
        EXPECT_LE(p.length(1), 32);
        EXPECT_LE(p.length(2), 32);
    }
    for (std::size_t i = 0; i < pieces.size(); ++i)
        for (std::size_t j = i + 1; j < pieces.size(); ++j)
            EXPECT_FALSE(pieces[i].intersects(pieces[j]));
}

TEST(BoxList, RefineToBlockingFactor) {
    const Box b(IntVect{1, 9, 3}, IntVect{14, 17, 12});
    const auto rounded = refineToBlockingFactor({b}, 8);
    ASSERT_EQ(rounded.size(), 1u);
    EXPECT_TRUE(rounded[0].contains(b));
    EXPECT_TRUE(rounded[0].coarsenable(8));
}

} // namespace
} // namespace crocco::amr
