#include "amr/MultiFab.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace crocco::amr {
namespace {

/// A globally defined smooth-ish test field that is periodic on [0, n) in
/// any periodic dimension (integer lattice function).
double field(const IntVect& p, const Box& domain, const Periodicity& per, int comp) {
    IntVect q = p;
    for (int d = 0; d < 3; ++d) {
        if (per.isPeriodic(d)) {
            const int n = domain.length(d);
            q[d] = ((q[d] % n) + n) % n;
        }
    }
    return comp + std::sin(0.3 * q[0]) + 2.0 * std::cos(0.5 * q[1]) + 0.1 * q[2] * q[2];
}

std::vector<Box> tiledBoxes(const Box& domain, int size) {
    std::vector<Box> out;
    forEachCell(domain.coarsen(size), [&](int i, int j, int k) {
        const IntVect lo = IntVect{i, j, k} * size;
        out.emplace_back(lo, lo + IntVect(size - 1));
    });
    return out;
}

struct FillBoundaryCase {
    Periodicity per;
    int ngrow;
};

class FillBoundaryTest : public ::testing::TestWithParam<FillBoundaryCase> {};

TEST_P(FillBoundaryTest, GhostsMatchGlobalField) {
    const auto [per, ng] = GetParam();
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, per);
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);
    parallel::SimComm comm(3);
    MultiFab mf(ba, dm, 2, ng, &comm);

    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.array(f);
        for (int n = 0; n < 2; ++n)
            forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, n) = field({i, j, k}, domain, per, n);
            });
    }
    mf.fillBoundary(geom);

    // Every ghost cell whose (periodically wrapped) image lies in the
    // domain must equal the global field; cells outside stay untouched.
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.const_array(f);
        for (int n = 0; n < 2; ++n)
            forEachCell(mf.grownBox(f), [&](int i, int j, int k) {
                IntVect p{i, j, k};
                bool reachable = true;
                for (int d = 0; d < 3; ++d) {
                    if (!per.isPeriodic(d) &&
                        (p[d] < domain.smallEnd(d) || p[d] > domain.bigEnd(d)))
                        reachable = false;
                }
                if (!reachable) return;
                EXPECT_DOUBLE_EQ(a(i, j, k, n), field(p, domain, per, n))
                    << "fab " << f << " cell " << p << " comp " << n;
            });
    }
    // Off-rank ghost exchanges were logged as point-to-point messages.
    EXPECT_GT(comm.log().count(parallel::MessageKind::PointToPoint), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FillBoundaryTest,
    ::testing::Values(FillBoundaryCase{Periodicity::none(), 2},
                      FillBoundaryCase{Periodicity::none(), 4},
                      FillBoundaryCase{Periodicity::all(), 2},
                      FillBoundaryCase{Periodicity::all(), 4},
                      FillBoundaryCase{{{false, false, true}}, 3}));

TEST(MultiFab, SetValMinMaxSumNorm) {
    const Box domain(IntVect::zero(), IntVect(7));
    BoxArray ba(tiledBoxes(domain, 4));
    DistributionMapping dm(ba, 2);
    MultiFab mf(ba, dm, 1, 0);
    mf.setVal(3.0);
    EXPECT_DOUBLE_EQ(mf.sum(0), 3.0 * 512);
    EXPECT_DOUBLE_EQ(mf.min(0), 3.0);
    EXPECT_DOUBLE_EQ(mf.max(0), 3.0);
    EXPECT_NEAR(mf.norm2(0), 3.0 * std::sqrt(512.0), 1e-12);
}

TEST(MultiFab, CopyAndSaxpyAndMult) {
    const Box domain(IntVect::zero(), IntVect(7));
    BoxArray ba(tiledBoxes(domain, 4));
    DistributionMapping dm(ba, 2);
    MultiFab a(ba, dm, 2, 1), b(ba, dm, 2, 1);
    a.setVal(2.0);
    b.setVal(0.0);
    MultiFab::copy(b, a, 0, 0, 2, 1);
    EXPECT_DOUBLE_EQ(b.sum(1), 2.0 * 512);
    MultiFab::saxpy(b, 3.0, a, 0, 0, 2);
    EXPECT_DOUBLE_EQ(b.sum(0), 8.0 * 512);
    b.mult(0.5, 0, 1, 0);
    EXPECT_DOUBLE_EQ(b.sum(0), 4.0 * 512);
    EXPECT_DOUBLE_EQ(b.sum(1), 8.0 * 512);
    // Ghost scaling is opt-in via the explicit scope parameter: the valid
    // sum halves again while the ghost ring (filled below) also scales.
    b.fillBoundary(Geometry(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all()));
    b.mult(0.5, 0, 1, 1);
    EXPECT_DOUBLE_EQ(b.sum(0), 2.0 * 512);
    auto arr = b.const_array(0);
    const Box grown = b.grownBox(0);
    EXPECT_DOUBLE_EQ(arr(grown.smallEnd(0), grown.smallEnd(1), grown.smallEnd(2), 0),
                     2.0);
}

TEST(MultiFab, ParallelCopyAcrossLayouts) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1});
    // Source: 8-tiles; destination: one box offset inside the domain with
    // ghosts, different distribution.
    BoxArray srcBa(tiledBoxes(domain, 8));
    DistributionMapping srcDm(srcBa, 4);
    parallel::SimComm comm(4);
    MultiFab src(srcBa, srcDm, 1, 0, &comm);
    for (int f = 0; f < src.numFabs(); ++f) {
        auto a = src.array(f);
        forEachCell(src.validBox(f), [&](int i, int j, int k) {
            a(i, j, k, 0) = field({i, j, k}, domain, {}, 0);
        });
    }
    BoxArray dstBa(Box(IntVect(4), IntVect(11)));
    DistributionMapping dstDm(dstBa, 4);
    MultiFab dst(dstBa, dstDm, 1, 2, &comm);
    dst.setVal(-1.0);
    dst.parallelCopy(src, 0, 0, 1, 2, 0, "test");

    auto a = dst.const_array(0);
    forEachCell(dst.grownBox(0), [&](int i, int j, int k) {
        EXPECT_DOUBLE_EQ(a(i, j, k, 0), field({i, j, k}, domain, {}, 0));
    });
    EXPECT_GT(comm.log().count(parallel::MessageKind::ParallelCopy), 0u);
}

TEST(MultiFab, ParallelCopyPeriodicImages) {
    const Box domain(IntVect::zero(), IntVect(7));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 1);
    MultiFab src(ba, dm, 1, 0);
    auto s = src.array(0);
    forEachCell(domain, [&](int i, int j, int k) {
        s(i, j, k, 0) = field({i, j, k}, domain, Periodicity::all(), 0);
    });
    MultiFab dst(ba, dm, 1, 3);
    dst.setVal(-99.0);
    dst.parallelCopy(src, 0, 0, 1, 3, 0, "test", &geom);
    auto a = dst.const_array(0);
    forEachCell(dst.grownBox(0), [&](int i, int j, int k) {
        EXPECT_DOUBLE_EQ(a(i, j, k, 0),
                         field({i, j, k}, domain, Periodicity::all(), 0));
    });
}

TEST(MultiFab, L2DiffDetectsPerturbation) {
    const Box domain(IntVect::zero(), IntVect(7));
    BoxArray ba(tiledBoxes(domain, 4));
    DistributionMapping dm(ba, 2);
    MultiFab a(ba, dm, 1, 0), b(ba, dm, 1, 0);
    a.setVal(1.0);
    b.setVal(1.0);
    EXPECT_EQ(MultiFab::l2Diff(a, b, 0), 0.0);
    b.fab(3).setVal(1.5, b.validBox(3), 0, 1);
    EXPECT_NEAR(MultiFab::l2Diff(a, b, 0), 0.5 * std::sqrt(64.0), 1e-12);
}

} // namespace
} // namespace crocco::amr
