// Fault-tolerant communication (docs/resilience.md §5): every injected
// message fault must be detected by the hardened exchange and transparently
// recovered — or raised as a located error — and rank deaths must surface
// as RankFailure at the operations a real MPI run would hang in.
#include "parallel/CommFaults.hpp"
#include "parallel/SimComm.hpp"

#include "amr/MultiFab.hpp"
#include "resilience/Crc32.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace crocco::parallel {
namespace {

// ---------------------------------------------------------------- injector

std::vector<std::optional<MessageFault>> drawDecisions(CommFaults& f, int n) {
    std::vector<std::optional<MessageFault>> out;
    for (int i = 0; i < n; ++i) out.push_back(f.decide(0, 1, 64, "t"));
    return out;
}

TEST(CommFaults, SameSeedSameScheduleReproducesDecisions) {
    CommFaults::Rates r;
    r.drop = 0.2;
    r.duplicate = 0.1;
    r.delay = 0.1;
    r.corrupt = 0.2;
    CommFaults a(1234), b(1234);
    a.setRates(r);
    b.setRates(r);
    EXPECT_EQ(drawDecisions(a, 200), drawDecisions(b, 200));
    EXPECT_GT(a.stats().fired(), 0); // 60% fault rate over 200 draws
    EXPECT_EQ(a.stats().decisions, 200);
    // A different seed produces a different stream (vanishingly unlikely
    // to collide over 200 draws at these rates).
    CommFaults a2(1234), c(5678);
    a2.setRates(r);
    c.setRates(r);
    EXPECT_NE(drawDecisions(a2, 200), drawDecisions(c, 200));
}

TEST(CommFaults, RatesAreValidated) {
    CommFaults f;
    CommFaults::Rates r;
    r.drop = -0.1;
    EXPECT_THROW(f.setRates(r), std::invalid_argument);
    r.drop = 1.5;
    EXPECT_THROW(f.setRates(r), std::invalid_argument);
    r.drop = 0.6;
    r.corrupt = 0.6; // sum > 1
    EXPECT_THROW(f.setRates(r), std::invalid_argument);
    r.corrupt = 0.4; // sum == 1 is fine
    EXPECT_NO_THROW(f.setRates(r));
}

TEST(CommFaults, ArmedFaultHitsExactlyTheNthMessage) {
    CommFaults f; // zero rates: only the armed fault can fire
    f.armMessageFault(MessageFault::Corrupt, 2);
    EXPECT_FALSE(f.decide(0, 1, 8, "a").has_value());
    EXPECT_FALSE(f.decide(0, 1, 8, "a").has_value());
    const auto hit = f.decide(0, 1, 8, "a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, MessageFault::Corrupt);
    EXPECT_FALSE(f.decide(0, 1, 8, "a").has_value()); // one-shot
    EXPECT_EQ(f.stats().corruptions, 1);
}

TEST(CommFaults, RankDeathScheduleFiresOncePerStep) {
    CommFaults f;
    f.armRankDeath(5, 2);
    EXPECT_FALSE(f.takeRankDeath(4).has_value());
    const auto dead = f.takeRankDeath(5);
    ASSERT_TRUE(dead.has_value());
    EXPECT_EQ(*dead, 2);
    EXPECT_FALSE(f.takeRankDeath(5).has_value()); // consumed
    EXPECT_EQ(f.stats().rankDeaths, 1);
}

TEST(CommFaults, DisabledDecideConsumesNoRandomness) {
    // Enabling the injector mid-run must not shift the decision stream of
    // later messages relative to a run enabled from the same point.
    CommFaults::Rates r;
    r.drop = 0.5;
    CommFaults a(99), b(99);
    a.setRates(r);
    b.setRates(r);
    a.setEnabled(false);
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(a.decide(0, 1, 8, "warmup").has_value());
    a.setEnabled(true);
    EXPECT_EQ(drawDecisions(a, 50), drawDecisions(b, 50));
}

// --------------------------------------------------- hardened p2p transfer

/// One simulated wire: a sender-side buffer, a receiver-side buffer, and
/// the Transfer callbacks SimComm needs to damage and repair the payload.
struct Wire {
    std::vector<double> src;
    std::vector<double> dst;

    explicit Wire(int n) : src(n), dst(n, 0.0) {
        for (int i = 0; i < n; ++i) src[static_cast<std::size_t>(i)] = 1.5 * i;
    }

    SimComm::Transfer transfer(int s, int d, const std::string& tag) {
        SimComm::Transfer t;
        t.src = s;
        t.dst = d;
        t.bytes = static_cast<std::int64_t>(src.size() * sizeof(double));
        t.tag = tag;
        t.deliver = [this] { dst = src; };
        t.payloadCrc = [this] {
            return resilience::crc32(src.data(), src.size() * sizeof(double));
        };
        t.deliveredCrc = [this] {
            return resilience::crc32(dst.data(), dst.size() * sizeof(double));
        };
        t.scramble = [this](std::uint64_t word) {
            double& v = dst[word % dst.size()];
            std::uint64_t bits = 0;
            std::memcpy(&bits, &v, sizeof(bits));
            bits ^= std::uint64_t{1} << ((word >> 32) % 64u);
            std::memcpy(&v, &bits, sizeof(bits));
        };
        return t;
    }

    bool intact() const { return dst == src; }
};

TEST(HardenedExchange, CleanTransferRecordsCrcStampedMessage) {
    SimComm comm(2);
    CommFaults faults;
    comm.attachFaults(&faults);
    EXPECT_TRUE(comm.exchangeVerification()); // injector implies verification
    Wire w(16);
    comm.sendVerified(w.transfer(0, 1, "FB"));
    EXPECT_TRUE(w.intact());
    ASSERT_EQ(comm.log().count(), 1u);
    EXPECT_EQ(comm.log().messages()[0].crc,
              resilience::crc32(w.src.data(), w.src.size() * sizeof(double)));
    EXPECT_EQ(comm.faultStats().verified, 1);
    EXPECT_EQ(comm.faultStats().delivered, 1);
    EXPECT_EQ(comm.faultStats().retransmits, 0);
}

TEST(HardenedExchange, DropTimesOutAndRetransmits) {
    SimComm comm(2);
    comm.setTimeout(2.0);
    CommFaults faults;
    faults.armMessageFault(MessageFault::Drop, 0);
    comm.attachFaults(&faults);
    Wire w(16);
    comm.sendVerified(w.transfer(0, 1, "FB"));
    EXPECT_TRUE(w.intact()); // recovered transparently
    const auto& fs = comm.faultStats();
    EXPECT_EQ(fs.dropped, 1);
    EXPECT_EQ(fs.timeouts, 1);
    EXPECT_EQ(fs.retransmits, 1);
    EXPECT_EQ(fs.delivered, 1);
    EXPECT_DOUBLE_EQ(fs.modeledDelaySeconds, 2.0); // one timeout of backoff
    // Wire traffic: original transmission (lost but sent) + retransmit.
    ASSERT_EQ(comm.log().count(), 2u);
    EXPECT_EQ(comm.log().messages()[0].tag, "FB");
    EXPECT_EQ(comm.log().messages()[1].tag, "FB/rtx1");
    EXPECT_EQ(comm.log().messages()[1].crc, comm.log().messages()[0].crc);
}

TEST(HardenedExchange, DuplicateIsDiscardedBySequenceNumber) {
    SimComm comm(2);
    CommFaults faults;
    faults.armMessageFault(MessageFault::Duplicate, 0);
    comm.attachFaults(&faults);
    Wire w(16);
    comm.sendVerified(w.transfer(0, 1, "FB"));
    EXPECT_TRUE(w.intact());
    EXPECT_EQ(comm.faultStats().duplicated, 1);
    EXPECT_EQ(comm.faultStats().duplicateDiscards, 1);
    EXPECT_EQ(comm.faultStats().retransmits, 0); // no damage, no recovery
    // Both copies crossed the wire.
    ASSERT_EQ(comm.log().count(), 2u);
    EXPECT_EQ(comm.log().messages()[1].tag, "FB/dup");
    EXPECT_EQ(comm.log().messages()[1].bytes, comm.log().messages()[0].bytes);
}

TEST(HardenedExchange, DelayedPayloadLosesToTheRetransmit) {
    SimComm comm(2);
    comm.setTimeout(1.0);
    CommFaults faults;
    faults.armMessageFault(MessageFault::Delay, 0);
    comm.attachFaults(&faults);
    Wire w(16);
    comm.sendVerified(w.transfer(0, 1, "FB"));
    EXPECT_TRUE(w.intact());
    const auto& fs = comm.faultStats();
    EXPECT_EQ(fs.delayed, 1);
    EXPECT_EQ(fs.timeouts, 1);
    EXPECT_EQ(fs.retransmits, 1);
    // The late original landed after the retransmit and was discarded.
    EXPECT_EQ(fs.duplicateDiscards, 1);
}

TEST(HardenedExchange, CorruptionIsCaughtByCrcAndNacked) {
    SimComm comm(2);
    CommFaults faults;
    faults.armMessageFault(MessageFault::Corrupt, 0);
    comm.attachFaults(&faults);
    Wire w(16);
    comm.sendVerified(w.transfer(0, 1, "FB"));
    EXPECT_TRUE(w.intact()); // retransmit repaired the flipped bit
    const auto& fs = comm.faultStats();
    EXPECT_EQ(fs.corrupted, 1);
    EXPECT_EQ(fs.crcFailures, 1);
    EXPECT_EQ(fs.nacks, 1);
    EXPECT_EQ(fs.retransmits, 1);
    // original, NACK (receiver -> sender, 8 B), retransmit
    ASSERT_EQ(comm.log().count(), 3u);
    const auto& nack = comm.log().messages()[1];
    EXPECT_EQ(nack.tag, "FB/nack");
    EXPECT_EQ(nack.src, 1);
    EXPECT_EQ(nack.dst, 0);
    EXPECT_EQ(nack.bytes, 8);
}

TEST(HardenedExchange, PersistentlyBrokenLinkExhaustsRetransmitBudget) {
    // Negative test: persistent mode re-faults every retransmit, so a
    // drop-rate-1.0 link can never deliver and the exchange must fail
    // loudly with a located error instead of pretending success.
    SimComm comm(2);
    comm.setMaxRetransmits(3);
    CommFaults faults;
    CommFaults::Rates r;
    r.drop = 1.0;
    faults.setRates(r);
    faults.setPersistent(true);
    comm.attachFaults(&faults);
    Wire w(16);
    try {
        comm.sendVerified(w.transfer(0, 1, "FB"));
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("undeliverable"), std::string::npos) << msg;
        EXPECT_NE(msg.find("0 -> 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("FB"), std::string::npos) << msg;
        EXPECT_NE(msg.find("comm.max_retransmits"), std::string::npos) << msg;
    }
    EXPECT_EQ(comm.faultStats().retransmits, 3);
    EXPECT_FALSE(w.intact());
}

TEST(HardenedExchange, VerificationWithoutInjectorCatchesRealCorruption) {
    // comm.verify without a fault injector: a payload damaged outside the
    // injector's control (here: scribbled between CRC and check) is caught
    // and repaired. Negative control: with verification off the damage is
    // silent.
    SimComm comm(2);
    comm.setVerifyExchanges(true);
    EXPECT_TRUE(comm.exchangeVerification());
    Wire w(16);
    auto t = w.transfer(0, 1, "FB");
    bool first = true;
    t.deliver = [&w, &first] {
        w.dst = w.src;
        if (first) { // one-shot in-flight damage
            w.dst[3] += 1.0;
            first = false;
        }
    };
    comm.sendVerified(t);
    EXPECT_TRUE(w.intact());
    EXPECT_EQ(comm.faultStats().crcFailures, 1);
    EXPECT_EQ(comm.faultStats().retransmits, 1);
}

TEST(HardenedExchange, OnRankTransferBypassesTheWire) {
    SimComm comm(2);
    comm.setVerifyExchanges(true);
    Wire w(8);
    comm.sendVerified(w.transfer(1, 1, "local"));
    EXPECT_TRUE(w.intact());
    EXPECT_EQ(comm.log().count(), 0u);
    EXPECT_EQ(comm.faultStats().verified, 0);
}

// ------------------------------------------------------- waitall diagnosis

TEST(WaitallTimeout, UnmatchedReceiveDumpsAllPendingOps) {
    SimComm comm(3);
    comm.setTimeout(7.5);
    const auto s = comm.isend(0, 1, 128, MessageKind::PointToPoint, "FB");
    const auto r = comm.irecv(1, 2, "FB"); // never matched
    try {
        comm.waitall({s, r});
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("no matching isend"), std::string::npos) << msg;
        EXPECT_NE(msg.find("comm.timeout"), std::string::npos) << msg;
        EXPECT_NE(msg.find("7.5"), std::string::npos) << msg;
        // The dump lists every still-pending op with its direction.
        EXPECT_NE(msg.find("pending op"), std::string::npos) << msg;
        EXPECT_NE(msg.find("irecv 1 -> 2"), std::string::npos) << msg;
    }
}

// --------------------------------------------------- rank death and shrink

TEST(RankDeath, OperationsTouchingTheDeadRankRaiseRankFailure) {
    SimComm comm(3);
    comm.killRank(1);
    EXPECT_FALSE(comm.rankAlive(1));
    EXPECT_EQ(comm.aliveCount(), 2);
    try {
        comm.recordMessage(0, 1, 8, MessageKind::PointToPoint, "FB");
        FAIL() << "expected RankFailure";
    } catch (const RankFailure& e) {
        EXPECT_EQ(e.deadRank(), 1);
    }
    // Collectives touch every rank.
    EXPECT_THROW(comm.reduceRealMin({1.0, 2.0, 3.0}, "dt"), RankFailure);
    // Nonblocking ops fail at post time...
    EXPECT_THROW(comm.isend(1, 2, 8, MessageKind::PointToPoint, "FB"),
                 RankFailure);
    EXPECT_THROW(comm.irecv(0, 1, "FB"), RankFailure);
    // ...and a request posted before the death fails at waitall (the MPI
    // hang site).
    SimComm late(3);
    const auto s = late.isend(0, 1, 8, MessageKind::PointToPoint, "FB");
    late.killRank(1);
    EXPECT_THROW(late.waitall({s}), RankFailure);
    // Survivors can still talk to each other.
    EXPECT_NO_THROW(comm.recordMessage(0, 2, 8, MessageKind::PointToPoint, "FB"));
}

TEST(RankDeath, KillRankValidatesItsTarget) {
    SimComm comm(2);
    EXPECT_THROW(comm.killRank(-1), std::invalid_argument);
    EXPECT_THROW(comm.killRank(2), std::invalid_argument);
    comm.killRank(0);
    EXPECT_THROW(comm.killRank(0), std::invalid_argument); // already dead
    EXPECT_THROW(comm.killRank(1), std::logic_error); // no survivor left
    SimComm solo(1);
    EXPECT_THROW(solo.killRank(0), std::logic_error);
}

TEST(RankDeath, ShrinkRenumbersSurvivorsAndRevokesPendingOps) {
    SimComm comm(4);
    const auto s = comm.isend(0, 3, 8, MessageKind::PointToPoint, "FB");
    (void)s;
    comm.killRank(1);
    const auto map = comm.shrink();
    ASSERT_EQ(map.size(), 4u);
    EXPECT_EQ(map[0], 0);
    EXPECT_EQ(map[1], -1);
    EXPECT_EQ(map[2], 1);
    EXPECT_EQ(map[3], 2);
    EXPECT_EQ(comm.size(), 3);
    EXPECT_EQ(comm.aliveCount(), 3);
    EXPECT_FALSE(comm.anyDead());
    EXPECT_EQ(comm.pendingCount(), 0u); // old epoch's ops revoked
    // The shrunken communicator is fully operational.
    EXPECT_NO_THROW(comm.recordMessage(0, 2, 8, MessageKind::PointToPoint, "FB"));
    EXPECT_DOUBLE_EQ(comm.reduceRealSum({1.0, 2.0, 3.0}, "t"), 6.0);
}

// ----------------------------------------- MultiFab exchange under faults

double field(int i, int j, int k, int n) {
    return n + std::sin(0.7 * i + 1.3 * j + 2.1 * k);
}

std::vector<amr::Box> tiledBoxes(const amr::Box& domain, int size) {
    std::vector<amr::Box> out;
    amr::forEachCell(domain.coarsen(size), [&](int i, int j, int k) {
        const amr::IntVect lo = amr::IntVect{i, j, k} * size;
        out.emplace_back(lo, lo + amr::IntVect(size - 1));
    });
    return out;
}

void fillField(amr::MultiFab& mf) {
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.array(f);
        for (int n = 0; n < mf.nComp(); ++n)
            amr::forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, n) = field(i, j, k, n);
            });
    }
}

TEST(MultiFabFaults, GhostExchangeRecoversEveryInjectedFault) {
    const amr::Box domain(amr::IntVect::zero(), amr::IntVect(15));
    const amr::Geometry geom(domain, {0, 0, 0}, {1, 1, 1},
                             amr::Periodicity::all());
    amr::BoxArray ba(tiledBoxes(domain, 4));
    amr::DistributionMapping dm(ba, 4);

    SimComm clean(4), faulty(4);
    CommFaults faults(777);
    CommFaults::Rates r;
    r.drop = 0.15;
    r.duplicate = 0.1;
    r.delay = 0.1;
    r.corrupt = 0.15;
    faults.setRates(r);
    faulty.attachFaults(&faults);

    amr::MultiFab ref(ba, dm, 2, 2, &clean);
    amr::MultiFab mf(ba, dm, 2, 2, &faulty);
    fillField(ref);
    fillField(mf);
    ref.fillBoundary(geom);
    mf.fillBoundary(geom);

    // Half the messages were faulted, yet every ghost cell is bitwise
    // identical to the fault-free exchange.
    EXPECT_GT(faults.stats().fired(), 0);
    EXPECT_EQ(faulty.faultStats().crcFailures, faulty.faultStats().nacks);
    for (int f = 0; f < ref.numFabs(); ++f) {
        auto a = ref.const_array(f);
        auto b = mf.const_array(f);
        for (int n = 0; n < 2; ++n)
            amr::forEachCell(ref.grownBox(f), [&](int i, int j, int k) {
                ASSERT_EQ(a(i, j, k, n), b(i, j, k, n))
                    << "fab " << f << " (" << i << "," << j << "," << k << ")";
            });
    }
}

TEST(MultiFabFaults, AsyncExchangeVerifiesAtEndAndRecovers) {
    const amr::Box domain(amr::IntVect::zero(), amr::IntVect(15));
    const amr::Geometry geom(domain, {0, 0, 0}, {1, 1, 1},
                             amr::Periodicity::all());
    amr::BoxArray ba(tiledBoxes(domain, 8));
    amr::DistributionMapping dm(ba, 3);

    SimComm clean(3), faulty(3);
    CommFaults faults(4242);
    faults.armMessageFault(MessageFault::Corrupt, 0);
    faults.armMessageFault(MessageFault::Drop, 2);
    faulty.attachFaults(&faults);

    amr::MultiFab ref(ba, dm, 2, 3, &clean);
    amr::MultiFab mf(ba, dm, 2, 3, &faulty);
    fillField(ref);
    fillField(mf);
    ref.fillBoundary(geom);
    mf.fillBoundaryBegin(geom);
    mf.fillBoundaryEnd(); // post-hoc CRC verification happens here
    EXPECT_EQ(faulty.faultStats().corrupted, 1);
    EXPECT_GE(faulty.faultStats().crcFailures, 1);
    EXPECT_GE(faulty.faultStats().retransmits, 1);
    for (int f = 0; f < ref.numFabs(); ++f) {
        auto a = ref.const_array(f);
        auto b = mf.const_array(f);
        for (int n = 0; n < 2; ++n)
            amr::forEachCell(ref.grownBox(f), [&](int i, int j, int k) {
                ASSERT_EQ(a(i, j, k, n), b(i, j, k, n));
            });
    }
}

TEST(MultiFabFaults, VerificationOffKeepsTheMessageStreamByteIdentical) {
    // The acceptance gate for the seed path: with no injector and
    // comm.verify off, the hardened code must record exactly the stream the
    // unhardened implementation recorded — same order, same fields, crc 0.
    // Verification on (zero faults) records the same stream, crc-stamped,
    // with no extra traffic.
    const amr::Box domain(amr::IntVect::zero(), amr::IntVect(15));
    const amr::Geometry geom(domain, {0, 0, 0}, {1, 1, 1},
                             amr::Periodicity::all());
    amr::BoxArray ba(tiledBoxes(domain, 4));
    amr::DistributionMapping dm(ba, 4);

    auto exchange = [&](SimComm& comm) {
        amr::MultiFab mf(ba, dm, 2, 2, &comm);
        fillField(mf);
        mf.fillBoundary(geom);
        mf.fillBoundaryBegin(geom);
        mf.fillBoundaryEnd();
        return comm.log().messages();
    };

    SimComm off(4), on(4);
    on.setVerifyExchanges(true);
    const auto plain = exchange(off);
    const auto verified = exchange(on);

    ASSERT_GT(plain.size(), 0u);
    ASSERT_EQ(plain.size(), verified.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].src, verified[i].src);
        EXPECT_EQ(plain[i].dst, verified[i].dst);
        EXPECT_EQ(plain[i].bytes, verified[i].bytes);
        EXPECT_EQ(plain[i].kind, verified[i].kind);
        EXPECT_EQ(plain[i].tag, verified[i].tag);
        EXPECT_EQ(plain[i].crc, 0u); // seed stream untouched
        EXPECT_NE(verified[i].crc, 0u);
    }
    EXPECT_EQ(off.faultStats().verified, 0);
    EXPECT_GT(on.faultStats().verified, 0);
    EXPECT_EQ(on.faultStats().retransmits, 0);
}

} // namespace
} // namespace crocco::parallel
