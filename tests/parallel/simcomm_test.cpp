#include "parallel/SimComm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace crocco::parallel {
namespace {

TEST(SimComm, ReductionsReturnExactResults) {
    SimComm comm(4);
    EXPECT_DOUBLE_EQ(comm.reduceRealMin({3.0, 1.0, 2.0, 9.0}, "t"), 1.0);
    EXPECT_DOUBLE_EQ(comm.reduceRealMax({3.0, 1.0, 2.0, 9.0}, "t"), 9.0);
    EXPECT_DOUBLE_EQ(comm.reduceRealSum({1.0, 2.0, 3.0, 4.0}, "t"), 10.0);
}

TEST(SimComm, ReductionsRejectWrongSizedPerRankVector) {
    // A silently-wrong reduction (empty vector, or one value per box
    // instead of per rank) is a classic MPI bug; the guard must name the
    // operation, the tag, and both sizes.
    SimComm comm(4);
    EXPECT_THROW(comm.reduceRealMin({}, "dt"), std::invalid_argument);
    EXPECT_THROW(comm.reduceRealMax({1.0, 2.0}, "t"), std::invalid_argument);
    EXPECT_THROW(comm.reduceRealSum(std::vector<double>(5, 1.0), "t"),
                 std::invalid_argument);
    try {
        comm.reduceRealMin(std::vector<double>(3, 1.0), "compute_dt");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("reduceRealMin"), std::string::npos) << msg;
        EXPECT_NE(msg.find("compute_dt"), std::string::npos) << msg;
        EXPECT_NE(msg.find("3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("4"), std::string::npos) << msg;
    }
    // Failed reductions log no traffic.
    EXPECT_EQ(comm.log().count(), 0u);
    // A single-rank "communicator" still accepts its one entry.
    SimComm solo(1);
    EXPECT_DOUBLE_EQ(solo.reduceRealSum({2.5}, "t"), 2.5);
}

TEST(SimComm, ReductionLogsTreeTraffic) {
    SimComm comm(8);
    comm.reduceRealMin(std::vector<double>(8, 1.0), "dt");
    // A binomial reduction over P ranks moves P-1 payloads.
    EXPECT_EQ(comm.log().count(MessageKind::Reduction), 7u);
    EXPECT_EQ(comm.log().totalBytes(MessageKind::Reduction), 7 * 8);
}

TEST(SimComm, P2POnRankIsFree) {
    SimComm comm(2);
    comm.recordP2P(0, 0, 100, "local");
    EXPECT_EQ(comm.log().count(), 0u);
    comm.recordP2P(0, 1, 100, "remote");
    EXPECT_EQ(comm.log().count(MessageKind::PointToPoint), 1u);
}

TEST(CommLog, AggregatesByKindAndRank) {
    CommLog log;
    log.record({0, 1, 100, MessageKind::PointToPoint, "a"});
    log.record({1, 2, 50, MessageKind::ParallelCopy, "b"});
    log.record({2, 0, 25, MessageKind::ParallelCopy, "b"});
    EXPECT_EQ(log.count(), 3u);
    EXPECT_EQ(log.totalBytes(), 175);
    EXPECT_EQ(log.totalBytes(MessageKind::ParallelCopy), 75);
    const auto per = log.bytesPerRank(3);
    EXPECT_EQ(per[0], 125); // sent 100 + received 25
    EXPECT_EQ(per[1], 150);
    EXPECT_EQ(per[2], 75);
}

TEST(SimComm, NonblockingSendsCommitAtWaitallInPostingOrder) {
    // The async fillBoundary contract: isend records nothing until waitall,
    // and waitall commits in the order requests are passed — so the logged
    // message stream is byte-identical to the blocking recordMessage path.
    SimComm comm(4);
    std::vector<SimComm::Request> reqs;
    reqs.push_back(comm.isend(0, 1, 100, MessageKind::PointToPoint, "FB"));
    reqs.push_back(comm.isend(2, 3, 200, MessageKind::PointToPoint, "FB"));
    reqs.push_back(comm.irecv(0, 1, "FB"));
    reqs.push_back(comm.irecv(2, 3, "FB"));
    EXPECT_EQ(comm.log().count(), 0u); // nothing visible before completion
    EXPECT_EQ(comm.pendingCount(), 4u);
    comm.waitall(reqs);
    EXPECT_EQ(comm.pendingCount(), 0u);
    ASSERT_EQ(comm.log().count(), 2u);
    const auto& msgs = comm.log().messages();
    EXPECT_EQ(msgs[0].src, 0);
    EXPECT_EQ(msgs[0].dst, 1);
    EXPECT_EQ(msgs[0].bytes, 100);
    EXPECT_EQ(msgs[0].tag, "FB");
    EXPECT_EQ(msgs[1].src, 2);
    EXPECT_EQ(msgs[1].bytes, 200);
}

TEST(SimComm, NonblockingMatchesBlockingMessageStream) {
    SimComm blocking(3), async(3);
    blocking.recordMessage(0, 1, 64, MessageKind::PointToPoint, "FillBoundary");
    blocking.recordMessage(1, 2, 32, MessageKind::PointToPoint, "FillBoundary");
    std::vector<SimComm::Request> reqs;
    reqs.push_back(async.isend(0, 1, 64, MessageKind::PointToPoint, "FillBoundary"));
    reqs.push_back(async.isend(1, 2, 32, MessageKind::PointToPoint, "FillBoundary"));
    async.waitall(reqs);
    const auto& a = blocking.log().messages();
    const auto& b = async.log().messages();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].src, b[i].src);
        EXPECT_EQ(a[i].dst, b[i].dst);
        EXPECT_EQ(a[i].bytes, b[i].bytes);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].tag, b[i].tag);
    }
}

TEST(SimComm, WaitallRejectsUnknownAndCompletedRequests) {
    SimComm comm(2);
    const auto r = comm.isend(0, 1, 8, MessageKind::PointToPoint, "t");
    comm.waitall({r});
    EXPECT_THROW(comm.waitall({r}), std::logic_error);   // already completed
    EXPECT_THROW(comm.waitall({999}), std::logic_error); // never posted
}

TEST(SimComm, UnmatchedReceiveDiagnosesTheHang) {
    // A receive with no matching send would hang a real MPI_Waitall; the
    // simulation turns that into an immediate located failure.
    SimComm comm(2);
    const auto r = comm.irecv(0, 1, "FillBoundary");
    EXPECT_THROW(comm.waitall({r}), std::logic_error);
    // Matched across waitall calls is fine: send committed first.
    SimComm ok(2);
    const auto s = ok.isend(0, 1, 8, MessageKind::PointToPoint, "FB");
    ok.waitall({s});
    const auto r2 = ok.irecv(0, 1, "FB");
    EXPECT_NO_THROW(ok.waitall({r2}));
}

TEST(CommLog, DisableSuppressesRecording) {
    CommLog log;
    log.setEnabled(false);
    log.record({0, 1, 10, MessageKind::PointToPoint, "x"});
    EXPECT_EQ(log.count(), 0u);
    log.setEnabled(true);
    log.record({0, 1, 10, MessageKind::PointToPoint, "x"});
    EXPECT_EQ(log.count(), 1u);
}

} // namespace
} // namespace crocco::parallel
