#include "parallel/SimComm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace crocco::parallel {
namespace {

TEST(SimComm, ReductionsReturnExactResults) {
    SimComm comm(4);
    EXPECT_DOUBLE_EQ(comm.reduceRealMin({3.0, 1.0, 2.0, 9.0}, "t"), 1.0);
    EXPECT_DOUBLE_EQ(comm.reduceRealMax({3.0, 1.0, 2.0, 9.0}, "t"), 9.0);
    EXPECT_DOUBLE_EQ(comm.reduceRealSum({1.0, 2.0, 3.0, 4.0}, "t"), 10.0);
}

TEST(SimComm, ReductionsRejectWrongSizedPerRankVector) {
    // A silently-wrong reduction (empty vector, or one value per box
    // instead of per rank) is a classic MPI bug; the guard must name the
    // operation, the tag, and both sizes.
    SimComm comm(4);
    EXPECT_THROW(comm.reduceRealMin({}, "dt"), std::invalid_argument);
    EXPECT_THROW(comm.reduceRealMax({1.0, 2.0}, "t"), std::invalid_argument);
    EXPECT_THROW(comm.reduceRealSum(std::vector<double>(5, 1.0), "t"),
                 std::invalid_argument);
    try {
        comm.reduceRealMin(std::vector<double>(3, 1.0), "compute_dt");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("reduceRealMin"), std::string::npos) << msg;
        EXPECT_NE(msg.find("compute_dt"), std::string::npos) << msg;
        EXPECT_NE(msg.find("3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("4"), std::string::npos) << msg;
    }
    // Failed reductions log no traffic.
    EXPECT_EQ(comm.log().count(), 0u);
    // A single-rank "communicator" still accepts its one entry.
    SimComm solo(1);
    EXPECT_DOUBLE_EQ(solo.reduceRealSum({2.5}, "t"), 2.5);
}

TEST(SimComm, ReductionLogsTreeTraffic) {
    SimComm comm(8);
    comm.reduceRealMin(std::vector<double>(8, 1.0), "dt");
    // A binomial reduction over P ranks moves P-1 payloads.
    EXPECT_EQ(comm.log().count(MessageKind::Reduction), 7u);
    EXPECT_EQ(comm.log().totalBytes(MessageKind::Reduction), 7 * 8);
}

TEST(SimComm, P2POnRankIsFree) {
    SimComm comm(2);
    comm.recordP2P(0, 0, 100, "local");
    EXPECT_EQ(comm.log().count(), 0u);
    comm.recordP2P(0, 1, 100, "remote");
    EXPECT_EQ(comm.log().count(MessageKind::PointToPoint), 1u);
}

TEST(CommLog, AggregatesByKindAndRank) {
    CommLog log;
    log.record({0, 1, 100, MessageKind::PointToPoint, "a"});
    log.record({1, 2, 50, MessageKind::ParallelCopy, "b"});
    log.record({2, 0, 25, MessageKind::ParallelCopy, "b"});
    EXPECT_EQ(log.count(), 3u);
    EXPECT_EQ(log.totalBytes(), 175);
    EXPECT_EQ(log.totalBytes(MessageKind::ParallelCopy), 75);
    const auto per = log.bytesPerRank(3);
    EXPECT_EQ(per[0], 125); // sent 100 + received 25
    EXPECT_EQ(per[1], 150);
    EXPECT_EQ(per[2], 75);
}

TEST(CommLog, DisableSuppressesRecording) {
    CommLog log;
    log.setEnabled(false);
    log.record({0, 1, 10, MessageKind::PointToPoint, "x"});
    EXPECT_EQ(log.count(), 0u);
    log.setEnabled(true);
    log.record({0, 1, 10, MessageKind::PointToPoint, "x"});
    EXPECT_EQ(log.count(), 1u);
}

} // namespace
} // namespace crocco::parallel
