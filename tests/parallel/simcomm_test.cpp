#include "parallel/SimComm.hpp"

#include <gtest/gtest.h>

namespace crocco::parallel {
namespace {

TEST(SimComm, ReductionsReturnExactResults) {
    SimComm comm(4);
    EXPECT_DOUBLE_EQ(comm.reduceRealMin({3.0, 1.0, 2.0, 9.0}, "t"), 1.0);
    EXPECT_DOUBLE_EQ(comm.reduceRealMax({3.0, 1.0, 2.0, 9.0}, "t"), 9.0);
    EXPECT_DOUBLE_EQ(comm.reduceRealSum({1.0, 2.0, 3.0, 4.0}, "t"), 10.0);
}

TEST(SimComm, ReductionLogsTreeTraffic) {
    SimComm comm(8);
    comm.reduceRealMin(std::vector<double>(8, 1.0), "dt");
    // A binomial reduction over P ranks moves P-1 payloads.
    EXPECT_EQ(comm.log().count(MessageKind::Reduction), 7u);
    EXPECT_EQ(comm.log().totalBytes(MessageKind::Reduction), 7 * 8);
}

TEST(SimComm, P2POnRankIsFree) {
    SimComm comm(2);
    comm.recordP2P(0, 0, 100, "local");
    EXPECT_EQ(comm.log().count(), 0u);
    comm.recordP2P(0, 1, 100, "remote");
    EXPECT_EQ(comm.log().count(MessageKind::PointToPoint), 1u);
}

TEST(CommLog, AggregatesByKindAndRank) {
    CommLog log;
    log.record({0, 1, 100, MessageKind::PointToPoint, "a"});
    log.record({1, 2, 50, MessageKind::ParallelCopy, "b"});
    log.record({2, 0, 25, MessageKind::ParallelCopy, "b"});
    EXPECT_EQ(log.count(), 3u);
    EXPECT_EQ(log.totalBytes(), 175);
    EXPECT_EQ(log.totalBytes(MessageKind::ParallelCopy), 75);
    const auto per = log.bytesPerRank(3);
    EXPECT_EQ(per[0], 125); // sent 100 + received 25
    EXPECT_EQ(per[1], 150);
    EXPECT_EQ(per[2], 75);
}

TEST(CommLog, DisableSuppressesRecording) {
    CommLog log;
    log.setEnabled(false);
    log.record({0, 1, 10, MessageKind::PointToPoint, "x"});
    EXPECT_EQ(log.count(), 0u);
    log.setEnabled(true);
    log.record({0, 1, 10, MessageKind::PointToPoint, "x"});
    EXPECT_EQ(log.count(), 1u);
}

} // namespace
} // namespace crocco::parallel
