// Rank-pair aggregated exchange (comm.aggregate, docs/performance.md §6):
// every off-rank copy between one (src, dst) rank pair packs into a single
// staging buffer and crosses the wire as exactly one SimComm message. The
// field data must stay bitwise-identical to the unaggregated exchange in
// every mode — blocking, async Begin/End, CRC-verified, and under injected
// corruption — while the message log intentionally collapses to one entry
// per communicating pair. Also pinned here: the aggregation-plan cache
// (hit/build stats, DM-fingerprint validation, rank-shrink invalidation)
// and the CommLog per-step summary the comm.log_summary key prints.
#include "amr/CommCache.hpp"

#include "amr/MultiFab.hpp"
#include "gpu/ThreadPool.hpp"
#include "parallel/CommFaults.hpp"
#include "parallel/SimComm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace crocco::amr {
namespace {

double field(const IntVect& p, int comp) {
    return comp + std::sin(0.3 * p[0]) + 2.0 * std::cos(0.5 * p[1]) +
           0.1 * p[2] * p[2];
}

std::vector<Box> tiledBoxes(const Box& domain, int size) {
    std::vector<Box> out;
    forEachCell(domain.coarsen(size), [&](int i, int j, int k) {
        const IntVect lo = IntVect{i, j, k} * size;
        out.emplace_back(lo, lo + IntVect(size - 1));
    });
    return out;
}

void fillField(MultiFab& mf) {
    for (int f = 0; f < mf.numFabs(); ++f) {
        auto a = mf.array(f);
        for (int n = 0; n < mf.nComp(); ++n)
            forEachCell(mf.validBox(f), [&](int i, int j, int k) {
                a(i, j, k, n) = field({i, j, k}, n);
            });
    }
}

/// The singleton cache carries the aggregate flag and plans across tests;
/// scope every test body so no state leaks into the rest of the suite.
struct CacheGuard {
    explicit CacheGuard(bool aggregate) {
        auto& cache = CommCache::instance();
        cache.clear();
        cache.resetStats();
        cache.setAggregate(aggregate);
    }
    ~CacheGuard() {
        auto& cache = CommCache::instance();
        cache.setAggregate(false);
        cache.clear();
        cache.resetStats();
    }
};

void expectSameGhosts(const MultiFab& a, const MultiFab& b) {
    ASSERT_EQ(a.numFabs(), b.numFabs());
    for (int f = 0; f < a.numFabs(); ++f) {
        auto x = a.const_array(f);
        auto y = b.const_array(f);
        for (int n = 0; n < a.nComp(); ++n)
            forEachCell(a.grownBox(f), [&](int i, int j, int k) {
                ASSERT_EQ(x(i, j, k, n), y(i, j, k, n))
                    << "fab " << f << " comp " << n << " (" << i << "," << j
                    << "," << k << ")";
            });
    }
}

/// (src, dst) -> summed payload bytes of a tag's messages (fault traffic
/// excluded — suffixes never appear in a clean run anyway).
std::map<std::pair<int, int>, std::int64_t>
pairBytes(const parallel::CommLog& log, const std::string& tag) {
    std::map<std::pair<int, int>, std::int64_t> out;
    for (const auto& m : log.messages())
        if (m.tag == tag) out[{m.src, m.dst}] += m.bytes;
    return out;
}

// ----------------------------------------------------------- plan builder

TEST(AggregationPlan, GroupsOffRankCopiesPerPairInBuildOrder) {
    // Four fabs on three ranks: 0 -> r0, 1 -> r1, 2 -> r0, 3 -> r2.
    DistributionMapping dm(std::vector<int>{0, 1, 0, 2}, 3);
    const Box cell(IntVect::zero(), IntVect{1, 0, 0});
    CommPattern pat;
    pat.srcSize = pat.dstSize = 4;
    // Build order: (r1->r0), on-rank (r0->r0), (r1->r0) again, (r2->r1).
    // Copies 0 and 2 both write fab 0's `cell` region, so the dst regions
    // overlap and the batched unpack must not fan one task per slot.
    pat.copies.push_back({0, 1, cell, IntVect::zero(), cell.numPts()});
    pat.copies.push_back({0, 2, cell, IntVect::zero(), cell.numPts()});
    pat.copies.push_back({0, 1, cell, IntVect::zero(), cell.numPts()});
    pat.copies.push_back({1, 3, cell, IntVect::zero(), cell.numPts()});

    const AggregationPlan plan = buildAggregationPlan(pat, dm, dm);
    ASSERT_EQ(plan.pairs.size(), 2u); // (1,0) and (2,1); on-rank skipped
    EXPECT_EQ(plan.pairs[0].srcRank, 1);
    EXPECT_EQ(plan.pairs[0].dstRank, 0);
    ASSERT_EQ(plan.pairs[0].slots.size(), 2u);
    EXPECT_EQ(plan.pairs[0].slots[0].copyIndex, 0);
    EXPECT_EQ(plan.pairs[0].slots[0].offsetPts, 0);
    EXPECT_EQ(plan.pairs[0].slots[1].copyIndex, 2);
    EXPECT_EQ(plan.pairs[0].slots[1].offsetPts, cell.numPts());
    EXPECT_EQ(plan.pairs[0].totalPts, 2 * cell.numPts());
    EXPECT_EQ(plan.pairs[1].srcRank, 2);
    EXPECT_EQ(plan.pairs[1].dstRank, 1);
    ASSERT_EQ(plan.pairs[1].slots.size(), 1u);
    EXPECT_EQ(plan.pairs[1].slots[0].copyIndex, 3);
    EXPECT_EQ(plan.dmFingerprint, fingerprintMappings(dm, dm));
    // Identical dst cells written twice -> not disjoint; the batched unpack
    // must serialize those slots.
    EXPECT_FALSE(plan.disjointDst);
    // Deterministic: a rebuild is field-wise identical.
    EXPECT_EQ(plan, buildAggregationPlan(pat, dm, dm));
}

TEST(AggregationPlan, FingerprintSeparatesOwnerVectorsAndRankCounts) {
    DistributionMapping a(std::vector<int>{0, 1}, 2);
    DistributionMapping b(std::vector<int>{1, 0}, 2);
    DistributionMapping c(std::vector<int>{0, 1}, 3);
    EXPECT_NE(fingerprintMappings(a, a), fingerprintMappings(b, b));
    EXPECT_NE(fingerprintMappings(a, a), fingerprintMappings(a, b));
    EXPECT_NE(fingerprintMappings(a, a), fingerprintMappings(c, c));
    EXPECT_EQ(fingerprintMappings(a, b),
              fingerprintMappings(DistributionMapping(std::vector<int>{0, 1}, 2),
                                  DistributionMapping(std::vector<int>{1, 0}, 2)));
}

// ------------------------------------------------- blocking fillBoundary

TEST(AggregateExchange, FillBoundaryOneMessagePerPairBitwiseIdentical) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);

    for (int nthreads : {1, 8}) {
        gpu::setNumThreads(nthreads);
        SCOPED_TRACE("nthreads=" + std::to_string(nthreads));
        parallel::SimComm plainComm(3), aggComm(3);
        MultiFab plain(ba, dm, 2, 3, &plainComm);
        MultiFab agg(ba, dm, 2, 3, &aggComm);
        fillField(plain);
        fillField(agg);
        {
            CacheGuard guard(false);
            plain.fillBoundary(geom);
        }
        {
            CacheGuard guard(true);
            agg.fillBoundary(geom);
        }
        expectSameGhosts(plain, agg);

        const auto plainPairs = pairBytes(plainComm.log(), "FillBoundary");
        const auto aggPairs = pairBytes(aggComm.log(), "FillBoundary");
        ASSERT_FALSE(plainPairs.empty());
        // Same communicating pairs, same bytes per pair...
        EXPECT_EQ(plainPairs, aggPairs);
        // ...but exactly ONE message per pair, down from one per box copy.
        EXPECT_EQ(aggComm.log().count(), aggPairs.size());
        EXPECT_GT(plainComm.log().count(), aggComm.log().count());
        // Pairs leave the wire in sorted (src, dst) order.
        std::pair<int, int> prev{-1, -1};
        for (const auto& m : aggComm.log().messages()) {
            EXPECT_EQ(m.kind, parallel::MessageKind::PointToPoint);
            const std::pair<int, int> cur{m.src, m.dst};
            EXPECT_LT(prev, cur);
            prev = cur;
        }
    }
    gpu::setNumThreads(1);
}

TEST(AggregateExchange, ParallelCopyAggregatesAcrossLayouts) {
    const Box domain(IntVect::zero(), IntVect(15));
    BoxArray srcBa(tiledBoxes(domain, 8));
    BoxArray dstBa(tiledBoxes(domain, 4));
    DistributionMapping srcDm(srcBa, 3);
    DistributionMapping dstDm(dstBa, 3);

    parallel::SimComm plainComm(3), aggComm(3);
    MultiFab src1(srcBa, srcDm, 2, 0, &plainComm);
    MultiFab src2(srcBa, srcDm, 2, 0, &aggComm);
    MultiFab plain(dstBa, dstDm, 2, 1, &plainComm);
    MultiFab agg(dstBa, dstDm, 2, 1, &aggComm);
    fillField(src1);
    fillField(src2);
    plain.setVal(-1.0);
    agg.setVal(-1.0);
    {
        CacheGuard guard(false);
        plain.parallelCopy(src1, 0, 0, 2, 0, 0);
    }
    {
        CacheGuard guard(true);
        agg.parallelCopy(src2, 0, 0, 2, 0, 0);
    }
    // Valid regions (the copy's target scope) bitwise identical.
    for (int f = 0; f < plain.numFabs(); ++f) {
        auto x = plain.const_array(f);
        auto y = agg.const_array(f);
        for (int n = 0; n < 2; ++n)
            forEachCell(plain.validBox(f), [&](int i, int j, int k) {
                ASSERT_EQ(x(i, j, k, n), y(i, j, k, n));
            });
    }
    const auto plainPairs = pairBytes(plainComm.log(), "ParallelCopy");
    const auto aggPairs = pairBytes(aggComm.log(), "ParallelCopy");
    ASSERT_FALSE(plainPairs.empty());
    EXPECT_EQ(plainPairs, aggPairs);
    EXPECT_EQ(aggComm.log().count(), aggPairs.size());
    EXPECT_GT(plainComm.log().count(), aggComm.log().count());
    for (const auto& m : aggComm.log().messages())
        EXPECT_EQ(m.kind, parallel::MessageKind::ParallelCopy);
}

// ----------------------------------------------------- async Begin / End

TEST(AggregateExchange, AsyncAggregatedMatchesBlockingAggregated) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);

    CacheGuard guard(true);
    parallel::SimComm syncComm(3), asyncComm(3);
    MultiFab sync(ba, dm, 2, 3, &syncComm);
    MultiFab async(ba, dm, 2, 3, &asyncComm);
    fillField(sync);
    fillField(async);

    sync.fillBoundary(geom);
    async.fillBoundaryBegin(geom);
    EXPECT_TRUE(async.fillBoundaryInFlight());
    async.fillBoundaryEnd();
    EXPECT_FALSE(async.fillBoundaryInFlight());

    expectSameGhosts(sync, async);
    const auto& ms = syncComm.log().messages();
    const auto& ma = asyncComm.log().messages();
    ASSERT_EQ(ms.size(), ma.size());
    ASSERT_GT(ms.size(), 0u);
    for (std::size_t i = 0; i < ms.size(); ++i) {
        EXPECT_EQ(ms[i].src, ma[i].src);
        EXPECT_EQ(ms[i].dst, ma[i].dst);
        EXPECT_EQ(ms[i].bytes, ma[i].bytes);
        EXPECT_EQ(ms[i].kind, ma[i].kind);
        EXPECT_EQ(ms[i].tag, ma[i].tag);
    }
}

// ------------------------------------------------------ verified exchange

TEST(AggregateExchange, VerifiedAggregateStampsOneCrcPerPairMessage) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);

    CacheGuard guard(true);
    parallel::SimComm plainComm(3), verComm(3);
    verComm.setVerifyExchanges(true);
    MultiFab plain(ba, dm, 2, 3, &plainComm);
    MultiFab ver(ba, dm, 2, 3, &verComm);
    fillField(plain);
    fillField(ver);
    plain.fillBoundary(geom);
    ver.fillBoundary(geom);

    expectSameGhosts(plain, ver);
    ASSERT_EQ(verComm.log().count(), plainComm.log().count());
    EXPECT_GT(verComm.faultStats().verified, 0);
    for (std::size_t i = 0; i < verComm.log().count(); ++i) {
        const auto& v = verComm.log().messages()[i];
        const auto& p = plainComm.log().messages()[i];
        EXPECT_EQ(v.src, p.src);
        EXPECT_EQ(v.dst, p.dst);
        EXPECT_EQ(v.bytes, p.bytes);
        EXPECT_NE(v.crc, 0u) << "pair message " << i << " lost its CRC stamp";
    }
}

TEST(AggregateExchange, CorruptedSlotRetransmitsOnePairBufferIntact) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);

    CacheGuard guard(true);
    parallel::SimComm refComm(3), comm(3);
    parallel::CommFaults faults(7); // seeded; zero rates, armed fault only
    faults.armMessageFault(parallel::MessageFault::Corrupt, 2);
    comm.attachFaults(&faults);
    EXPECT_TRUE(comm.exchangeVerification());

    MultiFab ref(ba, dm, 2, 3, &refComm);
    MultiFab mf(ba, dm, 2, 3, &comm);
    fillField(ref);
    fillField(mf);
    ref.fillBoundary(geom);
    mf.fillBoundary(geom);

    // Corrupting one slot of one packed message costs exactly one NACK and
    // one whole-buffer retransmit — and the ghosts still land intact.
    expectSameGhosts(ref, mf);
    const auto& fs = comm.faultStats();
    EXPECT_EQ(fs.corrupted, 1);
    EXPECT_EQ(fs.crcFailures, 1);
    EXPECT_EQ(fs.nacks, 1);
    EXPECT_EQ(fs.retransmits, 1);
    const auto s = comm.log().summarize();
    EXPECT_EQ(s.retransmits, 1u);
    EXPECT_EQ(s.nacks, 1u);
    // Fault traffic aside, the pair-message stream is unchanged.
    EXPECT_EQ(pairBytes(comm.log(), "FillBoundary"),
              pairBytes(refComm.log(), "FillBoundary"));
}

// ------------------------------------------------------- CommLog summary

TEST(CommLogSummary, CountsKindsBytesAndFaultTraffic) {
    parallel::CommLog log;
    log.record({0, 1, 100, parallel::MessageKind::PointToPoint, "FB", 7});
    log.record({1, 2, 50, parallel::MessageKind::ParallelCopy, "PC", 0});
    log.record({0, 1, 100, parallel::MessageKind::PointToPoint, "FB/rtx1", 7});
    log.record({1, 0, 8, parallel::MessageKind::PointToPoint, "FB/nack", 7});
    log.record({0, 1, 100, parallel::MessageKind::PointToPoint, "FB/dup", 7});
    log.record({0, 2, 30, parallel::MessageKind::Reduction, "ComputeDt", 0});

    const auto s = log.summarize();
    EXPECT_EQ(s.messages, 6u);
    EXPECT_EQ(s.bytes, 388);
    EXPECT_EQ(s.p2p, 4u);
    EXPECT_EQ(s.parallelCopy, 1u);
    EXPECT_EQ(s.reductions, 1u);
    EXPECT_EQ(s.retransmits, 1u);
    EXPECT_EQ(s.nacks, 1u);
    EXPECT_EQ(s.duplicates, 1u);

    // fromIndex slices a step's traffic out of the cumulative log.
    const auto tail = log.summarize(5);
    EXPECT_EQ(tail.messages, 1u);
    EXPECT_EQ(tail.reductions, 1u);
    EXPECT_EQ(tail.bytes, 30);

    const std::string line = parallel::CommLog::formatSummary(s);
    EXPECT_NE(line.find("msgs=6"), std::string::npos) << line;
    EXPECT_NE(line.find("bytes=388"), std::string::npos) << line;
    EXPECT_NE(line.find("p2p=4"), std::string::npos) << line;
    EXPECT_NE(line.find("pc=1"), std::string::npos) << line;
    EXPECT_NE(line.find("red=1"), std::string::npos) << line;
    EXPECT_NE(line.find("rtx=1"), std::string::npos) << line;
    EXPECT_NE(line.find("nack=1"), std::string::npos) << line;
    EXPECT_NE(line.find("dup=1"), std::string::npos) << line;
}

// ----------------------------------------------------- plan cache + LRU

TEST(AggregationPlanCache, HitsBuildsAndExplicitInvalidation) {
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);

    CacheGuard guard(true);
    auto& cache = CommCache::instance();
    parallel::SimComm comm(3);
    MultiFab mf(ba, dm, 2, 3, &comm);
    fillField(mf);

    mf.fillBoundary(geom);
    EXPECT_EQ(cache.planCount(), 1u);
    EXPECT_EQ(cache.stats().planBuilds, 1);
    EXPECT_EQ(cache.stats().planHits, 0);

    mf.fillBoundary(geom);
    EXPECT_EQ(cache.planCount(), 1u);
    EXPECT_EQ(cache.stats().planBuilds, 1);
    EXPECT_EQ(cache.stats().planHits, 1);

    // Dropping the pattern (regrid replaces a level) drops its plan too.
    cache.invalidate(ba.id());
    EXPECT_EQ(cache.planCount(), 0u);
}

TEST(AggregationPlanCache, CommShrinkDropsPlans) {
    // Satellite regression: after PR6 rank-death renumbering a cached plan
    // holds stale rank ids; noteCommSize with a shrunk size must drop every
    // plan along with the patterns (the fingerprint alone could alias).
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dm(ba, 3);

    CacheGuard guard(true);
    auto& cache = CommCache::instance();
    parallel::SimComm comm(3);
    MultiFab mf(ba, dm, 2, 3, &comm);
    fillField(mf);
    mf.fillBoundary(geom);
    ASSERT_EQ(cache.planCount(), 1u);

    cache.noteCommSize(2); // the communicator shrank under us
    EXPECT_EQ(cache.planCount(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(AggregationPlanCache, DmFingerprintMismatchForcesRebuild) {
    // Two MultiFabs share a BoxArray (same cache key) but own it under
    // different DistributionMappings — the cached plan must never replay
    // the other mapping's rank ids.
    const Box domain(IntVect::zero(), IntVect(15));
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1}, Periodicity::all());
    BoxArray ba(tiledBoxes(domain, 8));
    DistributionMapping dmA(ba, 3);
    std::vector<int> owners(static_cast<std::size_t>(ba.size()));
    for (int i = 0; i < ba.size(); ++i)
        owners[static_cast<std::size_t>(i)] = (dmA[i] + 1) % 3; // rotated
    DistributionMapping dmB(owners, 3);

    CacheGuard guard(true);
    auto& cache = CommCache::instance();
    parallel::SimComm commA(3), commB(3);
    MultiFab a(ba, dmA, 2, 3, &commA);
    MultiFab b(ba, dmB, 2, 3, &commB);
    fillField(a);
    fillField(b);

    a.fillBoundary(geom);
    const auto builds = cache.stats().planBuilds;
    b.fillBoundary(geom); // same key, different owners -> rebuild, no hit
    EXPECT_EQ(cache.stats().planBuilds, builds + 1);
    EXPECT_EQ(cache.planCount(), 1u);

    // And the rebuilt plan carries B's ranks: every message src/dst is a
    // rank that actually owns a fab under dmB.
    std::set<int> ranksB;
    for (int i = 0; i < ba.size(); ++i) ranksB.insert(dmB[i]);
    for (const auto& m : commB.log().messages()) {
        EXPECT_TRUE(ranksB.count(m.src)) << m.src;
        EXPECT_TRUE(ranksB.count(m.dst)) << m.dst;
    }
}

} // namespace
} // namespace crocco::amr
