#include "Outline.hpp"

#include <cctype>
#include <set>

namespace crocco::analyze {

namespace {

bool isPunct(const Token& t, const char* s) {
    return t.kind == TokKind::Punct && t.text == s;
}
bool isIdent(const Token& t) { return t.kind == TokKind::Identifier; }

const std::set<std::string> kControlKeywords = {
    "if",     "for",    "while",  "switch",   "catch",  "return",
    "sizeof", "alignof", "decltype", "new",   "delete", "throw",
    "static_assert", "alignas", "defined",
};

/// Function-trailer tokens allowed between ')' and '{'.
const std::set<std::string> kTrailerIdents = {
    "const", "noexcept", "override", "final", "mutable", "volatile", "try",
};

/// Walks backwards over one identifier chain `A::B::name` ending at token
/// index `end` (inclusive). Returns the start index, or end+1 if token
/// `end` is not an identifier.
std::size_t chainStart(const std::vector<Token>& toks, std::size_t end) {
    if (!isIdent(toks[end])) return end + 1;
    std::size_t s = end;
    while (s >= 2 && isPunct(toks[s - 1], "::") && isIdent(toks[s - 2]))
        s -= 2;
    // allow a leading '~' (destructor)
    if (s >= 1 && isPunct(toks[s - 1], "~")) --s;
    return s;
}

/// Matches backwards: toks[close] is ')' / '}' ; returns index of the
/// opening bracket, or npos on imbalance.
std::size_t matchBackward(const std::vector<Token>& toks, std::size_t close) {
    const std::string& c = toks[close].text;
    const char* open = c == ")" ? "(" : c == "}" ? "{" : c == "]" ? "[" : "";
    int depth = 0;
    for (std::size_t j = close + 1; j-- > 0;) {
        if (toks[j].kind != TokKind::Punct) continue;
        if (toks[j].text == c) ++depth;
        else if (toks[j].text == open) {
            if (--depth == 0) return j;
        }
    }
    return static_cast<std::size_t>(-1);
}

/// Pre-'{' analysis: is the '{' at `bi` a function body? If so fill `fn`.
bool classifyBrace(const std::vector<Token>& toks, std::size_t bi,
                   FunctionDef& fn) {
    if (bi == 0) return false;
    std::size_t j = bi - 1;
    // Skip trailer identifiers (const/noexcept/override/... and `noexcept`'s
    // or `__attribute__`'s parenthesized forms are rare enough to punt on).
    while (j > 0 && isIdent(toks[j]) && kTrailerIdents.count(toks[j].text))
        --j;
    // Constructor initializer list: `) : member(expr), member{expr} {`.
    // Walk back over balanced groups / identifiers / commas; if we hit a ':'
    // at this level (not '::'), resume from the ')' before it.
    {
        std::size_t k = j;
        bool sawGroup = false;
        while (k > 0) {
            const Token& t = toks[k];
            if (isPunct(t, ")") || isPunct(t, "}")) {
                std::size_t open = matchBackward(toks, k);
                if (open == static_cast<std::size_t>(-1) || open == 0)
                    return false;
                k = open - 1;
                sawGroup = true;
                continue;
            }
            if (isIdent(t) || isPunct(t, ",") || isPunct(t, "::") ||
                t.kind == TokKind::Number || isPunct(t, "<") ||
                isPunct(t, ">")) {
                --k;
                continue;
            }
            if (isPunct(t, ":") && sawGroup && k > 0 && isPunct(toks[k - 1], ")")) {
                j = k - 1; // the real parameter-list ')'
            }
            break;
        }
    }
    if (!isPunct(toks[j], ")")) return false;
    const std::size_t lparen = matchBackward(toks, j);
    if (lparen == static_cast<std::size_t>(-1) || lparen == 0) return false;
    const std::size_t nameEnd = lparen - 1;
    if (!isIdent(toks[nameEnd])) return false;
    if (kControlKeywords.count(toks[nameEnd].text)) return false;
    const std::size_t nameBegin = chainStart(toks, nameEnd);
    if (nameBegin > nameEnd) return false;
    // A lambda introducer `](...){` never reaches here (token before '('
    // must be an identifier). Reject `operator()` style for simplicity.
    fn.name = toks[nameEnd].text;
    fn.qualified = spanText(toks, nameBegin, nameEnd + 1);
    fn.line = toks[nameEnd].line;
    fn.bodyBegin = static_cast<int>(bi);
    return true;
}

} // namespace

std::size_t matchForward(const std::vector<Token>& toks, std::size_t open) {
    const std::string& o = toks[open].text;
    const char* close = o == "(" ? ")" : o == "{" ? "}" : o == "[" ? "]" : "";
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::Punct) continue;
        if (toks[j].text == o) ++depth;
        else if (toks[j].text == close) {
            if (--depth == 0) return j;
        }
    }
    return toks.size();
}

std::string spanText(const std::vector<Token>& toks, std::size_t begin,
                     std::size_t end) {
    std::string s;
    for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
        const Token& t = toks[j];
        if (!s.empty() && (isIdent(t) || t.kind == TokKind::Number) &&
            (std::isalnum(static_cast<unsigned char>(s.back())) ||
             s.back() == '_'))
            s += ' ';
        if (t.kind == TokKind::String) {
            s += '"';
            s += t.text;
            s += '"';
        } else {
            s += t.text;
        }
    }
    return s;
}

Outline buildOutline(const LexedFile& lexed) {
    Outline out;

    // --- includes, with CROCCO_CHECK guard tracking --------------------
    struct CondFrame {
        bool guards = false;   ///< current branch is CROCCO_CHECK-only
        bool checkCond = false; ///< the condition mentions CROCCO_CHECK
    };
    std::vector<CondFrame> cond;
    for (const PpDirective& d : lexed.directives) {
        const std::string& t = d.text;
        auto starts = [&](const char* p) {
            return t.rfind(p, 0) == 0;
        };
        if (starts("ifdef") || starts("ifndef") || starts("if")) {
            CondFrame f;
            if (t.find("CROCCO_CHECK") != std::string::npos) {
                f.checkCond = true;
                f.guards = !starts("ifndef") && t.find('!') == std::string::npos;
            }
            cond.push_back(f);
        } else if (starts("elif")) {
            if (!cond.empty()) {
                cond.back().checkCond =
                    t.find("CROCCO_CHECK") != std::string::npos;
                cond.back().guards = cond.back().checkCond;
            }
        } else if (starts("else")) {
            if (!cond.empty() && cond.back().checkCond)
                cond.back().guards = !cond.back().guards;
        } else if (starts("endif")) {
            if (!cond.empty()) cond.pop_back();
        } else if (starts("include")) {
            IncludeDirective inc;
            inc.line = d.line;
            std::size_t q1 = t.find('"');
            std::size_t a1 = t.find('<');
            if (q1 != std::string::npos) {
                std::size_t q2 = t.find('"', q1 + 1);
                if (q2 != std::string::npos)
                    inc.header = t.substr(q1 + 1, q2 - q1 - 1);
            } else if (a1 != std::string::npos) {
                std::size_t a2 = t.find('>', a1 + 1);
                inc.angled = true;
                if (a2 != std::string::npos)
                    inc.header = t.substr(a1 + 1, a2 - a1 - 1);
            }
            for (const CondFrame& f : cond)
                if (f.guards) inc.checkGuarded = true;
            if (!inc.header.empty()) out.includes.push_back(std::move(inc));
        }
    }

    // --- function bodies ----------------------------------------------
    const std::vector<Token>& toks = lexed.tokens;
    std::vector<std::pair<std::size_t, std::size_t>> bodies; // avoid nesting
    for (std::size_t ti = 0; ti < toks.size(); ++ti) {
        if (!isPunct(toks[ti], "{")) continue;
        bool insideKnown = false;
        for (const auto& b : bodies)
            if (ti > b.first && ti < b.second) insideKnown = true;
        if (insideKnown) continue; // lambdas/blocks live in their function
        FunctionDef fn;
        if (!classifyBrace(toks, ti, fn)) continue;
        const std::size_t close = matchForward(toks, ti);
        fn.bodyEnd = static_cast<int>(close);
        bodies.emplace_back(ti, close);
        out.functions.push_back(std::move(fn));
    }

    // --- call expressions inside function bodies ----------------------
    for (std::size_t fi = 0; fi < out.functions.size(); ++fi) {
        const FunctionDef& fn = out.functions[fi];
        for (std::size_t ti = static_cast<std::size_t>(fn.bodyBegin) + 1;
             ti + 1 < static_cast<std::size_t>(fn.bodyEnd); ++ti) {
            if (!isIdent(toks[ti]) || !isPunct(toks[ti + 1], "("))
                continue;
            if (kControlKeywords.count(toks[ti].text)) continue;
            CallExpr call;
            call.name = toks[ti].text;
            call.line = toks[ti].line;
            call.nameTok = static_cast<int>(ti);
            call.lparen = static_cast<int>(ti + 1);
            const std::size_t rp = matchForward(toks, ti + 1);
            call.rparen = static_cast<int>(rp);
            call.func = static_cast<int>(fi);
            // Access chain: walk back over `.` / `->` / `::` segments.
            std::size_t cs = chainStart(toks, ti);
            while (cs >= 2 &&
                   (isPunct(toks[cs - 1], ".") || isPunct(toks[cs - 1], "->") ||
                    isPunct(toks[cs - 1], "::")) &&
                   isIdent(toks[cs - 2]))
                cs = chainStart(toks, cs - 2);
            call.chain = spanText(toks, cs, ti + 1);
            // Argument spans split at top-level commas.
            std::size_t argBegin = ti + 2;
            int depth = 0;
            for (std::size_t j = ti + 2; j < rp; ++j) {
                const Token& t = toks[j];
                if (t.kind == TokKind::Punct) {
                    if (t.text == "(" || t.text == "[" || t.text == "{")
                        ++depth;
                    else if (t.text == ")" || t.text == "]" || t.text == "}")
                        --depth;
                    else if (t.text == "," && depth == 0) {
                        call.argSpans.emplace_back(argBegin, j);
                        argBegin = j + 1;
                    }
                }
            }
            if (rp > argBegin || !call.argSpans.empty()) // zero-arg: no spans
                call.argSpans.emplace_back(argBegin, rp);
            out.calls.push_back(std::move(call));
        }
    }
    return out;
}

} // namespace crocco::analyze
