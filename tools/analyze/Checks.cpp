#include "Checks.hpp"

#include <algorithm>
#include <sstream>

namespace crocco::analyze {

namespace {

/// Split "R1, R6" -> {"R1","R6"}; empty/garbage entries dropped.
std::set<std::string> splitRules(const std::string& list) {
    std::set<std::string> out;
    std::string cur;
    for (char c : list + ",") {
        if (c == ',' || c == ' ' || c == '\t') {
            if (!cur.empty()) out.insert(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return out;
}

} // namespace

Suppressions parseSuppressions(const LexedFile& lexed) {
    Suppressions sup;
    for (const Comment& c : lexed.comments) {
        const std::string tag = "crocco-analyze:allow";
        std::size_t pos = c.text.find(tag);
        while (pos != std::string::npos) {
            std::size_t p = pos + tag.size();
            bool fileWide = false;
            if (c.text.compare(p, 5, "-file") == 0) {
                fileWide = true;
                p += 5;
            }
            if (p < c.text.size() && c.text[p] == '(') {
                std::size_t close = c.text.find(')', p);
                if (close != std::string::npos) {
                    std::set<std::string> rules =
                        splitRules(c.text.substr(p + 1, close - p - 1));
                    // A reason after the rule list: ": why this is fine".
                    std::size_t rest = c.text.find_first_not_of(" \t", close + 1);
                    const bool hasReason =
                        rest != std::string::npos && c.text[rest] == ':' &&
                        c.text.find_first_not_of(" \t", rest + 1) !=
                            std::string::npos;
                    if (fileWide && !hasReason) {
                        std::ostringstream os;
                        os << lexed.path << ":" << c.line
                           << ": allow-file without a reason (file-wide "
                              "waivers must say why)";
                        sup.malformed.push_back(os.str());
                    } else if (fileWide) {
                        sup.fileRules.insert(rules.begin(), rules.end());
                    } else {
                        sup.lineRules[c.line].insert(rules.begin(),
                                                     rules.end());
                    }
                }
            }
            pos = c.text.find(tag, pos + tag.size());
        }
    }
    return sup;
}

const std::vector<RuleInfo>& ruleCatalog() {
    static const std::vector<RuleInfo> catalog = {
        {"R1", "no .data() raw-pointer escapes outside reviewed sites",
         "docs/correctness.md#r1"},
        {"R2", "no threading primitives outside the gpu ThreadPool",
         "docs/correctness.md#r2"},
        {"R3", "no defaulted ghost-count parameters", "docs/correctness.md#r3"},
        {"R4", "no serial forEachCell in flux/transport kernel files",
         "docs/correctness.md#r4"},
        {"R5", "async exchange Begin/End count parity per file",
         "docs/correctness.md#r5"},
        {"R6", "no raw isend/irecv outside the verified exchange",
         "docs/correctness.md#r6"},
        {"R7", "RK3 stage triple only inside core::rk3StageUpdate",
         "docs/correctness.md#r7"},
        {"A1", "kernel dataflow: no cross-thread write/read hazards in "
               "gpu launches",
         "docs/correctness.md#a1"},
        {"A2", "exchange protocol: Begin/End paired per function",
         "docs/correctness.md#a2"},
        {"A3", "every ParmParse deck key documented, every documented key "
               "live",
         "docs/correctness.md#a3"},
        {"A4", "module layering DAG + guarded check/ includes",
         "docs/correctness.md#a4"},
        {"A5", "no raw per-pair isend/irecv loops outside the aggregation "
               "planner",
         "docs/correctness.md#a5"},
        {"A6", "checkpoint/mirror traffic consults the FabGuard stamp/verify "
               "API in the same function",
         "docs/correctness.md#a6"},
    };
    return catalog;
}

std::vector<Finding> runChecks(const Project& project,
                               const CheckOptions& options) {
    std::vector<Finding> findings;
    auto want = [&](const char* id) {
        return options.rules.empty() || options.rules.count(id) != 0;
    };
    if (want("R1")) checkR1(project, findings);
    if (want("R2")) checkR2(project, findings);
    if (want("R3")) checkR3(project, findings);
    if (want("R4")) checkR4(project, findings);
    if (want("R5")) checkR5(project, findings);
    if (want("R6")) checkR6(project, findings);
    if (want("R7")) checkR7(project, findings);
    if (want("A1")) checkA1(project, findings);
    if (want("A2")) checkA2(project, findings);
    if (want("A3")) checkA3(project, findings);
    if (want("A4")) checkA4(project, findings);
    if (want("A5")) checkA5(project, findings);
    if (want("A6")) checkA6(project, findings);

    // Resolve inline suppressions (only meaningful for findings located in
    // a scanned C++ source; doc-located findings pass through).
    for (Finding& f : findings) {
        for (const SourceFile& sf : project.files) {
            if (sf.lexed.path != f.file) continue;
            f.suppressed = sf.suppressions.covers(f.rule, f.line);
            break;
        }
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

} // namespace crocco::analyze
