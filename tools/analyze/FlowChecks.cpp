// The four whole-program passes (A1–A4). These are the checks the grep lint
// could never express: they need function bodies, call-argument structure,
// the include graph, and cross-file state.

#include "Checks.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace crocco::analyze {

namespace {

bool startsWith(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}
bool endsWith(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
bool inSrc(const std::string& path) { return startsWith(path, "src/"); }

std::string lowered(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

void add(std::vector<Finding>& out, const char* rule, const std::string& file,
         int line, const std::string& message) {
    out.push_back({rule, file, line, message, false});
}

bool isPunct(const Token& t, const char* s) {
    return t.kind == TokKind::Punct && t.text == s;
}
bool isIdent(const Token& t) { return t.kind == TokKind::Identifier; }
bool isIdent(const Token& t, const char* s) {
    return t.kind == TokKind::Identifier && t.text == s;
}

// ====================================================================
// A1 — kernel dataflow
// ====================================================================

/// A parsed lambda: parameter names + body token span (exclusive of braces).
struct Lambda {
    std::vector<std::string> params;
    std::size_t bodyBegin = 0; ///< token index of '{'
    std::size_t bodyEnd = 0;   ///< token index of matching '}'
    bool valid = false;
};

/// Parse a lambda whose '[' introducer is at `lb`.
Lambda parseLambda(const std::vector<Token>& toks, std::size_t lb) {
    Lambda lam;
    std::size_t rb = matchForward(toks, lb); // ']'
    if (rb >= toks.size()) return lam;
    std::size_t p = rb + 1;
    if (p < toks.size() && isPunct(toks[p], "(")) {
        std::size_t rp = matchForward(toks, p);
        if (rp >= toks.size()) return lam;
        // Parameter names: the last identifier of each top-level comma group.
        std::size_t last = 0;
        bool seen = false;
        int depth = 0;
        for (std::size_t j = p + 1; j <= rp; ++j) {
            const Token& t = toks[j];
            if (t.kind == TokKind::Punct) {
                if (t.text == "(" || t.text == "<") ++depth;
                else if (t.text == ")" || t.text == ">") --depth;
                if ((t.text == "," && depth == 0) || j == rp) {
                    if (seen) lam.params.push_back(toks[last].text);
                    seen = false;
                    continue;
                }
            }
            if (isIdent(t)) {
                last = j;
                seen = true;
            }
        }
        p = rp + 1;
    }
    while (p < toks.size() && isIdent(toks[p])) ++p; // mutable / noexcept
    if (p >= toks.size() || !isPunct(toks[p], "{")) return lam;
    lam.bodyBegin = p;
    lam.bodyEnd = matchForward(toks, p);
    lam.valid = lam.bodyEnd < toks.size();
    return lam;
}

/// Find the kernel lambda inside a launch call's argument range.
Lambda kernelLambda(const std::vector<Token>& toks, const CallExpr& call) {
    for (std::size_t j = static_cast<std::size_t>(call.lparen) + 1;
         j < static_cast<std::size_t>(call.rparen); ++j) {
        if (isPunct(toks[j], "[") &&
            (isPunct(toks[j - 1], "(") || isPunct(toks[j - 1], ","))) {
            Lambda lam = parseLambda(toks, j);
            if (lam.valid) return lam;
        }
    }
    return {};
}

const std::vector<std::string> kMutatingMethods = {
    "push_back", "emplace_back", "pop_back", "insert", "emplace",
    "erase",     "clear",        "resize",   "assign",
};

/// Scan a token span for mutation of reachable (captured) state:
/// member increment/decrement, member compound assignment, and mutating
/// container methods. Plain `++local` on a body-local scalar is NOT
/// matched — only member accesses, which a kernel-local variable has no
/// business receiving.
bool findMutation(const std::vector<Token>& toks, std::size_t begin,
                  std::size_t end, int& line, std::string& what) {
    for (std::size_t q = begin; q < end; ++q) {
        const Token& t = toks[q];
        if (t.kind != TokKind::Punct) continue;
        const bool incdec = t.text == "++" || t.text == "--";
        const bool compound = t.text == "+=" || t.text == "-=" ||
                              t.text == "*=" || t.text == "/=" ||
                              t.text == "|=" || t.text == "&=";
        // prefix: ++ ident (. ident)+
        if (incdec && q + 3 < end && isIdent(toks[q + 1]) &&
            (isPunct(toks[q + 2], ".") || isPunct(toks[q + 2], "->")) &&
            isIdent(toks[q + 3])) {
            line = t.line;
            what = t.text + toks[q + 1].text + toks[q + 2].text + toks[q + 3].text;
            return true;
        }
        // postfix / compound: ident . ident ++|+=
        if ((incdec || compound) && q >= 3 && isIdent(toks[q - 1]) &&
            (isPunct(toks[q - 2], ".") || isPunct(toks[q - 2], "->")) &&
            isIdent(toks[q - 3])) {
            line = t.line;
            what = toks[q - 3].text + toks[q - 2].text + toks[q - 1].text + t.text;
            return true;
        }
        // mutating container method: . push_back (
        if ((t.text == "." || t.text == "->") && q + 2 < end &&
            isIdent(toks[q + 1]) && isPunct(toks[q + 2], "(")) {
            for (const std::string& m : kMutatingMethods)
                if (toks[q + 1].text == m) {
                    line = toks[q + 1].line;
                    what = toks[q + 1].text + "()";
                    return true;
                }
        }
    }
    return false;
}

/// How an argument relates to the kernel's cell parameters.
enum class ArgKind { Base, Shifted, Other };

ArgKind classifyArg(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end, const std::vector<std::string>& params) {
    auto isParam = [&](const Token& t) {
        return isIdent(t) &&
               std::find(params.begin(), params.end(), t.text) != params.end();
    };
    if (end - begin == 1 && isParam(toks[begin])) return ArgKind::Base;
    bool hasParam = false, hasShift = false;
    for (std::size_t j = begin; j < end; ++j) {
        if (isParam(toks[j])) {
            hasParam = true;
            if (j > begin && (isPunct(toks[j - 1], "+") || isPunct(toks[j - 1], "-")))
                hasShift = true;
            if (j + 1 < end && (isPunct(toks[j + 1], "+") || isPunct(toks[j + 1], "-")))
                hasShift = true;
        }
    }
    if (hasParam && hasShift) return ArgKind::Shifted;
    if (hasParam) return ArgKind::Base; // e.g. (i, j, k, comp)
    return ArgKind::Other;
}

bool isWriteAfter(const std::vector<Token>& toks, std::size_t rp) {
    if (rp + 1 >= toks.size()) return false;
    const Token& t = toks[rp + 1];
    return t.kind == TokKind::Punct &&
           (t.text == "=" || t.text == "+=" || t.text == "-=" ||
            t.text == "*=" || t.text == "/=");
}

/// Per-view access summary inside one cell-kernel body.
struct ViewUse {
    int writeBaseLine = 0, writeShiftLine = 0;
    int readBaseLine = 0, readShiftLine = 0;
};

void scanCellKernel(const SourceFile& sf, const Lambda& lam,
                    const std::string& launch, int launchLine,
                    const std::map<std::string, std::pair<int, std::string>>& impureLocals,
                    std::vector<Finding>& out) {
    const auto& toks = sf.lexed.tokens;

    int mline = 0;
    std::string what;
    if (findMutation(toks, lam.bodyBegin + 1, lam.bodyEnd, mline, what))
        add(out, "A1", sf.lexed.path, mline,
            "cell kernel in " + launch + " mutates captured state (" + what +
                "): every thread races on it — reduce through gpu::ReduceMin/"
                "ReduceMax or move the side effect out of the launch");

    std::map<std::string, ViewUse> views;
    for (std::size_t ti = lam.bodyBegin + 1; ti + 1 < lam.bodyEnd; ++ti) {
        if (!isIdent(toks[ti]) || !isPunct(toks[ti + 1], "(")) continue;
        const std::size_t rp = matchForward(toks, ti + 1);
        if (rp >= lam.bodyEnd) continue;

        auto it = impureLocals.find(toks[ti].text);
        if (it != impureLocals.end())
            add(out, "A1", sf.lexed.path, toks[ti].line,
                "cell kernel in " + launch + " calls local lambda '" +
                    toks[ti].text + "' which mutates captured state (" +
                    it->second.second + " at line " +
                    std::to_string(it->second.first) +
                    "): every thread races on it");

        // Decompose arguments against the cell params.
        bool anyBase = false, anyShift = false;
        std::size_t argBegin = ti + 2;
        int depth = 0;
        auto flush = [&](std::size_t argEnd) {
            if (argEnd <= argBegin) return;
            ArgKind k = classifyArg(toks, argBegin, argEnd, lam.params);
            if (k == ArgKind::Base) anyBase = true;
            if (k == ArgKind::Shifted) anyShift = true;
        };
        for (std::size_t j = ti + 2; j < rp; ++j) {
            const Token& t = toks[j];
            if (t.kind != TokKind::Punct) continue;
            if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
            else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
            else if (t.text == "," && depth == 0) {
                flush(j);
                argBegin = j + 1;
            }
        }
        flush(rp);
        if (!anyBase && !anyShift) continue; // not indexed by the cell: not a view access

        ViewUse& u = views[toks[ti].text];
        const bool write = isWriteAfter(toks, rp);
        const int line = toks[ti].line;
        if (write && anyShift) u.writeShiftLine = u.writeShiftLine ? u.writeShiftLine : line;
        else if (write) u.writeBaseLine = u.writeBaseLine ? u.writeBaseLine : line;
        else if (anyShift) u.readShiftLine = u.readShiftLine ? u.readShiftLine : line;
        else u.readBaseLine = u.readBaseLine ? u.readBaseLine : line;
        ti = rp; // skip past this access
    }

    for (const auto& [name, u] : views) {
        if (u.writeBaseLine && u.readShiftLine) {
            std::ostringstream os;
            os << "cell kernel in " << launch << " writes '" << name
               << "' at the cell (line " << u.writeBaseLine
               << ") and reads it at shifted indices (line " << u.readShiftLine
               << "): neighbouring threads observe half-updated data — "
                  "stage through a second fab or split the launch";
            add(out, "A1", sf.lexed.path, u.readShiftLine, os.str());
        } else if (u.writeShiftLine &&
                   (u.readBaseLine || u.readShiftLine || u.writeBaseLine)) {
            std::ostringstream os;
            os << "cell kernel in " << launch << " writes '" << name
               << "' at shifted indices (line " << u.writeShiftLine
               << ") while also touching it at other cells: threads collide "
                  "on overlapping cells — make each thread own exactly its "
                  "cell";
            add(out, "A1", sf.lexed.path, u.writeShiftLine, os.str());
        }
        (void)launchLine;
    }
}

void scanTaskKernel(const SourceFile& sf, const Lambda& lam,
                    const std::string& launch, std::vector<Finding>& out) {
    const auto& toks = sf.lexed.tokens;
    if (lam.params.empty()) return;

    // Derived set: the task parameter plus every local assigned from it.
    std::set<std::string> derived(lam.params.begin(), lam.params.end());
    for (int pass = 0; pass < 3; ++pass) {
        bool grew = false;
        for (std::size_t q = lam.bodyBegin + 1; q + 1 < lam.bodyEnd; ++q) {
            if (!isIdent(toks[q]) || !isPunct(toks[q + 1], "=")) continue;
            if (derived.count(toks[q].text)) continue;
            for (std::size_t j = q + 2; j < lam.bodyEnd; ++j) {
                if (isPunct(toks[j], ";")) break;
                if (isIdent(toks[j]) && derived.count(toks[j].text)) {
                    derived.insert(toks[q].text);
                    grew = true;
                    break;
                }
            }
        }
        if (!grew) break;
    }

    // Spans controlled by an if whose condition mentions the derived set
    // (the "task 0 drains" idiom): writes there are task-conditioned.
    std::vector<std::pair<std::size_t, std::size_t>> exempt;
    for (std::size_t q = lam.bodyBegin + 1; q + 1 < lam.bodyEnd; ++q) {
        if (!isIdent(toks[q], "if") || !isPunct(toks[q + 1], "(")) continue;
        const std::size_t crp = matchForward(toks, q + 1);
        if (crp >= lam.bodyEnd) continue;
        bool mentions = false;
        for (std::size_t j = q + 2; j < crp; ++j)
            if (isIdent(toks[j]) && derived.count(toks[j].text)) mentions = true;
        if (!mentions) continue;
        std::size_t stmt = crp + 1;
        std::size_t stmtEnd;
        if (stmt < lam.bodyEnd && isPunct(toks[stmt], "{"))
            stmtEnd = matchForward(toks, stmt);
        else {
            stmtEnd = stmt;
            while (stmtEnd < lam.bodyEnd && !isPunct(toks[stmtEnd], ";"))
                ++stmtEnd;
        }
        exempt.emplace_back(stmt, stmtEnd);
        // An else branch of a task-conditioned if is also task-conditioned.
        std::size_t e = stmtEnd + 1;
        if (e < lam.bodyEnd && isIdent(toks[e], "else")) {
            std::size_t eb = e + 1;
            std::size_t ee;
            if (eb < lam.bodyEnd && isPunct(toks[eb], "{"))
                ee = matchForward(toks, eb);
            else {
                ee = eb;
                while (ee < lam.bodyEnd && !isPunct(toks[ee], ";")) ++ee;
            }
            exempt.emplace_back(eb, ee);
        }
    }
    auto isExempt = [&](std::size_t q) {
        for (const auto& [b, e] : exempt)
            if (q > b && q < e) return true;
        return false;
    };

    for (std::size_t ti = lam.bodyBegin + 1; ti + 1 < lam.bodyEnd; ++ti) {
        if (!isIdent(toks[ti]) || !isPunct(toks[ti + 1], "(")) continue;
        const std::size_t rp = matchForward(toks, ti + 1);
        if (rp >= lam.bodyEnd || !isWriteAfter(toks, rp)) continue;
        if (ti + 2 == rp) continue; // zero-arg call: not an indexed view write
        if (derived.count(toks[ti].text)) continue; // task-derived view
        if (isExempt(ti)) continue;
        bool argsDerived = false;
        for (std::size_t j = ti + 2; j < rp; ++j)
            if (isIdent(toks[j]) && derived.count(toks[j].text))
                argsDerived = true;
        if (argsDerived) continue;
        add(out, "A1", sf.lexed.path, toks[ti].line,
            "task kernel in " + launch + " writes '" + toks[ti].text +
                "' at indices independent of the task parameter '" +
                lam.params.back() +
                "': concurrent tasks collide — index the view (or derive "
                "the target) from the task id, or guard with a "
                "task-conditioned branch");
        ti = rp;
    }
}

} // namespace

void checkA1(const Project& project, std::vector<Finding>& out) {
    static const char* kCellLaunches[] = {"ParallelFor"};
    static const char* kTaskLaunches[] = {"ParallelForIndex",
                                          "BatchedParallelForIndex"};
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        const auto& toks = sf.lexed.tokens;

        // Local lambdas per function, with impurity classification:
        //   auto note = [&](...) { ++rep.count; ... };
        std::vector<std::map<std::string, std::pair<int, std::string>>>
            impureByFunc(sf.outline.functions.size());
        for (std::size_t fi = 0; fi < sf.outline.functions.size(); ++fi) {
            const FunctionDef& fn = sf.outline.functions[fi];
            for (std::size_t q = static_cast<std::size_t>(fn.bodyBegin) + 1;
                 q + 2 < static_cast<std::size_t>(fn.bodyEnd); ++q) {
                if (!isIdent(toks[q]) || !isPunct(toks[q + 1], "=") ||
                    !isPunct(toks[q + 2], "["))
                    continue;
                Lambda lam = parseLambda(toks, q + 2);
                if (!lam.valid) continue;
                int mline = 0;
                std::string what;
                if (findMutation(toks, lam.bodyBegin + 1, lam.bodyEnd, mline,
                                 what))
                    impureByFunc[fi][toks[q].text] = {mline, what};
                q = lam.bodyEnd;
            }
        }

        for (const CallExpr& call : sf.outline.calls) {
            bool cell = false, task = false;
            for (const char* n : kCellLaunches)
                if (call.name == n) cell = true;
            for (const char* n : kTaskLaunches)
                if (call.name == n) task = true;
            if (!cell && !task) continue;
            Lambda lam = kernelLambda(toks, call);
            if (!lam.valid) continue;
            static const std::map<std::string, std::pair<int, std::string>>
                kNoLocals;
            const auto& impure = call.func >= 0
                                     ? impureByFunc[static_cast<std::size_t>(
                                           call.func)]
                                     : kNoLocals;
            if (cell)
                scanCellKernel(sf, lam, call.chain + "(...)", call.line,
                               impure, out);
            else
                scanTaskKernel(sf, lam, call.chain + "(...)", out);
        }
    }
}

// ====================================================================
// A2 — exchange protocol: Begin/End paired per function
// ====================================================================

void checkA2(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        if (startsWith(sf.lexed.path, "src/amr/")) continue; // API owner
        for (std::size_t fi = 0; fi < sf.outline.functions.size(); ++fi) {
            const FunctionDef& fn = sf.outline.functions[fi];
            // Forwarders — functions that ARE a Begin or End half (e.g.
            // CroccoAmr::fillPatchBegin, or a *End routine that completes an
            // exchange its Begin-half opened) — are intentionally one-sided.
            if (endsWith(fn.name, "Begin") || endsWith(fn.name, "End"))
                continue;
            struct Count {
                int begin = 0, end = 0, firstLine = 0;
            };
            std::map<std::string, Count> stems;
            for (const CallExpr& c : sf.outline.calls) {
                if (c.func != static_cast<int>(fi)) continue;
                const std::string low = lowered(c.name);
                if (low.find("fillboundary") == std::string::npos &&
                    low.find("fillpatch") == std::string::npos)
                    continue;
                std::string stem;
                bool isBegin = false;
                if (endsWith(c.name, "Begin")) {
                    stem = c.name.substr(0, c.name.size() - 5);
                    isBegin = true;
                } else if (endsWith(c.name, "End")) {
                    stem = c.name.substr(0, c.name.size() - 3);
                } else {
                    continue;
                }
                Count& cnt = stems[stem];
                if (!cnt.firstLine) cnt.firstLine = c.line;
                if (isBegin) ++cnt.begin;
                else ++cnt.end;
            }
            for (const auto& [stem, cnt] : stems) {
                if (cnt.begin == cnt.end) continue;
                std::ostringstream os;
                os << "function '" << fn.name << "' calls " << stem
                   << "Begin " << cnt.begin << "x but " << stem << "End "
                   << cnt.end << "x: the exchange "
                   << (cnt.begin > cnt.end
                           ? "is left in flight when the function returns"
                           : "completes a Begin this function never posted")
                   << " — pair them in the same function, or name the "
                      "function *Begin/*End if it intentionally owns one "
                      "half of a split exchange";
                add(out, "A2", sf.lexed.path, cnt.firstLine, os.str());
            }
        }
    }
}

// ====================================================================
// A3 — deck-key registry
// ====================================================================

namespace {

const std::set<std::string> kQueryMethods = {
    "query", "queryArr", "getInt", "getDouble", "getString", "getBool",
    "contains",
};

/// File suffixes that make `foo.bar` a filename, not a deck key.
const std::set<std::string> kFileSuffixes = {
    "md",  "cpp", "hpp", "h",  "cc",  "sh",    "json", "csv",
    "txt", "py",  "yml", "yaml", "cmake", "o", "so",   "in",
};

bool isWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<DeckKeyUse> collectDeckKeys(const Project& project) {
    std::vector<DeckKeyUse> uses;
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        const auto& toks = sf.lexed.tokens;
        for (const CallExpr& c : sf.outline.calls) {
            if (!kQueryMethods.count(c.name) || c.argSpans.empty()) continue;
            const auto& span = c.argSpans.front();
            if (span.second - span.first != 1) continue;
            const Token& a = toks[static_cast<std::size_t>(span.first)];
            if (a.kind != TokKind::String) continue;
            if (a.text.find('.') == std::string::npos ||
                a.text.find(' ') != std::string::npos)
                continue;
            uses.push_back({a.text, sf.lexed.path, a.line});
        }
    }
    std::sort(uses.begin(), uses.end(),
              [](const DeckKeyUse& a, const DeckKeyUse& b) {
                  if (a.key != b.key) return a.key < b.key;
                  if (a.file != b.file) return a.file < b.file;
                  return a.line < b.line;
              });
    return uses;
}

void checkA3(const Project& project, std::vector<Finding>& out) {
    const std::vector<DeckKeyUse> uses = collectDeckKeys(project);
    std::set<std::string> queried;
    std::set<std::string> prefixes;
    for (const DeckKeyUse& u : uses) {
        queried.insert(u.key);
        prefixes.insert(u.key.substr(0, u.key.find('.')));
    }

    // Queried but undocumented.
    std::set<std::string> reported;
    for (const DeckKeyUse& u : uses) {
        if (!reported.insert(u.key).second) continue;
        bool documented = false;
        for (const auto& [path, text] : project.docFiles)
            if (text.find(u.key) != std::string::npos) documented = true;
        if (!documented)
            add(out, "A3", u.file, u.line,
                "deck key '" + u.key +
                    "' is queried here but documented nowhere — add it to "
                    "docs/deck-keys.md (tools/analyze --write-deck-registry "
                    "regenerates the table)");
    }

    // Documented but dead: dotted words in the docs whose first segment is
    // a queried prefix but which no code ever queries.
    for (const auto& [path, text] : project.docFiles) {
        int line = 1;
        std::size_t i = 0;
        std::set<std::string> reportedHere;
        while (i < text.size()) {
            if (text[i] == '\n') {
                ++line;
                ++i;
                continue;
            }
            if (!(std::isalpha(static_cast<unsigned char>(text[i])) ||
                  text[i] == '_')) {
                ++i;
                continue;
            }
            std::size_t b = i;
            while (i < text.size() && isWordChar(text[i])) ++i;
            std::string word = text.substr(b, i - b);
            bool dotted = false;
            while (i + 1 < text.size() && text[i] == '.' &&
                   isWordChar(text[i + 1])) {
                std::size_t sb = ++i;
                while (i < text.size() && isWordChar(text[i])) ++i;
                word += "." + text.substr(sb, i - sb);
                dotted = true;
            }
            if (!dotted) continue;
            const std::string first = word.substr(0, word.find('.'));
            const std::string last = word.substr(word.rfind('.') + 1);
            if (!prefixes.count(first) || kFileSuffixes.count(lowered(last)))
                continue;
            if (queried.count(word) || !reportedHere.insert(word).second)
                continue;
            add(out, "A3", path, line,
                "deck key '" + word +
                    "' is documented here but never queried from ParmParse — "
                    "stale docs or a dead knob; delete the mention or wire "
                    "the key up");
        }
    }
}

// ====================================================================
// A4 — module layering
// ====================================================================

namespace {

/// Headers any module may include: the POD-ish views/index layer plus the
/// flag-independent check interface (check::fail aborts in release too).
const std::set<std::string> kBaseHeaders = {
    "amr/Box.hpp", "amr/IntVect.hpp", "amr/Array4.hpp", "amr/FArrayBox.hpp",
    "check/Check.hpp",
};

/// module -> modules it may depend on (beyond itself and the base headers).
const std::map<std::string, std::set<std::string>> kAllowedEdges = {
    {"amr", {"gpu", "parallel", "perf"}},
    {"check", {}},
    {"chem", {}},
    {"core", {"amr", "gpu", "mesh", "perf", "resilience"}},
    {"gpu", {}},
    {"io", {"core"}},
    {"machine", {"amr", "core", "gpu"}},
    {"mesh", {"amr"}},
    {"parallel", {}},
    {"perf", {"gpu"}},
    {"problems", {"core", "mesh"}},
    {"resilience", {"amr", "gpu"}},
};

/// Single-header grants that cut real cycles on purpose. Each carries its
/// rationale here — this table IS the review record.
const std::map<std::string, std::set<std::string>> kHeaderGrants = {
    // amr fabs stamp their payload CRC; Crc32 is a leaf utility.
    {"resilience/Crc32.hpp", {"amr"}},
    // StateValidator/FaultInjector name the conserved-variable indices;
    // core/State.hpp is a constants-only header.
    {"core/State.hpp", {"resilience"}},
    // CommFaults draws its decision-stream seed from the unified fault
    // RNG; FaultRng is a header-only, dependency-free seed-derivation leaf.
    {"resilience/FaultRng.hpp", {"parallel"}},
};

} // namespace

void checkA4(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        const std::string rest = sf.lexed.path.substr(4);
        const std::size_t slash = rest.find('/');
        if (slash == std::string::npos) continue;
        const std::string mod = rest.substr(0, slash);

        for (const IncludeDirective& inc : sf.outline.includes) {
            if (inc.angled) continue; // system headers
            const std::size_t hs = inc.header.find('/');
            const std::string target =
                hs == std::string::npos ? mod : inc.header.substr(0, hs);
            if (!kAllowedEdges.count(target)) continue; // not a project module

            // check/ internals must be invisible without CROCCO_CHECK.
            if (target == "check" && mod != "check" &&
                inc.header != "check/Check.hpp" && !inc.checkGuarded) {
                add(out, "A4", sf.lexed.path, inc.line,
                    "#include \"" + inc.header +
                        "\" outside src/check must sit under #ifdef "
                        "CROCCO_CHECK — only check/Check.hpp is part of the "
                        "always-on interface");
                continue;
            }
            if (target == mod || target == "check") continue;
            if (kBaseHeaders.count(inc.header)) continue;
            auto grant = kHeaderGrants.find(inc.header);
            if (grant != kHeaderGrants.end() && grant->second.count(mod))
                continue;
            auto edges = kAllowedEdges.find(mod);
            if (edges != kAllowedEdges.end() && edges->second.count(target))
                continue;
            if (edges == kAllowedEdges.end()) continue; // unknown module: no DAG claim
            add(out, "A4", sf.lexed.path, inc.line,
                "layering: src/" + mod + " must not include \"" + inc.header +
                    "\" (module '" + target +
                    "' is not a declared dependency of '" + mod +
                    "' — see the DAG in docs/correctness.md#a4)");
        }
    }
}

} // namespace crocco::analyze
