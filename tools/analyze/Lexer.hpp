#pragma once

#include <string>
#include <vector>

/// crocco-analyze lexical layer. Turns a C++ (or Markdown, for the deck-key
/// check) source file into a token stream with file:line:column positions,
/// with comments, string literals, and character literals stripped into
/// side channels. This is what makes every check "token-aware": a rule that
/// scans tokens can never match inside a comment, a string, or a raw
/// string — the failure mode of the grep lint this tool replaces.
namespace crocco::analyze {

enum class TokKind {
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< integer / floating literal (including 0x..., 1.5e-3)
    String,     ///< "..." or R"tag(...)tag" — text excludes quotes
    Char,       ///< '...'
    Punct,      ///< one operator/punctuator ("::", "->", "+=", "(", ...)
};

struct Token {
    TokKind kind;
    std::string text;
    int line = 0; ///< 1-based
    int col = 0;  ///< 1-based
};

/// A stripped comment, kept for the suppression scanner
/// (`// crocco-analyze:allow(R5): reason`).
struct Comment {
    std::string text; ///< without the // or /* */ delimiters
    int line = 0;     ///< line the comment starts on
    bool block = false;
};

/// One preprocessor directive line (continuations folded). `text` is the
/// directive with the leading '#' and excess whitespace removed, e.g.
/// "ifdef CROCCO_CHECK" or "include \"amr/Box.hpp\"".
struct PpDirective {
    std::string text;
    int line = 0;
};

struct LexedFile {
    std::string path; ///< as given to lex(); checks treat it root-relative
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    std::vector<PpDirective> directives;
};

/// Lex `source` (the full file contents). Never fails: unterminated
/// comments/strings lex to end-of-file, bad characters become 1-char Punct
/// tokens. Preprocessor lines are captured as directives AND skipped from
/// the token stream (so `#include <thread>` is matched via directives, not
/// tokens).
LexedFile lex(const std::string& path, const std::string& source);

} // namespace crocco::analyze
