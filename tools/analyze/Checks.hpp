#pragma once

#include "Model.hpp"

#include <set>
#include <string>
#include <vector>

namespace crocco::analyze {

struct CheckOptions {
    /// Rule ids to run; empty = all. ("R1".."R7", "A1".."A6")
    std::set<std::string> rules;
};

/// The rule catalogue (id, one-line contract, docs anchor) — the same list
/// docs/correctness.md documents and the SARIF driver advertises.
const std::vector<RuleInfo>& ruleCatalog();

/// Run every (selected) check over the project. Findings come back in
/// (file, line, rule) order with `suppressed` already resolved against the
/// inline crocco-analyze:allow comments.
std::vector<Finding> runChecks(const Project& project,
                               const CheckOptions& options = {});

/// Deck keys queried from ParmParse in the project's sources, sorted;
/// used by check A3 and by --write-deck-registry.
struct DeckKeyUse {
    std::string key;
    std::string file;
    int line = 0;
};
std::vector<DeckKeyUse> collectDeckKeys(const Project& project);

// Individual passes (exposed for the test suite; runChecks composes them).
void checkR1(const Project&, std::vector<Finding>&); ///< .data() escapes
void checkR2(const Project&, std::vector<Finding>&); ///< threading primitives
void checkR3(const Project&, std::vector<Finding>&); ///< defaulted ghost counts
void checkR4(const Project&, std::vector<Finding>&); ///< forEachCell in kernels
void checkR5(const Project&, std::vector<Finding>&); ///< per-file Begin/End parity
void checkR6(const Project&, std::vector<Finding>&); ///< raw isend/irecv
void checkR7(const Project&, std::vector<Finding>&); ///< open-coded RK3 triple
void checkA1(const Project&, std::vector<Finding>&); ///< kernel dataflow
void checkA2(const Project&, std::vector<Finding>&); ///< exchange protocol
void checkA3(const Project&, std::vector<Finding>&); ///< deck-key registry
void checkA4(const Project&, std::vector<Finding>&); ///< module layering
void checkA5(const Project&, std::vector<Finding>&); ///< per-pair post loops
void checkA6(const Project&, std::vector<Finding>&); ///< guarded recovery sources

} // namespace crocco::analyze
