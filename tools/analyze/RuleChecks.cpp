// Token-aware re-implementations of the seven grep rules from the old
// tools/lint.sh. The semantics are the same contracts; the matching is on
// the lexed token stream, so comments, strings, and raw strings can no
// longer produce false positives, and multi-line calls cannot dodge a rule.
//
// Path policy: each rule hard-codes only the *implementation owner* of the
// API it guards (the module where the contract lives). Reviewed callers —
// the old file-granular grep allowlists — are expressed in the source
// itself with `// crocco-analyze:allow-file(<rule>): reason` headers.

#include "Checks.hpp"

#include <set>
#include <sstream>

namespace crocco::analyze {

namespace {

bool startsWith(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

bool endsWith(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool isCxxHeader(const std::string& path) { return endsWith(path, ".hpp"); }

bool inSrc(const std::string& path) { return startsWith(path, "src/"); }

void add(std::vector<Finding>& out, const char* rule, const std::string& file,
         int line, const std::string& message) {
    out.push_back({rule, file, line, message, false});
}

bool isPunct(const Token& t, const char* s) {
    return t.kind == TokKind::Punct && t.text == s;
}
bool isIdent(const Token& t, const char* s) {
    return t.kind == TokKind::Identifier && t.text == s;
}

} // namespace

// R1 — `.data()` raw-pointer escapes. Raw pointers bypass the checked
// Array4 accessors (docs/correctness.md), so every escape is a reviewed
// idiom carrying an allow-file/allow comment in the source.
void checkR1(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        const auto& toks = sf.lexed.tokens;
        for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
            if (isPunct(toks[i], ".") && isIdent(toks[i + 1], "data") &&
                isPunct(toks[i + 2], "(") && isPunct(toks[i + 3], ")")) {
                add(out, "R1", sf.lexed.path, toks[i + 1].line,
                    ".data() raw-pointer escape bypasses the checked Array4 "
                    "accessors; route through Array4 or add a reviewed "
                    "crocco-analyze:allow(R1)");
            }
        }
    }
}

// R2 — threading primitives outside src/gpu/ThreadPool.*. All parallelism
// routes through the ThreadPool so the race detector sees it.
void checkR2(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        if (startsWith(sf.lexed.path, "src/gpu/ThreadPool.")) continue;
        for (const PpDirective& d : sf.lexed.directives) {
            const bool badInclude =
                startsWith(d.text, "include") &&
                (d.text.find("<thread>") != std::string::npos ||
                 d.text.find("<omp.h>") != std::string::npos);
            const bool badPragma = startsWith(d.text, "pragma") &&
                                   d.text.find("omp") != std::string::npos;
            if (badInclude || badPragma)
                add(out, "R2", sf.lexed.path, d.line,
                    "#" + d.text +
                        ": threading primitive outside src/gpu/ThreadPool — "
                        "parallelism must route through the pool so the race "
                        "detector sees it");
        }
        const auto& toks = sf.lexed.tokens;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (isIdent(toks[i], "std") && isPunct(toks[i + 1], "::") &&
                isIdent(toks[i + 2], "thread")) {
                add(out, "R2", sf.lexed.path, toks[i].line,
                    "std::thread outside src/gpu/ThreadPool — parallelism "
                    "must route through the pool so the race detector sees "
                    "it");
            }
        }
    }
}

// R3 — defaulted ghost-count parameters (`...Grow = 0`) in headers. Call
// sites must state how many ghost layers a copy touches; silent defaults
// caused valid-region copies where ghost copies were intended.
void checkR3(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path) || !isCxxHeader(sf.lexed.path)) continue;
        const auto& toks = sf.lexed.tokens;
        for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
            if (toks[i].kind == TokKind::Identifier &&
                endsWith(toks[i].text, "Grow") && isPunct(toks[i + 1], "=") &&
                toks[i + 2].kind == TokKind::Number &&
                toks[i + 2].text == "0" &&
                (isPunct(toks[i + 3], ",") || isPunct(toks[i + 3], ")"))) {
                add(out, "R3", sf.lexed.path, toks[i].line,
                    toks[i].text +
                        " = 0: defaulted ghost-count parameter — call sites "
                        "must state the ghost width explicitly");
            }
        }
    }
}

// R4 — serial amr::forEachCell in the flux/transport kernel files. Kernels
// iterate through gpu::ParallelFor so thread scaling and the race detector
// cover them.
void checkR4(const Project& project, std::vector<Finding>& out) {
    static const char* kKernelFiles[] = {
        "src/core/Weno.cpp",  "src/core/Viscous.cpp",
        "src/core/Sgs.cpp",   "src/core/Rans.cpp",
        "src/core/SpeciesTransport.cpp",
    };
    for (const SourceFile& sf : project.files) {
        bool isKernelFile = false;
        for (const char* k : kKernelFiles)
            if (endsWith(sf.lexed.path, k + 4) && inSrc(sf.lexed.path) &&
                sf.lexed.path.find("/core/") != std::string::npos)
                isKernelFile = true;
        if (!isKernelFile) continue;
        for (const Token& t : sf.lexed.tokens) {
            if (t.kind == TokKind::Identifier && t.text == "forEachCell")
                add(out, "R4", sf.lexed.path, t.line,
                    "forEachCell in a kernel file — iterate through "
                    "gpu::ParallelFor so thread scaling and the race "
                    "detector cover the loop");
        }
    }
}

// R5 — per-file count parity of the async exchange Begin/End entry points
// (outside src/amr/, which implements the API). Kept alongside A2: R5 is
// the cheap whole-file invariant, A2 the per-function protocol check that
// closes R5's orphaned-Begin-plus-orphaned-End blind spot.
void checkR5(const Project& project, std::vector<Finding>& out) {
    static const char* kPairs[][2] = {
        {"fillBoundaryBegin", "fillBoundaryEnd"},
        {"FillPatchSingleLevelBegin", "FillPatchSingleLevelEnd"},
        {"FillPatchTwoLevelsBegin", "FillPatchTwoLevelsEnd"},
    };
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        if (startsWith(sf.lexed.path, "src/amr/")) continue;
        for (const auto& pair : kPairs) {
            int nb = 0, ne = 0, firstLine = 0;
            for (const CallExpr& c : sf.outline.calls) {
                if (c.name == pair[0]) {
                    ++nb;
                    if (!firstLine) firstLine = c.line;
                } else if (c.name == pair[1]) {
                    ++ne;
                    if (!firstLine) firstLine = c.line;
                }
            }
            if (nb != ne) {
                std::ostringstream os;
                os << nb << " " << pair[0] << " call(s) vs " << ne << " "
                   << pair[1] << " call(s) in this file — an exchange left "
                   << "in flight aborts the next Begin at runtime";
                add(out, "R5", sf.lexed.path, firstLine, os.str());
            }
        }
    }
}

// R6 — raw nonblocking posts outside the hardened exchange. SimComm owns
// the isend/irecv API (CRC stamp, receive timeout, bounded retransmit,
// NACK-on-corruption); every other caller must go through MultiFab or
// SimComm::sendVerified or carry a reviewed allow.
void checkR6(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        if (startsWith(sf.lexed.path, "src/parallel/SimComm.")) continue;
        const auto& toks = sf.lexed.tokens;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind == TokKind::Identifier &&
                (toks[i].text == "isend" || toks[i].text == "irecv") &&
                isPunct(toks[i + 1], "(")) {
                add(out, "R6", sf.lexed.path, toks[i].line,
                    "raw " + toks[i].text +
                        "() outside the verified exchange — new p2p traffic "
                        "must go through MultiFab or SimComm::sendVerified "
                        "(or wire the same verification in and add a "
                        "reviewed allow(R6))");
            }
        }
    }
}

// R7 — open-coded RK3 stage-update triples. The mult + saxpy + saxpy chain
// against the Rk3 coefficients lives in core::rk3StageUpdate only; that is
// where the fused kernel and the seed sequence are kept bitwise-aligned.
void checkR7(const Project& project, std::vector<Finding>& out) {
    auto firstArgIsRk3 = [](const std::vector<Token>& toks, std::size_t lp) {
        return lp + 2 < toks.size() && isIdent(toks[lp + 1], "Rk3") &&
               isPunct(toks[lp + 2], "::");
    };
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        if (endsWith(sf.lexed.path, "core/Rk3.cpp")) continue;
        const auto& toks = sf.lexed.tokens;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (!isPunct(toks[i + 1], "(")) continue;
            const bool isMult =
                isIdent(toks[i], "mult") && i > 0 &&
                (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->")) &&
                firstArgIsRk3(toks, i + 1);
            bool isSaxpy = false;
            if (isIdent(toks[i], "saxpy")) {
                const std::size_t rp = matchForward(toks, i + 1);
                for (std::size_t j = i + 2; j + 1 < rp; ++j)
                    if (isIdent(toks[j], "Rk3") && isPunct(toks[j + 1], "::"))
                        isSaxpy = true;
            }
            if (isMult || isSaxpy)
                add(out, "R7", sf.lexed.path, toks[i].line,
                    "raw " + toks[i].text +
                        "() against Rk3 coefficients — the RK3 stage triple "
                        "lives in core::rk3StageUpdate (fused-kernel / seed "
                        "bitwise alignment)");
        }
    }
}

// A5 — per-pair isend/irecv *loops* outside the aggregation planner. R6
// already reviews every raw post site; A5 adds the perf contract: a
// nonblocking post inside a for/while/do body is the one-message-per-box
// pattern rank-pair aggregation exists to remove, so new exchange loops
// must go through MultiFab's aggregation plan (src/amr/MultiFab.cpp and
// SimComm itself own the planner/transport and are exempt).
void checkA5(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        if (startsWith(sf.lexed.path, "src/parallel/SimComm.")) continue;
        if (sf.lexed.path == "src/amr/MultiFab.cpp") continue;
        const auto& toks = sf.lexed.tokens;

        // Token ranges [begin, end) of every loop body. A brace body spans
        // its compound statement; a braceless body spans up to the next ';'.
        std::vector<std::pair<std::size_t, std::size_t>> bodies;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier) continue;
            std::size_t bodyBegin = toks.size();
            if ((toks[i].text == "for" || toks[i].text == "while") &&
                i + 1 < toks.size() && isPunct(toks[i + 1], "(")) {
                const std::size_t rp = matchForward(toks, i + 1);
                if (rp < toks.size()) bodyBegin = rp + 1;
            } else if (toks[i].text == "do") {
                bodyBegin = i + 1;
            }
            if (bodyBegin >= toks.size()) continue;
            std::size_t bodyEnd;
            if (isPunct(toks[bodyBegin], "{")) {
                bodyEnd = matchForward(toks, bodyBegin);
            } else {
                bodyEnd = bodyBegin;
                while (bodyEnd < toks.size() && !isPunct(toks[bodyEnd], ";"))
                    ++bodyEnd;
            }
            bodies.emplace_back(bodyBegin, bodyEnd);
        }

        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Identifier ||
                (toks[i].text != "isend" && toks[i].text != "irecv") ||
                !isPunct(toks[i + 1], "("))
                continue;
            bool inLoop = false;
            for (const auto& [b, e] : bodies)
                if (i >= b && i < e) inLoop = true;
            if (inLoop)
                add(out, "A5", sf.lexed.path, toks[i].line,
                    toks[i].text +
                        "() inside a loop — a per-pair post loop sends one "
                        "message per box pair; route the exchange through "
                        "MultiFab's aggregation plan (comm.aggregate) "
                        "instead");
        }
    }
}

// A6 — recovery sources are validated before they are trusted. A function
// that writes a checkpoint or buddy mirror (writeCheckpoint / buddy store)
// or reads one back (readCheckpoint) is publishing or consuming state the
// recovery ladder will later treat as ground truth; if the function never
// consults the FabGuard stamp/verify API, a silent upset rides straight
// into the recovery source and every ladder rung below it replays the
// corruption (docs/resilience.md §6). src/resilience/ itself implements
// the guard and the stores, so it is exempt.
void checkA6(const Project& project, std::vector<Finding>& out) {
    for (const SourceFile& sf : project.files) {
        if (!inSrc(sf.lexed.path)) continue;
        if (startsWith(sf.lexed.path, "src/resilience/")) continue;
        const Outline& ol = sf.outline;

        // Functions that consult the guard anywhere in their body (calls in
        // lambdas attribute to the enclosing function, which is the right
        // granularity: evolve()'s restamp lambda guards evolve's writes).
        std::set<int> guarded;
        for (const CallExpr& c : ol.calls) {
            if (c.func < 0) continue;
            if (startsWith(c.name, "stamp") || startsWith(c.name, "verify") ||
                startsWith(c.name, "sdcVerify"))
                guarded.insert(c.func);
        }

        for (const CallExpr& c : ol.calls) {
            const bool checkpoint =
                c.name == "writeCheckpoint" || c.name == "readCheckpoint";
            // `store` only counts when called through a buddy handle
            // (opts.buddy->store, buddy_.store); a plain cache store is not
            // a recovery source.
            const bool mirror = c.name == "store" &&
                                c.chain.find("uddy") != std::string::npos;
            if (!checkpoint && !mirror) continue;
            if (c.func >= 0 && guarded.count(c.func) != 0) continue;
            const std::string where =
                c.func >= 0 ? ol.functions[static_cast<std::size_t>(c.func)]
                                  .qualified
                            : "file scope";
            add(out, "A6", sf.lexed.path, c.line,
                c.chain + "() in " + where +
                    " touches checkpoint/mirror state without a FabGuard "
                    "stamp/verify in the same function — validate the "
                    "recovery source before trusting it "
                    "(docs/resilience.md, SDC threat model)");
        }
    }
}

} // namespace crocco::analyze
