#pragma once

#include "Lexer.hpp"
#include "Outline.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace crocco::analyze {

/// One rule violation. `file` is root-relative with '/' separators, so
/// findings (and the SARIF artifact) are stable across checkouts.
struct Finding {
    std::string rule;    ///< "R1".."R7", "A1".."A5"
    std::string file;
    int line = 0;
    std::string message;
    bool suppressed = false; ///< matched an inline allow — reported only with --show-suppressed
};

struct RuleInfo {
    std::string id;
    std::string title;    ///< one-line contract
    std::string helpUri;  ///< docs/correctness.md anchor
};

/// Inline suppressions parsed from comments:
///   // crocco-analyze:allow(R1[,R6...])[: reason]        same or next line
///   // crocco-analyze:allow-file(R1[,...]): reason       whole file
/// The reason is mandatory for allow-file (a file-wide waiver with no
/// rationale is exactly the grep allowlist this tool replaces).
struct Suppressions {
    std::set<std::string> fileRules;             ///< allow-file rules
    std::map<int, std::set<std::string>> lineRules; ///< line -> rules allowed there
    std::vector<std::string> malformed;          ///< allow-file without reason etc.

    /// True when a finding of `rule` at `line` is waived. A line-granular
    /// allow covers findings on its own line and on the next line (comment-
    /// above style).
    bool covers(const std::string& rule, int line) const {
        if (fileRules.count(rule) || fileRules.count("*")) return true;
        for (int l : {line, line - 1}) {
            auto it = lineRules.find(l);
            if (it != lineRules.end() &&
                (it->second.count(rule) || it->second.count("*")))
                return true;
        }
        return false;
    }
};

Suppressions parseSuppressions(const LexedFile& lexed);

/// A parsed source file: lexed tokens + structural outline + suppressions.
struct SourceFile {
    LexedFile lexed;
    Outline outline;
    Suppressions suppressions;
};

/// Everything the checks see. `files` holds the C++ sources under the scan
/// roots (root-relative paths); `docFiles` holds raw text of docs/*.md and
/// README.md for the deck-key registry check.
struct Project {
    std::string root;
    std::vector<SourceFile> files;
    std::map<std::string, std::string> docFiles; ///< path -> contents
};

} // namespace crocco::analyze
