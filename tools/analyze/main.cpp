// crocco-analyze — the project's own static analyzer. Token-aware
// re-implementation of the seven grep lint rules (R1–R7) plus five
// whole-program passes (A1 kernel dataflow, A2 exchange protocol, A3
// deck-key registry, A4 module layering, A5 per-pair exchange loops). See
// docs/correctness.md for the rule catalogue and the inline suppression
// syntax.
//
// Exit status: 0 = clean (suppressed findings do not count), 1 = unsuppressed
// findings or malformed suppressions, 2 = usage/IO error.

#include "Checks.hpp"
#include "Report.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace crocco::analyze;

namespace {

int usage(std::ostream& os, int code) {
    os << "usage: crocco-analyze [options] [--root DIR]\n"
          "\n"
          "Scans DIR/src (C++ sources) and DIR/docs + DIR/README.md (deck-key\n"
          "registry) and reports rule findings. Default DIR is the current\n"
          "directory.\n"
          "\n"
          "  --root DIR            repository root to scan\n"
          "  --rules R1,A2,...     run only these rules (default: all)\n"
          "  --list-rules          print the rule catalogue and exit\n"
          "  --sarif FILE          also write a SARIF 2.1.0 log to FILE\n"
          "  --json                print JSON instead of text\n"
          "  --show-suppressed     include suppressed findings in the listing\n"
          "  --write-deck-registry regenerate docs/deck-keys.md and exit\n";
    return code;
}

bool readFile(const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string relPath(const fs::path& p, const fs::path& root) {
    std::string s = fs::relative(p, root).generic_string();
    return s;
}

bool isCxx(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

} // namespace

int main(int argc, char** argv) {
    std::string root = ".";
    std::string sarifPath;
    bool json = false, showSuppressed = false, listRules = false,
         writeRegistry = false;
    CheckOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "crocco-analyze: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--root") root = value("--root");
        else if (a == "--sarif") sarifPath = value("--sarif");
        else if (a == "--rules") {
            std::string list = value("--rules");
            std::string cur;
            for (char c : list + ",") {
                if (c == ',') {
                    if (!cur.empty()) options.rules.insert(cur);
                    cur.clear();
                } else if (c != ' ') {
                    cur += c;
                }
            }
        } else if (a == "--json") json = true;
        else if (a == "--show-suppressed") showSuppressed = true;
        else if (a == "--list-rules") listRules = true;
        else if (a == "--write-deck-registry") writeRegistry = true;
        else if (a == "--help" || a == "-h") return usage(std::cout, 0);
        else {
            std::cerr << "crocco-analyze: unknown option '" << a << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (listRules) {
        for (const RuleInfo& r : ruleCatalog())
            std::cout << r.id << "  " << r.title << "  (" << r.helpUri << ")\n";
        return 0;
    }

    const fs::path rootPath(root);
    if (!fs::is_directory(rootPath / "src")) {
        std::cerr << "crocco-analyze: no src/ under '" << root
                  << "' (pass --root)\n";
        return 2;
    }

    Project project;
    project.root = root;

    std::vector<fs::path> sources;
    for (const auto& e : fs::recursive_directory_iterator(rootPath / "src"))
        if (e.is_regular_file() && isCxx(e.path())) sources.push_back(e.path());
    std::sort(sources.begin(), sources.end());
    for (const fs::path& p : sources) {
        std::string text;
        if (!readFile(p, text)) {
            std::cerr << "crocco-analyze: cannot read " << p << "\n";
            return 2;
        }
        SourceFile sf;
        sf.lexed = lex(relPath(p, rootPath), text);
        sf.outline = buildOutline(sf.lexed);
        sf.suppressions = parseSuppressions(sf.lexed);
        project.files.push_back(std::move(sf));
    }

    std::vector<fs::path> docs;
    if (fs::is_directory(rootPath / "docs"))
        for (const auto& e : fs::recursive_directory_iterator(rootPath / "docs"))
            if (e.is_regular_file() && e.path().extension() == ".md")
                docs.push_back(e.path());
    if (fs::is_regular_file(rootPath / "README.md"))
        docs.push_back(rootPath / "README.md");
    std::sort(docs.begin(), docs.end());
    for (const fs::path& p : docs) {
        std::string text;
        if (readFile(p, text))
            project.docFiles[relPath(p, rootPath)] = std::move(text);
    }

    if (writeRegistry) {
        const fs::path target = rootPath / "docs" / "deck-keys.md";
        std::ofstream out(target);
        if (!out) {
            std::cerr << "crocco-analyze: cannot write " << target << "\n";
            return 2;
        }
        writeDeckRegistry(out, collectDeckKeys(project));
        std::cout << "wrote " << target.generic_string() << "\n";
        return 0;
    }

    std::vector<Finding> findings = runChecks(project, options);

    bool badSuppression = false;
    for (const SourceFile& sf : project.files)
        for (const std::string& m : sf.suppressions.malformed) {
            std::cerr << "crocco-analyze: " << m << "\n";
            badSuppression = true;
        }

    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath);
        if (!out) {
            std::cerr << "crocco-analyze: cannot write " << sarifPath << "\n";
            return 2;
        }
        writeSarif(out, findings);
    }

    if (json) writeJson(std::cout, findings);
    else writeText(std::cout, findings, showSuppressed);

    int unsuppressed = 0;
    for (const Finding& f : findings)
        if (!f.suppressed) ++unsuppressed;
    return (unsuppressed > 0 || badSuppression) ? 1 : 0;
}
