#pragma once

#include "Lexer.hpp"

#include <string>
#include <utility>
#include <vector>

/// crocco-analyze structural layer: a brace/paren-aware "outline" of each
/// translation unit. Not a C++ parser — it recovers exactly the structure
/// the checks need (function bodies, call expressions with argument spans,
/// the include list with CROCCO_CHECK guard state) and degrades gracefully
/// on anything it does not recognize.
namespace crocco::analyze {

struct IncludeDirective {
    std::string header; ///< path between the quotes / angle brackets
    int line = 0;
    bool angled = false;       ///< #include <...>
    bool checkGuarded = false; ///< inside an #ifdef CROCCO_CHECK region
};

struct FunctionDef {
    std::string name;      ///< unqualified ("fillBoundaryBegin")
    std::string qualified; ///< as written ("MultiFab::fillBoundaryBegin")
    int line = 0;
    int bodyBegin = 0; ///< token index of '{'
    int bodyEnd = 0;   ///< token index of matching '}'
};

struct CallExpr {
    std::string name;  ///< callee's last identifier ("isend", "query")
    std::string chain; ///< full access chain as written ("comm_->isend")
    int line = 0;
    int nameTok = 0;   ///< token index of the callee identifier
    int lparen = 0;
    int rparen = 0;
    std::vector<std::pair<int, int>> argSpans; ///< [begin, end) token ranges
    int func = -1; ///< index into Outline::functions, -1 at file scope
};

struct Outline {
    std::vector<IncludeDirective> includes;
    std::vector<FunctionDef> functions;
    std::vector<CallExpr> calls;
};

Outline buildOutline(const LexedFile& lexed);

/// Index of the token matching the bracket at `open` ('(', '{' or '['),
/// or tokens.size() when unbalanced.
std::size_t matchForward(const std::vector<Token>& tokens, std::size_t open);

/// Concatenated source text of a token span [begin, end), single-space
/// separated only where needed to keep identifiers apart.
std::string spanText(const std::vector<Token>& tokens, std::size_t begin,
                     std::size_t end);

} // namespace crocco::analyze
