#include "Lexer.hpp"

#include <cctype>

namespace crocco::analyze {

namespace {

bool isIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char punctuators, longest-match-first. Only the ones the checks
/// care to see as single tokens (assignment/compare/increment/scope/member
/// access); everything else lexes one char at a time.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",
};

} // namespace

LexedFile lex(const std::string& path, const std::string& src) {
    LexedFile out;
    out.path = path;
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1, col = 1;

    auto advance = [&](std::size_t count) {
        for (std::size_t c = 0; c < count && i < n; ++c, ++i) {
            if (src[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
    };

    bool atLineStart = true; // only whitespace seen since the last newline
    while (i < n) {
        const char c = src[i];
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            if (c == '\n') atLineStart = true;
            advance(1);
            continue;
        }

        // Preprocessor directive: '#' first on the line; fold continuations.
        if (c == '#' && atLineStart) {
            PpDirective d;
            d.line = line;
            advance(1); // '#'
            std::string text;
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    advance(2);
                    text += ' ';
                    continue;
                }
                if (src[i] == '\n') break;
                // A // comment ends the directive's useful text.
                if (src[i] == '/' && i + 1 < n && src[i + 1] == '/') break;
                text += src[i];
                advance(1);
            }
            // Trim and collapse leading whitespace ("#  include" -> "include").
            std::size_t b = text.find_first_not_of(" \t");
            std::size_t e = text.find_last_not_of(" \t");
            d.text = (b == std::string::npos) ? std::string()
                                              : text.substr(b, e - b + 1);
            out.directives.push_back(std::move(d));
            continue; // the '\n' (or //) is handled by the main loop
        }
        atLineStart = false;

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            Comment cm;
            cm.line = line;
            advance(2);
            while (i < n && src[i] != '\n') {
                cm.text += src[i];
                advance(1);
            }
            out.comments.push_back(std::move(cm));
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            Comment cm;
            cm.line = line;
            cm.block = true;
            advance(2);
            while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
                cm.text += src[i];
                advance(1);
            }
            advance(2); // closing */
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Raw string literal R"tag( ... )tag".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            std::size_t p = i + 2;
            std::string tag;
            while (p < n && src[p] != '(' && src[p] != '"' && src[p] != '\n')
                tag += src[p++];
            if (p < n && src[p] == '(') {
                Token t{TokKind::String, "", line, col};
                const std::string close = ")" + tag + "\"";
                advance(p + 1 - i); // past R"tag(
                while (i < n && src.compare(i, close.size(), close) != 0) {
                    t.text += src[i];
                    advance(1);
                }
                advance(close.size());
                out.tokens.push_back(std::move(t));
                continue;
            }
            // Not actually a raw string ("R" then a normal literal) — fall
            // through and lex 'R' as an identifier.
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            Token t{c == '"' ? TokKind::String : TokKind::Char, "", line, col};
            const char quote = c;
            advance(1);
            while (i < n && src[i] != quote && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < n) {
                    t.text += src[i];
                    t.text += src[i + 1];
                    advance(2);
                    continue;
                }
                t.text += src[i];
                advance(1);
            }
            advance(1); // closing quote
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Identifier.
        if (isIdentStart(c)) {
            Token t{TokKind::Identifier, "", line, col};
            while (i < n && isIdentChar(src[i])) {
                t.text += src[i];
                advance(1);
            }
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Number (decimal/hex/float with exponent; pp-number-ish is fine).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            Token t{TokKind::Number, "", line, col};
            while (i < n &&
                   (isIdentChar(src[i]) || src[i] == '.' ||
                    ((src[i] == '+' || src[i] == '-') && !t.text.empty() &&
                     (t.text.back() == 'e' || t.text.back() == 'E' ||
                      t.text.back() == 'p' || t.text.back() == 'P')))) {
                t.text += src[i];
                advance(1);
            }
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Punctuator: longest match from the table, else a single char.
        Token t{TokKind::Punct, "", line, col};
        for (const char* p : kPuncts) {
            const std::size_t len = std::char_traits<char>::length(p);
            if (src.compare(i, len, p) == 0) {
                t.text = p;
                break;
            }
        }
        if (t.text.empty()) t.text = std::string(1, c);
        advance(t.text.size());
        out.tokens.push_back(std::move(t));
    }
    return out;
}

} // namespace crocco::analyze
