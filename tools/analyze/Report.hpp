#pragma once

#include "Checks.hpp"
#include "Model.hpp"

#include <iosfwd>
#include <vector>

namespace crocco::analyze {

/// Human-readable listing: one `file:line: [RULE] message` per finding,
/// followed by a per-rule summary. Suppressed findings are printed only
/// when `showSuppressed` (tagged `[suppressed]`).
void writeText(std::ostream& os, const std::vector<Finding>& findings,
               bool showSuppressed);

/// Machine-readable dump of every finding (suppressed ones carry
/// "suppressed": true) plus per-rule counts.
void writeJson(std::ostream& os, const std::vector<Finding>& findings);

/// SARIF 2.1.0: rules from ruleCatalog(), one result per finding;
/// suppressed findings carry an inline suppression object, so SARIF
/// viewers show them greyed out rather than dropped.
void writeSarif(std::ostream& os, const std::vector<Finding>& findings);

/// The generated docs/deck-keys.md registry (a table of every queried deck
/// key and where it is read). Written by --write-deck-registry and compared
/// verbatim by check A3's companion CI step.
void writeDeckRegistry(std::ostream& os, const std::vector<DeckKeyUse>& keys);

} // namespace crocco::analyze
