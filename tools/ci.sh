#!/usr/bin/env bash
# Full CI sweep: the crocco-analyze lane (static analysis + deck-key
# registry drift), the Release tier-1 suite, the CROCCO_CHECK
# instrumentation suite, and the sanitizer suite — each in its own build
# tree so configurations never contaminate each other.
#
#   tools/ci.sh            # run everything
#   SKIP_SANITIZE=1 tools/ci.sh   # skip the (slow) sanitizer lane
set -eu
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

echo "== analyze (crocco-analyze, SARIF artifact) =="
# Gate: the analyzer must come back clean (inline-suppressed findings are
# fine, anything else fails). The SARIF log is the reviewable artifact.
ANALYZE_FLAGS="--sarif crocco-analyze.sarif" tools/lint.sh
# The committed deck-key registry must match the query sites in the code.
build-analyze/tools/analyze/crocco-analyze --root . --write-deck-registry >/dev/null
if ! git diff --exit-code -- docs/deck-keys.md; then
    echo "ci: docs/deck-keys.md is stale — commit the regenerated registry"
    exit 1
fi

echo "== tier-1 (Release) =="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci -j "$JOBS" >/dev/null
(cd build-ci && ctest --output-on-failure)

echo "== fault-injection soak (ctest -L resilience) =="
# The seeded comm-fault campaign: every fault kind injected and recovered,
# plus the mid-run rank-death soak with regrids (comm_recovery_test).
(cd build-ci && ctest -L resilience --output-on-failure)

echo "== SDC chaos lane (seed matrix over ctest -R sdc_soak) =="
# The combined chaos soak (SDC + message faults + rank death) re-run under
# several campaign seeds: every seed must drive the recovery ladder back to
# a bitwise-identical trajectory. The default seed (2026) already ran in
# the resilience lane above.
for seed in 7 1234 90210; do
    echo "-- CROCCO_SDC_SEED=$seed"
    (cd build-ci && CROCCO_SDC_SEED=$seed ctest -R sdc_soak --output-on-failure)
done

echo "== perf benches (BENCH_PR2 + BENCH_PR4 + BENCH_PR6 + BENCH_PR7 + BENCH_PR9 + BENCH_PR10) =="
bench/run_bench.sh build-ci BENCH_PR2.json
bench/run_bench_pr4.sh build-ci BENCH_PR4.json
bench/run_bench_pr6.sh build-ci BENCH_PR6.json
bench/run_bench_pr7.sh build-ci BENCH_PR7.json
bench/run_bench_pr9.sh build-ci BENCH_PR9.json
bench/run_bench_pr10.sh build-ci BENCH_PR10.json

echo "== CroccoCheck (Release + CROCCO_CHECK) =="
cmake -B build-ci-check -S . -DCMAKE_BUILD_TYPE=Release -DCROCCO_CHECK=ON \
      -DCROCCO_BUILD_BENCH=OFF -DCROCCO_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-ci-check -j "$JOBS" >/dev/null
(cd build-ci-check && ctest -L check --output-on-failure)

if [ "${SKIP_SANITIZE:-0}" != "1" ]; then
    echo "== sanitizers (ASan + UBSan) =="
    cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=Debug -DCROCCO_SANITIZE=ON \
          -DCROCCO_BUILD_BENCH=OFF -DCROCCO_BUILD_EXAMPLES=OFF >/dev/null
    cmake --build build-ci-asan -j "$JOBS" >/dev/null
    (cd build-ci-asan && ctest -L check --output-on-failure)
fi

echo "== CI OK =="
