#!/usr/bin/env bash
# CroccoCheck source lint: repo-specific rules that keep the correctness
# instrumentation effective (docs/correctness.md), plus clang-tidy when the
# toolchain provides it. Run from the repo root (`make lint` does).
#
# Rules:
#   R1  No new `.data()` raw-pointer escapes outside the allowlist. Raw
#       pointers bypass the checked Array4 accessors, so every escape must
#       be a reviewed idiom (fab storage owner, WENO line buffers, binary
#       I/O of plain vectors).
#   R2  No std::thread / <thread> / OpenMP outside src/gpu/. All parallelism
#       routes through the ThreadPool so the race detector sees it.
#   R3  No defaulted ghost-count parameters (`...Grow = 0`). Call sites must
#       state how many ghost layers a copy touches; silent defaults caused
#       valid-region copies where ghost copies were intended.
#   R4  No amr::forEachCell in the flux/transport kernel files. Kernels
#       iterate through gpu::ParallelFor so thread scaling and the race
#       detector cover them.
#   R5  Every fillBoundaryBegin / FillPatch...Begin in src/ must have a
#       matching End in the same file (per-file count parity). A Begin whose
#       End never runs leaves the exchange permanently in flight; the next
#       Begin aborts at runtime, but the lint catches the mismatch at review
#       time.
#   R6  No raw isend/irecv outside SimComm itself and MultiFab's async
#       exchange. Raw posts bypass the hardened-exchange policy (CRC stamp,
#       receive timeout, bounded retransmit, NACK-on-corruption), so a fault
#       injected on such a message would be silent. New p2p traffic must go
#       through MultiFab or SimComm::sendVerified, or extend the allowlist
#       after wiring the same verification in.
set -u
cd "$(dirname "$0")/.."

fail=0
report() { # report <rule> <matches>
    if [ -n "$2" ]; then
        echo "lint: $1 violated:"
        echo "$2" | sed 's/^/  /'
        fail=1
    fi
}

# R1: .data() escapes. Allowlist is file-granular — extend it only after
# review (the point is making new escapes show up here).
R1_ALLOW='^src/(amr/FArrayBox\.(cpp|hpp)|core/Weno\.cpp|core/CroccoAmr\.cpp|chem/Reaction\.cpp|mesh/CoordStore\.cpp|resilience/RestartManager\.cpp):'
r1=$(grep -rn '\.data()' src/ --include='*.cpp' --include='*.hpp' \
     | grep -Ev "$R1_ALLOW" || true)
report "R1 (.data() escape outside allowlist)" "$r1"

# R2: threading primitives outside the pool.
r2=$(grep -rnE '#include <thread>|std::thread\b|#pragma omp|#include <omp\.h>' \
     src/ --include='*.cpp' --include='*.hpp' \
     | grep -v '^src/gpu/ThreadPool\.' \
     | grep -v '^[^:]*:[0-9]*: *//' || true)
report "R2 (threading primitive outside src/gpu/ThreadPool)" "$r2"

# R3: defaulted ghost counts in declarations (matches parameters like
# `int dstNGrow = 0,`; member initializers end with `;` or `{`).
r3=$(grep -rnE 'Grow = 0[,)]' src/ --include='*.hpp' || true)
report "R3 (defaulted ghost-count parameter)" "$r3"

# R4: serial cell loops inside kernel files.
r4=$(grep -n 'forEachCell' src/core/Weno.cpp src/core/Viscous.cpp \
     src/core/Sgs.cpp src/core/Rans.cpp src/core/SpeciesTransport.cpp \
     2>/dev/null || true)
report "R4 (forEachCell in kernel file)" "$r4"

# R5: Begin/End pairing of the async exchange, per file. Counts call sites
# of each Begin entry point against its End in the same file; declarations
# and definitions in the amr/ sources that implement the API are skipped
# (tests deliberately misuse the API, so only src/ is scanned).
r5=""
for pair in "fillBoundaryBegin fillBoundaryEnd" \
            "FillPatchSingleLevelBegin FillPatchSingleLevelEnd" \
            "FillPatchTwoLevelsBegin FillPatchTwoLevelsEnd"; do
    begin=${pair% *}
    end=${pair#* }
    for f in $(grep -rlE "$begin|$end" src/ --include='*.cpp' 2>/dev/null \
               | grep -v '^src/amr/'); do
        nb=$(grep -cE "\b$begin\(" "$f" || true)
        ne=$(grep -cE "\b$end\(" "$f" || true)
        if [ "$nb" != "$ne" ]; then
            r5="$r5
$f: $nb $begin vs $ne $end"
        fi
    done
done
r5=$(echo "$r5" | sed '/^$/d')
report "R5 (async exchange Begin without matching End)" "$r5"

# R6: raw nonblocking posts outside the hardened-exchange implementation.
# Allowlist is file-granular: SimComm owns the API, MultiFab's async
# exchange is the one reviewed caller (it stamps CRCs and verifies at End).
R6_ALLOW='^src/(parallel/SimComm\.(cpp|hpp)|amr/MultiFab\.cpp):'
r6=$(grep -rnE '\b(isend|irecv)\s*\(' src/ --include='*.cpp' --include='*.hpp' \
     | grep -Ev "$R6_ALLOW" \
     | grep -v '^[^:]*:[0-9]*: *//' || true)
report "R6 (raw isend/irecv outside the verified exchange)" "$r6"

# R7: open-coded RK3 stage-update triples. The mult + saxpy + saxpy chain
# (G <- A*G + dt*dU; U <- U + B*G) lives in core::rk3StageUpdate only —
# that is where the fused kernel (core.fused) and the seed sequence are
# kept bitwise-aligned. Any other src/ file spelling the triple against
# the Rk3 coefficients bypasses the fusion and the R7 contract.
r7=$(grep -rnE '(\.mult\(Rk3::|saxpy\([^)]*Rk3::)' src/ \
     --include='*.cpp' --include='*.hpp' \
     | grep -v '^src/core/Rk3\.cpp:' \
     | grep -v '^[^:]*:[0-9]*: *//' || true)
report "R7 (raw mult/saxpy RK3 stage triple outside core::rk3StageUpdate)" "$r7"

# clang-tidy (optional): uses .clang-tidy at the repo root. Needs a compile
# database; generate one on demand in build-tidy/ if a compiler is around.
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f build-tidy/compile_commands.json ]; then
        cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
              -DCROCCO_BUILD_BENCH=OFF -DCROCCO_BUILD_EXAMPLES=OFF \
              >/dev/null
    fi
    if ! clang-tidy -p build-tidy --quiet $(git ls-files 'src/*.cpp'); then
        echo "lint: clang-tidy reported findings"
        fail=1
    fi
else
    echo "lint: clang-tidy not found; skipping static-analysis pass"
fi

if [ "$fail" -eq 0 ]; then
    echo "lint: OK"
fi
exit "$fail"
