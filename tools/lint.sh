#!/usr/bin/env bash
# Source lint driver. The rules themselves live in the crocco-analyze
# static analyzer (tools/analyze/, built by the root CMake): token-aware
# re-implementations of the original grep rules R1–R7 plus the
# whole-program passes A1–A4. See docs/correctness.md for the full rule
# catalogue and the `// crocco-analyze:allow(<rule>): reason` suppression
# syntax that replaced the old file-granular grep allowlists.
#
# This script only (1) builds the analyzer, (2) runs it over the repo,
# (3) runs clang-tidy when the toolchain provides it. Run from the repo
# root (`make lint` does).
set -eu
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
BUILD=${ANALYZE_BUILD:-build-analyze}

# Build (or reuse) the analyzer. The configure step is cached: a build tree
# that already has a generated CMakeCache is not reconfigured.
if [ ! -f "$BUILD/CMakeCache.txt" ]; then
    cmake -B "$BUILD" -S . -DCROCCO_BUILD_TESTS=OFF -DCROCCO_BUILD_BENCH=OFF \
          -DCROCCO_BUILD_EXAMPLES=OFF >/dev/null
fi
cmake --build "$BUILD" --target crocco-analyze -j "$JOBS" >/dev/null

fail=0
if ! "$BUILD"/tools/analyze/crocco-analyze --root . ${ANALYZE_FLAGS:-}; then
    fail=1
fi

# clang-tidy: uses the pinned check list in .clang-tidy at the repo root.
# Needs a compile database; generate one on demand in build-tidy/. The lane
# is BLOCKING when clang-tidy is available (the check list is pinned, so a
# toolchain upgrade cannot spring new checks on the tree) and skipped with
# a notice when it is not.
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f build-tidy/compile_commands.json ]; then
        cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
              -DCROCCO_BUILD_BENCH=OFF -DCROCCO_BUILD_EXAMPLES=OFF \
              >/dev/null
    fi
    if ! clang-tidy -p build-tidy --quiet $(git ls-files 'src/*.cpp'); then
        echo "lint: clang-tidy reported findings"
        fail=1
    fi
else
    echo "lint: clang-tidy not found; skipping static-analysis pass"
fi

if [ "$fail" -eq 0 ]; then
    echo "lint: OK"
fi
exit "$fail"
