// Grid-convergence study on the isentropic vortex: the standard
// verification exercise for a high-order solver. Sweeps resolutions, prints
// the L2 density error against the exact advected-vortex solution and the
// observed order of accuracy for both WENO schemes — the quantitative
// backdrop to §II-A's accuracy claims.
//
// Usage: convergence_study [tEnd]
#include "problems/Canonical.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace crocco;

namespace {

double l2Error(const problems::IsentropicVortex& v, core::CroccoAmr& solver) {
    const auto& U = solver.state(0);
    const auto& X = solver.coords(0);
    double err2 = 0.0;
    std::int64_t cells = 0;
    for (int f = 0; f < U.numFabs(); ++f) {
        auto a = U.const_array(f);
        auto x = X.const_array(f);
        amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
            const auto ex = v.exact(x(i, j, k, 0), x(i, j, k, 1), x(i, j, k, 2),
                                    solver.time());
            const double d = a(i, j, k, core::URHO) - ex[core::URHO];
            err2 += d * d;
            ++cells;
        });
    }
    return std::sqrt(err2 / static_cast<double>(cells));
}

} // namespace

int main(int argc, char** argv) {
    const double tEnd = argc > 1 ? std::atof(argv[1]) : 0.25;
    std::printf("isentropic vortex, L2 density error at t = %.2f\n\n", tEnd);
    std::printf("%6s | %12s %8s | %12s %8s\n", "N", "WENO5-JS", "order",
                "WENO-SYMBO", "order");

    double prevJs = 0, prevSy = 0;
    int prevN = 0;
    for (int n : {16, 24, 32, 48}) {
        double errs[2];
        for (int s = 0; s < 2; ++s) {
            problems::IsentropicVortex v(n);
            auto cfg = v.solverConfig();
            cfg.scheme = s == 0 ? core::WenoScheme::JS5 : core::WenoScheme::Symbo;
            core::CroccoAmr solver(v.geometry(), cfg, v.mapping());
            solver.init(v.initialCondition(), nullptr);
            while (solver.time() < tEnd) solver.step();
            errs[s] = l2Error(v, solver);
        }
        if (prevN == 0) {
            std::printf("%6d | %12.4e %8s | %12.4e %8s\n", n, errs[0], "-",
                        errs[1], "-");
        } else {
            const double r = std::log(static_cast<double>(n) / prevN);
            std::printf("%6d | %12.4e %8.2f | %12.4e %8.2f\n", n, errs[0],
                        std::log(prevJs / errs[0]) / r, errs[1],
                        std::log(prevSy / errs[1]) / r);
        }
        prevJs = errs[0];
        prevSy = errs[1];
        prevN = n;
    }
    std::printf("\nWENO5-JS shows ~3rd-order solution convergence at these\n");
    std::printf("resolutions (component-wise LF splitting limits the observable\n");
    std::printf("rate); SYMBO trades some smooth-flow order for the shock-robust\n");
    std::printf("relative-smoothness limiter its Mach-10 target demands.\n");
    return 0;
}
