// Supersonic flow over a compression ramp on a grid-fitted curvilinear mesh
// — the geometry class CRoCCo's curvilinear capability exists for (§III-C:
// "compression corners, re-entry vehicles and other complex geometries").
//
// A Mach 3 stream meets a ramp of `angle` degrees; the steady solution has
// an attached oblique shock whose strength is known from theta-beta-Mach
// theory. We run to (approximate) steady state with AMR tagging the shock
// and compare the measured post-shock density ratio with the exact value.
//
// Usage: compression_ramp [angleDeg] [nsteps]
#include "core/CroccoAmr.hpp"
#include "mesh/Mapping.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace crocco;
using core::NCONS;

namespace {

constexpr double kGamma = 1.4;
constexpr double kMach = 3.0;

std::array<double, NCONS> inflowState() {
    const double rho = 1.4, p = 1.0; // a = 1, so u = Mach
    const double u = kMach;
    return {rho, rho * u, 0.0, 0.0,
            p / (kGamma - 1.0) + 0.5 * rho * u * u};
}

/// Oblique-shock angle beta for deflection theta at Mach M (Newton solve of
/// the theta-beta-M relation), and the resulting density ratio.
double shockAngle(double thetaRad) {
    double beta = thetaRad + std::asin(1.0 / kMach); // weak-shock guess
    for (int it = 0; it < 100; ++it) {
        const double m2 = kMach * kMach;
        const double f = std::tan(thetaRad) -
                         2.0 / std::tan(beta) * (m2 * std::sin(beta) * std::sin(beta) - 1.0) /
                             (m2 * (kGamma + std::cos(2 * beta)) + 2.0);
        const double h = 1e-7;
        const double fp =
            (std::tan(thetaRad) -
             2.0 / std::tan(beta + h) *
                 (m2 * std::sin(beta + h) * std::sin(beta + h) - 1.0) /
                 (m2 * (kGamma + std::cos(2 * (beta + h))) + 2.0) -
             f) /
            h;
        beta -= f / fp;
    }
    return beta;
}

double densityRatio(double beta) {
    const double m1n = kMach * std::sin(beta);
    return (kGamma + 1) * m1n * m1n / ((kGamma - 1) * m1n * m1n + 2);
}

} // namespace

int main(int argc, char** argv) {
    const double angle = argc > 1 ? std::atof(argv[1]) : 12.0;
    const int nsteps = argc > 2 ? std::atoi(argv[2]) : 60;
    const double theta = angle * M_PI / 180.0;

    // Grid-fitted ramp: corner at 30% of the streamwise extent.
    const std::array<double, 3> lo{0, 0, 0}, hi{3.0, 1.5, 0.4};
    auto mapping = std::make_shared<mesh::RampMapping>(lo, hi, angle, 0.3);

    amr::Periodicity per;
    per.periodic[2] = true;
    const amr::Geometry geom(
        amr::Box(amr::IntVect::zero(), amr::IntVect{95, 31, 7}), {0, 0, 0},
        {1, 1, 1}, per);

    core::CroccoAmr::Config cfg;
    cfg.amrInfo.maxLevel = 1;
    cfg.amrInfo.blockingFactor = 8;
    cfg.amrInfo.maxGridSize = 32;
    cfg.cfl = 0.4;
    cfg.regridFreq = 6;
    cfg.tagging = {core::TagCriterion::DensityGradient, 0.15};
    cfg.interp = core::InterpChoice::Curvilinear;

    // Boundary conditions: supersonic inflow left, outflow right and top,
    // slip wall below (reflecting about the *local* wall tangent — the
    // ramp's deflected normal past the corner), spanwise periodic.
    const auto inflow = inflowState();
    const double cornerX = lo[0] + 0.3 * (hi[0] - lo[0]);
    auto bc = [=](amr::MultiFab& mf, const amr::Geometry& g, amr::Real) {
        const auto& domain = g.domain();
        for (int f = 0; f < mf.numFabs(); ++f) {
            auto a = mf.array(f);
            const amr::Box grown = mf.grownBox(f);
            amr::forEachCell(core::ghostRegionOutside(grown, domain, 0, 0),
                             [&](int i, int j, int k) {
                                 for (int n = 0; n < NCONS; ++n)
                                     a(i, j, k, n) = inflow[static_cast<std::size_t>(n)];
                             });
            for (int side : {1}) {
                amr::forEachCell(
                    core::ghostRegionOutside(grown, domain, 0, side),
                    [&](int i, int j, int k) {
                        for (int n = 0; n < NCONS; ++n)
                            a(i, j, k, n) = a(domain.bigEnd(0), j, k, n);
                    });
            }
            amr::forEachCell(core::ghostRegionOutside(grown, domain, 1, 1),
                             [&](int i, int j, int k) {
                                 for (int n = 0; n < NCONS; ++n)
                                     a(i, j, k, n) = a(i, domain.bigEnd(1), k, n);
                             });
            // Slip wall: mirror in index space, reflect momentum about the
            // local wall normal.
            amr::forEachCell(
                core::ghostRegionOutside(grown, domain, 1, 0),
                [&](int i, int j, int k) {
                    const int jm = 2 * domain.smallEnd(1) - 1 - j;
                    for (int n = 0; n < NCONS; ++n) a(i, j, k, n) = a(i, jm, k, n);
                    const double x =
                        lo[0] + (i + 0.5) / domain.length(0) * (hi[0] - lo[0]);
                    const double slope = x > cornerX ? theta : 0.0;
                    const double nx = -std::sin(slope), ny = std::cos(slope);
                    const double mdotn = a(i, j, k, core::UMX) * nx +
                                         a(i, j, k, core::UMY) * ny;
                    a(i, j, k, core::UMX) -= 2 * mdotn * nx;
                    a(i, j, k, core::UMY) -= 2 * mdotn * ny;
                });
        }
    };

    core::CroccoAmr solver(geom, cfg, mapping);
    solver.init(
        [&](double, double, double) { return inflowState(); }, bc);

    std::printf("Mach %.1f flow over a %.0f-degree compression ramp\n", kMach,
                angle);
    for (int s = 0; s < nsteps; ++s) solver.step();

    // Measure the post-shock density on the ramp surface well past the
    // corner, where the oblique shock solution holds.
    double rhoWall = 0.0;
    int samples = 0;
    const auto& U = solver.state(0);
    const auto& X = solver.coords(0);
    for (int f = 0; f < U.numFabs(); ++f) {
        auto a = U.const_array(f);
        auto x = X.const_array(f);
        amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
            if (j != 0 || k != 0) return;
            if (x(i, j, k, 0) < cornerX + 0.8 || x(i, j, k, 0) > hi[0] - 0.3)
                return;
            rhoWall += a(i, j, k, core::URHO);
            ++samples;
        });
    }
    rhoWall /= samples;

    const double beta = shockAngle(theta);
    const double exactRatio = densityRatio(beta);
    std::printf("\noblique-shock theory: beta = %.1f deg, rho2/rho1 = %.3f\n",
                beta * 180 / M_PI, exactRatio);
    std::printf("measured on ramp surface: rho2/rho1 = %.3f (%.1f%% off)\n",
                rhoWall / 1.4, 100.0 * std::abs(rhoWall / 1.4 - exactRatio) / exactRatio);
    std::printf("AMR: %lld active points, finest level %d tracks the shock\n",
                static_cast<long long>(solver.totalPoints()), solver.finestLevel());
    return 0;
}
