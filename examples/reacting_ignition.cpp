// Reacting-flow demonstration: the multispecies terms of the paper's Eq. 1
// (species transport rho_s u_j, production rates w_s, formation-enthalpy
// heat release) running operator-split with the WENO flow solver.
//
// A hot spot ignites a premixed H2/O2/N2 pocket carried by a uniform
// stream in a periodic box: each step advances (1) the bulk flow, (2)
// species advection on the bulk mass flux, (3) point chemistry, whose heat
// release feeds back into the flow's total energy. Prints temperature and
// product histories; total species mass is conserved to round-off.
//
// Usage: reacting_ignition [nsteps]
#include "chem/Reaction.hpp"
#include "core/ComputeDt.hpp"
#include "core/Rk3.hpp"
#include "core/SpeciesTransport.hpp"
#include "core/Weno.hpp"
#include "mesh/CoordStore.hpp"
#include "mesh/GridMetrics.hpp"

#include <cstdio>
#include <cstdlib>

using namespace crocco;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;
using core::NCONS;

int main(int argc, char** argv) {
    const int nsteps = argc > 1 ? std::atoi(argv[1]) : 40;
    const int n = 24;

    auto mech = chem::ReactionMechanism::hydrogenOxygen();
    const auto& thermo = mech.thermo();
    const int ns = thermo.nSpecies();
    const int iH2 = thermo.indexOf("H2"), iO2 = thermo.indexOf("O2");
    const int iH2O = thermo.indexOf("H2O"), iN2 = thermo.indexOf("N2");

    // Flow gas model in SI-ish units consistent with the thermo table.
    core::GasModel gas;
    gas.Rgas = 297.0; // ~N2-dominated mixture
    gas.gamma = 1.4;

    const amr::Geometry geom(Box(IntVect::zero(), IntVect(n - 1)), {0, 0, 0},
                             {1, 1, 1}, amr::Periodicity::all());
    auto mapping = std::make_shared<mesh::UniformMapping>(
        std::array<double, 3>{0, 0, 0}, std::array<double, 3>{0.02, 0.02, 0.02});
    mesh::CoordStore store(mapping, geom, IntVect(2), 0, core::NGHOST + 3);
    const Box grown = geom.domain().grow(core::NGHOST);
    FArrayBox coords(geom.domain().grow(core::NGHOST + 3), 3);
    store.getCoords(coords, 0);
    FArrayBox metrics(grown, mesh::MetricComps);
    mesh::computeMetricsFab(coords.const_array(), metrics.array(), grown,
                            geom.cellSizeArray());

    // Initial condition: quiescent premixed gas, hot Gaussian kernel.
    FArrayBox S(grown, NCONS), rhoY(grown, ns);
    const double u0 = 30.0;
    auto applyPeriodicGhost = [&](FArrayBox& fab, int ncomp) {
        auto a = fab.array();
        amr::forEachCell(grown, [&](int i, int j, int k) {
            const IntVect p{((i % n) + n) % n, ((j % n) + n) % n,
                            ((k % n) + n) % n};
            if (p == IntVect{i, j, k}) return;
            for (int c = 0; c < ncomp; ++c)
                a(i, j, k, c) = a(p[0], p[1], p[2], c);
        });
    };
    {
        auto s = S.array();
        auto ry = rhoY.array();
        amr::forEachCell(geom.domain(), [&](int i, int j, int k) {
            const double x = (i + 0.5) / n - 0.3, y = (j + 0.5) / n - 0.5,
                         z = (k + 0.5) / n - 0.5;
            const double r2 = (x * x + y * y + z * z) / (0.12 * 0.12);
            const double T = 400.0 + 1400.0 * std::exp(-r2);
            const double p0 = 101325.0;
            const double rho = p0 / (gas.Rgas * T);
            s(i, j, k, core::URHO) = rho;
            s(i, j, k, core::UMX) = rho * u0;
            s(i, j, k, core::UMY) = 0.0;
            s(i, j, k, core::UMZ) = 0.0;
            s(i, j, k, core::UEDEN) = gas.totalEnergy(rho, u0, 0, 0, p0);
            ry(i, j, k, iH2) = 0.028 * rho;
            ry(i, j, k, iO2) = 0.224 * rho;
            ry(i, j, k, iN2) = 0.748 * rho;
            ry(i, j, k, iH2O) = 0.0;
            ry(i, j, k, thermo.indexOf("OH")) = 0.0;
        });
        applyPeriodicGhost(S, NCONS);
        applyPeriodicGhost(rhoY, ns);
    }

    auto total = [&](const FArrayBox& fab, int c) {
        return fab.sum(geom.domain(), c);
    };
    const double massH0 =
        total(rhoY, iH2) + total(rhoY, iH2O) * 2.016 / 18.016;

    std::printf("%6s %10s %10s %12s %12s\n", "step", "time(us)", "Tmax",
                "H2O mass", "H-mass err");
    double t = 0.0;
    for (int step = 0; step < nsteps; ++step) {
        const double dt = 0.5 * core::computeDtFab(
                              S.const_array(), metrics.const_array(),
                              geom.domain(), geom.cellSizeArray(), gas, 0.8);
        // (1)+(2) advect flow and species with one forward-Euler transport
        // substep (the demonstration focuses on the coupling, not order).
        FArrayBox dU(geom.domain(), NCONS, 0.0), dY(geom.domain(), ns, 0.0);
        for (int dir = 0; dir < 3; ++dir) {
            core::wenoFlux(dir, S.const_array(), metrics.const_array(),
                           geom.domain(), dU.array(), geom.cellSize(dir), gas,
                           core::WenoScheme::Symbo, core::KernelVariant::Portable);
            core::speciesAdvectFlux(dir, S.const_array(), rhoY.const_array(),
                                    metrics.const_array(), geom.domain(),
                                    dY.array(), geom.cellSize(dir), gas,
                                    core::WenoScheme::Symbo);
        }
        S.saxpy(dt, dU, geom.domain(), 0, 0, NCONS);
        rhoY.saxpy(dt, dY, geom.domain(), 0, 0, ns);
        applyPeriodicGhost(S, NCONS);
        applyPeriodicGhost(rhoY, ns);

        // (3) point chemistry with heat-release feedback into E.
        auto s = S.array();
        auto ry = rhoY.array();
        amr::forEachCell(geom.domain(), [&](int i, int j, int k) {
            std::vector<double> rs(static_cast<std::size_t>(ns));
            for (int c = 0; c < ns; ++c) rs[static_cast<std::size_t>(c)] = ry(i, j, k, c);
            const double rho = s(i, j, k, core::URHO);
            const double rinv = 1.0 / rho;
            const double ke = 0.5 * rinv *
                              (s(i, j, k, core::UMX) * s(i, j, k, core::UMX) +
                               s(i, j, k, core::UMY) * s(i, j, k, core::UMY) +
                               s(i, j, k, core::UMZ) * s(i, j, k, core::UMZ));
            double T = gas.temperature(
                rho, gas.pressure(rho, s(i, j, k, core::UMX) * rinv,
                                  s(i, j, k, core::UMY) * rinv,
                                  s(i, j, k, core::UMZ) * rinv,
                                  s(i, j, k, core::UEDEN)));
            const double chem0 = [&] {
                double c = 0.0;
                for (int sp = 0; sp < ns; ++sp)
                    c += rs[static_cast<std::size_t>(sp)] *
                         thermo.species(sp).hFormation;
                return c;
            }();
            mech.advance(rs.data(), T, dt);
            double chem1 = 0.0;
            for (int sp = 0; sp < ns; ++sp) {
                ry(i, j, k, sp) = rs[static_cast<std::size_t>(sp)];
                chem1 += rs[static_cast<std::size_t>(sp)] *
                         thermo.species(sp).hFormation;
            }
            // The flow's E is sensible + kinetic for the gamma-law gas;
            // exothermic reactions (chem1 < chem0) convert formation
            // enthalpy into sensible heat, raising E directly.
            s(i, j, k, core::UEDEN) += (chem0 - chem1);
            (void)ke;
            (void)T;
        });
        applyPeriodicGhost(S, NCONS);
        applyPeriodicGhost(rhoY, ns);
        t += dt;

        if (step % 8 == 0 || step == nsteps - 1) {
            double tmax = 0.0;
            auto sc = S.const_array();
            amr::forEachCell(geom.domain(), [&](int i, int j, int k) {
                const double rinv = 1.0 / sc(i, j, k, core::URHO);
                const double p = gas.pressure(
                    sc(i, j, k, core::URHO), sc(i, j, k, core::UMX) * rinv,
                    sc(i, j, k, core::UMY) * rinv, sc(i, j, k, core::UMZ) * rinv,
                    sc(i, j, k, core::UEDEN));
                tmax = std::max(tmax, gas.temperature(sc(i, j, k, core::URHO), p));
            });
            const double massH = total(rhoY, iH2) +
                                 total(rhoY, iH2O) * 2.016 / 18.016;
            std::printf("%6d %10.2f %10.1f %12.4e %12.2e\n", step + 1, t * 1e6,
                        tmax, total(rhoY, iH2O),
                        std::abs(massH - massH0) / massH0);
        }
    }
    std::printf("\nH2O forms fastest in the hot kernel; elemental hydrogen mass\n");
    std::printf("is conserved through transport + chemistry to round-off.\n");
    return 0;
}
