// Watch the AMR machinery work: a Sod shock tube with one refinement level
// whose grids chase the shock, contact, and rarefaction as they spread.
// Each regrid interval prints an ASCII strip of which x-columns the fine
// level covers, plus grid statistics — Algorithm 1's Regrid() in action.
//
// Usage: amr_adaptivity [nsteps]
#include "problems/Canonical.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace crocco;

int main(int argc, char** argv) {
    const int nsteps = argc > 1 ? std::atoi(argv[1]) : 48;

    problems::SodTube sod(/*nx=*/64);
    auto cfg = sod.solverConfig(/*amr=*/true);
    cfg.regridFreq = 4;
    core::CroccoAmr solver(sod.geometry(), cfg, sod.mapping());
    solver.init(sod.initialCondition(), sod.boundaryConditions());

    std::printf("Sod shock tube, 64 base cells + 1 AMR level (regrid every %d)\n",
                cfg.regridFreq);
    std::printf("each row: fine-level coverage along x ('#' refined)\n\n");
    std::printf("%6s %9s %7s %6s  %s\n", "step", "time", "pts", "boxes",
                "fine-level coverage");

    for (int s = 0; s <= nsteps; ++s) {
        if (s % cfg.regridFreq == 0) {
            std::string strip(64, '.');
            if (solver.finestLevel() >= 1) {
                for (int i = 0; i < 64; ++i) {
                    if (solver.boxArray(1).contains(amr::IntVect{2 * i, 8, 8}))
                        strip[static_cast<std::size_t>(i)] = '#';
                }
            }
            const int boxes =
                solver.finestLevel() >= 1 ? solver.boxArray(1).size() : 0;
            std::printf("%6d %9.4f %7lld %6d  %s\n", solver.stepCount(),
                        solver.time(), static_cast<long long>(solver.totalPoints()),
                        boxes, strip.c_str());
        }
        if (s < nsteps) solver.step();
    }

    std::printf("\nThe refined band splits and spreads with the three waves\n");
    std::printf("(rarefaction left, contact and shock right), and the total\n");
    std::printf("active points stay far below the %lld of a uniform fine grid.\n",
                static_cast<long long>(solver.equivalentPoints()));
    return 0;
}
