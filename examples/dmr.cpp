// The paper's test case (§V-B, Fig. 2): 3-D double Mach reflection of a
// Mach 10 shock on general curvilinear coordinates with three-level
// block-structured AMR — CRoCCo v2.0 end to end.
//
// Runs the full Algorithm 1 loop (Regrid / ComputeDt / RK3 with FillPatch,
// BC_Fill, WENOx/y/z, Viscous, AverageDown), reports the AMR hierarchy as it
// tracks the moving shock, writes a density z-slice to dmr_density.csv
// (Fig. 2's contour data), and prints the TinyProfiler region table
// (Fig. 6's measured analog on this host).
//
// Usage: dmr [nsteps] [maxLevel] [deck.inputs]
//
// The optional AMReX-style input deck (see examples/dmr.inputs) overrides
// the solver configuration: CFL, WENO scheme, reconstruction, interpolator,
// tagging, AMR parameters.
#include "io/ParmParse.hpp"
#include "problems/Dmr.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace crocco;

int main(int argc, char** argv) {
    const int nsteps = argc > 1 ? std::atoi(argv[1]) : 20;
    const int maxLevel = argc > 2 ? std::atoi(argv[2]) : 2;

    problems::Dmr::Options opts;
    opts.nx = 96;
    opts.ny = 24;
    opts.nz = 8;
    opts.maxLevel = maxLevel;
    opts.curvilinear = true;
    problems::Dmr dmr(opts);

    auto cfg = dmr.solverConfig(core::CodeVersion::V20);
    cfg.regridFreq = 4;
    if (argc > 3) {
        io::ParmParse pp;
        pp.parseFile(argv[3]);
        cfg = pp.makeConfig(cfg);
        for (const auto& key : pp.unusedKeys())
            std::fprintf(stderr, "warning: unused deck key '%s'\n", key.c_str());
    }
    core::CroccoAmr solver(dmr.geometry(), cfg, dmr.mapping());
    solver.init(dmr.initialCondition(), dmr.boundaryConditions());

    std::printf("double Mach reflection: %dx%dx%d base grid, %d AMR levels,\n",
                opts.nx, opts.ny, opts.nz, solver.finestLevel() + 1);
    std::printf("curvilinear grid, Mach 10 shock, CFL %.2f\n\n", cfg.cfl);
    std::printf("%6s %10s %10s %12s %10s %8s\n", "step", "time", "dt",
                "active pts", "reduction", "levels");
    for (int s = 0; s < nsteps; ++s) {
        solver.step();
        if (s % 4 == 0 || s == nsteps - 1) {
            const double red =
                100.0 * (1.0 - static_cast<double>(solver.totalPoints()) /
                                   static_cast<double>(solver.equivalentPoints()));
            std::printf("%6d %10.5f %10.2e %12lld %9.1f%% %8d\n",
                        solver.stepCount(), solver.time(), solver.lastDt(),
                        static_cast<long long>(solver.totalPoints()), red,
                        solver.finestLevel() + 1);
        }
    }

    // Fig. 2 analog: density on the k = 0 slice of the finest data
    // available at each (i, j), in physical coordinates.
    std::ofstream csv("dmr_density.csv");
    csv << "x,y,level,rho\n";
    for (int lev = solver.finestLevel(); lev >= 0; --lev) {
        const auto& U = solver.state(lev);
        const auto& X = solver.coords(lev);
        for (int f = 0; f < U.numFabs(); ++f) {
            auto a = U.const_array(f);
            auto x = X.const_array(f);
            amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
                if (k != 0) return;
                // Skip cells covered by a finer level (counted there).
                if (lev < solver.finestLevel() &&
                    solver.boxArray(lev + 1).contains(
                        amr::IntVect{2 * i, 2 * j, 0}))
                    return;
                csv << x(i, j, k, 0) << ',' << x(i, j, k, 1) << ',' << lev << ','
                    << a(i, j, k, core::URHO) << '\n';
            });
        }
    }
    std::printf("\nwrote dmr_density.csv (density contour data, Fig. 2 analog)\n");

    std::printf("\ndensity range: [%.3f, %.3f] (pre-shock 1.4, post-shock 8.0,\n",
                solver.state(0).min(core::URHO), solver.state(0).max(core::URHO));
    std::printf("Mach-stem compression raises the maximum well above 8)\n");
    std::printf("\nTinyProfiler regions (measured on this host):\n%s",
                solver.profiler().table().c_str());
    return 0;
}
