// Quickstart: the smallest complete CRoCCo v2.0 program.
//
// Sets up the Sod shock tube on a uniform grid, advances it with the
// WENO-SYMBO + RK3 solver, and prints the density profile against the exact
// Riemann solution. Shows the three-call API: construct a problem, construct
// the solver, init + evolve.
#include "problems/Canonical.hpp"
#include "problems/Riemann.hpp"

#include <cstdio>

using namespace crocco;

int main() {
    // 1. A canonical problem bundles geometry, gas model, initial condition
    //    and boundary conditions.
    problems::SodTube sod(/*nx=*/64);

    // 2. The solver drives Algorithm 1 (Regrid / ComputeDt / RK3) over the
    //    AMR hierarchy; here AMR is disabled for simplicity.
    core::CroccoAmr solver(sod.geometry(), sod.solverConfig(/*amr=*/false),
                           sod.mapping());
    solver.init(sod.initialCondition(), sod.boundaryConditions());

    // 3. March to t = 0.15.
    while (solver.time() < 0.15) solver.step();
    std::printf("advanced %d steps to t = %.4f (last dt = %.2e)\n\n",
                solver.stepCount(), solver.time(), solver.lastDt());

    // Compare the centerline density with the exact solution.
    const problems::RiemannState left{1.0, 0.0, 1.0}, right{0.125, 0.0, 0.1};
    std::printf("%8s %12s %12s\n", "x", "rho (CRoCCo)", "rho (exact)");
    const auto& U = solver.state(0);
    for (int f = 0; f < U.numFabs(); ++f) {
        auto a = U.const_array(f);
        amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
            if (j != 4 || k != 4 || i % 4 != 0) return;
            const double x = (i + 0.5) / 64.0;
            const auto exact =
                problems::exactRiemann(left, right, 1.4, (x - 0.5) / solver.time());
            std::printf("%8.4f %12.5f %12.5f\n", x, a(i, j, k, core::URHO),
                        exact.rho);
        });
    }

    std::printf("\nwall-clock profile:\n%s", solver.profiler().table().c_str());
    return 0;
}
