file(REMOVE_RECURSE
  "CMakeFiles/crocco_mesh.dir/CoordStore.cpp.o"
  "CMakeFiles/crocco_mesh.dir/CoordStore.cpp.o.d"
  "CMakeFiles/crocco_mesh.dir/GridMetrics.cpp.o"
  "CMakeFiles/crocco_mesh.dir/GridMetrics.cpp.o.d"
  "CMakeFiles/crocco_mesh.dir/Mapping.cpp.o"
  "CMakeFiles/crocco_mesh.dir/Mapping.cpp.o.d"
  "libcrocco_mesh.a"
  "libcrocco_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
