file(REMOVE_RECURSE
  "libcrocco_mesh.a"
)
