# Empty dependencies file for crocco_mesh.
# This may be replaced when dependencies are built.
