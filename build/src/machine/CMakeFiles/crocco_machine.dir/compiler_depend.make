# Empty compiler generated dependencies file for crocco_machine.
# This may be replaced when dependencies are built.
