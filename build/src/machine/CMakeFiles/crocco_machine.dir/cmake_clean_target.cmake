file(REMOVE_RECURSE
  "libcrocco_machine.a"
)
