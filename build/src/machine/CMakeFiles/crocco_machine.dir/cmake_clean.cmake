file(REMOVE_RECURSE
  "CMakeFiles/crocco_machine.dir/FailureModel.cpp.o"
  "CMakeFiles/crocco_machine.dir/FailureModel.cpp.o.d"
  "CMakeFiles/crocco_machine.dir/NetworkModel.cpp.o"
  "CMakeFiles/crocco_machine.dir/NetworkModel.cpp.o.d"
  "CMakeFiles/crocco_machine.dir/ScalingSimulator.cpp.o"
  "CMakeFiles/crocco_machine.dir/ScalingSimulator.cpp.o.d"
  "CMakeFiles/crocco_machine.dir/SummitMachine.cpp.o"
  "CMakeFiles/crocco_machine.dir/SummitMachine.cpp.o.d"
  "libcrocco_machine.a"
  "libcrocco_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
