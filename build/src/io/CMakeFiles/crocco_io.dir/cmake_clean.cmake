file(REMOVE_RECURSE
  "CMakeFiles/crocco_io.dir/ParmParse.cpp.o"
  "CMakeFiles/crocco_io.dir/ParmParse.cpp.o.d"
  "CMakeFiles/crocco_io.dir/Plotfile.cpp.o"
  "CMakeFiles/crocco_io.dir/Plotfile.cpp.o.d"
  "libcrocco_io.a"
  "libcrocco_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
