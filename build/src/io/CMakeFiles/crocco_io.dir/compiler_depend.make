# Empty compiler generated dependencies file for crocco_io.
# This may be replaced when dependencies are built.
