file(REMOVE_RECURSE
  "libcrocco_io.a"
)
