# Empty compiler generated dependencies file for crocco_problems.
# This may be replaced when dependencies are built.
