file(REMOVE_RECURSE
  "CMakeFiles/crocco_problems.dir/Canonical.cpp.o"
  "CMakeFiles/crocco_problems.dir/Canonical.cpp.o.d"
  "CMakeFiles/crocco_problems.dir/Dmr.cpp.o"
  "CMakeFiles/crocco_problems.dir/Dmr.cpp.o.d"
  "CMakeFiles/crocco_problems.dir/Riemann.cpp.o"
  "CMakeFiles/crocco_problems.dir/Riemann.cpp.o.d"
  "libcrocco_problems.a"
  "libcrocco_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
