file(REMOVE_RECURSE
  "libcrocco_problems.a"
)
