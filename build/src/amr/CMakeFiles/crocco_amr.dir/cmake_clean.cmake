file(REMOVE_RECURSE
  "CMakeFiles/crocco_amr.dir/AmrCore.cpp.o"
  "CMakeFiles/crocco_amr.dir/AmrCore.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/Box.cpp.o"
  "CMakeFiles/crocco_amr.dir/Box.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/BoxArray.cpp.o"
  "CMakeFiles/crocco_amr.dir/BoxArray.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/BoxList.cpp.o"
  "CMakeFiles/crocco_amr.dir/BoxList.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/Cluster.cpp.o"
  "CMakeFiles/crocco_amr.dir/Cluster.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/DistributionMapping.cpp.o"
  "CMakeFiles/crocco_amr.dir/DistributionMapping.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/FArrayBox.cpp.o"
  "CMakeFiles/crocco_amr.dir/FArrayBox.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/FillPatch.cpp.o"
  "CMakeFiles/crocco_amr.dir/FillPatch.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/Geometry.cpp.o"
  "CMakeFiles/crocco_amr.dir/Geometry.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/Interpolater.cpp.o"
  "CMakeFiles/crocco_amr.dir/Interpolater.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/Morton.cpp.o"
  "CMakeFiles/crocco_amr.dir/Morton.cpp.o.d"
  "CMakeFiles/crocco_amr.dir/MultiFab.cpp.o"
  "CMakeFiles/crocco_amr.dir/MultiFab.cpp.o.d"
  "libcrocco_amr.a"
  "libcrocco_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
