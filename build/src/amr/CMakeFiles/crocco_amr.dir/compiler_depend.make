# Empty compiler generated dependencies file for crocco_amr.
# This may be replaced when dependencies are built.
