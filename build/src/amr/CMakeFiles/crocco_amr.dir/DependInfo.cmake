
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/AmrCore.cpp" "src/amr/CMakeFiles/crocco_amr.dir/AmrCore.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/AmrCore.cpp.o.d"
  "/root/repo/src/amr/Box.cpp" "src/amr/CMakeFiles/crocco_amr.dir/Box.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/Box.cpp.o.d"
  "/root/repo/src/amr/BoxArray.cpp" "src/amr/CMakeFiles/crocco_amr.dir/BoxArray.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/BoxArray.cpp.o.d"
  "/root/repo/src/amr/BoxList.cpp" "src/amr/CMakeFiles/crocco_amr.dir/BoxList.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/BoxList.cpp.o.d"
  "/root/repo/src/amr/Cluster.cpp" "src/amr/CMakeFiles/crocco_amr.dir/Cluster.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/Cluster.cpp.o.d"
  "/root/repo/src/amr/DistributionMapping.cpp" "src/amr/CMakeFiles/crocco_amr.dir/DistributionMapping.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/DistributionMapping.cpp.o.d"
  "/root/repo/src/amr/FArrayBox.cpp" "src/amr/CMakeFiles/crocco_amr.dir/FArrayBox.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/FArrayBox.cpp.o.d"
  "/root/repo/src/amr/FillPatch.cpp" "src/amr/CMakeFiles/crocco_amr.dir/FillPatch.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/FillPatch.cpp.o.d"
  "/root/repo/src/amr/Geometry.cpp" "src/amr/CMakeFiles/crocco_amr.dir/Geometry.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/Geometry.cpp.o.d"
  "/root/repo/src/amr/Interpolater.cpp" "src/amr/CMakeFiles/crocco_amr.dir/Interpolater.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/Interpolater.cpp.o.d"
  "/root/repo/src/amr/Morton.cpp" "src/amr/CMakeFiles/crocco_amr.dir/Morton.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/Morton.cpp.o.d"
  "/root/repo/src/amr/MultiFab.cpp" "src/amr/CMakeFiles/crocco_amr.dir/MultiFab.cpp.o" "gcc" "src/amr/CMakeFiles/crocco_amr.dir/MultiFab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/crocco_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
