file(REMOVE_RECURSE
  "libcrocco_amr.a"
)
