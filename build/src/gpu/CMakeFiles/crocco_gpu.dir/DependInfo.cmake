
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/Arena.cpp" "src/gpu/CMakeFiles/crocco_gpu.dir/Arena.cpp.o" "gcc" "src/gpu/CMakeFiles/crocco_gpu.dir/Arena.cpp.o.d"
  "/root/repo/src/gpu/DeviceModel.cpp" "src/gpu/CMakeFiles/crocco_gpu.dir/DeviceModel.cpp.o" "gcc" "src/gpu/CMakeFiles/crocco_gpu.dir/DeviceModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/crocco_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/crocco_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
