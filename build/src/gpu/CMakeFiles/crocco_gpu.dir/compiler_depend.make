# Empty compiler generated dependencies file for crocco_gpu.
# This may be replaced when dependencies are built.
