file(REMOVE_RECURSE
  "libcrocco_gpu.a"
)
