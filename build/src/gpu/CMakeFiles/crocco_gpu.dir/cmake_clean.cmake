file(REMOVE_RECURSE
  "CMakeFiles/crocco_gpu.dir/Arena.cpp.o"
  "CMakeFiles/crocco_gpu.dir/Arena.cpp.o.d"
  "CMakeFiles/crocco_gpu.dir/DeviceModel.cpp.o"
  "CMakeFiles/crocco_gpu.dir/DeviceModel.cpp.o.d"
  "libcrocco_gpu.a"
  "libcrocco_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
