# Empty dependencies file for crocco_resilience.
# This may be replaced when dependencies are built.
