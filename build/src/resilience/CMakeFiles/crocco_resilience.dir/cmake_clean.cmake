file(REMOVE_RECURSE
  "CMakeFiles/crocco_resilience.dir/Crc32.cpp.o"
  "CMakeFiles/crocco_resilience.dir/Crc32.cpp.o.d"
  "CMakeFiles/crocco_resilience.dir/FaultInjector.cpp.o"
  "CMakeFiles/crocco_resilience.dir/FaultInjector.cpp.o.d"
  "CMakeFiles/crocco_resilience.dir/Health.cpp.o"
  "CMakeFiles/crocco_resilience.dir/Health.cpp.o.d"
  "CMakeFiles/crocco_resilience.dir/RestartManager.cpp.o"
  "CMakeFiles/crocco_resilience.dir/RestartManager.cpp.o.d"
  "CMakeFiles/crocco_resilience.dir/StateValidator.cpp.o"
  "CMakeFiles/crocco_resilience.dir/StateValidator.cpp.o.d"
  "libcrocco_resilience.a"
  "libcrocco_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
