file(REMOVE_RECURSE
  "libcrocco_resilience.a"
)
