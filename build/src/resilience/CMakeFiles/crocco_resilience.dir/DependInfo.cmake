
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resilience/Crc32.cpp" "src/resilience/CMakeFiles/crocco_resilience.dir/Crc32.cpp.o" "gcc" "src/resilience/CMakeFiles/crocco_resilience.dir/Crc32.cpp.o.d"
  "/root/repo/src/resilience/FaultInjector.cpp" "src/resilience/CMakeFiles/crocco_resilience.dir/FaultInjector.cpp.o" "gcc" "src/resilience/CMakeFiles/crocco_resilience.dir/FaultInjector.cpp.o.d"
  "/root/repo/src/resilience/Health.cpp" "src/resilience/CMakeFiles/crocco_resilience.dir/Health.cpp.o" "gcc" "src/resilience/CMakeFiles/crocco_resilience.dir/Health.cpp.o.d"
  "/root/repo/src/resilience/RestartManager.cpp" "src/resilience/CMakeFiles/crocco_resilience.dir/RestartManager.cpp.o" "gcc" "src/resilience/CMakeFiles/crocco_resilience.dir/RestartManager.cpp.o.d"
  "/root/repo/src/resilience/StateValidator.cpp" "src/resilience/CMakeFiles/crocco_resilience.dir/StateValidator.cpp.o" "gcc" "src/resilience/CMakeFiles/crocco_resilience.dir/StateValidator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/crocco_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/crocco_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/crocco_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
