file(REMOVE_RECURSE
  "CMakeFiles/crocco_core.dir/BCFill.cpp.o"
  "CMakeFiles/crocco_core.dir/BCFill.cpp.o.d"
  "CMakeFiles/crocco_core.dir/ComputeDt.cpp.o"
  "CMakeFiles/crocco_core.dir/ComputeDt.cpp.o.d"
  "CMakeFiles/crocco_core.dir/CroccoAmr.cpp.o"
  "CMakeFiles/crocco_core.dir/CroccoAmr.cpp.o.d"
  "CMakeFiles/crocco_core.dir/Eigen.cpp.o"
  "CMakeFiles/crocco_core.dir/Eigen.cpp.o.d"
  "CMakeFiles/crocco_core.dir/KernelProfiles.cpp.o"
  "CMakeFiles/crocco_core.dir/KernelProfiles.cpp.o.d"
  "CMakeFiles/crocco_core.dir/Rans.cpp.o"
  "CMakeFiles/crocco_core.dir/Rans.cpp.o.d"
  "CMakeFiles/crocco_core.dir/Sgs.cpp.o"
  "CMakeFiles/crocco_core.dir/Sgs.cpp.o.d"
  "CMakeFiles/crocco_core.dir/SpeciesTransport.cpp.o"
  "CMakeFiles/crocco_core.dir/SpeciesTransport.cpp.o.d"
  "CMakeFiles/crocco_core.dir/Tagging.cpp.o"
  "CMakeFiles/crocco_core.dir/Tagging.cpp.o.d"
  "CMakeFiles/crocco_core.dir/Viscous.cpp.o"
  "CMakeFiles/crocco_core.dir/Viscous.cpp.o.d"
  "CMakeFiles/crocco_core.dir/Weno.cpp.o"
  "CMakeFiles/crocco_core.dir/Weno.cpp.o.d"
  "libcrocco_core.a"
  "libcrocco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
