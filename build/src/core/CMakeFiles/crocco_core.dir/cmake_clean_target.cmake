file(REMOVE_RECURSE
  "libcrocco_core.a"
)
