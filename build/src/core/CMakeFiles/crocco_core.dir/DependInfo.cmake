
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BCFill.cpp" "src/core/CMakeFiles/crocco_core.dir/BCFill.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/BCFill.cpp.o.d"
  "/root/repo/src/core/ComputeDt.cpp" "src/core/CMakeFiles/crocco_core.dir/ComputeDt.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/ComputeDt.cpp.o.d"
  "/root/repo/src/core/CroccoAmr.cpp" "src/core/CMakeFiles/crocco_core.dir/CroccoAmr.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/CroccoAmr.cpp.o.d"
  "/root/repo/src/core/Eigen.cpp" "src/core/CMakeFiles/crocco_core.dir/Eigen.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/Eigen.cpp.o.d"
  "/root/repo/src/core/KernelProfiles.cpp" "src/core/CMakeFiles/crocco_core.dir/KernelProfiles.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/KernelProfiles.cpp.o.d"
  "/root/repo/src/core/Rans.cpp" "src/core/CMakeFiles/crocco_core.dir/Rans.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/Rans.cpp.o.d"
  "/root/repo/src/core/Sgs.cpp" "src/core/CMakeFiles/crocco_core.dir/Sgs.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/Sgs.cpp.o.d"
  "/root/repo/src/core/SpeciesTransport.cpp" "src/core/CMakeFiles/crocco_core.dir/SpeciesTransport.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/SpeciesTransport.cpp.o.d"
  "/root/repo/src/core/Tagging.cpp" "src/core/CMakeFiles/crocco_core.dir/Tagging.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/Tagging.cpp.o.d"
  "/root/repo/src/core/Viscous.cpp" "src/core/CMakeFiles/crocco_core.dir/Viscous.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/Viscous.cpp.o.d"
  "/root/repo/src/core/Weno.cpp" "src/core/CMakeFiles/crocco_core.dir/Weno.cpp.o" "gcc" "src/core/CMakeFiles/crocco_core.dir/Weno.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/crocco_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/crocco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/crocco_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/crocco_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/crocco_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/crocco_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
