# Empty compiler generated dependencies file for crocco_core.
# This may be replaced when dependencies are built.
