# Empty compiler generated dependencies file for crocco_perf.
# This may be replaced when dependencies are built.
