file(REMOVE_RECURSE
  "CMakeFiles/crocco_perf.dir/TinyProfiler.cpp.o"
  "CMakeFiles/crocco_perf.dir/TinyProfiler.cpp.o.d"
  "libcrocco_perf.a"
  "libcrocco_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
