file(REMOVE_RECURSE
  "libcrocco_perf.a"
)
