# Empty dependencies file for crocco_chem.
# This may be replaced when dependencies are built.
