file(REMOVE_RECURSE
  "libcrocco_chem.a"
)
