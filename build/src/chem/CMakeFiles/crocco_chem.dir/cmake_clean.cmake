file(REMOVE_RECURSE
  "CMakeFiles/crocco_chem.dir/Reaction.cpp.o"
  "CMakeFiles/crocco_chem.dir/Reaction.cpp.o.d"
  "CMakeFiles/crocco_chem.dir/Thermo.cpp.o"
  "CMakeFiles/crocco_chem.dir/Thermo.cpp.o.d"
  "libcrocco_chem.a"
  "libcrocco_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
