file(REMOVE_RECURSE
  "CMakeFiles/crocco_parallel.dir/SimComm.cpp.o"
  "CMakeFiles/crocco_parallel.dir/SimComm.cpp.o.d"
  "libcrocco_parallel.a"
  "libcrocco_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crocco_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
