file(REMOVE_RECURSE
  "libcrocco_parallel.a"
)
