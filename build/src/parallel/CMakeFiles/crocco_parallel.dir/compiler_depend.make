# Empty compiler generated dependencies file for crocco_parallel.
# This may be replaced when dependencies are built.
