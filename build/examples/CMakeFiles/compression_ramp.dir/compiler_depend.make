# Empty compiler generated dependencies file for compression_ramp.
# This may be replaced when dependencies are built.
