file(REMOVE_RECURSE
  "CMakeFiles/compression_ramp.dir/compression_ramp.cpp.o"
  "CMakeFiles/compression_ramp.dir/compression_ramp.cpp.o.d"
  "compression_ramp"
  "compression_ramp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_ramp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
