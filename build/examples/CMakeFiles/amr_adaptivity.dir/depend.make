# Empty dependencies file for amr_adaptivity.
# This may be replaced when dependencies are built.
