file(REMOVE_RECURSE
  "CMakeFiles/amr_adaptivity.dir/amr_adaptivity.cpp.o"
  "CMakeFiles/amr_adaptivity.dir/amr_adaptivity.cpp.o.d"
  "amr_adaptivity"
  "amr_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
