# Empty dependencies file for reacting_ignition.
# This may be replaced when dependencies are built.
