file(REMOVE_RECURSE
  "CMakeFiles/reacting_ignition.dir/reacting_ignition.cpp.o"
  "CMakeFiles/reacting_ignition.dir/reacting_ignition.cpp.o.d"
  "reacting_ignition"
  "reacting_ignition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reacting_ignition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
