# Empty dependencies file for dmr.
# This may be replaced when dependencies are built.
