file(REMOVE_RECURSE
  "CMakeFiles/dmr.dir/dmr.cpp.o"
  "CMakeFiles/dmr.dir/dmr.cpp.o.d"
  "dmr"
  "dmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
