# Empty dependencies file for table1_weak_configs.
# This may be replaced when dependencies are built.
