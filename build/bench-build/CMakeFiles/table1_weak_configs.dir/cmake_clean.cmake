file(REMOVE_RECURSE
  "../bench/table1_weak_configs"
  "../bench/table1_weak_configs.pdb"
  "CMakeFiles/table1_weak_configs.dir/table1_weak_configs.cpp.o"
  "CMakeFiles/table1_weak_configs.dir/table1_weak_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_weak_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
