file(REMOVE_RECURSE
  "../bench/fig6_region_profile"
  "../bench/fig6_region_profile.pdb"
  "CMakeFiles/fig6_region_profile.dir/fig6_region_profile.cpp.o"
  "CMakeFiles/fig6_region_profile.dir/fig6_region_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_region_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
