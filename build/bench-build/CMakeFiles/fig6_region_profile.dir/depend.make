# Empty dependencies file for fig6_region_profile.
# This may be replaced when dependencies are built.
