file(REMOVE_RECURSE
  "../bench/fig1_amr_hierarchy"
  "../bench/fig1_amr_hierarchy.pdb"
  "CMakeFiles/fig1_amr_hierarchy.dir/fig1_amr_hierarchy.cpp.o"
  "CMakeFiles/fig1_amr_hierarchy.dir/fig1_amr_hierarchy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_amr_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
