# Empty dependencies file for fig7_fillpatch_profile.
# This may be replaced when dependencies are built.
