file(REMOVE_RECURSE
  "../bench/fig7_fillpatch_profile"
  "../bench/fig7_fillpatch_profile.pdb"
  "CMakeFiles/fig7_fillpatch_profile.dir/fig7_fillpatch_profile.cpp.o"
  "CMakeFiles/fig7_fillpatch_profile.dir/fig7_fillpatch_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fillpatch_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
