file(REMOVE_RECURSE
  "../bench/ablation_coordstore"
  "../bench/ablation_coordstore.pdb"
  "CMakeFiles/ablation_coordstore.dir/ablation_coordstore.cpp.o"
  "CMakeFiles/ablation_coordstore.dir/ablation_coordstore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coordstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
