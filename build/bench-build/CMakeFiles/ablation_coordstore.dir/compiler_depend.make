# Empty compiler generated dependencies file for ablation_coordstore.
# This may be replaced when dependencies are built.
