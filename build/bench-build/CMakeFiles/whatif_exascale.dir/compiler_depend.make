# Empty compiler generated dependencies file for whatif_exascale.
# This may be replaced when dependencies are built.
