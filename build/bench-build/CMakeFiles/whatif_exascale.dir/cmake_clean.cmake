file(REMOVE_RECURSE
  "../bench/whatif_exascale"
  "../bench/whatif_exascale.pdb"
  "CMakeFiles/whatif_exascale.dir/whatif_exascale.cpp.o"
  "CMakeFiles/whatif_exascale.dir/whatif_exascale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_exascale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
