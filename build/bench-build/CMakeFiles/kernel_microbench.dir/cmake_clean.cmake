file(REMOVE_RECURSE
  "../bench/kernel_microbench"
  "../bench/kernel_microbench.pdb"
  "CMakeFiles/kernel_microbench.dir/kernel_microbench.cpp.o"
  "CMakeFiles/kernel_microbench.dir/kernel_microbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
