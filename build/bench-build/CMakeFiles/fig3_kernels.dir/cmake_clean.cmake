file(REMOVE_RECURSE
  "../bench/fig3_kernels"
  "../bench/fig3_kernels.pdb"
  "CMakeFiles/fig3_kernels.dir/fig3_kernels.cpp.o"
  "CMakeFiles/fig3_kernels.dir/fig3_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
