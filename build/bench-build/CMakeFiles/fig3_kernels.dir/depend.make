# Empty dependencies file for fig3_kernels.
# This may be replaced when dependencies are built.
