# Empty dependencies file for fig5_weak_scaling.
# This may be replaced when dependencies are built.
