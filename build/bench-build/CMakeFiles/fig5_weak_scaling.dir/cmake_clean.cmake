file(REMOVE_RECURSE
  "../bench/fig5_weak_scaling"
  "../bench/fig5_weak_scaling.pdb"
  "CMakeFiles/fig5_weak_scaling.dir/fig5_weak_scaling.cpp.o"
  "CMakeFiles/fig5_weak_scaling.dir/fig5_weak_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
