file(REMOVE_RECURSE
  "../bench/fig4_roofline"
  "../bench/fig4_roofline.pdb"
  "CMakeFiles/fig4_roofline.dir/fig4_roofline.cpp.o"
  "CMakeFiles/fig4_roofline.dir/fig4_roofline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
