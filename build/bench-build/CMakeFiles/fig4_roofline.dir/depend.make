# Empty dependencies file for fig4_roofline.
# This may be replaced when dependencies are built.
