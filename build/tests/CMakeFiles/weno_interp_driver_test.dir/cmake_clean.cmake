file(REMOVE_RECURSE
  "CMakeFiles/weno_interp_driver_test.dir/core/weno_interp_driver_test.cpp.o"
  "CMakeFiles/weno_interp_driver_test.dir/core/weno_interp_driver_test.cpp.o.d"
  "weno_interp_driver_test"
  "weno_interp_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weno_interp_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
