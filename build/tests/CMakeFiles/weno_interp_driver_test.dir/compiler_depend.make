# Empty compiler generated dependencies file for weno_interp_driver_test.
# This may be replaced when dependencies are built.
