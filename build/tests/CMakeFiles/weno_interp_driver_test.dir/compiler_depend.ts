# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for weno_interp_driver_test.
