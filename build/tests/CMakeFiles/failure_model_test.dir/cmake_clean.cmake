file(REMOVE_RECURSE
  "CMakeFiles/failure_model_test.dir/machine/failure_model_test.cpp.o"
  "CMakeFiles/failure_model_test.dir/machine/failure_model_test.cpp.o.d"
  "failure_model_test"
  "failure_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
