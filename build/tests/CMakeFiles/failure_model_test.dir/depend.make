# Empty dependencies file for failure_model_test.
# This may be replaced when dependencies are built.
