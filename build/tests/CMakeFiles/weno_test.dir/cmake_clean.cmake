file(REMOVE_RECURSE
  "CMakeFiles/weno_test.dir/core/weno_test.cpp.o"
  "CMakeFiles/weno_test.dir/core/weno_test.cpp.o.d"
  "weno_test"
  "weno_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weno_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
