# Empty compiler generated dependencies file for weno_test.
# This may be replaced when dependencies are built.
