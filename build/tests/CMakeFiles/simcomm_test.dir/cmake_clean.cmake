file(REMOVE_RECURSE
  "CMakeFiles/simcomm_test.dir/parallel/simcomm_test.cpp.o"
  "CMakeFiles/simcomm_test.dir/parallel/simcomm_test.cpp.o.d"
  "simcomm_test"
  "simcomm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcomm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
