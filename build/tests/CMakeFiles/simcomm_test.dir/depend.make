# Empty dependencies file for simcomm_test.
# This may be replaced when dependencies are built.
