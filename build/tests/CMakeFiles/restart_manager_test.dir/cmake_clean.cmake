file(REMOVE_RECURSE
  "CMakeFiles/restart_manager_test.dir/resilience/restart_manager_test.cpp.o"
  "CMakeFiles/restart_manager_test.dir/resilience/restart_manager_test.cpp.o.d"
  "restart_manager_test"
  "restart_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
