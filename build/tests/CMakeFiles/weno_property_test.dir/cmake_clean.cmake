file(REMOVE_RECURSE
  "CMakeFiles/weno_property_test.dir/core/weno_property_test.cpp.o"
  "CMakeFiles/weno_property_test.dir/core/weno_property_test.cpp.o.d"
  "weno_property_test"
  "weno_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weno_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
