# Empty compiler generated dependencies file for weno_property_test.
# This may be replaced when dependencies are built.
