# Empty compiler generated dependencies file for sgs_checkpoint_test.
# This may be replaced when dependencies are built.
