file(REMOVE_RECURSE
  "CMakeFiles/sgs_checkpoint_test.dir/core/sgs_checkpoint_test.cpp.o"
  "CMakeFiles/sgs_checkpoint_test.dir/core/sgs_checkpoint_test.cpp.o.d"
  "sgs_checkpoint_test"
  "sgs_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgs_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
