file(REMOVE_RECURSE
  "CMakeFiles/chem_test.dir/chem/chem_test.cpp.o"
  "CMakeFiles/chem_test.dir/chem/chem_test.cpp.o.d"
  "chem_test"
  "chem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
