# Empty dependencies file for chem_test.
# This may be replaced when dependencies are built.
