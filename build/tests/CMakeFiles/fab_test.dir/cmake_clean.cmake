file(REMOVE_RECURSE
  "CMakeFiles/fab_test.dir/amr/fab_test.cpp.o"
  "CMakeFiles/fab_test.dir/amr/fab_test.cpp.o.d"
  "fab_test"
  "fab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
