# Empty dependencies file for fab_test.
# This may be replaced when dependencies are built.
