# Empty compiler generated dependencies file for coordstore_test.
# This may be replaced when dependencies are built.
