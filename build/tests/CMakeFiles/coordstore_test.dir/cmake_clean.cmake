file(REMOVE_RECURSE
  "CMakeFiles/coordstore_test.dir/mesh/coordstore_test.cpp.o"
  "CMakeFiles/coordstore_test.dir/mesh/coordstore_test.cpp.o.d"
  "coordstore_test"
  "coordstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
