# Empty dependencies file for solver_units_test.
# This may be replaced when dependencies are built.
