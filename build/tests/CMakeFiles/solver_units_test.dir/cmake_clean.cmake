file(REMOVE_RECURSE
  "CMakeFiles/solver_units_test.dir/core/solver_units_test.cpp.o"
  "CMakeFiles/solver_units_test.dir/core/solver_units_test.cpp.o.d"
  "solver_units_test"
  "solver_units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
