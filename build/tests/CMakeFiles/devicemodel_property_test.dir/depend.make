# Empty dependencies file for devicemodel_property_test.
# This may be replaced when dependencies are built.
