file(REMOVE_RECURSE
  "CMakeFiles/devicemodel_property_test.dir/gpu/devicemodel_property_test.cpp.o"
  "CMakeFiles/devicemodel_property_test.dir/gpu/devicemodel_property_test.cpp.o.d"
  "devicemodel_property_test"
  "devicemodel_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devicemodel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
