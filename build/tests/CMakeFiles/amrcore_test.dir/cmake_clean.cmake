file(REMOVE_RECURSE
  "CMakeFiles/amrcore_test.dir/amr/amrcore_test.cpp.o"
  "CMakeFiles/amrcore_test.dir/amr/amrcore_test.cpp.o.d"
  "amrcore_test"
  "amrcore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
