# Empty compiler generated dependencies file for amrcore_test.
# This may be replaced when dependencies are built.
