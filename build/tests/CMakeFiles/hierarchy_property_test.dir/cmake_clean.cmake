file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_property_test.dir/machine/hierarchy_property_test.cpp.o"
  "CMakeFiles/hierarchy_property_test.dir/machine/hierarchy_property_test.cpp.o.d"
  "hierarchy_property_test"
  "hierarchy_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
