file(REMOVE_RECURSE
  "CMakeFiles/dmr_bc_test.dir/problems/dmr_bc_test.cpp.o"
  "CMakeFiles/dmr_bc_test.dir/problems/dmr_bc_test.cpp.o.d"
  "dmr_bc_test"
  "dmr_bc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_bc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
