# Empty dependencies file for dmr_bc_test.
# This may be replaced when dependencies are built.
