file(REMOVE_RECURSE
  "CMakeFiles/parmparse_test.dir/io/parmparse_test.cpp.o"
  "CMakeFiles/parmparse_test.dir/io/parmparse_test.cpp.o.d"
  "parmparse_test"
  "parmparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
