# Empty compiler generated dependencies file for parmparse_test.
# This may be replaced when dependencies are built.
