# Empty compiler generated dependencies file for rans_mfiter_test.
# This may be replaced when dependencies are built.
