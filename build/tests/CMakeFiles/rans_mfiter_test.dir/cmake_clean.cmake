file(REMOVE_RECURSE
  "CMakeFiles/rans_mfiter_test.dir/core/rans_mfiter_test.cpp.o"
  "CMakeFiles/rans_mfiter_test.dir/core/rans_mfiter_test.cpp.o.d"
  "rans_mfiter_test"
  "rans_mfiter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rans_mfiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
