# Empty dependencies file for fillpatch_test.
# This may be replaced when dependencies are built.
