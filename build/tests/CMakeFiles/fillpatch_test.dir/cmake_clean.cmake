file(REMOVE_RECURSE
  "CMakeFiles/fillpatch_test.dir/amr/fillpatch_test.cpp.o"
  "CMakeFiles/fillpatch_test.dir/amr/fillpatch_test.cpp.o.d"
  "fillpatch_test"
  "fillpatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fillpatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
