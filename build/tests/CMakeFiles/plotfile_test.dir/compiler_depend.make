# Empty compiler generated dependencies file for plotfile_test.
# This may be replaced when dependencies are built.
