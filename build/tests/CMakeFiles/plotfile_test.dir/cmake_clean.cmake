file(REMOVE_RECURSE
  "CMakeFiles/plotfile_test.dir/io/plotfile_test.cpp.o"
  "CMakeFiles/plotfile_test.dir/io/plotfile_test.cpp.o.d"
  "plotfile_test"
  "plotfile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plotfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
