# Empty dependencies file for viscous_test.
# This may be replaced when dependencies are built.
