file(REMOVE_RECURSE
  "CMakeFiles/viscous_test.dir/core/viscous_test.cpp.o"
  "CMakeFiles/viscous_test.dir/core/viscous_test.cpp.o.d"
  "viscous_test"
  "viscous_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viscous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
