file(REMOVE_RECURSE
  "CMakeFiles/plotfile_curvilinear_test.dir/io/plotfile_curvilinear_test.cpp.o"
  "CMakeFiles/plotfile_curvilinear_test.dir/io/plotfile_curvilinear_test.cpp.o.d"
  "plotfile_curvilinear_test"
  "plotfile_curvilinear_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plotfile_curvilinear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
