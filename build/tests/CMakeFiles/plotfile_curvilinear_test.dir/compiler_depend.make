# Empty compiler generated dependencies file for plotfile_curvilinear_test.
# This may be replaced when dependencies are built.
