file(REMOVE_RECURSE
  "CMakeFiles/riemann_test.dir/problems/riemann_test.cpp.o"
  "CMakeFiles/riemann_test.dir/problems/riemann_test.cpp.o.d"
  "riemann_test"
  "riemann_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riemann_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
