file(REMOVE_RECURSE
  "CMakeFiles/multifab_test.dir/amr/multifab_test.cpp.o"
  "CMakeFiles/multifab_test.dir/amr/multifab_test.cpp.o.d"
  "multifab_test"
  "multifab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multifab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
