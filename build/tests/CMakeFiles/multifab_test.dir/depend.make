# Empty dependencies file for multifab_test.
# This may be replaced when dependencies are built.
