file(REMOVE_RECURSE
  "CMakeFiles/species_transport_test.dir/core/species_transport_test.cpp.o"
  "CMakeFiles/species_transport_test.dir/core/species_transport_test.cpp.o.d"
  "species_transport_test"
  "species_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/species_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
