# Empty compiler generated dependencies file for species_transport_test.
# This may be replaced when dependencies are built.
