
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mesh/mapping_test.cpp" "tests/CMakeFiles/mapping_test.dir/mesh/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/mapping_test.dir/mesh/mapping_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/problems/CMakeFiles/crocco_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/crocco_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/crocco_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/crocco_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crocco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/crocco_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/crocco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/crocco_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/crocco_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/crocco_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/crocco_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
