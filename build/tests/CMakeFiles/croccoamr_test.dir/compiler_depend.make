# Empty compiler generated dependencies file for croccoamr_test.
# This may be replaced when dependencies are built.
