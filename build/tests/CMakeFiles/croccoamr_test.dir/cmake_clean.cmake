file(REMOVE_RECURSE
  "CMakeFiles/croccoamr_test.dir/core/croccoamr_test.cpp.o"
  "CMakeFiles/croccoamr_test.dir/core/croccoamr_test.cpp.o.d"
  "croccoamr_test"
  "croccoamr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/croccoamr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
