file(REMOVE_RECURSE
  "CMakeFiles/boxarray_test.dir/amr/boxarray_test.cpp.o"
  "CMakeFiles/boxarray_test.dir/amr/boxarray_test.cpp.o.d"
  "boxarray_test"
  "boxarray_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boxarray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
