# Empty compiler generated dependencies file for boxarray_test.
# This may be replaced when dependencies are built.
