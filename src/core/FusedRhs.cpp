#include "core/FusedRhs.hpp"

#include "gpu/Gpu.hpp"
#include "mesh/GridMetrics.hpp"

namespace crocco::core::fused {

void computePrimCache(const Array4<const Real>& S,
                      const Array4<const Real>& metrics, const Box& box,
                      const Array4<Real>& cache, const GasModel& gas) {
    gpu::ParallelFor(box, [&](int i, int j, int k) {
        const Prim q = toPrim(S, i, j, k, gas);
        cache(i, j, k, QC_RHO) = q.rho;
        cache(i, j, k, QC_U) = q.u;
        cache(i, j, k, QC_V) = q.v;
        cache(i, j, k, QC_W) = q.w;
        cache(i, j, k, QC_P) = q.p;
        cache(i, j, k, QC_A) = q.a;
        cache(i, j, k, QC_T) = gas.temperature(q.rho, q.p);
        cache(i, j, k, QC_J) = mesh::jacobian(metrics, i, j, k);
    });
}

} // namespace crocco::core::fused
