#include "core/SpeciesTransport.hpp"

#include "amr/FArrayBox.hpp"
#include "gpu/Gpu.hpp"
#include "mesh/GridMetrics.hpp"

#include <cassert>
#include <cmath>

namespace crocco::core {

using amr::FArrayBox;
using amr::IntVect;
using mesh::jacobian;
using mesh::metric1;

void speciesAdvectFlux(int dir, const Array4<const Real>& S,
                       const Array4<const Real>& rhoY,
                       const Array4<const Real>& metrics, const Box& validBox,
                       const Array4<Real>& dRhoY, Real dxi, const GasModel& gas,
                       WenoScheme scheme) {
    assert(dir >= 0 && dir < 3);
    const int ns = rhoY.ncomp;
    const IntVect e = IntVect::basis(dir);

    // Stage A: contravariant volume flux u_hat (per unit rho) and spectral
    // radius at every stencil cell.
    const Box cellBox = validBox.grow(dir, 3);
    FArrayBox scratch(cellBox, 2);
    auto sc = scratch.array();
    gpu::ParallelFor(cellBox, [&](int i, int j, int k) {
        const Prim q = toPrim(S, i, j, k, gas);
        const Real J = jacobian(metrics, i, j, k);
        const Real jm0 = J * metrics(i, j, k, metric1(dir, 0));
        const Real jm1 = J * metrics(i, j, k, metric1(dir, 1));
        const Real jm2 = J * metrics(i, j, k, metric1(dir, 2));
        const Real uhat = jm0 * q.u + jm1 * q.v + jm2 * q.w;
        sc(i, j, k, 0) = uhat;
        sc(i, j, k, 1) =
            std::abs(uhat) + q.a * std::sqrt(jm0 * jm0 + jm1 * jm1 + jm2 * jm2);
    });

    // Stage B: interface fluxes per species.
    const Box faceBox(validBox.smallEnd() - e, validBox.bigEnd());
    FArrayBox flux(faceBox, ns);
    auto fx = flux.array();
    auto scc = scratch.const_array();
    gpu::ParallelFor(faceBox, [&](int i, int j, int k) {
        Real uhat[6], alpha = 0.0;
        for (int l = 0; l < 6; ++l) {
            const int ci = i + (l - 2) * e[0];
            const int cj = j + (l - 2) * e[1];
            const int ck = k + (l - 2) * e[2];
            uhat[l] = scc(ci, cj, ck, 0);
            alpha = std::max(alpha, scc(ci, cj, ck, 1));
        }
        for (int s = 0; s < ns; ++s) {
            Real fp[6], fm[6];
            for (int l = 0; l < 6; ++l) {
                const int ci = i + (l - 2) * e[0];
                const int cj = j + (l - 2) * e[1];
                const int ck = k + (l - 2) * e[2];
                const Real r = rhoY(ci, cj, ck, s);
                fp[l] = 0.5 * (r * uhat[l] + alpha * r);
                fm[5 - l] = 0.5 * (r * uhat[l] - alpha * r);
            }
            fx(i, j, k, s) = wenoReconstruct(fp, scheme) +
                             wenoReconstruct(fm, scheme);
        }
    });

    // Stage C: flux difference.
    auto fxc = flux.const_array();
    gpu::ParallelFor(validBox, [&](int i, int j, int k) {
        const Real scale = 1.0 / (dxi * jacobian(metrics, i, j, k));
        for (int s = 0; s < ns; ++s) {
            dRhoY(i, j, k, s) -=
                scale * (fxc(i, j, k, s) - fxc(i - e[0], j - e[1], k - e[2], s));
        }
    });
}

void speciesDiffuseFlux(const Array4<const Real>& S,
                        const Array4<const Real>& rhoY,
                        const Array4<const Real>& metrics, const Box& validBox,
                        const Array4<Real>& dRhoY,
                        const std::array<Real, 3>& dxi, const GasModel& gas,
                        Real schmidt) {
    assert(gas.viscous() && schmidt > 0.0);
    const int ns = rhoY.ncomp;

    auto d1 = [](const Array4<const Real>& f, int i, int j, int k, int m, int d,
                 Real invdx) {
        const IntVect e = IntVect::basis(d);
        return (-f(i + 2 * e[0], j + 2 * e[1], k + 2 * e[2], m) +
                8.0 * f(i + e[0], j + e[1], k + e[2], m) -
                8.0 * f(i - e[0], j - e[1], k - e[2], m) +
                f(i - 2 * e[0], j - 2 * e[1], k - 2 * e[2], m)) *
               (invdx / 12.0);
    };

    // Pass 0: mass fractions Y_s on the widest region.
    const Box yBox = validBox.grow(4);
    FArrayBox yFab(yBox, ns);
    auto y = yFab.array();
    gpu::ParallelFor(yBox, [&](int i, int j, int k) {
        const Real rinv = 1.0 / S(i, j, k, URHO);
        for (int s = 0; s < ns; ++s) y(i, j, k, s) = rhoY(i, j, k, s) * rinv;
    });

    // Pass 1: contravariant diffusive fluxes J * M^T (mu/Sc) grad Y.
    const Box fluxBox = validBox.grow(2);
    FArrayBox theta(fluxBox, 3 * ns);
    auto th = theta.array();
    auto yc = yFab.const_array();
    gpu::ParallelFor(fluxBox, [&](int i, int j, int k) {
        const Prim q = toPrim(S, i, j, k, gas);
        const Real diffusivity =
            gas.viscosity(gas.temperature(q.rho, q.p)) / schmidt;
        const Real J = jacobian(metrics, i, j, k);
        for (int s = 0; s < ns; ++s) {
            Real gY[3]; // physical gradient of Y_s
            for (int m = 0; m < 3; ++m) {
                gY[m] = 0.0;
                for (int d = 0; d < 3; ++d) {
                    gY[m] += metrics(i, j, k, metric1(d, m)) *
                             d1(yc, i, j, k, s, d,
                                1.0 / dxi[static_cast<std::size_t>(d)]);
                }
            }
            for (int d = 0; d < 3; ++d) {
                Real t = 0.0;
                for (int m = 0; m < 3; ++m)
                    t += metrics(i, j, k, metric1(d, m)) * gY[m];
                th(i, j, k, 3 * s + d) = J * diffusivity * q.rho * t;
            }
        }
    });

    // Pass 2: divergence.
    auto thc = theta.const_array();
    gpu::ParallelFor(validBox, [&](int i, int j, int k) {
        const Real Jinv = 1.0 / jacobian(metrics, i, j, k);
        for (int s = 0; s < ns; ++s) {
            for (int d = 0; d < 3; ++d) {
                dRhoY(i, j, k, s) +=
                    Jinv * d1(thc, i, j, k, 3 * s + d, d,
                              1.0 / dxi[static_cast<std::size_t>(d)]);
            }
        }
    });
}

} // namespace crocco::core
