#include "core/Tagging.hpp"

#include <cmath>

namespace crocco::core {

using amr::IntVect;

namespace {

/// Max undivided central difference of component n over the three dims.
Real undividedGrad(const Array4<const Real>& a, int i, int j, int k, int n) {
    Real g = 0.0;
    for (int d = 0; d < 3; ++d) {
        const IntVect e = IntVect::basis(d);
        g = std::max(g, std::abs(a(i + e[0], j + e[1], k + e[2], n) -
                                 a(i - e[0], j - e[1], k - e[2], n)) * 0.5);
    }
    return g;
}

} // namespace

void tagCells(const amr::MultiFab& U, const TaggingSpec& spec,
              std::vector<amr::IntVect>& tags) {
    for (int f = 0; f < U.numFabs(); ++f) {
        auto a = U.const_array(f);
        amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
            Real v = 0.0;
            switch (spec.criterion) {
                case TagCriterion::DensityGradient:
                    v = undividedGrad(a, i, j, k, URHO);
                    break;
                case TagCriterion::MomentumGradient:
                    for (int n = UMX; n <= UMZ; ++n)
                        v = std::max(v, undividedGrad(a, i, j, k, n));
                    break;
                case TagCriterion::Vorticity: {
                    // Undivided curl magnitude of velocity.
                    auto vel = [&](int ii, int jj, int kk, int n) {
                        return a(ii, jj, kk, UMX + n) / a(ii, jj, kk, URHO);
                    };
                    auto dd = [&](int n, int d) {
                        const IntVect e = IntVect::basis(d);
                        return 0.5 * (vel(i + e[0], j + e[1], k + e[2], n) -
                                      vel(i - e[0], j - e[1], k - e[2], n));
                    };
                    const Real wx = dd(2, 1) - dd(1, 2);
                    const Real wy = dd(0, 2) - dd(2, 0);
                    const Real wz = dd(1, 0) - dd(0, 1);
                    v = std::sqrt(wx * wx + wy * wy + wz * wz);
                    break;
                }
            }
            if (v > spec.threshold) tags.push_back(IntVect{i, j, k});
        });
    }
}

} // namespace crocco::core
