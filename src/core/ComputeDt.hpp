#pragma once

#include "amr/MultiFab.hpp"
#include "core/State.hpp"

namespace crocco::core {

/// Largest stable timestep of one fab under the CFL condition (Eq. 3,
/// generalized to 3-D curvilinear grids):
///
///   dt = cfl / max_cells sum_d (|u_hat_d| + a*|grad xi_d|) / dxi_d
///
/// where u_hat_d is the contravariant velocity. Runs as a device reduction
/// (amrex::ReduceData pattern, §IV-B).
Real computeDtFab(const Array4<const Real>& S, const Array4<const Real>& metrics,
                  const amr::Box& validBox, const std::array<Real, 3>& dxi,
                  const GasModel& gas, Real cfl);

/// Level-wide ComputeDt: per-rank minima followed by the global
/// ReduceRealMin the paper describes (§III-B) — every patch advances with
/// the same dt.
Real computeDt(const amr::MultiFab& U, const amr::MultiFab& metrics,
               const amr::Geometry& geom, const GasModel& gas, Real cfl);

} // namespace crocco::core
