// crocco-analyze:allow-file(R1): checkpoint serialization streams whole-fab
// payloads; raw pointers feed the CRC32 and byte-level I/O paths.
#include "core/CroccoAmr.hpp"

#include "amr/BoxList.hpp"
#include "amr/CommCache.hpp"
#include "core/KernelProfiles.hpp"
#include "core/Rk3.hpp"
#include "gpu/Arena.hpp"
#include "gpu/Gpu.hpp"
#include "gpu/Stream.hpp"
#include "gpu/ThreadPool.hpp"
#include "mesh/GridMetrics.hpp"
#include "resilience/Crc32.hpp"
#include "resilience/StateValidator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

namespace crocco::core {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::IntVect;
using amr::MultiFab;

CroccoAmr::Config CroccoAmr::Config::forVersion(CodeVersion v) {
    Config c;
    switch (v) {
        case CodeVersion::V10:
            c.variant = KernelVariant::FortranStyle;
            c.amrInfo.maxLevel = 0;
            break;
        case CodeVersion::V11:
            c.variant = KernelVariant::Portable;
            c.amrInfo.maxLevel = 0;
            break;
        case CodeVersion::V12:
        case CodeVersion::V20:
            c.variant = KernelVariant::Portable;
            c.interp = InterpChoice::Curvilinear;
            break;
        case CodeVersion::V21:
            c.variant = KernelVariant::Portable;
            c.interp = InterpChoice::Trilinear;
            break;
    }
    return c;
}

CroccoAmr::CroccoAmr(const amr::Geometry& geom0, const Config& cfg,
                     std::shared_ptr<const mesh::Mapping> mapping,
                     parallel::SimComm* comm)
    : amr::AmrCore(geom0, cfg.amrInfo, cfg.nranks, comm), cfg_(cfg),
      mapping_(std::move(mapping)) {
    // Coordinates carry 3 extra ghost layers beyond the state so the
    // metrics' 4th-order stencils reach (see mesh::computeMetrics).
    coordStore_ = std::make_unique<mesh::CoordStore>(
        mapping_, geom0, cfg.amrInfo.refRatio, cfg.amrInfo.maxLevel, NGHOST + 3,
        cfg.coordMode, cfg.coordFileDir);
    const int nlev = cfg.amrInfo.maxLevel + 1;
    U_.resize(nlev);
    G_.resize(nlev);
    coords_.resize(nlev);
    metrics_.resize(nlev);
    switch (cfg.interp) {
        case InterpChoice::Curvilinear:
            interp_ = std::make_unique<amr::CurvilinearInterp>();
            break;
        case InterpChoice::Trilinear:
            interp_ = std::make_unique<amr::TrilinearInterp>();
            break;
        case InterpChoice::Weno:
            interp_ = std::make_unique<amr::WenoInterp>();
            break;
        case InterpChoice::ConservativeLinear:
            interp_ = std::make_unique<amr::CellConservativeLinear>();
            break;
    }
    // Execution-tuning knobs are process-wide (the thread pool and the comm
    // cache are singletons); the most recently constructed solver wins,
    // which matches the one-solver-per-process usage of every driver.
    gpu::setNumThreads(cfg.gpuNumThreads > 0 ? cfg.gpuNumThreads
                                             : gpu::ThreadPool::defaultNumThreads());
    auto& cache = amr::CommCache::instance();
    cache.setEnabled(cfg.commCache);
    cache.setCapacity(static_cast<std::size_t>(std::max(cfg.commCacheCapacity, 0)));
    cache.attachProfiler(&prof_);
    cache.setAggregate(cfg.commAggregate);
    if (auto* c = this->comm()) {
        // Hardened-exchange policy from the deck (comm.* keys). Zero-valued
        // knobs keep SimComm's defaults so decks without the keys are
        // byte-identical to the seed.
        if (cfg.commTimeout > 0.0) c->setTimeout(cfg.commTimeout);
        if (cfg.commMaxRetransmits > 0)
            c->setMaxRetransmits(cfg.commMaxRetransmits);
        if (cfg.commVerify) c->setVerifyExchanges(true);
    }
}

CroccoAmr::~CroccoAmr() {
    // The cache holds a non-owning pointer to this solver's profiler; drop
    // it before the profiler dies so no later MultiFab call dangles.
    auto& cache = amr::CommCache::instance();
    if (cache.profiler() == &prof_) cache.attachProfiler(nullptr);
}

const amr::Interpolater& CroccoAmr::interpolater() const { return *interp_; }

void CroccoAmr::init(InitFunct initialCondition, amr::PhysBCFunct physBC) {
    init_ = std::move(initialCondition);
    physBC_ = std::move(physBC);
    perf::TinyProfiler::Scope scope(prof_, "InitGrid");
    initGrids(time_);
}

void CroccoAmr::defineLevelData(int lev, const BoxArray& ba,
                                const DistributionMapping& dm) {
    U_[lev].define(ba, dm, NCONS, NGHOST, comm());
    G_[lev].define(ba, dm, NCONS, 0, comm());
    G_[lev].setVal(0.0);
    coords_[lev].define(ba, dm, 3, NGHOST + 3, comm());
    metrics_[lev].define(ba, dm, mesh::MetricComps, NGHOST, comm());
    {
        perf::TinyProfiler::Scope scope(prof_, "InitGridMetrics");
        coordStore_->getCoords(coords_[lev], lev);
        mesh::computeMetrics(coords_[lev], metrics_[lev], geom(lev));
    }
}

void CroccoAmr::makeNewLevelFromScratch(int lev, Real /*time*/, const BoxArray& ba,
                                        const DistributionMapping& dm) {
    defineLevelData(lev, ba, dm);
    perf::TinyProfiler::Scope scope(prof_, "InitFlow");
    assert(init_);
    gpu::ParallelForIndex(U_[lev].numFabs(), [&](int f) {
        auto u = U_[lev].array(f);
        auto x = coords_[lev].const_array(f);
        amr::forEachCell(U_[lev].validBox(f), [&](int i, int j, int k) {
            const auto s = init_(x(i, j, k, 0), x(i, j, k, 1), x(i, j, k, 2));
            for (int n = 0; n < NCONS; ++n) u(i, j, k, n) = s[static_cast<std::size_t>(n)];
        });
    });
}

void CroccoAmr::makeNewLevelFromCoarse(int lev, Real time, const BoxArray& ba,
                                       const DistributionMapping& dm) {
    defineLevelData(lev, ba, dm);
    amr::InterpFromCoarseLevel(U_[lev], U_[lev - 1], geom(lev), geom(lev - 1),
                               refRatio(), interpolater(), physBC_, physBC_, time,
                               &coords_[lev], &coords_[lev - 1]);
}

void CroccoAmr::remakeLevel(int lev, Real time, const BoxArray& ba,
                            const DistributionMapping& dm) {
    MultiFab newU(ba, dm, NCONS, NGHOST, comm());
    MultiFab newG(ba, dm, NCONS, 0, comm());
    newG.setVal(0.0);
    MultiFab newCoords(ba, dm, 3, NGHOST + 3, comm());
    MultiFab newMetrics(ba, dm, mesh::MetricComps, NGHOST, comm());
    {
        perf::TinyProfiler::Scope scope(prof_, "InitGridMetrics");
        coordStore_->getCoords(newCoords, lev);
        mesh::computeMetrics(newCoords, newMetrics, geom(lev));
    }
    // Newly uncovered regions come from coarse interpolation; regions the
    // old level already resolved keep their fine data.
    amr::InterpFromCoarseLevel(newU, U_[lev - 1], geom(lev), geom(lev - 1),
                               refRatio(), interpolater(), physBC_, physBC_, time,
                               &newCoords, &coords_[lev - 1]);
    newU.parallelCopy(U_[lev], 0, 0, NCONS, 0, 0, "Regrid");
    U_[lev] = std::move(newU);
    G_[lev] = std::move(newG);
    coords_[lev] = std::move(newCoords);
    metrics_[lev] = std::move(newMetrics);
}

void CroccoAmr::clearLevel(int lev) {
    U_[lev] = MultiFab();
    G_[lev] = MultiFab();
    coords_[lev] = MultiFab();
    metrics_[lev] = MultiFab();
}

void CroccoAmr::errorEst(int lev, std::vector<IntVect>& tags, Real /*time*/) {
    MultiFab Sborder(boxArray(lev), dmap(lev), NCONS, NGHOST, comm());
    fillPatch(lev, Sborder);
    tagCells(Sborder, cfg_.tagging, tags);
}

void CroccoAmr::fillPatch(int lev, MultiFab& dst) {
    perf::TinyProfiler::Scope scope(prof_, "FillPatch");
    if (lev == 0) {
        amr::FillPatchSingleLevel(dst, U_[0], geom(0), physBC_, time_);
    } else {
        amr::FillPatchTwoLevels(dst, U_[lev], U_[lev - 1], geom(lev),
                                geom(lev - 1), refRatio(), interpolater(),
                                physBC_, physBC_, time_, &coords_[lev],
                                &coords_[lev - 1]);
    }
}

void CroccoAmr::fillPatchBegin(int lev, MultiFab& dst) {
    perf::TinyProfiler::Scope scope(prof_, "FillPatchBegin");
    if (lev == 0) {
        amr::FillPatchSingleLevelBegin(dst, U_[0], geom(0));
    } else {
        amr::FillPatchTwoLevelsBegin(dst, U_[lev], geom(lev));
    }
}

void CroccoAmr::fillPatchEnd(int lev, MultiFab& dst) {
    // No profiler scope here: this runs as task 0 of the fused halo launch
    // and the enclosing computeRhsHaloAndEnd scope (opened on the calling
    // thread, which is the thread that executes task 0) already covers it.
    if (lev == 0) {
        amr::FillPatchSingleLevelEnd(dst, geom(0), physBC_, time_);
    } else {
        amr::FillPatchTwoLevelsEnd(dst, U_[lev - 1], geom(lev), geom(lev - 1),
                                   refRatio(), interpolater(), physBC_, physBC_,
                                   time_, &coords_[lev], &coords_[lev - 1]);
    }
}

int CroccoAmr::rhsGhostWidth() const {
    // WENO interface fluxes reach 3 cells across a face; the viscous/SGS
    // stencil (gradients of gradients) reaches 4. The interior box shrinks
    // by this width in *all* dimensions, not per direction: that keeps each
    // interior cell's complete dir0 -> dir1 -> dir2 (-> viscous) update
    // sequence inside the interior pass, so the floating-point accumulation
    // order per cell matches the unsplit path exactly.
    return (cfg_.gas.viscous() || cfg_.sgs.active()) ? 4 : 3;
}

Real CroccoAmr::computeDtAllLevels() {
    perf::TinyProfiler::Scope scope(prof_, "ComputeDt");
    Real dt = std::numeric_limits<Real>::infinity();
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        dt = std::min(dt, computeDt(U_[lev], metrics_[lev], geom(lev), cfg_.gas,
                                    cfg_.cfl));
    }
    return dt;
}

namespace {

/// Total valid points of the level — the per-point unit the modeled-DRAM
/// profiler column (KernelProfiles dramBytesPerPoint) is charged against.
double levelValidPts(const MultiFab& mf) {
    double pts = 0.0;
    for (int f = 0; f < mf.numFabs(); ++f)
        pts += static_cast<double>(mf.validBox(f).numPts());
    return pts;
}

} // namespace

void CroccoAmr::computeRhs(int lev, const MultiFab& Sborder, MultiFab& dU) {
    // Fab-level tiled parallelism: each worker owns whole fabs (disjoint dU
    // writes, read-only Sborder/metrics, per-call kernel scratch), so every
    // thread count produces bitwise-identical dU. The profiler scopes stay
    // outside the parallel region — TinyProfiler is not thread-safe.
    const auto dxi = geom(lev).cellSizeArray();
    const double pts = levelValidPts(dU);
    static const char* wenoNames[3] = {"WENOx", "WENOy", "WENOz"};
    for (int dir = 0; dir < 3; ++dir) {
        perf::TinyProfiler::Scope scope(prof_, wenoNames[dir]);
        prof_.addBytes(wenoNames[dir],
                       wenoKernelProfile().dramBytesPerPoint * pts);
        gpu::ParallelForIndex(dU.numFabs(), [&](int f) {
            wenoFlux(dir, Sborder.const_array(f), metrics_[lev].const_array(f),
                     dU.validBox(f), dU.array(f), dxi[static_cast<std::size_t>(dir)],
                     cfg_.gas, cfg_.scheme, cfg_.variant, cfg_.recon);
        });
    }
    if (cfg_.gas.viscous() || cfg_.sgs.active()) {
        perf::TinyProfiler::Scope scope(prof_, "Viscous");
        prof_.addBytes("Viscous", viscousKernelProfile().dramBytesPerPoint * pts);
        gpu::ParallelForIndex(dU.numFabs(), [&](int f) {
            viscousFlux(Sborder.const_array(f), metrics_[lev].const_array(f),
                        dU.validBox(f), dU.array(f), dxi, cfg_.gas, cfg_.variant,
                        cfg_.sgs);
        });
    }
}

void CroccoAmr::computeRhsFused(int lev, const MultiFab& Sborder,
                                MultiFab& dU) {
    // The fused pipeline (Config::fused). Per stage and level:
    //   1. one batched PrimCache launch decodes primitives + temperature +
    //      Jacobian into a pooled per-fab cache (EOS/determinant evaluated
    //      once instead of once per sweep);
    //   2. three batched two-kernel WENO sweeps (flux+divergence fused; the
    //      dir-0 sweep assigns, absorbing dU.setVal(0));
    //   3. a batched two-kernel viscous pass reading the same cache.
    // Each phase is ONE counted launch for the whole level (the per-fab
    // sub-kernels run inside a BatchedPhaseScope), matching how a real GPU
    // port would aggregate per-fab grids into a single batched launch.
    // Bitwise contract: every cached value equals the unfused inline
    // computation bit-for-bit, and every dU accumulation keeps the unfused
    // per-cell expression and ordering (pinned by tests/core/fused_rhs_test).
    const auto dxi = geom(lev).cellSizeArray();
    const int gw = rhsGhostWidth();
    const int nf = dU.numFabs();
    const double pts = levelValidPts(dU);

    std::vector<gpu::ScratchPool::Lease> leases;
    leases.reserve(static_cast<std::size_t>(nf));
    std::vector<Array4<Real>> caches(static_cast<std::size_t>(nf));
    for (int f = 0; f < nf; ++f) {
        leases.push_back(gpu::ScratchPool::instance().acquire(
            dU.validBox(f).grow(gw), fused::NCACHE));
        caches[static_cast<std::size_t>(f)] = leases.back().fab().array();
    }

    {
        perf::TinyProfiler::Scope scope(prof_, "PrimCache");
        prof_.addBytes("PrimCache",
                       fusedPrimCacheProfile().dramBytesPerPoint * pts);
        gpu::BatchedParallelForIndex(nf, 1, [&](int f) {
            fused::computePrimCache(Sborder.const_array(f),
                                    metrics_[lev].const_array(f),
                                    dU.validBox(f).grow(gw),
                                    caches[static_cast<std::size_t>(f)],
                                    cfg_.gas);
        });
    }
    static const char* wenoNames[3] = {"WENOx", "WENOy", "WENOz"};
    for (int dir = 0; dir < 3; ++dir) {
        perf::TinyProfiler::Scope scope(prof_, wenoNames[dir]);
        prof_.addBytes(wenoNames[dir],
                       fusedWenoKernelProfile().dramBytesPerPoint * pts);
        gpu::BatchedParallelForIndex(nf, 2, [&](int f) {
            wenoFluxFused(dir, Sborder.const_array(f),
                          caches[static_cast<std::size_t>(f)],
                          metrics_[lev].const_array(f), dU.validBox(f),
                          dU.array(f), dxi[static_cast<std::size_t>(dir)],
                          cfg_.gas, cfg_.scheme, cfg_.recon, dir == 0);
        });
    }
    if (cfg_.gas.viscous() || cfg_.sgs.active()) {
        perf::TinyProfiler::Scope scope(prof_, "Viscous");
        prof_.addBytes("Viscous",
                       fusedViscousKernelProfile().dramBytesPerPoint * pts);
        gpu::BatchedParallelForIndex(nf, 2, [&](int f) {
            viscousFluxFused(caches[static_cast<std::size_t>(f)],
                             metrics_[lev].const_array(f), dU.validBox(f),
                             dU.array(f), dxi, cfg_.gas, cfg_.sgs);
        });
    }
}

void CroccoAmr::computeRhsInterior(int lev, const MultiFab& Sborder,
                                   MultiFab& dU) {
    // Same launch structure as computeRhs, restricted to each fab's
    // ghost-independent interior. Runs between fillPatchBegin and
    // fillPatchEnd: every stencil read stays inside the valid region, which
    // Begin has already copied (check builds verify this — Sborder's ghost
    // cells are still poisoned here).
    const auto dxi = geom(lev).cellSizeArray();
    const int gw = rhsGhostWidth();
    gpu::ScopedLaunchTag tag("interior");
    static const char* wenoNames[3] = {"WENOx", "WENOy", "WENOz"};

    if (cfg_.fused) {
        // Fused interior: the stage cache covers ib.grow(gw), which is a
        // subset of the valid region — no in-flight ghost cell is read
        // (check builds verify: Sborder's ghosts are still poisoned here).
        // The dir-0 sweep assigns (firstTerm), absorbing dU.setVal(0) for
        // the interior cells; the halo pass does the same for its strips.
        const int nf = dU.numFabs();
        std::vector<gpu::ScratchPool::Lease> leases;
        leases.reserve(static_cast<std::size_t>(nf));
        std::vector<Array4<Real>> caches(static_cast<std::size_t>(nf));
        std::vector<char> ok(static_cast<std::size_t>(nf), 0);
        double ipts = 0.0;
        for (int f = 0; f < nf; ++f) {
            const Box ib = dU.validBox(f).grow(-gw);
            if (!ib.ok()) continue; // patch too small; halo covers it all
            ok[static_cast<std::size_t>(f)] = 1;
            ipts += static_cast<double>(ib.numPts());
            leases.push_back(
                gpu::ScratchPool::instance().acquire(ib.grow(gw), fused::NCACHE));
            caches[static_cast<std::size_t>(f)] = leases.back().fab().array();
        }
        {
            perf::TinyProfiler::Scope scope(prof_, "PrimCache");
            prof_.addBytes("PrimCache",
                           fusedPrimCacheProfile().dramBytesPerPoint * ipts);
            gpu::BatchedParallelForIndex(nf, 1, [&](int f) {
                if (!ok[static_cast<std::size_t>(f)]) return;
                const Box ib = dU.validBox(f).grow(-gw);
                fused::computePrimCache(Sborder.const_array(f),
                                        metrics_[lev].const_array(f),
                                        ib.grow(gw),
                                        caches[static_cast<std::size_t>(f)],
                                        cfg_.gas);
            });
        }
        for (int dir = 0; dir < 3; ++dir) {
            perf::TinyProfiler::Scope scope(prof_, wenoNames[dir]);
            prof_.addBytes(wenoNames[dir],
                           fusedWenoKernelProfile().dramBytesPerPoint * ipts);
            gpu::BatchedParallelForIndex(nf, 2, [&](int f) {
                if (!ok[static_cast<std::size_t>(f)]) return;
                const Box ib = dU.validBox(f).grow(-gw);
                wenoFluxFused(dir, Sborder.const_array(f),
                              caches[static_cast<std::size_t>(f)],
                              metrics_[lev].const_array(f), ib, dU.array(f),
                              dxi[static_cast<std::size_t>(dir)], cfg_.gas,
                              cfg_.scheme, cfg_.recon, dir == 0);
            });
        }
        if (cfg_.gas.viscous() || cfg_.sgs.active()) {
            perf::TinyProfiler::Scope scope(prof_, "Viscous");
            prof_.addBytes("Viscous",
                           fusedViscousKernelProfile().dramBytesPerPoint * ipts);
            gpu::BatchedParallelForIndex(nf, 2, [&](int f) {
                if (!ok[static_cast<std::size_t>(f)]) return;
                const Box ib = dU.validBox(f).grow(-gw);
                viscousFluxFused(caches[static_cast<std::size_t>(f)],
                                 metrics_[lev].const_array(f), ib, dU.array(f),
                                 dxi, cfg_.gas, cfg_.sgs);
            });
        }
        return;
    }

    double ipts = 0.0;
    for (int f = 0; f < dU.numFabs(); ++f) {
        const Box ib = dU.validBox(f).grow(-gw);
        if (ib.ok()) ipts += static_cast<double>(ib.numPts());
    }
    for (int dir = 0; dir < 3; ++dir) {
        perf::TinyProfiler::Scope scope(prof_, wenoNames[dir]);
        prof_.addBytes(wenoNames[dir],
                       wenoKernelProfile().dramBytesPerPoint * ipts);
        gpu::ParallelForIndex(dU.numFabs(), [&](int f) {
            const Box ib = dU.validBox(f).grow(-gw);
            if (!ib.ok()) return; // patch too small; halo pass covers it all
            wenoFlux(dir, Sborder.const_array(f), metrics_[lev].const_array(f),
                     ib, dU.array(f), dxi[static_cast<std::size_t>(dir)],
                     cfg_.gas, cfg_.scheme, cfg_.variant, cfg_.recon);
        });
    }
    if (cfg_.gas.viscous() || cfg_.sgs.active()) {
        perf::TinyProfiler::Scope scope(prof_, "Viscous");
        prof_.addBytes("Viscous",
                       viscousKernelProfile().dramBytesPerPoint * ipts);
        gpu::ParallelForIndex(dU.numFabs(), [&](int f) {
            const Box ib = dU.validBox(f).grow(-gw);
            if (!ib.ok()) return;
            viscousFlux(Sborder.const_array(f), metrics_[lev].const_array(f),
                        ib, dU.array(f), dxi, cfg_.gas, cfg_.variant, cfg_.sgs);
        });
    }
}

void CroccoAmr::computeRhsHaloAndEnd(int lev, MultiFab& Sborder, MultiFab& dU) {
    // One fused launch of numFabs()+1 tasks. The deterministic stripe
    // schedule always runs task 0 first on the calling thread, so the
    // exchange is guaranteed to drain: task 0 completes the FillPatch and
    // signals endEvent; every halo task waits on the event before touching
    // Sborder's ghost cells. The wait also publishes a happens-before edge
    // to the race detector, which otherwise would (correctly) flag task 0's
    // ghost writes against the halo tasks' ghost reads.
    const auto dxi = geom(lev).cellSizeArray();
    const int gw = rhsGhostWidth();
    const bool viscous = cfg_.gas.viscous() || cfg_.sgs.active();
    perf::TinyProfiler::Scope scope(prof_, "AdvanceHalo");
    gpu::ScopedLaunchTag tag("halo+end");
    {
        double hpts = 0.0;
        for (int f = 0; f < dU.numFabs(); ++f) {
            const Box valid = dU.validBox(f);
            const Box ib = valid.grow(-gw);
            hpts += static_cast<double>(valid.numPts() -
                                        (ib.ok() ? ib.numPts() : 0));
        }
        const double bpp =
            cfg_.fused
                ? fusedPrimCacheProfile().dramBytesPerPoint +
                      3.0 * fusedWenoKernelProfile().dramBytesPerPoint +
                      (viscous ? fusedViscousKernelProfile().dramBytesPerPoint
                               : 0.0)
                : 3.0 * wenoKernelProfile().dramBytesPerPoint +
                      (viscous ? viscousKernelProfile().dramBytesPerPoint
                               : 0.0);
        prof_.addBytes("AdvanceHalo", bpp * hpts);
    }
    if (cfg_.fused) {
        // The fused halo pass batches every per-strip sub-kernel into the
        // one fused launch below: charge the pipeline's flat per-phase
        // kernel count (PrimCache + 3 x fused WENO + fused viscous) and
        // suppress the nested counts inside each task.
        gpu::LaunchStats::addBatched(
            static_cast<std::uint64_t>(1 + 3 * 2 + (viscous ? 2 : 0)));
    }
    gpu::Event endEvent;
    gpu::ParallelForIndex(dU.numFabs() + 1, [&](int t) {
        if (t == 0) {
            // SignalGuard signals even if fillPatchEnd throws, so waiting
            // halo tasks never deadlock on an exception unwind.
            gpu::Event::SignalGuard guard(endEvent);
            fillPatchEnd(lev, Sborder);
            return;
        }
        endEvent.wait();
        const int f = t - 1;
        const Box valid = dU.validBox(f);
        const Box ib = valid.grow(-gw);
        const std::vector<Box> strips =
            ib.ok() ? amr::boxDiff(valid, {ib}) : std::vector<Box>{valid};
        auto s = Sborder.const_array(f);
        auto m = metrics_[lev].const_array(f);
        auto du = dU.array(f);
        // Per strip the update order is dir0, dir1, dir2, viscous — each
        // valid cell lies in exactly one strip, so its per-cell sequence
        // (and therefore the result) is bitwise-identical to computeRhs.
        if (cfg_.fused) {
            // Fused per-strip pipeline: cache over strip.grow(gw) (ghosts
            // are filled once the event fires), then the fused sweeps with
            // the dir-0 assignment absorbing dU's zero-fill for the strip.
            gpu::BatchedPhaseScope batch;
            for (const Box& strip : strips) {
                auto lease = gpu::ScratchPool::instance().acquire(
                    strip.grow(gw), fused::NCACHE);
                auto cache = lease.fab().array();
                fused::computePrimCache(s, m, strip.grow(gw), cache, cfg_.gas);
                for (int dir = 0; dir < 3; ++dir) {
                    wenoFluxFused(dir, s, cache, m, strip, du,
                                  dxi[static_cast<std::size_t>(dir)], cfg_.gas,
                                  cfg_.scheme, cfg_.recon, dir == 0);
                }
                if (viscous)
                    viscousFluxFused(cache, m, strip, du, dxi, cfg_.gas,
                                     cfg_.sgs);
            }
            return;
        }
        for (const Box& strip : strips) {
            for (int dir = 0; dir < 3; ++dir) {
                wenoFlux(dir, s, m, strip, du,
                         dxi[static_cast<std::size_t>(dir)], cfg_.gas,
                         cfg_.scheme, cfg_.variant, cfg_.recon);
            }
            if (viscous)
                viscousFlux(s, m, strip, du, dxi, cfg_.gas, cfg_.variant,
                            cfg_.sgs);
        }
    });
}

void CroccoAmr::rk3Advance() {
    // Algorithm 2: three Williamson stages, each sweeping all levels with
    // the same global dt (no subcycling).
    for (int stage = 0; stage < Rk3::nStages; ++stage) {
        for (int lev = 0; lev <= finestLevel(); ++lev) {
            MultiFab Sborder(boxArray(lev), dmap(lev), NCONS, NGHOST, comm());
            MultiFab dU(boxArray(lev), dmap(lev), NCONS, 0, comm());
            if (cfg_.overlap) {
                // Overlapped variant: post the ghost exchange, evaluate the
                // RHS over the ghost-independent interiors while it is in
                // flight, then drain it fused with the halo-strip pass.
                // Bitwise-identical to the serial branch below (pinned by
                // tests/core/overlap_test). With core.fused the interior
                // and halo passes run the fused pipeline per region and the
                // dir-0 assignment replaces the setVal sweep.
                // The matching fillPatchEnd runs inside
                // computeRhsHaloAndEnd's task-0 drain (SignalGuard on
                // endEvent orders it before the halo kernels) — the split
                // IS the overlap.
                // crocco-analyze:allow(A2): End is in computeRhsHaloAndEnd
                fillPatchBegin(lev, Sborder);
                if (!cfg_.fused) dU.setVal(0.0);
                computeRhsInterior(lev, Sborder, dU);
                computeRhsHaloAndEnd(lev, Sborder, dU);
            } else {
                fillPatch(lev, Sborder); // includes BC_Fill
                if (cfg_.fused) {
                    // The fused dir-0 sweep assigns into dU (bitwise the
                    // setVal(0) + `-=` of the unfused path) — no zero-fill.
                    computeRhsFused(lev, Sborder, dU);
                } else {
                    dU.setVal(0.0);
                    computeRhs(lev, Sborder, dU);
                }
            }
            // SDC hooks between RHS production and consumption: an armed
            // kernel flip lands in dU here, and the sampled dual execution
            // re-derives one fab's RHS to catch exactly such corruption
            // before the update bakes it into U.
            if (sdcInjector_) sdcInjector_->corruptStage(step_, stage, lev, dU);
            if (cfg_.sdc.guard && cfg_.sdc.sample > 0 &&
                step_ % cfg_.sdc.sample == 0)
                dualExecuteCheck(lev, stage, Sborder, dU);
            {
                perf::TinyProfiler::Scope scope(prof_, "Update");
                const auto& up = cfg_.fused ? fusedUpdateKernelProfile()
                                            : updateKernelProfile();
                prof_.addBytes("Update",
                               up.dramBytesPerPoint * levelValidPts(dU));
                // G <- A*G + dt*RHS;  U <- U + B*G.
                rk3StageUpdate(G_[lev], U_[lev], dU,
                               Rk3::A[static_cast<std::size_t>(stage)],
                               Rk3::B[static_cast<std::size_t>(stage)], dt_,
                               cfg_.fused);
            }
            // The valid region just advanced a stage: whatever ghost data
            // U still carries (e.g. from a regrid interpolation) is now
            // outdated. Check builds mark it Stale so a read before the
            // next fillPatch aborts; unchecked builds compile this away.
            U_[lev].invalidateGhosts();
            if (stage == Rk3::nStages - 1 && lev > 0) {
                perf::TinyProfiler::Scope scope(prof_, "AverageDown");
                amr::AverageDown(U_[lev], U_[lev - 1], refRatio(), 0, 0, NCONS);
            }
        }
    }
}

void CroccoAmr::dualExecuteCheck(int lev, int stage, const MultiFab& Sborder,
                                 const MultiFab& dU) {
    const int nf = dU.numFabs();
    if (nf == 0) return;
    const int f = resilience::FabGuard::sampledFab(step_, stage, lev, nf);
    perf::TinyProfiler::Scope scope(prof_, "SdcDualExec");
    // Re-derive the sampled fab's RHS with the plain serial kernels — a
    // structurally independent path from the fused/overlapped pipelines,
    // pinned bitwise-identical to them by the core tests, so any
    // discrepancy here is corruption, not roundoff.
    auto lease = gpu::ScratchPool::instance().acquire(dU.validBox(f), NCONS);
    amr::FArrayBox& ref = lease.fab();
    ref.setVal(0.0);
    const auto dxi = geom(lev).cellSizeArray();
    for (int dir = 0; dir < 3; ++dir)
        wenoFlux(dir, Sborder.const_array(f), metrics_[lev].const_array(f),
                 dU.validBox(f), ref.array(), dxi[static_cast<std::size_t>(dir)],
                 cfg_.gas, cfg_.scheme, cfg_.variant, cfg_.recon);
    if (cfg_.gas.viscous() || cfg_.sgs.active())
        viscousFlux(Sborder.const_array(f), metrics_[lev].const_array(f),
                    dU.validBox(f), ref.array(), dxi, cfg_.gas, cfg_.variant,
                    cfg_.sgs);
    ++sdcGuard_.stats().dualChecks;
    if (!resilience::FabGuard::bitwiseEqual(ref, dU.fab(f), dU.validBox(f),
                                            NCONS)) {
        ++sdcGuard_.stats().dualMismatches;
        throw resilience::SdcFault(
            step_, resilience::FaultClass::KernelSdc,
            "dual-execution mismatch: stage " + std::to_string(stage) +
                " RHS of level " + std::to_string(lev) + " fab " +
                std::to_string(f) + " differs from its recomputation");
    }
}

void CroccoAmr::emitCommSummary() {
    if (!cfg_.commLogSummary) return;
    const auto* c = comm();
    if (!c) return;
    const parallel::CommLog::Summary s = c->log().summarize(commLogMark_);
    lastCommSummary_ =
        "step " + std::to_string(step_) + " " +
        parallel::CommLog::formatSummary(s);
    std::cout << lastCommSummary_ << '\n';
    commLogMark_ = c->log().count();
}

void CroccoAmr::step() {
    if (cfg_.commLogSummary && comm()) commLogMark_ = comm()->log().count();
    // SDC window boundary: flips that hit resident state while it sat cold
    // since the last stamp land now, and the guard verify (on its cadence)
    // catches and repairs them before anything reads the state.
    if (sdcInjector_) sdcInjector_->corruptCold(step_, U_, finestLevel());
    if (cfg_.sdc.guard && cfg_.sdc.interval > 0 &&
        step_ % cfg_.sdc.interval == 0)
        sdcVerifyAndRepair("step-start verify");
    // Scheduled rank deaths fire at step boundaries: the node dies between
    // iterations, and the first communication touching it — a regrid
    // exchange, the ComputeDt reduction, or an RK3 waitall — raises
    // RankFailure for evolve()'s recovery path.
    if (auto* c = comm()) {
        if (auto* f = c->faults()) {
            if (const auto dead = f->takeRankDeath(step_)) c->killRank(*dead);
        }
    }
    const int freq = cfg_.regridFreq > 0 ? cfg_.regridFreq : estimateRegridFreq();
    if (maxLevel() > 0 && step_ % freq == 0) {
        perf::TinyProfiler::Scope scope(prof_, "Regrid");
        regrid(0, time_);
    }
    dt_ = computeDtAllLevels();
    if (faultInjector_) dt_ = faultInjector_->perturbDt(step_, dt_);

    if (!cfg_.guard.enabled) {
        try {
            rk3Advance();
        } catch (const resilience::SdcFault& sf) {
            // Dual execution caught a corrupted stage RHS, but with the
            // step guard off there is no in-step snapshot to roll back to:
            // record the unavailable rung and escalate to evolve()'s
            // buddy/disk rungs.
            ladder_.log().record(step_, sf.fault(),
                                 resilience::Rung::StepRollback, false,
                                 "guard disabled: no in-step snapshot");
            throw;
        }
        if (faultInjector_) faultInjector_->corruptState(step_, U_, finestLevel());
        emitCommSummary();
        time_ += dt_;
        ++step_;
        if (cfg_.sdc.guard) {
            perf::TinyProfiler::Scope scope(prof_, "SdcStamp");
            sdcGuard_.stamp(U_, finestLevel());
        }
        return;
    }

    // Snapshot the conserved state so a corrupted step can be undone. The
    // RK3 accumulator G is annihilated at stage 0 (A[0] = 0), so U_ plus
    // the unadvanced time/step counters are the whole rollback state.
    std::vector<MultiFab> snapshot;
    snapshot.reserve(static_cast<std::size_t>(finestLevel()) + 1);
    for (int lev = 0; lev <= finestLevel(); ++lev)
        snapshot.push_back(U_[static_cast<std::size_t>(lev)]);
    auto restore = [&] {
        for (int lev = 0; lev <= finestLevel(); ++lev) {
            U_[static_cast<std::size_t>(lev)] = snapshot[static_cast<std::size_t>(lev)];
            G_[static_cast<std::size_t>(lev)].setVal(0.0);
        }
    };

    for (int attempt = 0;; ++attempt) {
        try {
            rk3Advance();
        } catch (const resilience::SdcFault& sf) {
            // Dual execution caught a corrupted stage RHS mid-advance. The
            // flip was transient (its one-shot arm is spent), so the retry
            // replays the identical step — and dtBackoffApplies says an SDC
            // rollback keeps dt, or the repaired trajectory would diverge
            // bitwise from the fault-free run.
            restore();
            const bool retry = attempt < cfg_.guard.maxRetries;
            ladder_.log().record(step_, sf.fault(),
                                 resilience::Rung::StepRollback, retry,
                                 sf.what());
            if (!retry) throw;
            ++rollbackCount_;
            if (resilience::RecoveryLadder::dtBackoffApplies(sf.fault()))
                dt_ *= cfg_.guard.dtBackoff;
            continue;
        }
        if (faultInjector_) faultInjector_->corruptState(step_, U_, finestLevel());
        resilience::HealthReport rep;
        {
            perf::TinyProfiler::Scope scope(prof_, "HealthCheck");
            rep = resilience::validateHierarchy(U_, finestLevel(), cfg_.gas,
                                                cfg_.guard.maxFaultsReported);
        }
        if (rep.healthy()) {
            lastHealth_ = std::move(rep);
            break;
        }
        restore();
        if (attempt >= cfg_.guard.maxRetries) {
            ladder_.log().record(step_, resilience::FaultClass::HealthFault,
                                 resilience::Rung::StepRollback, false,
                                 "retries exhausted");
            throw resilience::SolverDivergence(step_, dt_, std::move(rep));
        }
        ladder_.log().record(step_, resilience::FaultClass::HealthFault,
                             resilience::Rung::StepRollback, true);
        ++rollbackCount_;
        if (resilience::RecoveryLadder::dtBackoffApplies(
                resilience::FaultClass::HealthFault))
            dt_ *= cfg_.guard.dtBackoff;
    }
    emitCommSummary();
    time_ += dt_;
    ++step_;
    if (cfg_.sdc.guard) {
        perf::TinyProfiler::Scope scope(prof_, "SdcStamp");
        sdcGuard_.stamp(U_, finestLevel());
    }
}

void CroccoAmr::evolve(int nsteps) {
    // Baseline stamp before the first step (same as the EvolveOptions
    // overload): upsets that land before the first end-of-step stamp would
    // otherwise have nothing to verify against and ride silently.
    if (cfg_.sdc.guard && !sdcGuard_.stamped())
        sdcGuard_.stamp(U_, finestLevel());
    for (int n = 0; n < nsteps; ++n) step();
}

void CroccoAmr::evolve(int nsteps, const EvolveOptions& opts) {
    const int target = step_ + nsteps;
    const bool checkpointing = opts.restart && opts.checkpointEvery > 0;
    const bool buddying = opts.buddy && opts.buddyEvery > 0;
    // Seed a recovery point before the first step so a divergence early in
    // the run still has somewhere to fall back to.
    if (checkpointing && opts.restart->available().empty())
        opts.restart->write(step_,
                            [&](const std::string& d) { writeCheckpoint(d); });
    if (buddying && !opts.buddy->valid())
        opts.buddy->store(U_, finestLevel(), step_, time_, comm());
    // Baseline stamp before the first step: without it, upsets that land
    // before the first end-of-step stamp have nothing to verify against and
    // ride silently (the SDC bench's interval-1 zero-undetected gate).
    if (cfg_.sdc.guard && !sdcGuard_.stamped())
        sdcGuard_.stamp(U_, finestLevel());
    int recoveries = 0;
    // Post-restore housekeeping shared by every rung: the restored state is
    // known-good by construction (CRC-verified checkpoint or mirror), so it
    // becomes the new guard baseline.
    auto restamp = [&] {
        if (cfg_.sdc.guard) sdcGuard_.stamp(U_, finestLevel());
    };
    // The ladder's last repair rung. False = nothing to restore from; the
    // caller surfaces the original fault (Abort).
    auto diskRestore = [&](resilience::FaultClass fault) {
        if (!opts.restart) {
            ladder_.log().record(step_, fault, resilience::Rung::Abort, false,
                                 "no restart manager attached");
            return false;
        }
        ++diskRecoveryCount_;
        opts.restart->restoreLatest([&](const std::string& d) {
            readCheckpoint(d, init_, physBC_);
        });
        ladder_.log().record(step_, fault, resilience::Rung::DiskRestart, true);
        restamp();
        return true;
    };
    while (step_ < target) {
        try {
            step();
            const bool doCkpt =
                checkpointing && step_ % opts.checkpointEvery == 0;
            const bool doBuddy = buddying && step_ % opts.buddyEvery == 0;
            // A checkpoint or mirror written from silently corrupted state
            // poisons the recovery source itself — verify (and repair) the
            // guarded state before either write reads it.
            if (doCkpt || doBuddy) sdcVerifyAndRepair("checkpoint source");
            if (doCkpt)
                opts.restart->write(
                    step_, [&](const std::string& d) { writeCheckpoint(d); });
            if (doBuddy)
                opts.buddy->store(U_, finestLevel(), step_, time_, comm());
        } catch (const resilience::SolverDivergence&) {
            const bool canRestore =
                opts.restart && recoveries < opts.maxRecoveries;
            ladder_.log().record(step_, resilience::FaultClass::HealthFault,
                                 resilience::Rung::DiskRestart, canRestore,
                                 canRestore ? "" : "recovery budget exhausted");
            if (!canRestore) throw;
            ++recoveries;
            ++recoveryCount_;
            opts.restart->restoreLatest([&](const std::string& d) {
                readCheckpoint(d, init_, physBC_);
            });
            restamp();
            continue;
        } catch (const resilience::SdcFault& sf) {
            // The local rungs are spent (fab repair impossible or step
            // rollback exhausted): climb to the buddy mirror, then disk.
            if (recoveries >= opts.maxRecoveries) throw;
            ++recoveries;
            ++recoveryCount_;
            if (restoreFromBuddySnapshot(opts)) {
                ++buddyRecoveryCount_;
                ladder_.log().record(step_, sf.fault(),
                                     resilience::Rung::BuddyRestore, true,
                                     sf.what());
                restamp();
            } else {
                ladder_.log().record(step_, sf.fault(),
                                     resilience::Rung::BuddyRestore, false,
                                     "no verified buddy mirror");
                if (!diskRestore(sf.fault())) throw;
            }
            continue;
        } catch (const parallel::RankFailure& rf) {
            if (recoveries >= opts.maxRecoveries) throw;
            ++recoveries;
            ++recoveryCount_;
            if (recoverFromRankDeath(rf.deadRank(), opts)) {
                ++buddyRecoveryCount_;
                ladder_.log().record(step_, resilience::FaultClass::RankDeath,
                                     resilience::Rung::BuddyRestore, true,
                                     "rank " + std::to_string(rf.deadRank()));
                restamp();
            } else {
                // No usable buddy copy (none stored, the replica died with
                // the rank, or the mirror failed its CRC check): full disk
                // restore. The communicator is already shrunk;
                // readCheckpoint rebuilds the mappings over the survivors.
                ladder_.log().record(step_, resilience::FaultClass::RankDeath,
                                     resilience::Rung::BuddyRestore, false,
                                     "no usable buddy copy");
                if (!diskRestore(resilience::FaultClass::RankDeath)) throw;
            }
            continue;
        }
    }
}

bool CroccoAmr::recoverFromRankDeath(int deadRank, const EvolveOptions& opts) {
    auto* c = comm();
    assert(c && !c->rankAlive(deadRank));
    // Decide the restore source *before* the shrink: the buddy partner must
    // have survived, judged under the snapshot's (pre-death) numbering.
    bool useBuddy =
        opts.buddy && opts.buddy->canRecover(deadRank) &&
        opts.buddy->nranks() == c->size() &&
        c->rankAlive(
            resilience::BuddyCheckpoint::partnerOf(deadRank, c->size()));
    // The mirror sat in partner memory since its store() — exactly the
    // long-idle state SDC hits. Verify every mirrored fab's CRC *before*
    // any byte of it overwrites live state; a corrupted mirror falls
    // through to the disk rung instead of being trusted.
    if (useBuddy && !opts.buddy->verifyMirror()) {
        ladder_.log().record(step_, resilience::FaultClass::CheckpointCorrupt,
                             resilience::Rung::BuddyRestore, false,
                             "buddy mirror failed CRC verification");
        useBuddy = false;
    }
    // ULFM sequence: revoke + shrink. Survivors are renumbered densely,
    // pending ops are revoked, and every layer tracking the communicator
    // size follows suit.
    c->shrink();
    setNumRanks(c->size());
    amr::CommCache::instance().noteCommSize(c->size());
    if (!useBuddy) return false;

    const resilience::BuddyCheckpoint& snap = *opts.buddy;
    time_ = static_cast<Real>(snap.time());
    step_ = snap.step();
    // Levels above the snapshot's finest (possible when a regrid between
    // the snapshot and the death added a level) still hold pre-shrink
    // mappings; drop them before they can be touched.
    for (int lev = snap.finestLevel() + 1; lev <= finestLevel(); ++lev)
        clearLevel(lev);
    for (int lev = 0; lev <= snap.finestLevel(); ++lev) {
        const amr::MultiFab& s = snap.level(lev);
        const BoxArray ba = s.boxArray();
        // Survivors keep their boxes; the dead rank's boxes are poured onto
        // the least-loaded survivors — only that data crosses the network.
        const DistributionMapping dm =
            s.distributionMap().excludeRank(deadRank, ba);
        setLevel(lev, ba, dm);
        setFinestLevel(lev);
        defineLevelData(lev, ba, dm);
        for (int f = 0; f < s.numFabs(); ++f) {
            U_[lev].fab(f).copyFrom(s.fab(f), ba[f], 0, 0, NCONS);
            if (s.distributionMap()[f] != deadRank) continue;
            // This box's owner died: its replica streams from the buddy
            // partner to the new owner (both in post-shrink numbering).
            const int partnerOld = resilience::BuddyCheckpoint::partnerOf(
                deadRank, snap.nranks());
            const int partnerNew =
                partnerOld > deadRank ? partnerOld - 1 : partnerOld;
            const std::int64_t bytes =
                ba[f].numPts() * NCONS *
                static_cast<std::int64_t>(sizeof(Real));
            c->recordP2P(partnerNew, dm[f], bytes, "RankRecovery");
        }
    }
    // The snapshot's rank numbering predates the shrink; it has served its
    // purpose. evolve() re-seeds a fresh snapshot at the next interval, and
    // a second death before then falls back to disk.
    opts.buddy->invalidate();
    return true;
}

bool CroccoAmr::restoreFromBuddySnapshot(const EvolveOptions& opts) {
    if (!opts.buddy || !opts.buddy->valid()) return false;
    // Same policy as the rank-death path: no mirror byte overwrites live
    // state before the whole mirror passes its CRC check.
    if (!opts.buddy->verifyMirror()) {
        ladder_.log().record(step_, resilience::FaultClass::CheckpointCorrupt,
                             resilience::Rung::BuddyRestore, false,
                             "buddy mirror failed CRC verification");
        return false;
    }
    const resilience::BuddyCheckpoint& snap = *opts.buddy;
    // The snapshot's DistributionMappings are only meaningful under the
    // communicator size they were taken with.
    if (comm() && snap.nranks() != comm()->size()) return false;
    time_ = static_cast<Real>(snap.time());
    step_ = snap.step();
    for (int lev = snap.finestLevel() + 1; lev <= finestLevel(); ++lev)
        clearLevel(lev);
    for (int lev = 0; lev <= snap.finestLevel(); ++lev) {
        const amr::MultiFab& s = snap.level(lev);
        const BoxArray ba = s.boxArray();
        const DistributionMapping dm = s.distributionMap();
        setLevel(lev, ba, dm);
        setFinestLevel(lev);
        defineLevelData(lev, ba, dm);
        for (int f = 0; f < s.numFabs(); ++f)
            U_[lev].fab(f).copyFrom(s.fab(f), ba[f], 0, 0, NCONS);
    }
    // Unlike a rank-death recovery the communicator did not shrink, so the
    // mirror's numbering is still current — keep it for the next fault.
    return true;
}

void CroccoAmr::sdcVerifyAndRepair(const char* context) {
    if (!cfg_.sdc.guard || !sdcGuard_.stamped()) return;
    if (!sdcGuard_.layoutMatches(U_, finestLevel())) return;
    perf::TinyProfiler::Scope scope(prof_, "SdcVerify");
    // Cheap ABFT screen first (stats only — the CRC scan stays
    // authoritative, because a low-bit flip on a small addend can vanish
    // into the conserved sum's rounding).
    sdcGuard_.digestClean(U_, finestLevel());
    const auto findings = sdcGuard_.verify(U_, finestLevel());
    for (const auto& gf : findings) {
        const std::string where = std::string(context) + ": level " +
                                  std::to_string(gf.level) + " fab " +
                                  std::to_string(gf.fab);
        if (sdcGuard_.restoreFab(U_, gf.level, gf.fab)) {
            ++fabRestoreCount_;
            ladder_.log().record(step_, resilience::FaultClass::ColdSdc,
                                 resilience::Rung::FabRestore, true, where);
        } else {
            // The retained restore source is itself corrupt — a double
            // fault. StepRollback is skipped for cold SDC (the in-step
            // snapshot would replay the corruption); evolve() climbs to
            // the buddy mirror and disk rungs.
            ladder_.log().record(step_, resilience::FaultClass::ColdSdc,
                                 resilience::Rung::FabRestore, false,
                                 where + " (retained copy corrupt)");
            throw resilience::SdcFault(
                step_, resilience::FaultClass::ColdSdc,
                "cold SDC at " + where +
                    " and the retained guard copy is also corrupt");
        }
    }
}

std::array<Real, NCONS> CroccoAmr::conservedTotals() const {
    std::array<Real, NCONS> total{};
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        const auto dxi = geom(lev).cellSizeArray();
        const Real dV = dxi[0] * dxi[1] * dxi[2];
        // Coarse cells covered by a finer level are counted there.
        std::vector<Box> fineCover;
        if (lev < finestLevel()) {
            for (const Box& b : boxArray(lev + 1).boxes())
                fineCover.push_back(b.coarsen(refRatio()));
        }
        for (int f = 0; f < U_[lev].numFabs(); ++f) {
            auto u = U_[lev].const_array(f);
            auto m = metrics_[lev].const_array(f);
            for (const Box& piece : amr::boxDiff(U_[lev].validBox(f), fineCover)) {
                amr::forEachCell(piece, [&](int i, int j, int k) {
                    const Real w = mesh::jacobian(m, i, j, k) * dV;
                    for (int n = 0; n < NCONS; ++n)
                        total[static_cast<std::size_t>(n)] += w * u(i, j, k, n);
                });
            }
        }
    }
    return total;
}

void CroccoAmr::writeCheckpoint(const std::string& dir) const {
    namespace fs = std::filesystem;
    // Stage into a sibling tmp directory and rename into place: a crash or
    // job kill mid-write leaves only the tmp dir behind, never a plausible-
    // looking half-checkpoint at `dir`.
    const fs::path target(dir);
    const fs::path tmp(dir + ".writing");
    std::error_code ec;
    fs::remove_all(tmp, ec);
    fs::create_directories(tmp);

    std::vector<std::uint32_t> crcs;
    std::vector<std::uint64_t> sizes;
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        std::vector<Real> vals;
        vals.reserve(static_cast<std::size_t>(U_[lev].numPts()) * NCONS);
        for (int f = 0; f < U_[lev].numFabs(); ++f) {
            auto a = U_[lev].const_array(f);
            amr::forEachCell(U_[lev].validBox(f), [&](int i, int j, int k) {
                for (int n = 0; n < NCONS; ++n) vals.push_back(a(i, j, k, n));
            });
        }
        const auto nbytes = vals.size() * sizeof(Real);
        crcs.push_back(resilience::crc32(vals.data(), nbytes));
        sizes.push_back(nbytes);
        const fs::path binPath = tmp / ("level" + std::to_string(lev) + ".bin");
        std::ofstream bin(binPath, std::ios::binary);
        bin.write(reinterpret_cast<const char*>(vals.data()),
                  static_cast<std::streamsize>(nbytes));
        bin.flush();
        if (!bin)
            throw std::runtime_error("failed writing checkpoint level file " +
                                     binPath.string());
    }

    std::ofstream hdr(tmp / "header.txt");
    hdr.precision(17); // bit-exact double round-trip
    hdr << "crocco-checkpoint 2\n";
    hdr << time_ << ' ' << step_ << ' ' << finestLevel() << '\n';
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        const auto& ba = boxArray(lev);
        hdr << ba.size() << ' ' << crcs[static_cast<std::size_t>(lev)] << ' '
            << sizes[static_cast<std::size_t>(lev)] << '\n';
        for (int i = 0; i < ba.size(); ++i) {
            const Box& b = ba[i];
            hdr << b.smallEnd(0) << ' ' << b.smallEnd(1) << ' ' << b.smallEnd(2)
                << ' ' << b.bigEnd(0) << ' ' << b.bigEnd(1) << ' ' << b.bigEnd(2)
                << ' ' << dmap(lev)[i] << '\n';
        }
    }
    hdr.flush();
    if (!hdr)
        throw std::runtime_error("failed writing checkpoint header in " +
                                 tmp.string());
    hdr.close();
    fs::remove_all(target, ec);
    fs::rename(tmp, target);
}

void CroccoAmr::readCheckpoint(const std::string& dir, InitFunct ic,
                               amr::PhysBCFunct bc) {
    std::ifstream hdr(dir + "/header.txt");
    if (!hdr) throw std::runtime_error("cannot open checkpoint " + dir);
    std::string magic;
    int version = 0;
    hdr >> magic >> version;
    if (magic != "crocco-checkpoint" || version < 1 || version > 2)
        throw std::runtime_error("bad checkpoint header in " + dir);
    Real ckTime = 0.0;
    int ckStep = 0, finest = 0;
    hdr >> ckTime >> ckStep >> finest;
    if (!hdr) throw std::runtime_error("bad checkpoint header in " + dir);
    if (finest > maxLevel())
        throw std::runtime_error("checkpoint has more levels than maxLevel");

    // Phase 1: parse all metadata and read + verify every level payload.
    // Nothing of the solver state is touched until the whole checkpoint has
    // proven sound, so a corrupt checkpoint leaves this solver unchanged
    // and RestartManager can fall back to an older one.
    struct LevelIn {
        std::vector<Box> boxes;
        std::vector<int> owners;
        std::vector<Real> vals;
    };
    std::vector<LevelIn> input(static_cast<std::size_t>(finest) + 1);
    for (int lev = 0; lev <= finest; ++lev) {
        LevelIn& in = input[static_cast<std::size_t>(lev)];
        int nboxes = 0;
        std::uint32_t wantCrc = 0;
        std::uint64_t wantBytes = 0;
        hdr >> nboxes;
        if (version >= 2) hdr >> wantCrc >> wantBytes;
        if (!hdr || nboxes <= 0)
            throw resilience::CheckpointCorruption(
                "malformed level " + std::to_string(lev) + " record in " + dir +
                "/header.txt");
        in.boxes.reserve(static_cast<std::size_t>(nboxes));
        for (int i = 0; i < nboxes; ++i) {
            amr::IntVect lo, hi;
            int owner = 0;
            hdr >> lo[0] >> lo[1] >> lo[2] >> hi[0] >> hi[1] >> hi[2] >> owner;
            in.boxes.emplace_back(lo, hi);
            in.owners.push_back(owner);
        }
        if (!hdr)
            throw resilience::CheckpointCorruption(
                "truncated box list for level " + std::to_string(lev) + " in " +
                dir + "/header.txt");

        std::int64_t npts = 0;
        for (const Box& b : in.boxes) npts += b.numPts();
        const auto expectBytes =
            static_cast<std::uint64_t>(npts) * NCONS * sizeof(Real);
        const std::string path = dir + "/level" + std::to_string(lev) + ".bin";
        std::ifstream bin(path, std::ios::binary);
        if (!bin) throw std::runtime_error("missing checkpoint level data: " + path);
        bin.seekg(0, std::ios::end);
        const auto actualBytes = static_cast<std::uint64_t>(bin.tellg());
        bin.seekg(0, std::ios::beg);
        if (actualBytes < expectBytes ||
            (version >= 2 && actualBytes != wantBytes))
            throw resilience::CheckpointCorruption(
                "checkpoint level file " + path + " truncated: expected " +
                std::to_string(version >= 2 ? wantBytes : expectBytes) +
                " bytes, found " + std::to_string(actualBytes));
        in.vals.resize(expectBytes / sizeof(Real));
        bin.read(reinterpret_cast<char*>(in.vals.data()),
                 static_cast<std::streamsize>(expectBytes));
        if (bin.gcount() != static_cast<std::streamsize>(expectBytes))
            throw resilience::CheckpointCorruption(
                "short read in checkpoint level file " + path + ": got " +
                std::to_string(bin.gcount()) + " of " +
                std::to_string(expectBytes) + " bytes");
        if (version >= 2 &&
            resilience::crc32(in.vals.data(), expectBytes) != wantCrc)
            throw resilience::CheckpointCorruption(
                "CRC32 mismatch in checkpoint level file " + path);
    }

    // Phase 2: the checkpoint is sound — apply it.
    init_ = std::move(ic);
    physBC_ = std::move(bc);
    time_ = ckTime;
    step_ = ckStep;
    for (int lev = 0; lev <= finest; ++lev) {
        LevelIn& in = input[static_cast<std::size_t>(lev)];
        const BoxArray ba(std::move(in.boxes));
        // Stored ownership can reference ranks the communicator no longer
        // has (the checkpoint predates a rank death + shrink); rebuild the
        // mapping from scratch over the survivors in that case. The data
        // layout in the level file is box-ordered, not rank-ordered, so
        // re-owning boxes does not disturb the payload decoding below.
        const bool ownersFit = std::all_of(
            in.owners.begin(), in.owners.end(),
            [this](int o) { return o >= 0 && o < numRanks(); });
        const DistributionMapping dm =
            ownersFit ? DistributionMapping(std::move(in.owners), numRanks())
                      : DistributionMapping(ba, numRanks(),
                                            cfg_.amrInfo.strategy);
        setLevel(lev, ba, dm);
        setFinestLevel(lev);
        defineLevelData(lev, ba, dm);
        std::size_t idx = 0;
        for (int f = 0; f < U_[lev].numFabs(); ++f) {
            auto a = U_[lev].array(f);
            amr::forEachCell(U_[lev].validBox(f), [&](int i, int j, int k) {
                for (int n = 0; n < NCONS; ++n) a(i, j, k, n) = in.vals[idx++];
            });
        }
    }
}

int CroccoAmr::estimateRegridFreq() const {
    // Information convects one cell per step at CFL 1; regrid before a
    // feature can cross from a patch center to its fine/coarse interface.
    int minHalfWidth = std::numeric_limits<int>::max();
    for (int lev = 1; lev <= finestLevel(); ++lev) {
        for (const Box& b : boxArray(lev).boxes())
            minHalfWidth = std::min(minHalfWidth, b.size().min() / 2);
    }
    if (minHalfWidth == std::numeric_limits<int>::max()) return 1;
    return std::max(1, static_cast<int>(minHalfWidth / std::max(cfg_.cfl, 0.01)));
}

} // namespace crocco::core
