#pragma once

#include "core/State.hpp"

namespace crocco::core {

/// Subgrid-scale closure for CRoCCo's LES mode (§I, §II-A): the filtered
/// equations add an eddy viscosity to the molecular one. The classic
/// Smagorinsky model is implemented:
///
///   nu_t = (Cs * Delta)^2 * |S|,   |S| = sqrt(2 S_ij S_ij)
///
/// with Delta the local filter width (the cell size, anisotropy-averaged via
/// the Jacobian). Turbulent heat flux uses a constant turbulent Prandtl
/// number. Cs = 0 disables the model (DNS mode).
struct SgsModel {
    Real cs = 0.0;        ///< Smagorinsky constant (typical 0.1-0.2)
    Real prandtlT = 0.9;  ///< turbulent Prandtl number

    bool active() const { return cs > 0.0; }

    /// Eddy viscosity mu_t from the resolved velocity-gradient tensor
    /// gradU[i][j] = du_i/dx_j, density, and filter width delta.
    Real eddyViscosity(const Real gradU[3][3], Real rho, Real delta) const;

    /// Filter width from the cell's physical volume J * dxi*deta*dzeta.
    static Real filterWidth(Real cellVolume);
};

} // namespace crocco::core
