#include "core/ComputeDt.hpp"

#include "gpu/Gpu.hpp"
#include "mesh/GridMetrics.hpp"

#include <cmath>

namespace crocco::core {

using mesh::metric1;

Real computeDtFab(const Array4<const Real>& S, const Array4<const Real>& metrics,
                  const amr::Box& validBox, const std::array<Real, 3>& dxi,
                  const GasModel& gas, Real cfl) {
    return gpu::ReduceMin(validBox, [&](int i, int j, int k) {
        const Prim q = toPrim(S, i, j, k, gas);
        Real wave = 0.0;
        for (int d = 0; d < 3; ++d) {
            const Real m0 = metrics(i, j, k, metric1(d, 0));
            const Real m1 = metrics(i, j, k, metric1(d, 1));
            const Real m2 = metrics(i, j, k, metric1(d, 2));
            const Real uhat = m0 * q.u + m1 * q.v + m2 * q.w;
            const Real gradXi = std::sqrt(m0 * m0 + m1 * m1 + m2 * m2);
            wave += (std::abs(uhat) + q.a * gradXi) / dxi[static_cast<std::size_t>(d)];
        }
        return cfl / wave;
    });
}

Real computeDt(const amr::MultiFab& U, const amr::MultiFab& metrics,
               const amr::Geometry& geom, const GasModel& gas, Real cfl) {
    auto* comm = U.comm();
    const int nranks = comm ? comm->size() : 1;
    std::vector<double> perRank(static_cast<std::size_t>(nranks),
                                std::numeric_limits<double>::infinity());
    for (int i = 0; i < U.numFabs(); ++i) {
        const Real dt = computeDtFab(U.const_array(i), metrics.const_array(i),
                                     U.validBox(i), geom.cellSizeArray(), gas, cfl);
        auto& slot = perRank[static_cast<std::size_t>(U.distributionMap()[i])];
        slot = std::min(slot, static_cast<double>(dt));
    }
    if (comm) return comm->reduceRealMin(perRank, "ComputeDt");
    return *std::min_element(perRank.begin(), perRank.end());
}

} // namespace crocco::core
