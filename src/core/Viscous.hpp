#pragma once

#include "amr/Box.hpp"
#include "core/Sgs.hpp"
#include "core/State.hpp"
#include "core/Weno.hpp"

namespace crocco::core {

/// The Viscous kernel of Algorithm 2: accumulate the viscous flux
/// divergence into dU over `validBox` using 4th-order central differences
/// (§II-A).
///
/// Two-pass curvilinear formulation: physical-space velocity and
/// temperature gradients via the chain rule with the stored metrics, then
/// the divergence of the contravariant viscous fluxes. Requires NGHOST = 4
/// filled ghost cells (2 per pass).
/// When `sgs` is active (LES mode), the Smagorinsky eddy viscosity is added
/// to the molecular viscosity and a turbulent heat flux to the molecular
/// one — CRoCCo's filtered-equation path (§II-A).
void viscousFlux(const Array4<const Real>& S, const Array4<const Real>& metrics,
                 const Box& validBox, const Array4<Real>& dU,
                 const std::array<Real, 3>& dxi, const GasModel& gas,
                 KernelVariant variant, const SgsModel& sgs = {});

/// Fused-pipeline variant (`core.fused`): two kernels instead of three. The
/// primitive-decode pass is dropped entirely — velocity, temperature,
/// density, and the Jacobian are read from the shared stage cache
/// (core/FusedRhs.hpp layout, covering at least validBox.grow(4)), whose
/// entries are bit-identical to the unfused pass's inline decode. The theta
/// and divergence kernels keep the exact arithmetic (including summation
/// order) of viscousFlux, so the accumulated dU is bitwise identical.
void viscousFluxFused(const Array4<const Real>& cache,
                      const Array4<const Real>& metrics, const Box& validBox,
                      const Array4<Real>& dU, const std::array<Real, 3>& dxi,
                      const GasModel& gas, const SgsModel& sgs = {});

} // namespace crocco::core
