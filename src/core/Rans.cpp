#include "core/Rans.hpp"

#include <algorithm>
#include <cmath>

namespace crocco::core {

Real RansModel::eddyViscosity(const Real gradU[3][3], Real rho,
                              Real wallDistance) const {
    if (!active()) return 0.0;
    Real s2 = 0.0;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            const Real sij = 0.5 * (gradU[i][j] + gradU[j][i]);
            s2 += 2.0 * sij * sij;
        }
    }
    const Real l = std::min(kappa * std::max(wallDistance, 0.0), lMax);
    return rho * l * l * std::sqrt(s2);
}

} // namespace crocco::core
