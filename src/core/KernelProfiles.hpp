#pragma once

#include "gpu/DeviceModel.hpp"

namespace crocco::core {

/// Static cost profiles of the numerics kernels, counted from the kernel
/// source. These feed the V100/P9 execution-time models (Fig. 3) and the
/// hierarchical roofline (Fig. 4).
///
/// Counting notes (per grid point, double precision):
///  * WENO (one direction): stage A builds the contravariant flux
///    (~90 flops incl. the 3x3 Jacobian determinant and an rsqrt); stage B
///    reconstructs 5 components x 2 characteristic families, each a
///    6-point WENO-SYMBO evaluation (~95 flops) plus the LF split (~25);
///    stage C differences (~15). Total ~1.3e3 flops/pt.
///  * DRAM traffic: state + metrics reads, two scratch round-trips and the
///    flux write, with the paper's low occupancy (12.5%) spoiling cache
///    reuse — effective ~3.9e3 B/pt, giving AI ~0.33 flop/B, which at the
///    V100's ~900 GB/s reproduces the paper's ~300 GF/s achieved (Fig. 4).
///  * Register pressure ~232 regs/thread caps theoretical occupancy at
///    12.5%, the value the paper reports from Nsight Compute.
const gpu::KernelProfile& wenoKernelProfile();

/// Viscous kernel: two 4th-order passes, ~6.1e2 flops/pt, similarly
/// bandwidth-bound.
const gpu::KernelProfile& viscousKernelProfile();

/// ComputeDt reduction: light compute, one state+metrics sweep.
const gpu::KernelProfile& computeDtProfile();

/// RK update: pure streaming saxpy traffic.
const gpu::KernelProfile& updateKernelProfile();

/// Fine/coarse ghost interpolation (FillPatch): 8-point gather with
/// physical-coordinate weights per ghost cell.
const gpu::KernelProfile& interpKernelProfile();

/// Fused-pipeline (`core.fused`) profiles. Counting notes:
///  * PrimCache: one EOS decode + one 3x3 determinant per point, written
///    once (8 doubles out, 5 state + 9 metric doubles in) — ~1.8e2 B/pt.
///  * Fused WENO (one direction): stage A reads the cache instead of
///    re-deriving primitives (flops drop ~50/pt); stages B+C merge, so the
///    face-flux fab's write+read round trip (2 x 5 doubles x ~15 B/pt
///    effective) and the divergence pass's re-read disappear: ~2.7e3 B/pt
///    vs the unfused 3.9e3. Registers rise slightly (running flux carried
///    across the pencil).
///  * Fused viscous: the prim-decode pass is gone; theta + divergence keep
///    their traffic: ~2.1e3 B/pt vs 2.6e3.
///  * Fused update: G and U are each read+written once instead of twice
///    (mult+saxpy+saxpy): ~2.0e2 B/pt vs 2.4e2.
const gpu::KernelProfile& fusedPrimCacheProfile();
const gpu::KernelProfile& fusedWenoKernelProfile();
const gpu::KernelProfile& fusedViscousKernelProfile();
const gpu::KernelProfile& fusedUpdateKernelProfile();

} // namespace crocco::core
