// crocco-analyze:allow-file(R1): the FortranStyle kernel variant mirrors the
// paper's contiguous-pencil layout and needs the raw pencil base pointers.
#include "core/Weno.hpp"

#include "core/Eigen.hpp"

#include "amr/FArrayBox.hpp"
#include "gpu/Arena.hpp"
#include "gpu/Gpu.hpp"
#include "mesh/GridMetrics.hpp"

#include <algorithm>
#include <cassert>

namespace crocco::core {

using amr::FArrayBox;
using amr::IntVect;
using mesh::jacobian;
using mesh::metric1;

namespace {

/// Linear weights of the symmetric 4-stencil WENO-SYMBO scheme; the 4th is
/// the downwind stencil. Following Martín, Taylor, Wu & Weirs (2006), the
/// weights trade formal order for spectral resolution: they satisfy the
/// 4th-order moment condition 3(d3 - d0) + (d1 - d2) = 0 (the scheme is
/// exactly 4th-order accurate, as the paper's numerics are) with a mild
/// upwind bias and a ~7.7% downwind share. (The unique 6th-order choice
/// would be {.05, .45, .45, .05}; these sit in the 4th-order family.)
constexpr Real kSymboD[4] = {0.0833333, 0.4300000, 0.4100000, 0.0766667};
/// Classic Jiang-Shu optimal weights (3 upwind stencils).
constexpr Real kJsD[3] = {0.1, 0.6, 0.3};
constexpr Real kWenoEps = 1e-6;
/// Relative-smoothness limiter: the downwind stencil participates only when
/// all four stencils are comparably smooth (ratio below this), restoring
/// strict upwinding near discontinuities (§II-A's "weighs candidate
/// stencils via local relative smoothness").
constexpr Real kSymboRelLimit = 5.0;

} // namespace

Real wenoReconstruct(const Real f[6], WenoScheme scheme) {
    // Candidate 3-point reconstructions of the value at i+1/2; f[2] is cell i.
    const Real q0 = (2.0 * f[0] - 7.0 * f[1] + 11.0 * f[2]) / 6.0;
    const Real q1 = (-f[1] + 5.0 * f[2] + 2.0 * f[3]) / 6.0;
    const Real q2 = (2.0 * f[2] + 5.0 * f[3] - f[4]) / 6.0;
    // Jiang-Shu smoothness indicators.
    const Real b0 = (13.0 / 12.0) * (f[0] - 2 * f[1] + f[2]) * (f[0] - 2 * f[1] + f[2]) +
                    0.25 * (f[0] - 4 * f[1] + 3 * f[2]) * (f[0] - 4 * f[1] + 3 * f[2]);
    const Real b1 = (13.0 / 12.0) * (f[1] - 2 * f[2] + f[3]) * (f[1] - 2 * f[2] + f[3]) +
                    0.25 * (f[1] - f[3]) * (f[1] - f[3]);
    const Real b2 = (13.0 / 12.0) * (f[2] - 2 * f[3] + f[4]) * (f[2] - 2 * f[3] + f[4]) +
                    0.25 * (3 * f[2] - 4 * f[3] + f[4]) * (3 * f[2] - 4 * f[3] + f[4]);

    if (scheme == WenoScheme::JS5) {
        const Real a0 = kJsD[0] / ((kWenoEps + b0) * (kWenoEps + b0));
        const Real a1 = kJsD[1] / ((kWenoEps + b1) * (kWenoEps + b1));
        const Real a2 = kJsD[2] / ((kWenoEps + b2) * (kWenoEps + b2));
        return (a0 * q0 + a1 * q1 + a2 * q2) / (a0 + a1 + a2);
    }

    // WENO-SYMBO: add the downwind candidate (mirror image of stencil 0
    // about the interface).
    const Real q3 = (11.0 * f[3] - 7.0 * f[4] + 2.0 * f[5]) / 6.0;
    const Real b3 = (13.0 / 12.0) * (f[3] - 2 * f[4] + f[5]) * (f[3] - 2 * f[4] + f[5]) +
                    0.25 * (3 * f[3] - 4 * f[4] + f[5]) * (3 * f[3] - 4 * f[4] + f[5]);
    const Real a0 = kSymboD[0] / ((kWenoEps + b0) * (kWenoEps + b0));
    const Real a1 = kSymboD[1] / ((kWenoEps + b1) * (kWenoEps + b1));
    const Real a2 = kSymboD[2] / ((kWenoEps + b2) * (kWenoEps + b2));
    Real a3 = kSymboD[3] / ((kWenoEps + b3) * (kWenoEps + b3));
    const Real bmax = std::max({b0, b1, b2, b3});
    const Real bmin = std::min({b0, b1, b2, b3});
    if (bmax > kSymboRelLimit * bmin + kWenoEps) a3 = 0.0;
    return (a0 * q0 + a1 * q1 + a2 * q2 + a3 * q3) / (a0 + a1 + a2 + a3);
}

namespace {

/// Stage A payload at one cell: contravariant flux, conserved state copy,
/// and the local spectral radius for Lax-Friedrichs splitting.
struct CellFlux {
    Real fhat[NCONS];
    Real s;
    Real jm[3]; ///< contravariant metric row J * dxi_dir/dx (for the
                ///< characteristic projection direction)
};
constexpr int kCellFluxComps = NCONS + 4;

inline CellFlux cellFlux(const Array4<const Real>& S,
                         const Array4<const Real>& metrics, int i, int j, int k,
                         int dir, const GasModel& gas) {
    const Prim q = toPrim(S, i, j, k, gas);
    const Real J = jacobian(metrics, i, j, k);
    const Real jm0 = J * metrics(i, j, k, metric1(dir, 0));
    const Real jm1 = J * metrics(i, j, k, metric1(dir, 1));
    const Real jm2 = J * metrics(i, j, k, metric1(dir, 2));
    const Real uhat = jm0 * q.u + jm1 * q.v + jm2 * q.w;
    CellFlux c;
    c.fhat[URHO] = q.rho * uhat;
    c.fhat[UMX] = q.rho * q.u * uhat + jm0 * q.p;
    c.fhat[UMY] = q.rho * q.v * uhat + jm1 * q.p;
    c.fhat[UMZ] = q.rho * q.w * uhat + jm2 * q.p;
    c.fhat[UEDEN] = (S(i, j, k, UEDEN) + q.p) * uhat;
    c.s = std::abs(uhat) + q.a * std::sqrt(jm0 * jm0 + jm1 * jm1 + jm2 * jm2);
    c.jm[0] = jm0;
    c.jm[1] = jm1;
    c.jm[2] = jm2;
    return c;
}

/// Primitive state decoded from a conserved 5-vector.
inline Prim consToPrim(const Real U[NCONS], const GasModel& gas) {
    const Real rho = U[URHO], rinv = 1.0 / rho;
    const Real u = U[UMX] * rinv, v = U[UMY] * rinv, w = U[UMZ] * rinv;
    const Real p = gas.pressure(rho, u, v, w, U[UEDEN]);
    return {rho, u, v, w, p, gas.soundSpeed(rho, p)};
}

/// Interface flux at i+1/2 from the six surrounding cells' stage-A payloads
/// and conserved states (identical arithmetic in both kernel variants).
inline void interfaceFlux(const CellFlux cells[6], const Real cons[6][NCONS],
                          WenoScheme scheme, Reconstruction recon,
                          const GasModel& gas, Real out[NCONS]) {
    Real alpha = cells[0].s;
    for (int l = 1; l < 6; ++l) alpha = std::max(alpha, cells[l].s);

    if (recon == Reconstruction::ComponentWise) {
        for (int m = 0; m < NCONS; ++m) {
            Real fp[6], fm[6];
            for (int l = 0; l < 6; ++l) {
                fp[l] = 0.5 * (cells[l].fhat[m] + alpha * cons[l][m]);
                // Right-biased window mirrors about the interface.
                fm[5 - l] = 0.5 * (cells[l].fhat[m] - alpha * cons[l][m]);
            }
            out[m] = wenoReconstruct(fp, scheme) + wenoReconstruct(fm, scheme);
        }
        return;
    }

    // Characteristic-wise: eigensystem at the interface-averaged state and
    // metric direction (cells 2 and 3 straddle the interface).
    Real avgCons[NCONS], kdir[3];
    for (int m = 0; m < NCONS; ++m)
        avgCons[m] = 0.5 * (cons[2][m] + cons[3][m]);
    for (int d = 0; d < 3; ++d)
        kdir[d] = 0.5 * (cells[2].jm[d] + cells[3].jm[d]);
    const EigenSystem es = eulerEigenvectors(consToPrim(avgCons, gas), kdir, gas);

    Real outChar[NCONS];
    for (int m = 0; m < NCONS; ++m) {
        Real fp[6], fm[6];
        for (int l = 0; l < 6; ++l) {
            Real cf = 0.0, cu = 0.0;
            for (int c = 0; c < NCONS; ++c) {
                cf += es.L[m][c] * cells[l].fhat[c];
                cu += es.L[m][c] * cons[l][c];
            }
            fp[l] = 0.5 * (cf + alpha * cu);
            fm[5 - l] = 0.5 * (cf - alpha * cu);
        }
        outChar[m] = wenoReconstruct(fp, scheme) + wenoReconstruct(fm, scheme);
    }
    for (int c = 0; c < NCONS; ++c) {
        out[c] = 0.0;
        for (int m = 0; m < NCONS; ++m) out[c] += es.R[c][m] * outChar[m];
    }
}

void wenoFluxPortable(int dir, const Array4<const Real>& S,
                      const Array4<const Real>& metrics, const Box& validBox,
                      const Array4<Real>& dU, Real dxi, const GasModel& gas,
                      WenoScheme scheme, Reconstruction recon) {
    const IntVect e = IntVect::basis(dir);

    // Scratch lives in (device) global memory, allocated from the host
    // before launch — the paper's fix for both in-kernel allocation and the
    // data races of shared line scratch (§IV-B). Leased from the scratch
    // pool: every cell/face written before read, so recycled storage is
    // safe (and check builds re-poison it on each acquire anyway).
    const Box cellBox = validBox.grow(dir, 3);
    auto scratchLease = gpu::ScratchPool::instance().acquire(cellBox, kCellFluxComps);
    FArrayBox& scratch = scratchLease.fab();
    auto sc = scratch.array();

    // Kernel 1: per-cell contravariant flux + spectral radius + metric row.
    gpu::ParallelFor(cellBox, [&](int i, int j, int k) {
        const CellFlux c = cellFlux(S, metrics, i, j, k, dir, gas);
        for (int m = 0; m < NCONS; ++m) sc(i, j, k, m) = c.fhat[m];
        sc(i, j, k, NCONS) = c.s;
        for (int d = 0; d < 3; ++d) sc(i, j, k, NCONS + 1 + d) = c.jm[d];
    });

    // Kernel 2: one thread per interface; interface i+1/2 is stored at cell
    // index i, for i in [lo-1, hi].
    const Box faceBox(validBox.smallEnd() - e, validBox.bigEnd());
    auto fluxLease = gpu::ScratchPool::instance().acquire(faceBox, NCONS);
    FArrayBox& flux = fluxLease.fab();
    auto fx = flux.array();
    auto scc = scratch.const_array();
    gpu::ParallelFor(faceBox, [&](int i, int j, int k) {
        CellFlux cells[6];
        Real cons[6][NCONS];
        for (int l = 0; l < 6; ++l) {
            const int ci = i + (l - 2) * e[0];
            const int cj = j + (l - 2) * e[1];
            const int ck = k + (l - 2) * e[2];
            for (int m = 0; m < NCONS; ++m) {
                cells[l].fhat[m] = scc(ci, cj, ck, m);
                cons[l][m] = S(ci, cj, ck, m);
            }
            cells[l].s = scc(ci, cj, ck, NCONS);
            for (int d = 0; d < 3; ++d)
                cells[l].jm[d] = scc(ci, cj, ck, NCONS + 1 + d);
        }
        Real out[NCONS];
        interfaceFlux(cells, cons, scheme, recon, gas, out);
        for (int m = 0; m < NCONS; ++m) fx(i, j, k, m) = out[m];
    });

    // Kernel 3: flux difference into dU.
    auto fxc = flux.const_array();
    gpu::ParallelFor(validBox, [&](int i, int j, int k) {
        const Real scale = 1.0 / (dxi * jacobian(metrics, i, j, k));
        for (int m = 0; m < NCONS; ++m) {
            dU(i, j, k, m) -=
                scale * (fxc(i, j, k, m) - fxc(i - e[0], j - e[1], k - e[2], m));
        }
    });
}

void wenoFluxFortranStyle(int dir, const Array4<const Real>& S,
                          const Array4<const Real>& metrics, const Box& validBox,
                          const Array4<Real>& dU, Real dxi, const GasModel& gas,
                          WenoScheme scheme, Reconstruction recon) {
    const int lo = validBox.smallEnd(dir), hi = validBox.bigEnd(dir);
    const int nline = hi - lo + 1;

    // 1-D line scratch reused across every pencil — the original Fortran
    // structure that is fast on CPU but racy if naively parallelized over
    // all three dimensions (which is exactly why the GPU port moved to the
    // staged 3-D-scratch form above). The buffers are thread_local so the
    // allocation happens once per worker thread, not once per fab per
    // direction per stage (each worker owns its scratch, so the fab-level
    // pool parallelism stays race-free); every element is written before it
    // is read in each pencil, so reuse across calls is safe.
    thread_local std::vector<CellFlux> line;
    thread_local std::vector<Real> cons;
    thread_local std::vector<Real> flux;
    line.resize(static_cast<std::size_t>(nline) + 6);
    cons.resize(static_cast<std::size_t>(nline + 6) * NCONS);
    flux.resize(static_cast<std::size_t>(nline + 1) * NCONS);
    CellFlux* __restrict__ lf = line.data();
    Real* __restrict__ lc = cons.data();
    Real* __restrict__ fl = flux.data();

    const int d1 = (dir + 1) % 3, d2 = (dir + 2) % 3;
    for (int c2 = validBox.smallEnd(d2); c2 <= validBox.bigEnd(d2); ++c2) {
        for (int c1 = validBox.smallEnd(d1); c1 <= validBox.bigEnd(d1); ++c1) {
            IntVect p;
            p[d1] = c1;
            p[d2] = c2;
            // Gather the pencil including 3 ghost cells each side.
            for (int l = 0; l < nline + 6; ++l) {
                p[dir] = lo - 3 + l;
                lf[l] = cellFlux(S, metrics, p[0], p[1], p[2], dir, gas);
                for (int m = 0; m < NCONS; ++m)
                    lc[l * NCONS + m] = S(p[0], p[1], p[2], m);
            }
            // Interface fluxes along the pencil (interface f at line index
            // f corresponds to cell interface lo-1+f+1/2). The conserved
            // window is a view into the contiguous line buffer — row l of
            // the window is lc[(f+l)*NCONS ..], so no per-face copy.
            for (int f = 0; f <= nline; ++f) {
                const auto* consWin =
                    reinterpret_cast<const Real(*)[NCONS]>(&lc[f * NCONS]);
                interfaceFlux(&lf[f], consWin, scheme, recon, gas, &fl[f * NCONS]);
            }
            // Difference into dU.
            for (int c0 = lo; c0 <= hi; ++c0) {
                p[dir] = c0;
                const Real scale =
                    1.0 / (dxi * jacobian(metrics, p[0], p[1], p[2]));
                const int f = c0 - lo;
                for (int m = 0; m < NCONS; ++m) {
                    dU(p[0], p[1], p[2], m) -=
                        scale * (fl[(f + 1) * NCONS + m] - fl[f * NCONS + m]);
                }
            }
        }
    }
}

/// Stage A of the fused sweep: the cellFlux payload rebuilt from the shared
/// primitive/metric cache. The metric row products, uhat, the flux vector
/// and the spectral radius are the exact expressions of cellFlux() with the
/// toPrim/jacobian results substituted by their cached (bit-identical)
/// values — only the redundant EOS decode and 3x3 determinant disappear.
inline CellFlux cellFluxCached(const Array4<const Real>& S,
                               const Array4<const Real>& cache,
                               const Array4<const Real>& metrics, int i, int j,
                               int k, int dir) {
    const Real rho = cache(i, j, k, fused::QC_RHO);
    const Real u = cache(i, j, k, fused::QC_U);
    const Real v = cache(i, j, k, fused::QC_V);
    const Real w = cache(i, j, k, fused::QC_W);
    const Real p = cache(i, j, k, fused::QC_P);
    const Real a = cache(i, j, k, fused::QC_A);
    const Real J = cache(i, j, k, fused::QC_J);
    const Real jm0 = J * metrics(i, j, k, metric1(dir, 0));
    const Real jm1 = J * metrics(i, j, k, metric1(dir, 1));
    const Real jm2 = J * metrics(i, j, k, metric1(dir, 2));
    const Real uhat = jm0 * u + jm1 * v + jm2 * w;
    CellFlux c;
    c.fhat[URHO] = rho * uhat;
    c.fhat[UMX] = rho * u * uhat + jm0 * p;
    c.fhat[UMY] = rho * v * uhat + jm1 * p;
    c.fhat[UMZ] = rho * w * uhat + jm2 * p;
    c.fhat[UEDEN] = (S(i, j, k, UEDEN) + p) * uhat;
    c.s = std::abs(uhat) + a * std::sqrt(jm0 * jm0 + jm1 * jm1 + jm2 * jm2);
    c.jm[0] = jm0;
    c.jm[1] = jm1;
    c.jm[2] = jm2;
    return c;
}

} // namespace

void wenoFluxFused(int dir, const Array4<const Real>& S,
                   const Array4<const Real>& cache,
                   const Array4<const Real>& metrics, const Box& validBox,
                   const Array4<Real>& dU, Real dxi, const GasModel& gas,
                   WenoScheme scheme, Reconstruction recon, bool firstTerm) {
    assert(dir >= 0 && dir < 3);

    // Kernel 1 (stage A): cached contravariant flux + spectral radius into
    // pooled scratch, exactly the portable kernel 1 minus the EOS/Jacobian
    // re-derivation.
    const Box cellBox = validBox.grow(dir, 3);
    auto scratchLease = gpu::ScratchPool::instance().acquire(cellBox, kCellFluxComps);
    auto sc = scratchLease.fab().array();
    gpu::ParallelFor(cellBox, [&](int i, int j, int k) {
        const CellFlux c = cellFluxCached(S, cache, metrics, i, j, k, dir);
        for (int m = 0; m < NCONS; ++m) sc(i, j, k, m) = c.fhat[m];
        sc(i, j, k, NCONS) = c.s;
        for (int d = 0; d < 3; ++d) sc(i, j, k, NCONS + 1 + d) = c.jm[d];
    });

    // Kernel 2 (fused stages B+C): one task per pencil along `dir`. Each
    // pencil computes its faces in order, carries the previous face's flux
    // in registers, and writes the divergence straight into dU — no
    // face-flux fab, one interfaceFlux evaluation per face. Pencils own
    // disjoint dU cells, so the pass is race-free and deterministic for
    // every thread count.
    const int lo = validBox.smallEnd(dir), hi = validBox.bigEnd(dir);
    amr::IntVect planeHi = validBox.bigEnd();
    planeHi[dir] = validBox.smallEnd(dir);
    const Box plane(validBox.smallEnd(), planeHi);
    auto scc = scratchLease.fab().const_array();
    gpu::ParallelFor(plane, [&](int i0, int j0, int k0) {
        IntVect p{i0, j0, k0};
        CellFlux cells[6];
        Real cons[6][NCONS];
        Real fprev[NCONS], fcur[NCONS];
        // Gather the 6-cell window of the face stored at cell index `fc`
        // (interface fc+1/2) — identical to the portable kernel 2 gather.
        const auto gather = [&](int fc) {
            IntVect q = p;
            for (int l = 0; l < 6; ++l) {
                q[dir] = fc + (l - 2);
                for (int m = 0; m < NCONS; ++m) {
                    cells[l].fhat[m] = scc(q[0], q[1], q[2], m);
                    cons[l][m] = S(q[0], q[1], q[2], m);
                }
                cells[l].s = scc(q[0], q[1], q[2], NCONS);
                for (int d = 0; d < 3; ++d)
                    cells[l].jm[d] = scc(q[0], q[1], q[2], NCONS + 1 + d);
            }
        };
        gather(lo - 1);
        interfaceFlux(cells, cons, scheme, recon, gas, fprev);
        for (int c0 = lo; c0 <= hi; ++c0) {
            gather(c0);
            interfaceFlux(cells, cons, scheme, recon, gas, fcur);
            p[dir] = c0;
            const Real scale =
                1.0 / (dxi * cache(p[0], p[1], p[2], fused::QC_J));
            for (int m = 0; m < NCONS; ++m) {
                // `0.0 - x` is bitwise the unfused path's `0 -= x` after
                // dU.setVal(0); the compound form matches its `dU -= x`.
                if (firstTerm)
                    dU(p[0], p[1], p[2], m) = 0.0 - scale * (fcur[m] - fprev[m]);
                else
                    dU(p[0], p[1], p[2], m) -= scale * (fcur[m] - fprev[m]);
            }
            for (int m = 0; m < NCONS; ++m) fprev[m] = fcur[m];
        }
    });
}

void wenoFlux(int dir, const Array4<const Real>& S,
              const Array4<const Real>& metrics, const Box& validBox,
              const Array4<Real>& dU, Real dxi, const GasModel& gas,
              WenoScheme scheme, KernelVariant variant, Reconstruction recon) {
    assert(dir >= 0 && dir < 3);
    if (variant == KernelVariant::Portable) {
        wenoFluxPortable(dir, S, metrics, validBox, dU, dxi, gas, scheme, recon);
    } else {
        wenoFluxFortranStyle(dir, S, metrics, validBox, dU, dxi, gas, scheme,
                             recon);
    }
}

} // namespace crocco::core
