#include "core/KernelProfiles.hpp"

namespace crocco::core {

const gpu::KernelProfile& wenoKernelProfile() {
    static const gpu::KernelProfile p{
        .name = "WENO",
        .flopsPerPoint = 1300.0,
        .dramBytesPerPoint = 3900.0,
        .l2BytesPerPoint = 9500.0,
        .l1BytesPerPoint = 52000.0,
        .registersPerThread = 232.0,
    };
    return p;
}

const gpu::KernelProfile& viscousKernelProfile() {
    static const gpu::KernelProfile p{
        .name = "Viscous",
        .flopsPerPoint = 610.0,
        .dramBytesPerPoint = 2600.0,
        .l2BytesPerPoint = 6200.0,
        .l1BytesPerPoint = 30000.0,
        .registersPerThread = 226.0,
    };
    return p;
}

const gpu::KernelProfile& computeDtProfile() {
    static const gpu::KernelProfile p{
        .name = "ComputeDt",
        .flopsPerPoint = 60.0,
        .dramBytesPerPoint = 300.0,
        .l2BytesPerPoint = 450.0,
        .l1BytesPerPoint = 900.0,
        .registersPerThread = 64.0,
    };
    return p;
}

const gpu::KernelProfile& updateKernelProfile() {
    static const gpu::KernelProfile p{
        .name = "Update",
        .flopsPerPoint = 30.0,
        .dramBytesPerPoint = 240.0,
        .l2BytesPerPoint = 260.0,
        .l1BytesPerPoint = 300.0,
        .registersPerThread = 40.0,
    };
    return p;
}

const gpu::KernelProfile& fusedPrimCacheProfile() {
    static const gpu::KernelProfile p{
        .name = "PrimCache",
        .flopsPerPoint = 120.0,
        .dramBytesPerPoint = 180.0,
        .l2BytesPerPoint = 260.0,
        .l1BytesPerPoint = 400.0,
        .registersPerThread = 72.0,
    };
    return p;
}

const gpu::KernelProfile& fusedWenoKernelProfile() {
    static const gpu::KernelProfile p{
        .name = "FusedWENO",
        .flopsPerPoint = 1250.0,
        .dramBytesPerPoint = 2700.0,
        .l2BytesPerPoint = 7800.0,
        .l1BytesPerPoint = 46000.0,
        .registersPerThread = 240.0,
    };
    return p;
}

const gpu::KernelProfile& fusedViscousKernelProfile() {
    static const gpu::KernelProfile p{
        .name = "FusedViscous",
        .flopsPerPoint = 560.0,
        .dramBytesPerPoint = 2100.0,
        .l2BytesPerPoint = 5200.0,
        .l1BytesPerPoint = 28000.0,
        .registersPerThread = 230.0,
    };
    return p;
}

const gpu::KernelProfile& fusedUpdateKernelProfile() {
    static const gpu::KernelProfile p{
        .name = "FusedUpdate",
        .flopsPerPoint = 30.0,
        .dramBytesPerPoint = 200.0,
        .l2BytesPerPoint = 220.0,
        .l1BytesPerPoint = 260.0,
        .registersPerThread = 40.0,
    };
    return p;
}

const gpu::KernelProfile& interpKernelProfile() {
    static const gpu::KernelProfile p{
        .name = "Interp",
        .flopsPerPoint = 190.0,
        .dramBytesPerPoint = 620.0,
        .l2BytesPerPoint = 900.0,
        .l1BytesPerPoint = 2100.0,
        .registersPerThread = 96.0,
    };
    return p;
}

} // namespace crocco::core
