#pragma once

#include "amr/Array4.hpp"

#include <cmath>

namespace crocco::core {

using amr::Array4;
using amr::Real;

/// Conserved-variable component indices of the 5-component state MultiFab
/// (§III-C "Data management"): density, momentum, total energy per volume.
inline constexpr int URHO = 0;
inline constexpr int UMX = 1;
inline constexpr int UMY = 2;
inline constexpr int UMZ = 3;
inline constexpr int UEDEN = 4;
inline constexpr int NCONS = 5;

/// Ghost cells required by the numerics in each direction: the WENO-SYMBO
/// 7-point stencil and the two-pass 4th-order viscous operator both need 4
/// (§III-B sets the blocking factor to at least this).
inline constexpr int NGHOST = 4;

/// Calorically perfect gas model with Sutherland viscosity. The DMR problem
/// runs inviscid air (gamma = 1.4); the viscous parameters feed the Viscous
/// kernel for the Navier-Stokes test problems.
struct GasModel {
    Real gamma = 1.4;
    Real Rgas = 1.0;       ///< specific gas constant (nondimensional)
    Real prandtl = 0.72;
    Real muRef = 0.0;      ///< Sutherland reference viscosity; 0 => inviscid
    Real Tref = 1.0;       ///< Sutherland reference temperature
    Real Tsuth = 0.4;      ///< Sutherland constant (in units of Tref)

    Real cv() const { return Rgas / (gamma - 1.0); }
    Real cp() const { return gamma * Rgas / (gamma - 1.0); }
    bool viscous() const { return muRef > 0.0; }

    Real pressure(Real rho, Real u, Real v, Real w, Real E) const {
        return (gamma - 1.0) * (E - 0.5 * rho * (u * u + v * v + w * w));
    }
    Real temperature(Real rho, Real p) const { return p / (rho * Rgas); }
    Real soundSpeed(Real rho, Real p) const { return std::sqrt(gamma * p / rho); }
    Real totalEnergy(Real rho, Real u, Real v, Real w, Real p) const {
        return p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w);
    }
    Real viscosity(Real T) const {
        // Sutherland's law, nondimensionalized by muRef at Tref.
        const Real t = T / Tref;
        return muRef * t * std::sqrt(t) * (1.0 + Tsuth) / (t + Tsuth);
    }
    Real conductivity(Real T) const { return viscosity(T) * cp() / prandtl; }
};

/// Primitive state at one cell, decoded from a conserved-variable view.
struct Prim {
    Real rho, u, v, w, p, a;
};

inline Prim toPrim(const Array4<const Real>& U, int i, int j, int k,
                   const GasModel& gas) {
    const Real rho = U(i, j, k, URHO);
    const Real rinv = 1.0 / rho;
    const Real u = U(i, j, k, UMX) * rinv;
    const Real v = U(i, j, k, UMY) * rinv;
    const Real w = U(i, j, k, UMZ) * rinv;
    const Real p = gas.pressure(rho, u, v, w, U(i, j, k, UEDEN));
    return {rho, u, v, w, p, gas.soundSpeed(rho, p)};
}

} // namespace crocco::core
