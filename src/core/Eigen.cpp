#include "core/Eigen.hpp"

#include <cassert>
#include <cmath>

namespace crocco::core {

namespace {

/// Robust orthonormal triad from an arbitrary nonzero vector: n-hat plus two
/// tangents, branch chosen by the smallest component so no orientation is
/// degenerate.
void makeTriad(const Real kdir[3], Real n[3], Real t1[3], Real t2[3]) {
    const Real mag =
        std::sqrt(kdir[0] * kdir[0] + kdir[1] * kdir[1] + kdir[2] * kdir[2]);
    assert(mag > 0.0);
    for (int d = 0; d < 3; ++d) n[d] = kdir[d] / mag;
    // Seed with the unit axis least aligned with n.
    int least = 0;
    for (int d = 1; d < 3; ++d)
        if (std::abs(n[d]) < std::abs(n[least])) least = d;
    Real seed[3] = {0, 0, 0};
    seed[least] = 1.0;
    // t1 = normalize(seed - (seed.n) n); t2 = n x t1.
    const Real dot = seed[0] * n[0] + seed[1] * n[1] + seed[2] * n[2];
    for (int d = 0; d < 3; ++d) t1[d] = seed[d] - dot * n[d];
    const Real m1 = std::sqrt(t1[0] * t1[0] + t1[1] * t1[1] + t1[2] * t1[2]);
    for (int d = 0; d < 3; ++d) t1[d] /= m1;
    t2[0] = n[1] * t1[2] - n[2] * t1[1];
    t2[1] = n[2] * t1[0] - n[0] * t1[2];
    t2[2] = n[0] * t1[1] - n[1] * t1[0];
}

} // namespace

EigenSystem eulerEigenvectors(const Prim& q, const Real kdir[3],
                              const GasModel& gas) {
    Real n[3], t1[3], t2[3];
    makeTriad(kdir, n, t1, t2);

    const Real u[3] = {q.u, q.v, q.w};
    const Real a = q.a, rho = q.rho;
    const Real gm1 = gas.gamma - 1.0;
    const Real ke = 0.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
    const Real H = a * a / gm1 + ke; // total enthalpy
    const Real un = u[0] * n[0] + u[1] * n[1] + u[2] * n[2];
    const Real ut1 = u[0] * t1[0] + u[1] * t1[1] + u[2] * t1[2];
    const Real ut2 = u[0] * t2[0] + u[1] * t2[1] + u[2] * t2[2];

    // Differentials of primitive combinations as rows over conserved
    // increments d(rho, rho*u, rho*v, rho*w, E):
    const Real rowDp[NCONS] = {gm1 * ke, -gm1 * u[0], -gm1 * u[1], -gm1 * u[2],
                               gm1};
    const Real rowDrho[NCONS] = {1, 0, 0, 0, 0};
    Real rowDun[NCONS], rowDut1[NCONS], rowDut2[NCONS];
    for (int c = 0; c < NCONS; ++c) {
        const Real mom = (c >= 1 && c <= 3) ? 1.0 : 0.0;
        rowDun[c] = ((c >= 1 && c <= 3 ? n[c - 1] * mom : 0.0) -
                     un * rowDrho[c]) /
                    rho;
        rowDut1[c] = ((c >= 1 && c <= 3 ? t1[c - 1] * mom : 0.0) -
                      ut1 * rowDrho[c]) /
                     rho;
        rowDut2[c] = ((c >= 1 && c <= 3 ? t2[c - 1] * mom : 0.0) -
                      ut2 * rowDrho[c]) /
                     rho;
    }

    EigenSystem es;
    const Real inv2a2 = 1.0 / (2.0 * a * a);
    for (int c = 0; c < NCONS; ++c) {
        es.L[0][c] = (rowDp[c] - rho * a * rowDun[c]) * inv2a2; // u_n - a
        es.L[1][c] = rowDrho[c] - rowDp[c] / (a * a);           // entropy
        es.L[2][c] = rho * rowDut1[c];                          // shear 1
        es.L[3][c] = rho * rowDut2[c];                          // shear 2
        es.L[4][c] = (rowDp[c] + rho * a * rowDun[c]) * inv2a2; // u_n + a
    }

    // Right eigenvectors as columns.
    const Real R0[NCONS] = {1, u[0] - a * n[0], u[1] - a * n[1],
                            u[2] - a * n[2], H - a * un};
    const Real R1[NCONS] = {1, u[0], u[1], u[2], ke};
    const Real R2[NCONS] = {0, t1[0], t1[1], t1[2], ut1};
    const Real R3[NCONS] = {0, t2[0], t2[1], t2[2], ut2};
    const Real R4[NCONS] = {1, u[0] + a * n[0], u[1] + a * n[1],
                            u[2] + a * n[2], H + a * un};
    for (int r = 0; r < NCONS; ++r) {
        es.R[r][0] = R0[r];
        es.R[r][1] = R1[r];
        es.R[r][2] = R2[r];
        es.R[r][3] = R3[r];
        es.R[r][4] = R4[r];
    }
    return es;
}

} // namespace crocco::core
