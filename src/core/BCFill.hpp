#pragma once

#include "amr/FillPatch.hpp"
#include "core/State.hpp"

#include <array>

namespace crocco::core {

using amr::Box;
using amr::Geometry;
using amr::MultiFab;

/// Physical boundary condition type of one domain face.
enum class BCType {
    Periodic,  ///< handled by FillBoundary, not here
    Outflow,   ///< zeroth-order extrapolation (supersonic outflow)
    Dirichlet, ///< fixed external state (supersonic inflow)
    SlipWall,  ///< inviscid wall: mirror with normal momentum flipped
    NoSlipWall ///< viscous wall: mirror with all momentum flipped
};

/// One face's condition; `state` is used only for Dirichlet.
struct FaceBC {
    BCType type = BCType::Outflow;
    std::array<Real, NCONS> state{};
};

/// Per-face physical BC specification: [dim][side] with side 0 = low face.
struct BCSpec {
    FaceBC face[3][2];
};

/// CRoCCo's BC_Fill kernel (Algorithm 2) for the standard condition types:
/// fills every ghost cell of `mf` outside a non-periodic domain face
/// according to `spec`. Problems with bespoke boundaries (DMR's mixed,
/// time-dependent top/bottom) wrap this with their own PhysBCFunct.
void applyBCs(MultiFab& mf, const Geometry& geom, const BCSpec& spec);

/// Convenience adapter to the amr::PhysBCFunct signature.
amr::PhysBCFunct makeBCFunct(const BCSpec& spec);

/// Ghost regions of `fab` beyond face (dim, side) of the domain, where
/// side 0 is the low face. Exposed for custom BC functors.
Box ghostRegionOutside(const Box& fabBox, const Box& domain, int dim, int side);

/// The region BC sweep `dim` should fill on face (dim, side):
/// ghostRegionOutside clamped to the domain extent in every *later*
/// non-periodic dimension. Sweeps run in dimension order, so a corner cell
/// outside the domain in dims d1 < d2 belongs to the d2 sweep — which reads
/// through cells the d1 sweep has already filled. The unclamped region would
/// make the d1 sweep read never-filled corner sources first (a violation
/// CroccoCheck flags); the cells it would have written are exactly the ones
/// the d2 sweep overwrites, so final values are bitwise unchanged. Periodic
/// later dims keep their full extent: fillBoundary already filled their
/// ghost sources, and no later sweep runs there.
Box bcSweepRegion(const Box& fabBox, const Box& domain, int dim, int side,
                  const Geometry& geom);

} // namespace crocco::core
