#include "core/Sgs.hpp"

#include <cmath>

namespace crocco::core {

Real SgsModel::eddyViscosity(const Real gradU[3][3], Real rho, Real delta) const {
    if (!active()) return 0.0;
    Real s2 = 0.0;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            const Real sij = 0.5 * (gradU[i][j] + gradU[j][i]);
            s2 += 2.0 * sij * sij;
        }
    }
    const Real magS = std::sqrt(s2);
    return rho * cs * cs * delta * delta * magS;
}

Real SgsModel::filterWidth(Real cellVolume) { return std::cbrt(cellVolume); }

} // namespace crocco::core
