#pragma once

#include "core/State.hpp"

namespace crocco::core {

/// Left/right eigenvector matrices of the Euler flux Jacobian in an
/// arbitrary direction — the machinery for *characteristic-wise* WENO
/// reconstruction. Projecting the stencil onto characteristic fields before
/// reconstructing (and back after) removes the spurious oscillations
/// component-wise reconstruction leaks through strong shocks; it is the
/// standard practice for Mach-10-class problems like the DMR.
///
/// Row m of L projects a conserved-variable increment onto characteristic
/// field m; column m of R maps it back: R * L = I.
/// Field order: (u_n - a), entropy, shear_1, shear_2, (u_n + a).
struct EigenSystem {
    Real L[NCONS][NCONS];
    Real R[NCONS][NCONS];
};

/// Build the eigensystem at state `q` for the (unnormalized) direction
/// vector `kdir` (e.g. the contravariant metric row J * dxi_d/dx). The
/// direction is normalized internally; a local orthonormal triad supplies
/// the two shear fields robustly for any orientation.
EigenSystem eulerEigenvectors(const Prim& q, const Real kdir[3],
                              const GasModel& gas);

} // namespace crocco::core
