#pragma once

#include "core/State.hpp"

namespace crocco::core {

/// Algebraic RANS closure — CRoCCo's third operating mode (§I: "large eddy
/// simulations (LES) or Reynolds-averaged Navier-Stokes (RANS)
/// simulations"). A Prandtl mixing-length model:
///
///   mu_t = rho * l_mix^2 * |S|,   l_mix = min(kappa * d_wall, l_max)
///
/// with von Karman scaling near the wall and a capped outer length. Like
/// the Smagorinsky SGS model it augments the molecular viscosity inside the
/// viscous kernel; the two differ only in the length scale (grid-derived
/// for LES, wall-distance-derived for RANS).
struct RansModel {
    Real kappa = 0.41;   ///< von Karman constant
    Real lMax = 0.0;     ///< outer mixing-length cap; 0 disables the model
    Real prandtlT = 0.9;

    bool active() const { return lMax > 0.0; }

    /// Eddy viscosity from the mean-velocity gradient, density, and wall
    /// distance.
    Real eddyViscosity(const Real gradU[3][3], Real rho, Real wallDistance) const;
};

} // namespace crocco::core
