#pragma once

#include "amr/AmrCore.hpp"
#include "amr/FillPatch.hpp"
#include "amr/MultiFab.hpp"
#include "core/BCFill.hpp"
#include "core/ComputeDt.hpp"
#include "core/State.hpp"
#include "core/Tagging.hpp"
#include "core/Viscous.hpp"
#include "core/Weno.hpp"
#include "mesh/CoordStore.hpp"
#include "perf/TinyProfiler.hpp"
#include "resilience/BuddyCheckpoint.hpp"
#include "resilience/FabGuard.hpp"
#include "resilience/FaultInjector.hpp"
#include "resilience/Health.hpp"
#include "resilience/RecoveryLadder.hpp"
#include "resilience/RestartManager.hpp"
#include "resilience/SdcInjector.hpp"

#include <functional>
#include <memory>

namespace crocco::core {

/// The paper's code-version ladder (§V-C). Numerics are identical across
/// versions; they differ in kernel structure, AMR on/off, and (for the
/// benchmarks) which execution-time model applies.
enum class CodeVersion {
    V10, ///< AMReX framework + Fortran kernels, no AMR, CPU
    V11, ///< C++ kernels, no AMR, CPU
    V12, ///< C++ kernels + AMR, CPU
    V20, ///< C++ kernels + AMR + GPU, custom curvilinear interpolator
    V21, ///< V20 with AMReX's built-in trilinear interpolator (no global
         ///< ParallelCopy in the interpolation path)
};

/// Which fine/coarse interpolator FillPatch uses.
enum class InterpChoice { Curvilinear, Trilinear, Weno, ConservativeLinear };

/// Initial condition: conserved state as a function of physical position.
using InitFunct = std::function<std::array<Real, NCONS>(Real x, Real y, Real z)>;

/// CRoCCo v2.0: the curvilinear compressible solver on the block-structured
/// AMR hierarchy — Algorithm 1 (main loop) and Algorithm 2 (RK3 advance).
class CroccoAmr : public amr::AmrCore {
public:
    struct Config {
        amr::AmrInfo amrInfo;
        GasModel gas;
        Real cfl = 0.5;
        /// Steps between Regrid() calls; 0 derives the paper's estimate
        /// (timesteps for information to cross half the smallest patch).
        int regridFreq = 10;
        WenoScheme scheme = WenoScheme::Symbo;
        Reconstruction recon = Reconstruction::ComponentWise;
        KernelVariant variant = KernelVariant::Portable;
        SgsModel sgs; ///< Smagorinsky LES closure; cs = 0 means DNS mode
        InterpChoice interp = InterpChoice::Curvilinear;
        TaggingSpec tagging;
        mesh::CoordStore::Mode coordMode = mesh::CoordStore::Mode::Memory;
        std::string coordFileDir = ".";
        int nranks = 1;
        /// Host worker threads for tiled kernel execution (ParmParse key
        /// `gpu.num_threads`, env override GPU_NUM_THREADS). 0 = auto
        /// (env var, else hardware_concurrency); 1 = serial execution
        /// identical to the pre-threading code path.
        int gpuNumThreads = 0;
        /// Communication-pattern caching (`amr.comm_cache`): reuse
        /// FillBoundary/ParallelCopy copy descriptors across steps instead
        /// of re-running the BoxArray intersection search every call.
        bool commCache = true;
        /// LRU bound on distinct cached patterns (`amr.comm_cache_size`).
        int commCacheCapacity = 64;
        /// Communication/computation overlap (`core.overlap`): split each
        /// RK3 stage into FillPatchBegin -> interior WENO/viscous pass over
        /// ghost-independent shrunk boxes -> FillPatchEnd -> halo-strip
        /// pass. Bitwise-identical to the serial path (every valid cell
        /// receives the same per-cell update sequence with the same
        /// operands); default off so existing decks are unchanged.
        bool overlap = false;
        /// Fused RHS pipeline (`core.fused`): decode primitives/metrics
        /// once per stage into a shared cache, collapse each WENO sweep's
        /// flux+divergence into one pencil pass (no face-flux fab), fuse
        /// the RK3 mult+saxpy+saxpy triple into one kernel, and batch the
        /// per-fab sub-kernels of each phase into a single counted launch.
        /// Bitwise-identical to the unfused path (pinned by
        /// tests/core/fused_rhs_test); default off so existing decks are
        /// unchanged. Composes with `core.overlap`.
        bool fused = false;
        /// Health-check + rollback/retry policy applied by step().
        resilience::GuardConfig guard;
        /// Silent-data-corruption guard (resilience.sdc_* keys): CRC32
        /// stamps + conserved-sum digests over the cold state, verified on
        /// a cadence and before checkpoint/mirror reads, plus sampled
        /// dual execution of the stage kernels. All off by default —
        /// stamping, verifying and repair are bitwise-transparent no-ops
        /// until sdc.guard is set.
        resilience::SdcConfig sdc;
        /// Receive timeout in modeled seconds for the hardened exchange
        /// (`comm.timeout`); 0 keeps the SimComm default. Also names the
        /// wait a hung waitall reports.
        double commTimeout = 0.0;
        /// CRC-verify every ghost/ParallelCopy payload (`comm.verify`).
        /// Off by default: the verified path records CRC-stamped messages,
        /// so the seed's byte-identical log contract requires opt-in.
        bool commVerify = false;
        /// Retransmit budget per message before the exchange raises a
        /// located error (`comm.max_retransmits`); 0 keeps the default.
        int commMaxRetransmits = 0;
        /// Aggregate all exchange traffic between each rank pair into one
        /// packed message (`comm.aggregate`). Bitwise-identical field data;
        /// the SimComm log intentionally shrinks to one message per
        /// communicating pair. Default off so the seed's message-log
        /// contract is unchanged.
        bool commAggregate = false;
        /// Print a per-step exchange summary (messages, bytes, retransmits)
        /// from the CommLog after every step (`comm.log_summary`).
        bool commLogSummary = false;

        static Config forVersion(CodeVersion v);
    };

    /// Resilience policy of evolve(): periodic checkpoints through a
    /// RestartManager and automatic recovery from SolverDivergence by
    /// restoring the newest good checkpoint and replaying.
    struct EvolveOptions {
        resilience::RestartManager* restart = nullptr;
        int checkpointEvery = 0; ///< steps between checkpoints (0 = off)
        int maxRecoveries = 1;   ///< restore attempts before rethrowing
        /// In-memory buddy checkpointing: snapshot every `buddyEvery` steps
        /// into `buddy`; a rank death restores from it (communicator shrink
        /// + box redistribution) without touching disk, falling back to
        /// `restart` when the buddy copy is unavailable or also lost.
        resilience::BuddyCheckpoint* buddy = nullptr;
        int buddyEvery = 0; ///< steps between buddy snapshots (0 = off)
    };

    CroccoAmr(const amr::Geometry& geom0, const Config& cfg,
              std::shared_ptr<const mesh::Mapping> mapping,
              parallel::SimComm* comm = nullptr);
    ~CroccoAmr() override;

    /// InitGrid + InitGridMetrics + InitFlow of Algorithm 1.
    void init(InitFunct initialCondition, amr::PhysBCFunct physBC);

    /// One pass of Algorithm 1's loop body: (maybe) Regrid, ComputeDt, RK3.
    /// With Config::guard enabled, the advanced state is health-checked and
    /// the step rolled back and retried with dt * guard.dtBackoff on
    /// corruption, up to guard.maxRetries; exhaustion restores the pre-step
    /// state and throws resilience::SolverDivergence.
    void step();
    void evolve(int nsteps);
    /// evolve with periodic checkpointing and divergence auto-recovery.
    void evolve(int nsteps, const EvolveOptions& opts);

    /// Attach a (test) fault injector; non-owning, nullptr detaches.
    void setFaultInjector(resilience::FaultInjector* injector) {
        faultInjector_ = injector;
    }

    /// Attach a (test) SDC injector; non-owning, nullptr detaches. Cold
    /// flips land at the start of step() before the guard verify; stage
    /// flips land in each RK3 stage's dU before the update consumes it.
    void setSdcInjector(resilience::SdcInjector* injector) {
        sdcInjector_ = injector;
    }

    /// The unified recovery-ladder policy + structured log. Every recovery
    /// path — fab repair, step rollback, buddy rebuild, disk restart —
    /// records the rung it climbed here.
    resilience::RecoveryLadder& ladder() { return ladder_; }
    const resilience::RecoveryLog& recoveryLog() const { return ladder_.log(); }

    /// The SDC detection layer (stamps, digests, dual-execution stats).
    const resilience::FabGuard& sdcGuard() const { return sdcGuard_; }
    resilience::FabGuard& sdcGuard() { return sdcGuard_; }

    /// Health report of the last completed (healthy) step.
    const resilience::HealthReport& lastHealth() const { return lastHealth_; }
    /// The exchange digest of the last completed step, as printed under
    /// comm.log_summary ("step N comm: msgs=... bytes=... ..."); empty when
    /// the key is off or no step has run. Tests assert on this instead of
    /// scraping stdout.
    const std::string& lastCommSummary() const { return lastCommSummary_; }
    /// Rollback/retry attempts performed over the solver's lifetime.
    int rollbackCount() const { return rollbackCount_; }
    /// Checkpoint-restore recoveries performed by evolve() overloads.
    int recoveryCount() const { return recoveryCount_; }
    /// Rank-death recoveries performed by evolve() (subset of the above),
    /// split by restore source.
    int rankRecoveryCount() const {
        return buddyRecoveryCount_ + diskRecoveryCount_;
    }
    int buddyRecoveryCount() const { return buddyRecoveryCount_; }
    int diskRecoveryCount() const { return diskRecoveryCount_; }
    /// Fab-granular in-place repairs served by the guard (ladder rung 0).
    int fabRestoreCount() const { return fabRestoreCount_; }

    Real time() const { return time_; }
    int stepCount() const { return step_; }
    Real lastDt() const { return dt_; }

    amr::MultiFab& state(int lev) { return U_[lev]; }
    const amr::MultiFab& state(int lev) const { return U_[lev]; }
    const amr::MultiFab& coords(int lev) const { return coords_[lev]; }
    const amr::MultiFab& metrics(int lev) const { return metrics_[lev]; }
    const mesh::CoordStore& coordStore() const { return *coordStore_; }

    perf::TinyProfiler& profiler() { return prof_; }

    /// Global conserved totals (density-weighted cell "volumes" J dxi^3),
    /// counting covered coarse cells once via the finest data.
    std::array<Real, NCONS> conservedTotals() const;

    /// The paper's regrid-frequency estimate: steps for a feature moving at
    /// one CFL per step to cross half the smallest patch width.
    int estimateRegridFreq() const;

    /// Fill a ghosted scratch copy of level `lev`'s state (FillPatch +
    /// BC_Fill of Algorithm 2). Exposed for tagging, tests and benchmarks.
    void fillPatch(int lev, amr::MultiFab& dst);

    /// Write the complete solver state — time, step, grid hierarchy and
    /// conserved fields — into `dir` (header + one binary file per level).
    /// Coordinates and metrics are *not* stored: they are regenerated from
    /// the CoordStore on restart, exactly as Regrid would (§III-C).
    /// Hardened (format v2): each level file carries a CRC32 + byte count
    /// in the header, and the whole checkpoint is staged into a temporary
    /// directory and renamed into place so a crash mid-write never leaves a
    /// half-written checkpoint under `dir`.
    void writeCheckpoint(const std::string& dir) const;

    /// Restore a checkpoint into a freshly constructed solver (same Config,
    /// geometry and mapping; do not call init() first). `ic`/`bc` supply the
    /// initial-condition and boundary functors the continued run needs.
    /// Reads both format v2 (CRC-verified) and legacy v1. All level files
    /// are read and verified *before* any solver state is mutated; a
    /// truncated or corrupt file throws resilience::CheckpointCorruption
    /// naming the offending level file.
    void readCheckpoint(const std::string& dir, InitFunct ic,
                        amr::PhysBCFunct bc);

protected:
    void errorEst(int lev, std::vector<amr::IntVect>& tags, Real time) override;
    void makeNewLevelFromScratch(int lev, Real time, const amr::BoxArray& ba,
                                 const amr::DistributionMapping& dm) override;
    void makeNewLevelFromCoarse(int lev, Real time, const amr::BoxArray& ba,
                                const amr::DistributionMapping& dm) override;
    void remakeLevel(int lev, Real time, const amr::BoxArray& ba,
                     const amr::DistributionMapping& dm) override;
    void clearLevel(int lev) override;

private:
    void defineLevelData(int lev, const amr::BoxArray& ba,
                         const amr::DistributionMapping& dm);
    void rk3Advance();
    void computeRhs(int lev, const amr::MultiFab& Sborder, amr::MultiFab& dU);
    /// Fused-pipeline RHS (Config::fused): per-stage primitive cache, two-
    /// kernel WENO sweeps with the dir-0 sweep absorbing dU's zero-fill,
    /// two-kernel viscous pass, all batched per phase. Bitwise-identical
    /// accumulation into dU.
    void computeRhsFused(int lev, const amr::MultiFab& Sborder,
                         amr::MultiFab& dU);
    /// Split FillPatch used by the overlapped advance (Config::overlap):
    /// Begin posts the same-level ghost exchange without draining it, End
    /// drains it and finishes the fill (coarse interp + BCs for lev > 0).
    void fillPatchBegin(int lev, amr::MultiFab& dst);
    void fillPatchEnd(int lev, amr::MultiFab& dst);
    /// The stencil-dependency width of one RHS evaluation: cells within
    /// this distance of a patch boundary read ghost data.
    int rhsGhostWidth() const;
    /// RHS over the ghost-independent interior of every fab — safe to run
    /// between fillPatchBegin and fillPatchEnd.
    void computeRhsInterior(int lev, const amr::MultiFab& Sborder,
                            amr::MultiFab& dU);
    /// One fused launch: task 0 completes the exchange (fillPatchEnd) and
    /// signals; the remaining tasks wait on the signal, then evaluate the
    /// RHS over each fab's halo strips (validBox minus the interior).
    void computeRhsHaloAndEnd(int lev, amr::MultiFab& Sborder,
                              amr::MultiFab& dU);
    const amr::Interpolater& interpolater() const;
    Real computeDtAllLevels();
    /// ULFM-style rank-death recovery: shrink the communicator, rebuild
    /// every DistributionMapping without the dead rank, and restore the
    /// hierarchy from the buddy snapshot. Returns false when no usable
    /// buddy copy exists — the communicator is still shrunk, and the
    /// caller must restore from disk instead.
    bool recoverFromRankDeath(int deadRank, const EvolveOptions& opts);
    /// Ladder rung: rebuild the whole hierarchy from the buddy mirror
    /// *without* a rank death (SDC escalation path). The mirror CRC is
    /// verified before any byte overwrites live state; returns false when
    /// no verified, same-sized snapshot exists — fall through to disk.
    bool restoreFromBuddySnapshot(const EvolveOptions& opts);
    /// Guard verify + rung-0 repair: CRC-scan the stamped state, restore
    /// corrupted fabs in place from the retained copy, and throw SdcFault
    /// when a fab's restore source is itself corrupt (evolve() climbs the
    /// remaining rungs). No-op unless sdc.guard is on and stamps match the
    /// current layout. `context` labels RecoveryLog entries.
    void sdcVerifyAndRepair(const char* context);
    /// Sampled dual execution: re-run the stage RHS of one fab with the
    /// plain serial kernels and bitwise-compare against `dU`. A mismatch
    /// means a kernel produced corrupted output — throws SdcFault
    /// (KernelSdc) so step() rolls the stage back and replays.
    void dualExecuteCheck(int lev, int stage, const amr::MultiFab& Sborder,
                          const amr::MultiFab& dU);
    /// comm.log_summary: render + print the digest of the traffic this
    /// step generated (from commLogMark_ to the log end) and advance the
    /// mark. No-op unless the key is on and a communicator is attached.
    void emitCommSummary();

    Config cfg_;
    std::shared_ptr<const mesh::Mapping> mapping_;
    std::unique_ptr<mesh::CoordStore> coordStore_;
    InitFunct init_;
    amr::PhysBCFunct physBC_;
    perf::TinyProfiler prof_;

    std::vector<amr::MultiFab> U_;       // conserved state, NGHOST ghosts
    std::vector<amr::MultiFab> G_;       // RK3 low-storage accumulator
    std::vector<amr::MultiFab> coords_;  // 3-comp physical coordinates
    std::vector<amr::MultiFab> metrics_; // 27-comp grid metrics

    std::unique_ptr<amr::Interpolater> interp_;
    Real time_ = 0.0;
    Real dt_ = 0.0;
    int step_ = 0;

    resilience::FaultInjector* faultInjector_ = nullptr;
    resilience::SdcInjector* sdcInjector_ = nullptr;
    resilience::FabGuard sdcGuard_;
    resilience::RecoveryLadder ladder_;
    /// CommLog index where the current step's traffic starts — the
    /// comm.log_summary printout summarizes messages from this mark on.
    std::size_t commLogMark_ = 0;
    std::string lastCommSummary_;
    resilience::HealthReport lastHealth_;
    int rollbackCount_ = 0;
    int recoveryCount_ = 0;
    int buddyRecoveryCount_ = 0;
    int diskRecoveryCount_ = 0;
    int fabRestoreCount_ = 0;
};

} // namespace crocco::core
