#pragma once

#include "amr/Box.hpp"
#include "core/State.hpp"
#include "core/Weno.hpp"

namespace crocco::core {

/// Convective transport of species partial densities — the rho_s equations
/// of the paper's Eq. 1 (the species-diffusion term rho_s v_sj is modeled
/// with a constant-Schmidt gradient law, the production term w_s comes from
/// chem::ReactionMechanism via operator splitting).
///
/// Each rho_s advects as a conserved scalar on the contravariant mass flux
/// of the bulk flow, reconstructed with the same WENO machinery and
/// Lax-Friedrichs splitting as the momentum/energy fluxes so species fronts
/// stay synchronized with the flow's shocks and contacts.
///
///   d(rho_s)/dt += -(1/J) d( rho_s u_hat )/dxi_dir  [+ diffusion]
///
/// `rhoY` holds the Ns partial densities with NGHOST filled ghost cells;
/// the bulk state `S` supplies velocity and the spectral radius.
void speciesAdvectFlux(int dir, const Array4<const Real>& S,
                       const Array4<const Real>& rhoY,
                       const Array4<const Real>& metrics, const Box& validBox,
                       const Array4<Real>& dRhoY, Real dxi, const GasModel& gas,
                       WenoScheme scheme);

/// Fickian diffusion of species with a constant Schmidt number:
/// d(rho_s)/dt += div( (mu/Sc) grad Y_s ), discretized like the viscous
/// operator (4th-order central, two passes, curvilinear chain rule).
void speciesDiffuseFlux(const Array4<const Real>& S,
                        const Array4<const Real>& rhoY,
                        const Array4<const Real>& metrics, const Box& validBox,
                        const Array4<Real>& dRhoY,
                        const std::array<Real, 3>& dxi, const GasModel& gas,
                        Real schmidt);

} // namespace crocco::core
