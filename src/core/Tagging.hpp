#pragma once

#include "amr/MultiFab.hpp"
#include "core/State.hpp"

#include <vector>

namespace crocco::core {

/// AMR refinement criteria (§II-B): gradients of density or momentum flag
/// shocks; the vorticity criterion is the paper's "AMR exclusively as a
/// turbulence resolving tool" option for WENO-SYMBO runs (§III-C).
enum class TagCriterion {
    DensityGradient,
    MomentumGradient,
    Vorticity,
};

struct TaggingSpec {
    TagCriterion criterion = TagCriterion::DensityGradient;
    /// Undivided-difference threshold above which a cell is tagged.
    Real threshold = 0.1;
};

/// Collect the cells of `U` (valid regions, level index space) whose
/// criterion exceeds the threshold. Ghost cells of `U` must be filled.
void tagCells(const amr::MultiFab& U, const TaggingSpec& spec,
              std::vector<amr::IntVect>& tags);

} // namespace crocco::core
