#pragma once

#include "amr/Array4.hpp"

#include <array>

namespace crocco::amr {
class MultiFab;
}

namespace crocco::core {

/// Williamson's 3rd-order low-storage (2N) Runge-Kutta scheme [Williamson
/// 1980], the time integrator CRoCCo propagates convective and viscous
/// fluxes with (§II-A). Per stage s:
///
///   G <- A[s] * G + dt * RHS(U)
///   U <- U + B[s] * G
///
/// Only U and one accumulator G are stored — the "low-storage" property
/// that matters on 16 GB GPUs.
struct Rk3 {
    static constexpr int nStages = 3;
    static constexpr std::array<amr::Real, 3> A{0.0, -5.0 / 9.0, -153.0 / 128.0};
    static constexpr std::array<amr::Real, 3> B{1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0};
};

/// One RK3 stage update over the valid region of the level:
///
///   G <- A * G + dt * dU;  U <- U + B * G
///
/// This is the single sanctioned home of the stage-update triple (lint rule
/// R7 forbids open-coded mult+saxpy+saxpy RK3 sequences elsewhere).
///
/// `fusedKernel == false` runs the seed's exact MultiFab::mult + 2x saxpy
/// sequence — three full-fab sweeps, three launches per fab.
/// `fusedKernel == true` (`core.fused`) runs one batched fused kernel that
/// performs the same per-cell operations in the same per-cell order
/// (gv = A*g; gv += dt*du; g = gv; u += B*gv), so the result is bitwise
/// identical while touching G and U once each.
void rk3StageUpdate(amr::MultiFab& G, amr::MultiFab& U,
                    const amr::MultiFab& dU, amr::Real A, amr::Real B,
                    amr::Real dt, bool fusedKernel);

} // namespace crocco::core
