#pragma once

#include "amr/Array4.hpp"

#include <array>

namespace crocco::core {

/// Williamson's 3rd-order low-storage (2N) Runge-Kutta scheme [Williamson
/// 1980], the time integrator CRoCCo propagates convective and viscous
/// fluxes with (§II-A). Per stage s:
///
///   G <- A[s] * G + dt * RHS(U)
///   U <- U + B[s] * G
///
/// Only U and one accumulator G are stored — the "low-storage" property
/// that matters on 16 GB GPUs.
struct Rk3 {
    static constexpr int nStages = 3;
    static constexpr std::array<amr::Real, 3> A{0.0, -5.0 / 9.0, -153.0 / 128.0};
    static constexpr std::array<amr::Real, 3> B{1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0};
};

} // namespace crocco::core
