#include "core/Rk3.hpp"

#include "amr/MultiFab.hpp"
#include "gpu/Gpu.hpp"

namespace crocco::core {

void rk3StageUpdate(amr::MultiFab& G, amr::MultiFab& U,
                    const amr::MultiFab& dU, amr::Real A, amr::Real B,
                    amr::Real dt, bool fusedKernel) {
    if (!fusedKernel) {
        // The seed's exact three-sweep sequence (allowlisted for lint R7):
        // three launches per fab, G and U each read+written from DRAM twice.
        const int ncomp = G.nComp();
        G.mult(A, 0, ncomp, 0);
        amr::MultiFab::saxpy(G, dt, dU, 0, 0, ncomp);
        amr::MultiFab::saxpy(U, B, G, 0, 0, ncomp);
        return;
    }

    // Fused stage update (`core.fused`): one batched kernel, every G and U
    // cell touched exactly once. Per cell/component the operation sequence
    // is textually the mult/saxpy/saxpy chain (gv *= A; gv += dt*du;
    // u += B*gv), so the result is bitwise identical to the unfused path.
    const int nf = G.numFabs();
    const int ncomp = G.nComp();
    gpu::BatchedParallelForIndex(nf, 1, [&](int f) {
        auto g = G.array(f);
        auto u = U.array(f);
        auto du = dU.const_array(f);
        gpu::ParallelFor(G.validBox(f), ncomp, [&](int i, int j, int k, int n) {
            amr::Real gv = g(i, j, k, n);
            gv *= A;
            gv += dt * du(i, j, k, n);
            g(i, j, k, n) = gv;
            u(i, j, k, n) += B * gv;
        });
    });
}

} // namespace crocco::core
