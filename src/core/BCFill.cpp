#include "core/BCFill.hpp"

#include <algorithm>
#include <cassert>

namespace crocco::core {

using amr::forEachCell;
using amr::IntVect;

Box ghostRegionOutside(const Box& fabBox, const Box& domain, int dim, int side) {
    IntVect lo = fabBox.smallEnd(), hi = fabBox.bigEnd();
    if (side == 0) {
        hi[dim] = domain.smallEnd(dim) - 1;
    } else {
        lo[dim] = domain.bigEnd(dim) + 1;
    }
    return Box(lo, hi);
}

Box bcSweepRegion(const Box& fabBox, const Box& domain, int dim, int side,
                  const Geometry& geom) {
    const Box r = ghostRegionOutside(fabBox, domain, dim, side);
    if (!r.ok()) return r;
    amr::IntVect lo = r.smallEnd(), hi = r.bigEnd();
    for (int dd = dim + 1; dd < amr::SpaceDim; ++dd) {
        if (geom.isPeriodic(dd)) continue;
        lo[dd] = std::max(lo[dd], domain.smallEnd(dd));
        hi[dd] = std::min(hi[dd], domain.bigEnd(dd));
    }
    return Box(lo, hi);
}

namespace {

void fillFace(amr::FArrayBox& fab, const Box& region, const Box& domain, int dim,
              int side, const FaceBC& bc) {
    if (!region.ok()) return;
    auto a = fab.array();
    // Mirror/edge sources are read through a const view: the sweep regions
    // guarantee every source cell was filled (by FillBoundary, the interior,
    // or an earlier sweep), and check builds verify exactly that.
    const auto s = fab.const_array();
    const int edge = side == 0 ? domain.smallEnd(dim) : domain.bigEnd(dim);
    forEachCell(region, [&](int i, int j, int k) {
        IntVect p{i, j, k};
        switch (bc.type) {
            case BCType::Periodic:
                break;
            case BCType::Outflow: {
                IntVect q = p;
                q[dim] = edge;
                for (int n = 0; n < NCONS; ++n)
                    a(p[0], p[1], p[2], n) = s(q[0], q[1], q[2], n);
                break;
            }
            case BCType::Dirichlet:
                for (int n = 0; n < NCONS; ++n)
                    a(p[0], p[1], p[2], n) = bc.state[static_cast<std::size_t>(n)];
                break;
            case BCType::SlipWall:
            case BCType::NoSlipWall: {
                // Mirror about the wall face: ghost cell m layers out maps to
                // interior cell m layers in.
                IntVect q = p;
                const int m = side == 0 ? edge - p[dim] : p[dim] - edge;
                q[dim] = side == 0 ? edge + m - 1 : edge - m + 1;
                for (int n = 0; n < NCONS; ++n)
                    a(p[0], p[1], p[2], n) = s(q[0], q[1], q[2], n);
                if (bc.type == BCType::SlipWall) {
                    const int mom = UMX + dim;
                    a(p[0], p[1], p[2], mom) = -s(q[0], q[1], q[2], mom);
                } else {
                    for (int mom = UMX; mom <= UMZ; ++mom)
                        a(p[0], p[1], p[2], mom) = -s(q[0], q[1], q[2], mom);
                }
                break;
            }
        }
    });
}

} // namespace

void applyBCs(MultiFab& mf, const Geometry& geom, const BCSpec& spec) {
    assert(mf.nComp() == NCONS);
    const Box& domain = geom.domain();
    for (int i = 0; i < mf.numFabs(); ++i) {
        const Box grown = mf.grownBox(i);
        for (int d = 0; d < amr::SpaceDim; ++d) {
            if (geom.isPeriodic(d)) continue;
            for (int side = 0; side < 2; ++side) {
                fillFace(mf.fab(i), bcSweepRegion(grown, domain, d, side, geom),
                         domain, d, side, spec.face[d][side]);
            }
        }
    }
}

amr::PhysBCFunct makeBCFunct(const BCSpec& spec) {
    return [spec](MultiFab& mf, const Geometry& geom, Real /*time*/) {
        applyBCs(mf, geom, spec);
    };
}

} // namespace crocco::core
