#pragma once

#include "amr/Box.hpp"
#include "core/FusedRhs.hpp"
#include "core/State.hpp"

namespace crocco::core {

using amr::Box;

/// Convective-flux reconstruction scheme.
enum class WenoScheme {
    JS5,   ///< classic 5th-order WENO of Jiang & Shu (3 upwind stencils)
    Symbo, ///< bandwidth-optimized symmetric WENO of Martín et al. (2006):
           ///< adds the downwind candidate stencil with optimized linear
           ///< weights and a relative-smoothness limiter (§II-A)
};

/// Kernel code structure (§IV-A): the same numerics written two ways.
enum class KernelVariant {
    FortranStyle, ///< original CPU structure: fused pencil loops with 1-D
                  ///< scratch reused across the line (the Fortran baseline)
    Portable,     ///< the GPU port's structure: staged ParallelFor kernels,
                  ///< one thread per cell, 3-D scratch in (device) global
                  ///< memory to avoid the data races of shared 1-D scratch
};

/// What the WENO scheme reconstructs (§II-A: CRoCCo reconstructs fluxes at
/// interfaces; production hypersonic runs project onto characteristic
/// fields first).
enum class Reconstruction {
    ComponentWise,      ///< reconstruct each conserved flux directly
    CharacteristicWise, ///< project the stencil onto the local Euler
                        ///< eigenvectors, reconstruct, project back —
                        ///< cleaner strong shocks at extra cost
};

/// Left-biased WENO reconstruction of the interface value at i+1/2 from the
/// six cell values f[0..5] holding {i-2, i-1, i, i+1, i+2, i+3}.
/// (JS5 ignores f[5].) The right-biased value at i+1/2 is obtained by
/// passing the reversed window for the opposite-sign characteristic family.
Real wenoReconstruct(const Real f[6], WenoScheme scheme);

/// The WENOx/WENOy/WENOz kernel of Algorithm 2: accumulate the convective
/// flux divergence of direction `dir` into dU over `validBox`.
///
///   dU -= (1/J) * d(F_hat)/dxi_dir,  F_hat at interfaces reconstructed by
///   WENO from Lax-Friedrichs-split contravariant cell fluxes.
///
/// `S` is the 5-component conserved state with NGHOST filled ghost cells;
/// `metrics` the 27-component grid metrics (also on the grown box);
/// `dxi` the computational cell spacing in `dir`.
void wenoFlux(int dir, const Array4<const Real>& S,
              const Array4<const Real>& metrics, const Box& validBox,
              const Array4<Real>& dU, Real dxi, const GasModel& gas,
              WenoScheme scheme, KernelVariant variant,
              Reconstruction recon = Reconstruction::ComponentWise);

/// Fused-pipeline variant of the Portable WENO sweep (`core.fused`): two
/// kernels instead of three.
///  * Stage A reads the shared primitive/metric `cache` (core/FusedRhs.hpp
///    layout, covering at least validBox.grow(dir, 3)) instead of
///    re-decoding toPrim and the Jacobian per cell.
///  * Stages B+C are collapsed into one pencil-indexed pass: each task owns
///    one line along `dir`, keeps the running previous-face flux in
///    registers, and accumulates the divergence directly into dU — the
///    face-flux fab's (modeled) DRAM round trip disappears and every
///    interface flux is evaluated exactly once, with the exact
///    interfaceFlux arithmetic of the unfused path.
///
/// With `firstTerm` the dir sweep *assigns* `0.0 - scale * dF` instead of
/// compound-subtracting, absorbing the unfused path's dU.setVal(0) —
/// bitwise the same value, one fewer full-fab sweep.
///
/// Bitwise-identical to wenoFlux(..., KernelVariant::Portable) by
/// construction: identical per-cell expressions over identical operands in
/// identical per-cell order (pinned by tests/core/fused_rhs_test).
void wenoFluxFused(int dir, const Array4<const Real>& S,
                   const Array4<const Real>& cache,
                   const Array4<const Real>& metrics, const Box& validBox,
                   const Array4<Real>& dU, Real dxi, const GasModel& gas,
                   WenoScheme scheme, Reconstruction recon, bool firstTerm);

} // namespace crocco::core
