#pragma once

#include "amr/Box.hpp"
#include "core/State.hpp"

namespace crocco::core::fused {

using amr::Array4;
using amr::Box;
using amr::Real;

/// Component layout of the shared primitive/metric cache of the fused RHS
/// pipeline (`core.fused`): one per-stage decode kernel stores toPrim's
/// outputs, the temperature, and the Jacobian determinant once per cell;
/// all three WENO sweeps and the viscous operator then consume the cache
/// instead of re-deriving pressure/sound-speed/EOS state and the 3x3
/// determinant per sweep (3-4x redundant work in the unfused path).
///
/// Bitwise contract: every cached value is produced by exactly the
/// expression the unfused kernels evaluate inline (toPrim, GasModel::
/// temperature, mesh::jacobian), so consumers that substitute a cache read
/// for the inline computation see bit-identical operands.
inline constexpr int QC_RHO = 0;
inline constexpr int QC_U = 1;
inline constexpr int QC_V = 2;
inline constexpr int QC_W = 3;
inline constexpr int QC_P = 4;
inline constexpr int QC_A = 5;
inline constexpr int QC_T = 6; ///< gas.temperature(rho, p) (viscous path)
inline constexpr int QC_J = 7; ///< mesh::jacobian determinant
inline constexpr int NCACHE = 8;

/// Fill `cache` (NCACHE components) over `box` from the conserved state and
/// metrics. One gpu::ParallelFor kernel; `box` must lie inside both fabs
/// (the caller sizes it to the RHS stencil width, <= NGHOST).
void computePrimCache(const Array4<const Real>& S,
                      const Array4<const Real>& metrics, const Box& box,
                      const Array4<Real>& cache, const GasModel& gas);

} // namespace crocco::core::fused
