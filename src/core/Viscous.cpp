#include "core/Viscous.hpp"

#include "amr/FArrayBox.hpp"
#include "gpu/Gpu.hpp"
#include "mesh/GridMetrics.hpp"

#include <cassert>

namespace crocco::core {

using amr::FArrayBox;
using amr::IntVect;
using mesh::jacobian;
using mesh::metric1;

namespace {

/// 4th-order central first derivative of scratch component m along dim d.
inline Real d1(const Array4<const Real>& f, int i, int j, int k, int m, int d,
               Real invdx) {
    const IntVect e = IntVect::basis(d);
    return (-f(i + 2 * e[0], j + 2 * e[1], k + 2 * e[2], m) +
            8.0 * f(i + e[0], j + e[1], k + e[2], m) -
            8.0 * f(i - e[0], j - e[1], k - e[2], m) +
            f(i - 2 * e[0], j - 2 * e[1], k - 2 * e[2], m)) *
           (invdx / 12.0);
}

// Scratch component layout.
constexpr int QU = 0, QV = 1, QW = 2, QT = 3, QRHO = 4, NPRIM = 5;
/// Contravariant viscous flux Theta^d: 3 momentum + 1 energy per direction.
constexpr int thetaComp(int d, int m) { return 4 * d + m; }

} // namespace

void viscousFlux(const Array4<const Real>& S, const Array4<const Real>& metrics,
                 const Box& validBox, const Array4<Real>& dU,
                 const std::array<Real, 3>& dxi, const GasModel& gas,
                 KernelVariant /*variant: both code paths share this staged
                                  implementation; the Fortran/C++ structural
                                  difference the paper measures is dominated
                                  by the WENO kernels (see Weno.cpp)*/,
                 const SgsModel& sgs) {
    assert(gas.viscous() || sgs.active());

    // Kernel 1: primitive fields over the widest region (pass 2 reads +-2).
    const Box primBox = validBox.grow(4);
    FArrayBox primFab(primBox, NPRIM);
    auto q = primFab.array();
    gpu::ParallelFor(primBox, [&](int i, int j, int k) {
        const Prim p = toPrim(S, i, j, k, gas);
        q(i, j, k, QU) = p.u;
        q(i, j, k, QV) = p.v;
        q(i, j, k, QW) = p.w;
        q(i, j, k, QT) = gas.temperature(p.rho, p.p);
        q(i, j, k, QRHO) = p.rho;
    });

    // Kernel 2: stress tensor, heat flux, and the contravariant viscous
    // fluxes Theta^d at every cell the divergence stencil reads.
    const Box fluxBox = validBox.grow(2);
    FArrayBox thetaFab(fluxBox, 12);
    auto th = thetaFab.array();
    auto qc = primFab.const_array();
    gpu::ParallelFor(fluxBox, [&](int i, int j, int k) {
        // Physical-space gradients by the chain rule:
        // dphi/dx_m = sum_d (dxi_d/dx_m) dphi/dxi_d.
        Real gxi[NPRIM][3]; // computational gradients
        for (int m = 0; m < NPRIM; ++m)
            for (int d = 0; d < 3; ++d)
                gxi[m][d] = d1(qc, i, j, k, m, d, 1.0 / dxi[static_cast<std::size_t>(d)]);
        Real M[3][3];
        for (int d = 0; d < 3; ++d)
            for (int m = 0; m < 3; ++m) M[d][m] = metrics(i, j, k, metric1(d, m));
        Real gu[3][3], gT[3];
        for (int m = 0; m < 3; ++m) {
            for (int vc = 0; vc < 3; ++vc) {
                gu[vc][m] = 0.0;
                for (int d = 0; d < 3; ++d) gu[vc][m] += M[d][m] * gxi[vc][d];
            }
            gT[m] = 0.0;
            for (int d = 0; d < 3; ++d) gT[m] += M[d][m] * gxi[QT][d];
        }
        // Velocity gradients in the layout the SGS model wants.
        Real gradU[3][3];
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b) gradU[a][b] = gu[a][b];
        const Real Jloc = jacobian(metrics, i, j, k);
        const Real delta =
            SgsModel::filterWidth(Jloc * dxi[0] * dxi[1] * dxi[2]);
        const Real muT =
            sgs.eddyViscosity(gradU, qc(i, j, k, QRHO), delta);
        const Real mu = gas.viscosity(qc(i, j, k, QT)) + muT;
        const Real lambda = gas.conductivity(qc(i, j, k, QT)) +
                            muT * gas.cp() / sgs.prandtlT;
        const Real divu = gu[0][0] + gu[1][1] + gu[2][2];
        Real tau[3][3];
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                tau[a][b] = mu * (gu[a][b] + gu[b][a] -
                                  (a == b ? (2.0 / 3.0) * divu : 0.0));
        const Real u[3] = {qc(i, j, k, QU), qc(i, j, k, QV), qc(i, j, k, QW)};
        const Real J = Jloc;
        for (int d = 0; d < 3; ++d) {
            for (int a = 0; a < 3; ++a) {
                Real s = 0.0;
                for (int b = 0; b < 3; ++b) s += M[d][b] * tau[a][b];
                th(i, j, k, thetaComp(d, a)) = J * s;
            }
            Real se = 0.0;
            for (int b = 0; b < 3; ++b) {
                Real work = lambda * gT[b];
                for (int a = 0; a < 3; ++a) work += u[a] * tau[a][b];
                se += M[d][b] * work;
            }
            th(i, j, k, thetaComp(d, 3)) = J * se;
        }
    });

    // Kernel 3: divergence of Theta into dU (viscous terms enter the RHS
    // with a positive sign).
    auto thc = thetaFab.const_array();
    gpu::ParallelFor(validBox, [&](int i, int j, int k) {
        const Real Jinv = 1.0 / jacobian(metrics, i, j, k);
        for (int d = 0; d < 3; ++d) {
            const Real invdx = 1.0 / dxi[static_cast<std::size_t>(d)];
            dU(i, j, k, UMX) += Jinv * d1(thc, i, j, k, thetaComp(d, 0), d, invdx);
            dU(i, j, k, UMY) += Jinv * d1(thc, i, j, k, thetaComp(d, 1), d, invdx);
            dU(i, j, k, UMZ) += Jinv * d1(thc, i, j, k, thetaComp(d, 2), d, invdx);
            dU(i, j, k, UEDEN) += Jinv * d1(thc, i, j, k, thetaComp(d, 3), d, invdx);
        }
    });
}

void viscousFluxFused(const Array4<const Real>& cache,
                      const Array4<const Real>& metrics, const Box& validBox,
                      const Array4<Real>& dU, const std::array<Real, 3>& dxi,
                      const GasModel& gas, const SgsModel& sgs) {
    assert(gas.viscous() || sgs.active());

    // Map the unfused scratch's component order (QU,QV,QW,QT,QRHO) onto the
    // shared-cache layout so the gradient loop runs in the identical order
    // over identical (bit-equal) operands.
    constexpr int cacheComp[NPRIM] = {fused::QC_U, fused::QC_V, fused::QC_W,
                                      fused::QC_T, fused::QC_RHO};

    // Kernel 1 (unfused kernel 2): theta from cached primitives.
    const Box fluxBox = validBox.grow(2);
    FArrayBox thetaFab(fluxBox, 12);
    auto th = thetaFab.array();
    gpu::ParallelFor(fluxBox, [&](int i, int j, int k) {
        Real gxi[NPRIM][3];
        for (int m = 0; m < NPRIM; ++m)
            for (int d = 0; d < 3; ++d)
                gxi[m][d] = d1(cache, i, j, k, cacheComp[m], d,
                               1.0 / dxi[static_cast<std::size_t>(d)]);
        Real M[3][3];
        for (int d = 0; d < 3; ++d)
            for (int m = 0; m < 3; ++m) M[d][m] = metrics(i, j, k, metric1(d, m));
        Real gu[3][3], gT[3];
        for (int m = 0; m < 3; ++m) {
            for (int vc = 0; vc < 3; ++vc) {
                gu[vc][m] = 0.0;
                for (int d = 0; d < 3; ++d) gu[vc][m] += M[d][m] * gxi[vc][d];
            }
            gT[m] = 0.0;
            for (int d = 0; d < 3; ++d) gT[m] += M[d][m] * gxi[QT][d];
        }
        Real gradU[3][3];
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b) gradU[a][b] = gu[a][b];
        const Real Jloc = cache(i, j, k, fused::QC_J);
        const Real delta =
            SgsModel::filterWidth(Jloc * dxi[0] * dxi[1] * dxi[2]);
        const Real muT =
            sgs.eddyViscosity(gradU, cache(i, j, k, fused::QC_RHO), delta);
        const Real mu = gas.viscosity(cache(i, j, k, fused::QC_T)) + muT;
        const Real lambda = gas.conductivity(cache(i, j, k, fused::QC_T)) +
                            muT * gas.cp() / sgs.prandtlT;
        const Real divu = gu[0][0] + gu[1][1] + gu[2][2];
        Real tau[3][3];
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                tau[a][b] = mu * (gu[a][b] + gu[b][a] -
                                  (a == b ? (2.0 / 3.0) * divu : 0.0));
        const Real u[3] = {cache(i, j, k, fused::QC_U),
                           cache(i, j, k, fused::QC_V),
                           cache(i, j, k, fused::QC_W)};
        const Real J = Jloc;
        for (int d = 0; d < 3; ++d) {
            for (int a = 0; a < 3; ++a) {
                Real s = 0.0;
                for (int b = 0; b < 3; ++b) s += M[d][b] * tau[a][b];
                th(i, j, k, thetaComp(d, a)) = J * s;
            }
            Real se = 0.0;
            for (int b = 0; b < 3; ++b) {
                Real work = lambda * gT[b];
                for (int a = 0; a < 3; ++a) work += u[a] * tau[a][b];
                se += M[d][b] * work;
            }
            th(i, j, k, thetaComp(d, 3)) = J * se;
        }
    });

    // Kernel 2 (unfused kernel 3): divergence, Jacobian from the cache.
    auto thc = thetaFab.const_array();
    gpu::ParallelFor(validBox, [&](int i, int j, int k) {
        const Real Jinv = 1.0 / cache(i, j, k, fused::QC_J);
        for (int d = 0; d < 3; ++d) {
            const Real invdx = 1.0 / dxi[static_cast<std::size_t>(d)];
            dU(i, j, k, UMX) += Jinv * d1(thc, i, j, k, thetaComp(d, 0), d, invdx);
            dU(i, j, k, UMY) += Jinv * d1(thc, i, j, k, thetaComp(d, 1), d, invdx);
            dU(i, j, k, UMZ) += Jinv * d1(thc, i, j, k, thetaComp(d, 2), d, invdx);
            dU(i, j, k, UEDEN) += Jinv * d1(thc, i, j, k, thetaComp(d, 3), d, invdx);
        }
    });
}

} // namespace crocco::core
