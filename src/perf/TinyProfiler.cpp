#include "perf/TinyProfiler.hpp"

#include "gpu/LaunchStats.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace crocco::perf {

TinyProfiler::Scope::Scope(TinyProfiler& p, std::string name)
    : prof_(p), name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      launchStart_(gpu::LaunchStats::count()) {}

TinyProfiler::Scope::~Scope() {
    const auto end = std::chrono::steady_clock::now();
    prof_.addTime(name_, std::chrono::duration<double>(end - start_).count());
    prof_.addLaunches(name_, static_cast<std::int64_t>(gpu::LaunchStats::count() -
                                                       launchStart_));
}

void TinyProfiler::addTime(const std::string& name, double seconds, std::int64_t calls) {
    Entry& e = entries_[name];
    e.name = name;
    e.seconds += seconds;
    e.calls += calls;
}

void TinyProfiler::addLaunches(const std::string& name, std::int64_t launches) {
    Entry& e = entries_[name];
    e.name = name;
    e.launches += launches;
}

void TinyProfiler::addBytes(const std::string& name, double bytes) {
    Entry& e = entries_[name];
    e.name = name;
    e.modeledBytes += bytes;
}

void TinyProfiler::addMessages(const std::string& name, std::int64_t msgs,
                               double bytes) {
    Entry& e = entries_[name];
    e.name = name;
    e.msgs += msgs;
    e.msgBytes += bytes;
}

double TinyProfiler::seconds(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
}

std::int64_t TinyProfiler::calls(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.calls;
}

std::int64_t TinyProfiler::launches(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.launches;
}

double TinyProfiler::modeledBytes(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.modeledBytes;
}

std::int64_t TinyProfiler::messages(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.msgs;
}

double TinyProfiler::messageBytes(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.msgBytes;
}

std::vector<TinyProfiler::Entry> TinyProfiler::report() const {
    std::vector<Entry> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.seconds > b.seconds; });
    return out;
}

std::string TinyProfiler::table() const {
    std::ostringstream os;
    os << std::left << std::setw(36) << "Region" << std::right << std::setw(12)
       << "Calls" << std::setw(16) << "Time (s)" << std::setw(12) << "Launches"
       << std::setw(14) << "Model MB" << std::setw(10) << "Msgs"
       << std::setw(12) << "Msg MB" << '\n';
    os << std::string(112, '-') << '\n';
    for (const Entry& e : report()) {
        os << std::left << std::setw(36) << e.name << std::right << std::setw(12)
           << e.calls << std::setw(16) << std::fixed << std::setprecision(6)
           << e.seconds << std::setw(12) << e.launches << std::setw(14)
           << std::setprecision(2) << e.modeledBytes / 1e6 << std::setw(10)
           << e.msgs << std::setw(12) << std::setprecision(2)
           << e.msgBytes / 1e6 << '\n';
    }
    return os.str();
}

} // namespace crocco::perf
