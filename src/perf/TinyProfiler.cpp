#include "perf/TinyProfiler.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace crocco::perf {

TinyProfiler::Scope::Scope(TinyProfiler& p, std::string name)
    : prof_(p), name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

TinyProfiler::Scope::~Scope() {
    const auto end = std::chrono::steady_clock::now();
    prof_.addTime(name_, std::chrono::duration<double>(end - start_).count());
}

void TinyProfiler::addTime(const std::string& name, double seconds, std::int64_t calls) {
    Entry& e = entries_[name];
    e.name = name;
    e.seconds += seconds;
    e.calls += calls;
}

double TinyProfiler::seconds(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
}

std::int64_t TinyProfiler::calls(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.calls;
}

std::vector<TinyProfiler::Entry> TinyProfiler::report() const {
    std::vector<Entry> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.seconds > b.seconds; });
    return out;
}

std::string TinyProfiler::table() const {
    std::ostringstream os;
    os << std::left << std::setw(36) << "Region" << std::right << std::setw(12)
       << "Calls" << std::setw(16) << "Time (s)" << '\n';
    os << std::string(64, '-') << '\n';
    for (const Entry& e : report()) {
        os << std::left << std::setw(36) << e.name << std::right << std::setw(12)
           << e.calls << std::setw(16) << std::fixed << std::setprecision(6)
           << e.seconds << '\n';
    }
    return os.str();
}

} // namespace crocco::perf
