#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace crocco::perf {

/// Region-based wall-clock profiler mirroring amrex::TinyProfiler, the tool
/// the paper used to collect Figs. 6-7. Regions are named, may nest, and
/// accumulate inclusive time + call counts. The machine model also charges
/// *modeled* time into regions via addTime(), so measured and simulated
/// profiles share one reporting path.
class TinyProfiler {
public:
    struct Entry {
        std::string name;
        double seconds = 0.0;
        std::int64_t calls = 0;
    };

    /// RAII timer for one region.
    class Scope {
    public:
        Scope(TinyProfiler& p, std::string name);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        TinyProfiler& prof_;
        std::string name_;
        std::chrono::steady_clock::time_point start_;
    };

    void addTime(const std::string& name, double seconds, std::int64_t calls = 1);

    double seconds(const std::string& name) const;
    std::int64_t calls(const std::string& name) const;
    bool has(const std::string& name) const { return entries_.count(name) > 0; }

    /// All regions sorted by descending time.
    std::vector<Entry> report() const;

    /// Render the report as a fixed-width table (like TinyProfiler output).
    std::string table() const;

    void reset() { entries_.clear(); }

private:
    std::map<std::string, Entry> entries_;
};

} // namespace crocco::perf
