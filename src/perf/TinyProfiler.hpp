#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace crocco::perf {

/// Region-based wall-clock profiler mirroring amrex::TinyProfiler, the tool
/// the paper used to collect Figs. 6-7. Regions are named, may nest, and
/// accumulate inclusive time + call counts. The machine model also charges
/// *modeled* time into regions via addTime(), so measured and simulated
/// profiles share one reporting path.
///
/// Two further modeled columns make the fused-pipeline wins observable per
/// region (and assertable in tests):
///  * launches — modeled device kernel launches, captured automatically by
///    Scope as the gpu::LaunchStats delta across the region;
///  * modeledBytes — modeled DRAM traffic, charged explicitly by the solver
///    via addBytes() from the KernelProfiles byte counts.
///
/// The exchange layer additionally charges per-region message traffic
/// (Msgs / MsgBytes columns) via addMessages(), so the rank-pair
/// aggregation's message-count reduction is visible per exchange tag.
class TinyProfiler {
public:
    struct Entry {
        std::string name;
        double seconds = 0.0;
        std::int64_t calls = 0;
        std::int64_t launches = 0;
        double modeledBytes = 0.0;
        std::int64_t msgs = 0;   ///< inter-rank messages sent in the region
        double msgBytes = 0.0;   ///< payload bytes of those messages
    };

    /// RAII timer for one region. Also snapshots the global launch counter
    /// so the region accumulates the kernel launches issued inside it.
    class Scope {
    public:
        Scope(TinyProfiler& p, std::string name);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        TinyProfiler& prof_;
        std::string name_;
        std::chrono::steady_clock::time_point start_;
        std::uint64_t launchStart_;
    };

    void addTime(const std::string& name, double seconds, std::int64_t calls = 1);
    void addLaunches(const std::string& name, std::int64_t launches);
    void addBytes(const std::string& name, double bytes);
    void addMessages(const std::string& name, std::int64_t msgs, double bytes);

    double seconds(const std::string& name) const;
    std::int64_t calls(const std::string& name) const;
    std::int64_t launches(const std::string& name) const;
    double modeledBytes(const std::string& name) const;
    std::int64_t messages(const std::string& name) const;
    double messageBytes(const std::string& name) const;
    bool has(const std::string& name) const { return entries_.count(name) > 0; }

    /// All regions sorted by descending time.
    std::vector<Entry> report() const;

    /// Render the report as a fixed-width table (like TinyProfiler output).
    std::string table() const;

    void reset() { entries_.clear(); }

private:
    std::map<std::string, Entry> entries_;
};

} // namespace crocco::perf
