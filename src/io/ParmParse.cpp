#include "io/ParmParse.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crocco::io {

namespace {

std::string trim(const std::string& s) {
    const auto a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos) return "";
    const auto b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

} // namespace

void ParmParse::parseText(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        line = trim(line);
        if (line.empty()) continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            throw std::runtime_error("deck line " + std::to_string(lineNo) +
                                     ": expected key = value");
        const std::string key = trim(line.substr(0, eq));
        const std::string rhs = trim(line.substr(eq + 1));
        if (key.empty() || rhs.empty())
            throw std::runtime_error("deck line " + std::to_string(lineNo) +
                                     ": empty key or value");
        std::istringstream vs(rhs);
        std::vector<std::string> values;
        std::string v;
        while (vs >> v) values.push_back(v);
        table_[key] = std::move(values);
        used_[key] = false;
    }
}

void ParmParse::parseFile(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open input deck " + path);
    std::stringstream buf;
    buf << is.rdbuf();
    parseText(buf.str());
}

void ParmParse::parseArgs(int argc, const char* const* argv) {
    std::string text;
    for (int i = 0; i < argc; ++i) {
        text += argv[i];
        text += '\n';
    }
    parseText(text);
}

const std::vector<std::string>* ParmParse::find(const std::string& key) const {
    auto it = table_.find(key);
    if (it == table_.end()) return nullptr;
    used_[key] = true;
    return &it->second;
}

bool ParmParse::contains(const std::string& key) const {
    return table_.count(key) > 0;
}

bool ParmParse::query(const std::string& key, int& out) const {
    if (const auto* v = find(key)) {
        out = std::stoi(v->front());
        return true;
    }
    return false;
}

bool ParmParse::query(const std::string& key, double& out) const {
    if (const auto* v = find(key)) {
        out = std::stod(v->front());
        return true;
    }
    return false;
}

bool ParmParse::query(const std::string& key, bool& out) const {
    if (const auto* v = find(key)) {
        const std::string& s = v->front();
        out = (s == "1" || s == "true" || s == "yes" || s == "on");
        return true;
    }
    return false;
}

bool ParmParse::query(const std::string& key, std::string& out) const {
    if (const auto* v = find(key)) {
        out = v->front();
        return true;
    }
    return false;
}

bool ParmParse::queryArr(const std::string& key, std::vector<double>& out) const {
    if (const auto* v = find(key)) {
        out.clear();
        for (const auto& s : *v) out.push_back(std::stod(s));
        return true;
    }
    return false;
}

int ParmParse::getInt(const std::string& key) const {
    int v = 0;
    if (!query(key, v)) throw std::runtime_error("missing deck key " + key);
    return v;
}

double ParmParse::getDouble(const std::string& key) const {
    double v = 0;
    if (!query(key, v)) throw std::runtime_error("missing deck key " + key);
    return v;
}

std::string ParmParse::getString(const std::string& key) const {
    std::string v;
    if (!query(key, v)) throw std::runtime_error("missing deck key " + key);
    return v;
}

std::vector<std::string> ParmParse::unusedKeys() const {
    std::vector<std::string> out;
    for (const auto& [key, wasUsed] : used_)
        if (!wasUsed) out.push_back(key);
    return out;
}

core::CroccoAmr::Config ParmParse::makeConfig(core::CroccoAmr::Config cfg) const {
    query("amr.max_level", cfg.amrInfo.maxLevel);
    query("amr.blocking_factor", cfg.amrInfo.blockingFactor);
    query("amr.max_grid_size", cfg.amrInfo.maxGridSize);
    query("amr.n_error_buf", cfg.amrInfo.nErrorBuf);
    query("amr.grid_eff", cfg.amrInfo.gridEff);
    query("amr.regrid_int", cfg.regridFreq);
    int ratio = 0;
    if (query("amr.ref_ratio", ratio)) cfg.amrInfo.refRatio = amr::IntVect(ratio);

    query("crocco.cfl", cfg.cfl);
    std::string s;
    if (query("crocco.weno_scheme", s)) {
        if (s == "js5") cfg.scheme = core::WenoScheme::JS5;
        else if (s == "symbo") cfg.scheme = core::WenoScheme::Symbo;
        else throw std::runtime_error("crocco.weno_scheme: unknown '" + s + "'");
    }
    if (query("crocco.reconstruction", s)) {
        if (s == "component") cfg.recon = core::Reconstruction::ComponentWise;
        else if (s == "characteristic")
            cfg.recon = core::Reconstruction::CharacteristicWise;
        else throw std::runtime_error("crocco.reconstruction: unknown '" + s + "'");
    }
    if (query("crocco.kernel_variant", s)) {
        if (s == "portable") cfg.variant = core::KernelVariant::Portable;
        else if (s == "fortran") cfg.variant = core::KernelVariant::FortranStyle;
        else throw std::runtime_error("crocco.kernel_variant: unknown '" + s + "'");
    }
    if (query("crocco.interp", s)) {
        if (s == "curvilinear") cfg.interp = core::InterpChoice::Curvilinear;
        else if (s == "trilinear") cfg.interp = core::InterpChoice::Trilinear;
        else if (s == "weno") cfg.interp = core::InterpChoice::Weno;
        else if (s == "conservative")
            cfg.interp = core::InterpChoice::ConservativeLinear;
        else throw std::runtime_error("crocco.interp: unknown '" + s + "'");
    }
    if (query("crocco.tagging", s)) {
        if (s == "density") cfg.tagging.criterion = core::TagCriterion::DensityGradient;
        else if (s == "momentum")
            cfg.tagging.criterion = core::TagCriterion::MomentumGradient;
        else if (s == "vorticity")
            cfg.tagging.criterion = core::TagCriterion::Vorticity;
        else throw std::runtime_error("crocco.tagging: unknown '" + s + "'");
    }
    query("crocco.tag_threshold", cfg.tagging.threshold);
    query("crocco.les_cs", cfg.sgs.cs);

    query("gas.gamma", cfg.gas.gamma);
    query("gas.r", cfg.gas.Rgas);
    query("gas.mu_ref", cfg.gas.muRef);
    query("gas.prandtl", cfg.gas.prandtl);

    query("gpu.num_threads", cfg.gpuNumThreads);
    // The GPU_NUM_THREADS environment variable overrides the deck so a
    // test/bench sweep can rerun the same inputs at different thread counts
    // without editing them (ctest's *_mt instances rely on this).
    if (const char* env = std::getenv("GPU_NUM_THREADS")) {
        try {
            cfg.gpuNumThreads = std::stoi(env);
        } catch (const std::exception&) {
            throw std::runtime_error("GPU_NUM_THREADS: not an integer");
        }
    }
    if (cfg.gpuNumThreads < 0)
        throw std::runtime_error("gpu.num_threads: must be >= 0 (0 = auto)");
    query("amr.comm_cache", cfg.commCache);
    query("amr.comm_cache_size", cfg.commCacheCapacity);
    if (cfg.commCacheCapacity < 0)
        throw std::runtime_error("amr.comm_cache_size: must be >= 0");
    query("core.overlap", cfg.overlap);
    query("core.fused", cfg.fused);

    query("resilience.health_checks", cfg.guard.enabled);
    query("resilience.max_retries", cfg.guard.maxRetries);
    query("resilience.dt_backoff", cfg.guard.dtBackoff);
    query("resilience.max_faults_reported", cfg.guard.maxFaultsReported);
    if (cfg.guard.maxRetries < 0)
        throw std::runtime_error("resilience.max_retries: must be >= 0");
    if (cfg.guard.dtBackoff <= 0.0 || cfg.guard.dtBackoff >= 1.0)
        throw std::runtime_error("resilience.dt_backoff: must be in (0, 1)");
    query("resilience.sdc_guard", cfg.sdc.guard);
    query("resilience.sdc_interval", cfg.sdc.interval);
    query("resilience.sdc_sample", cfg.sdc.sample);
    if (cfg.sdc.interval < 1)
        throw std::runtime_error("resilience.sdc_interval: must be >= 1");
    if (cfg.sdc.sample < 0)
        throw std::runtime_error("resilience.sdc_sample: must be >= 0 (0 = off)");

    query("comm.timeout", cfg.commTimeout);
    query("comm.verify", cfg.commVerify);
    query("comm.max_retransmits", cfg.commMaxRetransmits);
    query("comm.aggregate", cfg.commAggregate);
    query("comm.log_summary", cfg.commLogSummary);
    if (cfg.commTimeout < 0.0)
        throw std::runtime_error("comm.timeout: must be >= 0 (0 = default)");
    if (cfg.commMaxRetransmits < 0)
        throw std::runtime_error(
            "comm.max_retransmits: must be >= 0 (0 = default)");
    return cfg;
}

} // namespace crocco::io
