#pragma once

#include "core/CroccoAmr.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crocco::io {

/// AMReX-style input deck: `prefix.name = value` pairs from files and
/// command lines (§III-B: "How AMReX carries out this decomposition can be
/// controlled using various input deck parameters, including the number of
/// points in each direction and the blocking factor").
///
/// Grammar per line:   key = value [value...]   with `#` comments.
/// Later definitions override earlier ones (command line overrides file).
class ParmParse {
public:
    ParmParse() = default;

    /// Parse a deck file; throws std::runtime_error on malformed lines.
    void parseFile(const std::string& path);
    /// Parse argv-style "key=value" tokens (AMReX command-line overrides).
    void parseArgs(int argc, const char* const* argv);
    /// Parse deck text directly (used by tests).
    void parseText(const std::string& text);

    bool contains(const std::string& key) const;

    /// Typed lookups; the `query` forms leave `out` untouched when the key
    /// is absent, the `get` forms throw.
    bool query(const std::string& key, int& out) const;
    bool query(const std::string& key, double& out) const;
    bool query(const std::string& key, bool& out) const;
    bool query(const std::string& key, std::string& out) const;
    bool queryArr(const std::string& key, std::vector<double>& out) const;

    int getInt(const std::string& key) const;
    double getDouble(const std::string& key) const;
    std::string getString(const std::string& key) const;

    /// Keys that were never read — catches deck typos (AMReX's unused-
    /// parameter warning).
    std::vector<std::string> unusedKeys() const;

    /// Build a solver Config from the canonical CRoCCo deck keys:
    ///   amr.max_level, amr.blocking_factor, amr.max_grid_size,
    ///   amr.ref_ratio, amr.n_error_buf, amr.grid_eff, amr.regrid_int,
    ///   crocco.cfl, crocco.weno_scheme (js5|symbo),
    ///   crocco.reconstruction (component|characteristic),
    ///   crocco.kernel_variant (portable|fortran),
    ///   crocco.interp (curvilinear|trilinear|weno|conservative),
    ///   crocco.tagging (density|momentum|vorticity), crocco.tag_threshold,
    ///   crocco.les_cs, gas.gamma, gas.r, gas.mu_ref, gas.prandtl,
    ///   gpu.num_threads (0 = auto; the GPU_NUM_THREADS environment
    ///   variable overrides the deck), amr.comm_cache (on|off),
    ///   amr.comm_cache_size (LRU pattern bound, >= 0),
    ///   core.overlap (communication/computation overlap, on|off),
    ///   core.fused (fused RHS pipeline: shared primitive cache,
    ///   single-pass WENO flux+divergence, fused RK3 update, batched
    ///   launches; bitwise-identical to the unfused path, default off),
    ///   resilience.health_checks, resilience.max_retries (>= 0),
    ///   resilience.dt_backoff (in (0,1)), resilience.max_faults_reported.
    /// Unset keys keep the passed-in defaults.
    core::CroccoAmr::Config makeConfig(core::CroccoAmr::Config defaults = {}) const;

private:
    const std::vector<std::string>* find(const std::string& key) const;

    std::map<std::string, std::vector<std::string>> table_;
    mutable std::map<std::string, bool> used_;
};

} // namespace crocco::io
