#include "io/Plotfile.hpp"

#include <fstream>

namespace crocco::io {

using amr::Box;
using amr::IntVect;
using core::NCONS;

std::vector<std::string> fieldNames() {
    return {"rho", "u", "v", "w", "p"};
}

namespace {

std::array<double, 5> primitives(const amr::Array4<const amr::Real>& a, int i,
                                 int j, int k, const core::GasModel& gas) {
    const double rho = a(i, j, k, core::URHO);
    const double u = a(i, j, k, core::UMX) / rho;
    const double v = a(i, j, k, core::UMY) / rho;
    const double w = a(i, j, k, core::UMZ) / rho;
    const double p = gas.pressure(rho, u, v, w, a(i, j, k, core::UEDEN));
    return {rho, u, v, w, p};
}

} // namespace

void writeVtk(const core::CroccoAmr& solver, const std::string& prefix) {
    const core::GasModel gas; // primitive conversion (gamma-law)
    for (int lev = 0; lev <= solver.finestLevel(); ++lev) {
        std::ofstream os(prefix + "_lev" + std::to_string(lev) + ".vtk");
        os << "# vtk DataFile Version 3.0\n";
        os << "CRoCCo level " << lev << " t=" << solver.time() << "\n";
        os << "ASCII\nDATASET UNSTRUCTURED_GRID\n";

        const auto& U = solver.state(lev);
        const auto& X = solver.coords(lev);
        const std::int64_t ncells = U.numPts();
        // Each cell is written as an independent hexahedron with vertices
        // approximated from neighboring cell-center coordinates (simple and
        // robust for visualization; no shared-vertex bookkeeping).
        os << "POINTS " << 8 * ncells << " double\n";
        const auto dxi = solver.geom(lev).cellSizeArray();
        for (int f = 0; f < U.numFabs(); ++f) {
            auto x = X.const_array(f);
            amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
                for (int dk = 0; dk <= 1; ++dk)
                    for (int dj = 0; dj <= 1; ++dj)
                        for (int di = 0; di <= 1; ++di) {
                            // Corner = average of this center and the
                            // diagonal neighbor's (ghost coords are filled).
                            const int oi = di * 2 - 1, oj = dj * 2 - 1,
                                      ok = dk * 2 - 1;
                            for (int c = 0; c < 3; ++c)
                                os << 0.5 * (x(i, j, k, c) +
                                             x(i + oi, j + oj, k + ok, c))
                                   << (c == 2 ? '\n' : ' ');
                        }
            });
        }
        os << "CELLS " << ncells << ' ' << 9 * ncells << '\n';
        for (std::int64_t c = 0; c < ncells; ++c) {
            // VTK hexahedron vertex order from our (di,dj,dk) loop order.
            const std::int64_t b = 8 * c;
            os << "8 " << b + 0 << ' ' << b + 1 << ' ' << b + 3 << ' ' << b + 2
               << ' ' << b + 4 << ' ' << b + 5 << ' ' << b + 7 << ' ' << b + 6
               << '\n';
        }
        os << "CELL_TYPES " << ncells << '\n';
        for (std::int64_t c = 0; c < ncells; ++c) os << "12\n";

        os << "CELL_DATA " << ncells << '\n';
        const auto names = fieldNames();
        for (std::size_t n = 0; n < names.size(); ++n) {
            os << "SCALARS " << names[n] << " double 1\nLOOKUP_TABLE default\n";
            for (int f = 0; f < U.numFabs(); ++f) {
                auto a = U.const_array(f);
                amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
                    os << primitives(a, i, j, k, gas)[n] << '\n';
                });
            }
        }
        (void)dxi;
    }
}

void writeCsv(const core::CroccoAmr& solver, const std::string& path) {
    const core::GasModel gas;
    std::ofstream os(path);
    os << "x,y,z,level,rho,u,v,w,p\n";
    for (int lev = solver.finestLevel(); lev >= 0; --lev) {
        const auto& U = solver.state(lev);
        const auto& X = solver.coords(lev);
        for (int f = 0; f < U.numFabs(); ++f) {
            auto a = U.const_array(f);
            auto x = X.const_array(f);
            amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
                if (lev < solver.finestLevel()) {
                    const IntVect fine =
                        IntVect{i, j, k} * solver.refRatio();
                    if (solver.boxArray(lev + 1).contains(fine)) return;
                }
                const auto q = primitives(a, i, j, k, gas);
                os << x(i, j, k, 0) << ',' << x(i, j, k, 1) << ','
                   << x(i, j, k, 2) << ',' << lev;
                for (double v : q) os << ',' << v;
                os << '\n';
            });
        }
    }
}

} // namespace crocco::io
