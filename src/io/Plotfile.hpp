#pragma once

#include "core/CroccoAmr.hpp"

#include <string>
#include <vector>

namespace crocco::io {

/// Visualization output for the solver (AMReX provides grid I/O as one of
/// its "state-of-the-art methods", §VII-B; this is our equivalent).
///
/// Two formats:
///  * writeVtk: one legacy-VTK unstructured file per AMR level, cells as
///    hexahedra at their *physical* (curvilinear) positions with the
///    primitive fields attached — loadable in ParaView/VisIt.
///  * writeCsv: flat per-cell table (x, y, z, level, rho, u, v, w, p) of
///    the finest covering data, for scripted analysis.
///
/// Both write the conserved state converted to primitives.
void writeVtk(const core::CroccoAmr& solver, const std::string& prefix);
void writeCsv(const core::CroccoAmr& solver, const std::string& path);

/// Names of the fields emitted, in component order.
std::vector<std::string> fieldNames();

} // namespace crocco::io
