// crocco-analyze:allow-file(R6): MultiFab IS the verified-exchange layer —
// these isend/irecv posts are the ones SimComm's CRC/timeout/retransmit
// machinery wraps (see docs/correctness.md#r6).
#include "amr/MultiFab.hpp"

#include "amr/CommCache.hpp"
#include "check/Check.hpp"
#include "gpu/Gpu.hpp"
#include "gpu/Stream.hpp"
#include "resilience/Crc32.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace crocco::amr {

namespace {

/// RAII profiler region that is a no-op when the cache has no profiler
/// attached (MultiFab is usable without any perf instrumentation).
struct MaybeScope {
    perf::TinyProfiler* prof;
    const char* name;
    std::chrono::steady_clock::time_point start;
    explicit MaybeScope(const char* n)
        : prof(CommCache::instance().profiler()), name(n),
          start(std::chrono::steady_clock::now()) {}
    ~MaybeScope() {
        if (!prof) return;
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        prof->addTime(name, dt.count());
    }
};

/// CRC32 of one fab rectangle (the payload of a single copy descriptor):
/// cells in forEachCell (Fortran) order, components outermost, chained per
/// Real. Sender and receiver checksum the same region shape in the same
/// order, so equal data ⟺ equal checksum.
std::uint32_t regionCrc(const FArrayBox& f, const Box& region, int comp,
                        int ncomp) {
    std::uint32_t crc = 0;
    auto a = f.const_array();
    for (int n = comp; n < comp + ncomp; ++n) {
        forEachCell(region, [&](int i, int j, int k) {
            const Real v = a(i, j, k, n);
            crc = resilience::crc32(&v, sizeof(Real), crc);
        });
    }
    return crc;
}

/// Flip one bit of one Real inside a fab rectangle — the payload damage a
/// Corrupt fault does in flight. `word` deterministically selects the cell,
/// component, and bit.
void scrambleRegionBit(FArrayBox& f, const Box& region, int comp, int ncomp,
                       std::uint64_t word) {
    const std::int64_t nvals = region.numPts() * ncomp;
    if (nvals <= 0) return;
    const std::int64_t target =
        static_cast<std::int64_t>(word % static_cast<std::uint64_t>(nvals));
    const unsigned bit =
        static_cast<unsigned>((word >> 32) % (sizeof(Real) * 8));
    auto a = f.array();
    std::int64_t idx = 0;
    bool done = false;
    for (int n = comp; n < comp + ncomp && !done; ++n) {
        forEachCell(region, [&](int i, int j, int k) {
            if (done || idx++ != target) return;
            Real v = a(i, j, k, n);
            std::uint64_t bits = 0;
            std::memcpy(&bits, &v, sizeof(Real));
            bits ^= (std::uint64_t{1} << bit);
            std::memcpy(&v, &bits, sizeof(Real));
            a(i, j, k, n) = v;
            done = true;
        });
    }
}

} // namespace

/// Pattern snapshot + deferred copies + posted message requests of one
/// fillBoundaryBegin, alive until the matching End. The pattern is stored
/// by value: a CommCache LRU eviction between Begin and End must not
/// dangle the descriptors.
struct MultiFab::AsyncFillState {
    CommPattern pattern;
    gpu::Stream stream;
    std::vector<parallel::SimComm::Request> requests;
    /// Hardened mode only: sender-side CRC per copy descriptor, computed at
    /// Begin (the source valid data is immutable while the exchange is in
    /// flight); 0 for on-rank copies. End verifies the delivered ghosts
    /// against these.
    std::vector<std::uint32_t> srcCrcs;
    bool verified = false;
};

MultiFab::MultiFab(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                   int ngrow, parallel::SimComm* comm) {
    define(ba, dm, ncomp, ngrow, comm);
}

MultiFab::MultiFab(const MultiFab& o)
    : ba_(o.ba_), dm_(o.dm_), ncomp_(o.ncomp_), ngrow_(o.ngrow_),
      fabs_(o.fabs_), comm_(o.comm_) {
    if (o.asyncFill_) {
        throw std::logic_error("MultiFab copy with a ghost exchange in flight "
                               "(fillBoundaryBegin without fillBoundaryEnd)");
    }
}

MultiFab& MultiFab::operator=(const MultiFab& o) {
    if (this == &o) return *this;
    if (o.asyncFill_ || asyncFill_) {
        throw std::logic_error("MultiFab assignment with a ghost exchange in "
                               "flight (fillBoundaryBegin without fillBoundaryEnd)");
    }
    ba_ = o.ba_;
    dm_ = o.dm_;
    ncomp_ = o.ncomp_;
    ngrow_ = o.ngrow_;
    fabs_ = o.fabs_;
    comm_ = o.comm_;
    return *this;
}

MultiFab::MultiFab() = default;
MultiFab::MultiFab(MultiFab&&) noexcept = default;
MultiFab& MultiFab::operator=(MultiFab&&) noexcept = default;
MultiFab::~MultiFab() = default;

void MultiFab::define(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                      int ngrow, parallel::SimComm* comm) {
    assert(ba.size() == dm.size());
    assert(ncomp >= 1 && ngrow >= 0);
    ba_ = ba;
    dm_ = dm;
    ncomp_ = ncomp;
    ngrow_ = ngrow;
    comm_ = comm;
    asyncFill_.reset(); // redefining abandons any in-flight exchange
    fabs_.clear();
    fabs_.reserve(ba.size());
    for (int i = 0; i < ba.size(); ++i) fabs_.emplace_back(ba[i].grow(ngrow), ncomp);
    if constexpr (check::enabled) {
        // MultiFab storage models fresh device allocations: poison it and
        // start the shadow maps at Uninit so never-filled reads are caught
        // (bare FArrayBoxes — kernel scratch — stay value-initialized).
        for (int i = 0; i < ba.size(); ++i)
            fabs_[static_cast<std::size_t>(i)].markUninitialized(ba[i]);
    }
}

void MultiFab::invalidateGhosts() {
    if constexpr (check::enabled) {
        for (auto& f : fabs_) f.invalidateGhostShadow();
    }
}

void MultiFab::setVal(Real v) {
    // Each fab's sweep models one device kernel launch (FArrayBox loops do
    // not route through gpu::ParallelFor, so they are counted here).
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        fabs_[i].setVal(v);
    });
}

void MultiFab::setVal(Real v, int comp, int ncomp) {
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        fabs_[i].setVal(v, fabs_[i].box(), comp, ncomp);
    });
}

void MultiFab::replay(const CommPattern& pattern, const MultiFab& src,
                      int srcComp, int destComp, int numComp,
                      const std::string& tag, bool p2p) {
    // Copies target disjoint dst regions and read only src cells fillBoundary
    // never writes (valid cells of siblings / a const source MultiFab), so
    // descriptor order is free — but SimComm recording must match the build
    // order byte for byte, so the replay stays serial and in order.
    const bool verified = comm_ && comm_->exchangeVerification();
    for (const CopyDescriptor& d : pattern.copies) {
        const int srcRank = src.distributionMap()[d.srcFab];
        const int dstRank = dm_[d.dstFab];
        if (verified && srcRank != dstRank) {
            // Hardened path: the descriptor's copy is the payload delivery,
            // wrapped in CRC verification + the fault injector. Byte order
            // of the recorded stream matches the plain path (one message
            // per off-rank descriptor, in build order), with fault traffic
            // (retransmits, NACKs) appended where faults strike.
            const std::int64_t bytes =
                d.npts * numComp * static_cast<std::int64_t>(sizeof(Real));
            const Box srcRegion = d.region.shift(d.shift);
            parallel::SimComm::Transfer t;
            t.src = srcRank;
            t.dst = dstRank;
            t.bytes = bytes;
            t.kind = p2p ? parallel::MessageKind::PointToPoint
                         : parallel::MessageKind::ParallelCopy;
            t.tag = tag;
            t.deliver = [&, this] {
                fabs_[d.dstFab].copyFrom(src.fab(d.srcFab), d.region, srcComp,
                                         destComp, numComp, d.shift);
            };
            t.payloadCrc = [&] {
                return regionCrc(src.fab(d.srcFab), srcRegion, srcComp, numComp);
            };
            t.deliveredCrc = [&, this] {
                return regionCrc(fabs_[d.dstFab], d.region, destComp, numComp);
            };
            t.scramble = [&, this](std::uint64_t w) {
                scrambleRegionBit(fabs_[d.dstFab], d.region, destComp, numComp, w);
            };
            comm_->sendVerified(t);
            continue;
        }
        fabs_[d.dstFab].copyFrom(src.fab(d.srcFab), d.region, srcComp, destComp,
                                 numComp, d.shift);
        if (!comm_) continue;
        const std::int64_t bytes =
            d.npts * numComp * static_cast<std::int64_t>(sizeof(Real));
        if (p2p) {
            comm_->recordP2P(srcRank, dstRank, bytes, tag);
        } else if (srcRank != dstRank) {
            comm_->recordMessage(srcRank, dstRank, bytes,
                                 parallel::MessageKind::ParallelCopy, tag);
        }
    }
}

namespace {

/// Check-build replay guard: a sampled cache hit re-derives the pattern and
/// requires it byte-identical to the cached descriptors — the invariant the
/// CommCache invalidation rules promise (docs/performance.md). A mismatch
/// means a stale pattern survived a layout change.
void verifyReplay(const CommPattern& cached, const CommPattern& rebuilt,
                  const char* what) {
    if (cached == rebuilt) return;
    std::ostringstream os;
    os << what << " cache replay diverges from re-derivation: cached "
       << cached.copies.size() << " copies (srcSize=" << cached.srcSize
       << ", dstSize=" << cached.dstSize << "), rebuilt "
       << rebuilt.copies.size() << " copies (srcSize=" << rebuilt.srcSize
       << ", dstSize=" << rebuilt.dstSize << ")";
    for (std::size_t c = 0;
         c < cached.copies.size() && c < rebuilt.copies.size(); ++c) {
        if (cached.copies[c] == rebuilt.copies[c]) continue;
        os << "; first differing descriptor at index " << c;
        break;
    }
    check::fail(check::Kind::CommCache, os.str());
}

} // namespace

CommPattern MultiFab::buildFillBoundaryPattern(
    const std::vector<IntVect>& shifts) const {
    CommPattern pattern;
    pattern.srcSize = pattern.dstSize = ba_.size();
    for (int i = 0; i < numFabs(); ++i) {
        // Ghost region of fab i = allocated box minus valid box.
        for (const Box& g : boxDiff(grownBox(i), ba_[i])) {
            for (const IntVect& s : shifts) {
                // A ghost cell at index p is filled from valid cell p + s
                // of a periodic image (s == 0 covers interior neighbors).
                for (const auto& [j, isect] : ba_.intersections(g.shift(s))) {
                    const Box dstRegion = isect.shift(-s);
                    pattern.copies.push_back(
                        {i, j, dstRegion, s, dstRegion.numPts()});
                }
            }
        }
    }
    return pattern;
}

void MultiFab::fillBoundary(const Geometry& geom) {
    const auto shifts = geom.periodicShifts();
    CommCache& cache = CommCache::instance();
    if (comm_) cache.noteCommSize(comm_->size());
    const CommCache::Key key{ba_.id(), ba_.id(), ngrow_, 0, hashShifts(shifts),
                             CommCache::FillBoundary};
    const bool cacheable = cache.enabled() && ba_.id() != 0;
    if (cacheable) {
        if (const CommPattern* pat = cache.lookup(key, ba_.size(), ba_.size())) {
            if (check::enabled && check::commGuardShouldVerify())
                verifyReplay(*pat, buildFillBoundaryPattern(shifts),
                             "FillBoundary");
            MaybeScope scope("CommCacheHit");
            replay(*pat, *this, 0, 0, ncomp_, "FillBoundary", /*p2p=*/true);
            return;
        }
    }
    CommPattern pattern;
    {
        MaybeScope scope("CommCacheBuild");
        pattern = buildFillBoundaryPattern(shifts);
    }
    const CommPattern& stored =
        cacheable ? cache.insert(key, std::move(pattern)) : pattern;
    replay(stored, *this, 0, 0, ncomp_, "FillBoundary", /*p2p=*/true);
}

void MultiFab::fillBoundaryBegin(const Geometry& geom) {
    if (asyncFill_) {
        throw std::logic_error("MultiFab::fillBoundaryBegin with an exchange "
                               "already in flight (missing fillBoundaryEnd)");
    }
    const auto shifts = geom.periodicShifts();
    CommCache& cache = CommCache::instance();
    if (comm_) cache.noteCommSize(comm_->size());
    const CommCache::Key key{ba_.id(), ba_.id(), ngrow_, 0, hashShifts(shifts),
                             CommCache::FillBoundary};
    const bool cacheable = cache.enabled() && ba_.id() != 0;
    auto st = std::make_unique<AsyncFillState>();
    st->verified = comm_ && comm_->exchangeVerification();
    bool resolved = false;
    if (cacheable) {
        if (const CommPattern* pat = cache.lookup(key, ba_.size(), ba_.size())) {
            if (check::enabled && check::commGuardShouldVerify())
                verifyReplay(*pat, buildFillBoundaryPattern(shifts),
                             "FillBoundary");
            MaybeScope scope("CommCacheHit");
            st->pattern = *pat;
            resolved = true;
        }
    }
    if (!resolved) {
        MaybeScope scope("CommCacheBuild");
        st->pattern = buildFillBoundaryPattern(shifts);
        if (cacheable) cache.insert(key, CommPattern(st->pattern));
    }
    // Post the exchange: the data copies are deferred on the stream (End
    // drains them in enqueue == build order) and the off-rank messages are
    // posted as nonblocking sends completed at End in posting order — both
    // byte-identical to the blocking fillBoundary.
    for (const CopyDescriptor& d : st->pattern.copies) {
        st->stream.enqueue([this, d] {
            fabs_[d.dstFab].copyFrom(fabs_[d.srcFab], d.region, 0, 0, ncomp_,
                                     d.shift);
        });
        if (!comm_) {
            continue;
        }
        const int srcRank = dm_[d.srcFab];
        const int dstRank = dm_[d.dstFab];
        if (srcRank == dstRank) { // on-rank copies never hit the network
            if (st->verified) st->srcCrcs.push_back(0);
            continue;
        }
        const std::int64_t bytes =
            d.npts * ncomp_ * static_cast<std::int64_t>(sizeof(Real));
        std::uint32_t crc = 0;
        if (st->verified) {
            // Checksum the payload at post time: the source valid cells are
            // immutable while the exchange is in flight (that is the overlap
            // contract), so this is the CRC the wire carries.
            crc = regionCrc(fabs_[d.srcFab], d.region.shift(d.shift), 0, ncomp_);
            st->srcCrcs.push_back(crc);
        }
        st->requests.push_back(comm_->isend(
            srcRank, dstRank, bytes, parallel::MessageKind::PointToPoint,
            "FillBoundary", crc));
        if (st->verified) {
            // The hardened exchange posts the matching receive (lint rule
            // R6: a posted payload always has a receiver with a timeout +
            // CRC policy). The plain path keeps the seed's send-only
            // recording so its message stream stays byte-identical.
            st->requests.push_back(comm_->irecv(srcRank, dstRank,
                                                "FillBoundary"));
        }
    }
    asyncFill_ = std::move(st);
}

void MultiFab::fillBoundaryEnd(const std::source_location& loc) {
    if (!asyncFill_) {
        throw std::logic_error(
            std::string("MultiFab::fillBoundaryEnd without a matching "
                        "fillBoundaryBegin at ") +
            loc.file_name() + ":" + std::to_string(loc.line()));
    }
    asyncFill_->stream.synchronize();
    if (comm_) comm_->waitall(asyncFill_->requests);
    if (comm_ && asyncFill_->verified) {
        // Post-hoc verification of the drained exchange: every off-rank
        // payload is CRC-checked against the checksum posted at Begin;
        // corruption/duplication faults strike here (the async analogue of
        // sendVerified) and are NACK'd + retransmitted before the caller
        // sees the ghosts.
        std::size_t ci = 0;
        for (const CopyDescriptor& d : asyncFill_->pattern.copies) {
            const int srcRank = dm_[d.srcFab];
            const int dstRank = dm_[d.dstFab];
            if (srcRank == dstRank) {
                ++ci;
                continue;
            }
            const std::int64_t bytes =
                d.npts * ncomp_ * static_cast<std::int64_t>(sizeof(Real));
            const std::uint32_t want = asyncFill_->srcCrcs[ci++];
            parallel::SimComm::Transfer t;
            t.src = srcRank;
            t.dst = dstRank;
            t.bytes = bytes;
            t.kind = parallel::MessageKind::PointToPoint;
            t.tag = "FillBoundary";
            t.deliver = [this, d] {
                fabs_[d.dstFab].copyFrom(fabs_[d.srcFab], d.region, 0, 0,
                                         ncomp_, d.shift);
            };
            t.payloadCrc = [want] { return want; };
            t.deliveredCrc = [this, d] {
                return regionCrc(fabs_[d.dstFab], d.region, 0, ncomp_);
            };
            t.scramble = [this, d](std::uint64_t w) {
                scrambleRegionBit(fabs_[d.dstFab], d.region, 0, ncomp_, w);
            };
            comm_->verifyDelivered(t);
        }
    }
    asyncFill_.reset();
}

void MultiFab::parallelCopy(const MultiFab& src, int srcComp, int destComp,
                            int numComp, int dstNGrow, int srcNGrow,
                            const std::string& tag,
                            const Geometry* geomForPeriodicity) {
    assert(dstNGrow <= ngrow_ && srcNGrow <= src.nGrow());
    assert(srcComp + numComp <= src.nComp() && destComp + numComp <= ncomp_);
    std::vector<IntVect> shifts{IntVect::zero()};
    if (geomForPeriodicity) shifts = geomForPeriodicity->periodicShifts();
    CommCache& cache = CommCache::instance();
    if (comm_) cache.noteCommSize(comm_->size());
    const CommCache::Key key{src.boxArray().id(), ba_.id(), dstNGrow, srcNGrow,
                             hashShifts(shifts), CommCache::ParallelCopy};
    const bool cacheable =
        cache.enabled() && ba_.id() != 0 && src.boxArray().id() != 0;
    if (cacheable) {
        if (const CommPattern* pat =
                cache.lookup(key, src.boxArray().size(), ba_.size())) {
            if (check::enabled && check::commGuardShouldVerify())
                verifyReplay(
                    *pat,
                    buildParallelCopyPattern(src, dstNGrow, srcNGrow, shifts),
                    "ParallelCopy");
            MaybeScope scope("CommCacheHit");
            replay(*pat, src, srcComp, destComp, numComp, tag, /*p2p=*/false);
            return;
        }
    }
    CommPattern pattern;
    {
        MaybeScope scope("CommCacheBuild");
        pattern = buildParallelCopyPattern(src, dstNGrow, srcNGrow, shifts);
    }
    const CommPattern& stored =
        cacheable ? cache.insert(key, std::move(pattern)) : pattern;
    replay(stored, src, srcComp, destComp, numComp, tag, /*p2p=*/false);
}

CommPattern MultiFab::buildParallelCopyPattern(
    const MultiFab& src, int dstNGrow, int srcNGrow,
    const std::vector<IntVect>& shifts) const {
    CommPattern pattern;
    pattern.srcSize = src.boxArray().size();
    pattern.dstSize = ba_.size();
    for (int i = 0; i < numFabs(); ++i) {
        const Box dstRegion = ba_[i].grow(dstNGrow);
        for (const IntVect& s : shifts) {
            // A dst cell at index p receives src cell p + s (s != 0
            // reaches across a periodic boundary into the domain image).
            // The hash query is over ungrown boxes, so widen it by
            // srcNGrow and re-intersect against the grown source box.
            for (const auto& [j, coarse] : src.boxArray().intersections(
                     dstRegion.shift(s).grow(srcNGrow))) {
                const Box isect =
                    src.boxArray()[j].grow(srcNGrow) & dstRegion.shift(s);
                if (!isect.ok()) continue;
                (void)coarse;
                pattern.copies.push_back(
                    {i, j, isect.shift(-s), s, isect.numPts()});
            }
        }
    }
    return pattern;
}

void MultiFab::mult(Real a, int comp, int numComp, int ngrow) {
    assert(comp + numComp <= ncomp_);
    assert(ngrow >= 0 && ngrow <= ngrow_);
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        auto arr = fabs_[i].array();
        for (int n = comp; n < comp + numComp; ++n)
            forEachCell(ba_[i].grow(ngrow), [&](int ii, int j, int k) {
                arr(ii, j, k, n) *= a;
            });
    });
}

void MultiFab::copy(MultiFab& dst, const MultiFab& src, int srcComp, int destComp,
                    int numComp, int ngrow) {
    assert(dst.boxArray() == src.boxArray());
    assert(ngrow <= dst.nGrow() && ngrow <= src.nGrow());
    gpu::ParallelForIndex(dst.numFabs(), [&](int i) {
        dst.fabs_[i].copyFrom(src.fab(i), dst.ba_[i].grow(ngrow), srcComp,
                              destComp, numComp);
    });
}

void MultiFab::saxpy(MultiFab& dst, Real a, const MultiFab& src, int srcComp,
                     int destComp, int numComp) {
    assert(dst.boxArray() == src.boxArray());
    gpu::ParallelForIndex(dst.numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        dst.fabs_[i].saxpy(a, src.fab(i), dst.ba_[i], srcComp, destComp, numComp);
    });
}

// The reductions below compute one partial per fab (each fab's sweep is the
// serial Fortran-order loop) and combine the partials in fab-index order.
// The decomposition and the combination order depend only on the BoxArray,
// never on the thread count, so results are bitwise identical for every
// gpu.num_threads setting — the determinism contract of docs/performance.md.

Real MultiFab::min(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()),
                              std::numeric_limits<Real>::infinity());
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        partial[static_cast<std::size_t>(i)] = fabs_[i].min(ba_[i], comp);
    });
    Real m = std::numeric_limits<Real>::infinity();
    for (Real p : partial) m = std::min(m, p);
    return m;
}

Real MultiFab::max(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()),
                              -std::numeric_limits<Real>::infinity());
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        partial[static_cast<std::size_t>(i)] = fabs_[i].max(ba_[i], comp);
    });
    Real m = -std::numeric_limits<Real>::infinity();
    for (Real p : partial) m = std::max(m, p);
    return m;
}

Real MultiFab::sum(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()), 0.0);
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        partial[static_cast<std::size_t>(i)] = fabs_[i].sum(ba_[i], comp);
    });
    Real s = 0.0;
    for (Real p : partial) s += p;
    return s;
}

Real MultiFab::norm2(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()), 0.0);
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        auto a = const_array(i);
        Real p = 0.0;
        forEachCell(ba_[i], [&](int ii, int j, int k) {
            const Real v = a(ii, j, k, comp);
            p += v * v;
        });
        partial[static_cast<std::size_t>(i)] = p;
    });
    Real s = 0.0;
    for (Real p : partial) s += p;
    return std::sqrt(s);
}

Real MultiFab::l2Diff(const MultiFab& a, const MultiFab& b, int comp) {
    assert(a.boxArray() == b.boxArray());
    std::vector<Real> partial(static_cast<std::size_t>(a.numFabs()), 0.0);
    gpu::ParallelForIndex(a.numFabs(), [&](int i) {
        const Real d = FArrayBox::l2Diff(a.fab(i), b.fab(i), a.ba_[i], comp);
        partial[static_cast<std::size_t>(i)] = d * d;
    });
    Real s = 0.0;
    for (Real p : partial) s += p;
    return std::sqrt(s);
}

} // namespace crocco::amr
