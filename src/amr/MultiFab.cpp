#include "amr/MultiFab.hpp"

#include <cassert>
#include <cmath>

namespace crocco::amr {

MultiFab::MultiFab(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                   int ngrow, parallel::SimComm* comm) {
    define(ba, dm, ncomp, ngrow, comm);
}

void MultiFab::define(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                      int ngrow, parallel::SimComm* comm) {
    assert(ba.size() == dm.size());
    assert(ncomp >= 1 && ngrow >= 0);
    ba_ = ba;
    dm_ = dm;
    ncomp_ = ncomp;
    ngrow_ = ngrow;
    comm_ = comm;
    fabs_.clear();
    fabs_.reserve(ba.size());
    for (int i = 0; i < ba.size(); ++i) fabs_.emplace_back(ba[i].grow(ngrow), ncomp);
}

void MultiFab::setVal(Real v) {
    for (FArrayBox& f : fabs_) f.setVal(v);
}

void MultiFab::setVal(Real v, int comp, int ncomp) {
    for (FArrayBox& f : fabs_) f.setVal(v, f.box(), comp, ncomp);
}

void MultiFab::fillBoundary(const Geometry& geom) {
    const auto shifts = geom.periodicShifts();
    for (int i = 0; i < numFabs(); ++i) {
        // Ghost region of fab i = allocated box minus valid box.
        for (const Box& g : boxDiff(grownBox(i), ba_[i])) {
            for (const IntVect& s : shifts) {
                // A ghost cell at index p is filled from valid cell p + s of
                // a periodic image (s == 0 covers interior neighbors).
                for (const auto& [j, isect] : ba_.intersections(g.shift(s))) {
                    const Box dstRegion = isect.shift(-s);
                    fabs_[i].copyFrom(fabs_[j], dstRegion, 0, 0, ncomp_, s);
                    if (comm_) {
                        comm_->recordP2P(dm_[j], dm_[i],
                                         isect.numPts() * ncomp_ *
                                             static_cast<std::int64_t>(sizeof(Real)),
                                         "FillBoundary");
                    }
                }
            }
        }
    }
}

void MultiFab::parallelCopy(const MultiFab& src, int srcComp, int destComp,
                            int numComp, int dstNGrow, int srcNGrow,
                            const std::string& tag,
                            const Geometry* geomForPeriodicity) {
    assert(dstNGrow <= ngrow_ && srcNGrow <= src.nGrow());
    assert(srcComp + numComp <= src.nComp() && destComp + numComp <= ncomp_);
    std::vector<IntVect> shifts{IntVect::zero()};
    if (geomForPeriodicity) shifts = geomForPeriodicity->periodicShifts();
    for (int i = 0; i < numFabs(); ++i) {
        const Box dstRegion = ba_[i].grow(dstNGrow);
        for (const IntVect& s : shifts) {
            // A dst cell at index p receives src cell p + s (s != 0 reaches
            // across a periodic boundary into the domain image). The hash
            // query is over ungrown boxes, so widen it by srcNGrow and
            // re-intersect against the grown source box.
            for (const auto& [j, coarse] : src.boxArray().intersections(
                     dstRegion.shift(s).grow(srcNGrow))) {
                const Box isect =
                    src.boxArray()[j].grow(srcNGrow) & dstRegion.shift(s);
                if (!isect.ok()) continue;
                (void)coarse;
                fabs_[i].copyFrom(src.fab(j), isect.shift(-s), srcComp, destComp,
                                  numComp, s);
                if (comm_ && dm_[i] != src.distributionMap()[j]) {
                    comm_->recordMessage(src.distributionMap()[j], dm_[i],
                                         isect.numPts() * numComp *
                                             static_cast<std::int64_t>(sizeof(Real)),
                                         parallel::MessageKind::ParallelCopy, tag);
                }
            }
        }
    }
}

void MultiFab::mult(Real a, int comp, int numComp) {
    assert(comp + numComp <= ncomp_);
    for (int i = 0; i < numFabs(); ++i) {
        auto arr = fabs_[i].array();
        for (int n = comp; n < comp + numComp; ++n)
            forEachCell(fabs_[i].box(), [&](int ii, int j, int k) {
                arr(ii, j, k, n) *= a;
            });
    }
}

void MultiFab::copy(MultiFab& dst, const MultiFab& src, int srcComp, int destComp,
                    int numComp, int ngrow) {
    assert(dst.boxArray() == src.boxArray());
    assert(ngrow <= dst.nGrow() && ngrow <= src.nGrow());
    for (int i = 0; i < dst.numFabs(); ++i) {
        dst.fabs_[i].copyFrom(src.fab(i), dst.ba_[i].grow(ngrow), srcComp,
                              destComp, numComp);
    }
}

void MultiFab::saxpy(MultiFab& dst, Real a, const MultiFab& src, int srcComp,
                     int destComp, int numComp) {
    assert(dst.boxArray() == src.boxArray());
    for (int i = 0; i < dst.numFabs(); ++i)
        dst.fabs_[i].saxpy(a, src.fab(i), dst.ba_[i], srcComp, destComp, numComp);
}

Real MultiFab::min(int comp) const {
    Real m = std::numeric_limits<Real>::infinity();
    for (int i = 0; i < numFabs(); ++i) m = std::min(m, fabs_[i].min(ba_[i], comp));
    return m;
}

Real MultiFab::max(int comp) const {
    Real m = -std::numeric_limits<Real>::infinity();
    for (int i = 0; i < numFabs(); ++i) m = std::max(m, fabs_[i].max(ba_[i], comp));
    return m;
}

Real MultiFab::sum(int comp) const {
    Real s = 0.0;
    for (int i = 0; i < numFabs(); ++i) s += fabs_[i].sum(ba_[i], comp);
    return s;
}

Real MultiFab::norm2(int comp) const {
    Real s = 0.0;
    for (int i = 0; i < numFabs(); ++i) {
        auto a = const_array(i);
        forEachCell(ba_[i], [&](int ii, int j, int k) {
            const Real v = a(ii, j, k, comp);
            s += v * v;
        });
    }
    return std::sqrt(s);
}

Real MultiFab::l2Diff(const MultiFab& a, const MultiFab& b, int comp) {
    assert(a.boxArray() == b.boxArray());
    Real s = 0.0;
    for (int i = 0; i < a.numFabs(); ++i) {
        const Real d = FArrayBox::l2Diff(a.fab(i), b.fab(i), a.ba_[i], comp);
        s += d * d;
    }
    return std::sqrt(s);
}

} // namespace crocco::amr
