// crocco-analyze:allow-file(R6): MultiFab IS the verified-exchange layer —
// these isend/irecv posts are the ones SimComm's CRC/timeout/retransmit
// machinery wraps (see docs/correctness.md#r6).
#include "amr/MultiFab.hpp"

#include "amr/CommCache.hpp"
#include "check/Check.hpp"
#include "gpu/Arena.hpp"
#include "gpu/Gpu.hpp"
#include "gpu/Stream.hpp"
#include "resilience/Crc32.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace crocco::amr {

namespace {

/// RAII profiler region that is a no-op when the cache has no profiler
/// attached (MultiFab is usable without any perf instrumentation).
struct MaybeScope {
    perf::TinyProfiler* prof;
    const char* name;
    std::chrono::steady_clock::time_point start;
    explicit MaybeScope(const char* n)
        : prof(CommCache::instance().profiler()), name(n),
          start(std::chrono::steady_clock::now()) {}
    ~MaybeScope() {
        if (!prof) return;
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        prof->addTime(name, dt.count());
    }
};

/// CRC32 of one fab rectangle (the payload of a single copy descriptor):
/// cells in forEachCell (Fortran) order, components outermost, chained per
/// Real. Sender and receiver checksum the same region shape in the same
/// order, so equal data ⟺ equal checksum. `crc` seeds the chain so an
/// aggregated message can checksum its slots back to back — the seeded
/// chain over the slot regions equals the flat CRC over the packed buffer.
std::uint32_t regionCrc(const FArrayBox& f, const Box& region, int comp,
                        int ncomp, std::uint32_t crc = 0) {
    auto a = f.const_array();
    for (int n = comp; n < comp + ncomp; ++n) {
        forEachCell(region, [&](int i, int j, int k) {
            const Real v = a(i, j, k, n);
            crc = resilience::crc32(&v, sizeof(Real), crc);
        });
    }
    return crc;
}

/// Flip `bit` of the `target`-th value (forEachCell order, components
/// outermost — the packing order) inside a fab rectangle.
void scrambleRegionValue(FArrayBox& f, const Box& region, int comp, int ncomp,
                         std::int64_t target, unsigned bit) {
    auto a = f.array();
    std::int64_t idx = 0;
    bool done = false;
    for (int n = comp; n < comp + ncomp && !done; ++n) {
        forEachCell(region, [&](int i, int j, int k) {
            if (done || idx++ != target) return;
            Real v = a(i, j, k, n);
            std::uint64_t bits = 0;
            std::memcpy(&bits, &v, sizeof(Real));
            bits ^= (std::uint64_t{1} << bit);
            std::memcpy(&v, &bits, sizeof(Real));
            a(i, j, k, n) = v;
            done = true;
        });
    }
}

/// Flip one bit of one Real inside a fab rectangle — the payload damage a
/// Corrupt fault does in flight. `word` deterministically selects the cell,
/// component, and bit.
void scrambleRegionBit(FArrayBox& f, const Box& region, int comp, int ncomp,
                       std::uint64_t word) {
    const std::int64_t nvals = region.numPts() * ncomp;
    if (nvals <= 0) return;
    scrambleRegionValue(
        f, region, comp, ncomp,
        static_cast<std::int64_t>(word % static_cast<std::uint64_t>(nvals)),
        static_cast<unsigned>((word >> 32) % (sizeof(Real) * 8)));
}

/// Flattened (pair, slot) work item of the batched pack/unpack launches.
struct FlatSlot {
    int pair = 0;
    int slot = 0;
};

std::vector<FlatSlot> flattenSlots(const AggregationPlan& plan) {
    std::vector<FlatSlot> flat;
    for (int p = 0; p < static_cast<int>(plan.pairs.size()); ++p)
        for (int s = 0; s < static_cast<int>(plan.pairs[p].slots.size()); ++s)
            flat.push_back({p, s});
    return flat;
}

/// Lease one staging buffer per rank pair and pack every slot with one
/// batched launch. Slot values land at offsetPts * numComp, components
/// outermost in forEachCell order — exactly the sequence regionCrc walks,
/// so the flat CRC over a pair's buffer equals the chained region CRCs the
/// receiver recomputes over the delivered ghosts.
std::vector<gpu::ScratchPool::Lease>
packAggregated(const CommPattern& pattern, const AggregationPlan& plan,
               const MultiFab& src, int srcComp, int numComp) {
    std::vector<gpu::ScratchPool::Lease> staging;
    staging.reserve(plan.pairs.size());
    for (const RankPairBatch& b : plan.pairs)
        staging.push_back(
            gpu::ScratchPool::instance().acquireLinear(b.totalPts * numComp));
    const std::vector<FlatSlot> flat = flattenSlots(plan);
    gpu::BatchedParallelForIndex(static_cast<int>(flat.size()), 1, [&](int t) {
        const RankPairBatch& b = plan.pairs[flat[t].pair];
        const AggregateSlot& sl = b.slots[flat[t].slot];
        const CopyDescriptor& d = pattern.copies[sl.copyIndex];
        auto sa = staging[flat[t].pair].fab().array();
        auto a = src.fab(d.srcFab).const_array();
        std::int64_t off = sl.offsetPts * numComp;
        for (int n = srcComp; n < srcComp + numComp; ++n)
            forEachCell(d.region.shift(d.shift), [&](int i, int j, int k) {
                sa(static_cast<int>(off++), 0, 0, 0) = a(i, j, k, n);
            });
    });
    return staging;
}

/// Copy one packed slot out of its staging buffer into the destination
/// region — the receive side of the aggregated exchange.
void unpackSlot(const CommPattern& pattern, const AggregateSlot& sl,
                const FArrayBox& stagingFab, MultiFab& dst, int destComp,
                int numComp) {
    const CopyDescriptor& d = pattern.copies[sl.copyIndex];
    auto sa = stagingFab.const_array();
    auto da = dst.fab(d.dstFab).array();
    std::int64_t off = sl.offsetPts * numComp;
    for (int n = destComp; n < destComp + numComp; ++n)
        forEachCell(d.region, [&](int i, int j, int k) {
            da(i, j, k, n) = sa(static_cast<int>(off++), 0, 0, 0);
        });
}

/// Deliver every packed slot with one batched launch. With pairwise-
/// disjoint dst regions each slot is its own task (exact per-task
/// footprints keep the race detector clean); overlapping-but-consistent
/// deliveries (parallelCopy reading grown sources) serialize into a single
/// task of the same launch.
void unpackAggregated(const CommPattern& pattern, const AggregationPlan& plan,
                      std::vector<gpu::ScratchPool::Lease>& staging,
                      MultiFab& dst, int destComp, int numComp) {
    const std::vector<FlatSlot> flat = flattenSlots(plan);
    if (flat.empty()) return;
    auto one = [&](int t) {
        const RankPairBatch& b = plan.pairs[flat[t].pair];
        unpackSlot(pattern, b.slots[flat[t].slot], staging[flat[t].pair].fab(),
                   dst, destComp, numComp);
    };
    if (plan.disjointDst) {
        gpu::BatchedParallelForIndex(static_cast<int>(flat.size()), 1, one);
    } else {
        gpu::BatchedParallelForIndex(1, 1, [&](int) {
            for (int t = 0; t < static_cast<int>(flat.size()); ++t) one(t);
        });
    }
}

/// Serial re-delivery of one pair (initial delivery in verified mode, and
/// what a retransmit replays from the still-leased staging buffer).
void deliverPair(const CommPattern& pattern, const RankPairBatch& b,
                 const FArrayBox& stagingFab, MultiFab& dst, int destComp,
                 int numComp) {
    for (const AggregateSlot& sl : b.slots)
        unpackSlot(pattern, sl, stagingFab, dst, destComp, numComp);
}

/// CRC32 of a packed pair buffer — the wire checksum of the aggregated
/// message.
std::uint32_t stagingCrc(const FArrayBox& stagingFab, std::int64_t nvals) {
    std::uint32_t crc = 0;
    auto sa = stagingFab.const_array();
    for (std::int64_t v = 0; v < nvals; ++v) {
        const Real x = sa(static_cast<int>(v), 0, 0, 0);
        crc = resilience::crc32(&x, sizeof(Real), crc);
    }
    return crc;
}

/// Receiver-side checksum of one delivered pair: the slot regions chained
/// in pack order (equals stagingCrc of an intact delivery).
std::uint32_t pairDeliveredCrc(const CommPattern& pattern,
                               const RankPairBatch& b, const MultiFab& dst,
                               int destComp, int numComp) {
    std::uint32_t crc = 0;
    for (const AggregateSlot& sl : b.slots) {
        const CopyDescriptor& d = pattern.copies[sl.copyIndex];
        crc = regionCrc(dst.fab(d.dstFab), d.region, destComp, numComp, crc);
    }
    return crc;
}

/// Corrupt-fault damage at aggregate granularity: `word` picks one value
/// (and bit) across the pair's packed payload; the strike lands in the one
/// slot covering that offset — corrupt one slot, NACK + retransmit one
/// buffer.
void scramblePair(const CommPattern& pattern, const RankPairBatch& b,
                  MultiFab& dst, int destComp, int numComp,
                  std::uint64_t word) {
    const std::int64_t nvals = b.totalPts * numComp;
    if (nvals <= 0) return;
    const std::int64_t target =
        static_cast<std::int64_t>(word % static_cast<std::uint64_t>(nvals));
    const unsigned bit =
        static_cast<unsigned>((word >> 32) % (sizeof(Real) * 8));
    for (const AggregateSlot& sl : b.slots) {
        const CopyDescriptor& d = pattern.copies[sl.copyIndex];
        const std::int64_t start = sl.offsetPts * numComp;
        if (target < start || target >= start + d.npts * numComp) continue;
        scrambleRegionValue(dst.fab(d.dstFab), d.region, destComp, numComp,
                            target - start, bit);
        return;
    }
}

/// Per-region message accounting (TinyProfiler Msgs / MsgBytes columns);
/// no-op without an attached profiler.
void chargeMessages(const std::string& tag, std::int64_t nmsgs, double bytes) {
    if (nmsgs <= 0) return;
    if (perf::TinyProfiler* prof = CommCache::instance().profiler())
        prof->addMessages(tag, nmsgs, bytes);
}

/// Resolve the aggregation plan of an exchange: nullptr when aggregation
/// is off (or single-rank); the cached plan — fingerprint-validated
/// against the live mappings — when the pattern is cacheable; a fresh
/// derivation into `local` otherwise.
const AggregationPlan*
resolvePlan(CommCache& cache, const CommCache::Key& key, bool cacheable,
            const CommPattern& pattern, const DistributionMapping& srcDm,
            const DistributionMapping& dstDm, parallel::SimComm* comm,
            AggregationPlan& local) {
    if (!cache.aggregate() || !comm || comm->size() <= 1) return nullptr;
    const std::uint64_t fp = fingerprintMappings(srcDm, dstDm);
    if (cacheable) {
        if (const AggregationPlan* p = cache.lookupPlan(key, fp)) return p;
        return &cache.insertPlan(key,
                                 buildAggregationPlan(pattern, srcDm, dstDm));
    }
    local = buildAggregationPlan(pattern, srcDm, dstDm);
    return &local;
}

} // namespace

/// Pattern snapshot + deferred copies + posted message requests of one
/// fillBoundaryBegin, alive until the matching End. The pattern is stored
/// by value: a CommCache LRU eviction between Begin and End must not
/// dangle the descriptors.
struct MultiFab::AsyncFillState {
    CommPattern pattern;
    gpu::Stream stream;
    std::vector<parallel::SimComm::Request> requests;
    /// Hardened mode only: sender-side CRC per copy descriptor, computed at
    /// Begin (the source valid data is immutable while the exchange is in
    /// flight); 0 for on-rank copies. End verifies the delivered ghosts
    /// against these.
    std::vector<std::uint32_t> srcCrcs;
    /// Aggregated exchange (comm.aggregate): the rank-pair plan (by value —
    /// a plan-cache eviction between Begin and End must not dangle), the
    /// leased staging buffers (one per pair, alive until End so a verified
    /// retransmit can re-deliver), and the per-pair payload CRCs posted at
    /// Begin (hardened mode; empty strings of zeros otherwise).
    AggregationPlan plan;
    std::vector<gpu::ScratchPool::Lease> staging;
    std::vector<std::uint32_t> pairCrcs;
    bool aggregated = false;
    bool verified = false;
};

MultiFab::MultiFab(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                   int ngrow, parallel::SimComm* comm) {
    define(ba, dm, ncomp, ngrow, comm);
}

MultiFab::MultiFab(const MultiFab& o)
    : ba_(o.ba_), dm_(o.dm_), ncomp_(o.ncomp_), ngrow_(o.ngrow_),
      fabs_(o.fabs_), comm_(o.comm_) {
    if (o.asyncFill_) {
        throw std::logic_error("MultiFab copy with a ghost exchange in flight "
                               "(fillBoundaryBegin without fillBoundaryEnd)");
    }
}

MultiFab& MultiFab::operator=(const MultiFab& o) {
    if (this == &o) return *this;
    if (o.asyncFill_ || asyncFill_) {
        throw std::logic_error("MultiFab assignment with a ghost exchange in "
                               "flight (fillBoundaryBegin without fillBoundaryEnd)");
    }
    ba_ = o.ba_;
    dm_ = o.dm_;
    ncomp_ = o.ncomp_;
    ngrow_ = o.ngrow_;
    fabs_ = o.fabs_;
    comm_ = o.comm_;
    return *this;
}

MultiFab::MultiFab() = default;
MultiFab::MultiFab(MultiFab&&) noexcept = default;
MultiFab& MultiFab::operator=(MultiFab&&) noexcept = default;
MultiFab::~MultiFab() = default;

void MultiFab::define(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                      int ngrow, parallel::SimComm* comm) {
    assert(ba.size() == dm.size());
    assert(ncomp >= 1 && ngrow >= 0);
    ba_ = ba;
    dm_ = dm;
    ncomp_ = ncomp;
    ngrow_ = ngrow;
    comm_ = comm;
    asyncFill_.reset(); // redefining abandons any in-flight exchange
    fabs_.clear();
    fabs_.reserve(ba.size());
    for (int i = 0; i < ba.size(); ++i) fabs_.emplace_back(ba[i].grow(ngrow), ncomp);
    if constexpr (check::enabled) {
        // MultiFab storage models fresh device allocations: poison it and
        // start the shadow maps at Uninit so never-filled reads are caught
        // (bare FArrayBoxes — kernel scratch — stay value-initialized).
        for (int i = 0; i < ba.size(); ++i)
            fabs_[static_cast<std::size_t>(i)].markUninitialized(ba[i]);
    }
}

void MultiFab::invalidateGhosts() {
    if constexpr (check::enabled) {
        for (auto& f : fabs_) f.invalidateGhostShadow();
    }
}

void MultiFab::setVal(Real v) {
    // Each fab's sweep models one device kernel launch (FArrayBox loops do
    // not route through gpu::ParallelFor, so they are counted here).
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        fabs_[i].setVal(v);
    });
}

void MultiFab::setVal(Real v, int comp, int ncomp) {
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        fabs_[i].setVal(v, fabs_[i].box(), comp, ncomp);
    });
}

void MultiFab::replay(const CommPattern& pattern, const MultiFab& src,
                      int srcComp, int destComp, int numComp,
                      const std::string& tag, bool p2p,
                      const AggregationPlan* plan) {
    if (plan && !plan->pairs.empty()) {
        replayAggregated(pattern, *plan, src, srcComp, destComp, numComp, tag,
                         p2p);
        return;
    }
    // Copies target disjoint dst regions and read only src cells fillBoundary
    // never writes (valid cells of siblings / a const source MultiFab), so
    // descriptor order is free — but SimComm recording must match the build
    // order byte for byte, so the replay stays serial and in order.
    const bool verified = comm_ && comm_->exchangeVerification();
    std::int64_t nmsgs = 0;
    double msgBytes = 0.0;
    for (const CopyDescriptor& d : pattern.copies) {
        const int srcRank = src.distributionMap()[d.srcFab];
        const int dstRank = dm_[d.dstFab];
        if (verified && srcRank != dstRank) {
            // Hardened path: the descriptor's copy is the payload delivery,
            // wrapped in CRC verification + the fault injector. Byte order
            // of the recorded stream matches the plain path (one message
            // per off-rank descriptor, in build order), with fault traffic
            // (retransmits, NACKs) appended where faults strike.
            const std::int64_t bytes =
                d.npts * numComp * static_cast<std::int64_t>(sizeof(Real));
            const Box srcRegion = d.region.shift(d.shift);
            parallel::SimComm::Transfer t;
            t.src = srcRank;
            t.dst = dstRank;
            t.bytes = bytes;
            t.kind = p2p ? parallel::MessageKind::PointToPoint
                         : parallel::MessageKind::ParallelCopy;
            t.tag = tag;
            t.deliver = [&, this] {
                fabs_[d.dstFab].copyFrom(src.fab(d.srcFab), d.region, srcComp,
                                         destComp, numComp, d.shift);
            };
            t.payloadCrc = [&] {
                return regionCrc(src.fab(d.srcFab), srcRegion, srcComp, numComp);
            };
            t.deliveredCrc = [&, this] {
                return regionCrc(fabs_[d.dstFab], d.region, destComp, numComp);
            };
            t.scramble = [&, this](std::uint64_t w) {
                scrambleRegionBit(fabs_[d.dstFab], d.region, destComp, numComp, w);
            };
            comm_->sendVerified(t);
            ++nmsgs;
            msgBytes += static_cast<double>(bytes);
            continue;
        }
        fabs_[d.dstFab].copyFrom(src.fab(d.srcFab), d.region, srcComp, destComp,
                                 numComp, d.shift);
        if (!comm_) continue;
        const std::int64_t bytes =
            d.npts * numComp * static_cast<std::int64_t>(sizeof(Real));
        if (p2p) {
            comm_->recordP2P(srcRank, dstRank, bytes, tag);
        } else if (srcRank != dstRank) {
            comm_->recordMessage(srcRank, dstRank, bytes,
                                 parallel::MessageKind::ParallelCopy, tag);
        }
        if (srcRank != dstRank) {
            ++nmsgs;
            msgBytes += static_cast<double>(bytes);
        }
    }
    chargeMessages(tag, nmsgs, msgBytes);
}

void MultiFab::replayAggregated(const CommPattern& pattern,
                                const AggregationPlan& plan,
                                const MultiFab& src, int srcComp, int destComp,
                                int numComp, const std::string& tag, bool p2p) {
    // On-rank copies never hit the wire: apply them directly, in build
    // order, exactly like the unaggregated replay.
    for (const CopyDescriptor& d : pattern.copies) {
        if (src.distributionMap()[d.srcFab] != dm_[d.dstFab]) continue;
        fabs_[d.dstFab].copyFrom(src.fab(d.srcFab), d.region, srcComp,
                                 destComp, numComp, d.shift);
    }
    auto staging = packAggregated(pattern, plan, src, srcComp, numComp);
    const parallel::MessageKind kind = p2p
                                           ? parallel::MessageKind::PointToPoint
                                           : parallel::MessageKind::ParallelCopy;
    double totalBytes = 0.0;
    if (comm_ && comm_->exchangeVerification()) {
        // Hardened path at aggregate granularity: one CRC stamp, one
        // retransmit budget, one NACK per packed pair message. Delivery —
        // and every retransmit — re-unpacks the pair from its staging
        // buffer, so corrupting one slot costs one buffer resend.
        for (std::size_t p = 0; p < plan.pairs.size(); ++p) {
            const RankPairBatch& b = plan.pairs[p];
            const std::int64_t bytes =
                b.totalPts * numComp * static_cast<std::int64_t>(sizeof(Real));
            totalBytes += static_cast<double>(bytes);
            parallel::SimComm::Transfer t;
            t.src = b.srcRank;
            t.dst = b.dstRank;
            t.bytes = bytes;
            t.kind = kind;
            t.tag = tag;
            t.deliver = [&, p] {
                deliverPair(pattern, plan.pairs[p], staging[p].fab(), *this,
                            destComp, numComp);
            };
            t.payloadCrc = [&, p] {
                return stagingCrc(staging[p].fab(),
                                  plan.pairs[p].totalPts * numComp);
            };
            t.deliveredCrc = [&, p] {
                return pairDeliveredCrc(pattern, plan.pairs[p], *this,
                                        destComp, numComp);
            };
            t.scramble = [&, p](std::uint64_t w) {
                scramblePair(pattern, plan.pairs[p], *this, destComp, numComp,
                             w);
            };
            comm_->sendVerified(t);
        }
    } else {
        for (const RankPairBatch& b : plan.pairs) {
            const std::int64_t bytes =
                b.totalPts * numComp * static_cast<std::int64_t>(sizeof(Real));
            totalBytes += static_cast<double>(bytes);
            if (comm_)
                comm_->recordMessage(b.srcRank, b.dstRank, bytes, kind, tag);
        }
        unpackAggregated(pattern, plan, staging, *this, destComp, numComp);
    }
    chargeMessages(tag, static_cast<std::int64_t>(plan.pairs.size()),
                   totalBytes);
}

namespace {

/// Check-build replay guard: a sampled cache hit re-derives the pattern and
/// requires it byte-identical to the cached descriptors — the invariant the
/// CommCache invalidation rules promise (docs/performance.md). A mismatch
/// means a stale pattern survived a layout change.
void verifyReplay(const CommPattern& cached, const CommPattern& rebuilt,
                  const char* what) {
    if (cached == rebuilt) return;
    std::ostringstream os;
    os << what << " cache replay diverges from re-derivation: cached "
       << cached.copies.size() << " copies (srcSize=" << cached.srcSize
       << ", dstSize=" << cached.dstSize << "), rebuilt "
       << rebuilt.copies.size() << " copies (srcSize=" << rebuilt.srcSize
       << ", dstSize=" << rebuilt.dstSize << ")";
    for (std::size_t c = 0;
         c < cached.copies.size() && c < rebuilt.copies.size(); ++c) {
        if (cached.copies[c] == rebuilt.copies[c]) continue;
        os << "; first differing descriptor at index " << c;
        break;
    }
    check::fail(check::Kind::CommCache, os.str());
}

} // namespace

CommPattern MultiFab::buildFillBoundaryPattern(
    const std::vector<IntVect>& shifts) const {
    CommPattern pattern;
    pattern.srcSize = pattern.dstSize = ba_.size();
    for (int i = 0; i < numFabs(); ++i) {
        // Ghost region of fab i = allocated box minus valid box.
        for (const Box& g : boxDiff(grownBox(i), ba_[i])) {
            for (const IntVect& s : shifts) {
                // A ghost cell at index p is filled from valid cell p + s
                // of a periodic image (s == 0 covers interior neighbors).
                for (const auto& [j, isect] : ba_.intersections(g.shift(s))) {
                    const Box dstRegion = isect.shift(-s);
                    pattern.copies.push_back(
                        {i, j, dstRegion, s, dstRegion.numPts()});
                }
            }
        }
    }
    return pattern;
}

void MultiFab::fillBoundary(const Geometry& geom) {
    const auto shifts = geom.periodicShifts();
    CommCache& cache = CommCache::instance();
    if (comm_) cache.noteCommSize(comm_->size());
    const CommCache::Key key{ba_.id(), ba_.id(), ngrow_, 0, hashShifts(shifts),
                             CommCache::FillBoundary};
    const bool cacheable = cache.enabled() && ba_.id() != 0;
    if (cacheable) {
        if (const CommPattern* pat = cache.lookup(key, ba_.size(), ba_.size())) {
            if (check::enabled && check::commGuardShouldVerify())
                verifyReplay(*pat, buildFillBoundaryPattern(shifts),
                             "FillBoundary");
            MaybeScope scope("CommCacheHit");
            AggregationPlan local;
            const AggregationPlan* plan =
                resolvePlan(cache, key, cacheable, *pat, dm_, dm_, comm_, local);
            replay(*pat, *this, 0, 0, ncomp_, "FillBoundary", /*p2p=*/true,
                   plan);
            return;
        }
    }
    CommPattern pattern;
    {
        MaybeScope scope("CommCacheBuild");
        pattern = buildFillBoundaryPattern(shifts);
    }
    const CommPattern& stored =
        cacheable ? cache.insert(key, std::move(pattern)) : pattern;
    AggregationPlan local;
    const AggregationPlan* plan =
        resolvePlan(cache, key, cacheable, stored, dm_, dm_, comm_, local);
    replay(stored, *this, 0, 0, ncomp_, "FillBoundary", /*p2p=*/true, plan);
}

void MultiFab::fillBoundaryBegin(const Geometry& geom) {
    if (asyncFill_) {
        throw std::logic_error("MultiFab::fillBoundaryBegin with an exchange "
                               "already in flight (missing fillBoundaryEnd)");
    }
    const auto shifts = geom.periodicShifts();
    CommCache& cache = CommCache::instance();
    if (comm_) cache.noteCommSize(comm_->size());
    const CommCache::Key key{ba_.id(), ba_.id(), ngrow_, 0, hashShifts(shifts),
                             CommCache::FillBoundary};
    const bool cacheable = cache.enabled() && ba_.id() != 0;
    auto st = std::make_unique<AsyncFillState>();
    st->verified = comm_ && comm_->exchangeVerification();
    bool resolved = false;
    if (cacheable) {
        if (const CommPattern* pat = cache.lookup(key, ba_.size(), ba_.size())) {
            if (check::enabled && check::commGuardShouldVerify())
                verifyReplay(*pat, buildFillBoundaryPattern(shifts),
                             "FillBoundary");
            MaybeScope scope("CommCacheHit");
            st->pattern = *pat;
            resolved = true;
        }
    }
    if (!resolved) {
        MaybeScope scope("CommCacheBuild");
        st->pattern = buildFillBoundaryPattern(shifts);
        if (cacheable) cache.insert(key, CommPattern(st->pattern));
    }
    {
        AggregationPlan localPlan;
        const AggregationPlan* plan = resolvePlan(
            cache, key, cacheable, st->pattern, dm_, dm_, comm_, localPlan);
        if (plan && !plan->pairs.empty()) {
            // Aggregated post: on-rank copies defer on the stream in build
            // order; the packed payloads leave now (the source valid cells
            // are immutable while the exchange is in flight — the overlap
            // contract — so packing at Begin is the wire departure), one
            // isend per rank pair; the batched unpack rides the stream
            // behind the on-rank copies, so End's drain — or the overlap
            // path's task-0 drain behind its gpu::Event — delivers the
            // ghosts before any halo read, on the same happens-before edge
            // the per-descriptor path uses.
            st->aggregated = true;
            st->plan = *plan;
            for (const CopyDescriptor& d : st->pattern.copies) {
                if (dm_[d.srcFab] != dm_[d.dstFab]) continue;
                st->stream.enqueue([this, d] {
                    fabs_[d.dstFab].copyFrom(fabs_[d.srcFab], d.region, 0, 0,
                                             ncomp_, d.shift);
                });
            }
            st->staging = packAggregated(st->pattern, st->plan, *this, 0,
                                         ncomp_);
            double totalBytes = 0.0;
            for (std::size_t p = 0; p < st->plan.pairs.size(); ++p) {
                const RankPairBatch& b = st->plan.pairs[p];
                const std::int64_t bytes =
                    b.totalPts * ncomp_ * static_cast<std::int64_t>(sizeof(Real));
                totalBytes += static_cast<double>(bytes);
                std::uint32_t crc = 0;
                if (st->verified)
                    crc = stagingCrc(st->staging[p].fab(), b.totalPts * ncomp_);
                st->pairCrcs.push_back(crc);
                st->requests.push_back(comm_->isend(
                    b.srcRank, b.dstRank, bytes,
                    parallel::MessageKind::PointToPoint, "FillBoundary", crc));
                if (st->verified)
                    st->requests.push_back(
                        comm_->irecv(b.srcRank, b.dstRank, "FillBoundary"));
            }
            chargeMessages("FillBoundary",
                           static_cast<std::int64_t>(st->plan.pairs.size()),
                           totalBytes);
            AsyncFillState* s = st.get();
            st->stream.enqueue([this, s] {
                unpackAggregated(s->pattern, s->plan, s->staging, *this, 0,
                                 ncomp_);
            });
            asyncFill_ = std::move(st);
            return;
        }
    }
    // Post the exchange: the data copies are deferred on the stream (End
    // drains them in enqueue == build order) and the off-rank messages are
    // posted as nonblocking sends completed at End in posting order — both
    // byte-identical to the blocking fillBoundary.
    std::int64_t nmsgs = 0;
    double msgBytes = 0.0;
    for (const CopyDescriptor& d : st->pattern.copies) {
        st->stream.enqueue([this, d] {
            fabs_[d.dstFab].copyFrom(fabs_[d.srcFab], d.region, 0, 0, ncomp_,
                                     d.shift);
        });
        if (!comm_) {
            continue;
        }
        const int srcRank = dm_[d.srcFab];
        const int dstRank = dm_[d.dstFab];
        if (srcRank == dstRank) { // on-rank copies never hit the network
            if (st->verified) st->srcCrcs.push_back(0);
            continue;
        }
        const std::int64_t bytes =
            d.npts * ncomp_ * static_cast<std::int64_t>(sizeof(Real));
        std::uint32_t crc = 0;
        if (st->verified) {
            // Checksum the payload at post time: the source valid cells are
            // immutable while the exchange is in flight (that is the overlap
            // contract), so this is the CRC the wire carries.
            crc = regionCrc(fabs_[d.srcFab], d.region.shift(d.shift), 0, ncomp_);
            st->srcCrcs.push_back(crc);
        }
        st->requests.push_back(comm_->isend(
            srcRank, dstRank, bytes, parallel::MessageKind::PointToPoint,
            "FillBoundary", crc));
        ++nmsgs;
        msgBytes += static_cast<double>(bytes);
        if (st->verified) {
            // The hardened exchange posts the matching receive (lint rule
            // R6: a posted payload always has a receiver with a timeout +
            // CRC policy). The plain path keeps the seed's send-only
            // recording so its message stream stays byte-identical.
            st->requests.push_back(comm_->irecv(srcRank, dstRank,
                                                "FillBoundary"));
        }
    }
    chargeMessages("FillBoundary", nmsgs, msgBytes);
    asyncFill_ = std::move(st);
}

void MultiFab::fillBoundaryEnd(const std::source_location& loc) {
    if (!asyncFill_) {
        throw std::logic_error(
            std::string("MultiFab::fillBoundaryEnd without a matching "
                        "fillBoundaryBegin at ") +
            loc.file_name() + ":" + std::to_string(loc.line()));
    }
    asyncFill_->stream.synchronize();
    if (comm_) comm_->waitall(asyncFill_->requests);
    if (comm_ && asyncFill_->verified && asyncFill_->aggregated) {
        // Aggregated post-hoc verification: one CRC check / NACK /
        // retransmit per packed rank-pair message, re-delivered from the
        // still-leased staging buffer.
        AsyncFillState& s = *asyncFill_;
        for (std::size_t p = 0; p < s.plan.pairs.size(); ++p) {
            const RankPairBatch& b = s.plan.pairs[p];
            const std::uint32_t want = s.pairCrcs[p];
            parallel::SimComm::Transfer t;
            t.src = b.srcRank;
            t.dst = b.dstRank;
            t.bytes = b.totalPts * ncomp_ * static_cast<std::int64_t>(sizeof(Real));
            t.kind = parallel::MessageKind::PointToPoint;
            t.tag = "FillBoundary";
            t.deliver = [this, &s, p] {
                deliverPair(s.pattern, s.plan.pairs[p], s.staging[p].fab(),
                            *this, 0, ncomp_);
            };
            t.payloadCrc = [want] { return want; };
            t.deliveredCrc = [this, &s, p] {
                return pairDeliveredCrc(s.pattern, s.plan.pairs[p], *this, 0,
                                        ncomp_);
            };
            t.scramble = [this, &s, p](std::uint64_t w) {
                scramblePair(s.pattern, s.plan.pairs[p], *this, 0, ncomp_, w);
            };
            comm_->verifyDelivered(t);
        }
    } else if (comm_ && asyncFill_->verified) {
        // Post-hoc verification of the drained exchange: every off-rank
        // payload is CRC-checked against the checksum posted at Begin;
        // corruption/duplication faults strike here (the async analogue of
        // sendVerified) and are NACK'd + retransmitted before the caller
        // sees the ghosts.
        std::size_t ci = 0;
        for (const CopyDescriptor& d : asyncFill_->pattern.copies) {
            const int srcRank = dm_[d.srcFab];
            const int dstRank = dm_[d.dstFab];
            if (srcRank == dstRank) {
                ++ci;
                continue;
            }
            const std::int64_t bytes =
                d.npts * ncomp_ * static_cast<std::int64_t>(sizeof(Real));
            const std::uint32_t want = asyncFill_->srcCrcs[ci++];
            parallel::SimComm::Transfer t;
            t.src = srcRank;
            t.dst = dstRank;
            t.bytes = bytes;
            t.kind = parallel::MessageKind::PointToPoint;
            t.tag = "FillBoundary";
            t.deliver = [this, d] {
                fabs_[d.dstFab].copyFrom(fabs_[d.srcFab], d.region, 0, 0,
                                         ncomp_, d.shift);
            };
            t.payloadCrc = [want] { return want; };
            t.deliveredCrc = [this, d] {
                return regionCrc(fabs_[d.dstFab], d.region, 0, ncomp_);
            };
            t.scramble = [this, d](std::uint64_t w) {
                scrambleRegionBit(fabs_[d.dstFab], d.region, 0, ncomp_, w);
            };
            comm_->verifyDelivered(t);
        }
    }
    asyncFill_.reset();
}

void MultiFab::parallelCopy(const MultiFab& src, int srcComp, int destComp,
                            int numComp, int dstNGrow, int srcNGrow,
                            const std::string& tag,
                            const Geometry* geomForPeriodicity) {
    assert(dstNGrow <= ngrow_ && srcNGrow <= src.nGrow());
    assert(srcComp + numComp <= src.nComp() && destComp + numComp <= ncomp_);
    std::vector<IntVect> shifts{IntVect::zero()};
    if (geomForPeriodicity) shifts = geomForPeriodicity->periodicShifts();
    CommCache& cache = CommCache::instance();
    if (comm_) cache.noteCommSize(comm_->size());
    const CommCache::Key key{src.boxArray().id(), ba_.id(), dstNGrow, srcNGrow,
                             hashShifts(shifts), CommCache::ParallelCopy};
    const bool cacheable =
        cache.enabled() && ba_.id() != 0 && src.boxArray().id() != 0;
    if (cacheable) {
        if (const CommPattern* pat =
                cache.lookup(key, src.boxArray().size(), ba_.size())) {
            if (check::enabled && check::commGuardShouldVerify())
                verifyReplay(
                    *pat,
                    buildParallelCopyPattern(src, dstNGrow, srcNGrow, shifts),
                    "ParallelCopy");
            MaybeScope scope("CommCacheHit");
            AggregationPlan local;
            const AggregationPlan* plan =
                resolvePlan(cache, key, cacheable, *pat, src.distributionMap(),
                            dm_, comm_, local);
            replay(*pat, src, srcComp, destComp, numComp, tag, /*p2p=*/false,
                   plan);
            return;
        }
    }
    CommPattern pattern;
    {
        MaybeScope scope("CommCacheBuild");
        pattern = buildParallelCopyPattern(src, dstNGrow, srcNGrow, shifts);
    }
    const CommPattern& stored =
        cacheable ? cache.insert(key, std::move(pattern)) : pattern;
    AggregationPlan local;
    const AggregationPlan* plan = resolvePlan(
        cache, key, cacheable, stored, src.distributionMap(), dm_, comm_, local);
    replay(stored, src, srcComp, destComp, numComp, tag, /*p2p=*/false, plan);
}

CommPattern MultiFab::buildParallelCopyPattern(
    const MultiFab& src, int dstNGrow, int srcNGrow,
    const std::vector<IntVect>& shifts) const {
    CommPattern pattern;
    pattern.srcSize = src.boxArray().size();
    pattern.dstSize = ba_.size();
    for (int i = 0; i < numFabs(); ++i) {
        const Box dstRegion = ba_[i].grow(dstNGrow);
        for (const IntVect& s : shifts) {
            // A dst cell at index p receives src cell p + s (s != 0
            // reaches across a periodic boundary into the domain image).
            // The hash query is over ungrown boxes, so widen it by
            // srcNGrow and re-intersect against the grown source box.
            for (const auto& [j, coarse] : src.boxArray().intersections(
                     dstRegion.shift(s).grow(srcNGrow))) {
                const Box isect =
                    src.boxArray()[j].grow(srcNGrow) & dstRegion.shift(s);
                if (!isect.ok()) continue;
                (void)coarse;
                pattern.copies.push_back(
                    {i, j, isect.shift(-s), s, isect.numPts()});
            }
        }
    }
    return pattern;
}

void MultiFab::mult(Real a, int comp, int numComp, int ngrow) {
    assert(comp + numComp <= ncomp_);
    assert(ngrow >= 0 && ngrow <= ngrow_);
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        auto arr = fabs_[i].array();
        for (int n = comp; n < comp + numComp; ++n)
            forEachCell(ba_[i].grow(ngrow), [&](int ii, int j, int k) {
                arr(ii, j, k, n) *= a;
            });
    });
}

void MultiFab::copy(MultiFab& dst, const MultiFab& src, int srcComp, int destComp,
                    int numComp, int ngrow) {
    assert(dst.boxArray() == src.boxArray());
    assert(ngrow <= dst.nGrow() && ngrow <= src.nGrow());
    gpu::ParallelForIndex(dst.numFabs(), [&](int i) {
        dst.fabs_[i].copyFrom(src.fab(i), dst.ba_[i].grow(ngrow), srcComp,
                              destComp, numComp);
    });
}

void MultiFab::saxpy(MultiFab& dst, Real a, const MultiFab& src, int srcComp,
                     int destComp, int numComp) {
    assert(dst.boxArray() == src.boxArray());
    gpu::ParallelForIndex(dst.numFabs(), [&](int i) {
        gpu::LaunchStats::add();
        dst.fabs_[i].saxpy(a, src.fab(i), dst.ba_[i], srcComp, destComp, numComp);
    });
}

// The reductions below compute one partial per fab (each fab's sweep is the
// serial Fortran-order loop) and combine the partials in fab-index order.
// The decomposition and the combination order depend only on the BoxArray,
// never on the thread count, so results are bitwise identical for every
// gpu.num_threads setting — the determinism contract of docs/performance.md.

Real MultiFab::min(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()),
                              std::numeric_limits<Real>::infinity());
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        partial[static_cast<std::size_t>(i)] = fabs_[i].min(ba_[i], comp);
    });
    Real m = std::numeric_limits<Real>::infinity();
    for (Real p : partial) m = std::min(m, p);
    return m;
}

Real MultiFab::max(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()),
                              -std::numeric_limits<Real>::infinity());
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        partial[static_cast<std::size_t>(i)] = fabs_[i].max(ba_[i], comp);
    });
    Real m = -std::numeric_limits<Real>::infinity();
    for (Real p : partial) m = std::max(m, p);
    return m;
}

Real MultiFab::sum(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()), 0.0);
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        partial[static_cast<std::size_t>(i)] = fabs_[i].sum(ba_[i], comp);
    });
    Real s = 0.0;
    for (Real p : partial) s += p;
    return s;
}

Real MultiFab::norm2(int comp) const {
    std::vector<Real> partial(static_cast<std::size_t>(numFabs()), 0.0);
    gpu::ParallelForIndex(numFabs(), [&](int i) {
        auto a = const_array(i);
        Real p = 0.0;
        forEachCell(ba_[i], [&](int ii, int j, int k) {
            const Real v = a(ii, j, k, comp);
            p += v * v;
        });
        partial[static_cast<std::size_t>(i)] = p;
    });
    Real s = 0.0;
    for (Real p : partial) s += p;
    return std::sqrt(s);
}

Real MultiFab::l2Diff(const MultiFab& a, const MultiFab& b, int comp) {
    assert(a.boxArray() == b.boxArray());
    std::vector<Real> partial(static_cast<std::size_t>(a.numFabs()), 0.0);
    gpu::ParallelForIndex(a.numFabs(), [&](int i) {
        const Real d = FArrayBox::l2Diff(a.fab(i), b.fab(i), a.ba_[i], comp);
        partial[static_cast<std::size_t>(i)] = d * d;
    });
    Real s = 0.0;
    for (Real p : partial) s += p;
    return std::sqrt(s);
}

} // namespace crocco::amr
