// crocco-analyze:allow-file(R1): FArrayBox owns its storage; .data() here
// is the allocation/copy layer the Array4 accessors are built on top of.
#include "amr/FArrayBox.hpp"

#include "gpu/Arena.hpp"

#include <cassert>
#include <cmath>

namespace crocco::amr {

FArrayBox::FArrayBox(const Box& b, int ncomp, Real initial)
    : box_(b), ncomp_(ncomp),
      data_(static_cast<std::size_t>(b.numPts()) * ncomp + 1, initial) {
    assert(b.ok() && ncomp >= 1);
    // The extra trailing element is the allocation-header canary: overruns
    // past the box land on it instead of the next allocation.
    gpu::Arena::stampCanary(&data_.back());
#ifdef CROCCO_CHECK
    // A bare fab's storage is value-initialized above, so the whole
    // allocation is genuinely Valid until markUninitialized() says otherwise.
    shadow_.define(box_, box_, ncomp_, check::FabShadow::Valid);
#endif
}

void FArrayBox::resize(const Box& b, int ncomp) {
    assert(b.ok() && ncomp >= 1);
    box_ = b;
    ncomp_ = ncomp;
    data_.resize(static_cast<std::size_t>(b.numPts()) * ncomp + 1);
    gpu::Arena::stampCanary(&data_.back());
#ifdef CROCCO_CHECK
    shadow_.define(box_, box_, ncomp_, check::FabShadow::Valid);
#endif
}

bool FArrayBox::canaryIntact() const {
    return data_.empty() || gpu::Arena::canaryIntact(&data_.back());
}

void FArrayBox::markUninitialized(const Box& validBox) {
#ifdef CROCCO_CHECK
    shadow_.define(box_, validBox, ncomp_, check::FabShadow::Uninit);
    // Poison the payload only — the trailing canary keeps its guard word.
    gpu::Arena::poisonFresh(data_.data(), data_.size() - 1);
#else
    (void)validBox;
#endif
}

void FArrayBox::invalidateGhostShadow() {
#ifdef CROCCO_CHECK
    shadow_.invalidateGhosts();
#endif
}

#ifdef CROCCO_CHECK
// Route the index-wise accessors through the instrumented views so they get
// the same bounds/validity/race treatment as kernel accesses.
Real& FArrayBox::operator()(const IntVect& p, int n) {
    return array()(p[0], p[1], p[2], n);
}

Real FArrayBox::operator()(const IntVect& p, int n) const {
    return const_array()(p[0], p[1], p[2], n);
}
#else
Real& FArrayBox::operator()(const IntVect& p, int n) {
    assert(box_.contains(p) && n >= 0 && n < ncomp_);
    return data_[static_cast<std::size_t>(box_.index(p) + box_.numPts() * n)];
}

Real FArrayBox::operator()(const IntVect& p, int n) const {
    assert(box_.contains(p) && n >= 0 && n < ncomp_);
    return data_[static_cast<std::size_t>(box_.index(p) + box_.numPts() * n)];
}
#endif

void FArrayBox::setVal(Real v) {
    if (data_.empty()) return;
    // Payload only: the trailing element is the allocation canary.
    const std::size_t n = data_.size() - 1;
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
#ifdef CROCCO_CHECK
    shadow_.markAll(check::FabShadow::Valid);
#endif
}

void FArrayBox::setVal(Real v, const Box& region, int comp, int ncomp) {
    const Box r = region & box_;
    auto a = array();
    for (int n = comp; n < comp + ncomp; ++n)
        forEachCell(r, [&](int i, int j, int k) { a(i, j, k, n) = v; });
}

void FArrayBox::copyFrom(const FArrayBox& src, const Box& region, int srcComp,
                         int destComp, int numComp, const IntVect& srcShift) {
    const Box r = region & box_;
    assert(src.box().contains(r.shift(srcShift)));
    assert(srcComp + numComp <= src.nComp() && destComp + numComp <= ncomp_);
    auto d = array();
    auto s = src.const_array();
    for (int n = 0; n < numComp; ++n)
        forEachCell(r, [&](int i, int j, int k) {
            d(i, j, k, destComp + n) =
                s(i + srcShift[0], j + srcShift[1], k + srcShift[2], srcComp + n);
        });
}

void FArrayBox::saxpy(Real a, const FArrayBox& src, const Box& region, int srcComp,
                      int destComp, int numComp) {
    const Box r = region & box_ & src.box();
    auto d = array();
    auto s = src.const_array();
    for (int n = 0; n < numComp; ++n)
        forEachCell(r, [&](int i, int j, int k) {
            d(i, j, k, destComp + n) += a * s(i, j, k, srcComp + n);
        });
}

Real FArrayBox::min(const Box& region, int comp) const {
    const Box r = region & box_;
    Real m = std::numeric_limits<Real>::infinity();
    auto a = const_array();
    forEachCell(r, [&](int i, int j, int k) { m = std::min(m, a(i, j, k, comp)); });
    return m;
}

Real FArrayBox::max(const Box& region, int comp) const {
    const Box r = region & box_;
    Real m = -std::numeric_limits<Real>::infinity();
    auto a = const_array();
    forEachCell(r, [&](int i, int j, int k) { m = std::max(m, a(i, j, k, comp)); });
    return m;
}

Real FArrayBox::sum(const Box& region, int comp) const {
    const Box r = region & box_;
    Real s = 0.0;
    auto a = const_array();
    forEachCell(r, [&](int i, int j, int k) { s += a(i, j, k, comp); });
    return s;
}

Real FArrayBox::l2Diff(const FArrayBox& a, const FArrayBox& b, const Box& region,
                       int comp) {
    const Box r = region & a.box() & b.box();
    Real s = 0.0;
    auto aa = a.const_array();
    auto bb = b.const_array();
    forEachCell(r, [&](int i, int j, int k) {
        const Real d = aa(i, j, k, comp) - bb(i, j, k, comp);
        s += d * d;
    });
    return std::sqrt(s);
}

} // namespace crocco::amr
