#pragma once

#include "amr/BoxArray.hpp"
#include "amr/Cluster.hpp"
#include "amr/DistributionMapping.hpp"
#include "amr/Geometry.hpp"
#include "parallel/SimComm.hpp"

#include <vector>

namespace crocco::amr {

/// Static configuration of the AMR hierarchy — the paper's input-deck
/// parameters (§III-B, §V-C: blocking factor 8, max grid size 128,
/// refinement ratio 2).
struct AmrInfo {
    int maxLevel = 2;               ///< finest allowed level index
    IntVect refRatio{2, 2, 2};      ///< refinement ratio between levels
    int blockingFactor = 8;         ///< box bounds snap to multiples of this
    int maxGridSize = 128;          ///< per-direction box size cap
    int nErrorBuf = 2;              ///< cells to buffer around tagged cells
    int properNestingBuffer = 4;    ///< coarse cells a fine level keeps from
                                    ///< a coarse/uncovered boundary
    double gridEff = 0.70;          ///< Berger-Rigoutsos efficiency target
    DistributionMapping::Strategy strategy = DistributionMapping::Strategy::SFC;
};

/// The AMR level hierarchy: geometry, box layout, and ownership per level,
/// plus regridding. Mirrors amrex::AmrCore.
///
/// Applications subclass this (see core::CroccoAmr) and implement the
/// virtual hooks that move *state* when the grid hierarchy changes; this
/// class owns only the grid metadata and the Berger-Rigoutsos machinery.
class AmrCore {
public:
    AmrCore(const Geometry& geom0, const AmrInfo& info, int nranks = 1,
            parallel::SimComm* comm = nullptr);
    virtual ~AmrCore() = default;

    int maxLevel() const { return info_.maxLevel; }
    int finestLevel() const { return finestLevel_; }
    const AmrInfo& info() const { return info_; }
    const Geometry& geom(int lev) const { return geom_[lev]; }
    const BoxArray& boxArray(int lev) const { return grids_[lev]; }
    const DistributionMapping& dmap(int lev) const { return dmap_[lev]; }
    IntVect refRatio() const { return info_.refRatio; }
    parallel::SimComm* comm() const { return comm_; }
    int numRanks() const { return nranks_; }

    /// Active grid points over all levels (the paper's "actual grid points"
    /// metric, 89-94% below the equivalent uniform-fine count for DMR).
    std::int64_t totalPoints() const;

    /// Grid points of the equivalent uniform grid at the finest level's
    /// resolution (the paper's "# of equivalent grid points", Table I).
    std::int64_t equivalentPoints() const;

    /// Build level 0 over the whole domain, then add finer levels anywhere
    /// errorEst tags, until maxLevel or no tags remain.
    void initGrids(Real time);

    /// Algorithm 1's Regrid(): rebuild levels lbase+1..maxLevel from fresh
    /// error tags, calling the state-motion hooks for changed levels.
    void regrid(int lbase, Real time);

protected:
    /// Tag cells of level `lev` needing refinement (in level-lev index space).
    virtual void errorEst(int lev, std::vector<IntVect>& tags, Real time) = 0;

    /// State-motion hooks, as in amrex::AmrCore.
    virtual void makeNewLevelFromScratch(int lev, Real time, const BoxArray& ba,
                                         const DistributionMapping& dm) = 0;
    virtual void makeNewLevelFromCoarse(int lev, Real time, const BoxArray& ba,
                                        const DistributionMapping& dm) = 0;
    virtual void remakeLevel(int lev, Real time, const BoxArray& ba,
                             const DistributionMapping& dm) = 0;
    virtual void clearLevel(int lev) = 0;

    /// Generate the new BoxArray for level `lev` from tags at `lev - 1`;
    /// empty result means the level should not exist.
    BoxArray makeNewGrids(int lev, Real time);

    void setLevel(int lev, const BoxArray& ba, const DistributionMapping& dm);
    void setFinestLevel(int lev) { finestLevel_ = lev; }

    /// Adopt a shrunk communicator's size after a rank death (the derived
    /// recovery path rebuilds every DistributionMapping to match).
    void setNumRanks(int nranks) { nranks_ = nranks; }

private:
    AmrInfo info_;
    int nranks_;
    parallel::SimComm* comm_;
    int finestLevel_ = 0;
    std::vector<Geometry> geom_;
    std::vector<BoxArray> grids_;
    std::vector<DistributionMapping> dmap_;
};

/// Chop `domain` into a level-0 BoxArray respecting maxGridSize and the
/// blocking factor.
BoxArray makeLevel0Grids(const Box& domain, const AmrInfo& info);

} // namespace crocco::amr
