#include "amr/CommCache.hpp"

namespace crocco::amr {

namespace {
std::uint64_t mix64(std::uint64_t x, std::uint64_t v) {
    x += 0x9e3779b97f4a7c15ull + v;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}
} // namespace

std::uint64_t hashShifts(const std::vector<IntVect>& shifts) {
    std::uint64_t h = 0x2545f4914f6cdd1dull;
    for (const IntVect& s : shifts)
        for (int d = 0; d < SpaceDim; ++d)
            h = mix64(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s[d]) + (1ll << 32)));
    return h;
}

std::size_t CommCache::KeyHash::operator()(const Key& k) const {
    std::uint64_t h = mix64(k.srcId, k.dstId);
    h = mix64(h, static_cast<std::uint64_t>(k.dstNGrow));
    h = mix64(h, static_cast<std::uint64_t>(k.srcNGrow));
    h = mix64(h, k.shiftsHash);
    h = mix64(h, static_cast<std::uint64_t>(k.kind));
    return static_cast<std::size_t>(h);
}

CommCache& CommCache::instance() {
    static CommCache cache;
    return cache;
}

void CommCache::touch(std::list<Entry>::iterator it) {
    lru_.splice(lru_.begin(), lru_, it);
}

const CommPattern* CommCache::lookup(const Key& k, int srcSize, int dstSize) {
    if (!enabled_) return nullptr;
    auto it = map_.find(k);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    const CommPattern& p = it->second->second;
    if (p.srcSize != srcSize || p.dstSize != dstSize) {
        // Id collision (or a BoxArray id reused across incompatible
        // layouts): never replay a suspect pattern.
        lru_.erase(it->second);
        map_.erase(it);
        ++stats_.misses;
        return nullptr;
    }
    touch(it->second);
    ++stats_.hits;
    return &lru_.front().second;
}

const CommPattern& CommCache::insert(const Key& k, CommPattern pattern) {
    if (!enabled_ || capacity_ == 0) {
        static thread_local CommPattern scratch;
        scratch = std::move(pattern);
        return scratch;
    }
    auto it = map_.find(k);
    if (it != map_.end()) {
        it->second->second = std::move(pattern);
        touch(it->second);
        return lru_.front().second;
    }
    lru_.emplace_front(k, std::move(pattern));
    map_.emplace(k, lru_.begin());
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
    return lru_.front().second;
}

void CommCache::setCapacity(std::size_t cap) {
    capacity_ = cap;
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void CommCache::invalidate(std::uint64_t baId) {
    if (baId == 0) return;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->first.srcId == baId || it->first.dstId == baId) {
            map_.erase(it->first);
            it = lru_.erase(it);
            ++stats_.invalidations;
        } else {
            ++it;
        }
    }
}

void CommCache::noteCommSize(int nranks) {
    if (nranks == commSize_) return;
    if (commSize_ != 0) {
        // Communicator changed size (rank death + shrink): every cached
        // pattern was recorded under the old rank numbering's hierarchy.
        stats_.invalidations += static_cast<std::int64_t>(map_.size());
        clear();
    }
    commSize_ = nranks;
}

void CommCache::clear() {
    lru_.clear();
    map_.clear();
}

} // namespace crocco::amr
