#include "amr/CommCache.hpp"

#include "amr/DistributionMapping.hpp"

#include <map>
#include <utility>

namespace crocco::amr {

namespace {
std::uint64_t mix64(std::uint64_t x, std::uint64_t v) {
    x += 0x9e3779b97f4a7c15ull + v;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}
} // namespace

std::uint64_t hashShifts(const std::vector<IntVect>& shifts) {
    std::uint64_t h = 0x2545f4914f6cdd1dull;
    for (const IntVect& s : shifts)
        for (int d = 0; d < SpaceDim; ++d)
            h = mix64(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s[d]) + (1ll << 32)));
    return h;
}

std::uint64_t fingerprintMappings(const DistributionMapping& srcDm,
                                  const DistributionMapping& dstDm) {
    std::uint64_t h = mix64(static_cast<std::uint64_t>(srcDm.numRanks()),
                            static_cast<std::uint64_t>(dstDm.numRanks()));
    for (int r : srcDm.owners()) h = mix64(h, static_cast<std::uint64_t>(r));
    h = mix64(h, 0x5eedc0ffee0ddca7ull); // separator: ({a},{}) != ({},{a})
    for (int r : dstDm.owners()) h = mix64(h, static_cast<std::uint64_t>(r));
    return h;
}

AggregationPlan buildAggregationPlan(const CommPattern& pattern,
                                     const DistributionMapping& srcDm,
                                     const DistributionMapping& dstDm) {
    AggregationPlan plan;
    plan.dmFingerprint = fingerprintMappings(srcDm, dstDm);
    // std::map keeps the pairs sorted by (srcRank, dstRank); slots land in
    // pattern build order because copies are walked in order.
    std::map<std::pair<int, int>, RankPairBatch> pairs;
    for (int i = 0; i < static_cast<int>(pattern.copies.size()); ++i) {
        const CopyDescriptor& c = pattern.copies[i];
        const int srcRank = srcDm[c.srcFab];
        const int dstRank = dstDm[c.dstFab];
        if (srcRank == dstRank) continue; // on-rank: replay copies directly
        RankPairBatch& b = pairs[{srcRank, dstRank}];
        b.srcRank = srcRank;
        b.dstRank = dstRank;
        b.slots.push_back({i, b.totalPts});
        b.totalPts += c.npts;
    }
    plan.pairs.reserve(pairs.size());
    for (auto& [pr, batch] : pairs) plan.pairs.push_back(std::move(batch));
    // Pairwise dst-region disjointness (per dst fab) decides whether the
    // batched unpack may fan one task per slot. Derived once here; the
    // slot counts per fab are small, so the quadratic scan is cheap.
    std::map<int, std::vector<const Box*>> byDstFab;
    for (const RankPairBatch& b : plan.pairs)
        for (const AggregateSlot& s : b.slots) {
            const CopyDescriptor& c = pattern.copies[s.copyIndex];
            byDstFab[c.dstFab].push_back(&c.region);
        }
    for (const auto& [fab, regions] : byDstFab) {
        for (std::size_t a = 0; plan.disjointDst && a + 1 < regions.size(); ++a)
            for (std::size_t b = a + 1; b < regions.size(); ++b)
                if ((*regions[a] & *regions[b]).ok()) {
                    plan.disjointDst = false;
                    break;
                }
        if (!plan.disjointDst) break;
    }
    return plan;
}

std::size_t CommCache::KeyHash::operator()(const Key& k) const {
    std::uint64_t h = mix64(k.srcId, k.dstId);
    h = mix64(h, static_cast<std::uint64_t>(k.dstNGrow));
    h = mix64(h, static_cast<std::uint64_t>(k.srcNGrow));
    h = mix64(h, k.shiftsHash);
    h = mix64(h, static_cast<std::uint64_t>(k.kind));
    return static_cast<std::size_t>(h);
}

CommCache& CommCache::instance() {
    static CommCache cache;
    return cache;
}

void CommCache::touch(std::list<Entry>::iterator it) {
    lru_.splice(lru_.begin(), lru_, it);
}

const CommPattern* CommCache::lookup(const Key& k, int srcSize, int dstSize) {
    if (!enabled_) return nullptr;
    auto it = map_.find(k);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    const CommPattern& p = it->second->second;
    if (p.srcSize != srcSize || p.dstSize != dstSize) {
        // Id collision (or a BoxArray id reused across incompatible
        // layouts): never replay a suspect pattern.
        dropPlan(it->first);
        lru_.erase(it->second);
        map_.erase(it);
        ++stats_.misses;
        return nullptr;
    }
    touch(it->second);
    ++stats_.hits;
    return &lru_.front().second;
}

const CommPattern& CommCache::insert(const Key& k, CommPattern pattern) {
    if (!enabled_ || capacity_ == 0) {
        static thread_local CommPattern scratch;
        scratch = std::move(pattern);
        return scratch;
    }
    auto it = map_.find(k);
    if (it != map_.end()) {
        // A replaced pattern orphans any plan derived from the old copies.
        dropPlan(k);
        it->second->second = std::move(pattern);
        touch(it->second);
        return lru_.front().second;
    }
    lru_.emplace_front(k, std::move(pattern));
    map_.emplace(k, lru_.begin());
    while (map_.size() > capacity_) {
        dropPlan(lru_.back().first);
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
    return lru_.front().second;
}

const AggregationPlan* CommCache::lookupPlan(const Key& k,
                                             std::uint64_t dmFingerprint) {
    if (!enabled_) return nullptr;
    auto it = plans_.find(k);
    if (it == plans_.end()) return nullptr;
    if (it->second.dmFingerprint != dmFingerprint) {
        // Derived under different owner vectors (regrid-moved fabs or the
        // post-shrink dense renumbering): a stale plan would pack for ranks
        // that no longer exist. Drop it; the caller rebuilds.
        plans_.erase(it);
        return nullptr;
    }
    ++stats_.planHits;
    return &it->second;
}

const AggregationPlan& CommCache::insertPlan(const Key& k,
                                             AggregationPlan plan) {
    ++stats_.planBuilds;
    if (!enabled_ || capacity_ == 0) {
        static thread_local AggregationPlan scratch;
        scratch = std::move(plan);
        return scratch;
    }
    return plans_[k] = std::move(plan);
}

void CommCache::dropPlan(const Key& k) { plans_.erase(k); }

void CommCache::setCapacity(std::size_t cap) {
    capacity_ = cap;
    while (map_.size() > capacity_) {
        dropPlan(lru_.back().first);
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void CommCache::invalidate(std::uint64_t baId) {
    if (baId == 0) return;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->first.srcId == baId || it->first.dstId == baId) {
            dropPlan(it->first);
            map_.erase(it->first);
            it = lru_.erase(it);
            ++stats_.invalidations;
        } else {
            ++it;
        }
    }
}

void CommCache::noteCommSize(int nranks) {
    if (nranks == commSize_) return;
    if (commSize_ != 0) {
        // Communicator changed size (rank death + shrink): every cached
        // pattern was recorded under the old rank numbering's hierarchy,
        // and every aggregation plan holds literal (srcRank, dstRank) pairs
        // in that numbering — both must go. The plan fingerprint would
        // catch most stale replays, but a shrink that permutes owners back
        // onto the same vector (new DMs built over the shrunk size) must
        // not be able to alias, so the plans are dropped unconditionally.
        stats_.invalidations += static_cast<std::int64_t>(map_.size());
        clear();
    }
    commSize_ = nranks;
}

void CommCache::clear() {
    lru_.clear();
    map_.clear();
    plans_.clear();
}

} // namespace crocco::amr
