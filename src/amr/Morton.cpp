#include "amr/Morton.hpp"

#include <cassert>

namespace crocco::amr {

namespace {

// Spread the low 21 bits of x so consecutive bits land 3 apart.
std::uint64_t spreadBits3(std::uint64_t x) {
    x &= 0x1fffffull;
    x = (x | (x << 32)) & 0x1f00000000ffffull;
    x = (x | (x << 16)) & 0x1f0000ff0000ffull;
    x = (x | (x << 8)) & 0x100f00f00f00f00full;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
    x = (x | (x << 2)) & 0x1249249249249249ull;
    return x;
}

std::uint64_t compactBits3(std::uint64_t x) {
    x &= 0x1249249249249249ull;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ull;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00full;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffull;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffull;
    x = (x ^ (x >> 32)) & 0x1fffffull;
    return x;
}

} // namespace

std::uint64_t mortonIndex(const IntVect& p) {
    assert(p[0] >= 0 && p[1] >= 0 && p[2] >= 0);
    return spreadBits3(static_cast<std::uint64_t>(p[0])) |
           (spreadBits3(static_cast<std::uint64_t>(p[1])) << 1) |
           (spreadBits3(static_cast<std::uint64_t>(p[2])) << 2);
}

IntVect mortonDecode(std::uint64_t code) {
    return {static_cast<int>(compactBits3(code)),
            static_cast<int>(compactBits3(code >> 1)),
            static_cast<int>(compactBits3(code >> 2))};
}

} // namespace crocco::amr
