#pragma once

#include "amr/Box.hpp"

#ifdef CROCCO_CHECK
#include "check/FabShadow.hpp"
#include "check/RaceDetector.hpp"

#include <source_location>
#include <type_traits>
#endif

#include <cassert>
#include <cstdint>

namespace crocco::amr {

using Real = double;

/// Non-owning 4-D view of fab data: three spatial dimensions plus a
/// component index, Fortran (i-fastest) layout with components outermost.
/// Mirrors amrex::Array4 — the type numerics kernels receive, valid on both
/// the host and the (simulated) device.
///
/// Under -DCROCCO_CHECK the view additionally carries a pointer to the
/// owning FArrayBox's shadow validity map: every access is bounds-checked,
/// const accesses must read Valid cells (never-filled or stale ghost reads
/// abort with the callsite), mutable accesses mark the cell Valid, and both
/// are charged to the running ThreadPool task for the launch-level race
/// detector. CROCCO_CHECK is a whole-build option, so all translation units
/// agree on the struct layout. With the flag off this file compiles to the
/// seed's unchecked accessor.
template <typename T>
struct Array4 {
    T* p = nullptr;
    IntVect lo;          ///< index of the first element in each dimension
    std::int64_t jstride = 0;
    std::int64_t kstride = 0;
    std::int64_t nstride = 0;
    int ncomp = 0;
    /// Inclusive upper bound. Always present (the member must not depend on
    /// NDEBUG, or mixed-configuration links would see different layouts);
    /// only the bounds *checks* compile away in release builds.
    IntVect hi;
#ifdef CROCCO_CHECK
    using ShadowPtr = std::conditional_t<std::is_const_v<T>,
                                         const check::FabShadow*,
                                         check::FabShadow*>;
    ShadowPtr shadow = nullptr;
#endif

    Array4() = default;

    Array4(T* ptr, const Box& b, int ncomponents)
        : p(ptr),
          lo(b.smallEnd()),
          jstride(b.length(0)),
          kstride(static_cast<std::int64_t>(b.length(0)) * b.length(1)),
          nstride(b.numPts()),
          ncomp(ncomponents),
          hi(b.bigEnd()) {}

#ifdef CROCCO_CHECK
    Array4(T* ptr, const Box& b, int ncomponents, ShadowPtr sh)
        : Array4(ptr, b, ncomponents) {
        shadow = sh;
    }
#endif

    /// Implicit conversion to a const view.
    operator Array4<const T>() const
        requires(!std::is_const_v<T>)
    {
        Array4<const T> a;
        a.p = p;
        a.lo = lo;
        a.jstride = jstride;
        a.kstride = kstride;
        a.nstride = nstride;
        a.ncomp = ncomp;
        a.hi = hi;
#ifdef CROCCO_CHECK
        a.shadow = shadow;
#endif
        return a;
    }

#ifdef CROCCO_CHECK
    T& operator()(int i, int j, int k, int n = 0,
                  const std::source_location& loc =
                      std::source_location::current()) const {
        if (p == nullptr || i < lo[0] || i > hi[0] || j < lo[1] || j > hi[1] ||
            k < lo[2] || k > hi[2] || n < 0 || n >= ncomp) {
            check::failBounds(p == nullptr, i, j, k, n, lo, hi, ncomp, shadow,
                              loc);
            return check::dummyCell<T>(); // only reached in warn/capture mode
        }
        if (shadow) {
            if constexpr (std::is_const_v<T>) {
                shadow->checkRead(i, j, k, n, loc);
            } else {
                shadow->noteWrite(i, j, k, n);
            }
            check::recordAccess(shadow, i, j, k, n, !std::is_const_v<T>);
        }
        return p[(i - lo[0]) + jstride * (j - lo[1]) + kstride * (k - lo[2]) +
                 nstride * n];
    }
#else
    T& operator()(int i, int j, int k, int n = 0) const {
#ifndef NDEBUG
        assert(p != nullptr);
        assert(i >= lo[0] && i <= hi[0]);
        assert(j >= lo[1] && j <= hi[1]);
        assert(k >= lo[2] && k <= hi[2]);
        assert(n >= 0 && n < ncomp);
#endif
        return p[(i - lo[0]) + jstride * (j - lo[1]) + kstride * (k - lo[2]) +
                 nstride * n];
    }
#endif

    bool valid() const { return p != nullptr; }
};

} // namespace crocco::amr
