#pragma once

#include "amr/Box.hpp"

#include <cassert>
#include <cstdint>

namespace crocco::amr {

using Real = double;

/// Non-owning 4-D view of fab data: three spatial dimensions plus a
/// component index, Fortran (i-fastest) layout with components outermost.
/// Mirrors amrex::Array4 — the type numerics kernels receive, valid on both
/// the host and the (simulated) device.
template <typename T>
struct Array4 {
    T* p = nullptr;
    IntVect lo;          ///< index of the first element in each dimension
    std::int64_t jstride = 0;
    std::int64_t kstride = 0;
    std::int64_t nstride = 0;
    int ncomp = 0;
    /// Inclusive upper bound. Always present (the member must not depend on
    /// NDEBUG, or mixed-configuration links would see different layouts);
    /// only the bounds *checks* compile away in release builds.
    IntVect hi;

    Array4() = default;

    Array4(T* ptr, const Box& b, int ncomponents)
        : p(ptr),
          lo(b.smallEnd()),
          jstride(b.length(0)),
          kstride(static_cast<std::int64_t>(b.length(0)) * b.length(1)),
          nstride(b.numPts()),
          ncomp(ncomponents),
          hi(b.bigEnd()) {}

    /// Implicit conversion to a const view.
    operator Array4<const T>() const
        requires(!std::is_const_v<T>)
    {
        Array4<const T> a;
        a.p = p;
        a.lo = lo;
        a.jstride = jstride;
        a.kstride = kstride;
        a.nstride = nstride;
        a.ncomp = ncomp;
        a.hi = hi;
        return a;
    }

    T& operator()(int i, int j, int k, int n = 0) const {
#ifndef NDEBUG
        assert(p != nullptr);
        assert(i >= lo[0] && i <= hi[0]);
        assert(j >= lo[1] && j <= hi[1]);
        assert(k >= lo[2] && k <= hi[2]);
        assert(n >= 0 && n < ncomp);
#endif
        return p[(i - lo[0]) + jstride * (j - lo[1]) + kstride * (k - lo[2]) +
                 nstride * n];
    }

    bool valid() const { return p != nullptr; }
};

} // namespace crocco::amr
