#pragma once

#include "amr/Box.hpp"
#include "perf/TinyProfiler.hpp"

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace crocco::amr {

/// One precomputed copy of a ghost-exchange / ParallelCopy pattern:
/// dst fab `dstFab`, region `region` (dst index space) receives src fab
/// `srcFab` shifted by `shift` (src cell = dst cell + shift). Component
/// counts and ranks are NOT stored — descriptors are ncomp-independent and
/// DistributionMapping-independent, so one pattern serves every MultiFab
/// pair living on the same (BoxArray, ngrow) signature.
struct CopyDescriptor {
    int dstFab = 0;
    int srcFab = 0;
    Box region;
    IntVect shift;
    std::int64_t npts = 0; ///< region.numPts(), cached for message sizing

    /// Field-wise equality — the byte-identity the check build's replay
    /// guard asserts between a cached pattern and its re-derivation.
    bool operator==(const CopyDescriptor&) const = default;
};

/// A full communication pattern plus cheap validation fields (guards the
/// astronomically unlikely collision of two derived BoxArray ids).
struct CommPattern {
    std::vector<CopyDescriptor> copies;
    int srcSize = 0; ///< boxes in the source BoxArray when built
    int dstSize = 0; ///< boxes in the destination BoxArray when built

    bool operator==(const CommPattern&) const = default;
};

/// One slot of a packed rank-pair message: copy `copyIndex` of the owning
/// pattern starts at point offset `offsetPts` into the pair's staging
/// buffer. Values are laid out per slot with components outermost (the
/// forEachCell order regionCrc also walks), so the value offset of a slot
/// in an ncomp-wide exchange is `offsetPts * ncomp`.
struct AggregateSlot {
    int copyIndex = 0;
    std::int64_t offsetPts = 0;

    bool operator==(const AggregateSlot&) const = default;
};

/// Every copy flowing (src rank -> dst rank) in one exchange, packed into a
/// single contiguous staging buffer and sent as exactly one SimComm message
/// (AMReX's rank-pair message coalescing). Slots keep the pattern's build
/// order, so the packed byte stream is deterministic.
struct RankPairBatch {
    int srcRank = 0;
    int dstRank = 0;
    std::int64_t totalPts = 0; ///< sum of slot npts (staging size per comp)
    std::vector<AggregateSlot> slots;

    bool operator==(const RankPairBatch&) const = default;
};

/// Aggregation plan for one cached pattern under one pair of
/// DistributionMappings: the pattern's off-rank copies grouped per
/// communicating rank pair, pairs sorted by (srcRank, dstRank). On-rank
/// copies are not listed — replay applies them directly. The fingerprint
/// ties the plan to the exact owner vectors it was derived from; a regrid
/// or post-shrink renumbering changes the fingerprint and forces a rebuild.
struct AggregationPlan {
    std::vector<RankPairBatch> pairs;
    std::uint64_t dmFingerprint = 0;
    /// Are the packed dst regions pairwise disjoint? True for every
    /// fillBoundary (a ghost cell has exactly one source); parallelCopy
    /// reading grown sources can deliver one dst cell from several
    /// (value-consistent) slots, which forces the batched unpack to run
    /// those slots in one task instead of one task per slot.
    bool disjointDst = true;

    bool operator==(const AggregationPlan&) const = default;
};

class DistributionMapping;

/// Order-sensitive hash of the (src, dst) owner vectors + rank count —
/// the validity token of an AggregationPlan.
std::uint64_t fingerprintMappings(const DistributionMapping& srcDm,
                                  const DistributionMapping& dstDm);

/// Derive the rank-pair aggregation plan of `pattern` under the given
/// mappings. Deterministic: pairs sorted by (srcRank, dstRank), slots in
/// pattern build order, offsets accumulated in that order.
AggregationPlan buildAggregationPlan(const CommPattern& pattern,
                                     const DistributionMapping& srcDm,
                                     const DistributionMapping& dstDm);

/// Process-wide LRU cache of communication patterns, mirroring AMReX's
/// CommMetaData caching (Zhang et al., 2020): FillBoundary / ParallelCopy
/// re-run the BoxArray hash intersection only on the first call for a given
/// (src BoxArray id, dst BoxArray id, ngrows, periodic-shift set) signature;
/// every later call — every RK3 stage, every FillPatch of an unchanged
/// hierarchy — replays the stored descriptors, including the SimComm message
/// recording.
///
/// Invalidation: AmrCore::setLevel drops entries mentioning a replaced
/// level's BoxArray id whenever regrid (or checkpoint restore) changes the
/// layout. Entries keyed on ids *derived* from a dropped id (the coarsened
/// scratch layouts inside FillPatch) become unreachable rather than stale —
/// a fresh parent id derives fresh child ids — and age out of the LRU.
///
/// Cache keys never depend on component counts, DistributionMappings, or
/// SimComm state; those are applied at replay time.
class CommCache {
public:
    enum Kind : int { FillBoundary = 0, ParallelCopy = 1 };

    struct Key {
        std::uint64_t srcId = 0;
        std::uint64_t dstId = 0;
        int dstNGrow = 0;
        int srcNGrow = 0;
        std::uint64_t shiftsHash = 0;
        int kind = FillBoundary;
        bool operator==(const Key&) const = default;
    };

    struct Stats {
        std::int64_t hits = 0;
        std::int64_t misses = 0;
        std::int64_t invalidations = 0; ///< entries removed by invalidate()
        std::int64_t evictions = 0;     ///< entries dropped by the LRU bound
        std::int64_t planHits = 0;      ///< aggregation plans replayed
        std::int64_t planBuilds = 0;    ///< aggregation plans (re)derived
    };

    static CommCache& instance();

    /// Patterns retained (LRU). Shrinking evicts oldest entries immediately.
    void setCapacity(std::size_t cap);
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return map_.size(); }

    /// Disabled: lookups miss, inserts are dropped — the uncached build path
    /// runs every call (seed behavior; used by tests and the benches).
    void setEnabled(bool e) { enabled_ = e; }
    bool enabled() const { return enabled_; }

    /// Aggregated rank-pair exchange (comm.aggregate): when on, MultiFab
    /// packs every off-rank copy of an exchange into one staging buffer per
    /// communicating rank pair and sends one SimComm message per pair.
    /// Default off — the seed's one-message-per-copy stream.
    void setAggregate(bool a) { aggregate_ = a; }
    bool aggregate() const { return aggregate_; }

    /// Optional profiler charged with CommCacheBuild / CommCacheHit regions
    /// by MultiFab; non-owning, nullptr detaches.
    void attachProfiler(perf::TinyProfiler* p) { prof_ = p; }
    perf::TinyProfiler* profiler() const { return prof_; }

    /// nullptr on miss (or when disabled, or when the validation fields do
    /// not match — a collided key is dropped and rebuilt). The returned
    /// pointer is valid until the next insert/invalidate/clear call.
    const CommPattern* lookup(const Key& k, int srcSize, int dstSize);

    /// Store (or replace) a pattern; returns the stored copy. No-op when
    /// disabled (returns a reference to a thread-local scratch instead).
    const CommPattern& insert(const Key& k, CommPattern pattern);

    /// Cached aggregation plan for `k`, or nullptr when absent, when the
    /// cache is disabled, or when the stored plan was derived under
    /// different DistributionMappings (stale plans are erased — satellite
    /// of the rank-death renumbering fix: a fingerprint mismatch after
    /// shrink can never replay old rank ids). The pointer is valid until
    /// the next insertPlan/invalidate/clear/noteCommSize call.
    const AggregationPlan* lookupPlan(const Key& k, std::uint64_t dmFingerprint);

    /// Store (or replace) the plan for `k`. No-op when disabled (returns a
    /// thread-local scratch copy, like insert).
    const AggregationPlan& insertPlan(const Key& k, AggregationPlan plan);

    /// Aggregation plans currently cached (tests assert invalidation).
    std::size_t planCount() const { return plans_.size(); }

    /// Drop every entry whose key mentions `baId` as source or destination.
    void invalidate(std::uint64_t baId);

    /// Guard against a shrunk communicator: patterns themselves are
    /// rank-independent, but the replay of a cached pattern records
    /// messages with the *current* DistributionMapping — and after a rank
    /// death every mapping in the hierarchy is rebuilt, so replaying
    /// against a half-updated hierarchy would mix old and new rank
    /// numberings. The first call records the communicator size; a later
    /// call with a different size drops every entry (counted as
    /// invalidations) and re-records.
    void noteCommSize(int nranks);

    /// Communicator size last noted; 0 before the first noteCommSize.
    int notedCommSize() const { return commSize_; }

    void clear();
    void resetStats() { stats_ = {}; }
    const Stats& stats() const { return stats_; }

private:
    struct KeyHash {
        std::size_t operator()(const Key& k) const;
    };
    using Entry = std::pair<Key, CommPattern>;

    void touch(std::list<Entry>::iterator it);
    void dropPlan(const Key& k);

    std::list<Entry> lru_; // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
    std::unordered_map<Key, AggregationPlan, KeyHash> plans_;
    std::size_t capacity_ = 64;
    int commSize_ = 0;
    bool enabled_ = true;
    bool aggregate_ = false;
    perf::TinyProfiler* prof_ = nullptr;
    Stats stats_;
};

/// Order-sensitive hash of a periodic-shift set (part of the cache key: the
/// same BoxArray exchanged under different periodicities has different
/// patterns).
std::uint64_t hashShifts(const std::vector<IntVect>& shifts);

} // namespace crocco::amr
