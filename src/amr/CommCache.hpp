#pragma once

#include "amr/Box.hpp"
#include "perf/TinyProfiler.hpp"

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace crocco::amr {

/// One precomputed copy of a ghost-exchange / ParallelCopy pattern:
/// dst fab `dstFab`, region `region` (dst index space) receives src fab
/// `srcFab` shifted by `shift` (src cell = dst cell + shift). Component
/// counts and ranks are NOT stored — descriptors are ncomp-independent and
/// DistributionMapping-independent, so one pattern serves every MultiFab
/// pair living on the same (BoxArray, ngrow) signature.
struct CopyDescriptor {
    int dstFab = 0;
    int srcFab = 0;
    Box region;
    IntVect shift;
    std::int64_t npts = 0; ///< region.numPts(), cached for message sizing

    /// Field-wise equality — the byte-identity the check build's replay
    /// guard asserts between a cached pattern and its re-derivation.
    bool operator==(const CopyDescriptor&) const = default;
};

/// A full communication pattern plus cheap validation fields (guards the
/// astronomically unlikely collision of two derived BoxArray ids).
struct CommPattern {
    std::vector<CopyDescriptor> copies;
    int srcSize = 0; ///< boxes in the source BoxArray when built
    int dstSize = 0; ///< boxes in the destination BoxArray when built

    bool operator==(const CommPattern&) const = default;
};

/// Process-wide LRU cache of communication patterns, mirroring AMReX's
/// CommMetaData caching (Zhang et al., 2020): FillBoundary / ParallelCopy
/// re-run the BoxArray hash intersection only on the first call for a given
/// (src BoxArray id, dst BoxArray id, ngrows, periodic-shift set) signature;
/// every later call — every RK3 stage, every FillPatch of an unchanged
/// hierarchy — replays the stored descriptors, including the SimComm message
/// recording.
///
/// Invalidation: AmrCore::setLevel drops entries mentioning a replaced
/// level's BoxArray id whenever regrid (or checkpoint restore) changes the
/// layout. Entries keyed on ids *derived* from a dropped id (the coarsened
/// scratch layouts inside FillPatch) become unreachable rather than stale —
/// a fresh parent id derives fresh child ids — and age out of the LRU.
///
/// Cache keys never depend on component counts, DistributionMappings, or
/// SimComm state; those are applied at replay time.
class CommCache {
public:
    enum Kind : int { FillBoundary = 0, ParallelCopy = 1 };

    struct Key {
        std::uint64_t srcId = 0;
        std::uint64_t dstId = 0;
        int dstNGrow = 0;
        int srcNGrow = 0;
        std::uint64_t shiftsHash = 0;
        int kind = FillBoundary;
        bool operator==(const Key&) const = default;
    };

    struct Stats {
        std::int64_t hits = 0;
        std::int64_t misses = 0;
        std::int64_t invalidations = 0; ///< entries removed by invalidate()
        std::int64_t evictions = 0;     ///< entries dropped by the LRU bound
    };

    static CommCache& instance();

    /// Patterns retained (LRU). Shrinking evicts oldest entries immediately.
    void setCapacity(std::size_t cap);
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return map_.size(); }

    /// Disabled: lookups miss, inserts are dropped — the uncached build path
    /// runs every call (seed behavior; used by tests and the benches).
    void setEnabled(bool e) { enabled_ = e; }
    bool enabled() const { return enabled_; }

    /// Optional profiler charged with CommCacheBuild / CommCacheHit regions
    /// by MultiFab; non-owning, nullptr detaches.
    void attachProfiler(perf::TinyProfiler* p) { prof_ = p; }
    perf::TinyProfiler* profiler() const { return prof_; }

    /// nullptr on miss (or when disabled, or when the validation fields do
    /// not match — a collided key is dropped and rebuilt). The returned
    /// pointer is valid until the next insert/invalidate/clear call.
    const CommPattern* lookup(const Key& k, int srcSize, int dstSize);

    /// Store (or replace) a pattern; returns the stored copy. No-op when
    /// disabled (returns a reference to a thread-local scratch instead).
    const CommPattern& insert(const Key& k, CommPattern pattern);

    /// Drop every entry whose key mentions `baId` as source or destination.
    void invalidate(std::uint64_t baId);

    /// Guard against a shrunk communicator: patterns themselves are
    /// rank-independent, but the replay of a cached pattern records
    /// messages with the *current* DistributionMapping — and after a rank
    /// death every mapping in the hierarchy is rebuilt, so replaying
    /// against a half-updated hierarchy would mix old and new rank
    /// numberings. The first call records the communicator size; a later
    /// call with a different size drops every entry (counted as
    /// invalidations) and re-records.
    void noteCommSize(int nranks);

    /// Communicator size last noted; 0 before the first noteCommSize.
    int notedCommSize() const { return commSize_; }

    void clear();
    void resetStats() { stats_ = {}; }
    const Stats& stats() const { return stats_; }

private:
    struct KeyHash {
        std::size_t operator()(const Key& k) const;
    };
    using Entry = std::pair<Key, CommPattern>;

    void touch(std::list<Entry>::iterator it);

    std::list<Entry> lru_; // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
    std::size_t capacity_ = 64;
    int commSize_ = 0;
    bool enabled_ = true;
    perf::TinyProfiler* prof_ = nullptr;
    Stats stats_;
};

/// Order-sensitive hash of a periodic-shift set (part of the cache key: the
/// same BoxArray exchanged under different periodicities has different
/// patterns).
std::uint64_t hashShifts(const std::vector<IntVect>& shifts);

} // namespace crocco::amr
